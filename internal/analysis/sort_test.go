package analysis_test

import (
	"math/rand"
	"reflect"
	"testing"

	"goldweb/internal/analysis"
)

// TestSortTotalOrder pins the deterministic ordering contract behind
// `goldweb lint -json`: (file, line, col, code, severity, message) is a
// total order, so any input permutation — map-iteration order included —
// sorts to the same sequence.
func TestSortTotalOrder(t *testing.T) {
	want := []analysis.Diagnostic{
		{File: "a.xsl", Line: 1, Col: 1, Code: "GW101", Severity: analysis.SevError, Msg: "m1"},
		{File: "a.xsl", Line: 1, Col: 1, Code: "GW102", Severity: analysis.SevError, Msg: "m1"},
		{File: "a.xsl", Line: 1, Col: 1, Code: "GW102", Severity: analysis.SevError, Msg: "m2"},
		{File: "a.xsl", Line: 1, Col: 2, Code: "GW101", Severity: analysis.SevWarning, Msg: "m1"},
		{File: "a.xsl", Line: 2, Col: 1, Code: "GW501", Severity: analysis.SevError, Msg: "m1"},
		{File: "a.xsl", Line: 2, Col: 1, Code: "GW502", Severity: analysis.SevWarning, Msg: "m1"},
		{File: "b.xsl", Line: 1, Col: 1, Code: "GW101", Severity: analysis.SevError, Msg: "m1"},
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		got := append([]analysis.Diagnostic(nil), want...)
		rng.Shuffle(len(got), func(i, j int) { got[i], got[j] = got[j], got[i] })
		analysis.Sort(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: shuffle did not sort back to canonical order:\n%v", trial, got)
		}
	}
}

// Severity breaks ties when position and code agree (distinct sources
// can reuse a code with different severities).
func TestSortSeverityTiebreak(t *testing.T) {
	d := []analysis.Diagnostic{
		{File: "a", Code: "GW401", Severity: analysis.SevWarning, Msg: "w"},
		{File: "a", Code: "GW401", Severity: analysis.SevError, Msg: "e"},
	}
	analysis.Sort(d)
	if d[0].Severity != analysis.SevError {
		t.Fatalf("error must sort before warning on equal position+code: %v", d)
	}
}
