package analysis

import (
	"sort"
	"strings"

	"goldweb/internal/xpath"
)

// checkPattern verifies each alternative of a match pattern is
// satisfiable under the schema (GW101) and returns the context class the
// pattern can match — the element names, attribute/text/root categories
// a rule with this pattern may fire on.
func (l *ssLint) checkPattern(pat *xpath.Pattern, at pos, sc *scope) ctxSet {
	var out ctxSet
	for i, alt := range pat.Info() {
		c := l.checkPatternAlt(alt, at, sc)
		if i == 0 {
			out = c
		} else {
			out = out.union(c)
		}
	}
	return out
}

func (l *ssLint) checkPatternAlt(alt xpath.PatternAltInfo, at pos, sc *scope) ctxSet {
	g := l.g
	if alt.RootOnly {
		return docCtx()
	}
	if alt.ID != "" && len(alt.Steps) == 0 {
		return elemCtx(g.IDElements())
	}
	if len(alt.Steps) == 0 {
		return unknownCtx()
	}

	// Candidate element set per step. For attribute and text() steps the
	// set holds the possible *owner* elements; match semantics then link
	// the owner directly (or via ancestors, for '//') to the previous
	// step instead of through a parent edge.
	last := len(alt.Steps) - 1
	sets := make([]map[string]bool, len(alt.Steps))
	resolvable := true
	for i, st := range alt.Steps {
		switch {
		case st.Attr:
			if st.Test != xpath.TestName {
				sets[i] = l.allElems()
				continue
			}
			owners := map[string]bool{}
			for _, e := range g.ElementNames() {
				if g.HasAttr(e, st.Name) {
					owners[e] = true
				}
			}
			if len(owners) == 0 {
				l.flag(at, SevError, CodeBadPattern,
					"pattern can never match: no element declares attribute '%s'", st.Name)
				return unknownCtx()
			}
			sets[i] = owners
		case st.Test == xpath.TestName:
			if !g.HasElement(st.Name) {
				l.flag(at, SevError, CodeBadPattern,
					"pattern can never match: no element '%s' is declared in the schema", st.Name)
				return unknownCtx()
			}
			sets[i] = map[string]bool{st.Name: true}
		case st.Test == xpath.TestAnyName || st.Test == xpath.TestNSWildcard:
			sets[i] = l.allElems()
		case st.Test == xpath.TestText:
			owners := map[string]bool{}
			for _, e := range g.ElementNames() {
				if g.TextAllowed(e) {
					owners[e] = true
				}
			}
			sets[i] = owners
		default:
			// comment() / processing-instruction() / node(): the schema
			// says nothing; give up on this alternative.
			resolvable = false
		}
		if !resolvable {
			break
		}
	}

	if resolvable {
		// Link steps right-to-left: each step's candidates must have the
		// previous step's candidates as parent ('/') or ancestor ('//').
		cur := sets[last]
		for i := last; i >= 1; i-- {
			st := alt.Steps[i]
			allowed := map[string]bool{}
			if st.Attr || st.Test == xpath.TestText {
				for c := range cur {
					allowed[c] = true
					if st.Anc {
						for a := range g.Ancestors(c) {
							allowed[a] = true
						}
					}
				}
			} else {
				for c := range cur {
					if st.Anc {
						for a := range g.Ancestors(c) {
							allowed[a] = true
						}
					} else {
						for p := range g.Parents(c) {
							allowed[p] = true
						}
					}
				}
			}
			next := map[string]bool{}
			for e := range sets[i-1] {
				if allowed[e] {
					next[e] = true
				}
			}
			if len(next) == 0 {
				rel := "a parent"
				if st.Anc {
					rel = "an ancestor"
				}
				l.flag(at, SevError, CodeBadPattern,
					"pattern can never match: %s is never %s of %s",
					describeSet(sets[i-1]), rel, describeSet(cur))
				return unknownCtx()
			}
			cur = next
		}
		if alt.Absolute && alt.ID == "" && !alt.Steps[0].Anc {
			rootOK := false
			for e := range cur {
				if g.Roots()[e] {
					rootOK = true
					break
				}
			}
			if !rootOK {
				l.flag(at, SevError, CodeBadPattern,
					"pattern can never match: %s is not a global (document root) element", describeSet(cur))
				return unknownCtx()
			}
		}
	}

	// Walk predicate expressions with each step's candidate context.
	for i, st := range alt.Steps {
		if len(st.Preds) == 0 {
			continue
		}
		var c ctxSet
		switch {
		case st.Attr:
			c = ctxSet{attr: true}
		case st.Test == xpath.TestText:
			c = ctxSet{text: true}
		case sets[i] != nil:
			c = elemCtx(sets[i])
		default:
			c = unknownCtx()
		}
		for _, p := range st.Preds {
			l.evalExpr(p, c, c, at, sc)
		}
	}

	// The alternative's match class comes from its final step.
	st := alt.Steps[last]
	switch {
	case st.Attr:
		return ctxSet{attr: true}
	case st.Test == xpath.TestText:
		return ctxSet{text: true}
	case sets[last] != nil:
		return elemCtx(sets[last])
	}
	return unknownCtx()
}

func (l *ssLint) allElems() map[string]bool {
	out := map[string]bool{}
	for _, e := range l.g.ElementNames() {
		out[e] = true
	}
	return out
}

func describeSet(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, "'"+n+"'")
	}
	sort.Strings(names)
	return strings.Join(names, " or ")
}
