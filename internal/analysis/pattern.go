package analysis

import (
	"sort"
	"strings"

	"goldweb/internal/xpath"
)

// checkPattern verifies each alternative of a match pattern is
// satisfiable under the schema (GW101) and returns the context class the
// pattern can match — the element names, attribute/text/root categories
// a rule with this pattern may fire on.
func (l *ssLint) checkPattern(pat *xpath.Pattern, at pos, sc *scope) ctxSet {
	var out ctxSet
	for i, alt := range pat.Info() {
		c := l.checkPatternAlt(alt, at, sc)
		if i == 0 {
			out = c
		} else {
			out = out.union(c)
		}
	}
	return out
}

// checkPatternAlt propagates a candidate element set forward through the
// alternative's steps, root-side to leaf-side, reusing the child and
// descendant transitions of the expression walker (childElems/descElems)
// for the '/' and '//' links. The set an earlier step survives with
// narrows the sets of every later step, so the returned match context is
// the refined final-step set rather than the raw node-test universe.
func (l *ssLint) checkPatternAlt(alt xpath.PatternAltInfo, at pos, sc *scope) ctxSet {
	g := l.g
	if alt.RootOnly {
		return docCtx()
	}
	if alt.ID != "" && len(alt.Steps) == 0 {
		return elemCtx(g.IDElements())
	}
	if len(alt.Steps) == 0 {
		return unknownCtx()
	}

	// Per-step refined candidate sets; nil once a step the schema cannot
	// model (comment(), processing-instruction(), node()) is crossed.
	last := len(alt.Steps) - 1
	sets := make([]map[string]bool, len(alt.Steps))
	var cur map[string]bool
	for i, st := range alt.Steps {
		cands, resolvable, failed := l.patternStepCandidates(st, at)
		if failed {
			return unknownCtx()
		}
		if !resolvable {
			break
		}
		if i == 0 {
			if alt.Absolute && alt.ID == "" && !st.Anc {
				rootOK := false
				for e := range cands {
					if g.Roots()[e] {
						rootOK = true
						break
					}
				}
				if !rootOK {
					l.flag(at, SevError, CodeBadPattern,
						"pattern can never match: %s is not a global (document root) element", describeSet(cands))
					return unknownCtx()
				}
			}
			cur = cands
			sets[0] = cur
			continue
		}
		// Link to the previous step's refined set: '/' requires a parent
		// in it, '//' an ancestor. Attribute and text() tests sit on
		// their owner element, so the owner links directly (or via
		// ancestors, for '//') instead of through a child edge.
		in := elemCtx(cur)
		var allowed map[string]bool
		linkOpen := false
		switch {
		case st.Attr || st.Test == xpath.TestText:
			allowed = map[string]bool{}
			for e := range cur {
				allowed[e] = true
			}
			if st.Anc {
				desc, open := l.descElems(in, false)
				linkOpen = open
				for e := range desc {
					allowed[e] = true
				}
			}
		case st.Anc:
			allowed, linkOpen = l.descElems(in, false)
		default:
			allowed, _, linkOpen = l.childElems(in)
		}
		next := map[string]bool{}
		for e := range cands {
			if allowed[e] {
				next[e] = true
			}
		}
		if linkOpen {
			// A wildcard on the parent side may admit any candidate:
			// the link can neither refine nor refute the step.
			next = cands
		} else if len(next) == 0 {
			rel := "a parent"
			if st.Anc {
				rel = "an ancestor"
			}
			l.flag(at, SevError, CodeBadPattern,
				"pattern can never match: %s is never %s of %s",
				describeSet(cur), rel, describeSet(cands))
			return unknownCtx()
		}
		cur = next
		sets[i] = cur
	}

	// Walk predicate expressions with each step's refined context.
	for i, st := range alt.Steps {
		if len(st.Preds) == 0 {
			continue
		}
		var c ctxSet
		switch {
		case st.Attr:
			c = ctxSet{attr: true}
		case st.Test == xpath.TestText:
			c = ctxSet{text: true}
		case sets[i] != nil:
			c = elemCtx(sets[i])
		default:
			c = unknownCtx()
		}
		for _, p := range st.Preds {
			l.evalExpr(p, c, c, at, sc)
		}
	}

	// The alternative's match class comes from its final step.
	st := alt.Steps[last]
	switch {
	case st.Attr:
		return ctxSet{attr: true}
	case st.Test == xpath.TestText:
		return ctxSet{text: true}
	case sets[last] != nil:
		return elemCtx(sets[last])
	}
	return unknownCtx()
}

// patternStepCandidates returns the schema-permitted element set for one
// pattern step before linking: the named element, every element, or the
// owner elements of an attribute or text() test. failed reports a
// schema-wide impossibility (already flagged as GW101); resolvable is
// false for node tests the schema says nothing about.
func (l *ssLint) patternStepCandidates(st xpath.PatternStepInfo, at pos) (cands map[string]bool, resolvable, failed bool) {
	g := l.g
	// An open schema makes every whole-schema universe a lower bound
	// (wildcards admit elements the graph never saw), so only exact
	// named-element candidates survive; the rest become unresolvable.
	open := g.OpenSchema()
	switch {
	case st.Attr:
		if open {
			return nil, false, false
		}
		if st.Test != xpath.TestName {
			return l.allElems(), true, false
		}
		owners := map[string]bool{}
		for _, e := range g.ElementNames() {
			if g.HasAttr(e, st.Name) {
				owners[e] = true
			}
		}
		if len(owners) == 0 {
			l.flag(at, SevError, CodeBadPattern,
				"pattern can never match: no element declares attribute '%s'", st.Name)
			return nil, true, true
		}
		return owners, true, false
	case st.Test == xpath.TestName:
		if !g.HasElement(st.Name) {
			if open {
				return nil, false, false // may exist under a wildcard
			}
			l.flag(at, SevError, CodeBadPattern,
				"pattern can never match: no element '%s' is declared in the schema", st.Name)
			return nil, true, true
		}
		return map[string]bool{st.Name: true}, true, false
	case st.Test == xpath.TestAnyName || st.Test == xpath.TestNSWildcard:
		if open {
			return nil, false, false
		}
		return l.allElems(), true, false
	case st.Test == xpath.TestText:
		if open {
			return nil, false, false
		}
		owners := map[string]bool{}
		for _, e := range g.ElementNames() {
			if g.TextAllowed(e) {
				owners[e] = true
			}
		}
		return owners, true, false
	}
	return nil, false, false
}

func (l *ssLint) allElems() map[string]bool {
	out := map[string]bool{}
	for _, e := range l.g.ElementNames() {
		out[e] = true
	}
	return out
}

func describeSet(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, "'"+n+"'")
	}
	sort.Strings(names)
	return strings.Join(names, " or ")
}
