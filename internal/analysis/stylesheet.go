package analysis

import (
	"fmt"
	"sort"
	"strings"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
	"goldweb/internal/xsd"
	"goldweb/internal/xslt"
)

// pos is a diagnostic anchor: any DOM node carrying Line/Col.
type pos = *xmldom.Node

// knownFunctions lists every function the XPath core library and the
// XSLT engine provide; calls to anything else are GW303.
var knownFunctions = map[string]bool{
	"last": true, "position": true, "count": true, "id": true,
	"local-name": true, "namespace-uri": true, "name": true,
	"string": true, "concat": true, "starts-with": true, "contains": true,
	"substring-before": true, "substring-after": true, "substring": true,
	"string-length": true, "normalize-space": true, "translate": true,
	"boolean": true, "not": true, "true": true, "false": true, "lang": true,
	"number": true, "sum": true, "floor": true, "ceiling": true, "round": true,
	"current": true, "generate-id": true, "key": true, "document": true,
	"system-property": true, "format-number": true, "element-available": true,
	"function-available": true, "unparsed-entity-uri": true,
}

// varDecl tracks one variable or parameter declaration for use analysis.
type varDecl struct {
	name  string
	node  *xmldom.Node
	param bool
	used  bool
}

// scope is a per-template variable table; lookups fall through to the
// stylesheet globals.
type scope struct {
	vars map[string]*varDecl
}

type ssLint struct {
	file  string
	g     *ContentGraph
	sheet *xslt.Stylesheet
	root  *xmldom.Node

	// mute suppresses diagnostics during context-propagation passes so
	// the interprocedural fixpoint does not duplicate findings.
	mute  bool
	diags []Diagnostic

	keyClass map[string]ctxSet
	namedSrc map[string]*xmldom.Node
	attrSets map[string]bool

	globals     map[string]*varDecl
	globalOrder []*varDecl

	// entry accumulates the merged call-site context of each named
	// template across fixpoint iterations.
	entry       map[string]ctxSet
	entryStable bool

	calledTemplates map[string]bool
}

// LintStylesheet parses, compiles and lints one stylesheet against the
// schema. Parse and compile failures are reported as GW001 diagnostics
// rather than errors so callers get one uniform finding stream.
func LintStylesheet(file string, src []byte, schema *xsd.Schema) []Diagnostic {
	doc, err := xmldom.Parse(src)
	if err != nil {
		d := Diagnostic{File: file, Severity: SevError, Code: CodeCompileError, Msg: err.Error()}
		if pe, ok := err.(*xmldom.ParseError); ok {
			d.Line, d.Col, d.Msg = pe.Line, pe.Col, pe.Msg
		}
		return []Diagnostic{d}
	}
	sheet, err := xslt.CompileStylesheet(doc, xslt.CompileOptions{})
	if err != nil {
		d := Diagnostic{File: file, Severity: SevError, Code: CodeCompileError, Msg: err.Error()}
		if ce, ok := err.(*xslt.CompileError); ok {
			d.Line, d.Col = ce.Position()
			d.Msg = ce.Msg
			if rule := ce.Rule(); rule != "" {
				d.Msg += " (in " + rule + ")"
			}
		}
		return []Diagnostic{d}
	}
	l := &ssLint{
		file:            file,
		g:               NewContentGraph(schema),
		sheet:           sheet,
		root:            doc.DocumentElement(),
		keyClass:        map[string]ctxSet{},
		namedSrc:        map[string]*xmldom.Node{},
		attrSets:        map[string]bool{},
		globals:         map[string]*varDecl{},
		entry:           map[string]ctxSet{},
		calledTemplates: map[string]bool{},
	}
	l.run()
	l.diags = append(l.diags, verifyProgram(file, sheet)...)
	Sort(l.diags)
	return l.diags
}

func (l *ssLint) run() {
	for _, nt := range l.sheet.NamedTemplates() {
		l.namedSrc[nt.Name] = nt.Src
	}
	for _, name := range l.sheet.AttrSetNames() {
		l.attrSets[name] = true
	}
	l.collectGlobals()

	// Phase 1: propagate contexts into named templates until the entry
	// sets stop growing. Diagnostics are muted; only the context flow
	// matters. The union lattice is finite, so this terminates; the
	// iteration cap is a safety net.
	l.mute = true
	l.buildKeyClasses()
	for i := 0; i <= len(l.namedSrc)+1; i++ {
		l.entryStable = true
		l.walkGlobalDecls()
		l.walkTemplates()
		if l.entryStable {
			break
		}
	}

	// Phase 2: the diagnostic pass, with final entry contexts.
	l.mute = false
	l.buildKeyClasses()
	l.walkGlobalDecls()
	l.walkTemplates()
	l.walkAttrSets()
	l.checkShadowing()
	l.checkUnusedModes()
	l.checkUnusedNamedTemplates()
	l.reportUnused(l.globalOrder)
}

func (l *ssLint) flag(at pos, sev Severity, code, format string, args ...interface{}) {
	if l.mute {
		return
	}
	d := Diagnostic{File: l.file, Severity: sev, Code: code, Msg: fmt.Sprintf(format, args...)}
	if at != nil {
		d.Line, d.Col = at.Line, at.Col
	}
	l.diags = append(l.diags, d)
}

// attrNode anchors a diagnostic at an attribute when present, else at
// the element itself.
func attrNode(n *xmldom.Node, name string) pos {
	if a := n.GetAttr(name); a != nil {
		return a
	}
	return n
}

func isXSL(n *xmldom.Node, name string) bool {
	return n.Type == xmldom.ElementNode && n.URI == xslt.Namespace && n.Name == name
}

func (l *ssLint) collectGlobals() {
	for _, n := range l.root.Elements() {
		if n.URI != xslt.Namespace || (n.Name != "variable" && n.Name != "param") {
			continue
		}
		name := n.AttrValue("name")
		if name == "" {
			continue
		}
		d := &varDecl{name: name, node: n, param: n.Name == "param"}
		l.globals[name] = d
		l.globalOrder = append(l.globalOrder, d)
	}
}

// buildKeyClasses checks each xsl:key and records the context class its
// key() calls produce (the elements its match pattern can select).
func (l *ssLint) buildKeyClasses() {
	for _, kd := range l.sheet.KeyDecls() {
		at := kd.Src
		cls := l.checkPattern(kd.Match, attrNode(at, "match"), nil)
		l.keyClass[kd.Name] = cls
		l.evalExpr(kd.Use, cls, cls, attrNode(at, "use"), nil)
	}
}

func (l *ssLint) walkGlobalDecls() {
	for _, d := range l.globalOrder {
		n := d.node
		if sel := n.GetAttr("select"); sel != nil {
			l.checkExprSrc(sel.Data, docCtx(), docCtx(), sel, nil)
		} else {
			l.walkBody(n, docCtx(), &scope{vars: map[string]*varDecl{}})
		}
	}
}

func (l *ssLint) walkTemplates() {
	for _, n := range l.root.Elements() {
		if !isXSL(n, "template") {
			continue
		}
		match := n.AttrValue("match")
		name := n.AttrValue("name")
		var cs ctxSet
		switch {
		case match != "":
			pat, err := xpath.CompilePattern(match)
			if err != nil {
				continue // already a compile error
			}
			cs = l.checkPattern(pat, attrNode(n, "match"), nil)
			if name != "" {
				if e, ok := l.entry[name]; ok {
					cs = cs.union(e)
				}
			}
		case name != "":
			if e, ok := l.entry[name]; ok {
				cs = e
			} else {
				cs = unknownCtx()
			}
		default:
			continue
		}
		sc := &scope{vars: map[string]*varDecl{}}
		l.walkBody(n, cs, sc)
		if !l.mute {
			l.reportUnusedScope(sc)
		}
	}
}

func (l *ssLint) walkAttrSets() {
	for _, n := range l.root.Elements() {
		if !isXSL(n, "attribute-set") {
			continue
		}
		if use := n.GetAttr("use-attribute-sets"); use != nil {
			l.useAttrSets(use)
		}
		l.walkBody(n, unknownCtx(), &scope{vars: map[string]*varDecl{}})
	}
}

// walkBody lints the instruction children of parent in context cs.
func (l *ssLint) walkBody(parent *xmldom.Node, cs ctxSet, sc *scope) {
	for _, n := range parent.Children {
		if n.Type != xmldom.ElementNode {
			continue
		}
		if n.URI != xslt.Namespace {
			// Literal result element: every attribute is an AVT.
			for _, a := range n.Attr {
				if a.URI == xmldom.XMLNSNamespace {
					continue
				}
				if a.URI == xslt.Namespace && a.Name == "use-attribute-sets" {
					l.useAttrSets(a)
					continue
				}
				l.checkAVT(a.Data, cs, a, sc)
			}
			l.walkBody(n, cs, sc)
			continue
		}
		switch n.Name {
		case "apply-templates":
			res := l.evalStep(cs, xpath.StepInfo{Axis: xpath.AxisChild, Test: xpath.TestNode}, n)
			if sel := n.GetAttr("select"); sel != nil {
				res = l.checkExprSrc(sel.Data, cs, cs, sel, sc)
			}
			l.walkWithParams(n, cs, sc)
			l.walkSorts(n, res, sc)
		case "call-template":
			if name := n.AttrValue("name"); name != "" {
				l.calledTemplates[name] = true
				if _, ok := l.namedSrc[name]; !ok {
					l.flag(attrNode(n, "name"), SevError, CodeUnknownRef,
						"xsl:call-template references undefined template '%s'", name)
				} else {
					l.mergeEntry(name, cs)
				}
			}
			l.walkWithParams(n, cs, sc)
		case "for-each":
			res := unknownCtx()
			if sel := n.GetAttr("select"); sel != nil {
				res = l.checkExprSrc(sel.Data, cs, cs, sel, sc)
			}
			l.walkSorts(n, res, sc)
			l.walkBody(n, res, sc)
		case "value-of", "copy-of":
			if sel := n.GetAttr("select"); sel != nil {
				l.checkExprSrc(sel.Data, cs, cs, sel, sc)
			}
		case "if", "when":
			if test := n.GetAttr("test"); test != nil {
				l.checkExprSrc(test.Data, cs, cs, test, sc)
			}
			l.walkBody(n, cs, sc)
		case "variable", "param":
			if sel := n.GetAttr("select"); sel != nil {
				l.checkExprSrc(sel.Data, cs, cs, sel, sc)
			} else {
				l.walkBody(n, cs, sc)
			}
			if name := n.AttrValue("name"); name != "" {
				sc.vars[name] = &varDecl{name: name, node: n, param: n.Name == "param"}
			}
		case "attribute", "processing-instruction":
			if name := n.GetAttr("name"); name != nil {
				l.checkAVT(name.Data, cs, name, sc)
			}
			l.walkBody(n, cs, sc)
		case "element":
			if name := n.GetAttr("name"); name != nil {
				l.checkAVT(name.Data, cs, name, sc)
			}
			if use := n.GetAttr("use-attribute-sets"); use != nil {
				l.useAttrSets(use)
			}
			l.walkBody(n, cs, sc)
		case "copy":
			if use := n.GetAttr("use-attribute-sets"); use != nil {
				l.useAttrSets(use)
			}
			l.walkBody(n, cs, sc)
		case "document":
			if href := n.GetAttr("href"); href != nil {
				l.checkAVT(href.Data, cs, href, sc)
			}
			l.walkBody(n, cs, sc)
		case "number":
			if v := n.GetAttr("value"); v != nil {
				l.checkExprSrc(v.Data, cs, cs, v, sc)
			}
			for _, pa := range []string{"count", "from"} {
				if a := n.GetAttr(pa); a != nil {
					if pat, err := xpath.CompilePattern(a.Data); err == nil {
						l.checkPattern(pat, a, sc)
					}
				}
			}
		case "sort", "with-param":
			// handled by the owning instruction
		case "text", "apply-imports":
			// no expressions
		default:
			l.walkBody(n, cs, sc)
		}
	}
}

func (l *ssLint) walkSorts(n *xmldom.Node, items ctxSet, sc *scope) {
	for _, c := range n.Elements() {
		if !isXSL(c, "sort") {
			continue
		}
		if sel := c.GetAttr("select"); sel != nil {
			l.checkExprSrc(sel.Data, items, items, sel, sc)
		}
		for _, avtAttr := range []string{"lang", "order", "data-type", "case-order"} {
			if a := c.GetAttr(avtAttr); a != nil {
				l.checkAVT(a.Data, items, a, sc)
			}
		}
	}
}

func (l *ssLint) walkWithParams(n *xmldom.Node, cs ctxSet, sc *scope) {
	for _, c := range n.Elements() {
		if !isXSL(c, "with-param") {
			continue
		}
		if sel := c.GetAttr("select"); sel != nil {
			l.checkExprSrc(sel.Data, cs, cs, sel, sc)
		} else {
			l.walkBody(c, cs, sc)
		}
	}
}

func (l *ssLint) useAttrSets(a *xmldom.Node) {
	for _, name := range strings.Fields(a.Data) {
		if !l.attrSets[name] {
			l.flag(a, SevError, CodeUnknownRef,
				"use-attribute-sets references undefined attribute set '%s'", name)
		}
	}
}

// checkExprSrc compiles one expression attribute and evaluates it
// against the context approximation.
func (l *ssLint) checkExprSrc(src string, cs, cur ctxSet, at pos, sc *scope) ctxSet {
	e, err := xpath.Compile(src)
	if err != nil {
		return unknownCtx() // surfaced as GW001 by xslt.Compile
	}
	return l.evalExpr(e, cs, cur, at, sc)
}

// checkAVT extracts the {expr} parts of an attribute value template and
// checks each.
func (l *ssLint) checkAVT(src string, cs ctxSet, at pos, sc *scope) {
	for i := 0; i < len(src); {
		switch src[i] {
		case '{':
			if i+1 < len(src) && src[i+1] == '{' {
				i += 2
				continue
			}
			end := strings.IndexByte(src[i+1:], '}')
			if end < 0 {
				return
			}
			l.checkExprSrc(src[i+1:i+1+end], cs, cs, at, sc)
			i += end + 2
		case '}':
			if i+1 < len(src) && src[i+1] == '}' {
				i += 2
				continue
			}
			return
		default:
			i++
		}
	}
}

func (l *ssLint) markVar(sc *scope, name string) {
	if sc != nil {
		if d, ok := sc.vars[name]; ok {
			d.used = true
			return
		}
	}
	if d, ok := l.globals[name]; ok {
		d.used = true
	}
}

// evalExpr walks one compiled expression, checking steps, key and
// function references, and returns the approximation of its node-set
// value (unknown for non-node-set expressions).
func (l *ssLint) evalExpr(e xpath.Expr, cs, cur ctxSet, at pos, sc *scope) ctxSet {
	if e == nil {
		return unknownCtx()
	}
	if name, ok := xpath.VarName(e); ok {
		l.markVar(sc, name)
		return unknownCtx()
	}
	if _, ok := xpath.LiteralValue(e); ok {
		return unknownCtx()
	}
	if input, absolute, steps, ok := xpath.PathInfo(e); ok {
		var in ctxSet
		switch {
		case absolute:
			in = docCtx()
		case input != nil:
			in = l.evalExpr(input, cs, cur, at, sc)
		default:
			in = cs
		}
		for _, st := range steps {
			in = l.evalStep(in, st, at)
			for _, p := range st.Preds {
				l.evalExpr(p, in, cur, at, sc)
			}
		}
		return in
	}
	if primary, preds, ok := xpath.FilterInfo(e); ok {
		out := l.evalExpr(primary, cs, cur, at, sc)
		for _, p := range preds {
			l.evalExpr(p, out, cur, at, sc)
		}
		return out
	}
	if name, args, ok := xpath.CallInfo(e); ok {
		for _, a := range args {
			l.evalExpr(a, cs, cur, at, sc)
		}
		switch name {
		case "current":
			return cur
		case "id":
			return elemCtx(l.g.IDElements())
		case "key":
			if len(args) > 0 {
				if k, isLit := xpath.LiteralValue(args[0]); isLit {
					if cls, declared := l.keyClass[k]; declared {
						return cls
					}
					l.flag(at, SevError, CodeUnknownKey,
						"key('%s', …) references a key no xsl:key declares", k)
				}
			}
			return unknownCtx()
		}
		if !knownFunctions[name] {
			l.flag(at, SevError, CodeUnknownFunc, "unknown function '%s()'", name)
		}
		return unknownCtx()
	}
	if subs := xpath.Subexprs(e); subs != nil {
		var out ctxSet
		for i, s := range subs {
			r := l.evalExpr(s, cs, cur, at, sc)
			if i == 0 {
				out = r
			} else {
				out = out.union(r)
			}
		}
		return out
	}
	return unknownCtx()
}

func (l *ssLint) mergeEntry(name string, cs ctxSet) {
	e, ok := l.entry[name]
	if !ok {
		l.entry[name] = cs.clone()
		l.entryStable = false
		return
	}
	if !e.covers(cs) {
		l.entry[name] = e.union(cs)
		l.entryStable = false
	}
}

func (l *ssLint) reportUnusedScope(sc *scope) {
	decls := make([]*varDecl, 0, len(sc.vars))
	for _, d := range sc.vars {
		decls = append(decls, d)
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].node.Line < decls[j].node.Line })
	l.reportUnused(decls)
}

func (l *ssLint) reportUnused(decls []*varDecl) {
	for _, d := range decls {
		if d.used {
			continue
		}
		if d.param {
			l.flag(d.node, SevInfo, CodeUnusedParam,
				"parameter '$%s' is never referenced", d.name)
		} else {
			l.flag(d.node, SevWarning, CodeUnusedVariable,
				"variable '$%s' is never referenced", d.name)
		}
	}
}

func (l *ssLint) checkUnusedNamedTemplates() {
	for _, nt := range l.sheet.NamedTemplates() {
		if l.calledTemplates[nt.Name] {
			continue
		}
		if nt.Src != nil && nt.Src.AttrValue("match") != "" {
			continue // reachable through its match pattern
		}
		l.flag(nt.Src, SevWarning, CodeUnusedTemplate,
			"named template '%s' is never called", nt.Name)
	}
}

func (l *ssLint) checkUnusedModes() {
	referenced := map[string]bool{}
	for _, m := range l.sheet.ReferencedModes() {
		referenced[m] = true
	}
	for _, mode := range l.sheet.Modes() {
		if mode == "" || referenced[mode] {
			continue
		}
		for _, r := range l.sheet.ModeRules(mode) {
			if r.Builtin {
				continue
			}
			l.flag(attrNode(r.Src, "mode"), SevWarning, CodeUnusedMode,
				"mode '%s' is never named by an xsl:apply-templates; this rule never fires", mode)
		}
	}
}

// checkShadowing flags template rules that can never fire because an
// earlier rule in dispatch order matches every node they could match.
// The rules come straight from the compiled program's jump table
// (Program.ModeEntries), so the check reasons about exactly the dispatch
// order the bytecode VM executes.
func (l *ssLint) checkShadowing() {
	prog := l.sheet.Program()
	for _, mode := range prog.Modes() {
		rules := prog.ModeEntries(mode)
		for i, r := range rules {
			if r.Builtin || r.Match == nil {
				continue
			}
			ralts := r.Match.Info()
			if len(ralts) != 1 {
				continue
			}
			for _, e := range rules[:i] {
				if e.Builtin || e.Match == nil || e.Src == r.Src {
					continue
				}
				ealts := e.Match.Info()
				if len(ealts) != 1 || !altCovers(ealts[0], ralts[0]) {
					continue
				}
				l.flag(attrNode(r.Src, "match"), SevWarning, CodeShadowedRule,
					"template rule (match=\"%s\") never fires: the rule at line %d (match=\"%s\") matches first for every node it could match",
					r.Match.String(), e.Src.Line, e.Match.String())
				break
			}
		}
	}
}

// altCovers reports whether pattern alternative ea matches every node
// alternative ra matches. Only the conservatively provable case is
// claimed: ea is a single unpredicated relative step whose node test
// subsumes ra's final step test.
func altCovers(ea, ra xpath.PatternAltInfo) bool {
	if ea.RootOnly {
		return ra.RootOnly
	}
	if ea.ID != "" || ea.Absolute || len(ea.Steps) != 1 {
		return false
	}
	se := ea.Steps[0]
	if len(se.Preds) > 0 {
		return false
	}
	if ra.RootOnly {
		return false
	}
	if ra.ID != "" && len(ra.Steps) == 0 {
		// id('…') patterns match elements.
		return !se.Attr && (se.Test == xpath.TestAnyName || se.Test == xpath.TestNode)
	}
	if len(ra.Steps) == 0 {
		return false
	}
	sr := ra.Steps[len(ra.Steps)-1]
	if se.Attr != sr.Attr {
		return false
	}
	return patternTestCovers(se, sr)
}

func patternTestCovers(se, sr xpath.PatternStepInfo) bool {
	switch se.Test {
	case xpath.TestNode:
		return true
	case xpath.TestAnyName:
		return sr.Test == xpath.TestName || sr.Test == xpath.TestAnyName || sr.Test == xpath.TestNSWildcard
	case xpath.TestNSWildcard:
		return (sr.Test == xpath.TestName || sr.Test == xpath.TestNSWildcard) && sr.Prefix == se.Prefix
	case xpath.TestName:
		return sr.Test == xpath.TestName && sr.Name == se.Name && sr.Prefix == se.Prefix
	case xpath.TestText:
		return sr.Test == xpath.TestText
	case xpath.TestComment:
		return sr.Test == xpath.TestComment
	case xpath.TestPI:
		return sr.Test == xpath.TestPI && (se.PITarget == "" || se.PITarget == sr.PITarget)
	}
	return false
}
