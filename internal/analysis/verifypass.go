package analysis

import (
	"goldweb/internal/analysis/verify"
	"goldweb/internal/xslt"
)

// The GW5xx verification codes, re-exported so diagnostic consumers can
// reference them without importing the verifier.
const (
	CodeBadProgram       = verify.CodeBadProgram       // GW501: compiled bytecode or IR fails verification
	CodeAttrAfterContent = verify.CodeAttrAfterContent // GW502: attribute emitted after child content
	CodeDuplicateAttr    = verify.CodeDuplicateAttr    // GW503: attribute definitely emitted twice
	CodeVoidContent      = verify.CodeVoidContent      // GW504: HTML void element given children
	CodeRawTextHazard    = verify.CodeRawTextHazard    // GW505: raw-text element content hazard
	CodeUnreachableCode  = verify.CodeUnreachableCode  // GW506: unreachable instructions
)

// verifyProgram runs the bytecode verifier and the result-shape
// analysis over a compiled stylesheet's program and converts the
// findings into diagnostics. Findings are positioned at the owning
// xsl:template element when one is known; the rule context is appended
// to the message the same way compile errors carry theirs.
func verifyProgram(file string, sheet *xslt.Stylesheet) []Diagnostic {
	p := sheet.Program()
	if p == nil {
		return nil
	}
	fs := verify.Program(p)
	fs = append(fs, verify.Shape(p)...)
	out := make([]Diagnostic, 0, len(fs))
	for _, f := range fs {
		d := Diagnostic{File: file, Severity: SevError, Code: f.Code, Msg: f.Msg}
		if f.Warning {
			d.Severity = SevWarning
		}
		if f.Src != nil {
			d.Line, d.Col = f.Src.Line, f.Src.Col
		}
		if f.Rule != "" {
			d.Msg += " (in " + f.Rule + ")"
		}
		out = append(out, d)
	}
	return out
}
