// Package analysis statically cross-checks XSLT stylesheets and model
// documents against the GOLD XML Schema. Where the xsd package answers
// "is this instance valid?" at publication time, this package answers
// "can this transformation ever work?" before publication: it derives a
// content-model reachability graph from the schema and walks every XPath
// pattern, select expression and attribute value template of a compiled
// stylesheet, flagging steps that are unsatisfiable under the schema,
// template rules shadowed by earlier rules, dead declarations, and
// references to keys or templates that do not exist.
//
// All diagnostics are positioned (file:line:col) and carry a stable code
// (GW1xx path reachability, GW2xx dead code, GW3xx references, GW4xx
// model documents, GW5xx bytecode/result-shape verification — see the
// analysis/verify subpackage) so tooling can filter or gate on them; the
// severity policy is documented in DESIGN.md §7 and §12.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"goldweb/internal/xsd"
)

// Severity ranks a diagnostic.
type Severity uint8

// Severities, most severe first.
const (
	SevError Severity = iota
	SevWarning
	SevInfo
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	case SevInfo:
		return "info"
	}
	return "?"
}

// MarshalText implements encoding.TextMarshaler for JSON output.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Diagnostic codes. The ranges group related checks: GW0xx input
// failures, GW1xx schema reachability, GW2xx dead stylesheet code,
// GW3xx dangling references, GW4xx model-document findings.
const (
	CodeCompileError   = "GW001" // stylesheet does not parse or compile
	CodeSchemaLoad     = "GW002" // the schema itself failed to load or compile
	CodeBadPattern     = "GW101" // match pattern unsatisfiable under the schema
	CodeBadStep        = "GW102" // element step can never select a node
	CodeBadAttribute   = "GW103" // attribute step names an impossible attribute
	CodeNoText         = "GW104" // text() step on elements with no text content
	CodeShadowedRule   = "GW201" // template rule fully shadowed by an earlier rule
	CodeUnusedTemplate = "GW202" // named template never called
	CodeUnusedVariable = "GW203" // variable never referenced
	CodeUnusedParam    = "GW204" // parameter never referenced
	CodeUnusedMode     = "GW205" // mode has rules but no apply-templates uses it
	CodeUnknownKey     = "GW301" // key() references an undeclared xsl:key
	CodeUnknownRef     = "GW302" // call-template / use-attribute-sets target missing
	CodeUnknownFunc    = "GW303" // call to a function the engine does not provide
	CodeModelInvalid   = "GW401" // model document fails schema validation
	CodeBrokenKeyref   = "GW402" // IDREF value outside the governing key's scope
)

// Diagnostic is one positioned finding.
type Diagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line,omitempty"`
	Col      int      `json:"col,omitempty"`
	Severity Severity `json:"severity"`
	Code     string   `json:"code"`
	Msg      string   `json:"message"`
}

// String renders the diagnostic in the one-line file:line:col form shared
// with xslt.CompileError positions.
func (d Diagnostic) String() string {
	var b strings.Builder
	b.WriteString(d.File)
	if d.Line > 0 {
		fmt.Fprintf(&b, ":%d:%d", d.Line, d.Col)
	}
	fmt.Fprintf(&b, ": %s %s: %s", d.Severity, d.Code, d.Msg)
	return b.String()
}

// Sort orders diagnostics by (file, line, col, code, severity, message)
// so output — `goldweb lint -json` artifacts and corpus diffs included —
// is deterministic regardless of map-iteration or pass order. The key is
// total: no two distinct diagnostics compare equal.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		return a.Msg < b.Msg
	})
}

// SchemaLoadDiagnostic converts a schema load/compile failure into a
// GW002 diagnostic. xsd.SchemaError values keep their per-file
// provenance (the offending document of a multi-file import/include
// graph) and line; other errors are attributed to the requested path.
func SchemaLoadDiagnostic(path string, err error) Diagnostic {
	d := Diagnostic{File: path, Severity: SevError, Code: CodeSchemaLoad, Msg: err.Error()}
	if se, ok := err.(*xsd.SchemaError); ok {
		if se.File != "" {
			d.File = se.File
		}
		d.Line = se.Line()
		d.Msg = se.Msg
	}
	return d
}

// HasErrors reports whether any diagnostic is error severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}
