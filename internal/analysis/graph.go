package analysis

import (
	"sort"

	"goldweb/internal/xsd"
)

// elemInfo is the merged content-model view of one element name.
type elemInfo struct {
	children   map[string]bool
	attrs      map[string]bool
	idAttrs    map[string]bool
	idrefAttrs map[string]bool
	text       bool
	// anyChildren / anyAttrs record xs:any / xs:anyAttribute wildcards:
	// the element may contain children or carry attributes beyond the
	// named sets, so negative claims about it are unsound.
	anyChildren bool
	anyAttrs    bool
}

// ContentGraph is the reachability view of a schema: which elements may
// appear where, which attributes and text content each element admits.
// Element declarations are merged by name — the schema's Russian-doll
// nesting means the same name can be declared inline in several places,
// and the graph takes the union of what any declaration permits, which
// keeps every check conservative (a step is only flagged when no
// declaration anywhere could satisfy it).
type ContentGraph struct {
	elems  map[string]*elemInfo
	roots  map[string]bool
	parent map[string]map[string]bool

	descMemo map[string]map[string]bool
	ancMemo  map[string]map[string]bool

	// schema backs substitution-group expansion during construction.
	schema *xsd.Schema
	// open records that some element somewhere declares an xs:any
	// wildcard: structural claims that need the whole element graph
	// (ancestors, siblings, "no element named X exists") are unsound
	// and the checks fall back to silence.
	open bool
}

// NewContentGraph derives the reachability graph from a compiled schema.
func NewContentGraph(s *xsd.Schema) *ContentGraph {
	g := &ContentGraph{
		elems:    map[string]*elemInfo{},
		roots:    map[string]bool{},
		parent:   map[string]map[string]bool{},
		descMemo: map[string]map[string]bool{},
		ancMemo:  map[string]map[string]bool{},
		schema:   s,
	}
	visited := map[*xsd.ElementDecl]bool{}
	for name, decl := range s.Elements {
		g.roots[name] = true
		g.visit(decl, visited)
	}
	for name, info := range g.elems {
		for child := range info.children {
			if g.parent[child] == nil {
				g.parent[child] = map[string]bool{}
			}
			g.parent[child][name] = true
		}
	}
	return g
}

func (g *ContentGraph) visit(decl *xsd.ElementDecl, visited map[*xsd.ElementDecl]bool) {
	if decl == nil || visited[decl] {
		return
	}
	visited[decl] = true
	info := g.elems[decl.Name]
	if info == nil {
		info = &elemInfo{
			children:   map[string]bool{},
			attrs:      map[string]bool{},
			idAttrs:    map[string]bool{},
			idrefAttrs: map[string]bool{},
		}
		g.elems[decl.Name] = info
	}
	switch {
	case decl.Complex != nil:
		if decl.Complex.Mixed {
			info.text = true
		}
		for _, ad := range decl.Complex.Attributes {
			if ad.Use == "prohibited" {
				continue
			}
			info.attrs[ad.Name] = true
			if ad.Type.IsID() {
				info.idAttrs[ad.Name] = true
			}
			if ad.Type.IsIDRef() {
				info.idrefAttrs[ad.Name] = true
			}
		}
		if decl.Complex.AnyAttr != nil {
			info.anyAttrs = true
		}
		g.visitParticle(info, decl.Complex.Content, visited)
	default:
		// Simple type, or no type at all (anyType): text content.
		info.text = true
	}
}

func (g *ContentGraph) visitParticle(info *elemInfo, p *xsd.Particle, visited map[*xsd.ElementDecl]bool) {
	if p == nil {
		return
	}
	switch p.Kind {
	case xsd.PElement:
		if p.Elem != nil {
			info.children[p.Elem.Name] = true
			g.visit(p.Elem, visited)
		}
		// A ref particle also dispatches to the substitution-group
		// members of its head; add them all as possible children.
		if p.Ref != "" && g.schema != nil {
			for _, m := range g.schema.SubstitutionMembers(p.Ref) {
				info.children[m.Name] = true
				g.visit(m, visited)
			}
		}
		return
	case xsd.PAny:
		info.anyChildren = true
		g.open = true
		return
	}
	for _, c := range p.Children {
		g.visitParticle(info, c, visited)
	}
}

// OpenSchema reports whether any element declares an xs:any wildcard,
// making whole-graph structural claims (ancestors, siblings, global
// non-existence) unsound.
func (g *ContentGraph) OpenSchema() bool { return g.open }

// AnyChildren reports whether element name declares an xs:any wildcard:
// its child set is open-ended beyond Children(name).
func (g *ContentGraph) AnyChildren(name string) bool {
	info := g.elems[name]
	return info != nil && info.anyChildren
}

// AnyAttrs reports whether element name declares xs:anyAttribute.
func (g *ContentGraph) AnyAttrs(name string) bool {
	info := g.elems[name]
	return info != nil && info.anyAttrs
}

// HasElement reports whether any declaration of name exists.
func (g *ContentGraph) HasElement(name string) bool { return g.elems[name] != nil }

// Roots returns the global element names (possible document roots).
func (g *ContentGraph) Roots() map[string]bool { return g.roots }

// Children returns the permitted child-element names of name.
func (g *ContentGraph) Children(name string) map[string]bool {
	if info := g.elems[name]; info != nil {
		return info.children
	}
	return nil
}

// Parents returns the element names that may contain name as a child.
func (g *ContentGraph) Parents(name string) map[string]bool { return g.parent[name] }

// HasAttr reports whether element name admits attribute attr (always
// true under an anyAttribute wildcard).
func (g *ContentGraph) HasAttr(name, attr string) bool {
	info := g.elems[name]
	return info != nil && (info.attrs[attr] || info.anyAttrs)
}

// Attrs returns the declared attribute names of element name.
func (g *ContentGraph) Attrs(name string) map[string]bool {
	if info := g.elems[name]; info != nil {
		return info.attrs
	}
	return nil
}

// AttrAnywhere reports whether any element declares attribute attr (or
// an anyAttribute wildcard that could admit it).
func (g *ContentGraph) AttrAnywhere(attr string) bool {
	for _, info := range g.elems {
		if info.attrs[attr] || info.anyAttrs {
			return true
		}
	}
	return false
}

// TextAllowed reports whether element name may have text content.
func (g *ContentGraph) TextAllowed(name string) bool {
	info := g.elems[name]
	return info != nil && info.text
}

// IDElements returns the element names that carry an ID-typed attribute —
// the only possible results of the id() function.
func (g *ContentGraph) IDElements() map[string]bool {
	out := map[string]bool{}
	for name, info := range g.elems {
		if len(info.idAttrs) > 0 {
			out[name] = true
		}
	}
	return out
}

// Descendants returns the transitive child closure of name (excluding
// name itself unless it is its own descendant).
func (g *ContentGraph) Descendants(name string) map[string]bool {
	return closure(name, g.descMemo, func(n string) map[string]bool { return g.Children(n) })
}

// Ancestors returns the transitive parent closure of name.
func (g *ContentGraph) Ancestors(name string) map[string]bool {
	return closure(name, g.ancMemo, func(n string) map[string]bool { return g.parent[n] })
}

func closure(name string, memo map[string]map[string]bool, next func(string) map[string]bool) map[string]bool {
	if got, ok := memo[name]; ok {
		return got
	}
	out := map[string]bool{}
	memo[name] = out // placed before the walk so cycles terminate
	stack := []string{name}
	seen := map[string]bool{name: true}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for n := range next(cur) {
			if !out[n] {
				out[n] = true
			}
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return out
}

// ElementNames returns every known element name, sorted, for messages.
func (g *ContentGraph) ElementNames() []string {
	out := make([]string, 0, len(g.elems))
	for name := range g.elems {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
