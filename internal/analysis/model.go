package analysis

import (
	"fmt"
	"sort"
	"strings"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
	"goldweb/internal/xsd"
)

// LintModelSource parses and lints one model document against the
// schema: GW401 for structural/type violations, GW402 for referential
// (key/keyref) violations with messages that name the governing key.
func LintModelSource(file string, src []byte, schema *xsd.Schema) []Diagnostic {
	doc, err := xmldom.Parse(src)
	if err != nil {
		d := Diagnostic{File: file, Severity: SevError, Code: CodeModelInvalid, Msg: err.Error()}
		if pe, ok := err.(*xmldom.ParseError); ok {
			d.Line, d.Col, d.Msg = pe.Line, pe.Col, pe.Msg
		}
		return []Diagnostic{d}
	}
	return LintModel(file, doc, schema)
}

// LintModel lints an already-parsed model document. The document must be
// mutable: schema-supplied attribute defaults are applied before the
// referential checks, exactly as at publication time.
func LintModel(file string, doc *xmldom.Node, schema *xsd.Schema) []Diagnostic {
	var diags []Diagnostic
	structural := schema.Validate(doc, xsd.ValidateOptions{
		ApplyDefaults:           true,
		SkipIdentityConstraints: true,
	})
	for _, e := range structural {
		diags = append(diags, Diagnostic{
			File: file, Line: e.Line,
			Severity: SevError, Code: CodeModelInvalid,
			Msg: e.Path + ": " + e.Msg,
		})
	}
	diags = append(diags, lintReferences(file, doc, schema)...)
	Sort(diags)
	return diags
}

// constraintScopes maps element names to the identity constraints their
// declarations carry, collected across the whole (Russian-doll) schema.
func constraintScopes(s *xsd.Schema) map[string][]*xsd.IdentityConstraint {
	out := map[string][]*xsd.IdentityConstraint{}
	visited := map[*xsd.ElementDecl]bool{}
	var visit func(d *xsd.ElementDecl)
	var visitParticle func(p *xsd.Particle)
	visit = func(d *xsd.ElementDecl) {
		if d == nil || visited[d] {
			return
		}
		visited[d] = true
		if len(d.Constraints) > 0 {
			out[d.Name] = append(out[d.Name], d.Constraints...)
		}
		if d.Complex != nil {
			visitParticle(d.Complex.Content)
		}
	}
	visitParticle = func(p *xsd.Particle) {
		if p == nil {
			return
		}
		if p.Kind == xsd.PElement {
			visit(p.Elem)
			return
		}
		for _, c := range p.Children {
			visitParticle(c)
		}
	}
	for _, d := range s.Elements {
		visit(d)
	}
	return out
}

// lintReferences re-evaluates every key/unique/keyref constraint the
// schema declares, reporting violations as GW402 with the governing key
// and its declared value set — richer than the validator's message, and
// scoped per declaring element instance exactly as §3.1 prescribes.
func lintReferences(file string, doc *xmldom.Node, schema *xsd.Schema) []Diagnostic {
	scopes := constraintScopes(schema)
	if len(scopes) == 0 {
		return nil
	}
	var diags []Diagnostic
	var walk func(n *xmldom.Node)
	walk = func(n *xmldom.Node) {
		if n.Type == xmldom.ElementNode {
			if ics := scopes[n.Name]; ics != nil {
				diags = append(diags, checkScope(file, n, ics)...)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(doc)
	return diags
}

func checkScope(file string, elem *xmldom.Node, ics []*xsd.IdentityConstraint) []Diagnostic {
	var diags []Diagnostic
	flag := func(at *xmldom.Node, format string, args ...interface{}) {
		d := Diagnostic{File: file, Severity: SevError, Code: CodeBrokenKeyref}
		if at != nil {
			d.Line, d.Col = at.Line, at.Col
		}
		d.Msg = fmt.Sprintf(format, args...)
		diags = append(diags, d)
	}
	for _, ic := range ics {
		vals, nodes := constraintTuples(elem, ic)
		switch ic.Kind {
		case xsd.KeyConstraint, xsd.UniqueConstraint:
			seen := map[string]*xmldom.Node{}
			for i, v := range vals {
				if v == "" {
					continue // the validator reports missing key fields
				}
				if prev, dup := seen[v]; dup {
					flag(nodes[i], "%s '%s': duplicate value '%s' (first selected at line %d)",
						ic.Kind, ic.Name, v, prev.Line)
					continue
				}
				seen[v] = nodes[i]
			}
		case xsd.KeyrefConstraint:
			var target *xsd.IdentityConstraint
			for _, other := range ics {
				if other.Name == ic.Refer && other.Kind != xsd.KeyrefConstraint {
					target = other
					break
				}
			}
			if target == nil {
				continue // schema-level problem, reported by CheckSchema
			}
			keyVals, _ := constraintTuples(elem, target)
			keys := map[string]bool{}
			for _, v := range keyVals {
				if v != "" {
					keys[v] = true
				}
			}
			for i, v := range vals {
				if v == "" || keys[v] {
					continue
				}
				flag(nodes[i], "keyref '%s': value '%s' matches no '%s' key value within %s (key selects %s, field %s; declared values: %s)",
					ic.Name, v, ic.Refer, elem.Name,
					target.SelectorSource(), strings.Join(target.FieldSources(), ", "),
					valueList(keys))
			}
		}
	}
	return diags
}

// constraintTuples evaluates a constraint's selector and fields below
// elem, returning one joined field tuple per selected node ("" when a
// field is absent).
func constraintTuples(elem *xmldom.Node, ic *xsd.IdentityConstraint) ([]string, []*xmldom.Node) {
	ctx := xpath.GetContext()
	defer xpath.PutContext(ctx)
	ctx.Node, ctx.Position, ctx.Size = elem, 1, 1
	selected, err := ic.Selector.EvalNodes(ctx)
	if err != nil {
		return nil, nil
	}
	tuples := make([]string, len(selected))
	fctx := ctx
	for i, n := range selected {
		var parts []string
		complete := true
		for _, f := range ic.Fields {
			fctx.Node = n
			fv, err := f.Eval(fctx)
			if err != nil {
				complete = false
				break
			}
			if ns, isNS := fv.(xpath.NodeSet); isNS && len(ns) == 0 {
				complete = false
				break
			}
			parts = append(parts, xpath.ToString(fv))
		}
		if complete {
			tuples[i] = strings.Join(parts, "\x1f")
		}
	}
	return tuples, selected
}

// valueList renders up to eight declared key values, sorted, for the
// GW402 message.
func valueList(keys map[string]bool) string {
	if len(keys) == 0 {
		return "(none)"
	}
	vals := make([]string, 0, len(keys))
	for v := range keys {
		vals = append(vals, strings.ReplaceAll(v, "\x1f", "|"))
	}
	sort.Strings(vals)
	if len(vals) > 8 {
		vals = append(vals[:8], "…")
	}
	return strings.Join(vals, ", ")
}
