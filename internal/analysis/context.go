package analysis

import (
	"sort"
	"strings"

	"goldweb/internal/xpath"
)

// ctxSet approximates the set of nodes an expression context may hold.
// It tracks element names precisely (against the content graph) and the
// other node categories as booleans; unknown means tracking gave up, so
// only whole-schema facts may be checked against it. The linter's policy
// is conservative: a diagnostic is emitted only when the approximation
// proves a step empty for every possible context node.
type ctxSet struct {
	unknown bool
	doc     bool
	attr    bool
	text    bool
	elems   map[string]bool
}

func unknownCtx() ctxSet { return ctxSet{unknown: true} }
func docCtx() ctxSet     { return ctxSet{doc: true} }

func elemCtx(names map[string]bool) ctxSet {
	out := ctxSet{elems: map[string]bool{}}
	for n := range names {
		out.elems[n] = true
	}
	return out
}

func (c ctxSet) clone() ctxSet {
	out := c
	out.elems = map[string]bool{}
	for n := range c.elems {
		out.elems[n] = true
	}
	return out
}

// empty reports whether the context provably holds no nodes.
func (c ctxSet) empty() bool {
	return !c.unknown && !c.doc && !c.attr && !c.text && len(c.elems) == 0
}

func (c ctxSet) union(o ctxSet) ctxSet {
	out := c.clone()
	out.unknown = out.unknown || o.unknown
	out.doc = out.doc || o.doc
	out.attr = out.attr || o.attr
	out.text = out.text || o.text
	for n := range o.elems {
		out.elems[n] = true
	}
	return out
}

// covers reports whether c is a superset of o (used by the named-template
// entry-context fixpoint to detect convergence).
func (c ctxSet) covers(o ctxSet) bool {
	if c.unknown {
		return true
	}
	if o.unknown || (o.doc && !c.doc) || (o.attr && !c.attr) || (o.text && !c.text) {
		return false
	}
	for n := range o.elems {
		if !c.elems[n] {
			return false
		}
	}
	return true
}

// describe renders the context for diagnostics: "'a' or 'b'",
// "the document root", …
func (c ctxSet) describe() string {
	var parts []string
	if len(c.elems) > 0 {
		names := make([]string, 0, len(c.elems))
		for n := range c.elems {
			names = append(names, "'"+n+"'")
		}
		sort.Strings(names)
		parts = append(parts, strings.Join(names, " or "))
	}
	if c.doc {
		parts = append(parts, "the document root")
	}
	if c.attr {
		parts = append(parts, "an attribute")
	}
	if c.text {
		parts = append(parts, "a text node")
	}
	if len(parts) == 0 {
		return "an empty context"
	}
	return strings.Join(parts, " or ")
}

// childElems returns the element-name image of the child axis over a
// context — the names reachable as children of its elements, plus the
// root elements when the context holds the document node — and whether
// any context element allows text children. open reports that some
// context element declares an xs:any wildcard, so the returned name set
// is a lower bound and emptiness claims about it are unsound. It is the
// single child transition shared by the expression walker and the
// pattern checker.
func (l *ssLint) childElems(in ctxSet) (kids map[string]bool, textOK, open bool) {
	g := l.g
	kids = map[string]bool{}
	for e := range in.elems {
		for c := range g.Children(e) {
			kids[c] = true
		}
		if g.TextAllowed(e) {
			textOK = true
		}
		if g.AnyChildren(e) {
			open = true
		}
	}
	if in.doc {
		for r := range g.Roots() {
			kids[r] = true
		}
	}
	return kids, textOK, open
}

// descElems returns the descendant (or descendant-or-self) image of a
// context's elements, including everything below the roots when the
// context holds the document node. open reports that a wildcard is
// reachable in the closure, making the set a lower bound.
func (l *ssLint) descElems(in ctxSet, orSelf bool) (uni map[string]bool, open bool) {
	g := l.g
	uni = map[string]bool{}
	for e := range in.elems {
		for d := range g.Descendants(e) {
			uni[d] = true
		}
		if orSelf {
			uni[e] = true
		}
	}
	if in.doc {
		for r := range g.Roots() {
			uni[r] = true
			for d := range g.Descendants(r) {
				uni[d] = true
			}
		}
		if g.OpenSchema() {
			open = true
		}
	}
	for e := range in.elems {
		if g.AnyChildren(e) {
			open = true
		}
	}
	for d := range uni {
		if g.AnyChildren(d) {
			open = true
		}
	}
	return uni, open
}

// evalStep applies one location step to a context approximation,
// emitting GW102/GW103/GW104 when the schema proves the step empty.
// After flagging it returns the unknown context so one root cause does
// not cascade into a diagnostic per following step.
func (l *ssLint) evalStep(in ctxSet, st xpath.StepInfo, at pos) ctxSet {
	g := l.g
	if in.unknown {
		// Only whole-schema facts are checkable, and only when the schema
		// is closed: a wildcard anywhere could admit undeclared names.
		switch {
		case st.Axis == xpath.AxisAttribute && st.Test == xpath.TestName:
			if !g.AttrAnywhere(st.Name) && !g.OpenSchema() {
				l.flag(at, SevError, CodeBadAttribute,
					"no element in the schema declares attribute '%s'", st.Name)
			}
			return ctxSet{attr: true}
		case st.Test == xpath.TestName && elementAxis(st.Axis):
			if !g.HasElement(st.Name) {
				if g.OpenSchema() {
					return unknownCtx() // may exist under a wildcard
				}
				l.flag(at, SevError, CodeBadStep,
					"no element '%s' is declared in the schema", st.Name)
			}
			return elemCtx(map[string]bool{st.Name: true})
		case st.Test == xpath.TestText:
			return ctxSet{text: true}
		}
		return unknownCtx()
	}
	if in.empty() {
		return unknownCtx()
	}

	switch st.Axis {
	case xpath.AxisChild:
		kids, textOK, open := l.childElems(in)
		// Wildcards admit elements only; text capability stays exact.
		return l.applyElemTest(in, st, at, kids, textOK, "child", open)

	case xpath.AxisAttribute:
		switch st.Test {
		case xpath.TestName:
			ok := false
			for e := range in.elems {
				if g.HasAttr(e, st.Name) {
					ok = true
					break
				}
			}
			if !ok {
				l.flag(at, SevError, CodeBadAttribute,
					"attribute '%s' is not declared on %s", st.Name, in.describe())
				return unknownCtx()
			}
			return ctxSet{attr: true}
		default:
			return ctxSet{attr: true}
		}

	case xpath.AxisDescendant, xpath.AxisDescendantOrSelf:
		uni, open := l.descElems(in, st.Axis == xpath.AxisDescendantOrSelf)
		textOK := in.text && st.Axis == xpath.AxisDescendantOrSelf
		for e := range uni {
			if g.TextAllowed(e) {
				textOK = true
			}
		}
		if open {
			// Unknown subtrees below a wildcard may hold text too.
			textOK = true
		}
		return l.applyElemTest(in, st, at, uni, textOK, "descendant", open)

	case xpath.AxisParent, xpath.AxisAncestor, xpath.AxisAncestorOrSelf:
		if in.attr || in.text {
			// Attribute/text owners are untracked.
			return unknownCtx()
		}
		if g.OpenSchema() {
			// Under a wildcard an element may occur in containers the
			// graph never saw; the parent relation is incomplete.
			return unknownCtx()
		}
		uni := map[string]bool{}
		isDoc := false
		for e := range in.elems {
			if st.Axis == xpath.AxisParent {
				for p := range g.Parents(e) {
					uni[p] = true
				}
			} else {
				for a := range g.Ancestors(e) {
					uni[a] = true
				}
				if st.Axis == xpath.AxisAncestorOrSelf {
					uni[e] = true
				}
			}
			if g.Roots()[e] {
				isDoc = true // the document node is the root's parent
			}
			for a := range g.Ancestors(e) {
				if g.Roots()[a] {
					isDoc = true
				}
			}
		}
		out := l.applyElemTest(in, st, at, uni, false, "ancestor", false)
		if isDoc && (st.Test == xpath.TestNode || st.Test == xpath.TestAnyName) {
			out.doc = st.Test == xpath.TestNode
		}
		return out

	case xpath.AxisFollowingSibling, xpath.AxisPrecedingSibling:
		if g.OpenSchema() {
			// Incomplete parent relation (see the ancestor axes above).
			return unknownCtx()
		}
		uni := map[string]bool{}
		textOK := false
		for e := range in.elems {
			for p := range g.Parents(e) {
				for c := range g.Children(p) {
					uni[c] = true
				}
				if g.TextAllowed(p) {
					textOK = true
				}
			}
		}
		if in.attr || in.text {
			return unknownCtx()
		}
		return l.applyElemTest(in, st, at, uni, textOK, "sibling", false)

	case xpath.AxisSelf:
		switch st.Test {
		case xpath.TestName:
			if !in.elems[st.Name] {
				l.flag(at, SevError, CodeBadStep,
					"self::%s can never match %s", st.Name, in.describe())
				return unknownCtx()
			}
			return elemCtx(map[string]bool{st.Name: true})
		case xpath.TestAnyName:
			return elemCtx(in.elems)
		case xpath.TestText:
			return ctxSet{text: in.text}
		case xpath.TestNode:
			return in
		}
		return unknownCtx()
	}
	// following / preceding: too coarse to track.
	return unknownCtx()
}

// applyElemTest filters a candidate element-name universe by the step's
// node test, flagging when the result is provably empty. When open is
// set the universe is only a lower bound (a wildcard admits more), so
// emptiness is never provable and results widen to unknown instead of
// flagging.
func (l *ssLint) applyElemTest(in ctxSet, st xpath.StepInfo, at pos, uni map[string]bool, textOK bool, rel string, open bool) ctxSet {
	switch st.Test {
	case xpath.TestName:
		if !uni[st.Name] {
			if open {
				if l.g.HasElement(st.Name) {
					return elemCtx(map[string]bool{st.Name: true})
				}
				return unknownCtx()
			}
			if !l.g.HasElement(st.Name) {
				l.flag(at, SevError, CodeBadStep,
					"no element '%s' is declared in the schema", st.Name)
			} else {
				l.flag(at, SevError, CodeBadStep,
					"element '%s' is never %s of %s", st.Name, article(rel), in.describe())
			}
			return unknownCtx()
		}
		return elemCtx(map[string]bool{st.Name: true})
	case xpath.TestAnyName, xpath.TestNSWildcard:
		if open {
			return unknownCtx()
		}
		if len(uni) == 0 {
			l.flag(at, SevError, CodeBadStep,
				"%s has no %s elements", in.describe(), rel)
			return unknownCtx()
		}
		return elemCtx(uni)
	case xpath.TestText:
		if !textOK {
			if open {
				return unknownCtx()
			}
			l.flag(at, SevWarning, CodeNoText,
				"%s has no text content", in.describe())
			return unknownCtx()
		}
		return ctxSet{text: true}
	case xpath.TestNode:
		if open {
			return unknownCtx()
		}
		out := elemCtx(uni)
		out.text = true
		if in.doc {
			// children of the document include comments/PIs; keep broad.
			out.unknown = false
		}
		return out
	}
	// comment() / processing-instruction(): not modeled by the schema.
	return unknownCtx()
}

// elementAxis reports whether the axis selects elements for a name test.
func elementAxis(a xpath.Axis) bool {
	return a != xpath.AxisAttribute
}

// article prefixes a relation noun with its indefinite article.
func article(rel string) string {
	if strings.HasPrefix(rel, "a") {
		return "an " + rel
	}
	return "a " + rel
}
