package verify_test

import (
	"testing"

	"goldweb/internal/analysis/verify"
)

const htmlHead = `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:output method="html"/>`

func shape(t *testing.T, body string) []verify.Finding {
	t.Helper()
	return verify.Shape(compile(t, htmlHead+body+`</xsl:stylesheet>`))
}

func TestShapeAttrAfterContent(t *testing.T) {
	fs := shape(t, `<xsl:template match="/">
    <div>text first<xsl:attribute name="id">late</xsl:attribute></div>
  </xsl:template>`)
	requireFinding(t, fs, verify.CodeAttrAfterContent, `attribute "id" is emitted after child content of <div>`)
}

func TestShapeAttrAfterContentConditionalIsClean(t *testing.T) {
	// The content is conditional, so the attribute only *may* follow
	// content — the must-analysis stays quiet.
	fs := shape(t, `<xsl:template match="/">
    <div><xsl:if test="x">text</xsl:if><xsl:attribute name="id">v</xsl:attribute></div>
  </xsl:template>`)
	requireNone(t, fs, verify.CodeAttrAfterContent)
}

func TestShapeAttrAfterContentInLoopIsClean(t *testing.T) {
	// A for-each can run zero times; its body content is a may-fact.
	fs := shape(t, `<xsl:template match="/">
    <div><xsl:for-each select="item"><p/></xsl:for-each><xsl:attribute name="id">v</xsl:attribute></div>
  </xsl:template>`)
	requireNone(t, fs, verify.CodeAttrAfterContent)
}

func TestShapeDuplicateAttr(t *testing.T) {
	fs := shape(t, `<xsl:template match="/">
    <div class="a"><xsl:attribute name="class">b</xsl:attribute></div>
  </xsl:template>`)
	requireFinding(t, fs, verify.CodeDuplicateAttr, `attribute "class" is emitted twice on <div>`)
}

func TestShapeDuplicateAttrOnDistinctElementsIsClean(t *testing.T) {
	fs := shape(t, `<xsl:template match="/">
    <div class="a"><span class="a"/></div>
  </xsl:template>`)
	requireNone(t, fs, verify.CodeDuplicateAttr)
}

func TestShapeVoidWithChildren(t *testing.T) {
	fs := shape(t, `<xsl:template match="/">
    <img src="x.png">caption</img>
  </xsl:template>`)
	requireFinding(t, fs, verify.CodeVoidContent, "<img> is an HTML void element")
}

func TestShapeVoidChildInLoop(t *testing.T) {
	// May-content is enough for GW504: a void element can never
	// legitimately have children on any path.
	fs := shape(t, `<xsl:template match="/">
    <br><xsl:for-each select="item"><p/></xsl:for-each></br>
  </xsl:template>`)
	requireFinding(t, fs, verify.CodeVoidContent, "<br> is an HTML void element")
}

func TestShapeEmptyVoidIsClean(t *testing.T) {
	fs := shape(t, `<xsl:template match="/">
    <head><link rel="stylesheet" href="a.css"/><br/><hr/></head>
  </xsl:template>`)
	requireNone(t, fs, verify.CodeVoidContent)
}

func TestShapeRawTextElementChild(t *testing.T) {
	fs := shape(t, `<xsl:template match="/">
    <script><b>not text</b></script>
  </xsl:template>`)
	requireFinding(t, fs, verify.CodeRawTextHazard, "node content inside raw-text element <script>")
}

func TestShapeRawTextCloseSequence(t *testing.T) {
	fs := shape(t, `<xsl:template match="/">
    <script>var a = "&lt;/script&gt;";</script>
  </xsl:template>`)
	requireFinding(t, fs, verify.CodeRawTextHazard, `contains "</"`)
}

func TestShapePlainScriptIsClean(t *testing.T) {
	fs := shape(t, `<xsl:template match="/">
    <script>var a = 1 &lt; 2;</script>
  </xsl:template>`)
	requireNone(t, fs, verify.CodeRawTextHazard)
}

func TestShapeXMLOutputSkipsHTMLModel(t *testing.T) {
	// Same constructs under method="xml": the HTML-only codes must not
	// fire, while the XSLT-generic ones still do.
	p := compile(t, `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:output method="xml"/>
  <xsl:template match="/">
    <br>content</br>
    <script><b>x</b></script>
    <div>text<xsl:attribute name="id">late</xsl:attribute></div>
  </xsl:template>
</xsl:stylesheet>`)
	fs := verify.Shape(p)
	requireNone(t, fs, verify.CodeVoidContent)
	requireNone(t, fs, verify.CodeRawTextHazard)
	requireFinding(t, fs, verify.CodeAttrAfterContent, `"id"`)
}
