package verify

import (
	"fmt"
	"sort"
	"strings"

	"goldweb/internal/xmldom"
	"goldweb/internal/xslt"
)

// Result-shape analysis: an abstract interpretation of the program's
// emit opcodes (segment tapes included, decoded event by event) that
// tracks the stack of open result elements along every control path and
// lints the inferred shape:
//
//	GW502  attribute emitted after child content of the same element
//	GW503  the same attribute name definitely emitted twice
//	GW504  an HTML void element given children          (html output only)
//	GW505  raw-text (<script>/<style>) content hazards  (html output only)
//
// Each open element is a frame in the abstract state; frames carry a
// must/may content pair and the set of definitely-emitted attribute
// names. Joins meet pointwise — "definitely has content" survives a
// join only when every path agrees (AND), "may have content" when any
// does (OR), and the definite-attribute sets intersect — so a
// conditional branch or a for-each that can run zero times never
// produces a false "attribute after content". The analysis is a
// worklist fixpoint; findings are collected in a second pass over the
// stable states, so a must-fact weakened by a later join can never
// leave a premature finding behind.

// Frame kinds of the shape stack. Elements are the interesting case;
// capture frames (attribute/comment/PI/message value construction) and
// sub-document frames absorb the content produced inside them.
const (
	shElem    = 'e'
	shAttr    = 'a'
	shComment = 'c'
	shPI      = 'p'
	shMsg     = 'm'
	shDoc     = 'd'
)

// shpFrame is one open construct in the abstract result stack.
type shpFrame struct {
	kind byte
	// name is the static local name ("" when computed at run time). For
	// shAttr frames it is the pending attribute's name.
	name string
	uri  string
	pc   int  // the begin pc, for reporting and join identity
	html bool // the HTML content model applies to this element
	void bool
	raw  bool
	def  bool // definitely has child content (every path)
	may  bool // may have child content (some path)
	// attrs is the set of definitely-emitted attribute keys (uri|name).
	attrs map[string]bool
}

type shpState struct{ frames []shpFrame }

func (s *shpState) clone() *shpState {
	out := &shpState{frames: make([]shpFrame, len(s.frames))}
	copy(out.frames, s.frames)
	for i := range out.frames {
		if a := out.frames[i].attrs; a != nil {
			c := make(map[string]bool, len(a))
			for k := range a {
				c[k] = true
			}
			out.frames[i].attrs = c
		}
	}
	return out
}

func (s *shpState) top() *shpFrame {
	if len(s.frames) == 0 {
		return nil
	}
	return &s.frames[len(s.frames)-1]
}

func (s *shpState) pop(kind byte) *shpFrame {
	t := s.top()
	if t == nil || t.kind != kind {
		return nil
	}
	f := *t
	s.frames = s.frames[:len(s.frames)-1]
	return &f
}

// meet joins two states reaching the same pc. Frames must agree on
// (kind, pc) — they always do for states produced from the same
// balanced bytecode; nil means the shapes are incompatible and the edge
// is dropped (the structural verifier owns that diagnosis).
func meet(a, b *shpState) *shpState {
	if len(a.frames) != len(b.frames) {
		return nil
	}
	out := a.clone()
	for i := range out.frames {
		fa, fb := &out.frames[i], &b.frames[i]
		if fa.kind != fb.kind || fa.pc != fb.pc {
			return nil
		}
		fa.def = fa.def && fb.def
		fa.may = fa.may || fb.may
		if fa.attrs != nil {
			for k := range fa.attrs {
				if !fb.attrs[k] {
					delete(fa.attrs, k)
				}
			}
		}
	}
	return out
}

func statesEqual(a, b *shpState) bool {
	if len(a.frames) != len(b.frames) {
		return false
	}
	for i := range a.frames {
		fa, fb := &a.frames[i], &b.frames[i]
		if fa.kind != fb.kind || fa.pc != fb.pc || fa.def != fb.def || fa.may != fb.may ||
			len(fa.attrs) != len(fb.attrs) {
			return false
		}
		for k := range fa.attrs {
			if !fb.attrs[k] {
				return false
			}
		}
	}
	return true
}

// shaper is the analysis driver.
type shaper struct {
	p       *xslt.Program
	code    []xslt.Instr
	htmlOut bool
	state   map[int]*shpState
	work    []int
	report  bool
	seen    map[string]bool
	out     []Finding
}

// Shape runs the result-shape analysis over a structurally valid
// program and returns the GW502–GW505 findings, annotated with their
// owning templates. Structurally broken programs yield nil — the
// GW501 checks own those.
func Shape(p *xslt.Program) []Finding {
	im := Capture(p)
	for _, f := range im.Check() {
		if !f.Warning {
			return nil
		}
	}
	sa := &shaper{
		p:       p,
		code:    im.Code,
		htmlOut: p.Output().Method == "html",
		state:   make(map[int]*shpState),
		seen:    make(map[string]bool),
	}

	// Phase 1: worklist fixpoint over the abstract states.
	sa.flow(0, &shpState{})
	for _, e := range im.Entries {
		sa.flow(e, &shpState{})
	}
	for len(sa.work) > 0 {
		pc := sa.work[len(sa.work)-1]
		sa.work = sa.work[:len(sa.work)-1]
		sa.step(pc, sa.state[pc])
	}

	// Phase 2: re-run the transfer functions against the stable states
	// with reporting on. Findings are deduplicated and pc-ordered.
	sa.report = true
	pcs := make([]int, 0, len(sa.state))
	for pc := range sa.state {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	for _, pc := range pcs {
		sa.step(pc, sa.state[pc])
	}

	attachOwners(p, sa.out)
	return sa.out
}

// flow merges a state into a successor pc and requeues it on change.
// During the reporting pass it does nothing: the states are stable.
func (sa *shaper) flow(pc int, st *shpState) {
	if sa.report || pc < 0 || pc >= len(sa.code) {
		return
	}
	have, ok := sa.state[pc]
	if !ok {
		sa.state[pc] = st.clone()
		sa.work = append(sa.work, pc)
		return
	}
	merged := meet(have, st)
	if merged == nil || statesEqual(merged, have) {
		return
	}
	sa.state[pc] = merged
	sa.work = append(sa.work, pc)
}

func (sa *shaper) finding(code string, pc int, format string, args ...interface{}) {
	if !sa.report {
		return
	}
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%s@%d:%s", code, pc, msg)
	if sa.seen[key] {
		return
	}
	sa.seen[key] = true
	sa.out = append(sa.out, Finding{Code: code, Msg: msg, PC: pc, Warning: true})
}

func displayName(f *shpFrame) string {
	if f.name == "" {
		return "(computed name)"
	}
	return f.name
}

// markContent records child content on the innermost open element.
// definite=false is a may-fact (conditional constructs, apply/call whose
// output is unknown). structured=true means the content is a node, not
// text, which matters only for the raw-text hazard.
func (sa *shaper) markContent(st *shpState, pc int, definite, structured bool) {
	t := st.top()
	if t == nil || t.kind != shElem {
		return // absorbed by a capture/doc frame, or depth 0 (unknown parent)
	}
	if t.void && t.html {
		// Reported at the element's begin pc so one offending element
		// yields one finding however many content sites it has.
		sa.finding(CodeVoidContent, t.pc,
			"<%s> is an HTML void element but is given child content", displayName(t))
	}
	if t.raw && t.html && structured && definite {
		sa.finding(CodeRawTextHazard, pc,
			"node content inside raw-text element <%s> cannot be serialized as HTML", displayName(t))
	}
	if definite {
		t.def = true
	}
	t.may = true
}

// text records character content, with the raw-text "</" hazard check.
func (sa *shaper) text(st *shpState, pc int, data string) {
	if data == "" {
		return
	}
	if t := st.top(); t != nil && t.kind == shElem && t.raw && t.html &&
		strings.Contains(data, "</") {
		sa.finding(CodeRawTextHazard, pc,
			`text inside raw-text element <%s> contains "</", which HTML output does not escape`, displayName(t))
	}
	sa.markContent(st, pc, true, false)
}

// beginElem records an element child and opens its frame.
func (sa *shaper) beginElem(st *shpState, pc int, uri, name string, static bool) {
	sa.markContent(st, pc, true, true)
	f := shpFrame{kind: shElem, pc: pc, attrs: map[string]bool{}}
	if static {
		f.name, f.uri = name, uri
		if sa.htmlOut && uri == "" {
			lower := strings.ToLower(name)
			f.html = true
			f.void = xmldom.HTMLVoid(lower)
			f.raw = xmldom.HTMLRawText(lower)
		}
	}
	st.frames = append(st.frames, f)
}

// attr records an attribute on the innermost open element: emitted after
// definite child content → GW502; name already definitely present →
// GW503. Dynamic names (computed xsl:attribute) are tracked as content
// ordering only.
func (sa *shaper) attr(st *shpState, pc int, uri, name string) {
	t := st.top()
	if t == nil || t.kind != shElem {
		return // depth 0: the receiving element is outside this body
	}
	if t.def {
		sa.finding(CodeAttrAfterContent, pc,
			"attribute %q is emitted after child content of <%s>", name, displayName(t))
	}
	if name == "" || strings.Contains(name, ":") {
		return
	}
	key := uri + "|" + name
	if t.attrs[key] {
		sa.finding(CodeDuplicateAttr, pc,
			"attribute %q is emitted twice on <%s>; the second value overwrites the first", name, displayName(t))
	}
	t.attrs[key] = true
}

// step applies one instruction's transfer function to its entry state
// and flows the results to its successors.
func (sa *shaper) step(pc int, in *shpState) {
	st := in.clone()
	instr := sa.code[pc]
	next := func() { sa.flow(pc+1, st) }
	switch instr.Op {
	case xslt.OpHalt, xslt.OpRet:
		// No successors; any open frames belong to enclosing bodies the
		// verifier cannot see, so nothing to check.
	case xslt.OpJmp:
		sa.flow(int(instr.A), st)
	case xslt.OpTest:
		sa.flow(int(instr.B), st.clone())
		next()
	case xslt.OpSeg:
		seg := segShaper{sa: sa, st: st, pc: pc}
		sa.p.Seg(int(instr.A)).Replay(&seg)
		next()
	case xslt.OpText:
		sa.text(st, pc, sa.p.StrAt(int(instr.A)))
		next()
	case xslt.OpValueOf, xslt.OpCopyOf:
		sa.markContent(st, pc, false, false)
		next()
	case xslt.OpNumber:
		sa.markContent(st, pc, true, false)
		next()
	case xslt.OpLitBegin:
		_, uri, name := sa.p.LitNameAt(int(instr.A))
		sa.beginElem(st, pc, uri, name, true)
		next()
	case xslt.OpElemBegin:
		name, ok := sa.p.ElemSiteStatic(int(instr.A))
		if ok && !strings.Contains(name, ":") {
			sa.beginElem(st, pc, "", name, true)
		} else {
			sa.beginElem(st, pc, "", "", false)
		}
		next()
	case xslt.OpEndElem:
		st.pop(shElem)
		next()
	case xslt.OpLitAttr:
		_, uri, name, _ := sa.p.LitAttrAt(int(instr.A))
		sa.attr(st, pc, uri, name)
		next()
	case xslt.OpAVTAttr:
		_, uri, name := sa.p.AVTAttrAt(int(instr.A))
		sa.attr(st, pc, uri, name)
		next()
	case xslt.OpAttrSets:
		// Attribute-set contents are merged at run time; their names are
		// out of scope for the definite-attribute set.
		next()
	case xslt.OpAttrBegin:
		name, _ := sa.p.AVTStatic(int(instr.A))
		st.frames = append(st.frames, shpFrame{kind: shAttr, name: name, pc: pc})
		next()
	case xslt.OpAttrEnd:
		if f := st.pop(shAttr); f != nil {
			sa.attr(st, pc, "", f.name)
		}
		next()
	case xslt.OpCommentBegin:
		st.frames = append(st.frames, shpFrame{kind: shComment, pc: pc})
		next()
	case xslt.OpCommentEnd:
		if st.pop(shComment) != nil {
			sa.markContent(st, pc, true, true)
		}
		next()
	case xslt.OpPIBegin:
		st.frames = append(st.frames, shpFrame{kind: shPI, pc: pc})
		next()
	case xslt.OpPIEnd:
		if st.pop(shPI) != nil {
			sa.markContent(st, pc, true, true)
		}
		next()
	case xslt.OpMsgBegin:
		st.frames = append(st.frames, shpFrame{kind: shMsg, pc: pc})
		next()
	case xslt.OpMsgEnd:
		st.pop(shMsg)
		next()
	case xslt.OpDocBegin:
		st.frames = append(st.frames, shpFrame{kind: shDoc, pc: pc})
		next()
	case xslt.OpDocEnd:
		st.pop(shDoc)
		next()
	case xslt.OpCopyBegin:
		// Leaf branch: the copied node is text/comment/PI, nothing opens.
		leaf := st.clone()
		sa.markContent(leaf, pc, false, false)
		sa.flow(int(instr.B), leaf)
		// Element branch: an element of unknown name opens.
		sa.beginElem(st, pc, "", "", false)
		st.top().may = true // copied source attributes/children are unknown
		next()
	case xslt.OpCopyEnd:
		st.pop(shElem)
		next()
	case xslt.OpApply:
		sa.markContent(st, pc, false, false)
		next()
	case xslt.OpIterate:
		sa.flow(int(instr.B), st)
	case xslt.OpApplyImports, xslt.OpCall:
		sa.markContent(st, pc, false, false)
		next()
	case xslt.OpForNext:
		sa.flow(int(instr.B), st.clone())
		next()
	case xslt.OpForEnd:
		sa.flow(int(instr.A), st)
	default:
		// OpForEach, OpEnter, OpScopeBegin/End, OpVarDecl and other
		// control opcodes do not touch the result shape.
		next()
	}
}

// segShaper replays a pre-serialized segment tape into the abstract
// state. Segments are event runs, not trees — an element opened in one
// segment may be closed instructions later — so every event mutates the
// live frame stack exactly like its opcode counterpart.
type segShaper struct {
	sa *shaper
	st *shpState
	pc int
}

func (e *segShaper) BeginElement(prefix, uri, name string) {
	e.sa.beginElem(e.st, e.pc, uri, name, true)
}
func (e *segShaper) Attr(prefix, uri, name, value string) bool {
	e.sa.attr(e.st, e.pc, uri, name)
	return true
}
func (e *segShaper) EndElement()                { e.st.pop(shElem) }
func (e *segShaper) Text(data string, raw bool) { e.sa.text(e.st, e.pc, data) }
func (e *segShaper) Comment(data string)        { e.sa.markContent(e.st, e.pc, true, true) }
func (e *segShaper) PI(name, data string)       { e.sa.markContent(e.st, e.pc, true, true) }
func (e *segShaper) CopyTree(n *xmldom.Node)    { e.sa.markContent(e.st, e.pc, false, false) }
func (e *segShaper) OpenElement() bool {
	t := e.st.top()
	return t != nil && t.kind == shElem
}
