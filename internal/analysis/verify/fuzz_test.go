package verify_test

import (
	"testing"

	"goldweb/internal/analysis/verify"
	"goldweb/internal/xslt"
)

// FuzzProgramVerifier mutates a healthy captured program image with
// fuzzer-chosen byte edits and asserts the verifier neither panics nor
// hangs on any corruption. Each 6-byte chunk of input encodes one edit:
// (pc, field, value) — opcode, operand A, or operand B.
func FuzzProgramVerifier(f *testing.F) {
	s, err := xslt.CompileStylesheetString(corpusSrc, xslt.CompileOptions{})
	if err != nil {
		f.Fatalf("compile: %v", err)
	}
	base := verify.Capture(s.Program())

	f.Add([]byte{})
	f.Add([]byte{0, 3, 0, 0, 0, 255})                  // clobber an opcode
	f.Add([]byte{0, 9, 1, 255, 255, 255})              // operand A out of range
	f.Add([]byte{0, 12, 2, 0, 0, 200})                 // jump far away
	f.Add([]byte{0, 1, 0, 0, 0, 17, 0, 2, 1, 0, 0, 9}) // two stacked edits

	f.Fuzz(func(t *testing.T, data []byte) {
		im := &verify.Image{
			Code:        append([]xslt.Instr(nil), base.Code...),
			Tables:      base.Tables,
			Entries:     append([]int(nil), base.Entries...),
			CallTargets: append([]int(nil), base.CallTargets...),
		}
		for i := 0; i+6 <= len(data) && i < 16*6; i += 6 {
			pc := (int(data[i])<<8 | int(data[i+1])) % len(im.Code)
			v := int32(data[i+3])<<16 | int32(data[i+4])<<8 | int32(data[i+5])
			switch data[i+2] % 3 {
			case 0:
				im.Code[pc].Op = xslt.Opcode(v)
			case 1:
				im.Code[pc].A = v - 1<<16 // exercise negatives too
			case 2:
				im.Code[pc].B = v - 1<<16
			}
		}
		// The only contract under corruption: terminate without panicking.
		_ = im.Check()
	})
}
