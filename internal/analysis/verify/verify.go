// Package verify is the static verification layer for the compiled
// execution artifacts: the stylesheet bytecode (xslt.Program) and the
// XPath instruction IR (xpath.Compiled). Where internal/analysis checks
// what a stylesheet *means* against the schema, this package checks
// that what the compilers *emitted* is safe to run — every jump lands
// on a real instruction, every side-table index is in bounds, the
// control-frame stack balances along every path, the jump tables agree
// with the dispatch index, and the planner's operand-stack bounds hold
// — plus a result-shape analysis (shape.go) that abstractly interprets
// the emit opcodes against the serializer's HTML content model.
//
// The verifier re-derives the VM's invariants from opcode semantics
// alone, through the read-only introspection surface of
// xslt/verify_hooks.go; it shares no bookkeeping with the compiler, so
// a lowering bug cannot vouch for itself. Findings carry GW5xx codes
// and surface through `goldweb lint` (always) and at CompileStylesheet
// time when debug verification is on (GOLDWEB_VERIFY=1).
package verify

import (
	"fmt"
	"sort"

	"goldweb/internal/xmldom"
	"goldweb/internal/xslt"
)

// Diagnostic codes of the verification layer. GW501 and GW506 are
// safety-net codes: a healthy compiler never produces them, and the
// negative corpus in verify_test.go proves each corruption class is
// caught. GW502–GW505 are the result-shape lints (shape.go) and do
// fire on real stylesheets.
const (
	// CodeBadProgram: a structural fault in compiled bytecode or IR —
	// bad jump target, side-table index out of range, unbalanced control
	// frames, jump-table inconsistency, or an unsound stack plan.
	CodeBadProgram = "GW501"
	// CodeAttrAfterContent: an attribute is emitted after child content
	// of the same element; the serializer relocates it, but per XSLT 1.0
	// §7.1.3 the construction is erroneous.
	CodeAttrAfterContent = "GW502"
	// CodeDuplicateAttr: the same attribute name is definitely emitted
	// twice on one element; the second silently overwrites the first.
	CodeDuplicateAttr = "GW503"
	// CodeVoidContent: an HTML void element (br, img, link, ...) is
	// given children; the html serializer emits no end tag, so the
	// children produce invalid markup.
	CodeVoidContent = "GW504"
	// CodeRawTextHazard: content inside an HTML raw-text element
	// (script, style) that the unescaped serialization mis-handles —
	// a child element, or text containing "</".
	CodeRawTextHazard = "GW505"
	// CodeUnreachableCode: instructions no entry point can reach.
	CodeUnreachableCode = "GW506"
)

// Finding is one verification result. PC anchors it in the program;
// Rule and Src identify the owning template when the pc falls inside a
// lowered template body.
type Finding struct {
	Code    string
	Msg     string
	PC      int
	Rule    string       // owning template label ("" for the root prologue)
	Src     *xmldom.Node // owning xsl:template element, nil for prologue/built-ins
	Warning bool         // severity hint: true = warning, false = error
}

func (f Finding) String() string {
	sev := "error"
	if f.Warning {
		sev = "warning"
	}
	return fmt.Sprintf("%s %s: pc %04d: %s", sev, f.Code, f.PC, f.Msg)
}

// Image is a detached, mutable decoding of a compiled Program: the
// instruction stream plus everything the structural checks need,
// copied out of the live program. The negative corpus and the fuzz
// target corrupt Images; Check never touches the Program itself.
type Image struct {
	Code    []xslt.Instr
	Tables  xslt.TableSizes
	Entries []int // template entry pcs, ascending
	// CallTargets holds the resolved entry pc of each call site, or -1
	// for an unresolved name (a deferred runtime error, not a fault).
	CallTargets []int
}

// Capture decodes a program into an Image.
func Capture(p *xslt.Program) *Image {
	im := &Image{Code: p.Code(), Tables: p.Tables()}
	for _, t := range p.Templates() {
		im.Entries = append(im.Entries, t.Entry)
	}
	im.CallTargets = make([]int, im.Tables.CallSites)
	for i := range im.CallTargets {
		if entry, ok := p.CallTarget(i); ok {
			im.CallTargets[i] = entry
		} else {
			im.CallTargets[i] = -1
		}
	}
	return im
}

// Control-frame kinds of the abstract balance interpretation. Distinct
// letters per capture construct make the check stricter than the VM,
// which folds attribute/comment/PI/message captures into one kind.
const (
	frApply   = 'A'
	frFor     = 'F'
	frScope   = 'S'
	frAttr    = 'a'
	frComment = 'c'
	frPI      = 'p'
	frMsg     = 'm'
	frDoc     = 'D'
)

// Check runs every structural verification over the image: opcode
// validity, operand bounds, jump-target validity, control-frame balance
// along all paths, call-target sanity, and unreachable-code detection.
// A healthy compiler output returns nil findings.
func (im *Image) Check() []Finding {
	var out []Finding
	bad := func(pc int, format string, args ...interface{}) {
		out = append(out, Finding{Code: CodeBadProgram, PC: pc, Msg: fmt.Sprintf(format, args...)})
	}
	n := len(im.Code)
	if n == 0 {
		bad(0, "empty program")
		return out
	}

	// Pass 1: per-instruction operand and jump-target bounds.
	for pc, in := range im.Code {
		if int(in.Op) >= xslt.NumOpcodes {
			bad(pc, "invalid opcode %d", in.Op)
			continue
		}
		checkOperands(im, pc, in, bad)
	}
	if len(out) > 0 {
		// Bounds faults make the flow walk meaningless (and unsafe to
		// decode); report them alone.
		return out
	}

	// Pass 2: control-frame balance along all paths, from the root
	// prologue and every template entry.
	state := make(map[int]string, n)
	type edge struct {
		pc int
		st string
	}
	var work []edge
	visit := func(pc int, st string, from int) {
		if pc < 0 || pc >= n {
			return // bounds pass already validated targets
		}
		if have, ok := state[pc]; ok {
			if have != st {
				bad(from, "frame stack mismatch entering pc %04d: [%s] vs [%s]", pc, st, have)
			}
			return
		}
		state[pc] = st
		work = append(work, edge{pc, st})
	}
	visit(0, "", 0)
	for _, e := range im.Entries {
		visit(e, "", e)
	}
	for len(work) > 0 {
		e := work[len(work)-1]
		work = work[:len(work)-1]
		pc, st := e.pc, e.st
		in := im.Code[pc]
		top := byte(0)
		if len(st) > 0 {
			top = st[len(st)-1]
		}
		needTop := func(kind byte, what string) bool {
			if top != kind {
				bad(pc, "%s with frame stack [%s] (want top %c)", what, st, kind)
				return false
			}
			return true
		}
		switch in.Op {
		case xslt.OpHalt:
			if st != "" {
				bad(pc, "halt with unbalanced frame stack [%s]", st)
			}
		case xslt.OpRet:
			if st != "" {
				bad(pc, "ret with unbalanced frame stack [%s]", st)
			}
		case xslt.OpJmp:
			visit(int(in.A), st, pc)
		case xslt.OpTest:
			visit(pc+1, st, pc)
			visit(int(in.B), st, pc)
		case xslt.OpApply:
			if pc+1 >= n || im.Code[pc+1].Op != xslt.OpIterate || im.Code[pc+1].A != in.A {
				bad(pc, "apply not followed by its iterate")
				break
			}
			visit(pc+1, st+string(rune(frApply)), pc)
		case xslt.OpIterate:
			if needTop(frApply, "iterate") {
				// The dispatch edge into a template entry is
				// interprocedural (the callee returns here via ret); the
				// only intraprocedural successor is the exit.
				visit(int(in.B), st[:len(st)-1], pc)
			}
		case xslt.OpForEach:
			if pc+1 >= n || im.Code[pc+1].Op != xslt.OpForNext {
				bad(pc, "for-each not followed by for-next")
				break
			}
			visit(pc+1, st+string(rune(frFor)), pc)
		case xslt.OpForNext:
			if needTop(frFor, "for-next") {
				visit(pc+1, st, pc)
				visit(int(in.B), st[:len(st)-1], pc)
			}
		case xslt.OpForEnd:
			if im.Code[in.A].Op != xslt.OpForNext {
				bad(pc, "for-end loops to %04d, which is %s, not for-next", in.A, im.Code[in.A].Op)
				break
			}
			visit(int(in.A), st, pc)
		case xslt.OpCall:
			if t := im.CallTargets[in.A]; t >= 0 {
				if t >= n || im.Code[t].Op != xslt.OpEnter {
					bad(pc, "call target %04d is not a template entry", t)
				}
			}
			visit(pc+1, st, pc)
		case xslt.OpApplyImports:
			visit(pc+1, st, pc)
		case xslt.OpEnter:
			if !isEntry(im.Entries, pc) {
				bad(pc, "enter at a pc that is not a registered template entry")
			}
			visit(pc+1, st, pc)
		case xslt.OpScopeBegin:
			visit(pc+1, st+string(rune(frScope)), pc)
		case xslt.OpScopeEnd:
			if needTop(frScope, "scope-end") {
				visit(pc+1, st[:len(st)-1], pc)
			}
		case xslt.OpAttrBegin:
			visit(pc+1, st+string(rune(frAttr)), pc)
		case xslt.OpAttrEnd:
			if needTop(frAttr, "attr-end") {
				visit(pc+1, st[:len(st)-1], pc)
			}
		case xslt.OpCommentBegin:
			visit(pc+1, st+string(rune(frComment)), pc)
		case xslt.OpCommentEnd:
			if needTop(frComment, "comment-end") {
				visit(pc+1, st[:len(st)-1], pc)
			}
		case xslt.OpPIBegin:
			visit(pc+1, st+string(rune(frPI)), pc)
		case xslt.OpPIEnd:
			if needTop(frPI, "pi-end") {
				visit(pc+1, st[:len(st)-1], pc)
			}
		case xslt.OpMsgBegin:
			visit(pc+1, st+string(rune(frMsg)), pc)
		case xslt.OpMsgEnd:
			if needTop(frMsg, "msg-end") {
				visit(pc+1, st[:len(st)-1], pc)
			}
		case xslt.OpDocBegin:
			visit(pc+1, st+string(rune(frDoc)), pc)
		case xslt.OpDocEnd:
			if needTop(frDoc, "doc-end") {
				visit(pc+1, st[:len(st)-1], pc)
			}
		case xslt.OpCopyBegin:
			visit(pc+1, st, pc)
			visit(int(in.B), st, pc) // leaf-node skip
		default:
			// Plain emit opcodes fall through.
			visit(pc+1, st, pc)
		}
	}

	// Pass 3: unreachable-opcode detection, reported per contiguous run.
	for pc := 0; pc < n; {
		if _, ok := state[pc]; ok {
			pc++
			continue
		}
		end := pc
		for end < n {
			if _, ok := state[end]; ok {
				break
			}
			end++
		}
		out = append(out, Finding{
			Code: CodeUnreachableCode, PC: pc, Warning: true,
			Msg: fmt.Sprintf("instructions %04d..%04d are unreachable from every entry point", pc, end-1),
		})
		pc = end
	}
	return out
}

// checkOperands validates one instruction's operands against the
// side-table sizes and the code bounds.
func checkOperands(im *Image, pc int, in xslt.Instr, bad func(int, string, ...interface{})) {
	n := len(im.Code)
	idx := func(what string, got int32, size int) {
		if int(got) < 0 || int(got) >= size {
			bad(pc, "%s: %s index %d out of range [0,%d)", in.Op, what, got, size)
		}
	}
	jump := func(what string, got int32) {
		if int(got) < 0 || int(got) >= n {
			bad(pc, "%s: %s target %d outside [0,%d)", in.Op, what, got, n)
		}
	}
	t := im.Tables
	switch in.Op {
	case xslt.OpJmp:
		jump("jump", in.A)
	case xslt.OpTest:
		idx("expr", in.A, t.Exprs)
		jump("false-branch", in.B)
	case xslt.OpSeg:
		idx("segment", in.A, t.Segs)
	case xslt.OpText:
		idx("string", in.A, t.Strs)
	case xslt.OpValueOf, xslt.OpCopyOf:
		idx("expr", in.A, t.Exprs)
	case xslt.OpLitBegin:
		idx("literal name", in.A, t.LitNames)
	case xslt.OpAttrSets:
		idx("name list", in.A, t.NameLists)
	case xslt.OpLitAttr:
		idx("literal attr", in.A, t.LitAttrs)
	case xslt.OpAVTAttr:
		idx("avt attr", in.A, t.AVTAttrs)
	case xslt.OpApply:
		idx("apply site", in.A, t.ApplySites)
	case xslt.OpIterate:
		idx("apply site", in.A, t.ApplySites)
		jump("exit", in.B)
	case xslt.OpForEach:
		idx("for site", in.A, t.ForSites)
	case xslt.OpForNext:
		jump("exit", in.B)
	case xslt.OpForEnd:
		jump("loop head", in.A)
	case xslt.OpCall:
		idx("call site", in.A, t.CallSites)
	case xslt.OpEnter:
		idx("template", in.A, t.Templates)
	case xslt.OpVarDecl:
		idx("var decl", in.A, t.VarDecls)
	case xslt.OpElemBegin:
		idx("elem site", in.A, t.ElemSites)
	case xslt.OpAttrBegin, xslt.OpPIBegin, xslt.OpDocBegin:
		idx("avt", in.A, t.AVTs)
	case xslt.OpCopyBegin:
		idx("copy site", in.A, t.CopySites)
		jump("leaf skip", in.B)
	case xslt.OpNumber:
		idx("number site", in.A, t.NumSites)
	}
}

func isEntry(entries []int, pc int) bool {
	i := sort.SearchInts(entries, pc)
	return i < len(entries) && entries[i] == pc
}

// Program runs the full verification of a compiled program: the
// structural image checks, jump-table consistency against the per-mode
// dispatch index, and the IR verification of every reachable compiled
// expression. Findings are annotated with the owning template.
func Program(p *xslt.Program) []Finding {
	im := Capture(p)
	out := im.Check()

	// Jump-table (ModeEntries) consistency: every dispatch entry must be
	// a registered template entry pc holding an enter instruction, and
	// entries must be in dispatch order — import precedence, then
	// priority, non-increasing.
	code := im.Code
	for _, mode := range p.Modes() {
		entries := p.ModeEntries(mode)
		for i, r := range entries {
			if r.Entry < 0 || r.Entry >= len(code) || code[r.Entry].Op != xslt.OpEnter || !isEntry(im.Entries, r.Entry) {
				out = append(out, Finding{Code: CodeBadProgram, PC: r.Entry,
					Msg: fmt.Sprintf("mode %q: dispatch entry %d does not target a template entry", mode, r.Entry)})
			}
			if i > 0 {
				prev := entries[i-1]
				if prev.ImportPrec < r.ImportPrec ||
					(prev.ImportPrec == r.ImportPrec && prev.Priority < r.Priority) {
					out = append(out, Finding{Code: CodeBadProgram, PC: r.Entry,
						Msg: fmt.Sprintf("mode %q: dispatch entries out of precedence order at #%d", mode, i)})
				}
			}
		}
	}

	// IR verification: every compiled expression the program can reach.
	for _, x := range p.Exprs() {
		if err := x.VerifyIR(); err != nil {
			out = append(out, Finding{Code: CodeBadProgram, Msg: err.Error()})
		}
	}

	attachOwners(p, out)
	return out
}

// Stats reports the verification surface of a program: instruction and
// distinct-expression counts, for the -verify summary of `goldweb lint`.
func Stats(p *xslt.Program) (ops, exprs int) {
	return len(p.Code()), len(p.Exprs())
}

// attachOwners annotates findings with the template whose body contains
// their pc.
func attachOwners(p *xslt.Program, fs []Finding) {
	tmpls := p.Templates()
	for i := range fs {
		pc := fs[i].PC
		var owner *xslt.DispatchRule
		for j := range tmpls {
			if tmpls[j].Entry <= pc {
				owner = &tmpls[j]
			} else {
				break
			}
		}
		if owner != nil {
			fs[i].Rule = owner.Rule()
			fs[i].Src = owner.Src
		}
	}
}

// Err folds findings into a single error for the CompileStylesheet-time
// hook: the first error-severity finding wins, warnings are ignored
// (shape lints are advisory and belong to the linter, not the compiler).
func Err(fs []Finding) error {
	for _, f := range fs {
		if !f.Warning {
			return fmt.Errorf("%s: pc %04d: %s", f.Code, f.PC, f.Msg)
		}
	}
	return nil
}

func init() {
	// Self-check hook: any binary linking this package can verify every
	// program CompileStylesheet lowers (GOLDWEB_VERIFY=1 or
	// xslt.EnableCompileVerify).
	xslt.RegisterProgramVerifier(func(p *xslt.Program) error {
		return Err(Program(p))
	})
}
