package verify_test

import (
	"strings"
	"testing"

	"goldweb/internal/analysis/verify"
	"goldweb/internal/core"
	"goldweb/internal/xslt"
)

func compile(t *testing.T, src string) *xslt.Program {
	t.Helper()
	s, err := xslt.CompileStylesheetString(src, xslt.CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p := s.Program()
	if p == nil {
		t.Fatal("no program")
	}
	return p
}

// corpusSrc exercises every frame construct the balance walk tracks:
// apply/iterate, for-each, test branches, scopes, attribute and comment
// captures, copy, and a named-template call.
const corpusSrc = `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:output method="html"/>
  <xsl:template match="/">
    <div>
      <xsl:attribute name="id">top</xsl:attribute>
      <xsl:if test="item"><p><xsl:value-of select="."/></p></xsl:if>
      <xsl:for-each select="item">
        <xsl:variable name="v" select="position()"/>
        <li><xsl:value-of select="$v"/></li>
      </xsl:for-each>
      <xsl:comment>done</xsl:comment>
      <xsl:copy><xsl:apply-templates/></xsl:copy>
      <xsl:call-template name="aux"/>
    </div>
  </xsl:template>
  <xsl:template name="aux"><span>aux</span></xsl:template>
  <xsl:template match="item"><em><xsl:value-of select="."/></em></xsl:template>
</xsl:stylesheet>`

func findOp(t *testing.T, code []xslt.Instr, op xslt.Opcode) int {
	t.Helper()
	for pc, in := range code {
		if in.Op == op {
			return pc
		}
	}
	t.Fatalf("no %s instruction in program", op)
	return -1
}

func requireFinding(t *testing.T, fs []verify.Finding, code, substr string) {
	t.Helper()
	for _, f := range fs {
		if f.Code == code && strings.Contains(f.Msg, substr) {
			return
		}
	}
	t.Fatalf("no %s finding containing %q; got %v", code, substr, fs)
}

func requireNone(t *testing.T, fs []verify.Finding, code string) {
	t.Helper()
	for _, f := range fs {
		if f.Code == code {
			t.Fatalf("unexpected %s finding: %s", code, f.Msg)
		}
	}
}

// TestBuiltinStylesheetsVerifyClean is the headline acceptance check:
// the stylesheets every publish runs through must verify clean, program
// structure, IR and result shape alike.
func TestBuiltinStylesheetsVerifyClean(t *testing.T) {
	for name, src := range map[string]string{"single.xsl": core.SingleXSL, "multi.xsl": core.MultiXSL} {
		p := compile(t, src)
		if fs := verify.Program(p); len(fs) != 0 {
			t.Errorf("%s: program verifier: %v", name, fs)
		}
		if fs := verify.Shape(p); len(fs) != 0 {
			t.Errorf("%s: shape analysis: %v", name, fs)
		}
		ops, exprs := verify.Stats(p)
		if ops == 0 || exprs == 0 {
			t.Errorf("%s: implausible stats ops=%d exprs=%d", name, ops, exprs)
		}
	}
}

func TestCorpusProgramVerifiesClean(t *testing.T) {
	p := compile(t, corpusSrc)
	if fs := verify.Program(p); len(fs) != 0 {
		t.Fatalf("expected clean verification, got %v", fs)
	}
}

// The negative corpus: each hand-seeded corruption class must be caught
// with its specific diagnostic.

func TestCorruptJumpTarget(t *testing.T) {
	im := verify.Capture(compile(t, corpusSrc))
	pc := findOp(t, im.Code, xslt.OpTest)
	im.Code[pc].B = 9999
	requireFinding(t, im.Check(), verify.CodeBadProgram, "false-branch target 9999")
}

func TestCorruptSideTableIndex(t *testing.T) {
	im := verify.Capture(compile(t, corpusSrc))
	pc := findOp(t, im.Code, xslt.OpValueOf)
	im.Code[pc].A = 9999
	requireFinding(t, im.Check(), verify.CodeBadProgram, "expr index 9999 out of range")
}

func TestCorruptUnbalancedFrame(t *testing.T) {
	im := verify.Capture(compile(t, corpusSrc))
	// Sever an attribute capture's end: the frame stays open all the way
	// to the template's ret.
	pc := findOp(t, im.Code, xslt.OpAttrEnd)
	im.Code[pc] = xslt.Instr{Op: xslt.OpEndElem}
	requireFinding(t, im.Check(), verify.CodeBadProgram, "unbalanced frame stack")
}

func TestCorruptFrameKindMismatch(t *testing.T) {
	im := verify.Capture(compile(t, corpusSrc))
	// A comment-end closing an attribute capture is a kind mismatch even
	// though the VM folds both into one capture frame.
	pc := findOp(t, im.Code, xslt.OpAttrEnd)
	im.Code[pc] = xslt.Instr{Op: xslt.OpCommentEnd}
	requireFinding(t, im.Check(), verify.CodeBadProgram, "comment-end with frame stack")
}

func TestCorruptOpcode(t *testing.T) {
	im := verify.Capture(compile(t, corpusSrc))
	im.Code[findOp(t, im.Code, xslt.OpValueOf)].Op = xslt.Opcode(211)
	requireFinding(t, im.Check(), verify.CodeBadProgram, "invalid opcode 211")
}

func TestUnreachableCode(t *testing.T) {
	im := &verify.Image{
		Code: []xslt.Instr{
			{Op: xslt.OpJmp, A: 2},
			{Op: xslt.OpText, A: 0},
			{Op: xslt.OpHalt},
		},
		Tables: xslt.TableSizes{Strs: 1},
	}
	fs := im.Check()
	requireFinding(t, fs, verify.CodeUnreachableCode, "0001..0001")
	requireNone(t, fs, verify.CodeBadProgram)
}

func TestEmptyProgram(t *testing.T) {
	im := &verify.Image{}
	requireFinding(t, im.Check(), verify.CodeBadProgram, "empty program")
}

// TestErrSeverity: Err folds error findings into an error and ignores
// advisory warnings.
func TestErrSeverity(t *testing.T) {
	if err := verify.Err([]verify.Finding{{Code: verify.CodeVoidContent, Warning: true}}); err != nil {
		t.Fatalf("warnings must not become errors: %v", err)
	}
	err := verify.Err([]verify.Finding{
		{Code: verify.CodeUnreachableCode, Warning: true},
		{Code: verify.CodeBadProgram, Msg: "boom", PC: 7},
	})
	if err == nil || !strings.Contains(err.Error(), "GW501") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want GW501 error, got %v", err)
	}
}

// TestCompileVerifyHook: with debug verification enabled every
// CompileStylesheet self-checks through the registered verifier.
func TestCompileVerifyHook(t *testing.T) {
	prev := xslt.EnableCompileVerify(true)
	defer xslt.EnableCompileVerify(prev)
	if _, err := xslt.CompileStylesheetString(corpusSrc, xslt.CompileOptions{}); err != nil {
		t.Fatalf("verified compile of a healthy stylesheet failed: %v", err)
	}
}

// TestFindingOwners: findings inside a template body are attributed to
// that template's rule.
func TestFindingOwners(t *testing.T) {
	p := compile(t, `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:output method="html"/>
  <xsl:template match="/"><root><xsl:apply-templates/></root></xsl:template>
  <xsl:template match="fact"><br>oops</br></xsl:template>
</xsl:stylesheet>`)
	fs := verify.Shape(p)
	requireFinding(t, fs, verify.CodeVoidContent, "void element")
	for _, f := range fs {
		if f.Code == verify.CodeVoidContent {
			if !strings.Contains(f.Rule, `match="fact"`) {
				t.Fatalf("finding not attributed to its template: rule=%q", f.Rule)
			}
			if f.Src == nil {
				t.Fatal("finding lost its source node")
			}
		}
	}
}
