package analysis_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goldweb/internal/analysis"
	"goldweb/internal/core"
	"goldweb/internal/xsd"
)

var update = flag.Bool("update", false, "rewrite golden .want files")

// runGolden lints every input file in testdata/<dir> and compares the
// rendered diagnostics line-for-line with the companion .want file.
func runGolden(t *testing.T, dir, ext string, lint func(name string, src []byte) []analysis.Diagnostic) {
	files, err := filepath.Glob(filepath.Join("testdata", dir, "*"+ext))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden inputs in testdata/%s: %v", dir, err)
	}
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ext)
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			diags := lint(filepath.Base(f), src)
			var b strings.Builder
			for _, d := range diags {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			wantFile := strings.TrimSuffix(f, ext) + ".want"
			if *update {
				if err := os.WriteFile(wantFile, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(wantFile)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with go test -run Golden -update): %v", err)
			}
			if b.String() != string(want) {
				t.Errorf("diagnostics mismatch\ngot:\n%swant:\n%s", b.String(), want)
			}
		})
	}
}

func TestGoldenStylesheets(t *testing.T) {
	schema := core.MustSchema()
	runGolden(t, "stylesheets", ".xsl", func(name string, src []byte) []analysis.Diagnostic {
		return analysis.LintStylesheet(name, src, schema)
	})
}

func TestGoldenModels(t *testing.T) {
	schema := core.MustSchema()
	runGolden(t, "models", ".xml", func(name string, src []byte) []analysis.Diagnostic {
		return analysis.LintModelSource(name, src, schema)
	})
}

// TestGoldenGeneralSchema exercises the schema-parametric frontier: the
// committed non-GOLD example vocabulary (examples/library, a multi-file
// schema with substitution groups, wildcards, union and list types) is
// loaded with the xsd.Loader, its shipped stylesheet and instance must
// lint clean, and the corpus under testdata/general must reproduce its
// findings against that schema.
func TestGoldenGeneralSchema(t *testing.T) {
	exampleDir := filepath.Join("..", "..", "examples", "library")
	schema, err := xsd.LoadSchemaFile(filepath.Join(exampleDir, "library.xsd"))
	if err != nil {
		t.Fatalf("loading example schema: %v", err)
	}
	clean := []struct {
		file string
		lint func(name string, src []byte) []analysis.Diagnostic
	}{
		{"library.xsl", func(n string, s []byte) []analysis.Diagnostic { return analysis.LintStylesheet(n, s, schema) }},
		{"library.xml", func(n string, s []byte) []analysis.Diagnostic { return analysis.LintModelSource(n, s, schema) }},
	}
	for _, c := range clean {
		src, err := os.ReadFile(filepath.Join(exampleDir, c.file))
		if err != nil {
			t.Fatal(err)
		}
		if diags := c.lint(c.file, src); len(diags) != 0 {
			t.Errorf("shipped example %s must lint clean, got %d findings; first: %s", c.file, len(diags), diags[0])
		}
	}
	runGolden(t, "general", ".xsl", func(name string, src []byte) []analysis.Diagnostic {
		return analysis.LintStylesheet(name, src, schema)
	})
}

// Every diagnostic code documented in DESIGN.md §7 must be triggered by
// at least one golden corpus file.
func TestGoldenCorpusCoversAllCodes(t *testing.T) {
	schema := core.MustSchema()
	covered := map[string]bool{}
	collect := func(dir, ext string, lint func(name string, src []byte) []analysis.Diagnostic) {
		files, _ := filepath.Glob(filepath.Join("testdata", dir, "*"+ext))
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range lint(filepath.Base(f), src) {
				covered[d.Code] = true
			}
		}
	}
	collect("stylesheets", ".xsl", func(name string, src []byte) []analysis.Diagnostic {
		return analysis.LintStylesheet(name, src, schema)
	})
	collect("models", ".xml", func(name string, src []byte) []analysis.Diagnostic {
		return analysis.LintModelSource(name, src, schema)
	})
	all := []string{
		analysis.CodeCompileError,
		analysis.CodeBadPattern, analysis.CodeBadStep,
		analysis.CodeBadAttribute, analysis.CodeNoText,
		analysis.CodeShadowedRule, analysis.CodeUnusedTemplate,
		analysis.CodeUnusedVariable, analysis.CodeUnusedParam,
		analysis.CodeUnusedMode,
		analysis.CodeUnknownKey, analysis.CodeUnknownRef, analysis.CodeUnknownFunc,
		analysis.CodeModelInvalid, analysis.CodeBrokenKeyref,
		analysis.CodeAttrAfterContent, analysis.CodeDuplicateAttr,
		analysis.CodeVoidContent, analysis.CodeRawTextHazard,
	}
	for _, code := range all {
		if !covered[code] {
			t.Errorf("diagnostic code %s is not exercised by any golden corpus file", code)
		}
	}
}
