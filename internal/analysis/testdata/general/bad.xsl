<?xml version="1.0"?>
<!-- Deliberate mistakes against the examples/library schema: an
     undeclared attribute, a child the closed 'book' content model can
     never hold (the schema's xs:any sits elsewhere), and a dead named
     template. -->
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:template match="/">
    <xsl:apply-templates select="library/book"/>
  </xsl:template>
  <xsl:template match="book">
    <xsl:value-of select="@missing"/>
    <xsl:value-of select="shelf"/>
  </xsl:template>
  <xsl:template name="never-called">
    <xsl:text>dead</xsl:text>
  </xsl:template>
</xsl:stylesheet>
