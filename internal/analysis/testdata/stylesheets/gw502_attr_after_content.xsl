<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:output method="html"/>
  <xsl:template match="goldmodel">
    <div>heading text<xsl:attribute name="id">arrives-late</xsl:attribute></div>
  </xsl:template>
</xsl:stylesheet>
