<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:param name="theme" select="'plain'"/>
  <xsl:template match="goldmodel">
    <xsl:apply-templates/>
  </xsl:template>
</xsl:stylesheet>
