<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:template match="goldmodel">
    <xsl:variable name="title" select="@name"/>
    <h1>static heading</h1>
  </xsl:template>
</xsl:stylesheet>
