<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:template match="dimclass">
    <!-- dimclass has no 'units' attribute -->
    <xsl:value-of select="@units"/>
  </xsl:template>
</xsl:stylesheet>
