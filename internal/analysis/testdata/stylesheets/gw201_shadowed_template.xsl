<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <!-- same pattern, same priority: XSLT 1.0 lets the later rule win,
       so this one can never fire -->
  <xsl:template match="dimclass">
    <p>first</p>
  </xsl:template>
  <xsl:template match="dimclass">
    <p>second</p>
  </xsl:template>
</xsl:stylesheet>
