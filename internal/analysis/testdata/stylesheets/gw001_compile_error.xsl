<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:template match="goldmodel">
    <xsl:value-of select="dimclasses/dimclass["/>
  </xsl:template>
</xsl:stylesheet>
