<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:key name="dim-by-id" match="dimclass" use="@id"/>
  <xsl:template match="goldmodel">
    <!-- the key is declared as 'dim-by-id', not 'dims' -->
    <xsl:value-of select="key('dims', 'dc1')/@name"/>
    <xsl:value-of select="key('dim-by-id', 'dc1')/@name"/>
  </xsl:template>
</xsl:stylesheet>
