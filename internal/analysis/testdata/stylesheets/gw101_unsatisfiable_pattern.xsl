<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:template match="goldmodel">
    <xsl:apply-templates/>
  </xsl:template>
  <!-- no such element anywhere in the schema -->
  <xsl:template match="widget"/>
  <!-- both elements exist, but a factclass never contains a dimclass -->
  <xsl:template match="factclass/dimclass"/>
</xsl:stylesheet>
