<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:template match="dimclass">
    <!-- dimclass carries everything in attributes; it never has text -->
    <xsl:value-of select="text()"/>
  </xsl:template>
</xsl:stylesheet>
