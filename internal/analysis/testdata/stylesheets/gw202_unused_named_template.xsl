<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:template match="goldmodel">
    <xsl:apply-templates/>
  </xsl:template>
  <xsl:template name="orphan-helper">
    <hr/>
  </xsl:template>
</xsl:stylesheet>
