<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:output method="html"/>
  <xsl:template match="goldmodel">
    <script>var markup = "&lt;/script&gt; escapes nothing here";</script>
  </xsl:template>
</xsl:stylesheet>
