<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:output method="html"/>
  <xsl:template match="goldmodel">
    <img src="logo.png">caption inside a void element</img>
  </xsl:template>
</xsl:stylesheet>
