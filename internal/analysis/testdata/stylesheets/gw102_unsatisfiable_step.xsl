<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:template match="goldmodel">
    <!-- dimclass is two levels down: goldmodel/dimclasses/dimclass -->
    <xsl:value-of select="dimclass/@name"/>
  </xsl:template>
</xsl:stylesheet>
