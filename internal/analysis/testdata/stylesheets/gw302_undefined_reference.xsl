<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:attribute-set name="cell"/>
  <xsl:template match="goldmodel">
    <xsl:call-template name="render-header"/>
    <td xsl:use-attribute-sets="cells"/>
  </xsl:template>
</xsl:stylesheet>
