package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goldweb/internal/analysis"
	"goldweb/internal/core"
)

// The shipped stylesheets and every sample model must lint completely
// clean — the analyzer's conservative policy means any finding here is
// either a real bug in the assets or a linter false positive, and both
// block the release.
func TestCleanCorpusStylesheets(t *testing.T) {
	schema := core.MustSchema()
	for _, tc := range []struct {
		name, src string
	}{
		{"single.xsl", core.SingleXSL},
		{"multi.xsl", core.MultiXSL},
	} {
		t.Run(tc.name, func(t *testing.T) {
			diags := analysis.LintStylesheet(tc.name, []byte(tc.src), schema)
			for _, d := range diags {
				t.Errorf("unexpected finding: %s", d)
			}
		})
	}
}

func TestCleanCorpusModels(t *testing.T) {
	schema := core.MustSchema()
	for _, tc := range []struct {
		name  string
		model *core.Model
	}{
		{"sales", core.SampleSales()},
		{"hospital", core.SampleHospital()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := tc.model.XMLString()
			diags := analysis.LintModelSource(tc.name+".xml", []byte(src), schema)
			for _, d := range diags {
				t.Errorf("unexpected finding: %s", d)
			}
		})
	}
}

// Every committed example model must lint clean too — this is the same
// corpus CI runs `goldweb lint` over.
func TestCleanCorpusExampleModels(t *testing.T) {
	schema := core.MustSchema()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "models", "*.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 5 {
		t.Fatalf("expected the five example models, found %d", len(paths))
	}
	for _, p := range paths {
		t.Run(filepath.Base(p), func(t *testing.T) {
			src, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range analysis.LintModelSource(filepath.Base(p), src, schema) {
				t.Errorf("unexpected finding: %s", d)
			}
		})
	}
}

// Corrupting a clean sample model must surface a referential (GW402)
// finding while still passing the DTD-style global ID/IDREF check that
// the paper's §3.1 argues is too weak.
func TestBrokenModel(t *testing.T) {
	schema := core.MustSchema()
	src := core.SampleSales().XMLString()
	// Repoint the first additivity's dimclass IDREF at the goldmodel id
	// itself: the ID exists globally, but the scoped dimClassKey keyref
	// only admits dimclass ids.
	rootID := attrValue(t, src, "<goldmodel", "id")
	broken := strings.Replace(src, `<additivity dimclass="`+attrValue(t, src, "<additivity", "dimclass")+`"`,
		`<additivity dimclass="`+rootID+`"`, 1)
	if broken == src {
		t.Fatal("failed to seed broken reference into sample model")
	}
	diags := analysis.LintModelSource("bad.xml", []byte(broken), schema)
	var gw402 bool
	for _, d := range diags {
		if d.Code == analysis.CodeBrokenKeyref {
			gw402 = true
		} else {
			t.Errorf("unexpected extra finding: %s", d)
		}
	}
	if !gw402 {
		t.Fatalf("seeded dangling keyref not reported; got %v", diags)
	}
}

// attrValue extracts attr="..." from the first occurrence of marker in src.
func attrValue(t *testing.T, src, marker, attr string) string {
	t.Helper()
	i := strings.Index(src, marker)
	if i < 0 {
		t.Fatalf("marker %q not found in sample model", marker)
	}
	seg := src[i:]
	if end := strings.Index(seg, ">"); end >= 0 {
		seg = seg[:end]
	}
	key := attr + `="`
	j := strings.Index(seg, key)
	if j < 0 {
		t.Fatalf("attribute %q not found near %q", attr, marker)
	}
	seg = seg[j+len(key):]
	return seg[:strings.Index(seg, `"`)]
}
