package htmlgen

import (
	"strings"
	"testing"

	"goldweb/internal/core"
	"goldweb/internal/xmldom"
	"goldweb/internal/xsd"
)

// specialModel builds a model whose names and descriptions are full of
// markup-significant characters; the pipeline must escape them at every
// stage (XML attribute, HTML text, HTML attribute).
func specialModel(t *testing.T) *core.Model {
	t.Helper()
	b := core.NewModel(`R&D <Sales> "2002"`).
		Describe(`Tom & Jerry's <model> with "quotes" and 'apostrophes'`)
	d := b.Dimension("D&D").
		Key("id", "OID").
		Descriptor("name <desc>", "String")
	d.Level("L<1>").
		Key("lid", "OID").
		Descriptor("lname", "String")
	d.Rollup("L<1>")
	f := b.Fact("F&F").Aggregates("D&D")
	f.Measure("q&a", "Integer").Describe(`uses < and > and &`)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSpecialCharactersSurviveXMLRoundTrip(t *testing.T) {
	m := specialModel(t)
	back, err := core.ModelFromXMLString(m.XMLString())
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != m.Name || back.Description != m.Description {
		t.Errorf("round trip mangled: %q / %q", back.Name, back.Description)
	}
	if back.Facts[0].Atts[0].Name != "q&a" {
		t.Errorf("measure name: %q", back.Facts[0].Atts[0].Name)
	}
}

func TestSpecialCharactersValidateAgainstSchema(t *testing.T) {
	errs := core.MustSchema().ValidateString(specialModel(t).XMLString(), xsd.ValidateOptions{})
	if len(errs) != 0 {
		t.Errorf("schema rejected special characters: %v", errs)
	}
}

func TestSpecialCharactersEscapedInHTML(t *testing.T) {
	m := specialModel(t)
	for _, mode := range []Mode{SinglePage, MultiPage} {
		site, err := Publish(m, Options{Mode: mode})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		for name, content := range site.Pages {
			if !strings.HasSuffix(name, ".html") {
				continue
			}
			s := string(content)
			// A raw "R&D" (un-escaped ampersand followed by non-entity)
			// would be invalid markup; the escaped form must be present
			// where the model name is shown.
			if strings.Contains(s, "R&D") && !strings.Contains(s, "R&amp;D") {
				t.Errorf("%s/%s: unescaped ampersand", mode, name)
			}
			if strings.Contains(s, "<Sales>") {
				t.Errorf("%s/%s: unescaped angle brackets from model name", mode, name)
			}
			if !strings.Contains(s, "R&amp;D &lt;Sales&gt;") {
				continue // the name may legitimately not appear on level pages
			}
		}
		index := string(site.Page(IndexName))
		if !strings.Contains(index, "R&amp;D &lt;Sales&gt;") {
			t.Errorf("%s: index does not show the escaped model name:\n%.300s", mode, index)
		}
		if errs := CheckLinks(site); len(errs) != 0 {
			t.Errorf("%s: links broken by escaping: %v", mode, errs)
		}
	}
}

func TestSiteDeterminism(t *testing.T) {
	m := core.SampleSales()
	first, err := Publish(m, Options{Mode: MultiPage})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Publish(m, Options{Mode: MultiPage})
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Pages) != len(first.Pages) {
			t.Fatalf("page count changed: %d vs %d", len(again.Pages), len(first.Pages))
		}
		for name, content := range first.Pages {
			if string(again.Pages[name]) != string(content) {
				t.Fatalf("page %s differs between runs", name)
			}
		}
		for j, name := range first.Order {
			if again.Order[j] != name {
				t.Fatalf("page order differs at %d: %s vs %s", j, name, again.Order[j])
			}
		}
	}
}

func TestCSSHrefOption(t *testing.T) {
	site, err := Publish(core.SampleSales(), Options{Mode: MultiPage, CSSHref: "/assets/theme.css"})
	if err != nil {
		t.Fatal(err)
	}
	index := string(site.Page(IndexName))
	if !strings.Contains(index, `href="/assets/theme.css"`) {
		t.Errorf("custom css href missing: %.300s", index)
	}
	// The embedded style.css is not written when a custom href is used.
	if site.Page("style.css") != nil {
		t.Error("style.css written despite custom href")
	}
}

func TestOmitCSS(t *testing.T) {
	site, err := Publish(core.SampleSales(), Options{Mode: SinglePage, OmitCSS: true})
	if err != nil {
		t.Fatal(err)
	}
	if site.Page("style.css") != nil {
		t.Error("style.css written despite OmitCSS")
	}
}

// TestClientSideBundleEquivalence simulates the browser side of the
// paper's §6 future work: applying the single-page stylesheet to a
// document that carries an xml-stylesheet processing instruction yields
// the same presentation the server would produce.
func TestClientSideBundleEquivalence(t *testing.T) {
	m := core.SampleSales()
	serverSite, err := Publish(m, Options{Mode: SinglePage})
	if err != nil {
		t.Fatal(err)
	}
	doc := m.ToXML()
	pi := &xmldom.Node{Type: xmldom.PINode, Name: "xml-stylesheet",
		Data: `type="text/xsl" href="single.xsl"`}
	doc.InsertBefore(pi, doc.DocumentElement())
	// Validation-applied defaults matter: run the same pipeline.
	clientSite, err := PublishDocument(doc, Options{Mode: SinglePage})
	if err != nil {
		t.Fatal(err)
	}
	if string(clientSite.Page(IndexName)) != string(serverSite.Page(IndexName)) {
		t.Error("client-side rendering differs from server-side")
	}
}
