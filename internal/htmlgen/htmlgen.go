// Package htmlgen is the publication pipeline of the system: it validates
// a goldmodel document against the canonical schema and applies the
// embedded XSLT stylesheets to produce web presentations — either a
// single HTML page with internal links (the paper's XSLT 1.0 approach) or
// a collection of linked pages, one per class (the XSLT 1.1 xsl:document
// approach of Fig. 6).
package htmlgen

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"

	"goldweb/internal/core"
	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
	"goldweb/internal/xslt"
)

// Mode selects the presentation style.
type Mode int

// The two presentation modes of §4.
const (
	// SinglePage produces one HTML page with internal links
	// (XSLT 1.0, "an only HTML page with internal links").
	SinglePage Mode = iota
	// MultiPage produces a collection of linked HTML pages whose number
	// depends on the number of fact and dimension classes (XSLT 1.1).
	MultiPage
)

func (m Mode) String() string {
	if m == SinglePage {
		return "single-page"
	}
	return "multi-page"
}

// Options configure a publication run.
type Options struct {
	Mode Mode
	// Focus restricts the presentation to one fact class id and the
	// dimensions it aggregates (the per-fact presentations of Fig. 5).
	Focus string
	// CSSHref is the stylesheet reference placed in every page
	// (default "style.css").
	CSSHref string
	// OmitCSS suppresses writing the embedded style.css into the site.
	OmitCSS bool
	// SkipValidation publishes without the schema-validation step.
	SkipValidation bool
	// Workers bounds the worker pool used to serialize multi-page output
	// and to fan out per-fact publication: 0 picks GOMAXPROCS, 1 forces
	// sequential operation. Output is byte-identical at any setting.
	Workers int
}

// workerCount resolves Options.Workers to an effective pool size for n
// independent jobs.
func workerCount(opt, n int) int {
	w := opt
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Site is a generated presentation: page name → serialized content.
type Site struct {
	Pages map[string][]byte
	// Order lists the page names in generation order (index first).
	Order []string
	// Messages holds any xsl:message output from the transformation.
	Messages []string
}

// IndexName is the name of the entry page.
const IndexName = "index.html"

// Page returns a page's content, or nil.
func (s *Site) Page(name string) []byte { return s.Pages[name] }

// HTMLPages returns the names of the HTML pages in order.
func (s *Site) HTMLPages() []string {
	var out []string
	for _, name := range s.Order {
		if strings.HasSuffix(name, ".html") {
			out = append(out, name)
		}
	}
	return out
}

// Publish renders a model.
func Publish(m *core.Model, opts Options) (*Site, error) {
	return PublishDocument(m.ToXML(), opts)
}

// PublishContext renders a model under a context (see
// PublishDocumentContext for the cancellation semantics).
func PublishContext(ctx context.Context, m *core.Model, opts Options) (*Site, error) {
	return PublishDocumentContext(ctx, m.ToXML(), opts)
}

// FocusTargets returns the set of fact class ids that are valid Focus
// values for the model. Serving layers use it to reject an unknown
// ?focus= before it reaches the publication pipeline (or a cache).
func FocusTargets(m *core.Model) map[string]bool {
	set := make(map[string]bool, len(m.Facts))
	for _, f := range m.Facts {
		set[f.ID] = true
	}
	return set
}

// TotalBytes reports the summed size of every generated page — a cheap
// read-side measure used for cache accounting and logging.
func (s *Site) TotalBytes() int {
	n := 0
	for _, content := range s.Pages {
		n += len(content)
	}
	return n
}

// HashPage returns the FNV-64a content hash of one page's bytes — the
// cheap fingerprint serving layers use to detect byte-identical pages
// across publications (the HTTP edge additionally addresses artifacts
// by a cryptographic hash; this one is for quick equality triage).
func HashPage(content []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range content {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// Fingerprint hashes the whole site — page names and bytes, in
// generation order — into one FNV-64a value. Two publications with the
// same fingerprint rendered byte-identical sites, so a hot swap that
// commits an unchanged fingerprint keeps every client-cached ETag
// revalidating to 304.
func (s *Site) Fingerprint() uint64 {
	const prime64 = 1099511628211
	h := HashPage(nil)
	for _, name := range s.Order {
		h ^= HashPage([]byte(name))
		h *= prime64
		h ^= HashPage(s.Pages[name])
		h *= prime64
	}
	return h
}

// PublishDocument renders a goldmodel XML document. The document is
// validated first (unless disabled) with schema defaults applied, exactly
// the server-side pipeline of §6.
//
// Frozen (xmldom.Freeze) documents are published as-is — validation runs
// on an Editable copy because applying defaults mutates, and that copy
// is what gets transformed so defaults still reach the presentation.
// An unfrozen document is frozen in place after validation so the
// transformation runs on the indexed fast paths; pass Editable() first
// if the tree must stay mutable afterwards.
func PublishDocument(doc *xmldom.Node, opts Options) (*Site, error) {
	return PublishDocumentContext(context.Background(), doc, opts)
}

// PublishDocumentContext is PublishDocument under a context: the
// publication is abandoned at the next stage boundary (validate,
// compile, transform, assemble) once ctx is canceled. A transform
// already in flight runs to completion — stages are the cancellation
// granularity — so callers staging a swap get a bounded abort without
// the engine checking a context per node.
func PublishDocumentContext(ctx context.Context, doc *xmldom.Node, opts Options) (*Site, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("htmlgen: publication canceled: %w", err)
	}
	work, sheet, params, css, err := preparePublication(doc, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("htmlgen: publication canceled: %w", err)
	}
	// Streaming path: the transform renders every page straight to bytes
	// (no intermediate result DOM), so there is nothing left to fan out —
	// Options.Workers still parallelizes PublishPerFact and the DOM
	// reference path below.
	res, err := sheet.TransformToBuffers(work, params)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("htmlgen: publication canceled: %w", err)
	}
	site := &Site{
		Pages:    make(map[string][]byte, len(res.DocumentOrder)+2),
		Messages: res.Messages,
	}
	site.Pages[IndexName] = res.Main
	site.Order = append(site.Order, IndexName)
	for _, href := range res.DocumentOrder {
		site.Pages[href] = res.Documents[href]
		site.Order = append(site.Order, href)
	}
	addCSS(site, opts, css)
	return site, nil
}

// publishDocumentDOM is the tree-building reference path: transform to a
// result DOM, then serialize the pages over the worker pool. Kept as the
// oracle the streamed path is byte-identity-tested against.
func publishDocumentDOM(doc *xmldom.Node, opts Options) (*Site, error) {
	work, sheet, params, css, err := preparePublication(doc, opts)
	if err != nil {
		return nil, err
	}
	res, err := sheet.Transform(work, params)
	if err != nil {
		return nil, err
	}
	site := &Site{Pages: map[string][]byte{}, Messages: res.Messages}
	serializePages(site, res, opts.Workers)
	addCSS(site, opts, css)
	return site, nil
}

// preparePublication validates and freezes the document and resolves the
// stylesheet and its parameters — everything shared by the streamed and
// DOM publication paths.
func preparePublication(doc *xmldom.Node, opts Options) (*xmldom.Node, *xslt.Stylesheet, map[string]xpath.Value, string, error) {
	work := doc
	if !opts.SkipValidation {
		if work.Frozen() {
			work = doc.Editable()
		}
		if errs := core.ValidateDocument(work); len(errs) > 0 {
			return nil, nil, nil, "", fmt.Errorf("htmlgen: document is invalid: %v (%d problems)", errs[0], len(errs))
		}
	}
	if !work.Frozen() {
		xmldom.Freeze(work)
	}
	var sheet *xslt.Stylesheet
	var err error
	if opts.Mode == MultiPage {
		sheet, err = core.MultiPageStylesheet()
	} else {
		sheet, err = core.SinglePageStylesheet()
	}
	if err != nil {
		return nil, nil, nil, "", err
	}
	css := opts.CSSHref
	if css == "" {
		css = "style.css"
	}
	params := map[string]xpath.Value{
		"focus": xpath.String(opts.Focus),
		"css":   xpath.String(css),
	}
	return work, sheet, params, css, nil
}

func addCSS(site *Site, opts Options, css string) {
	if !opts.OmitCSS && css == "style.css" {
		site.Pages["style.css"] = []byte(core.StyleCSS)
		site.Order = append(site.Order, "style.css")
	}
}

// serializePages renders the main document and every xsl:document output
// into the site, fanning serialization over a bounded worker pool. Page
// serialization only reads the (per-transform) result trees, so the jobs
// are independent; results are collected by index, which keeps Order and
// page bytes identical to the sequential path.
func serializePages(site *Site, res *xslt.Result, workers int) {
	hrefs := res.DocumentOrder
	jobs := len(hrefs) + 1 // + the main document
	w := workerCount(workers, jobs)
	bufs := make([][]byte, jobs)
	if w == 1 {
		bufs[0] = res.MainBytes()
		for i, href := range hrefs {
			bufs[i+1] = res.DocBytes(href)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if i == 0 {
						bufs[0] = res.MainBytes()
					} else {
						bufs[i] = res.DocBytes(hrefs[i-1])
					}
				}
			}()
		}
		for i := 0; i < jobs; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	site.Pages[IndexName] = bufs[0]
	site.Order = append(site.Order, IndexName)
	for i, href := range hrefs {
		site.Pages[href] = bufs[i+1]
		site.Order = append(site.Order, href)
	}
}

// PublishPerFact renders the per-fact presentations of Fig. 5: one
// focused site per fact class, keyed by fact id. The model document is
// validated and frozen once, then the independent publications fan out
// over the Options.Workers pool, sharing the frozen document and the
// cached compiled stylesheet across goroutines.
func PublishPerFact(m *core.Model, opts Options) (map[string]*Site, error) {
	doc := m.ToXML()
	if !opts.SkipValidation {
		if errs := core.ValidateDocument(doc); len(errs) > 0 {
			return nil, fmt.Errorf("htmlgen: document is invalid: %v (%d problems)", errs[0], len(errs))
		}
	}
	xmldom.Freeze(doc)
	facts := make([]string, 0, len(m.Facts))
	for _, f := range m.Facts {
		facts = append(facts, f.ID)
	}
	sites := make([]*Site, len(facts))
	errs := make([]error, len(facts))
	w := workerCount(opts.Workers, len(facts))
	var wg sync.WaitGroup
	next := make(chan int)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				o := opts
				o.Focus = facts[i]
				o.SkipValidation = true
				sites[i], errs[i] = PublishDocument(doc, o)
			}
		}()
	}
	for i := range facts {
		next <- i
	}
	close(next)
	wg.Wait()
	out := make(map[string]*Site, len(facts))
	for i, id := range facts {
		if errs[i] != nil {
			return nil, fmt.Errorf("htmlgen: focus %s: %w", id, errs[i])
		}
		out[id] = sites[i]
	}
	return out, nil
}

// WriteTo writes every page of the site below dir, creating it if needed.
func (s *Site) WriteTo(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, content := range s.Pages {
		if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ---- link integrity ----

// LinkError is one broken link found by CheckLinks.
type LinkError struct {
	Page string
	Href string
	Msg  string
}

func (e LinkError) Error() string {
	return fmt.Sprintf("%s: link %q: %s", e.Page, e.Href, e.Msg)
}

var (
	hrefRe = regexp.MustCompile(`href="([^"]*)"`)
	idRe   = regexp.MustCompile(`(?:id|name)="([^"]*)"`)
)

// CheckLinks verifies that every internal link of the site resolves: page
// links point at generated pages and fragment links at anchors within the
// target page. External links (with a scheme) are ignored.
func CheckLinks(s *Site) []LinkError {
	anchors := map[string]map[string]bool{}
	for name, content := range s.Pages {
		if !strings.HasSuffix(name, ".html") {
			continue
		}
		set := map[string]bool{}
		for _, m := range idRe.FindAllStringSubmatch(string(content), -1) {
			set[m[1]] = true
		}
		anchors[name] = set
	}
	var errs []LinkError
	pages := make([]string, 0, len(s.Pages))
	for name := range s.Pages {
		pages = append(pages, name)
	}
	sort.Strings(pages)
	for _, page := range pages {
		if !strings.HasSuffix(page, ".html") {
			continue
		}
		for _, m := range hrefRe.FindAllStringSubmatch(string(s.Pages[page]), -1) {
			href := m[1]
			if href == "" || strings.Contains(href, "://") || strings.HasPrefix(href, "mailto:") {
				continue
			}
			target, frag := href, ""
			if i := strings.IndexByte(href, '#'); i >= 0 {
				target, frag = href[:i], href[i+1:]
			}
			if target == "" {
				target = page // same-page fragment
			}
			content, ok := s.Pages[target]
			if !ok {
				errs = append(errs, LinkError{Page: page, Href: href, Msg: "target page not generated"})
				continue
			}
			if frag != "" && strings.HasSuffix(target, ".html") {
				if !anchors[target][frag] {
					errs = append(errs, LinkError{Page: page, Href: href, Msg: "missing anchor #" + frag})
				}
			}
			_ = content
		}
	}
	return errs
}
