package htmlgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goldweb/internal/core"
)

func TestMultiPagePublication(t *testing.T) {
	m := core.SampleSales()
	site, err := Publish(m, Options{Mode: MultiPage})
	if err != nil {
		t.Fatal(err)
	}
	// One page per fact class, dimension class, hierarchy level, cube
	// class and additivity popup, plus the index — the paper: "the number
	// of pages depends on the number of fact classes and dimension
	// classes defined in the model".
	wantPages := []string{
		"index.html", "f1.html", "d1.html", "d2.html", "d3.html",
		"c1.html", "style.css",
	}
	for _, p := range wantPages {
		if site.Page(p) == nil {
			t.Errorf("missing page %s (have %v)", p, site.Order)
		}
	}
	// Level pages exist for every asoclevel.
	levels := 0
	for _, d := range m.Dims {
		levels += len(d.Levels)
	}
	htmlCount := len(site.HTMLPages())
	// index + facts + dims + levels + cubes + additivity pages (2 measures
	// carry rules).
	want := 1 + len(m.Facts) + len(m.Dims) + levels + len(m.Cubes) + 2
	if htmlCount != want {
		t.Errorf("page count = %d, want %d (%v)", htmlCount, want, site.Order)
	}
	index := string(site.Page("index.html"))
	for _, want := range []string{
		"Multidimensional model: Sales DW",
		`<a href="f1.html">Sales</a>`,
		"2002-03-24",
	} {
		if !strings.Contains(index, want) {
			t.Errorf("index missing %q", want)
		}
	}
	fact := string(site.Page("f1.html"))
	for _, want := range []string{
		"Fact class: Sales",
		"num_ticket {OID}",
		"qty * price",
		"many-to-many", // none here, actually — checked below for hospital
	} {
		if want == "many-to-many" {
			if strings.Contains(fact, want) {
				t.Errorf("sales should have no many-to-many aggregation")
			}
			continue
		}
		if !strings.Contains(fact, want) {
			t.Errorf("fact page missing %q", want)
		}
	}
	if errs := CheckLinks(site); len(errs) != 0 {
		t.Errorf("broken links: %v", errs)
	}
}

func TestMultiPageAdditivityPopup(t *testing.T) {
	m := core.SampleSales()
	site, err := Publish(m, Options{Mode: MultiPage})
	if err != nil {
		t.Fatal(err)
	}
	// inventory (fa5) carries rules → floating page f1-fa5-add.html (Fig 6.3).
	inv := m.FactByName("Sales").AttByName("inventory")
	page := site.Page("f1-" + inv.ID + "-add.html")
	if page == nil {
		t.Fatalf("additivity page missing (have %v)", site.Order)
	}
	content := string(page)
	if !strings.Contains(content, "Additivity rules: inventory") {
		t.Errorf("popup header missing: %s", content)
	}
	if !strings.Contains(content, "MAX MIN AVG") {
		t.Errorf("rules not rendered: %s", content)
	}
	// price is not additive along Time.
	price := m.FactByName("Sales").AttByName("price")
	content = string(site.Page("f1-" + price.ID + "-add.html"))
	if !strings.Contains(content, "not additive") {
		t.Errorf("non-additivity not rendered: %s", content)
	}
}

func TestSinglePagePublication(t *testing.T) {
	site, err := Publish(core.SampleSales(), Options{Mode: SinglePage})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(site.HTMLPages()); got != 1 {
		t.Fatalf("single-page mode produced %d pages", got)
	}
	page := string(site.Page("index.html"))
	for _, want := range []string{
		"Multidimensional model: Sales DW",
		`<a href="#f1">Sales</a>`,  // internal link
		`id="f1"`,                  // anchor
		"Classification hierarchy", // dimension section
		"non-strict",               // only in hospital? no: none in sales
	} {
		if want == "non-strict" {
			if strings.Contains(page, want) {
				t.Error("sales has no non-strict hierarchy")
			}
			continue
		}
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
	if errs := CheckLinks(site); len(errs) != 0 {
		t.Errorf("broken links: %v", errs)
	}
}

// TestPerFactPresentations reproduces Fig. 5: the same model and the same
// stylesheet produce per-fact-class presentations that hide the
// dimensions not shared with the selected fact class.
func TestPerFactPresentations(t *testing.T) {
	m := core.SampleHospital()
	adm := m.FactByName("Admissions")
	treat := m.FactByName("Treatments")
	diag := m.DimByName("Diagnosis")

	siteAdm, err := Publish(m, Options{Mode: MultiPage, Focus: adm.ID})
	if err != nil {
		t.Fatal(err)
	}
	siteTreat, err := Publish(m, Options{Mode: MultiPage, Focus: treat.ID})
	if err != nil {
		t.Fatal(err)
	}
	// Admissions aggregates Diagnosis; Treatments does not.
	if siteAdm.Page(diag.ID+".html") == nil {
		t.Error("presentation 1 should include the Diagnosis dimension")
	}
	if siteTreat.Page(diag.ID+".html") != nil {
		t.Error("presentation 2 must hide the Diagnosis dimension")
	}
	if siteTreat.Page(adm.ID+".html") != nil {
		t.Error("presentation 2 must not include the other fact class")
	}
	idx := string(siteTreat.Page("index.html"))
	if strings.Contains(idx, `href="`+adm.ID+`.html"`) {
		t.Error("index of presentation 2 links the other fact class")
	}
	if !strings.Contains(idx, `href="`+treat.ID+`.html"`) {
		t.Error("index of presentation 2 misses its own fact class")
	}
	for _, site := range []*Site{siteAdm, siteTreat} {
		if errs := CheckLinks(site); len(errs) != 0 {
			t.Errorf("broken links in focused presentation: %v", errs)
		}
	}
	// The same holds for the single-page presentation.
	single, err := Publish(m, Options{Mode: SinglePage, Focus: treat.ID})
	if err != nil {
		t.Fatal(err)
	}
	page := string(single.Page("index.html"))
	if strings.Contains(page, "Diagnosis") {
		t.Error("single-page focused presentation leaks hidden dimension")
	}
}

func TestHospitalFlagsRendered(t *testing.T) {
	site, err := Publish(core.SampleHospital(), Options{Mode: MultiPage})
	if err != nil {
		t.Fatal(err)
	}
	m := core.SampleHospital()
	admPage := string(site.Page(m.FactByName("Admissions").ID + ".html"))
	if !strings.Contains(admPage, "many-to-many") {
		t.Error("many-to-many flag missing on Admissions page")
	}
	patientPage := string(site.Page(m.DimByName("Patient").ID + ".html"))
	if !strings.Contains(patientPage, "non-strict") || !strings.Contains(patientPage, "{completeness}") {
		t.Errorf("hierarchy flags missing: %s", patientPage)
	}
}

func TestInvalidDocumentRefused(t *testing.T) {
	m := core.SampleSales()
	m.Facts[0].SharedAggs[0].DimClass = "nope"
	if _, err := Publish(m, Options{Mode: MultiPage}); err == nil {
		t.Fatal("invalid model published")
	}
	// SkipValidation pushes it through regardless.
	if _, err := Publish(m, Options{Mode: SinglePage, SkipValidation: true}); err != nil {
		t.Fatalf("skip-validation publish failed: %v", err)
	}
}

func TestWriteTo(t *testing.T) {
	dir := t.TempDir()
	site, err := Publish(core.SampleSales(), Options{Mode: MultiPage})
	if err != nil {
		t.Fatal(err)
	}
	if err := site.WriteTo(filepath.Join(dir, "site")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "site", "index.html"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Sales DW") {
		t.Error("written index incomplete")
	}
	if _, err := os.Stat(filepath.Join(dir, "site", "style.css")); err != nil {
		t.Error("style.css not written")
	}
}

func TestCheckLinksDetectsBreakage(t *testing.T) {
	site := &Site{Pages: map[string][]byte{
		"index.html": []byte(`<a href="ghost.html">x</a><a href="#missing">y</a><a id="here" href="#here">ok</a>`),
	}}
	errs := CheckLinks(site)
	if len(errs) != 2 {
		t.Fatalf("errors = %v", errs)
	}
}

func TestHTMLOutputShape(t *testing.T) {
	site, err := Publish(core.SampleSales(), Options{Mode: MultiPage})
	if err != nil {
		t.Fatal(err)
	}
	index := string(site.Page("index.html"))
	if !strings.HasPrefix(strings.TrimSpace(index), "<html") {
		t.Errorf("unexpected prologue: %.60s", index)
	}
	if strings.Contains(index, "<?xml") {
		t.Error("html output carries an XML declaration")
	}
	if !strings.Contains(index, `<link rel="stylesheet" type="text/css" href="style.css">`) {
		t.Errorf("css link not in html-void form: %s", index[:400])
	}
}
