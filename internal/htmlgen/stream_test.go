package htmlgen

import (
	"bytes"
	"fmt"
	"testing"

	"goldweb/internal/core"
	"goldweb/internal/workload"
	"goldweb/internal/xmldom"
)

// streamTestModels covers the shipped examples plus synthetic sweep sizes.
func streamTestModels() map[string]*core.Model {
	return map[string]*core.Model{
		"sales":    core.SampleSales(),
		"hospital": core.SampleHospital(),
		"f1d2h1":   workload.GenModel(workload.ModelSpec{Facts: 1, Dims: 2, Depth: 1}),
		"f2d4h2":   workload.GenModel(workload.ModelSpec{Facts: 2, Dims: 4, Depth: 2}),
	}
}

func streamSitesEqual(t *testing.T, label string, want, got *Site) {
	t.Helper()
	if len(want.Order) != len(got.Order) {
		t.Fatalf("%s: page order length %d != %d", label, len(got.Order), len(want.Order))
	}
	for i := range want.Order {
		if want.Order[i] != got.Order[i] {
			t.Fatalf("%s: page order[%d] = %q, want %q", label, i, got.Order[i], want.Order[i])
		}
	}
	for name, w := range want.Pages {
		g, ok := got.Pages[name]
		if !ok {
			t.Fatalf("%s: missing page %s", label, name)
		}
		if !bytes.Equal(w, g) {
			i := 0
			for i < len(w) && i < len(g) && w[i] == g[i] {
				i++
			}
			lo, hi := max(0, i-60), i+60
			t.Fatalf("%s: page %s differs at byte %d\n dom:    %q\n stream: %q",
				label, name, i, w[lo:min(len(w), hi)], g[lo:min(len(g), hi)])
		}
	}
	if len(got.Pages) != len(want.Pages) {
		t.Fatalf("%s: page count %d != %d", label, len(got.Pages), len(want.Pages))
	}
	if fmt.Sprint(want.Messages) != fmt.Sprint(got.Messages) {
		t.Fatalf("%s: messages differ: %v vs %v", label, want.Messages, got.Messages)
	}
}

// TestStreamedPublicationByteIdentical proves the streaming emitter path
// produces byte-identical sites to the DOM transform + serialize path for
// every example model, both modes, at every worker count.
func TestStreamedPublicationByteIdentical(t *testing.T) {
	for name, m := range streamTestModels() {
		doc := m.ToXML()
		xmldom.Freeze(doc)
		for _, mode := range []Mode{SinglePage, MultiPage} {
			for workers := 1; workers <= 4; workers++ {
				opts := Options{Mode: mode, Workers: workers}
				want, err := publishDocumentDOM(doc, opts)
				if err != nil {
					t.Fatalf("%s/%v dom publish: %v", name, mode, err)
				}
				got, err := PublishDocument(doc, opts)
				if err != nil {
					t.Fatalf("%s/%v streamed publish: %v", name, mode, err)
				}
				streamSitesEqual(t, fmt.Sprintf("%s/mode=%v/workers=%d", name, mode, workers), want, got)
			}
		}
	}
}

// TestStreamedPerFactFanOutByteIdentical checks the focused per-fact
// publications (Fig. 5 fan-out) against the DOM path, at several worker
// counts.
func TestStreamedPerFactFanOutByteIdentical(t *testing.T) {
	m := workload.GenModel(workload.ModelSpec{Facts: 3, Dims: 3, Depth: 2})
	for _, workers := range []int{1, 4} {
		sites, err := PublishPerFact(m, Options{Mode: MultiPage, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		doc := m.ToXML()
		xmldom.Freeze(doc)
		for _, f := range m.Facts {
			want, err := publishDocumentDOM(doc, Options{
				Mode: MultiPage, Focus: f.ID, SkipValidation: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := sites[f.ID]
			if got == nil {
				t.Fatalf("workers=%d: no site for fact %s", workers, f.ID)
			}
			streamSitesEqual(t, fmt.Sprintf("workers=%d/focus=%s", workers, f.ID), want, got)
		}
	}
}
