package htmlgen

import (
	"bytes"
	"testing"

	"goldweb/internal/core"
)

// sitesEqual fails unless the two sites have identical page sets, order
// and bytes.
func sitesEqual(t *testing.T, label string, a, b *Site) {
	t.Helper()
	if len(a.Order) != len(b.Order) {
		t.Fatalf("%s: page count %d vs %d", label, len(a.Order), len(b.Order))
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("%s: order differs at %d: %s vs %s", label, i, a.Order[i], b.Order[i])
		}
	}
	for name, content := range a.Pages {
		if !bytes.Equal(content, b.Pages[name]) {
			t.Errorf("%s: page %s differs (%d vs %d bytes)", label, name, len(content), len(b.Pages[name]))
		}
	}
}

// TestParallelPublishByteIdentical: multi-page publication over the
// worker pool produces exactly the bytes of the sequential path.
func TestParallelPublishByteIdentical(t *testing.T) {
	for _, m := range []*core.Model{core.SampleSales(), core.SampleHospital()} {
		for _, mode := range []Mode{SinglePage, MultiPage} {
			seq, err := Publish(m, Options{Mode: mode, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := Publish(m, Options{Mode: mode, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			sitesEqual(t, m.Name+"/"+mode.String(), seq, par)
			if errs := CheckLinks(par); len(errs) > 0 {
				t.Errorf("%s/%s: broken links in parallel site: %v", m.Name, mode, errs[0])
			}
		}
	}
}

// TestPublishPerFact: the Fig. 5 fan-out yields one site per fact class,
// each identical to a directly focused publication.
func TestPublishPerFact(t *testing.T) {
	m := core.SampleHospital()
	sites, err := PublishPerFact(m, Options{Mode: MultiPage, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != len(m.Facts) {
		t.Fatalf("got %d sites, want %d", len(sites), len(m.Facts))
	}
	for _, f := range m.Facts {
		site := sites[f.ID]
		if site == nil {
			t.Fatalf("no site for fact %s", f.ID)
		}
		direct, err := Publish(m, Options{Mode: MultiPage, Focus: f.ID, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		sitesEqual(t, "focus "+f.ID, direct, site)
		if errs := CheckLinks(site); len(errs) > 0 {
			t.Errorf("focus %s: broken link: %v", f.ID, errs[0])
		}
	}
}

// TestPublishFrozenDocumentUntouched: publishing a frozen document must
// not mutate it — defaults are applied to a working copy only.
func TestPublishFrozenDocumentUntouched(t *testing.T) {
	m := core.SampleSales()
	doc := m.ToXML()
	before := doc.XML()
	doc.Freeze()
	site, err := PublishDocument(doc, Options{Mode: MultiPage})
	if err != nil {
		t.Fatal(err)
	}
	if len(site.HTMLPages()) == 0 {
		t.Fatal("no pages generated")
	}
	if got := doc.XML(); got != before {
		t.Error("frozen document bytes changed during publication")
	}
	// And it must match a publication of the unfrozen original.
	plain, err := PublishDocument(m.ToXML(), Options{Mode: MultiPage})
	if err != nil {
		t.Fatal(err)
	}
	sitesEqual(t, "frozen vs unfrozen", plain, site)
}
