package xsd

import (
	"strings"
	"testing"

	"goldweb/internal/xmldom"
)

// miniSchema is a scaled-down version of the paper's goldmodel schema
// exercising the same constructs: Russian-doll nesting, named simple
// types with enumerations, defaults, ID/IDREF, occurrence bounds, and
// key/keyref identity constraints.
const miniSchema = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="Multiplicity">
    <xsd:restriction base="xsd:string">
      <xsd:enumeration value="0"/>
      <xsd:enumeration value="1"/>
      <xsd:enumeration value="M"/>
      <xsd:enumeration value="1..M"/>
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:element name="goldmodel">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element name="factclasses">
          <xsd:complexType>
            <xsd:sequence>
              <xsd:element name="factclass" maxOccurs="unbounded">
                <xsd:complexType>
                  <xsd:sequence>
                    <xsd:element name="sharedagg" minOccurs="0" maxOccurs="unbounded">
                      <xsd:complexType>
                        <xsd:attribute name="dimclass" type="xsd:IDREF" use="required"/>
                        <xsd:attribute name="rolea" type="Multiplicity" default="M"/>
                        <xsd:attribute name="roleb" type="Multiplicity" default="1"/>
                      </xsd:complexType>
                    </xsd:element>
                  </xsd:sequence>
                  <xsd:attribute name="id" type="xsd:ID" use="required"/>
                  <xsd:attribute name="name" type="xsd:string" use="required"/>
                </xsd:complexType>
              </xsd:element>
            </xsd:sequence>
          </xsd:complexType>
        </xsd:element>
        <xsd:element name="dimclasses" minOccurs="0">
          <xsd:complexType>
            <xsd:sequence>
              <xsd:element name="dimclass" maxOccurs="unbounded">
                <xsd:complexType>
                  <xsd:attribute name="id" type="xsd:ID" use="required"/>
                  <xsd:attribute name="name" type="xsd:string" use="required"/>
                  <xsd:attribute name="istime" type="xsd:boolean" default="false"/>
                </xsd:complexType>
              </xsd:element>
            </xsd:sequence>
          </xsd:complexType>
        </xsd:element>
      </xsd:sequence>
      <xsd:attribute name="id" type="xsd:ID" use="required"/>
      <xsd:attribute name="name" type="xsd:string" use="required"/>
      <xsd:attribute name="creationdate" type="xsd:date"/>
    </xsd:complexType>
    <xsd:key name="dimClassKey">
      <xsd:selector xpath="dimclasses/dimclass"/>
      <xsd:field xpath="@id"/>
    </xsd:key>
    <xsd:keyref name="sharedAggDimClassKey" refer="dimClassKey">
      <xsd:selector xpath="factclasses/factclass/sharedagg"/>
      <xsd:field xpath="@dimclass"/>
    </xsd:keyref>
  </xsd:element>
</xsd:schema>`

const validDoc = `<goldmodel id="m1" name="Sales DW" creationdate="2002-03-24">
  <factclasses>
    <factclass id="f1" name="Sales">
      <sharedagg dimclass="d1"/>
      <sharedagg dimclass="d2" rolea="M" roleb="M"/>
    </factclass>
  </factclasses>
  <dimclasses>
    <dimclass id="d1" name="Time" istime="true"/>
    <dimclass id="d2" name="Product"/>
  </dimclasses>
</goldmodel>`

func mustSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := ParseSchemaString(miniSchema)
	if err != nil {
		t.Fatalf("parse schema: %v", err)
	}
	return s
}

func errsContain(errs []ValidationError, sub string) bool {
	for _, e := range errs {
		if strings.Contains(e.Error(), sub) {
			return true
		}
	}
	return false
}

func TestValidDocumentAccepted(t *testing.T) {
	s := mustSchema(t)
	errs := s.ValidateString(validDoc, ValidateOptions{})
	if len(errs) != 0 {
		t.Fatalf("expected valid, got: %v", errs)
	}
}

func TestMissingRequiredAttribute(t *testing.T) {
	s := mustSchema(t)
	doc := strings.Replace(validDoc, ` name="Sales DW"`, "", 1)
	errs := s.ValidateString(doc, ValidateOptions{})
	if !errsContain(errs, "missing required attribute name") {
		t.Errorf("got: %v", errs)
	}
}

func TestUndeclaredAttribute(t *testing.T) {
	s := mustSchema(t)
	doc := strings.Replace(validDoc, `id="f1"`, `id="f1" bogus="x"`, 1)
	errs := s.ValidateString(doc, ValidateOptions{})
	if !errsContain(errs, "attribute bogus is not declared") {
		t.Errorf("got: %v", errs)
	}
}

func TestEnumerationViolation(t *testing.T) {
	s := mustSchema(t)
	doc := strings.Replace(validDoc, `rolea="M"`, `rolea="many"`, 1)
	errs := s.ValidateString(doc, ValidateOptions{})
	if !errsContain(errs, "not one of the allowed values") {
		t.Errorf("got: %v", errs)
	}
}

func TestBooleanAndDateValidation(t *testing.T) {
	s := mustSchema(t)
	doc := strings.Replace(validDoc, `istime="true"`, `istime="maybe"`, 1)
	if errs := s.ValidateString(doc, ValidateOptions{}); !errsContain(errs, "not a valid boolean") {
		t.Errorf("boolean: %v", errs)
	}
	doc = strings.Replace(validDoc, `creationdate="2002-03-24"`, `creationdate="24/03/2002"`, 1)
	if errs := s.ValidateString(doc, ValidateOptions{}); !errsContain(errs, "not a valid date") {
		t.Errorf("date: %v", errs)
	}
}

func TestDuplicateID(t *testing.T) {
	s := mustSchema(t)
	doc := strings.Replace(validDoc, `id="d2"`, `id="d1"`, 1)
	errs := s.ValidateString(doc, ValidateOptions{})
	if !errsContain(errs, `duplicate ID "d1"`) {
		t.Errorf("got: %v", errs)
	}
}

func TestDanglingIDREF(t *testing.T) {
	s := mustSchema(t)
	doc := strings.Replace(validDoc, `dimclass="d2"`, `dimclass="d9"`, 1)
	errs := s.ValidateString(doc, ValidateOptions{})
	if !errsContain(errs, `IDREF "d9" does not match any ID`) {
		t.Errorf("got: %v", errs)
	}
}

// TestKeyrefCatchesWhatIDREFMisses reproduces the paper's §3.1 argument:
// DTD-style IDREF accepts a reference to *any* ID, while the keyref pins
// @dimclass to dimension-class IDs specifically.
func TestKeyrefCatchesWhatIDREFMisses(t *testing.T) {
	s := mustSchema(t)
	// Point a sharedagg at a fact class id: a valid IDREF, an invalid keyref.
	doc := strings.Replace(validDoc, `dimclass="d2"`, `dimclass="f1"`, 1)
	errs := s.ValidateString(doc, ValidateOptions{})
	if errsContain(errs, "IDREF") {
		t.Errorf("IDREF check should pass (f1 is an ID): %v", errs)
	}
	if !errsContain(errs, "keyref sharedAggDimClassKey") {
		t.Errorf("keyref should reject the fact-class reference: %v", errs)
	}
	// With identity constraints disabled (DTD ablation) the document passes.
	errs = s.ValidateString(doc, ValidateOptions{SkipIdentityConstraints: true})
	if len(errs) != 0 {
		t.Errorf("IDREF-only mode should accept: %v", errs)
	}
}

func TestKeyUniqueness(t *testing.T) {
	s := mustSchema(t)
	// Two dimclasses cannot share an id anyway (xsd:ID), so weaken via the
	// key path only: duplicate IDs already trip the ID check; assert the
	// key error also fires.
	doc := strings.Replace(validDoc, `id="d2"`, `id="d1"`, 1)
	errs := s.ValidateString(doc, ValidateOptions{})
	if !errsContain(errs, "key dimClassKey") {
		t.Errorf("key duplicate not reported: %v", errs)
	}
}

func TestUnexpectedElement(t *testing.T) {
	s := mustSchema(t)
	doc := strings.Replace(validDoc, `<factclasses>`, `<factclasses><intruder/>`, 1)
	errs := s.ValidateString(doc, ValidateOptions{})
	if !errsContain(errs, "<intruder> is not allowed") {
		t.Errorf("got: %v", errs)
	}
}

func TestMissingRequiredChild(t *testing.T) {
	s := mustSchema(t)
	doc := `<goldmodel id="m1" name="x"><dimclasses><dimclass id="d" name="D"/></dimclasses></goldmodel>`
	errs := s.ValidateString(doc, ValidateOptions{})
	if len(errs) == 0 {
		t.Fatal("missing factclasses accepted")
	}
	if !errsContain(errs, "not allowed here") && !errsContain(errs, "missing required content") {
		t.Errorf("got: %v", errs)
	}
	// An entirely empty model reports the missing-content case.
	errs = s.ValidateString(`<goldmodel id="m1" name="x"/>`, ValidateOptions{})
	if !errsContain(errs, "missing required content") {
		t.Errorf("empty model: %v", errs)
	}
}

func TestOptionalSectionOmitted(t *testing.T) {
	s := mustSchema(t)
	doc := `<goldmodel id="m1" name="x"><factclasses><factclass id="f" name="F"/></factclasses></goldmodel>`
	errs := s.ValidateString(doc, ValidateOptions{})
	if len(errs) != 0 {
		t.Errorf("dimclasses is optional: %v", errs)
	}
}

func TestWrongOrderRejected(t *testing.T) {
	s := mustSchema(t)
	doc := `<goldmodel id="m1" name="x">
	  <dimclasses><dimclass id="d" name="D"/></dimclasses>
	  <factclasses><factclass id="f" name="F"/></factclasses>
	</goldmodel>`
	errs := s.ValidateString(doc, ValidateOptions{})
	if len(errs) == 0 {
		t.Error("sequence order violation accepted")
	}
}

func TestCharacterContentRejected(t *testing.T) {
	s := mustSchema(t)
	doc := strings.Replace(validDoc, `<factclasses>`, `<factclasses>stray text`, 1)
	errs := s.ValidateString(doc, ValidateOptions{})
	if !errsContain(errs, "does not allow character content") {
		t.Errorf("got: %v", errs)
	}
}

func TestApplyDefaults(t *testing.T) {
	s := mustSchema(t)
	doc := `<goldmodel id="m1" name="x">
	  <factclasses><factclass id="f" name="F"><sharedagg dimclass="d"/></factclass></factclasses>
	  <dimclasses><dimclass id="d" name="D"/></dimclasses>
	</goldmodel>`
	parsed, _ := parseDoc(t, doc)
	errs := s.Validate(parsed, ValidateOptions{ApplyDefaults: true})
	if len(errs) != 0 {
		t.Fatalf("unexpected: %v", errs)
	}
	agg := parsed.DescendantElements("sharedagg")[0]
	if agg.AttrValue("rolea") != "M" || agg.AttrValue("roleb") != "1" {
		t.Errorf("defaults not applied: %v", agg.Attr)
	}
	dim := parsed.DescendantElements("dimclass")[0]
	if dim.AttrValue("istime") != "false" {
		t.Errorf("istime default not applied")
	}
	// Without the option the instance is untouched.
	parsed2, _ := parseDoc(t, doc)
	s.Validate(parsed2, ValidateOptions{})
	if parsed2.DescendantElements("sharedagg")[0].HasAttr("rolea") {
		t.Error("defaults applied without opt-in")
	}
}

func TestUnknownRootRejected(t *testing.T) {
	s := mustSchema(t)
	errs := s.ValidateString(`<unknown/>`, ValidateOptions{})
	if !errsContain(errs, "no global declaration") {
		t.Errorf("got: %v", errs)
	}
}

func TestMaxErrorsCap(t *testing.T) {
	s := mustSchema(t)
	doc := `<goldmodel id="m1" name="x"><factclasses>` +
		strings.Repeat(`<factclass id="z" name=""/>`, 10) + // 9 duplicate IDs
		`</factclasses></goldmodel>`
	errs := s.ValidateString(doc, ValidateOptions{MaxErrors: 3})
	if len(errs) != 3 {
		t.Errorf("cap not applied: %d errors", len(errs))
	}
}

func parseDoc(t *testing.T, src string) (*xmldom.Node, error) {
	t.Helper()
	d, err := xmldom.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return d, nil
}
