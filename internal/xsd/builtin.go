package xsd

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// builtinKind enumerates the supported built-in simple types.
type builtinKind uint8

const (
	btNone builtinKind = iota
	btString
	btNormalizedString
	btToken
	btBoolean
	btDecimal
	btFloat
	btDouble
	btInteger
	btInt
	btLong
	btShort
	btByte
	btNonNegativeInteger
	btPositiveInteger
	btNonPositiveInteger
	btNegativeInteger
	btUnsignedInt
	btDate
	btDateTime
	btTime
	btGYear
	btID
	btIDREF
	btIDREFS
	btNCName
	btName
	btNMTOKEN
	btAnyURI
	btQName
	btLanguage
	btAnySimpleType
)

var builtinByName = map[string]builtinKind{
	"string":             btString,
	"normalizedString":   btNormalizedString,
	"token":              btToken,
	"boolean":            btBoolean,
	"decimal":            btDecimal,
	"float":              btFloat,
	"double":             btDouble,
	"integer":            btInteger,
	"int":                btInt,
	"long":               btLong,
	"short":              btShort,
	"byte":               btByte,
	"nonNegativeInteger": btNonNegativeInteger,
	"positiveInteger":    btPositiveInteger,
	"nonPositiveInteger": btNonPositiveInteger,
	"negativeInteger":    btNegativeInteger,
	"unsignedInt":        btUnsignedInt,
	"date":               btDate,
	"dateTime":           btDateTime,
	"time":               btTime,
	"gYear":              btGYear,
	"ID":                 btID,
	"IDREF":              btIDREF,
	"IDREFS":             btIDREFS,
	"NCName":             btNCName,
	"Name":               btName,
	"NMTOKEN":            btNMTOKEN,
	"anyURI":             btAnyURI,
	"QName":              btQName,
	"language":           btLanguage,
	"anySimpleType":      btAnySimpleType,
}

// builtinType returns the SimpleType for a built-in name, or nil.
func builtinType(name string) *SimpleType {
	kind, ok := builtinByName[name]
	if !ok {
		return nil
	}
	return &SimpleType{Name: name, builtin: kind}
}

// isNumericKind reports whether range facets apply to the kind.
func (k builtinKind) numeric() bool {
	switch k {
	case btDecimal, btFloat, btDouble, btInteger, btInt, btLong, btShort,
		btByte, btNonNegativeInteger, btPositiveInteger, btNonPositiveInteger,
		btNegativeInteger, btUnsignedInt:
		return true
	}
	return false
}

// rootKind resolves the built-in kind at the bottom of a restriction
// chain.
func (st *SimpleType) rootKind() builtinKind {
	for cur := st; cur != nil; cur = cur.base {
		if cur.builtin != btNone {
			return cur.builtin
		}
	}
	return btString
}

// normalize applies the whitespace facet appropriate to the type.
func (st *SimpleType) normalize(v string) string {
	ws := ""
	for cur := st; cur != nil && ws == ""; cur = cur.base {
		ws = cur.WhiteSpace
	}
	if ws == "" {
		switch {
		case st.isList() || st.hasMembers():
			// List and union varieties collapse; union members
			// re-normalize per their own whitespace facet.
			ws = "collapse"
		default:
			switch st.rootKind() {
			case btString:
				ws = "preserve"
			case btNormalizedString:
				ws = "replace"
			default:
				ws = "collapse"
			}
		}
	}
	switch ws {
	case "replace":
		return strings.Map(func(r rune) rune {
			if r == '\t' || r == '\n' || r == '\r' {
				return ' '
			}
			return r
		}, v)
	case "collapse":
		return strings.Join(strings.Fields(v), " ")
	}
	return v
}

// checkBuiltin validates a (whitespace-normalized) lexical value against a
// built-in kind.
func checkBuiltin(kind builtinKind, v string) error {
	switch kind {
	case btString, btNormalizedString, btToken, btAnyURI, btAnySimpleType:
		return nil
	case btBoolean:
		switch v {
		case "true", "false", "0", "1":
			return nil
		}
		return fmt.Errorf("%q is not a valid boolean", v)
	case btDecimal, btFloat, btDouble:
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			return fmt.Errorf("%q is not a valid %s", v, kindName(kind))
		}
		return nil
	case btInteger, btInt, btLong, btShort, btByte, btNonNegativeInteger,
		btPositiveInteger, btNonPositiveInteger, btNegativeInteger, btUnsignedInt:
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("%q is not a valid %s", v, kindName(kind))
		}
		return checkIntRange(kind, n, v)
	case btDate:
		if _, err := time.Parse("2006-01-02", v); err != nil {
			return fmt.Errorf("%q is not a valid date (want CCYY-MM-DD)", v)
		}
		return nil
	case btDateTime:
		for _, layout := range []string{"2006-01-02T15:04:05", "2006-01-02T15:04:05Z07:00"} {
			if _, err := time.Parse(layout, v); err == nil {
				return nil
			}
		}
		return fmt.Errorf("%q is not a valid dateTime", v)
	case btTime:
		if _, err := time.Parse("15:04:05", v); err != nil {
			return fmt.Errorf("%q is not a valid time", v)
		}
		return nil
	case btGYear:
		if len(v) != 4 {
			return fmt.Errorf("%q is not a valid gYear", v)
		}
		if _, err := strconv.Atoi(v); err != nil {
			return fmt.Errorf("%q is not a valid gYear", v)
		}
		return nil
	case btID, btIDREF, btNCName:
		if !isNCName(v) {
			return fmt.Errorf("%q is not a valid NCName", v)
		}
		return nil
	case btIDREFS:
		if len(strings.Fields(v)) == 0 {
			return fmt.Errorf("IDREFS must contain at least one IDREF")
		}
		for _, tok := range strings.Fields(v) {
			if !isNCName(tok) {
				return fmt.Errorf("%q is not a valid IDREF", tok)
			}
		}
		return nil
	case btName, btQName:
		if !isXMLName(v) {
			return fmt.Errorf("%q is not a valid name", v)
		}
		return nil
	case btNMTOKEN:
		if v == "" {
			return fmt.Errorf("empty NMTOKEN")
		}
		for _, r := range v {
			if !isNameRune(r, false) {
				return fmt.Errorf("%q is not a valid NMTOKEN", v)
			}
		}
		return nil
	case btLanguage:
		if v == "" || len(v) > 35 {
			return fmt.Errorf("%q is not a valid language", v)
		}
		return nil
	}
	return nil
}

func kindName(kind builtinKind) string {
	for name, k := range builtinByName {
		if k == kind {
			return name
		}
	}
	return "value"
}

func checkIntRange(kind builtinKind, n int64, v string) error {
	fail := func(what string) error {
		return fmt.Errorf("%q is out of range for %s", v, what)
	}
	switch kind {
	case btInt:
		if n < math.MinInt32 || n > math.MaxInt32 {
			return fail("int")
		}
	case btShort:
		if n < math.MinInt16 || n > math.MaxInt16 {
			return fail("short")
		}
	case btByte:
		if n < math.MinInt8 || n > math.MaxInt8 {
			return fail("byte")
		}
	case btNonNegativeInteger:
		if n < 0 {
			return fail("nonNegativeInteger")
		}
	case btPositiveInteger:
		if n <= 0 {
			return fail("positiveInteger")
		}
	case btNonPositiveInteger:
		if n > 0 {
			return fail("nonPositiveInteger")
		}
	case btNegativeInteger:
		if n >= 0 {
			return fail("negativeInteger")
		}
	case btUnsignedInt:
		if n < 0 || n > math.MaxUint32 {
			return fail("unsignedInt")
		}
	}
	return nil
}

func isNameRune(r rune, start bool) bool {
	if r == '_' || unicode.IsLetter(r) {
		return true
	}
	if start {
		return false
	}
	return r == '-' || r == '.' || unicode.IsDigit(r)
}

// isNCName reports whether v is a colon-free XML name.
func isNCName(v string) bool {
	if v == "" {
		return false
	}
	for i, r := range v {
		if !isNameRune(r, i == 0) {
			return false
		}
	}
	return true
}

// isXMLName allows a single colon (QName form).
func isXMLName(v string) bool {
	if v == "" {
		return false
	}
	parts := strings.Split(v, ":")
	if len(parts) > 2 {
		return false
	}
	for _, p := range parts {
		if !isNCName(p) {
			return false
		}
	}
	return true
}
