package xsd

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// ValidateOptions tune instance validation.
type ValidateOptions struct {
	// ApplyDefaults writes schema-supplied attribute defaults into the
	// instance (the infoset contribution a validating parser makes).
	// Because it mutates the document it must not be used on a frozen
	// (xmldom.Freeze) tree — validate an Editable() copy instead.
	ApplyDefaults bool
	// MaxErrors stops validation after this many violations (0 = all).
	MaxErrors int
	// SkipIdentityConstraints disables key/keyref/unique checking, leaving
	// only DTD-style ID/IDREF integrity — the ablation of the paper's §3.1
	// claim that keyrefs improve on their earlier DTD proposal.
	SkipIdentityConstraints bool
}

// Validate checks an instance document against the schema and returns all
// violations found (nil means the document is valid).
func (s *Schema) Validate(doc *xmldom.Node, opts ValidateOptions) []ValidationError {
	v := &validator{schema: s, opts: opts,
		ids: map[string]*xmldom.Node{}}
	root := doc.DocumentElement()
	if root == nil {
		v.errf(doc, "document has no root element")
		return v.errs
	}
	decl, ok := s.Elements[root.Name]
	if !ok {
		v.errf(root, "no global declaration for root element %s", root.FullName())
		return v.errs
	}
	v.validateElement(root, decl)
	v.checkIDRefs()
	return v.errs
}

// ValidateString parses and validates an instance from XML text; parse
// errors are reported as a single ValidationError.
func (s *Schema) ValidateString(src string, opts ValidateOptions) []ValidationError {
	doc, err := xmldom.ParseString(src)
	if err != nil {
		return []ValidationError{{Path: "/", Msg: err.Error()}}
	}
	return s.Validate(doc, opts)
}

type idref struct {
	node  *xmldom.Node
	value string
}

type validator struct {
	schema *Schema
	opts   ValidateOptions
	errs   []ValidationError
	ids    map[string]*xmldom.Node
	idrefs []idref
	full   bool // MaxErrors reached
	// parts is scratch for identity-constraint field tuples, reused
	// across every selected node of every constraint.
	parts []string
}

func (v *validator) errf(n *xmldom.Node, format string, args ...interface{}) {
	if v.full {
		return
	}
	e := ValidationError{Msg: fmt.Sprintf(format, args...)}
	if n != nil {
		e.Path = n.Path()
		e.Line = n.Line
		e.ord = n.DocOrder()
	}
	v.errs = append(v.errs, e)
	if v.opts.MaxErrors > 0 && len(v.errs) >= v.opts.MaxErrors {
		v.full = true
	}
}

func (v *validator) validateElement(elem *xmldom.Node, decl *ElementDecl) {
	if v.full {
		return
	}
	if decl.Abstract {
		v.errf(elem, "element %s is declared abstract and cannot appear in instances", elem.FullName())
		return
	}
	switch {
	case decl.Simple != nil:
		v.validateSimpleElement(elem, decl)
	case decl.Complex != nil:
		v.validateComplexElement(elem, decl.Complex)
	}
	if !v.opts.SkipIdentityConstraints && len(decl.Constraints) > 0 {
		start := len(v.errs)
		for _, ic := range decl.Constraints {
			v.checkConstraintScope(elem, decl, ic)
		}
		// On frozen documents, report this element's identity-constraint
		// violations in document order of the offending nodes rather than
		// constraint-declaration order; the sort is stable so unfrozen
		// documents (ord 0 everywhere) keep the original order. With zero
		// or one new errors — the overwhelmingly common valid-document case
		// — there is nothing to reorder.
		if len(v.errs)-start > 1 {
			sort.SliceStable(v.errs[start:], func(i, j int) bool {
				return v.errs[start+i].ord < v.errs[start+j].ord
			})
		}
	}
}

func (v *validator) validateSimpleElement(elem *xmldom.Node, decl *ElementDecl) {
	for _, c := range elem.Children {
		if c.Type == xmldom.ElementNode {
			v.errf(c, "element %s has simple type %s and cannot contain child elements",
				elem.FullName(), typeLabel(decl.Simple))
			return
		}
	}
	if len(elem.Attr) > 0 {
		v.errf(elem.Attr[0], "element %s with simple content cannot carry attributes", elem.FullName())
	}
	val := elem.StringValue()
	if decl.HasFixed && decl.Simple.normalize(val) != decl.Simple.normalize(decl.Fixed) {
		v.errf(elem, "element %s must have the fixed value %q", elem.FullName(), decl.Fixed)
		return
	}
	if err := checkSimpleValue(decl.Simple, val); err != nil {
		v.errf(elem, "element %s: %v", elem.FullName(), err)
	}
	v.trackIDs(elem, decl.Simple, val)
}

func (v *validator) validateComplexElement(elem *xmldom.Node, ct *ComplexType) {
	v.validateAttributes(elem, ct)

	// Character content.
	if !ct.Mixed {
		for _, c := range elem.Children {
			if c.Type == xmldom.TextNode && strings.TrimSpace(c.Data) != "" {
				v.errf(c, "element %s does not allow character content (%q)",
					elem.FullName(), strings.TrimSpace(c.Data))
				break
			}
		}
	}

	kids := elem.Elements()
	if ct.Content == nil {
		if len(kids) > 0 {
			v.errf(kids[0], "element %s must be empty but contains <%s>", elem.FullName(), kids[0].FullName())
		}
		return
	}
	assign := map[*xmldom.Node]*ElementDecl{}
	wild := map[*xmldom.Node]*Wildcard{}
	m := &contentMatcher{schema: v.schema, kids: kids, assign: assign, wild: wild}
	end := m.reach(ct.Content, singlePos(0))
	if !end[len(kids)] {
		culprit := m.maxPos
		if culprit < len(kids) {
			v.errf(kids[culprit], "element <%s> is not allowed here in %s (content model %s)",
				kids[culprit].FullName(), elem.FullName(), particleLabel(ct.Content))
		} else {
			v.errf(elem, "element %s is missing required content (model %s)",
				elem.FullName(), particleLabel(ct.Content))
		}
		// Continue into children best-effort so nested errors surface.
	}
	for _, k := range kids {
		if d := assign[k]; d != nil {
			v.validateElement(k, d)
		} else if w := wild[k]; w != nil {
			v.validateWildcard(k, w)
		} else if !end[len(kids)] {
			// Unmatched child in an already-invalid model: skip silently.
			continue
		}
	}
}

// validateWildcard applies the processContents mode to an element matched
// by an xs:any particle: skip validates nothing, lax validates against a
// global declaration when one exists, strict requires one.
func (v *validator) validateWildcard(elem *xmldom.Node, w *Wildcard) {
	if w.Process == "skip" {
		return
	}
	var decl *ElementDecl
	if elem.URI == "" {
		decl = v.schema.Elements[elem.Name]
	}
	if decl == nil {
		if w.Process == "strict" {
			v.errf(elem, "wildcard with processContents strict requires a global declaration for <%s>", elem.FullName())
		}
		return
	}
	v.validateElement(elem, decl)
}

// singlePos returns a position set containing only p.
func singlePos(p int) map[int]bool { return map[int]bool{p: true} }

// contentMatcher matches element children against a particle using
// position-set (Thompson-style) reachability, which is polynomial and
// handles nested occurrence bounds without backtracking blowups.
type contentMatcher struct {
	schema *Schema
	kids   []*xmldom.Node
	assign map[*xmldom.Node]*ElementDecl
	// wild records children consumed by xs:any particles, keyed to the
	// admitting wildcard for the processContents pass.
	wild   map[*xmldom.Node]*Wildcard
	maxPos int
}

// matchDecl returns the declaration an element particle assigns to child
// k: the particle's own declaration on a name match, or a substitution-
// group member for ref particles (heads dispatch only when referenced,
// per the XML Schema rules; abstract members never match by name here —
// the abstract error surfaces during element validation instead).
func (m *contentMatcher) matchDecl(p *Particle, k *xmldom.Node) *ElementDecl {
	if k.URI != "" {
		return nil
	}
	if k.Name == p.Elem.Name {
		return p.Elem
	}
	if p.Ref != "" && m.schema != nil {
		for _, mem := range m.schema.substMembers[p.Ref] {
			if !mem.Abstract && k.Name == mem.Name {
				return mem
			}
		}
	}
	return nil
}

// reach returns the set of positions reachable after matching p starting
// from every position in starts.
func (m *contentMatcher) reach(p *Particle, starts map[int]bool) map[int]bool {
	out := map[int]bool{}
	if len(starts) == 0 {
		return out
	}
	cur := starts
	count := 0
	for {
		if count >= p.Min {
			for pos := range cur {
				out[pos] = true
			}
		}
		if p.Max != Unbounded && count >= p.Max {
			break
		}
		next := m.reachOnce(p, cur)
		// Detect fixpoint (also guards min>0 groups that can match empty).
		if len(next) == 0 || subset(next, out) && count >= p.Min {
			for pos := range next {
				out[pos] = true
			}
			break
		}
		cur = next
		count++
		if count > len(m.kids)+1 {
			// A group matched without consuming input; accept and stop.
			for pos := range cur {
				out[pos] = true
			}
			break
		}
	}
	return out
}

func subset(a, b map[int]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// reachOnce matches exactly one occurrence of the particle body.
func (m *contentMatcher) reachOnce(p *Particle, starts map[int]bool) map[int]bool {
	switch p.Kind {
	case PElement:
		out := map[int]bool{}
		for pos := range starts {
			if pos >= len(m.kids) {
				continue
			}
			if d := m.matchDecl(p, m.kids[pos]); d != nil {
				m.assign[m.kids[pos]] = d
				out[pos+1] = true
				if pos+1 > m.maxPos {
					m.maxPos = pos + 1
				}
			}
		}
		return out
	case PAny:
		out := map[int]bool{}
		for pos := range starts {
			if pos < len(m.kids) && p.Wildcard.Admits(m.kids[pos].URI) {
				if m.wild != nil && m.assign[m.kids[pos]] == nil {
					m.wild[m.kids[pos]] = p.Wildcard
				}
				out[pos+1] = true
				if pos+1 > m.maxPos {
					m.maxPos = pos + 1
				}
			}
		}
		return out
	case PSequence:
		cur := starts
		for _, c := range p.Children {
			cur = m.reach(c, cur)
			if len(cur) == 0 {
				return cur
			}
		}
		return cur
	case PChoice:
		out := map[int]bool{}
		for _, c := range p.Children {
			for pos := range m.reach(c, starts) {
				out[pos] = true
			}
		}
		return out
	case PAll:
		// xsd:all: every child element particle at most per its bounds, in
		// any order. Match greedily by consuming children that match any
		// unused particle.
		out := map[int]bool{}
		for pos := range starts {
			if end, ok := m.matchAll(p, pos); ok {
				out[end] = true
			}
		}
		return out
	}
	return nil
}

// matchAll matches an xsd:all group starting at pos.
func (m *contentMatcher) matchAll(p *Particle, pos int) (int, bool) {
	used := make(map[*Particle]bool, len(p.Children))
	for pos < len(m.kids) {
		matched := false
		for _, c := range p.Children {
			if c.Kind != PElement || used[c] {
				continue
			}
			if d := m.matchDecl(c, m.kids[pos]); d != nil {
				m.assign[m.kids[pos]] = d
				used[c] = true
				pos++
				if pos > m.maxPos {
					m.maxPos = pos
				}
				matched = true
				break
			}
		}
		if !matched {
			break
		}
	}
	for _, c := range p.Children {
		if c.Min > 0 && !used[c] {
			return 0, false
		}
	}
	return pos, true
}

func (v *validator) validateAttributes(elem *xmldom.Node, ct *ComplexType) {
	declared := map[string]*AttributeDecl{}
	for _, ad := range ct.Attributes {
		declared[ad.Name] = ad
	}
	for _, a := range elem.Attr {
		if a.URI == xmldom.XMLNSNamespace || a.URI == xmldom.XMLNamespace {
			continue // namespace declarations and xml: attributes pass
		}
		var ad *AttributeDecl
		if a.URI == "" {
			ad = declared[a.Name]
		}
		if ad == nil {
			// An anyAttribute wildcard admits undeclared attributes in
			// matching namespaces; strict still demands a declaration,
			// which this schema subset has no global form of.
			if ct.AnyAttr != nil && ct.AnyAttr.Admits(a.URI) && ct.AnyAttr.Process != "strict" {
				continue
			}
			if a.URI != "" {
				v.errf(a, "namespaced attribute %s is not declared", a.FullName())
			} else {
				v.errf(a, "attribute %s is not declared on element %s", a.Name, elem.FullName())
			}
			continue
		}
		if ad.Use == "prohibited" {
			v.errf(a, "attribute %s is prohibited on element %s", a.Name, elem.FullName())
			continue
		}
		if ad.HasFixed && ad.Type.normalize(a.Data) != ad.Type.normalize(ad.Fixed) {
			v.errf(a, "attribute %s must have the fixed value %q", a.Name, ad.Fixed)
			continue
		}
		if err := checkSimpleValue(ad.Type, a.Data); err != nil {
			v.errf(a, "attribute %s: %v", a.Name, err)
			continue
		}
		v.trackIDs(a, ad.Type, a.Data)
	}
	for _, ad := range ct.Attributes {
		if elem.GetAttr(ad.Name) != nil {
			continue
		}
		if ad.Use == "required" {
			v.errf(elem, "element %s is missing required attribute %s", elem.FullName(), ad.Name)
			continue
		}
		if ad.HasDefault && v.opts.ApplyDefaults {
			elem.SetAttr(ad.Name, ad.Default)
		}
		if ad.HasFixed && v.opts.ApplyDefaults {
			elem.SetAttr(ad.Name, ad.Fixed)
		}
	}
}

// trackIDs records ID definitions and IDREF uses for the document-wide
// integrity check.
func (v *validator) trackIDs(n *xmldom.Node, st *SimpleType, val string) {
	switch st.rootKind() {
	case btID:
		id := st.normalize(val)
		if prev, dup := v.ids[id]; dup {
			v.errf(n, "duplicate ID %q (first defined at %s)", id, prev.Path())
		} else {
			v.ids[id] = n
		}
	case btIDREF:
		v.idrefs = append(v.idrefs, idref{node: n, value: st.normalize(val)})
	case btIDREFS:
		for _, tok := range strings.Fields(val) {
			v.idrefs = append(v.idrefs, idref{node: n, value: tok})
		}
	}
}

func (v *validator) checkIDRefs() {
	for _, r := range v.idrefs {
		if _, ok := v.ids[r.value]; !ok {
			v.errf(r.node, "IDREF %q does not match any ID in the document", r.value)
		}
	}
}

// ---- simple value validation ----

func typeLabel(st *SimpleType) string {
	if st.Name != "" {
		return st.Name
	}
	return "anonymous type"
}

// checkSimpleValue validates a lexical value against a simple type,
// walking the restriction chain so every level's facets apply. When the
// chain reaches a list variety, each whitespace-separated token is
// checked against the item type; a union accepts the value as soon as
// any member does.
func checkSimpleValue(st *SimpleType, raw string) error {
	v := st.normalize(raw)
	isList := st.isList()
	for cur := st; cur != nil; cur = cur.base {
		switch {
		case cur.builtin != btNone:
			return checkBuiltin(cur.builtin, v)
		case cur.Item != nil:
			for _, tok := range strings.Fields(v) {
				if err := checkSimpleValue(cur.Item, tok); err != nil {
					return fmt.Errorf("list item %q: %v", tok, err)
				}
			}
			return nil
		case len(cur.Members) > 0:
			for _, mem := range cur.Members {
				if checkSimpleValue(mem, v) == nil {
					return nil
				}
			}
			return fmt.Errorf("%q does not match any member type of union %s", v, typeLabel(cur))
		}
		if err := checkFacets(cur, v, isList); err != nil {
			return err
		}
	}
	return nil
}

// isList reports whether the type's derivation chain bottoms out in a
// list variety, which switches length facets to counting items.
func (st *SimpleType) isList() bool {
	for cur := st; cur != nil; cur = cur.base {
		if cur.Item != nil {
			return true
		}
		if cur.builtin != btNone || len(cur.Members) > 0 {
			return false
		}
	}
	return false
}

// hasMembers reports whether the chain bottoms out in a union variety.
func (st *SimpleType) hasMembers() bool {
	for cur := st; cur != nil; cur = cur.base {
		if len(cur.Members) > 0 {
			return true
		}
		if cur.builtin != btNone || cur.Item != nil {
			return false
		}
	}
	return false
}

func checkFacets(st *SimpleType, v string, isList bool) error {
	if len(st.Enum) > 0 {
		ok := false
		for _, e := range st.Enum {
			if v == e {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%q is not one of the allowed values (%s) of type %s",
				v, strings.Join(st.Enum, ", "), typeLabel(st))
		}
	}
	for i, re := range st.Patterns {
		if !re.MatchString(v) {
			return fmt.Errorf("%q does not match pattern %q of type %s", v, st.patternSrcs[i], typeLabel(st))
		}
	}
	// Length facets count characters, or items for list varieties.
	n := len([]rune(v))
	unit := "length"
	if isList {
		n = len(strings.Fields(v))
		unit = "item count"
	}
	if st.Length != nil && n != *st.Length {
		return fmt.Errorf("%q has %s %d, want exactly %d", v, unit, n, *st.Length)
	}
	if st.MinLength != nil && n < *st.MinLength {
		return fmt.Errorf("%q has %s %d, want at least %d", v, unit, n, *st.MinLength)
	}
	if st.MaxLength != nil && n > *st.MaxLength {
		return fmt.Errorf("%q has %s %d, want at most %d", v, unit, n, *st.MaxLength)
	}
	if st.TotalDigits != nil || st.FractionDigits != nil {
		total, frac, ok := digitCounts(v)
		if !ok {
			return fmt.Errorf("%q is not a decimal but type %s has digit facets", v, typeLabel(st))
		}
		if st.TotalDigits != nil && total > *st.TotalDigits {
			return fmt.Errorf("%q has %d significant digits, totalDigits allows %d", v, total, *st.TotalDigits)
		}
		if st.FractionDigits != nil && frac > *st.FractionDigits {
			return fmt.Errorf("%q has %d fraction digits, fractionDigits allows %d", v, frac, *st.FractionDigits)
		}
	}
	if st.MinInclusive != nil || st.MaxInclusive != nil || st.MinExclusive != nil || st.MaxExclusive != nil {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("%q is not numeric but type %s has range facets", v, typeLabel(st))
		}
		if st.MinInclusive != nil && f < *st.MinInclusive {
			return fmt.Errorf("%v is below minInclusive %v", f, *st.MinInclusive)
		}
		if st.MaxInclusive != nil && f > *st.MaxInclusive {
			return fmt.Errorf("%v is above maxInclusive %v", f, *st.MaxInclusive)
		}
		if st.MinExclusive != nil && f <= *st.MinExclusive {
			return fmt.Errorf("%v is not above minExclusive %v", f, *st.MinExclusive)
		}
		if st.MaxExclusive != nil && f >= *st.MaxExclusive {
			return fmt.Errorf("%v is not below maxExclusive %v", f, *st.MaxExclusive)
		}
	}
	return nil
}

// digitCounts parses a decimal lexical value and counts its significant
// digits: leading zeros of the integer part and trailing zeros of the
// fraction part do not count (per the XSD totalDigits/fractionDigits
// value space definition).
func digitCounts(v string) (total, frac int, ok bool) {
	s := strings.TrimLeft(v, "+-")
	if s == "" {
		return 0, 0, false
	}
	intPart, fracPart := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart, fracPart = s[:i], s[i+1:]
	}
	for _, r := range intPart + fracPart {
		if r < '0' || r > '9' {
			return 0, 0, false
		}
	}
	if intPart == "" && fracPart == "" {
		return 0, 0, false
	}
	intPart = strings.TrimLeft(intPart, "0")
	fracPart = strings.TrimRight(fracPart, "0")
	return len(intPart) + len(fracPart), len(fracPart), true
}

// ---- identity constraints ----

// checkConstraintScope evaluates key/unique/keyref constraints declared on
// decl against the subtree rooted at elem. Keyrefs are resolved against
// keys declared on the same element, matching how the paper's schema
// declares them all on the root.
func (v *validator) checkConstraintScope(elem *xmldom.Node, decl *ElementDecl, ic *IdentityConstraint) {
	tuples, nodes := v.collectTuples(elem, ic)
	switch ic.Kind {
	case KeyConstraint, UniqueConstraint:
		seen := map[string]*xmldom.Node{}
		for i, tup := range tuples {
			if tup == "" {
				if ic.Kind == KeyConstraint {
					v.errf(nodes[i], "key %s: a selected node is missing a field value", ic.Name)
				}
				continue
			}
			if prev, dup := seen[tup]; dup {
				v.errf(nodes[i], "%s %s: duplicate value (%s) also selected at %s",
					ic.Kind, ic.Name, tup, prev.Path())
				continue
			}
			seen[tup] = nodes[i]
		}
	case KeyrefConstraint:
		var target *IdentityConstraint
		for _, other := range decl.Constraints {
			if other.Name == ic.Refer && (other.Kind == KeyConstraint || other.Kind == UniqueConstraint) {
				target = other
				break
			}
		}
		if target == nil {
			v.errf(elem, "keyref %s refers to unknown key %s", ic.Name, ic.Refer)
			return
		}
		keyTuples, _ := v.collectTuples(elem, target)
		keys := map[string]bool{}
		for _, tup := range keyTuples {
			if tup != "" {
				keys[tup] = true
			}
		}
		for i, tup := range tuples {
			if tup == "" {
				continue
			}
			if !keys[tup] {
				v.errf(nodes[i], "keyref %s: value (%s) does not match any %s value",
					ic.Name, tup, ic.Refer)
			}
		}
	}
}

// collectTuples evaluates the selector and fields of a constraint and
// returns one encoded tuple per selected node (empty string when a field
// is absent).
func (v *validator) collectTuples(elem *xmldom.Node, ic *IdentityConstraint) ([]string, []*xmldom.Node) {
	ctx := xpath.GetContext()
	defer xpath.PutContext(ctx)
	ctx.Node, ctx.Position, ctx.Size = elem, 1, 1
	selected, err := ic.Selector.EvalNodes(ctx)
	if err != nil {
		v.errf(elem, "%s %s: selector %q failed: %v", ic.Kind, ic.Name, ic.selectorSrc, err)
		return nil, nil
	}
	tuples := make([]string, len(selected))
	// One context and one field-part buffer serve every selected node:
	// field expressions do not retain the context past Eval.
	fctx := ctx
	parts := v.parts[:0]
	for i, n := range selected {
		parts = parts[:0]
		complete := true
		for _, f := range ic.Fields {
			fctx.Node = n
			fv, err := f.Eval(fctx)
			if err != nil {
				v.errf(n, "%s %s: field failed: %v", ic.Kind, ic.Name, err)
				complete = false
				break
			}
			ns, isNS := fv.(xpath.NodeSet)
			if isNS && len(ns) == 0 {
				complete = false
				break
			}
			parts = append(parts, xpath.ToString(fv))
		}
		if complete {
			// Encode with an unlikely separator so multi-field tuples
			// cannot collide.
			tuples[i] = strings.Join(parts, "\x1f")
		}
	}
	v.parts = parts[:0]
	return tuples, selected
}

func particleLabel(p *Particle) string {
	switch p.Kind {
	case PElement:
		return elementCard(p)
	case PAny:
		return "any" + cardSuffix(p)
	case PSequence, PChoice, PAll:
		sep := ", "
		if p.Kind == PChoice {
			sep = " | "
		}
		parts := make([]string, len(p.Children))
		for i, c := range p.Children {
			parts[i] = particleLabel(c)
		}
		return "(" + strings.Join(parts, sep) + ")" + cardSuffix(p)
	}
	return "?"
}

func elementCard(p *Particle) string {
	return p.Elem.Name + cardSuffix(p)
}

func cardSuffix(p *Particle) string {
	switch {
	case p.Min == 1 && p.Max == 1:
		return ""
	case p.Min == 0 && p.Max == 1:
		return "?"
	case p.Min == 0 && p.Max == Unbounded:
		return "*"
	case p.Min == 1 && p.Max == Unbounded:
		return "+"
	case p.Max == Unbounded:
		return fmt.Sprintf("{%d,}", p.Min)
	default:
		return fmt.Sprintf("{%d,%d}", p.Min, p.Max)
	}
}
