package xsd_test

import (
	"testing"

	"goldweb/internal/core"
	"goldweb/internal/workload"
	"goldweb/internal/xsd"
)

// BenchmarkValidateIdentity isolates identity-constraint checking — the
// key/keyref/unique tuple collection driven by the compiled selector and
// field expressions.
func BenchmarkValidateIdentity(b *testing.B) {
	schema := core.MustSchema()
	doc := workload.GenModel(workload.ModelSpec{Facts: 8, Dims: 16, Depth: 3}).ToXML()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if errs := schema.Validate(doc, xsd.ValidateOptions{}); len(errs) != 0 {
			b.Fatal(errs[0])
		}
	}
}
