package xsd

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestConformance runs the W3C-testsuite-style conformance table under
// testdata/conformance: each feature directory holds a schema.xsd entry
// point (whose xs:include/xs:import graph the Loader resolves relative
// to the directory) plus valid-*.xml and invalid-*.xml instances. The
// instance file name is the expectation — valid instances must produce
// zero errors, invalid ones at least one.
func TestConformance(t *testing.T) {
	root := filepath.Join("testdata", "conformance")
	features, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	ranFeatures := 0
	for _, f := range features {
		if !f.IsDir() {
			continue
		}
		ranFeatures++
		dir := filepath.Join(root, f.Name())
		t.Run(f.Name(), func(t *testing.T) {
			s, err := LoadSchemaFile(filepath.Join(dir, "schema.xsd"))
			if err != nil {
				t.Fatalf("schema: %v", err)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			ran := 0
			for _, e := range entries {
				name := e.Name()
				if e.IsDir() || !strings.HasSuffix(name, ".xml") {
					continue
				}
				wantValid := strings.HasPrefix(name, "valid-")
				if !wantValid && !strings.HasPrefix(name, "invalid-") {
					t.Fatalf("instance %s is neither valid-*.xml nor invalid-*.xml", name)
				}
				ran++
				t.Run(name, func(t *testing.T) {
					data, err := os.ReadFile(filepath.Join(dir, name))
					if err != nil {
						t.Fatal(err)
					}
					errs := s.ValidateString(string(data), ValidateOptions{ApplyDefaults: true})
					if wantValid && len(errs) > 0 {
						t.Errorf("want valid, got %d errors; first: %s", len(errs), errs[0])
					}
					if !wantValid && len(errs) == 0 {
						t.Error("want invalid, but the instance validated clean")
					}
				})
			}
			if ran == 0 {
				t.Fatal("feature directory has no instances")
			}
		})
	}
	if ranFeatures == 0 {
		t.Fatal("no conformance feature directories found")
	}
}

// TestConformanceProvenance spot-checks that multi-file features report
// which files their declarations came from.
func TestConformanceProvenance(t *testing.T) {
	s, err := LoadSchemaFile(filepath.Join("testdata", "conformance", "include-nested", "schema.xsd"))
	if err != nil {
		t.Fatal(err)
	}
	files := s.SourceFiles()
	want := []string{"schema.xsd", "sub/a.xsd", "sub/b.xsd"}
	if len(files) != len(want) {
		t.Fatalf("SourceFiles = %v, want %v", files, want)
	}
	for i := range want {
		if files[i] != want[i] {
			t.Fatalf("SourceFiles = %v, want %v", files, want)
		}
	}
	if got := s.DeclFile("element", "qty"); got != "sub/a.xsd" {
		t.Errorf("DeclFile(element, qty) = %q, want sub/a.xsd", got)
	}
	if got := s.DeclFile("simpleType", "Qty"); got != "sub/b.xsd" {
		t.Errorf("DeclFile(simpleType, Qty) = %q, want sub/b.xsd", got)
	}
}
