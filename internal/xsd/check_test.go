package xsd

import (
	"strings"
	"testing"
)

func sch(body string) string {
	return `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">` + body + `</xsd:schema>`
}

func TestParseSchemaErrors(t *testing.T) {
	bad := []struct {
		name, src, want string
	}{
		{"not a schema", `<foo/>`, "root element must be xsd:schema"},
		{"unknown base", sch(`<xsd:simpleType name="T"><xsd:restriction base="Nope"/></xsd:simpleType>`), "unknown base type"},
		{"unknown type ref", sch(`<xsd:element name="e" type="Nope"/>`), "unknown type Nope"},
		{"duplicate element", sch(`<xsd:element name="e"/><xsd:element name="e"/>`), "duplicate global element"},
		{"bad occurs", sch(`<xsd:element name="e"><xsd:complexType><xsd:sequence><xsd:element name="c" minOccurs="3" maxOccurs="2"/></xsd:sequence></xsd:complexType></xsd:element>`), "minOccurs 3 exceeds maxOccurs 2"},
		{"circular simpletype", sch(`<xsd:simpleType name="A"><xsd:restriction base="B"/></xsd:simpleType><xsd:simpleType name="B"><xsd:restriction base="A"/></xsd:simpleType>`), "circular"},
		{"list without item type", sch(`<xsd:simpleType name="L"><xsd:list/></xsd:simpleType>`), "itemType"},
		{"keyref missing refer", sch(`<xsd:element name="e"><xsd:keyref name="k"><xsd:selector xpath="a"/><xsd:field xpath="@b"/></xsd:keyref></xsd:element>`), "keyref requires refer"},
		{"constraint missing field", sch(`<xsd:element name="e"><xsd:key name="k"><xsd:selector xpath="a"/></xsd:key></xsd:element>`), "requires a selector and at least one field"},
		{"bad selector xpath", sch(`<xsd:element name="e"><xsd:key name="k"><xsd:selector xpath="[["/><xsd:field xpath="@a"/></xsd:key></xsd:element>`), "bad selector xpath"},
		{"attribute default and fixed", sch(`<xsd:element name="e"><xsd:complexType><xsd:attribute name="a" default="x" fixed="y"/></xsd:complexType></xsd:element>`), "cannot have both default and fixed"},
	}
	for _, tc := range bad {
		_, err := ParseSchemaString(tc.src)
		if err == nil {
			t.Errorf("%s: schema accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestCheckSchemaCleanOnGoodSchema(t *testing.T) {
	issues := CheckSchemaString(miniSchema)
	for _, i := range issues {
		if i.Severity == "error" {
			t.Errorf("unexpected error: %s", i)
		}
	}
}

func TestCheckSchemaFindsBadEnumValue(t *testing.T) {
	src := sch(`<xsd:simpleType name="T"><xsd:restriction base="xsd:integer">
		<xsd:enumeration value="12"/><xsd:enumeration value="notanumber"/>
	</xsd:restriction></xsd:simpleType><xsd:element name="e" type="T"/>`)
	issues := CheckSchemaString(src)
	found := false
	for _, i := range issues {
		if strings.Contains(i.Msg, `enumeration value "notanumber"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("bad enum not flagged: %v", issues)
	}
}

func TestCheckSchemaFindsBadDefault(t *testing.T) {
	src := sch(`<xsd:element name="e"><xsd:complexType>
		<xsd:attribute name="n" type="xsd:integer" default="abc"/>
	</xsd:complexType></xsd:element>`)
	issues := CheckSchemaString(src)
	found := false
	for _, i := range issues {
		if i.Severity == "error" && strings.Contains(i.Msg, "default value of attribute n") {
			found = true
		}
	}
	if !found {
		t.Errorf("bad default not flagged: %v", issues)
	}
}

func TestCheckSchemaFindsDanglingKeyref(t *testing.T) {
	src := sch(`<xsd:element name="e">
		<xsd:complexType><xsd:sequence><xsd:element name="c" minOccurs="0"/></xsd:sequence></xsd:complexType>
		<xsd:keyref name="kr" refer="ghost"><xsd:selector xpath="c"/><xsd:field xpath="@a"/></xsd:keyref>
	</xsd:element>`)
	issues := CheckSchemaString(src)
	found := false
	for _, i := range issues {
		if strings.Contains(i.Msg, "keyref kr refers to undeclared key ghost") {
			found = true
		}
	}
	if !found {
		t.Errorf("dangling keyref not flagged: %v", issues)
	}
}

func TestCheckSchemaWarnsAmbiguousChoice(t *testing.T) {
	src := sch(`<xsd:element name="e"><xsd:complexType><xsd:choice>
		<xsd:element name="x"/><xsd:element name="x"/>
	</xsd:choice></xsd:complexType></xsd:element>`)
	issues := CheckSchemaString(src)
	found := false
	for _, i := range issues {
		if strings.Contains(i.Msg, "ambiguous content model") {
			found = true
		}
	}
	if !found {
		t.Errorf("ambiguity not flagged: %v", issues)
	}
}

// ---- facet coverage ----

func validateOne(t *testing.T, schema, doc string) []ValidationError {
	t.Helper()
	s, err := ParseSchemaString(schema)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	return s.ValidateString(doc, ValidateOptions{})
}

func TestPatternFacet(t *testing.T) {
	schema := sch(`<xsd:simpleType name="Code"><xsd:restriction base="xsd:string">
		<xsd:pattern value="[A-Z]{2}-[0-9]+"/></xsd:restriction></xsd:simpleType>
		<xsd:element name="e"><xsd:complexType><xsd:attribute name="c" type="Code" use="required"/></xsd:complexType></xsd:element>`)
	if errs := validateOne(t, schema, `<e c="AB-123"/>`); len(errs) != 0 {
		t.Errorf("valid pattern rejected: %v", errs)
	}
	if errs := validateOne(t, schema, `<e c="ab-123"/>`); len(errs) == 0 {
		t.Error("invalid pattern accepted")
	}
	// The pattern is anchored: a substring match is not enough.
	if errs := validateOne(t, schema, `<e c="xAB-123y"/>`); len(errs) == 0 {
		t.Error("unanchored match accepted")
	}
}

func TestLengthAndRangeFacets(t *testing.T) {
	schema := sch(`<xsd:simpleType name="Short"><xsd:restriction base="xsd:string">
		<xsd:minLength value="2"/><xsd:maxLength value="4"/></xsd:restriction></xsd:simpleType>
		<xsd:simpleType name="Pct"><xsd:restriction base="xsd:integer">
		<xsd:minInclusive value="0"/><xsd:maxInclusive value="100"/></xsd:restriction></xsd:simpleType>
		<xsd:element name="e"><xsd:complexType>
		<xsd:attribute name="s" type="Short"/><xsd:attribute name="p" type="Pct"/>
		</xsd:complexType></xsd:element>`)
	if errs := validateOne(t, schema, `<e s="abc" p="50"/>`); len(errs) != 0 {
		t.Errorf("valid rejected: %v", errs)
	}
	if errs := validateOne(t, schema, `<e s="a"/>`); len(errs) == 0 {
		t.Error("too-short accepted")
	}
	if errs := validateOne(t, schema, `<e s="abcde"/>`); len(errs) == 0 {
		t.Error("too-long accepted")
	}
	if errs := validateOne(t, schema, `<e p="101"/>`); len(errs) == 0 {
		t.Error("out-of-range accepted")
	}
	if errs := validateOne(t, schema, `<e p="-1"/>`); len(errs) == 0 {
		t.Error("negative accepted")
	}
}

func TestSimpleContentElement(t *testing.T) {
	schema := sch(`<xsd:element name="price" type="xsd:decimal"/>`)
	if errs := validateOne(t, schema, `<price>12.50</price>`); len(errs) != 0 {
		t.Errorf("valid rejected: %v", errs)
	}
	if errs := validateOne(t, schema, `<price>cheap</price>`); len(errs) == 0 {
		t.Error("invalid decimal accepted")
	}
	if errs := validateOne(t, schema, `<price><sub/></price>`); len(errs) == 0 {
		t.Error("child element in simple content accepted")
	}
}

func TestFixedValues(t *testing.T) {
	schema := sch(`<xsd:element name="e"><xsd:complexType>
		<xsd:attribute name="v" type="xsd:string" fixed="const"/>
	</xsd:complexType></xsd:element>`)
	if errs := validateOne(t, schema, `<e v="const"/>`); len(errs) != 0 {
		t.Errorf("fixed match rejected: %v", errs)
	}
	if errs := validateOne(t, schema, `<e v="other"/>`); len(errs) == 0 {
		t.Error("fixed mismatch accepted")
	}
	if errs := validateOne(t, schema, `<e/>`); len(errs) != 0 {
		t.Errorf("absent fixed attribute rejected: %v", errs)
	}
}

// ---- content model coverage ----

func TestChoiceContentModel(t *testing.T) {
	schema := sch(`<xsd:element name="e"><xsd:complexType><xsd:choice>
		<xsd:element name="a"/><xsd:element name="b"/>
	</xsd:choice></xsd:complexType></xsd:element>`)
	if errs := validateOne(t, schema, `<e><a/></e>`); len(errs) != 0 {
		t.Errorf("choice a: %v", errs)
	}
	if errs := validateOne(t, schema, `<e><b/></e>`); len(errs) != 0 {
		t.Errorf("choice b: %v", errs)
	}
	if errs := validateOne(t, schema, `<e><a/><b/></e>`); len(errs) == 0 {
		t.Error("both branches accepted")
	}
	if errs := validateOne(t, schema, `<e/>`); len(errs) == 0 {
		t.Error("empty choice accepted")
	}
}

func TestRepeatedChoice(t *testing.T) {
	schema := sch(`<xsd:element name="e"><xsd:complexType>
		<xsd:choice minOccurs="0" maxOccurs="unbounded">
		<xsd:element name="a"/><xsd:element name="b"/>
	</xsd:choice></xsd:complexType></xsd:element>`)
	for _, doc := range []string{`<e/>`, `<e><a/></e>`, `<e><b/><a/><a/><b/></e>`} {
		if errs := validateOne(t, schema, doc); len(errs) != 0 {
			t.Errorf("%s: %v", doc, errs)
		}
	}
	if errs := validateOne(t, schema, `<e><c/></e>`); len(errs) == 0 {
		t.Error("foreign element accepted")
	}
}

func TestNestedSequenceOccurs(t *testing.T) {
	schema := sch(`<xsd:element name="e"><xsd:complexType><xsd:sequence>
		<xsd:sequence minOccurs="0" maxOccurs="2">
			<xsd:element name="k"/><xsd:element name="v"/>
		</xsd:sequence>
		<xsd:element name="end"/>
	</xsd:sequence></xsd:complexType></xsd:element>`)
	ok := []string{`<e><end/></e>`, `<e><k/><v/><end/></e>`, `<e><k/><v/><k/><v/><end/></e>`}
	for _, doc := range ok {
		if errs := validateOne(t, schema, doc); len(errs) != 0 {
			t.Errorf("%s: %v", doc, errs)
		}
	}
	bad := []string{`<e><k/><end/></e>`, `<e><k/><v/><k/><v/><k/><v/><end/></e>`, `<e/>`}
	for _, doc := range bad {
		if errs := validateOne(t, schema, doc); len(errs) == 0 {
			t.Errorf("%s accepted", doc)
		}
	}
}

func TestAllGroup(t *testing.T) {
	schema := sch(`<xsd:element name="e"><xsd:complexType><xsd:all>
		<xsd:element name="a"/><xsd:element name="b"/><xsd:element name="c" minOccurs="0"/>
	</xsd:all></xsd:complexType></xsd:element>`)
	ok := []string{`<e><a/><b/></e>`, `<e><b/><a/></e>`, `<e><c/><b/><a/></e>`}
	for _, doc := range ok {
		if errs := validateOne(t, schema, doc); len(errs) != 0 {
			t.Errorf("%s: %v", doc, errs)
		}
	}
	bad := []string{`<e><a/></e>`, `<e><a/><b/><b/></e>`}
	for _, doc := range bad {
		if errs := validateOne(t, schema, doc); len(errs) == 0 {
			t.Errorf("%s accepted", doc)
		}
	}
}

func TestExactOccurrenceBounds(t *testing.T) {
	schema := sch(`<xsd:element name="e"><xsd:complexType><xsd:sequence>
		<xsd:element name="x" minOccurs="2" maxOccurs="3"/>
	</xsd:sequence></xsd:complexType></xsd:element>`)
	counts := map[int]bool{0: false, 1: false, 2: true, 3: true, 4: false}
	for n, want := range counts {
		doc := "<e>" + strings.Repeat("<x/>", n) + "</e>"
		errs := validateOne(t, schema, doc)
		if (len(errs) == 0) != want {
			t.Errorf("%d occurrences: valid=%v want %v (%v)", n, len(errs) == 0, want, errs)
		}
	}
}

func TestNamedComplexTypeFlatStyle(t *testing.T) {
	// The "flat" schema style of the paper's §3.1: named types referenced
	// from element declarations.
	schema := sch(`
	<xsd:complexType name="MethodsType"><xsd:sequence>
		<xsd:element name="method" maxOccurs="unbounded"><xsd:complexType>
			<xsd:attribute name="name" type="xsd:string" use="required"/>
		</xsd:complexType></xsd:element>
	</xsd:sequence></xsd:complexType>
	<xsd:element name="klass"><xsd:complexType><xsd:sequence>
		<xsd:element name="methods" type="MethodsType" minOccurs="0"/>
	</xsd:sequence></xsd:complexType></xsd:element>`)
	if errs := validateOne(t, schema, `<klass><methods><method name="m1"/><method name="m2"/></methods></klass>`); len(errs) != 0 {
		t.Errorf("flat style: %v", errs)
	}
	if errs := validateOne(t, schema, `<klass><methods><method/></methods></klass>`); len(errs) == 0 {
		t.Error("missing method name accepted")
	}
}

func TestDerivedSimpleTypeChain(t *testing.T) {
	schema := sch(`
	<xsd:simpleType name="NonEmpty"><xsd:restriction base="xsd:string"><xsd:minLength value="1"/></xsd:restriction></xsd:simpleType>
	<xsd:simpleType name="ShortName"><xsd:restriction base="NonEmpty"><xsd:maxLength value="5"/></xsd:restriction></xsd:simpleType>
	<xsd:element name="e"><xsd:complexType><xsd:attribute name="n" type="ShortName" use="required"/></xsd:complexType></xsd:element>`)
	if errs := validateOne(t, schema, `<e n="ok"/>`); len(errs) != 0 {
		t.Errorf("chain valid rejected: %v", errs)
	}
	if errs := validateOne(t, schema, `<e n=""/>`); len(errs) == 0 {
		t.Error("empty accepted despite inherited minLength")
	}
	if errs := validateOne(t, schema, `<e n="toolong"/>`); len(errs) == 0 {
		t.Error("too-long accepted")
	}
}
