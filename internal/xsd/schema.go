// Package xsd implements an XML Schema (W3C 2001) validator subset
// sufficient for the paper's multidimensional-model schema and schemas of
// similar shape: global and inline element declarations (both the
// "Russian doll" and flat schema styles of §3.1 of the paper), complex
// types with sequence/choice content models and occurrence bounds,
// attributes with required/optional/default/fixed, named simple types
// derived by restriction (enumeration, pattern, length and range facets),
// the common built-in types, ID/IDREF integrity, and key/keyref/unique
// identity constraints with XPath selectors and fields.
//
// It plays the role Apache Xerces played in the original system; the
// CheckSchema meta-validator mirrors the IBM XML Schema Quality Checker
// step the authors describe.
package xsd

import (
	"fmt"
	"regexp"
	"strings"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// Namespace is the XML Schema namespace URI.
const Namespace = "http://www.w3.org/2001/XMLSchema"

// Schema is a compiled schema ready to validate instance documents. A
// Schema may be the compilation of a single document (ParseSchema) or of
// a whole xs:import/xs:include graph (Loader): every included document
// contributes its global declarations to the same maps.
type Schema struct {
	// Elements holds the global element declarations by name.
	Elements map[string]*ElementDecl
	// SimpleTypes and ComplexTypes hold the named type definitions.
	SimpleTypes  map[string]*SimpleType
	ComplexTypes map[string]*ComplexType

	// substMembers maps a substitution-group head to its transitive
	// member declarations (sorted by name), computed during resolve.
	substMembers map[string][]*ElementDecl

	// declFile records the source file of each global declaration
	// (keyed "element e" / "simpleType T" / "complexType T"), so
	// multi-file conflicts are reported with both locations.
	declFile map[string]string

	// fileByDoc maps each contributing document root to its location,
	// giving resolve-phase errors per-file provenance.
	fileByDoc map[*xmldom.Node]string

	doc *xmldom.Node
}

// ElementDecl describes an element declaration.
type ElementDecl struct {
	Name                 string
	TypeName             string       // non-empty when the type is referenced by name
	Simple               *SimpleType  // inline or resolved simple type
	Complex              *ComplexType // inline or resolved complex type
	Default              string
	Fixed                string
	HasDefault, HasFixed bool
	Constraints          []*IdentityConstraint

	// SubstitutionGroup names the head element this (global) declaration
	// may substitute for; Abstract heads cannot appear in instances
	// themselves.
	SubstitutionGroup string
	Abstract          bool

	src *xmldom.Node
}

// ComplexType describes a complex type: a content particle plus
// attributes.
type ComplexType struct {
	Name       string
	Content    *Particle // nil means empty content
	Attributes []*AttributeDecl
	// AnyAttr is the xs:anyAttribute wildcard, when declared: the
	// element admits undeclared attributes matching its namespace
	// constraint.
	AnyAttr *Wildcard
	Mixed   bool

	src *xmldom.Node
}

// ParticleKind distinguishes content-model particles.
type ParticleKind uint8

// Particle kinds.
const (
	PSequence ParticleKind = iota + 1
	PChoice
	PAll
	PElement
	// PAny is an xs:any wildcard particle.
	PAny
)

// Unbounded is the MaxOccurs value for maxOccurs="unbounded".
const Unbounded = -1

// Particle is a node of a content model: a sequence, choice, all group,
// element or wildcard particle, with occurrence bounds.
type Particle struct {
	Kind     ParticleKind
	Min, Max int // Max == Unbounded for unbounded
	Children []*Particle
	Elem     *ElementDecl
	// Ref is the referenced global element name for ref="..." particles
	// (Elem is linked to the global declaration during resolve).
	// Substitution-group dispatch applies only to ref particles, per the
	// XML Schema rules.
	Ref string
	// Wildcard carries the xs:any constraint for PAny particles.
	Wildcard *Wildcard

	src *xmldom.Node
}

// Wildcard is the namespace constraint and process mode of an xs:any or
// xs:anyAttribute declaration.
type Wildcard struct {
	// NS is the raw namespace constraint: "##any", "##other", "##local",
	// "##targetNamespace", or a space-separated URI list.
	NS string
	// Process is the processContents mode: "strict", "lax" or "skip".
	Process string

	src *xmldom.Node
}

// Admits reports whether the wildcard's namespace constraint admits a
// node in namespace uri. The schemas this system compiles have no
// targetNamespace, so ##targetNamespace and ##local both mean the empty
// namespace and ##other means any non-empty one.
func (w *Wildcard) Admits(uri string) bool {
	switch w.NS {
	case "", "##any":
		return true
	case "##other":
		return uri != ""
	case "##local", "##targetNamespace":
		return uri == ""
	}
	for _, tok := range strings.Fields(w.NS) {
		if tok == "##local" || tok == "##targetNamespace" {
			tok = ""
		}
		if tok == uri {
			return true
		}
	}
	return false
}

// AttributeDecl describes an attribute declaration.
type AttributeDecl struct {
	Name                 string
	TypeName             string
	Type                 *SimpleType // resolved or inline
	Use                  string      // "optional" (default), "required", "prohibited"
	Default              string
	Fixed                string
	HasDefault, HasFixed bool

	src *xmldom.Node
}

// SimpleType describes a simple type: a built-in, a restriction of one,
// a list over an item type, or a union of member types.
type SimpleType struct {
	Name    string
	Base    string // name of the base type (restrictions only)
	builtin builtinKind

	// Item is the list item type for xs:list varieties; Members are the
	// xs:union member types (memberTypes references resolved first, then
	// inline simpleType children, in declaration order).
	Item    *SimpleType
	Members []*SimpleType

	Enum           []string
	Patterns       []*regexp.Regexp
	patternSrcs    []string
	Length         *int
	MinLength      *int
	MaxLength      *int
	TotalDigits    *int
	FractionDigits *int
	MinInclusive   *float64
	MaxInclusive   *float64
	MinExclusive   *float64
	MaxExclusive   *float64
	WhiteSpace     string // "", "preserve", "replace", "collapse"

	// itemRef / memberRefs are unresolved QName references from
	// itemType= / memberTypes=, linked during resolve.
	itemRef    string
	memberRefs []string

	base *SimpleType // resolved base (nil for builtins)
	src  *xmldom.Node
}

// ConstraintKind distinguishes identity constraints.
type ConstraintKind uint8

// Identity constraint kinds.
const (
	KeyConstraint ConstraintKind = iota + 1
	UniqueConstraint
	KeyrefConstraint
)

func (k ConstraintKind) String() string {
	switch k {
	case KeyConstraint:
		return "key"
	case UniqueConstraint:
		return "unique"
	case KeyrefConstraint:
		return "keyref"
	}
	return "?"
}

// IdentityConstraint is an xsd:key, xsd:unique or xsd:keyref declared on an
// element.
type IdentityConstraint struct {
	Kind     ConstraintKind
	Name     string
	Refer    string // for keyref: the referred key/unique name
	Selector *xpath.Compiled
	Fields   []*xpath.Compiled

	selectorSrc string
	fieldSrcs   []string
	src         *xmldom.Node
}

// SchemaError reports a problem in a schema document. File names the
// source document when the schema was assembled by a Loader, so errors
// in multi-file import/include graphs are attributable.
type SchemaError struct {
	File string
	Node *xmldom.Node
	Msg  string
}

func (e *SchemaError) Error() string {
	in := ""
	if e.File != "" {
		in = " in " + e.File
	}
	if e.Node != nil {
		return fmt.Sprintf("xsd: %s (at %s%s, line %d)", e.Msg, e.Node.Path(), in, e.Node.Line)
	}
	return "xsd: " + e.Msg + in
}

// Line returns the schema-document line the error points at (0 when
// unknown), for diagnostic positioning.
func (e *SchemaError) Line() int {
	if e.Node != nil {
		return e.Node.Line
	}
	return 0
}

// ValidationError reports one instance-document violation.
type ValidationError struct {
	Path string // instance path of the offending node
	Line int
	Msg  string

	// ord is the offending node's document-order stamp on frozen
	// documents (0 otherwise); the validator uses it to report identity-
	// constraint violations in document order deterministically.
	ord uint64
}

func (e ValidationError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("%s (line %d): %s", e.Path, e.Line, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Path, e.Msg)
}
