// Package xsd implements an XML Schema (W3C 2001) validator subset
// sufficient for the paper's multidimensional-model schema and schemas of
// similar shape: global and inline element declarations (both the
// "Russian doll" and flat schema styles of §3.1 of the paper), complex
// types with sequence/choice content models and occurrence bounds,
// attributes with required/optional/default/fixed, named simple types
// derived by restriction (enumeration, pattern, length and range facets),
// the common built-in types, ID/IDREF integrity, and key/keyref/unique
// identity constraints with XPath selectors and fields.
//
// It plays the role Apache Xerces played in the original system; the
// CheckSchema meta-validator mirrors the IBM XML Schema Quality Checker
// step the authors describe.
package xsd

import (
	"fmt"
	"regexp"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// Namespace is the XML Schema namespace URI.
const Namespace = "http://www.w3.org/2001/XMLSchema"

// Schema is a compiled schema ready to validate instance documents.
type Schema struct {
	// Elements holds the global element declarations by name.
	Elements map[string]*ElementDecl
	// SimpleTypes and ComplexTypes hold the named type definitions.
	SimpleTypes  map[string]*SimpleType
	ComplexTypes map[string]*ComplexType

	doc *xmldom.Node
}

// ElementDecl describes an element declaration.
type ElementDecl struct {
	Name                 string
	TypeName             string       // non-empty when the type is referenced by name
	Simple               *SimpleType  // inline or resolved simple type
	Complex              *ComplexType // inline or resolved complex type
	Default              string
	Fixed                string
	HasDefault, HasFixed bool
	Constraints          []*IdentityConstraint

	src *xmldom.Node
}

// ComplexType describes a complex type: a content particle plus
// attributes.
type ComplexType struct {
	Name       string
	Content    *Particle // nil means empty content
	Attributes []*AttributeDecl
	Mixed      bool

	src *xmldom.Node
}

// ParticleKind distinguishes content-model particles.
type ParticleKind uint8

// Particle kinds.
const (
	PSequence ParticleKind = iota + 1
	PChoice
	PAll
	PElement
)

// Unbounded is the MaxOccurs value for maxOccurs="unbounded".
const Unbounded = -1

// Particle is a node of a content model: a sequence, choice, all group or
// element particle, with occurrence bounds.
type Particle struct {
	Kind     ParticleKind
	Min, Max int // Max == Unbounded for unbounded
	Children []*Particle
	Elem     *ElementDecl

	src *xmldom.Node
}

// AttributeDecl describes an attribute declaration.
type AttributeDecl struct {
	Name                 string
	TypeName             string
	Type                 *SimpleType // resolved or inline
	Use                  string      // "optional" (default), "required", "prohibited"
	Default              string
	Fixed                string
	HasDefault, HasFixed bool

	src *xmldom.Node
}

// SimpleType describes a simple type: a built-in or a restriction of one.
type SimpleType struct {
	Name    string
	Base    string // name of the base type
	builtin builtinKind

	Enum         []string
	Patterns     []*regexp.Regexp
	patternSrcs  []string
	Length       *int
	MinLength    *int
	MaxLength    *int
	MinInclusive *float64
	MaxInclusive *float64
	MinExclusive *float64
	MaxExclusive *float64
	WhiteSpace   string // "", "preserve", "replace", "collapse"

	base *SimpleType // resolved base (nil for builtins)
	src  *xmldom.Node
}

// ConstraintKind distinguishes identity constraints.
type ConstraintKind uint8

// Identity constraint kinds.
const (
	KeyConstraint ConstraintKind = iota + 1
	UniqueConstraint
	KeyrefConstraint
)

func (k ConstraintKind) String() string {
	switch k {
	case KeyConstraint:
		return "key"
	case UniqueConstraint:
		return "unique"
	case KeyrefConstraint:
		return "keyref"
	}
	return "?"
}

// IdentityConstraint is an xsd:key, xsd:unique or xsd:keyref declared on an
// element.
type IdentityConstraint struct {
	Kind     ConstraintKind
	Name     string
	Refer    string // for keyref: the referred key/unique name
	Selector *xpath.Compiled
	Fields   []*xpath.Compiled

	selectorSrc string
	fieldSrcs   []string
	src         *xmldom.Node
}

// SchemaError reports a problem in a schema document.
type SchemaError struct {
	Node *xmldom.Node
	Msg  string
}

func (e *SchemaError) Error() string {
	if e.Node != nil {
		return fmt.Sprintf("xsd: %s (at %s, line %d)", e.Msg, e.Node.Path(), e.Node.Line)
	}
	return "xsd: " + e.Msg
}

// ValidationError reports one instance-document violation.
type ValidationError struct {
	Path string // instance path of the offending node
	Line int
	Msg  string

	// ord is the offending node's document-order stamp on frozen
	// documents (0 otherwise); the validator uses it to report identity-
	// constraint violations in document order deterministically.
	ord uint64
}

func (e ValidationError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("%s (line %d): %s", e.Path, e.Line, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Path, e.Msg)
}
