package xsd

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// TestOccurrenceBoundsProperty: for random (min, extra, n), a document
// with n children is accepted exactly when min ≤ n ≤ min+extra.
func TestOccurrenceBoundsProperty(t *testing.T) {
	f := func(minRaw, extraRaw, nRaw uint8) bool {
		min := int(minRaw % 5)
		max := min + int(extraRaw%5)
		n := int(nRaw % 12)
		schema := fmt.Sprintf(`<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
			<xsd:element name="e"><xsd:complexType><xsd:sequence>
				<xsd:element name="x" minOccurs="%d" maxOccurs="%d"/>
			</xsd:sequence></xsd:complexType></xsd:element></xsd:schema>`, min, max)
		s, err := ParseSchemaString(schema)
		if err != nil {
			return false
		}
		doc := "<e>" + strings.Repeat("<x/>", n) + "</e>"
		errs := s.ValidateString(doc, ValidateOptions{})
		valid := len(errs) == 0
		want := n >= min && n <= max
		return valid == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestUnboundedOccurrenceProperty: maxOccurs="unbounded" accepts any
// count at or above min.
func TestUnboundedOccurrenceProperty(t *testing.T) {
	f := func(minRaw, nRaw uint8) bool {
		min := int(minRaw % 4)
		n := int(nRaw % 30)
		schema := fmt.Sprintf(`<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
			<xsd:element name="e"><xsd:complexType><xsd:sequence>
				<xsd:element name="x" minOccurs="%d" maxOccurs="unbounded"/>
			</xsd:sequence></xsd:complexType></xsd:element></xsd:schema>`, min)
		s, err := ParseSchemaString(schema)
		if err != nil {
			return false
		}
		doc := "<e>" + strings.Repeat("<x/>", n) + "</e>"
		valid := len(s.ValidateString(doc, ValidateOptions{})) == 0
		return valid == (n >= min)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestEnumerationProperty: a value passes an enumeration facet exactly
// when it is one of the enumerated tokens.
func TestEnumerationProperty(t *testing.T) {
	enum := []string{"alpha", "beta", "gamma", "delta"}
	var b strings.Builder
	for _, e := range enum {
		fmt.Fprintf(&b, `<xsd:enumeration value="%s"/>`, e)
	}
	schema := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
		<xsd:simpleType name="T"><xsd:restriction base="xsd:string">` + b.String() +
		`</xsd:restriction></xsd:simpleType>
		<xsd:element name="e"><xsd:complexType><xsd:attribute name="v" type="T" use="required"/></xsd:complexType></xsd:element>
	</xsd:schema>`
	s, err := ParseSchemaString(schema)
	if err != nil {
		t.Fatal(err)
	}
	inSet := map[string]bool{}
	for _, e := range enum {
		inSet[e] = true
	}
	f := func(pick uint8, junk string) bool {
		var v string
		if int(pick)%2 == 0 {
			v = enum[int(pick/2)%len(enum)]
		} else {
			v = strings.Map(func(r rune) rune {
				if r == '<' || r == '&' || r == '"' {
					return 'x'
				}
				return r
			}, junk)
		}
		doc := fmt.Sprintf(`<e v="%s"/>`, v)
		valid := len(s.ValidateString(doc, ValidateOptions{})) == 0
		return valid == inSet[v]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRangeFacetProperty: integer range facets accept exactly the values
// in [lo, hi].
func TestRangeFacetProperty(t *testing.T) {
	const lo, hi = -10, 25
	schema := fmt.Sprintf(`<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
		<xsd:simpleType name="R"><xsd:restriction base="xsd:integer">
			<xsd:minInclusive value="%d"/><xsd:maxInclusive value="%d"/>
		</xsd:restriction></xsd:simpleType>
		<xsd:element name="e" type="R"/></xsd:schema>`, lo, hi)
	s, err := ParseSchemaString(schema)
	if err != nil {
		t.Fatal(err)
	}
	f := func(v int8) bool {
		doc := fmt.Sprintf("<e>%d</e>", v)
		valid := len(s.ValidateString(doc, ValidateOptions{})) == 0
		return valid == (int(v) >= lo && int(v) <= hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

// TestChoiceRepetitionProperty: (a|b)* accepts every interleaving of a
// and b but nothing containing c.
func TestChoiceRepetitionProperty(t *testing.T) {
	schema := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
		<xsd:element name="e"><xsd:complexType>
			<xsd:choice minOccurs="0" maxOccurs="unbounded">
				<xsd:element name="a"/><xsd:element name="b"/>
			</xsd:choice>
		</xsd:complexType></xsd:element></xsd:schema>`
	s, err := ParseSchemaString(schema)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pattern uint16, poison bool) bool {
		var b strings.Builder
		b.WriteString("<e>")
		n := int(pattern % 10)
		for i := 0; i < n; i++ {
			if pattern&(1<<i) != 0 {
				b.WriteString("<a/>")
			} else {
				b.WriteString("<b/>")
			}
		}
		if poison {
			b.WriteString("<c/>")
		}
		b.WriteString("</e>")
		valid := len(s.ValidateString(b.String(), ValidateOptions{})) == 0
		return valid == !poison
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestGeneratedGoldModelsAlwaysValidate is the workhorse invariant: every
// structurally well-formed model document (produced by the generator
// sweep) passes the canonical schema, for a grid of sizes.
func TestCanonicalSchemaIdempotentParsing(t *testing.T) {
	// Parsing the schema twice yields structurally equal views (same
	// global names, same type tables).
	s1 := mustSchema(t)
	s2 := mustSchema(t)
	if len(s1.Elements) != len(s2.Elements) ||
		len(s1.SimpleTypes) != len(s2.SimpleTypes) ||
		len(s1.ComplexTypes) != len(s2.ComplexTypes) {
		t.Error("schema parsing not deterministic")
	}
}
