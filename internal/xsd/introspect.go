package xsd

// Read-only accessors used by internal/analysis to reason about the
// schema without reaching into unexported validator state.

// IsID reports whether values of the type are DTD-style IDs (the type
// restricts xsd:ID).
func (st *SimpleType) IsID() bool {
	return st != nil && st.rootKind() == btID
}

// IsIDRef reports whether values of the type reference IDs (the type
// restricts xsd:IDREF or xsd:IDREFS).
func (st *SimpleType) IsIDRef() bool {
	if st == nil {
		return false
	}
	k := st.rootKind()
	return k == btIDREF || k == btIDREFS
}

// SelectorSource returns the XPath text of the constraint's selector.
func (ic *IdentityConstraint) SelectorSource() string { return ic.selectorSrc }

// FieldSources returns the XPath texts of the constraint's fields.
func (ic *IdentityConstraint) FieldSources() []string {
	return append([]string(nil), ic.fieldSrcs...)
}
