package xsd

// Read-only accessors used by internal/analysis to reason about the
// schema without reaching into unexported validator state.

// IsID reports whether values of the type are DTD-style IDs (the type
// restricts xsd:ID).
func (st *SimpleType) IsID() bool {
	return st != nil && st.rootKind() == btID
}

// IsIDRef reports whether values of the type reference IDs (the type
// restricts xsd:IDREF or xsd:IDREFS).
func (st *SimpleType) IsIDRef() bool {
	if st == nil {
		return false
	}
	k := st.rootKind()
	return k == btIDREF || k == btIDREFS
}

// IsList reports whether the type's derivation chain is a list variety.
func (st *SimpleType) IsList() bool { return st != nil && st.isList() }

// IsUnion reports whether the type's derivation chain is a union variety.
func (st *SimpleType) IsUnion() bool { return st != nil && st.hasMembers() }

// SubstitutionMembers returns the transitive substitution-group members
// of the named head element, sorted by name (nil when the name heads no
// group). Abstract members are included; they organize the hierarchy but
// cannot appear in instances.
func (s *Schema) SubstitutionMembers(head string) []*ElementDecl {
	members := s.substMembers[head]
	if len(members) == 0 {
		return nil
	}
	return append([]*ElementDecl(nil), members...)
}

// SelectorSource returns the XPath text of the constraint's selector.
func (ic *IdentityConstraint) SelectorSource() string { return ic.selectorSrc }

// FieldSources returns the XPath texts of the constraint's fields.
func (ic *IdentityConstraint) FieldSources() []string {
	return append([]string(nil), ic.fieldSrcs...)
}
