package xsd

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// newSchema allocates an empty schema ready to accumulate documents.
func newSchema() *Schema {
	return &Schema{
		Elements:     map[string]*ElementDecl{},
		SimpleTypes:  map[string]*SimpleType{},
		ComplexTypes: map[string]*ComplexType{},
		substMembers: map[string][]*ElementDecl{},
		declFile:     map[string]string{},
		fileByDoc:    map[*xmldom.Node]string{},
	}
}

// ParseSchema compiles a single schema document into a Schema. Any
// xs:import/xs:include directives are ignored (there is no resolver to
// fetch them); use a Loader to compile multi-file schema graphs.
func ParseSchema(doc *xmldom.Node) (*Schema, error) {
	s := newSchema()
	if err := s.parseInto(doc, "", nil); err != nil {
		return nil, err
	}
	if err := s.resolve(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseInto accumulates one schema document's global declarations into
// the schema. file is the document's location ("" for in-memory parses)
// and is attached to every error for provenance; refs receives the
// import/include directives found (nil means ignore them).
func (s *Schema) parseInto(doc *xmldom.Node, file string, refs *[]*xmldom.Node) error {
	root := doc.DocumentElement()
	if root == nil || root.URI != Namespace || root.Name != "schema" {
		return &SchemaError{File: file, Node: root, Msg: "root element must be xsd:schema"}
	}
	s.fileByDoc[root.Root()] = file
	if s.doc == nil {
		s.doc = doc
	}
	p := &schemaParser{s: s, file: file}
	for _, c := range root.Elements() {
		if c.URI != Namespace {
			continue
		}
		switch c.Name {
		case "element":
			decl, err := p.parseElementDecl(c, true)
			if err != nil {
				return err
			}
			if prev, dup := s.Elements[decl.Name]; dup {
				return p.dupErr(c, "element", decl.Name, prev.src)
			}
			s.Elements[decl.Name] = decl
			s.declFile["element "+decl.Name] = file
		case "simpleType":
			st, err := p.parseSimpleType(c)
			if err != nil {
				return err
			}
			if st.Name == "" {
				return p.errf(c, "global simpleType requires a name")
			}
			if prev, dup := s.SimpleTypes[st.Name]; dup {
				return p.dupErr(c, "simpleType", st.Name, prev.src)
			}
			s.SimpleTypes[st.Name] = st
			s.declFile["simpleType "+st.Name] = file
		case "complexType":
			ct, err := p.parseComplexType(c)
			if err != nil {
				return err
			}
			if ct.Name == "" {
				return p.errf(c, "global complexType requires a name")
			}
			if prev, dup := s.ComplexTypes[ct.Name]; dup {
				return p.dupErr(c, "complexType", ct.Name, prev.src)
			}
			s.ComplexTypes[ct.Name] = ct
			s.declFile["complexType "+ct.Name] = file
		case "import", "include":
			if refs != nil {
				*refs = append(*refs, c)
			}
			// Without a collector (single-document parse) the directive
			// is ignored, preserving the embedded-schema behavior.
		case "annotation":
			// ignored
		case "attribute", "attributeGroup", "group", "notation", "redefine":
			return p.errf(c, "global xsd:%s is not supported", c.Name)
		default:
			return p.errf(c, "unknown schema construct xsd:%s", c.Name)
		}
	}
	return nil
}

// dupErr reports a conflicting global redefinition, naming the file of
// the first declaration when the conflict spans documents.
func (p *schemaParser) dupErr(at *xmldom.Node, kind, name string, prev *xmldom.Node) error {
	msg := "duplicate global " + kind + " " + name
	if prev != nil {
		if prevFile, ok := p.s.fileByDoc[prev.Root()]; ok && prevFile != p.file && prevFile != "" {
			msg += " (already declared in " + prevFile + ")"
		}
	}
	return p.errf(at, "%s", msg)
}

// ParseSchemaString parses the schema from XML text.
func ParseSchemaString(src string) (*Schema, error) {
	doc, err := xmldom.ParseString(src)
	if err != nil {
		return nil, err
	}
	return ParseSchema(doc)
}

// MustParseSchemaString is for embedded, known-good schemas.
func MustParseSchemaString(src string) *Schema {
	s, err := ParseSchemaString(src)
	if err != nil {
		panic(err)
	}
	return s
}

type schemaParser struct {
	s    *Schema
	file string
}

// errf builds a SchemaError carrying the parser's source file.
func (p *schemaParser) errf(n *xmldom.Node, format string, args ...interface{}) error {
	return &SchemaError{File: p.file, Node: n, Msg: fmt.Sprintf(format, args...)}
}

// schemaElements returns the xsd-namespace element children, skipping
// annotations.
func schemaElements(n *xmldom.Node) []*xmldom.Node {
	var out []*xmldom.Node
	for _, c := range n.Elements() {
		if c.URI == Namespace && c.Name != "annotation" {
			out = append(out, c)
		}
	}
	return out
}

func (p *schemaParser) parseElementDecl(e *xmldom.Node, global bool) (*ElementDecl, error) {
	decl := &ElementDecl{src: e}
	decl.Name = e.AttrValue("name")
	if ref := e.AttrValue("ref"); ref != "" {
		return nil, p.errf(e, "element ref is only allowed inside a content group")
	}
	if decl.Name == "" {
		return nil, p.errf(e, "element requires a name")
	}
	if sg := e.AttrValue("substitutionGroup"); sg != "" {
		if !global {
			return nil, p.errf(e, "substitutionGroup is only allowed on global element declarations")
		}
		decl.SubstitutionGroup = stripPrefix(sg)
	}
	switch ab := e.AttrValue("abstract"); ab {
	case "", "false":
	case "true":
		decl.Abstract = true
	default:
		return nil, p.errf(e, "bad abstract value %q", ab)
	}
	decl.TypeName = e.AttrValue("type")
	if v := e.GetAttr("default"); v != nil {
		decl.Default, decl.HasDefault = v.Data, true
	}
	if v := e.GetAttr("fixed"); v != nil {
		decl.Fixed, decl.HasFixed = v.Data, true
	}
	for _, c := range schemaElements(e) {
		switch c.Name {
		case "complexType":
			if decl.TypeName != "" || decl.Complex != nil || decl.Simple != nil {
				return nil, p.errf(c, "element %s has multiple type definitions", decl.Name)
			}
			ct, err := p.parseComplexType(c)
			if err != nil {
				return nil, err
			}
			decl.Complex = ct
		case "simpleType":
			if decl.TypeName != "" || decl.Complex != nil || decl.Simple != nil {
				return nil, p.errf(c, "element %s has multiple type definitions", decl.Name)
			}
			st, err := p.parseSimpleType(c)
			if err != nil {
				return nil, err
			}
			decl.Simple = st
		case "key", "keyref", "unique":
			ic, err := p.parseConstraint(c)
			if err != nil {
				return nil, err
			}
			decl.Constraints = append(decl.Constraints, ic)
		default:
			return nil, p.errf(c, "unexpected xsd:%s inside element %s", c.Name, decl.Name)
		}
	}
	if decl.TypeName == "" && decl.Complex == nil && decl.Simple == nil {
		// Untyped elements accept any simple content (anySimpleType).
		decl.Simple = builtinType("anySimpleType")
	}
	return decl, nil
}

func (p *schemaParser) parseComplexType(e *xmldom.Node) (*ComplexType, error) {
	ct := &ComplexType{Name: e.AttrValue("name"), Mixed: e.AttrValue("mixed") == "true", src: e}
	for _, c := range schemaElements(e) {
		switch c.Name {
		case "sequence", "choice", "all":
			if ct.Content != nil {
				return nil, p.errf(c, "complexType has multiple content groups")
			}
			part, err := p.parseGroup(c)
			if err != nil {
				return nil, err
			}
			ct.Content = part
		case "attribute":
			ad, err := p.parseAttributeDecl(c)
			if err != nil {
				return nil, err
			}
			for _, prev := range ct.Attributes {
				if prev.Name == ad.Name {
					return nil, p.errf(c, "duplicate attribute %s", ad.Name)
				}
			}
			ct.Attributes = append(ct.Attributes, ad)
		case "anyAttribute":
			if ct.AnyAttr != nil {
				return nil, p.errf(c, "complexType has multiple anyAttribute wildcards")
			}
			w, err := p.parseWildcard(c)
			if err != nil {
				return nil, err
			}
			ct.AnyAttr = w
		case "simpleContent", "complexContent", "group", "attributeGroup":
			return nil, p.errf(c, "xsd:%s is not supported", c.Name)
		default:
			return nil, p.errf(c, "unexpected xsd:%s in complexType", c.Name)
		}
	}
	return ct, nil
}

// parseWildcard reads the namespace constraint and processContents mode
// of an xs:any or xs:anyAttribute declaration.
func (p *schemaParser) parseWildcard(e *xmldom.Node) (*Wildcard, error) {
	w := &Wildcard{NS: e.AttrValue("namespace"), Process: e.AttrValue("processContents"), src: e}
	if w.NS == "" {
		w.NS = "##any"
	}
	switch w.Process {
	case "":
		w.Process = "strict"
	case "strict", "lax", "skip":
	default:
		return nil, p.errf(e, "bad processContents %q (want strict, lax or skip)", w.Process)
	}
	if len(schemaElements(e)) > 0 {
		return nil, p.errf(e, "xsd:%s cannot have element content", e.Name)
	}
	return w, nil
}

func (p *schemaParser) parseGroup(e *xmldom.Node) (*Particle, error) {
	part := &Particle{src: e}
	switch e.Name {
	case "sequence":
		part.Kind = PSequence
	case "choice":
		part.Kind = PChoice
	case "all":
		part.Kind = PAll
	}
	var err error
	part.Min, part.Max, err = p.parseOccurs(e)
	if err != nil {
		return nil, err
	}
	if part.Kind == PAll && (part.Min > 1 || part.Max != 1) {
		return nil, p.errf(e, "xsd:all cannot repeat")
	}
	for _, c := range schemaElements(e) {
		switch c.Name {
		case "element":
			child := &Particle{Kind: PElement, src: c}
			child.Min, child.Max, err = p.parseOccurs(c)
			if err != nil {
				return nil, err
			}
			if ref := c.AttrValue("ref"); ref != "" {
				if c.AttrValue("name") != "" {
					return nil, p.errf(c, "element cannot have both ref and name")
				}
				if len(schemaElements(c)) > 0 {
					return nil, p.errf(c, "element ref cannot carry local definitions")
				}
				child.Ref = stripPrefix(ref)
			} else {
				decl, err := p.parseElementDecl(c, false)
				if err != nil {
					return nil, err
				}
				child.Elem = decl
			}
			part.Children = append(part.Children, child)
		case "sequence", "choice", "all":
			if part.Kind == PAll {
				return nil, p.errf(c, "xsd:all may only contain elements")
			}
			child, err := p.parseGroup(c)
			if err != nil {
				return nil, err
			}
			part.Children = append(part.Children, child)
		case "any":
			if part.Kind == PAll {
				return nil, p.errf(c, "xsd:all may only contain elements")
			}
			child := &Particle{Kind: PAny, src: c}
			child.Min, child.Max, err = p.parseOccurs(c)
			if err != nil {
				return nil, err
			}
			child.Wildcard, err = p.parseWildcard(c)
			if err != nil {
				return nil, err
			}
			part.Children = append(part.Children, child)
		default:
			return nil, p.errf(c, "unexpected xsd:%s in content group", c.Name)
		}
	}
	return part, nil
}

func (p *schemaParser) parseOccurs(e *xmldom.Node) (int, int, error) {
	min, max := 1, 1
	if v := e.AttrValue("minOccurs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return 0, 0, p.errf(e, "bad minOccurs %s", v)
		}
		min = n
	}
	if v := e.AttrValue("maxOccurs"); v != "" {
		if v == "unbounded" {
			max = Unbounded
		} else {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return 0, 0, p.errf(e, "bad maxOccurs %s", v)
			}
			max = n
		}
	}
	if max != Unbounded && min > max {
		return 0, 0, p.errf(e, "minOccurs %d exceeds maxOccurs %d", min, max)
	}
	return min, max, nil
}

func (p *schemaParser) parseAttributeDecl(e *xmldom.Node) (*AttributeDecl, error) {
	ad := &AttributeDecl{Name: e.AttrValue("name"), TypeName: e.AttrValue("type"),
		Use: e.AttrValue("use"), src: e}
	if ad.Name == "" {
		return nil, p.errf(e, "attribute requires a name")
	}
	switch ad.Use {
	case "", "optional", "required", "prohibited":
	default:
		return nil, p.errf(e, "bad attribute use %s", ad.Use)
	}
	if v := e.GetAttr("default"); v != nil {
		ad.Default, ad.HasDefault = v.Data, true
	}
	if v := e.GetAttr("fixed"); v != nil {
		ad.Fixed, ad.HasFixed = v.Data, true
	}
	if ad.HasDefault && ad.HasFixed {
		return nil, p.errf(e, "attribute %s cannot have both default and fixed", ad.Name)
	}
	if ad.HasDefault && ad.Use == "required" {
		return nil, p.errf(e, "required attribute %s cannot have a default", ad.Name)
	}
	for _, c := range schemaElements(e) {
		if c.Name != "simpleType" {
			return nil, p.errf(c, "unexpected xsd:%s in attribute", c.Name)
		}
		st, err := p.parseSimpleType(c)
		if err != nil {
			return nil, err
		}
		ad.Type = st
	}
	if ad.TypeName == "" && ad.Type == nil {
		ad.Type = builtinType("anySimpleType")
	}
	return ad, nil
}

func (p *schemaParser) parseSimpleType(e *xmldom.Node) (*SimpleType, error) {
	st := &SimpleType{Name: e.AttrValue("name"), src: e}
	kids := schemaElements(e)
	if len(kids) != 1 {
		return nil, p.errf(e, "simpleType must contain exactly one xsd:restriction, xsd:list or xsd:union")
	}
	switch kids[0].Name {
	case "restriction":
		return p.parseRestriction(st, kids[0])
	case "list":
		return p.parseList(st, kids[0])
	case "union":
		return p.parseUnion(st, kids[0])
	}
	return nil, p.errf(kids[0], "simpleType must contain exactly one xsd:restriction, xsd:list or xsd:union")
}

func (p *schemaParser) parseList(st *SimpleType, l *xmldom.Node) (*SimpleType, error) {
	st.itemRef = l.AttrValue("itemType")
	inline := schemaElements(l)
	switch {
	case st.itemRef != "" && len(inline) > 0:
		return nil, p.errf(l, "list cannot have both itemType and an inline simpleType")
	case st.itemRef == "":
		if len(inline) != 1 || inline[0].Name != "simpleType" {
			return nil, p.errf(l, "list requires itemType or exactly one inline simpleType")
		}
		item, err := p.parseSimpleType(inline[0])
		if err != nil {
			return nil, err
		}
		st.Item = item
	}
	return st, nil
}

func (p *schemaParser) parseUnion(st *SimpleType, u *xmldom.Node) (*SimpleType, error) {
	st.memberRefs = append(st.memberRefs, strings.Fields(u.AttrValue("memberTypes"))...)
	for _, c := range schemaElements(u) {
		if c.Name != "simpleType" {
			return nil, p.errf(c, "unexpected xsd:%s in union", c.Name)
		}
		m, err := p.parseSimpleType(c)
		if err != nil {
			return nil, err
		}
		st.Members = append(st.Members, m)
	}
	if len(st.memberRefs)+len(st.Members) == 0 {
		return nil, p.errf(u, "union requires memberTypes or at least one inline simpleType")
	}
	return st, nil
}

func (p *schemaParser) parseRestriction(st *SimpleType, r *xmldom.Node) (*SimpleType, error) {
	st.Base = r.AttrValue("base")
	if st.Base == "" {
		return nil, p.errf(r, "restriction requires a base")
	}
	intFacet := func(c *xmldom.Node) (*int, error) {
		n, err := strconv.Atoi(c.AttrValue("value"))
		if err != nil || n < 0 {
			return nil, p.errf(c, "bad facet value %s", c.AttrValue("value"))
		}
		return &n, nil
	}
	numFacet := func(c *xmldom.Node) (*float64, error) {
		f, err := strconv.ParseFloat(c.AttrValue("value"), 64)
		if err != nil {
			return nil, p.errf(c, "bad facet value %s", c.AttrValue("value"))
		}
		return &f, nil
	}
	for _, c := range schemaElements(r) {
		var err error
		switch c.Name {
		case "enumeration":
			st.Enum = append(st.Enum, c.AttrValue("value"))
		case "pattern":
			src := c.AttrValue("value")
			re, rerr := compileXSDPattern(src)
			if rerr != nil {
				return nil, p.errf(c, "bad pattern %s: %s", src, rerr.Error())
			}
			st.Patterns = append(st.Patterns, re)
			st.patternSrcs = append(st.patternSrcs, src)
		case "length":
			st.Length, err = intFacet(c)
		case "minLength":
			st.MinLength, err = intFacet(c)
		case "maxLength":
			st.MaxLength, err = intFacet(c)
		case "totalDigits":
			st.TotalDigits, err = intFacet(c)
			if err == nil && *st.TotalDigits == 0 {
				return nil, p.errf(c, "totalDigits must be positive")
			}
		case "fractionDigits":
			st.FractionDigits, err = intFacet(c)
		case "minInclusive":
			st.MinInclusive, err = numFacet(c)
		case "maxInclusive":
			st.MaxInclusive, err = numFacet(c)
		case "minExclusive":
			st.MinExclusive, err = numFacet(c)
		case "maxExclusive":
			st.MaxExclusive, err = numFacet(c)
		case "whiteSpace":
			ws := c.AttrValue("value")
			switch ws {
			case "preserve", "replace", "collapse":
				st.WhiteSpace = ws
			default:
				return nil, p.errf(c, "bad whiteSpace value %s", ws)
			}
		default:
			return nil, p.errf(c, "unknown facet xsd:%s", c.Name)
		}
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// compileXSDPattern translates an XSD regular expression into a Go regexp.
// XSD patterns are implicitly anchored; the common subset (character
// classes, quantifiers, alternation) is shared syntax.
func compileXSDPattern(src string) (*regexp.Regexp, error) {
	// \i, \c (name characters) are XSD-specific; approximate them.
	rep := strings.NewReplacer(
		`\i`, `[A-Za-z_:]`,
		`\c`, `[-A-Za-z0-9_:.·]`,
	)
	return regexp.Compile(`\A(?:` + rep.Replace(src) + `)\z`)
}

func (p *schemaParser) parseConstraint(e *xmldom.Node) (*IdentityConstraint, error) {
	ic := &IdentityConstraint{Name: e.AttrValue("name"), src: e}
	switch e.Name {
	case "key":
		ic.Kind = KeyConstraint
	case "unique":
		ic.Kind = UniqueConstraint
	case "keyref":
		ic.Kind = KeyrefConstraint
		ic.Refer = e.AttrValue("refer")
		if ic.Refer == "" {
			return nil, p.errf(e, "keyref requires refer")
		}
		// refer is a QName; constraints live in no namespace here.
		if i := strings.IndexByte(ic.Refer, ':'); i >= 0 {
			ic.Refer = ic.Refer[i+1:]
		}
	}
	if ic.Name == "" {
		return nil, p.errf(e, "identity constraint requires a name")
	}
	for _, c := range schemaElements(e) {
		switch c.Name {
		case "selector":
			src := c.AttrValue("xpath")
			expr, err := xpath.Compile(src)
			if err != nil {
				return nil, p.errf(c, "bad selector xpath: %s", err.Error())
			}
			ic.Selector = expr
			ic.selectorSrc = src
		case "field":
			src := c.AttrValue("xpath")
			expr, err := xpath.Compile(src)
			if err != nil {
				return nil, p.errf(c, "bad field xpath: %s", err.Error())
			}
			ic.Fields = append(ic.Fields, expr)
			ic.fieldSrcs = append(ic.fieldSrcs, src)
		default:
			return nil, p.errf(c, "unexpected xsd:%s in %s", c.Name, e.Name)
		}
	}
	if ic.Selector == nil || len(ic.Fields) == 0 {
		return nil, p.errf(e, "%s %s requires a selector and at least one field", ic.Kind.String(), ic.Name)
	}
	return ic, nil
}

// ---- reference resolution ----

// nsForPrefix resolves a namespace prefix using the xmlns declarations in
// scope at the given schema node.
func nsForPrefix(n *xmldom.Node, prefix string) (string, bool) {
	if prefix == "xml" {
		return xmldom.XMLNamespace, true
	}
	for cur := n; cur != nil; cur = cur.Parent {
		for _, a := range cur.Attr {
			if a.URI != xmldom.XMLNSNamespace {
				continue
			}
			if prefix == "" && a.Prefix == "" && a.Name == "xmlns" {
				return a.Data, true
			}
			if a.Prefix == "xmlns" && a.Name == prefix {
				return a.Data, true
			}
		}
	}
	return "", prefix == ""
}

// fileOf reports the source file of a schema node (multi-file loads).
func (s *Schema) fileOf(n *xmldom.Node) string {
	if n == nil {
		return ""
	}
	return s.fileByDoc[n.Root()]
}

// serr builds a SchemaError with the file provenance of the node.
func (s *Schema) serr(n *xmldom.Node, format string, args ...interface{}) error {
	return &SchemaError{File: s.fileOf(n), Node: n, Msg: fmt.Sprintf(format, args...)}
}

// lookupSimple resolves a type QName to a simple type (builtin or named).
func (s *Schema) lookupSimple(ref string, at *xmldom.Node) (*SimpleType, error) {
	prefix, local := "", ref
	if i := strings.IndexByte(ref, ':'); i >= 0 {
		prefix, local = ref[:i], ref[i+1:]
	}
	uri, ok := nsForPrefix(at, prefix)
	if !ok {
		return nil, s.serr(at, "undeclared prefix in type reference %s", ref)
	}
	if uri == Namespace {
		if bt := builtinType(local); bt != nil {
			return bt, nil
		}
		return nil, s.serr(at, "unsupported built-in type xsd:%s", local)
	}
	if st, ok := s.SimpleTypes[local]; ok {
		return st, nil
	}
	return nil, nil
}

// resolve links named type references, base-type chains, element refs
// and substitution groups.
func (s *Schema) resolve() error {
	// Resolve simple-type bases, list items and union members first
	// (with cycle detection).
	state := map[*SimpleType]int{} // 0 unseen, 1 visiting, 2 done
	var resolveST func(st *SimpleType) error
	resolveST = func(st *SimpleType) error {
		if st.builtin != btNone || state[st] == 2 {
			return nil
		}
		if state[st] == 1 {
			return s.serr(st.src, "circular simpleType derivation at %s", st.Name)
		}
		state[st] = 1
		if st.Base != "" {
			base, err := s.lookupSimple(st.Base, st.src)
			if err != nil {
				return err
			}
			if base == nil {
				return s.serr(st.src, "unknown base type %s", st.Base)
			}
			if err := resolveST(base); err != nil {
				return err
			}
			st.base = base
		}
		if st.itemRef != "" {
			item, err := s.lookupSimple(st.itemRef, st.src)
			if err != nil {
				return err
			}
			if item == nil {
				return s.serr(st.src, "unknown list item type %s", st.itemRef)
			}
			st.Item = item
		}
		if st.Item != nil {
			if err := resolveST(st.Item); err != nil {
				return err
			}
		}
		if len(st.memberRefs) > 0 {
			// memberTypes references come before inline members.
			resolved := make([]*SimpleType, 0, len(st.memberRefs)+len(st.Members))
			for _, ref := range st.memberRefs {
				m, err := s.lookupSimple(ref, st.src)
				if err != nil {
					return err
				}
				if m == nil {
					return s.serr(st.src, "unknown union member type %s", ref)
				}
				resolved = append(resolved, m)
			}
			st.Members = append(resolved, st.Members...)
			st.memberRefs = nil
		}
		for _, m := range st.Members {
			if err := resolveST(m); err != nil {
				return err
			}
		}
		state[st] = 2
		return nil
	}
	for _, st := range s.SimpleTypes {
		if err := resolveST(st); err != nil {
			return err
		}
	}
	var resolveCT func(ct *ComplexType) error
	var resolveDecl func(d *ElementDecl) error
	var resolvePart func(p *Particle) error
	resolveDecl = func(d *ElementDecl) error {
		if d.TypeName != "" && d.Simple == nil && d.Complex == nil {
			st, err := s.lookupSimple(d.TypeName, d.src)
			if err != nil {
				return err
			}
			if st != nil {
				if err := resolveST(st); err != nil {
					return err
				}
				d.Simple = st
			} else if ct, ok := s.ComplexTypes[stripPrefix(d.TypeName)]; ok {
				d.Complex = ct
			} else {
				return s.serr(d.src, "unknown type %s for element %s", d.TypeName, d.Name)
			}
		}
		if d.Simple != nil {
			if err := resolveST(d.Simple); err != nil {
				return err
			}
		}
		if d.Complex != nil {
			return resolveCT(d.Complex)
		}
		return nil
	}
	resolvePart = func(p *Particle) error {
		if p == nil {
			return nil
		}
		switch p.Kind {
		case PElement:
			if p.Ref != "" {
				decl, ok := s.Elements[p.Ref]
				if !ok {
					return s.serr(p.src, "element ref %s does not match any global element", p.Ref)
				}
				p.Elem = decl
				return nil // the global loop resolves the declaration
			}
			return resolveDecl(p.Elem)
		case PAny:
			return nil
		}
		for _, c := range p.Children {
			if err := resolvePart(c); err != nil {
				return err
			}
		}
		return nil
	}
	resolvedCT := map[*ComplexType]bool{}
	resolveCT = func(ct *ComplexType) error {
		if resolvedCT[ct] {
			return nil
		}
		resolvedCT[ct] = true
		for _, ad := range ct.Attributes {
			if ad.TypeName != "" {
				st, err := s.lookupSimple(ad.TypeName, ad.src)
				if err != nil {
					return err
				}
				if st == nil {
					return s.serr(ad.src, "unknown attribute type %s", ad.TypeName)
				}
				if err := resolveST(st); err != nil {
					return err
				}
				ad.Type = st
			} else if ad.Type != nil {
				if err := resolveST(ad.Type); err != nil {
					return err
				}
			}
		}
		return resolvePart(ct.Content)
	}
	for _, ct := range s.ComplexTypes {
		if err := resolveCT(ct); err != nil {
			return err
		}
	}
	for _, d := range s.Elements {
		if err := resolveDecl(d); err != nil {
			return err
		}
	}
	return s.resolveSubstitutions()
}

// resolveSubstitutions links substitutionGroup members to their heads
// and precomputes the transitive member closure per head.
func (s *Schema) resolveSubstitutions() error {
	direct := map[string][]*ElementDecl{}
	names := make([]string, 0, len(s.Elements))
	for name := range s.Elements {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := s.Elements[name]
		if d.SubstitutionGroup == "" {
			continue
		}
		if _, ok := s.Elements[d.SubstitutionGroup]; !ok {
			return s.serr(d.src, "substitutionGroup head %s is not a global element", d.SubstitutionGroup)
		}
		direct[d.SubstitutionGroup] = append(direct[d.SubstitutionGroup], d)
	}
	for _, name := range names {
		if len(direct[name]) == 0 {
			continue
		}
		var members []*ElementDecl
		seen := map[string]bool{name: true}
		queue := append([]*ElementDecl(nil), direct[name]...)
		for len(queue) > 0 {
			m := queue[0]
			queue = queue[1:]
			if seen[m.Name] {
				continue
			}
			seen[m.Name] = true
			members = append(members, m)
			queue = append(queue, direct[m.Name]...)
		}
		sort.Slice(members, func(i, j int) bool { return members[i].Name < members[j].Name })
		s.substMembers[name] = members
	}
	return nil
}

func stripPrefix(ref string) string {
	if i := strings.IndexByte(ref, ':'); i >= 0 {
		return ref[i+1:]
	}
	return ref
}
