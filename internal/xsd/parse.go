package xsd

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// ParseSchema compiles a schema document into a Schema.
func ParseSchema(doc *xmldom.Node) (*Schema, error) {
	root := doc.DocumentElement()
	if root == nil || root.URI != Namespace || root.Name != "schema" {
		return nil, &SchemaError{Node: root, Msg: "root element must be xsd:schema"}
	}
	s := &Schema{
		Elements:     map[string]*ElementDecl{},
		SimpleTypes:  map[string]*SimpleType{},
		ComplexTypes: map[string]*ComplexType{},
		doc:          doc,
	}
	p := &schemaParser{s: s}
	for _, c := range root.Elements() {
		if c.URI != Namespace {
			continue
		}
		switch c.Name {
		case "element":
			decl, err := p.parseElementDecl(c)
			if err != nil {
				return nil, err
			}
			if _, dup := s.Elements[decl.Name]; dup {
				return nil, &SchemaError{Node: c, Msg: "duplicate global element " + decl.Name}
			}
			s.Elements[decl.Name] = decl
		case "simpleType":
			st, err := p.parseSimpleType(c)
			if err != nil {
				return nil, err
			}
			if st.Name == "" {
				return nil, &SchemaError{Node: c, Msg: "global simpleType requires a name"}
			}
			if _, dup := s.SimpleTypes[st.Name]; dup {
				return nil, &SchemaError{Node: c, Msg: "duplicate simpleType " + st.Name}
			}
			s.SimpleTypes[st.Name] = st
		case "complexType":
			ct, err := p.parseComplexType(c)
			if err != nil {
				return nil, err
			}
			if ct.Name == "" {
				return nil, &SchemaError{Node: c, Msg: "global complexType requires a name"}
			}
			if _, dup := s.ComplexTypes[ct.Name]; dup {
				return nil, &SchemaError{Node: c, Msg: "duplicate complexType " + ct.Name}
			}
			s.ComplexTypes[ct.Name] = ct
		case "annotation", "import", "include":
			// Annotations are ignored; import/include are out of scope for
			// the single-document schemas this system manages.
		case "attribute", "attributeGroup", "group", "notation", "redefine":
			return nil, &SchemaError{Node: c, Msg: "global xsd:" + c.Name + " is not supported"}
		default:
			return nil, &SchemaError{Node: c, Msg: "unknown schema construct xsd:" + c.Name}
		}
	}
	if err := s.resolve(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseSchemaString parses the schema from XML text.
func ParseSchemaString(src string) (*Schema, error) {
	doc, err := xmldom.ParseString(src)
	if err != nil {
		return nil, err
	}
	return ParseSchema(doc)
}

// MustParseSchemaString is for embedded, known-good schemas.
func MustParseSchemaString(src string) *Schema {
	s, err := ParseSchemaString(src)
	if err != nil {
		panic(err)
	}
	return s
}

type schemaParser struct {
	s *Schema
}

// schemaElements returns the xsd-namespace element children, skipping
// annotations.
func schemaElements(n *xmldom.Node) []*xmldom.Node {
	var out []*xmldom.Node
	for _, c := range n.Elements() {
		if c.URI == Namespace && c.Name != "annotation" {
			out = append(out, c)
		}
	}
	return out
}

func (p *schemaParser) parseElementDecl(e *xmldom.Node) (*ElementDecl, error) {
	decl := &ElementDecl{src: e}
	decl.Name = e.AttrValue("name")
	if ref := e.AttrValue("ref"); ref != "" {
		return nil, &SchemaError{Node: e, Msg: "element ref is not supported; declare elements inline or globally by name"}
	}
	if decl.Name == "" {
		return nil, &SchemaError{Node: e, Msg: "element requires a name"}
	}
	decl.TypeName = e.AttrValue("type")
	if v := e.GetAttr("default"); v != nil {
		decl.Default, decl.HasDefault = v.Data, true
	}
	if v := e.GetAttr("fixed"); v != nil {
		decl.Fixed, decl.HasFixed = v.Data, true
	}
	for _, c := range schemaElements(e) {
		switch c.Name {
		case "complexType":
			if decl.TypeName != "" || decl.Complex != nil || decl.Simple != nil {
				return nil, &SchemaError{Node: c, Msg: "element " + decl.Name + " has multiple type definitions"}
			}
			ct, err := p.parseComplexType(c)
			if err != nil {
				return nil, err
			}
			decl.Complex = ct
		case "simpleType":
			if decl.TypeName != "" || decl.Complex != nil || decl.Simple != nil {
				return nil, &SchemaError{Node: c, Msg: "element " + decl.Name + " has multiple type definitions"}
			}
			st, err := p.parseSimpleType(c)
			if err != nil {
				return nil, err
			}
			decl.Simple = st
		case "key", "keyref", "unique":
			ic, err := p.parseConstraint(c)
			if err != nil {
				return nil, err
			}
			decl.Constraints = append(decl.Constraints, ic)
		default:
			return nil, &SchemaError{Node: c, Msg: "unexpected xsd:" + c.Name + " inside element " + decl.Name}
		}
	}
	if decl.TypeName == "" && decl.Complex == nil && decl.Simple == nil {
		// Untyped elements accept any simple content (anySimpleType).
		decl.Simple = builtinType("anySimpleType")
	}
	return decl, nil
}

func (p *schemaParser) parseComplexType(e *xmldom.Node) (*ComplexType, error) {
	ct := &ComplexType{Name: e.AttrValue("name"), Mixed: e.AttrValue("mixed") == "true", src: e}
	for _, c := range schemaElements(e) {
		switch c.Name {
		case "sequence", "choice", "all":
			if ct.Content != nil {
				return nil, &SchemaError{Node: c, Msg: "complexType has multiple content groups"}
			}
			part, err := p.parseGroup(c)
			if err != nil {
				return nil, err
			}
			ct.Content = part
		case "attribute":
			ad, err := p.parseAttributeDecl(c)
			if err != nil {
				return nil, err
			}
			for _, prev := range ct.Attributes {
				if prev.Name == ad.Name {
					return nil, &SchemaError{Node: c, Msg: "duplicate attribute " + ad.Name}
				}
			}
			ct.Attributes = append(ct.Attributes, ad)
		case "simpleContent", "complexContent", "anyAttribute", "group", "attributeGroup":
			return nil, &SchemaError{Node: c, Msg: "xsd:" + c.Name + " is not supported"}
		default:
			return nil, &SchemaError{Node: c, Msg: "unexpected xsd:" + c.Name + " in complexType"}
		}
	}
	return ct, nil
}

func (p *schemaParser) parseGroup(e *xmldom.Node) (*Particle, error) {
	part := &Particle{src: e}
	switch e.Name {
	case "sequence":
		part.Kind = PSequence
	case "choice":
		part.Kind = PChoice
	case "all":
		part.Kind = PAll
	}
	var err error
	part.Min, part.Max, err = parseOccurs(e)
	if err != nil {
		return nil, err
	}
	if part.Kind == PAll && (part.Min > 1 || part.Max != 1) {
		return nil, &SchemaError{Node: e, Msg: "xsd:all cannot repeat"}
	}
	for _, c := range schemaElements(e) {
		switch c.Name {
		case "element":
			child := &Particle{Kind: PElement, src: c}
			child.Min, child.Max, err = parseOccurs(c)
			if err != nil {
				return nil, err
			}
			decl, err := p.parseElementDecl(c)
			if err != nil {
				return nil, err
			}
			child.Elem = decl
			part.Children = append(part.Children, child)
		case "sequence", "choice", "all":
			if part.Kind == PAll {
				return nil, &SchemaError{Node: c, Msg: "xsd:all may only contain elements"}
			}
			child, err := p.parseGroup(c)
			if err != nil {
				return nil, err
			}
			part.Children = append(part.Children, child)
		case "any":
			return nil, &SchemaError{Node: c, Msg: "xsd:any is not supported"}
		default:
			return nil, &SchemaError{Node: c, Msg: "unexpected xsd:" + c.Name + " in content group"}
		}
	}
	return part, nil
}

func parseOccurs(e *xmldom.Node) (int, int, error) {
	min, max := 1, 1
	if v := e.AttrValue("minOccurs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return 0, 0, &SchemaError{Node: e, Msg: "bad minOccurs " + v}
		}
		min = n
	}
	if v := e.AttrValue("maxOccurs"); v != "" {
		if v == "unbounded" {
			max = Unbounded
		} else {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return 0, 0, &SchemaError{Node: e, Msg: "bad maxOccurs " + v}
			}
			max = n
		}
	}
	if max != Unbounded && min > max {
		return 0, 0, &SchemaError{Node: e, Msg: fmt.Sprintf("minOccurs %d exceeds maxOccurs %d", min, max)}
	}
	return min, max, nil
}

func (p *schemaParser) parseAttributeDecl(e *xmldom.Node) (*AttributeDecl, error) {
	ad := &AttributeDecl{Name: e.AttrValue("name"), TypeName: e.AttrValue("type"),
		Use: e.AttrValue("use"), src: e}
	if ad.Name == "" {
		return nil, &SchemaError{Node: e, Msg: "attribute requires a name"}
	}
	switch ad.Use {
	case "", "optional", "required", "prohibited":
	default:
		return nil, &SchemaError{Node: e, Msg: "bad attribute use " + ad.Use}
	}
	if v := e.GetAttr("default"); v != nil {
		ad.Default, ad.HasDefault = v.Data, true
	}
	if v := e.GetAttr("fixed"); v != nil {
		ad.Fixed, ad.HasFixed = v.Data, true
	}
	if ad.HasDefault && ad.HasFixed {
		return nil, &SchemaError{Node: e, Msg: "attribute " + ad.Name + " cannot have both default and fixed"}
	}
	if ad.HasDefault && ad.Use == "required" {
		return nil, &SchemaError{Node: e, Msg: "required attribute " + ad.Name + " cannot have a default"}
	}
	for _, c := range schemaElements(e) {
		if c.Name != "simpleType" {
			return nil, &SchemaError{Node: c, Msg: "unexpected xsd:" + c.Name + " in attribute"}
		}
		st, err := p.parseSimpleType(c)
		if err != nil {
			return nil, err
		}
		ad.Type = st
	}
	if ad.TypeName == "" && ad.Type == nil {
		ad.Type = builtinType("anySimpleType")
	}
	return ad, nil
}

func (p *schemaParser) parseSimpleType(e *xmldom.Node) (*SimpleType, error) {
	st := &SimpleType{Name: e.AttrValue("name"), src: e}
	kids := schemaElements(e)
	if len(kids) != 1 || kids[0].Name != "restriction" {
		return nil, &SchemaError{Node: e, Msg: "simpleType must contain exactly one xsd:restriction (list/union are not supported)"}
	}
	r := kids[0]
	st.Base = r.AttrValue("base")
	if st.Base == "" {
		return nil, &SchemaError{Node: r, Msg: "restriction requires a base"}
	}
	intFacet := func(c *xmldom.Node) (*int, error) {
		n, err := strconv.Atoi(c.AttrValue("value"))
		if err != nil || n < 0 {
			return nil, &SchemaError{Node: c, Msg: "bad facet value " + c.AttrValue("value")}
		}
		return &n, nil
	}
	numFacet := func(c *xmldom.Node) (*float64, error) {
		f, err := strconv.ParseFloat(c.AttrValue("value"), 64)
		if err != nil {
			return nil, &SchemaError{Node: c, Msg: "bad facet value " + c.AttrValue("value")}
		}
		return &f, nil
	}
	for _, c := range schemaElements(r) {
		var err error
		switch c.Name {
		case "enumeration":
			st.Enum = append(st.Enum, c.AttrValue("value"))
		case "pattern":
			src := c.AttrValue("value")
			re, rerr := compileXSDPattern(src)
			if rerr != nil {
				return nil, &SchemaError{Node: c, Msg: "bad pattern " + src + ": " + rerr.Error()}
			}
			st.Patterns = append(st.Patterns, re)
			st.patternSrcs = append(st.patternSrcs, src)
		case "length":
			st.Length, err = intFacet(c)
		case "minLength":
			st.MinLength, err = intFacet(c)
		case "maxLength":
			st.MaxLength, err = intFacet(c)
		case "minInclusive":
			st.MinInclusive, err = numFacet(c)
		case "maxInclusive":
			st.MaxInclusive, err = numFacet(c)
		case "minExclusive":
			st.MinExclusive, err = numFacet(c)
		case "maxExclusive":
			st.MaxExclusive, err = numFacet(c)
		case "whiteSpace":
			ws := c.AttrValue("value")
			switch ws {
			case "preserve", "replace", "collapse":
				st.WhiteSpace = ws
			default:
				return nil, &SchemaError{Node: c, Msg: "bad whiteSpace value " + ws}
			}
		case "totalDigits", "fractionDigits":
			return nil, &SchemaError{Node: c, Msg: "facet xsd:" + c.Name + " is not supported"}
		default:
			return nil, &SchemaError{Node: c, Msg: "unknown facet xsd:" + c.Name}
		}
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// compileXSDPattern translates an XSD regular expression into a Go regexp.
// XSD patterns are implicitly anchored; the common subset (character
// classes, quantifiers, alternation) is shared syntax.
func compileXSDPattern(src string) (*regexp.Regexp, error) {
	// \i, \c (name characters) are XSD-specific; approximate them.
	rep := strings.NewReplacer(
		`\i`, `[A-Za-z_:]`,
		`\c`, `[-A-Za-z0-9_:.·]`,
	)
	return regexp.Compile(`\A(?:` + rep.Replace(src) + `)\z`)
}

func (p *schemaParser) parseConstraint(e *xmldom.Node) (*IdentityConstraint, error) {
	ic := &IdentityConstraint{Name: e.AttrValue("name"), src: e}
	switch e.Name {
	case "key":
		ic.Kind = KeyConstraint
	case "unique":
		ic.Kind = UniqueConstraint
	case "keyref":
		ic.Kind = KeyrefConstraint
		ic.Refer = e.AttrValue("refer")
		if ic.Refer == "" {
			return nil, &SchemaError{Node: e, Msg: "keyref requires refer"}
		}
		// refer is a QName; constraints live in no namespace here.
		if i := strings.IndexByte(ic.Refer, ':'); i >= 0 {
			ic.Refer = ic.Refer[i+1:]
		}
	}
	if ic.Name == "" {
		return nil, &SchemaError{Node: e, Msg: "identity constraint requires a name"}
	}
	for _, c := range schemaElements(e) {
		switch c.Name {
		case "selector":
			src := c.AttrValue("xpath")
			expr, err := xpath.Compile(src)
			if err != nil {
				return nil, &SchemaError{Node: c, Msg: "bad selector xpath: " + err.Error()}
			}
			ic.Selector = expr
			ic.selectorSrc = src
		case "field":
			src := c.AttrValue("xpath")
			expr, err := xpath.Compile(src)
			if err != nil {
				return nil, &SchemaError{Node: c, Msg: "bad field xpath: " + err.Error()}
			}
			ic.Fields = append(ic.Fields, expr)
			ic.fieldSrcs = append(ic.fieldSrcs, src)
		default:
			return nil, &SchemaError{Node: c, Msg: "unexpected xsd:" + c.Name + " in " + e.Name}
		}
	}
	if ic.Selector == nil || len(ic.Fields) == 0 {
		return nil, &SchemaError{Node: e, Msg: ic.Kind.String() + " " + ic.Name + " requires a selector and at least one field"}
	}
	return ic, nil
}

// ---- reference resolution ----

// nsForPrefix resolves a namespace prefix using the xmlns declarations in
// scope at the given schema node.
func nsForPrefix(n *xmldom.Node, prefix string) (string, bool) {
	if prefix == "xml" {
		return xmldom.XMLNamespace, true
	}
	for cur := n; cur != nil; cur = cur.Parent {
		for _, a := range cur.Attr {
			if a.URI != xmldom.XMLNSNamespace {
				continue
			}
			if prefix == "" && a.Prefix == "" && a.Name == "xmlns" {
				return a.Data, true
			}
			if a.Prefix == "xmlns" && a.Name == prefix {
				return a.Data, true
			}
		}
	}
	return "", prefix == ""
}

// lookupSimple resolves a type QName to a simple type (builtin or named).
func (s *Schema) lookupSimple(ref string, at *xmldom.Node) (*SimpleType, error) {
	prefix, local := "", ref
	if i := strings.IndexByte(ref, ':'); i >= 0 {
		prefix, local = ref[:i], ref[i+1:]
	}
	uri, ok := nsForPrefix(at, prefix)
	if !ok {
		return nil, &SchemaError{Node: at, Msg: "undeclared prefix in type reference " + ref}
	}
	if uri == Namespace {
		if bt := builtinType(local); bt != nil {
			return bt, nil
		}
		return nil, &SchemaError{Node: at, Msg: "unsupported built-in type xsd:" + local}
	}
	if st, ok := s.SimpleTypes[local]; ok {
		return st, nil
	}
	return nil, nil
}

// resolve links named type references and base-type chains.
func (s *Schema) resolve() error {
	// Resolve simple-type bases first (with cycle detection).
	state := map[*SimpleType]int{} // 0 unseen, 1 visiting, 2 done
	var resolveST func(st *SimpleType) error
	resolveST = func(st *SimpleType) error {
		if st.builtin != btNone || state[st] == 2 {
			return nil
		}
		if state[st] == 1 {
			return &SchemaError{Node: st.src, Msg: "circular simpleType derivation at " + st.Name}
		}
		state[st] = 1
		base, err := s.lookupSimple(st.Base, st.src)
		if err != nil {
			return err
		}
		if base == nil {
			return &SchemaError{Node: st.src, Msg: "unknown base type " + st.Base}
		}
		if err := resolveST(base); err != nil {
			return err
		}
		st.base = base
		state[st] = 2
		return nil
	}
	for _, st := range s.SimpleTypes {
		if err := resolveST(st); err != nil {
			return err
		}
	}
	var resolveCT func(ct *ComplexType) error
	var resolveDecl func(d *ElementDecl) error
	var resolvePart func(p *Particle) error
	resolveDecl = func(d *ElementDecl) error {
		if d.TypeName != "" {
			st, err := s.lookupSimple(d.TypeName, d.src)
			if err != nil {
				return err
			}
			if st != nil {
				if err := resolveST(st); err != nil {
					return err
				}
				d.Simple = st
			} else if ct, ok := s.ComplexTypes[stripPrefix(d.TypeName)]; ok {
				d.Complex = ct
			} else {
				return &SchemaError{Node: d.src, Msg: "unknown type " + d.TypeName + " for element " + d.Name}
			}
		}
		if d.Simple != nil && d.Simple.builtin == btNone && d.Simple.base == nil {
			if err := resolveST(d.Simple); err != nil {
				return err
			}
		}
		if d.Complex != nil {
			return resolveCT(d.Complex)
		}
		return nil
	}
	resolvePart = func(p *Particle) error {
		if p == nil {
			return nil
		}
		if p.Kind == PElement {
			return resolveDecl(p.Elem)
		}
		for _, c := range p.Children {
			if err := resolvePart(c); err != nil {
				return err
			}
		}
		return nil
	}
	resolvedCT := map[*ComplexType]bool{}
	resolveCT = func(ct *ComplexType) error {
		if resolvedCT[ct] {
			return nil
		}
		resolvedCT[ct] = true
		for _, ad := range ct.Attributes {
			if ad.TypeName != "" {
				st, err := s.lookupSimple(ad.TypeName, ad.src)
				if err != nil {
					return err
				}
				if st == nil {
					return &SchemaError{Node: ad.src, Msg: "unknown attribute type " + ad.TypeName}
				}
				if err := resolveST(st); err != nil {
					return err
				}
				ad.Type = st
			} else if ad.Type != nil && ad.Type.builtin == btNone && ad.Type.base == nil {
				if err := resolveST(ad.Type); err != nil {
					return err
				}
			}
		}
		return resolvePart(ct.Content)
	}
	for _, ct := range s.ComplexTypes {
		if err := resolveCT(ct); err != nil {
			return err
		}
	}
	for _, d := range s.Elements {
		if err := resolveDecl(d); err != nil {
			return err
		}
	}
	return nil
}

func stripPrefix(ref string) string {
	if i := strings.IndexByte(ref, ':'); i >= 0 {
		return ref[i+1:]
	}
	return ref
}
