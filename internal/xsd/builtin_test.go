package xsd

import (
	"fmt"
	"testing"
)

// TestBuiltinTypeLexicalSpaces drives every supported built-in type with
// accepting and rejecting lexical values.
func TestBuiltinTypeLexicalSpaces(t *testing.T) {
	cases := []struct {
		typ  string
		good []string
		bad  []string
	}{
		{"string", []string{"", "anything at all", " spaces "}, nil},
		{"normalizedString", []string{"a b"}, nil},
		{"token", []string{"a b"}, nil},
		{"boolean", []string{"true", "false", "0", "1"}, []string{"TRUE", "yes", "2", ""}},
		{"decimal", []string{"3.14", "-2", "0"}, []string{"three", ""}},
		{"float", []string{"1.5", "-0.25"}, []string{"NaN?", "x"}},
		{"double", []string{"2.75"}, []string{"--1"}},
		{"integer", []string{"42", "-7", "0"}, []string{"1.5", "a", ""}},
		{"int", []string{"2147483647", "-2147483648"}, []string{"2147483648", "-2147483649"}},
		{"long", []string{"9223372036854775807"}, []string{"9223372036854775808"}},
		{"short", []string{"32767", "-32768"}, []string{"32768"}},
		{"byte", []string{"127", "-128"}, []string{"128", "-129"}},
		{"nonNegativeInteger", []string{"0", "12"}, []string{"-1"}},
		{"positiveInteger", []string{"1", "99"}, []string{"0", "-3"}},
		{"nonPositiveInteger", []string{"0", "-5"}, []string{"2"}},
		{"negativeInteger", []string{"-1"}, []string{"0", "1"}},
		{"unsignedInt", []string{"0", "4294967295"}, []string{"-1", "4294967296"}},
		{"date", []string{"2002-03-24"}, []string{"24-03-2002", "2002-13-01", "2002-02-30", "today"}},
		{"dateTime", []string{"2002-03-24T10:30:00", "2002-03-24T10:30:00+01:00"}, []string{"2002-03-24", "10:30"}},
		{"time", []string{"10:30:00"}, []string{"25:00:00", "10:30"}},
		{"gYear", []string{"2002", "1999"}, []string{"02", "year", "20022"}},
		{"ID", []string{"a1", "_x", "a-b.c"}, []string{"1a", "a b", "", "a:b"}},
		{"IDREF", []string{"ref1"}, []string{"9ref"}},
		{"NCName", []string{"name"}, []string{"pre:fix"}},
		{"Name", []string{"name", "pre:fix"}, []string{"a:b:c", "9x"}},
		{"QName", []string{"local", "p:local"}, []string{":x", "a:b:c"}},
		{"NMTOKEN", []string{"123", "a-b"}, []string{"", "a b"}},
		{"anyURI", []string{"http://x/y", "relative/path"}, nil},
		{"language", []string{"en", "en-US"}, []string{""}},
	}
	for _, tc := range cases {
		kind, ok := builtinByName[tc.typ]
		if !ok {
			t.Errorf("type %s not registered", tc.typ)
			continue
		}
		for _, v := range tc.good {
			if err := checkBuiltin(kind, v); err != nil {
				t.Errorf("%s: %q rejected: %v", tc.typ, v, err)
			}
		}
		for _, v := range tc.bad {
			if err := checkBuiltin(kind, v); err == nil {
				t.Errorf("%s: %q accepted", tc.typ, v)
			}
		}
	}
}

// TestBuiltinTypesThroughSchema wires a representative subset through a
// real schema so the whitespace normalization path is covered too.
func TestBuiltinTypesThroughSchema(t *testing.T) {
	for _, tc := range []struct {
		typ, value string
		valid      bool
	}{
		{"xsd:integer", "  42  ", true}, // collapse facet applies
		{"xsd:boolean", " true ", true},
		{"xsd:date", " 2002-01-01 ", true},
		{"xsd:integer", "4 2", false},
		{"xsd:string", "  keep  me  ", true},
	} {
		schema := fmt.Sprintf(`<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
			<xsd:element name="e" type="%s"/></xsd:schema>`, tc.typ)
		s, err := ParseSchemaString(schema)
		if err != nil {
			t.Fatal(err)
		}
		errs := s.ValidateString("<e>"+tc.value+"</e>", ValidateOptions{})
		if (len(errs) == 0) != tc.valid {
			t.Errorf("%s %q: valid=%v want %v (%v)", tc.typ, tc.value, len(errs) == 0, tc.valid, errs)
		}
	}
}

func TestIDREFSType(t *testing.T) {
	schema := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
		<xsd:element name="r"><xsd:complexType><xsd:sequence>
			<xsd:element name="n" maxOccurs="unbounded"><xsd:complexType>
				<xsd:attribute name="id" type="xsd:ID" use="required"/>
				<xsd:attribute name="refs" type="xsd:IDREFS"/>
			</xsd:complexType></xsd:element>
		</xsd:sequence></xsd:complexType></xsd:element></xsd:schema>`
	s, err := ParseSchemaString(schema)
	if err != nil {
		t.Fatal(err)
	}
	if errs := s.ValidateString(`<r><n id="a" refs="b c"/><n id="b"/><n id="c"/></r>`, ValidateOptions{}); len(errs) != 0 {
		t.Errorf("valid IDREFS rejected: %v", errs)
	}
	errs := s.ValidateString(`<r><n id="a" refs="b ghost"/><n id="b"/></r>`, ValidateOptions{})
	if len(errs) == 0 {
		t.Error("dangling IDREFS accepted")
	}
}

func TestWhiteSpaceFacet(t *testing.T) {
	schema := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
		<xsd:simpleType name="Collapsed"><xsd:restriction base="xsd:string">
			<xsd:whiteSpace value="collapse"/><xsd:enumeration value="a b"/>
		</xsd:restriction></xsd:simpleType>
		<xsd:element name="e" type="Collapsed"/></xsd:schema>`
	s, err := ParseSchemaString(schema)
	if err != nil {
		t.Fatal(err)
	}
	// Collapsing makes "  a   b " match the enumeration "a b".
	if errs := s.ValidateString("<e>  a   b </e>", ValidateOptions{}); len(errs) != 0 {
		t.Errorf("collapse facet not applied: %v", errs)
	}
	if errs := s.ValidateString("<e>a c</e>", ValidateOptions{}); len(errs) == 0 {
		t.Error("wrong value accepted")
	}
}

func TestExclusiveRangeFacets(t *testing.T) {
	schema := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
		<xsd:simpleType name="Open"><xsd:restriction base="xsd:decimal">
			<xsd:minExclusive value="0"/><xsd:maxExclusive value="1"/>
		</xsd:restriction></xsd:simpleType>
		<xsd:element name="e" type="Open"/></xsd:schema>`
	s, err := ParseSchemaString(schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		v     string
		valid bool
	}{{"0.5", true}, {"0", false}, {"1", false}, {"0.0001", true}, {"-1", false}} {
		errs := s.ValidateString("<e>"+tc.v+"</e>", ValidateOptions{})
		if (len(errs) == 0) != tc.valid {
			t.Errorf("%s: valid=%v want %v", tc.v, len(errs) == 0, tc.valid)
		}
	}
}

func TestFixedLengthFacet(t *testing.T) {
	schema := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
		<xsd:simpleType name="Code3"><xsd:restriction base="xsd:string">
			<xsd:length value="3"/>
		</xsd:restriction></xsd:simpleType>
		<xsd:element name="e"><xsd:complexType><xsd:attribute name="c" type="Code3" use="required"/></xsd:complexType></xsd:element>
	</xsd:schema>`
	s, err := ParseSchemaString(schema)
	if err != nil {
		t.Fatal(err)
	}
	if errs := s.ValidateString(`<e c="abc"/>`, ValidateOptions{}); len(errs) != 0 {
		t.Errorf("length 3 rejected: %v", errs)
	}
	for _, bad := range []string{"ab", "abcd", ""} {
		if errs := s.ValidateString(`<e c="`+bad+`"/>`, ValidateOptions{}); len(errs) == 0 {
			t.Errorf("%q accepted", bad)
		}
	}
	// Rune counting, not bytes.
	if errs := s.ValidateString(`<e c="äöü"/>`, ValidateOptions{}); len(errs) != 0 {
		t.Errorf("multibyte length: %v", errs)
	}
}

func TestProhibitedAttribute(t *testing.T) {
	schema := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
		<xsd:element name="e"><xsd:complexType>
			<xsd:attribute name="legacy" type="xsd:string" use="prohibited"/>
		</xsd:complexType></xsd:element></xsd:schema>`
	s, err := ParseSchemaString(schema)
	if err != nil {
		t.Fatal(err)
	}
	if errs := s.ValidateString(`<e/>`, ValidateOptions{}); len(errs) != 0 {
		t.Errorf("absence rejected: %v", errs)
	}
	if errs := s.ValidateString(`<e legacy="x"/>`, ValidateOptions{}); len(errs) == 0 {
		t.Error("prohibited attribute accepted")
	}
}

func TestMixedContent(t *testing.T) {
	schema := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
		<xsd:element name="p"><xsd:complexType mixed="true"><xsd:sequence>
			<xsd:element name="b" minOccurs="0" maxOccurs="unbounded"/>
		</xsd:sequence></xsd:complexType></xsd:element></xsd:schema>`
	s, err := ParseSchemaString(schema)
	if err != nil {
		t.Fatal(err)
	}
	if errs := s.ValidateString(`<p>text <b/> more</p>`, ValidateOptions{}); len(errs) != 0 {
		t.Errorf("mixed content rejected: %v", errs)
	}
	// Without mixed, text is rejected (covered elsewhere, asserted here
	// for the symmetric schema).
	schema2 := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
		<xsd:element name="p"><xsd:complexType><xsd:sequence>
			<xsd:element name="b" minOccurs="0"/>
		</xsd:sequence></xsd:complexType></xsd:element></xsd:schema>`
	s2, _ := ParseSchemaString(schema2)
	if errs := s2.ValidateString(`<p>text<b/></p>`, ValidateOptions{}); len(errs) == 0 {
		t.Error("character content accepted in element-only model")
	}
}

func TestXMLNamespaceAttributesPass(t *testing.T) {
	schema := sch(`<xsd:element name="e"><xsd:complexType/></xsd:element>`)
	s, err := ParseSchemaString(schema)
	if err != nil {
		t.Fatal(err)
	}
	// xmlns declarations and xml:* attributes are infrastructure, not
	// schema-declared attributes.
	if errs := s.ValidateString(`<e xmlns:foo="urn:x" xml:lang="en"/>`, ValidateOptions{}); len(errs) != 0 {
		t.Errorf("infrastructure attributes rejected: %v", errs)
	}
}
