package xsd

import (
	"fmt"
	"sort"
	"strings"
)

// TreeOptions configure the schema tree rendering.
type TreeOptions struct {
	// ShowAttributes lists each element's attributes beneath it.
	ShowAttributes bool
}

// Tree renders the schema's element structure as an ASCII tree, the
// textual equivalent of the paper's Fig. 2 ("The XML Schema represented
// as a tree structure"): every node carries its occurrence bounds, and
// attributes typed with user-defined simple types are marked (the
// shading of the figure).
func Tree(s *Schema, opts TreeOptions) string {
	var b strings.Builder
	names := make([]string, 0, len(s.Elements))
	for name := range s.Elements {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := &treePrinter{b: &b, s: s, opts: opts, seen: map[*ComplexType]bool{}}
		t.element(s.Elements[name], "", "", 1, 1)
	}
	return b.String()
}

type treePrinter struct {
	b    *strings.Builder
	s    *Schema
	opts TreeOptions
	seen map[*ComplexType]bool
}

// card renders occurrence bounds the way the figure annotates them.
func card(min, max int) string {
	switch {
	case min == 1 && max == 1:
		return ""
	case min == 0 && max == 1:
		return " [0..1]"
	case max == Unbounded:
		return fmt.Sprintf(" [%d..*]", min)
	default:
		return fmt.Sprintf(" [%d..%d]", min, max)
	}
}

func (t *treePrinter) element(d *ElementDecl, prefix, childPrefix string, min, max int) {
	label := d.Name + card(min, max)
	if d.Simple != nil && d.Simple.builtin != btAnySimpleType {
		label += " : " + simpleLabel(d.Simple)
	}
	if d.Abstract {
		label += " (abstract)"
	}
	if t.s.Elements[d.Name] == d {
		if members := t.s.substMembers[d.Name]; len(members) > 0 {
			names := make([]string, len(members))
			for i, m := range members {
				names[i] = m.Name
			}
			label += " <= " + strings.Join(names, " | ")
		}
	}
	fmt.Fprintf(t.b, "%s%s\n", prefix, label)
	if d.Complex == nil {
		return
	}
	ct := d.Complex
	if t.seen[ct] && ct.Name != "" {
		fmt.Fprintf(t.b, "%s└─ (type %s, shown above)\n", childPrefix, ct.Name)
		return
	}
	t.seen[ct] = true

	type kid struct {
		render func(prefix, childPrefix string)
	}
	var kids []kid
	if t.opts.ShowAttributes {
		for _, ad := range ct.Attributes {
			adCopy := ad
			kids = append(kids, kid{render: func(p, _ string) {
				fmt.Fprintf(t.b, "%s%s\n", p, attrLabel(adCopy))
			}})
		}
		if w := ct.AnyAttr; w != nil {
			kids = append(kids, kid{render: func(p, _ string) {
				fmt.Fprintf(t.b, "%s@* (anyAttribute %s %s)\n", p, w.NS, w.Process)
			}})
		}
	}
	var collect func(p *Particle)
	var particleKids []*Particle
	collect = func(p *Particle) {
		if p == nil {
			return
		}
		switch p.Kind {
		case PElement, PAny:
			particleKids = append(particleKids, p)
		case PSequence:
			// A plain once-only sequence is structural noise; inline it.
			if p.Min == 1 && p.Max == 1 {
				for _, c := range p.Children {
					collect(c)
				}
			} else {
				particleKids = append(particleKids, p)
			}
		case PChoice, PAll:
			particleKids = append(particleKids, p)
		}
	}
	collect(ct.Content)
	for _, p := range particleKids {
		pCopy := p
		kids = append(kids, kid{render: func(pfx, cpfx string) {
			t.particle(pCopy, pfx, cpfx)
		}})
	}
	for i, k := range kids {
		connector, cont := "├─ ", "│  "
		if i == len(kids)-1 {
			connector, cont = "└─ ", "   "
		}
		k.render(childPrefix+connector, childPrefix+cont)
	}
}

func (t *treePrinter) particle(p *Particle, prefix, childPrefix string) {
	switch p.Kind {
	case PElement:
		t.element(p.Elem, prefix, childPrefix, p.Min, p.Max)
	case PAny:
		fmt.Fprintf(t.b, "%s(any %s %s)%s\n", prefix, p.Wildcard.NS, p.Wildcard.Process, card(p.Min, p.Max))
	case PSequence, PChoice, PAll:
		kind := map[ParticleKind]string{PSequence: "sequence", PChoice: "choice", PAll: "all"}[p.Kind]
		fmt.Fprintf(t.b, "%s(%s)%s\n", prefix, kind, card(p.Min, p.Max))
		for i, c := range p.Children {
			connector, cont := "├─ ", "│  "
			if i == len(p.Children)-1 {
				connector, cont = "└─ ", "   "
			}
			t.particle(c, childPrefix+connector, childPrefix+cont)
		}
	}
}

// simpleLabel renders a simple type for the tree: named user-defined
// types carry the figure's shading marker (*), list and union varieties
// spell out their item/member structure.
func simpleLabel(st *SimpleType) string {
	switch {
	case st.Item != nil:
		body := "list of " + simpleLabel(st.Item)
		if st.Name != "" {
			return st.Name + "* (" + body + ")"
		}
		return body
	case len(st.Members) > 0:
		parts := make([]string, len(st.Members))
		for i, m := range st.Members {
			parts[i] = simpleLabel(m)
		}
		body := "union(" + strings.Join(parts, " | ") + ")"
		if st.Name != "" {
			return st.Name + "* (" + body + ")"
		}
		return body
	case st.builtin != btNone:
		return st.Name
	}
	// user-defined restriction (shaded in Fig. 2)
	return st.Name + "*"
}

func attrLabel(ad *AttributeDecl) string {
	label := "@" + ad.Name
	typeName := ""
	if ad.TypeName != "" {
		typeName = ad.TypeName
	} else if ad.Type != nil && ad.Type.Name != "" {
		typeName = ad.Type.Name
	} else if ad.Type != nil && (ad.Type.Item != nil || len(ad.Type.Members) > 0) {
		label += " : " + simpleLabel(ad.Type)
		typeName = ""
	}
	if typeName != "" {
		// Mark user-defined simple types like the figure's shading.
		if !strings.Contains(typeName, ":") {
			typeName += "*"
		}
		label += " : " + typeName
	}
	switch {
	case ad.Use == "required":
		label += " (required)"
	case ad.HasDefault:
		label += fmt.Sprintf(" (default %q)", ad.Default)
	case ad.HasFixed:
		label += fmt.Sprintf(" (fixed %q)", ad.Fixed)
	}
	return label
}
