package xsd

import (
	"fmt"
	"strings"
	"testing"
)

// mapResolver serves schema documents from a map, the in-memory analogue
// of FileResolver for loader edge-case tests.
func mapResolver(docs map[string]string) Resolver {
	return func(location string) ([]byte, error) {
		src, ok := docs[location]
		if !ok {
			return nil, fmt.Errorf("no such document")
		}
		return []byte(src), nil
	}
}

func wrapSchema(body string) string {
	return `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">` + body + `</xsd:schema>`
}

func TestLoaderIncludeCycle(t *testing.T) {
	ld := Loader{Resolve: mapResolver(map[string]string{
		"a.xsd": wrapSchema(`<xsd:include schemaLocation="b.xsd"/><xsd:element name="a" type="xsd:string"/>`),
		"b.xsd": wrapSchema(`<xsd:include schemaLocation="a.xsd"/><xsd:element name="b" type="xsd:int"/>`),
	})}
	s, err := ld.Load("a.xsd")
	if err != nil {
		t.Fatalf("cycle should be benign: %v", err)
	}
	for _, name := range []string{"a", "b"} {
		if s.Elements[name] == nil {
			t.Errorf("element %q missing after cyclic load", name)
		}
	}
}

func TestLoaderMissingLocation(t *testing.T) {
	ld := Loader{Resolve: mapResolver(map[string]string{
		"a.xsd": wrapSchema(`<xsd:include schemaLocation="gone.xsd"/>`),
	})}
	_, err := ld.Load("a.xsd")
	if err == nil {
		t.Fatal("missing include target accepted")
	}
	se, ok := err.(*SchemaError)
	if !ok {
		t.Fatalf("err = %T, want *SchemaError", err)
	}
	if se.File != "a.xsd" {
		t.Errorf("SchemaError.File = %q, want the referencing file a.xsd", se.File)
	}
	for _, want := range []string{"gone.xsd", "referenced from a.xsd"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q misses %q", err, want)
		}
	}
}

func TestLoaderMissingRoot(t *testing.T) {
	ld := Loader{Resolve: mapResolver(nil)}
	_, err := ld.Load("root.xsd")
	if err == nil {
		t.Fatal("missing root document accepted")
	}
	if se, ok := err.(*SchemaError); !ok || se.File != "" {
		t.Errorf("root load failure should have no referencing file, got %#v", err)
	}
}

func TestLoaderConflictingRedefinition(t *testing.T) {
	ld := Loader{Resolve: mapResolver(map[string]string{
		"a.xsd": wrapSchema(`<xsd:include schemaLocation="b.xsd"/><xsd:element name="e" type="xsd:string"/>`),
		"b.xsd": wrapSchema(`<xsd:element name="e" type="xsd:int"/>`),
	})}
	_, err := ld.Load("a.xsd")
	if err == nil {
		t.Fatal("conflicting redefinition across files accepted")
	}
	for _, want := range []string{"duplicate global element e", "already declared in"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q misses %q", err, want)
		}
	}
}

func TestLoaderNestedRelativeIncludes(t *testing.T) {
	// c.xsd is referenced as "c.xsd" from within sub/, so it must resolve
	// to sub/c.xsd, and "../top.xsd" must climb back out.
	ld := Loader{Resolve: mapResolver(map[string]string{
		"root.xsd":    wrapSchema(`<xsd:include schemaLocation="sub/mid.xsd"/><xsd:element name="root" type="T"/>`),
		"sub/mid.xsd": wrapSchema(`<xsd:include schemaLocation="c.xsd"/><xsd:include schemaLocation="../top.xsd"/>`),
		"sub/c.xsd":   wrapSchema(`<xsd:simpleType name="T"><xsd:restriction base="Base"/></xsd:simpleType>`),
		"top.xsd":     wrapSchema(`<xsd:simpleType name="Base"><xsd:restriction base="xsd:string"/></xsd:simpleType>`),
	})}
	s, err := ld.Load("root.xsd")
	if err != nil {
		t.Fatalf("nested relative includes: %v", err)
	}
	if got := s.DeclFile("simpleType", "T"); got != "sub/c.xsd" {
		t.Errorf("DeclFile(T) = %q, want sub/c.xsd", got)
	}
	if got := s.DeclFile("simpleType", "Base"); got != "top.xsd" {
		t.Errorf("DeclFile(Base) = %q, want top.xsd", got)
	}
	files := s.SourceFiles()
	if len(files) != 4 {
		t.Errorf("SourceFiles = %v, want 4 entries", files)
	}
}

func TestLoaderSharedIncludeLoadedOnce(t *testing.T) {
	resolved := map[string]int{}
	inner := mapResolver(map[string]string{
		"a.xsd":      wrapSchema(`<xsd:include schemaLocation="shared.xsd"/><xsd:include schemaLocation="b.xsd"/>`),
		"b.xsd":      wrapSchema(`<xsd:include schemaLocation="./shared.xsd"/>`),
		"shared.xsd": wrapSchema(`<xsd:element name="s" type="xsd:string"/>`),
	})
	ld := Loader{Resolve: func(loc string) ([]byte, error) {
		resolved[loc]++
		return inner(loc)
	}}
	if _, err := ld.Load("a.xsd"); err != nil {
		t.Fatal(err)
	}
	if resolved["shared.xsd"] != 1 {
		t.Errorf("shared.xsd resolved %d times (want 1, the './' spelling normalized away)", resolved["shared.xsd"])
	}
}

func TestLoaderIncludeWithoutLocation(t *testing.T) {
	ld := Loader{Resolve: mapResolver(map[string]string{
		"a.xsd": wrapSchema(`<xsd:include/>`),
	})}
	_, err := ld.Load("a.xsd")
	if err == nil || !strings.Contains(err.Error(), "include requires a schemaLocation") {
		t.Errorf("locationless include: %v", err)
	}
	// An import without a location only declares intent; it must load.
	ld = Loader{Resolve: mapResolver(map[string]string{
		"a.xsd": wrapSchema(`<xsd:import namespace="urn:x"/><xsd:element name="e" type="xsd:string"/>`),
	})}
	if _, err := ld.Load("a.xsd"); err != nil {
		t.Errorf("locationless import should be a no-op: %v", err)
	}
}

func TestLoaderParseErrorProvenance(t *testing.T) {
	ld := Loader{Resolve: mapResolver(map[string]string{
		"a.xsd": wrapSchema(`<xsd:include schemaLocation="broken.xsd"/>`),
		"broken.xsd": `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="e" type="NoSuchType"/>
</xsd:schema>`,
	})}
	_, err := ld.Load("a.xsd")
	if err == nil {
		t.Fatal("unresolvable type accepted")
	}
	if !strings.Contains(err.Error(), "broken.xsd") {
		t.Errorf("error %q does not name the offending file broken.xsd", err)
	}
}

func TestParseSchemaIgnoresIncludes(t *testing.T) {
	// The single-document entry points must keep ignoring import/include
	// so the embedded GOLD schema path is unchanged.
	s, err := ParseSchemaString(wrapSchema(
		`<xsd:include schemaLocation="nowhere.xsd"/><xsd:element name="e" type="xsd:string"/>`))
	if err != nil {
		t.Fatalf("single-document parse should ignore includes: %v", err)
	}
	if s.Elements["e"] == nil {
		t.Error("element e missing")
	}
}
