package xsd

import (
	"fmt"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"

	"goldweb/internal/xmldom"
)

// Resolver fetches the bytes of a schema document by location. Locations
// are slash-separated paths after relative-reference resolution against
// the including document's directory.
type Resolver func(location string) ([]byte, error)

// Loader compiles xs:import/xs:include graphs into a single Schema. The
// zero value is not useful; construct one with a Resolver (FileResolver
// for disk-rooted loads, or a map-backed resolver in tests).
type Loader struct {
	// Resolve fetches a schema document by location. Required.
	Resolve Resolver
}

// FileResolver resolves locations as filesystem paths relative to root
// (or as-is when root is empty). Locations are slash paths; they are
// converted for the host OS.
func FileResolver(root string) Resolver {
	return func(location string) ([]byte, error) {
		p := filepath.FromSlash(location)
		if root != "" && !filepath.IsAbs(p) {
			p = filepath.Join(root, p)
		}
		return os.ReadFile(p)
	}
}

// LoadSchemaFile compiles the schema rooted at path, following
// xs:include and xs:import directives relative to each document's
// directory, into one Schema.
func LoadSchemaFile(pathname string) (*Schema, error) {
	dir, base := filepath.Split(pathname)
	ld := Loader{Resolve: FileResolver(dir)}
	return ld.Load(filepath.ToSlash(base))
}

// Load compiles the schema graph rooted at location. Every reachable
// document contributes its global declarations to one Schema; a document
// included from several places is compiled once (which also makes
// include cycles benign). Errors carry the location of the offending
// document.
func (l *Loader) Load(location string) (*Schema, error) {
	if l.Resolve == nil {
		return nil, fmt.Errorf("xsd: Loader has no Resolver")
	}
	s := newSchema()
	loaded := map[string]bool{}
	if err := l.load(s, location, "", loaded); err != nil {
		return nil, err
	}
	if err := s.resolve(); err != nil {
		return nil, err
	}
	return s, nil
}

// load fetches, parses and accumulates one document, then recurses into
// its import/include directives depth-first.
func (l *Loader) load(s *Schema, location, fromFile string, loaded map[string]bool) error {
	norm := normalizeLocation(location)
	if loaded[norm] {
		return nil // already compiled: shared includes and cycles are benign
	}
	loaded[norm] = true
	src, err := l.Resolve(norm)
	if err != nil {
		msg := fmt.Sprintf("cannot resolve schema location %q: %s", location, err)
		if fromFile != "" {
			msg = fmt.Sprintf("cannot resolve schema location %q (referenced from %s): %s", location, fromFile, err)
		}
		return &SchemaError{File: fromFile, Msg: msg}
	}
	doc, err := xmldom.ParseString(string(src))
	if err != nil {
		return &SchemaError{File: norm, Msg: "parse error: " + err.Error()}
	}
	var refs []*xmldom.Node
	if err := s.parseInto(doc, norm, &refs); err != nil {
		return err
	}
	for _, ref := range refs {
		loc := ref.AttrValue("schemaLocation")
		if loc == "" {
			if ref.Name == "include" {
				return &SchemaError{File: norm, Node: ref, Msg: "include requires a schemaLocation"}
			}
			continue // xs:import without a location declares intent only
		}
		if err := l.load(s, resolveRef(norm, loc), norm, loaded); err != nil {
			return err
		}
	}
	return nil
}

// resolveRef resolves a schemaLocation reference against the directory
// of the document that contains it.
func resolveRef(base, ref string) string {
	if path.IsAbs(ref) || strings.Contains(ref, "://") {
		return ref
	}
	dir := path.Dir(base)
	if dir == "." {
		return ref
	}
	return path.Join(dir, ref)
}

// normalizeLocation collapses "."/".." segments so the same document
// reached through different include chains is loaded once.
func normalizeLocation(loc string) string {
	if strings.Contains(loc, "://") {
		return loc
	}
	return path.Clean(loc)
}

// SourceFiles lists the distinct locations that contributed declarations
// to the schema (sorted; empty for single-document parses with no
// location).
func (s *Schema) SourceFiles() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range s.fileByDoc {
		if f != "" && !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// DeclFile reports the source file of a global declaration, e.g.
// DeclFile("element", "sale"). Empty when unknown or single-document.
func (s *Schema) DeclFile(kind, name string) string {
	return s.declFile[kind+" "+name]
}
