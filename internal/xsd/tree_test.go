package xsd

import (
	"strings"
	"testing"
)

func TestTreeRendering(t *testing.T) {
	s := mustSchema(t)
	out := Tree(s, TreeOptions{})
	for _, want := range []string{
		"goldmodel\n",
		"├─ factclasses",
		"factclass [1..*]",
		"sharedagg [0..*]",
		"dimclasses [0..1]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
	// The plain tree omits attributes.
	if strings.Contains(out, "@id") {
		t.Error("attributes rendered without ShowAttributes")
	}
}

func TestTreeWithAttributes(t *testing.T) {
	s := mustSchema(t)
	out := Tree(s, TreeOptions{ShowAttributes: true})
	for _, want := range []string{
		"@id : xsd:ID (required)",
		"@rolea : Multiplicity* (default \"M\")", // user-defined type marked
		"@istime : xsd:boolean (default \"false\")",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
}

func TestTreeChoiceAndRepeatedGroups(t *testing.T) {
	src := sch(`<xsd:element name="e"><xsd:complexType>
		<xsd:sequence>
			<xsd:choice><xsd:element name="a"/><xsd:element name="b"/></xsd:choice>
			<xsd:sequence minOccurs="0" maxOccurs="unbounded"><xsd:element name="k"/></xsd:sequence>
		</xsd:sequence>
	</xsd:complexType></xsd:element>`)
	s, err := ParseSchemaString(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Tree(s, TreeOptions{})
	if !strings.Contains(out, "(choice)") {
		t.Errorf("choice not rendered:\n%s", out)
	}
	if !strings.Contains(out, "(sequence) [0..*]") {
		t.Errorf("repeated group not rendered:\n%s", out)
	}
}

func TestTreeGeneralConstructs(t *testing.T) {
	src := sch(`
		<xsd:element name="head" type="xsd:string" abstract="true"/>
		<xsd:element name="m1" type="xsd:string" substitutionGroup="head"/>
		<xsd:element name="m2" type="xsd:string" substitutionGroup="head"/>
		<xsd:element name="root"><xsd:complexType>
			<xsd:sequence>
				<xsd:element ref="head" maxOccurs="unbounded"/>
				<xsd:element name="mix">
					<xsd:simpleType><xsd:union memberTypes="xsd:int xsd:boolean"/></xsd:simpleType>
				</xsd:element>
				<xsd:element name="nums">
					<xsd:simpleType><xsd:list itemType="xsd:int"/></xsd:simpleType>
				</xsd:element>
				<xsd:any namespace="##other" processContents="lax" minOccurs="0" maxOccurs="unbounded"/>
			</xsd:sequence>
			<xsd:attribute name="opts">
				<xsd:simpleType><xsd:list itemType="xsd:NMTOKEN"/></xsd:simpleType>
			</xsd:attribute>
			<xsd:anyAttribute processContents="skip"/>
		</xsd:complexType></xsd:element>`)
	s, err := ParseSchemaString(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Tree(s, TreeOptions{ShowAttributes: true})
	for _, want := range []string{
		"head : string (abstract) <= m1 | m2", // substitution members on the head
		"mix : union(int | boolean)",
		"nums : list of int",
		"(any ##other lax) [0..*]",
		"@opts : list of NMTOKEN",
		"@* (anyAttribute ##any skip)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
}
