package xsd

import (
	"fmt"

	"goldweb/internal/xmldom"
)

// SchemaIssue is one finding of the schema quality checker.
type SchemaIssue struct {
	Severity string // "error" or "warning"
	Where    string // schema path
	Msg      string
}

func (i SchemaIssue) String() string {
	return fmt.Sprintf("%s: %s: %s", i.Severity, i.Where, i.Msg)
}

// CheckSchema performs a quality review of a schema document, mirroring
// the IBM XML Schema Quality Checker step of the paper's workflow: it
// reports structural rule violations and, beyond what ParseSchema
// enforces, semantic problems such as invalid default values, enumeration
// values that do not conform to the base type, and keyrefs that do not
// resolve to a key.
func CheckSchema(doc *xmldom.Node) []SchemaIssue {
	var issues []SchemaIssue
	add := func(sev, where, format string, args ...interface{}) {
		issues = append(issues, SchemaIssue{Severity: sev, Where: where, Msg: fmt.Sprintf(format, args...)})
	}
	s, err := ParseSchema(doc)
	if err != nil {
		where := "/"
		if se, ok := err.(*SchemaError); ok && se.Node != nil {
			where = se.Node.Path()
		}
		add("error", where, "%v", err)
		return issues
	}
	// Enumeration values and defaults must conform to their types.
	for _, st := range s.SimpleTypes {
		for _, e := range st.Enum {
			if st.base != nil {
				if err := checkSimpleValue(st.base, e); err != nil {
					add("error", st.src.Path(), "enumeration value %q violates base type %s: %v", e, st.Base, err)
				}
			}
		}
		if st.Length != nil && (st.MinLength != nil || st.MaxLength != nil) {
			add("warning", st.src.Path(), "type %s mixes length with minLength/maxLength", typeLabel(st))
		}
		if st.MinInclusive != nil && st.MaxInclusive != nil && *st.MinInclusive > *st.MaxInclusive {
			add("error", st.src.Path(), "type %s has minInclusive > maxInclusive", typeLabel(st))
		}
		if st.Base != "" && len(st.Enum) == 0 && len(st.Patterns) == 0 && st.Length == nil &&
			st.MinLength == nil && st.MaxLength == nil && st.MinInclusive == nil &&
			st.MaxInclusive == nil && st.MinExclusive == nil && st.MaxExclusive == nil &&
			st.TotalDigits == nil && st.FractionDigits == nil && st.WhiteSpace == "" {
			add("warning", st.src.Path(), "type %s restricts %s without any facet", typeLabel(st), st.Base)
		}
	}
	// Walk declarations.
	var walkDecl func(d *ElementDecl, where string)
	var walkCT func(ct *ComplexType, where string)
	var walkPart func(p *Particle, where string, names map[string]int)
	walkPart = func(p *Particle, where string, names map[string]int) {
		if p == nil {
			return
		}
		if p.Kind == PElement {
			names[p.Elem.Name]++
			walkDecl(p.Elem, where+"/"+p.Elem.Name)
			return
		}
		// A fresh name scope per nested group is a simplification; same-
		// name siblings inside one group are the common UPA hazard.
		sub := map[string]int{}
		for _, c := range p.Children {
			walkPart(c, where, sub)
		}
		for name, n := range sub {
			if n > 1 && p.Kind == PChoice {
				add("warning", where, "choice contains element %s %d times (ambiguous content model)", name, n)
			}
		}
	}
	walkCT = func(ct *ComplexType, where string) {
		for _, ad := range ct.Attributes {
			if ad.HasDefault && ad.Type != nil {
				if err := checkSimpleValue(ad.Type, ad.Default); err != nil {
					add("error", where, "default value of attribute %s violates its type: %v", ad.Name, err)
				}
			}
			if ad.HasFixed && ad.Type != nil {
				if err := checkSimpleValue(ad.Type, ad.Fixed); err != nil {
					add("error", where, "fixed value of attribute %s violates its type: %v", ad.Name, err)
				}
			}
			if ad.Type != nil && ad.Type.rootKind() == btID && ad.Use != "required" {
				add("warning", where, "ID attribute %s should be required", ad.Name)
			}
		}
		walkPart(ct.Content, where, map[string]int{})
	}
	seenCT := map[*ComplexType]bool{}
	walkDecl = func(d *ElementDecl, where string) {
		if d.Complex != nil && !seenCT[d.Complex] {
			seenCT[d.Complex] = true
			walkCT(d.Complex, where)
		}
		names := map[ConstraintKind]map[string]bool{
			KeyConstraint: {}, UniqueConstraint: {}, KeyrefConstraint: {},
		}
		for _, ic := range d.Constraints {
			if names[ic.Kind][ic.Name] {
				add("error", where, "duplicate %s constraint %s", ic.Kind, ic.Name)
			}
			names[ic.Kind][ic.Name] = true
		}
		for _, ic := range d.Constraints {
			if ic.Kind != KeyrefConstraint {
				continue
			}
			if !names[KeyConstraint][ic.Refer] && !names[UniqueConstraint][ic.Refer] {
				add("error", where, "keyref %s refers to undeclared key %s", ic.Name, ic.Refer)
			}
		}
	}
	for name, d := range s.Elements {
		walkDecl(d, "/"+name)
	}
	if len(s.Elements) == 0 {
		add("warning", "/", "schema declares no global elements; no document can be validated")
	}
	return issues
}

// CheckSchemaString parses and checks schema text.
func CheckSchemaString(src string) []SchemaIssue {
	doc, err := xmldom.ParseString(src)
	if err != nil {
		return []SchemaIssue{{Severity: "error", Where: "/", Msg: err.Error()}}
	}
	return CheckSchema(doc)
}
