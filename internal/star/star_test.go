package star

import (
	"strings"
	"testing"

	"goldweb/internal/core"
	"goldweb/internal/olap"
)

func TestStarDDLForSales(t *testing.T) {
	e, err := Generate(core.SampleSales(), Options{Style: Star})
	if err != nil {
		t.Fatal(err)
	}
	ddl := e.DDL()
	for _, want := range []string{
		"CREATE TABLE dim_time (",
		"CREATE TABLE dim_product (",
		"CREATE TABLE dim_store (",
		"CREATE TABLE fact_sales (",
		"day_id INTEGER PRIMARY KEY",
		"month_month_name VARCHAR(255)", // flattened level attribute
		"year_year_number INTEGER",
		"qty INTEGER",
		"price DECIMAL(12,2)",
		"num_ticket VARCHAR(64)", // degenerate dimension column
		"time_day_id VARCHAR(64) NOT NULL REFERENCES dim_time(day_id)",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("star DDL missing %q\n%s", want, ddl)
		}
	}
	if strings.Contains(ddl, "total") {
		t.Error("derived measure should not be stored")
	}
	// One table per dimension + one per fact.
	if got := strings.Count(ddl, "CREATE TABLE"); got != 4 {
		t.Errorf("table count = %d", got)
	}
}

func TestSnowflakeDDLForSales(t *testing.T) {
	e, err := Generate(core.SampleSales(), Options{Style: Snowflake})
	if err != nil {
		t.Fatal(err)
	}
	ddl := e.DDL()
	for _, want := range []string{
		"CREATE TABLE dim_time (",
		"CREATE TABLE dim_time_month (",
		"CREATE TABLE dim_time_week (",
		"CREATE TABLE dim_time_year (",
		"month_month_id VARCHAR(64) NOT NULL REFERENCES dim_time_month(month_id)", // complete → NOT NULL
		"week_week_id VARCHAR(64) REFERENCES dim_time_week(week_id)",              // non-complete → nullable
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("snowflake DDL missing %q\n%s", want, ddl)
		}
	}
	// Referenced tables must be created before referencing ones.
	for _, pair := range [][2]string{
		{"CREATE TABLE dim_time_year (", "CREATE TABLE dim_time_month ("},
		{"CREATE TABLE dim_time_month (", "CREATE TABLE dim_time ("},
	} {
		if strings.Index(ddl, pair[0]) > strings.Index(ddl, pair[1]) {
			t.Errorf("%q should precede %q", pair[0], pair[1])
		}
	}
}

func TestStarRejectsNonStrict(t *testing.T) {
	if _, err := Generate(core.SampleHospital(), Options{Style: Star}); err == nil ||
		!strings.Contains(err.Error(), "non-strict") {
		t.Errorf("err = %v", err)
	}
}

func TestSnowflakeHandlesNonStrictAndManyToMany(t *testing.T) {
	e, err := Generate(core.SampleHospital(), Options{Style: Snowflake})
	if err != nil {
		t.Fatal(err)
	}
	ddl := e.DDL()
	// Non-strict Patient → RiskGroup becomes a bridge table.
	if !strings.Contains(ddl, "CREATE TABLE br_patient_patient_riskgroup (") {
		t.Errorf("hierarchy bridge missing:\n%s", ddl)
	}
	// Many-to-many Admissions ↔ Diagnosis becomes a fact bridge.
	if !strings.Contains(ddl, "CREATE TABLE br_admissions_diagnosis (") {
		t.Errorf("fact bridge missing:\n%s", ddl)
	}
	// The fact table must not carry a direct diagnosis FK.
	factStart := strings.Index(ddl, "CREATE TABLE fact_admissions (")
	factEnd := strings.Index(ddl[factStart:], ");")
	factSQL := ddl[factStart : factStart+factEnd]
	if strings.Contains(factSQL, "diagnosis") {
		t.Errorf("fact table references m2m dimension directly:\n%s", factSQL)
	}
}

func TestPrefix(t *testing.T) {
	e, err := Generate(core.SampleSales(), Options{Style: Star, Prefix: "dw_"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.DDL(), "CREATE TABLE dw_fact_sales (") {
		t.Errorf("prefix not applied:\n%s", e.DDL())
	}
}

func TestIdentSanitization(t *testing.T) {
	cases := map[string]string{
		"Sales":      "sales",
		"num ticket": "num_ticket",
		"Qty/Value":  "qty_value",
		"1stLevel":   "t_1stlevel",
		"--":         "x",
		"Árbol":      "rbol",
	}
	for in, want := range cases {
		if got := ident(in); got != want {
			t.Errorf("ident(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDMLGeneration(t *testing.T) {
	m := core.SampleHospital()
	ds := olap.NewDataset(m)
	time := ds.Dim("Time")
	time.AddMember("", "d1", "day 1")
	time.AddMember("Month", "m1", "Jan")
	time.MustLink("", "d1", "Month", "m1")
	patient := ds.Dim("Patient")
	patient.AddMember("", "p1", "Alice").Set("birth_date", "1980-01-01")
	patient.AddMember("RiskGroup", "low", "Low")
	patient.AddMember("RiskGroup", "high", "High")
	patient.MustLink("", "p1", "RiskGroup", "low")
	patient.MustLink("", "p1", "RiskGroup", "high")
	diag := ds.Dim("Diagnosis")
	diag.AddMember("", "dx1", "Flu")
	diag.AddMember("", "dx2", "Asthma")
	diag.AddMember("DiagnosisGroup", "resp", "Respiratory")
	diag.MustLink("", "dx1", "DiagnosisGroup", "resp")
	diag.MustLink("", "dx2", "DiagnosisGroup", "resp")
	ward := ds.Dim("Ward")
	ward.AddMember("", "w1", "North")

	adm := ds.Fact("Admissions")
	adm.MustAdd(olap.Row{
		Coords: map[string][]string{
			"Time": {"d1"}, "Patient": {"p1"}, "Ward": {"w1"}, "Diagnosis": {"dx1", "dx2"}},
		Measures:   map[string]float64{"stay_days": 5, "cost": 1200.5},
		Degenerate: map[string]string{"admission_id": "A1"},
	})
	treat := ds.Fact("Treatments")
	treat.MustAdd(olap.Row{
		Coords:   map[string][]string{"Time": {"d1"}, "Patient": {"p1"}, "Ward": {"w1"}},
		Measures: map[string]float64{"dose_units": 2, "duration_min": 30},
	})

	e, err := Generate(m, Options{Style: Snowflake})
	if err != nil {
		t.Fatal(err)
	}
	stmts, err := GenerateDML(ds, e)
	if err != nil {
		t.Fatal(err)
	}
	script := strings.Join(stmts, "\n")
	for _, want := range []string{
		"INSERT INTO dim_time_month (month_id, month_name) VALUES ('m1', 'Jan');",
		"INSERT INTO dim_patient (patient_id, patient_name, birth_date) VALUES ('p1', 'Alice', '1980-01-01');",
		// Non-strict membership rows.
		"INSERT INTO br_patient_patient_riskgroup (patient_patient_id, riskgroup_risk_id) VALUES ('p1', 'low');",
		"INSERT INTO br_patient_patient_riskgroup (patient_patient_id, riskgroup_risk_id) VALUES ('p1', 'high');",
		// Fact row with degenerate dimension.
		"admission_id",
		"'A1'",
		// Many-to-many bridge rows.
		"INSERT INTO br_admissions_diagnosis (fact_id, diagnosis_diagnosis_id) VALUES (1, 'dx1');",
		"INSERT INTO br_admissions_diagnosis (fact_id, diagnosis_diagnosis_id) VALUES (1, 'dx2');",
	} {
		if !strings.Contains(script, want) {
			t.Errorf("DML missing %q\n%s", want, script)
		}
	}
	// Strict edge as FK value.
	if !strings.Contains(script, "'d1', 'day 1', 'm1'") && !strings.Contains(script, "month_month_id") {
		t.Errorf("terminal row lacks month FK:\n%s", script)
	}
	// DML for a star export is refused.
	if _, err := GenerateDML(ds, &Export{Style: Star}); err == nil {
		t.Error("star DML should be refused")
	}
}

func TestSQLQuoteEscapes(t *testing.T) {
	if got := sqlQuote("O'Brien"); got != "'O''Brien'" {
		t.Errorf("quote = %s", got)
	}
}
