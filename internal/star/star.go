// Package star implements the paper's export modules: transformation
// rules that turn a conceptual multidimensional model into the structures
// of a target tool — here, relational star or snowflake schemas (DDL) and
// the corresponding data loads (DML) from an olap.Dataset. The paper uses
// this step ("semi-automatically generate the implementation of a MD
// model into a target commercial OLAP tool") to check the validity of the
// conceptual approach.
package star

import (
	"fmt"
	"sort"
	"strings"

	"goldweb/internal/core"
	"goldweb/internal/olap"
)

// Style selects the relational layout.
type Style int

// The two classic layouts.
const (
	// Star flattens every classification hierarchy into one table per
	// dimension (Kimball-style).
	Star Style = iota
	// Snowflake normalizes hierarchy levels into separate tables with
	// foreign keys along the DAG edges.
	Snowflake
)

func (s Style) String() string {
	if s == Star {
		return "star"
	}
	return "snowflake"
}

// Options configure schema generation.
type Options struct {
	Style Style
	// Prefix is prepended to every table name (default none).
	Prefix string
}

// Export is a generated relational schema.
type Export struct {
	Style      Style
	Statements []string // CREATE TABLE statements in dependency order
	// Tables maps logical names ("dim:Time", "fact:Sales",
	// "bridge:Sales:Diagnosis", "level:Time:Month") to table names.
	Tables map[string]string
}

// DDL returns the schema as a single SQL script.
func (e *Export) DDL() string {
	return strings.Join(e.Statements, "\n\n") + "\n"
}

// sqlType maps a conceptual attribute type to SQL.
func sqlType(t string) string {
	switch strings.ToLower(t) {
	case "integer", "int", "oid":
		return "INTEGER"
	case "currency", "decimal", "money":
		return "DECIMAL(12,2)"
	case "float", "double", "number":
		return "DOUBLE PRECISION"
	case "date":
		return "DATE"
	case "datetime", "timestamp":
		return "TIMESTAMP"
	case "boolean", "bool":
		return "BOOLEAN"
	default:
		return "VARCHAR(255)"
	}
}

// ident turns a conceptual name into a SQL identifier.
func ident(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	s := strings.Trim(b.String(), "_")
	if s == "" {
		s = "x"
	}
	if s[0] >= '0' && s[0] <= '9' {
		s = "t_" + s
	}
	return s
}

// Generate produces the relational schema for a model.
func Generate(m *core.Model, opts Options) (*Export, error) {
	if errs := m.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("star: model is not well-formed: %v", errs[0])
	}
	e := &Export{Style: opts.Style, Tables: map[string]string{}}
	g := &generator{m: m, opts: opts, e: e}
	for _, d := range m.Dims {
		if err := g.dimension(d); err != nil {
			return nil, err
		}
	}
	for _, f := range m.Facts {
		if err := g.fact(f); err != nil {
			return nil, err
		}
	}
	return e, nil
}

type generator struct {
	m    *core.Model
	opts Options
	e    *Export
}

func (g *generator) table(logical, name string) string {
	full := g.opts.Prefix + name
	g.e.Tables[logical] = full
	return full
}

type column struct {
	name, typ, constraint string
}

func (g *generator) emit(table string, cols []column, extra ...string) {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (\n", table)
	lines := make([]string, 0, len(cols)+len(extra))
	for _, c := range cols {
		line := "  " + c.name + " " + c.typ
		if c.constraint != "" {
			line += " " + c.constraint
		}
		lines = append(lines, line)
	}
	for _, x := range extra {
		lines = append(lines, "  "+x)
	}
	b.WriteString(strings.Join(lines, ",\n"))
	b.WriteString("\n);")
	g.e.Statements = append(g.e.Statements, b.String())
}

// dimAttCols renders the attribute columns of a level/terminal.
func dimAttCols(atts []*core.DimAtt, prefix string) []column {
	var cols []column
	for _, a := range atts {
		c := column{name: prefix + ident(a.Name), typ: sqlType(a.Type)}
		if a.IsOID && prefix == "" {
			c.constraint = "PRIMARY KEY"
		}
		cols = append(cols, c)
	}
	return cols
}

func oidCol(atts []*core.DimAtt) string {
	for _, a := range atts {
		if a.IsOID {
			return ident(a.Name)
		}
	}
	return ""
}

// dimension emits the table(s) of one dimension.
func (g *generator) dimension(d *core.DimClass) error {
	if g.opts.Style == Snowflake {
		return g.snowflakeDimension(d)
	}
	// Star: flatten. Non-strict edges cannot be flattened into one row
	// per leaf member.
	for _, assocs := range append([][]*core.Association{d.Associations}, levelAssocs(d)...) {
		for _, a := range assocs {
			if a.NonStrict() {
				return fmt.Errorf("star: dimension %s has a non-strict hierarchy; use the snowflake style", d.Name)
			}
		}
	}
	table := g.table("dim:"+d.Name, "dim_"+ident(d.Name))
	cols := dimAttCols(d.Atts, "")
	// Each level contributes its attributes prefixed by the level name;
	// alternative paths simply contribute all levels once.
	for _, l := range d.Levels {
		cols = append(cols, dimAttCols(l.Atts, ident(l.Name)+"_")...)
	}
	if len(cols) == 0 {
		return fmt.Errorf("star: dimension %s has no attributes", d.Name)
	}
	g.emit(table, cols)
	return nil
}

func levelAssocs(d *core.DimClass) [][]*core.Association {
	var out [][]*core.Association
	for _, l := range d.Levels {
		out = append(out, l.Associations)
	}
	return out
}

// snowflakeDimension emits one table per level plus the terminal table,
// with FK columns for strict edges and bridge tables for non-strict ones.
func (g *generator) snowflakeDimension(d *core.DimClass) error {
	// Emit levels topologically: parents (higher levels) first.
	order, err := topoLevels(d)
	if err != nil {
		return err
	}
	levelTable := func(levelID string) string {
		if levelID == "" {
			return g.e.Tables["dim:"+d.Name]
		}
		return g.e.Tables["level:"+d.Name+":"+d.Level(levelID).Name]
	}
	for i := 0; i < len(order); i++ { // top-first: FK targets exist before referees
		lid := order[i]
		var atts []*core.DimAtt
		var assocs []*core.Association
		var table, owner string
		if lid == "" {
			atts, assocs = d.Atts, d.Associations
			table = g.table("dim:"+d.Name, "dim_"+ident(d.Name))
			owner = d.Name
		} else {
			l := d.Level(lid)
			atts, assocs = l.Atts, l.Associations
			table = g.table("level:"+d.Name+":"+l.Name, "dim_"+ident(d.Name)+"_"+ident(l.Name))
			owner = l.Name
		}
		cols := dimAttCols(atts, "")
		var extra []string
		for _, a := range assocs {
			child := d.Level(a.Child)
			childOID := oidCol(child.Atts)
			parentTable := levelTable(a.Child)
			if a.NonStrict() {
				// Bridge table between this level and the parent level.
				bridge := g.table("bridge:"+d.Name+":"+owner+":"+child.Name,
					"br_"+ident(d.Name)+"_"+ident(owner)+"_"+ident(child.Name))
				selfOID := oidCol(atts)
				g.emit(bridge, []column{
					{name: ident(owner) + "_" + selfOID, typ: "VARCHAR(64)",
						constraint: "NOT NULL REFERENCES " + table + "(" + selfOID + ")"},
					{name: ident(child.Name) + "_" + childOID, typ: "VARCHAR(64)",
						constraint: "NOT NULL REFERENCES " + parentTable + "(" + childOID + ")"},
				}, "PRIMARY KEY ("+ident(owner)+"_"+selfOID+", "+ident(child.Name)+"_"+childOID+")")
				continue
			}
			col := ident(child.Name) + "_" + childOID
			nullable := "REFERENCES " + parentTable + "(" + childOID + ")"
			if a.Completeness {
				nullable = "NOT NULL " + nullable
			}
			cols = append(cols, column{name: col, typ: "VARCHAR(64)", constraint: nullable})
		}
		// Bridge tables reference this table, so emit it before appending
		// the statements created above... CREATE order: table first.
		// Reorder: emit main table, then move any bridge statements after.
		g.emitBefore(table, cols, extra)
	}
	return nil
}

// emitBefore emits the table ensuring it appears before bridge tables that
// reference it (bridges were appended first inside the loop).
func (g *generator) emitBefore(table string, cols []column, extra []string) {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (\n", table)
	lines := make([]string, 0, len(cols)+len(extra))
	for _, c := range cols {
		line := "  " + c.name + " " + c.typ
		if c.constraint != "" {
			line += " " + c.constraint
		}
		lines = append(lines, line)
	}
	for _, x := range extra {
		lines = append(lines, "  "+x)
	}
	b.WriteString(strings.Join(lines, ",\n"))
	b.WriteString("\n);")
	// Find trailing bridge statements referencing this table and insert
	// the table before them.
	stmt := b.String()
	insertAt := len(g.e.Statements)
	for i := len(g.e.Statements) - 1; i >= 0; i-- {
		if strings.Contains(g.e.Statements[i], "REFERENCES "+table+"(") {
			insertAt = i
		} else {
			break
		}
	}
	g.e.Statements = append(g.e.Statements, "")
	copy(g.e.Statements[insertAt+1:], g.e.Statements[insertAt:])
	g.e.Statements[insertAt] = stmt
}

// topoLevels orders "" (terminal) and all level ids so that every edge
// goes from earlier to later (leaf to top).
func topoLevels(d *core.DimClass) ([]string, error) {
	visited := map[string]int{} // 1 visiting, 2 done
	var out []string
	var visit func(id string) error
	edgesOf := func(id string) []*core.Association {
		if id == "" {
			return d.Associations
		}
		if l := d.Level(id); l != nil {
			return l.Associations
		}
		return nil
	}
	visit = func(id string) error {
		switch visited[id] {
		case 1:
			return fmt.Errorf("star: dimension %s hierarchy has a cycle", d.Name)
		case 2:
			return nil
		}
		visited[id] = 1
		for _, e := range edgesOf(id) {
			if err := visit(e.Child); err != nil {
				return err
			}
		}
		visited[id] = 2
		out = append(out, id)
		return nil
	}
	if err := visit(""); err != nil {
		return nil, err
	}
	// Unreached levels (validated models have none) go first so anything
	// referencing them still finds a table.
	var orphans []string
	for _, l := range d.Levels {
		if visited[l.ID] != 2 {
			orphans = append(orphans, l.ID)
		}
	}
	// Post-order emits a node after everything it references upward, so
	// out is top-first: highest levels first, the terminal level ("") last.
	return append(orphans, out...), nil
}

// fact emits the fact table (and bridge tables for many-to-many
// dimensions).
func (g *generator) fact(f *core.FactClass) error {
	table := g.table("fact:"+f.Name, "fact_"+ident(f.Name))
	var cols []column
	var pk []string
	var bridges []func()
	for _, agg := range f.SharedAggs {
		d := g.m.Dim(agg.DimClass)
		dimTable := g.e.Tables["dim:"+d.Name]
		oid := oidCol(d.Atts)
		if oid == "" {
			return fmt.Errorf("star: dimension %s has no {OID} attribute", d.Name)
		}
		if agg.ManyToMany() {
			dCopy, oidCopy, dimTableCopy := d, oid, dimTable
			bridges = append(bridges, func() {
				bridge := g.table("bridge:"+f.Name+":"+dCopy.Name,
					"br_"+ident(f.Name)+"_"+ident(dCopy.Name))
				g.emit(bridge, []column{
					{name: "fact_id", typ: "BIGINT", constraint: "NOT NULL REFERENCES " + table + "(fact_id)"},
					{name: ident(dCopy.Name) + "_" + oidCopy, typ: "VARCHAR(64)",
						constraint: "NOT NULL REFERENCES " + dimTableCopy + "(" + oidCopy + ")"},
				}, "PRIMARY KEY (fact_id, "+ident(dCopy.Name)+"_"+oidCopy+")")
			})
			continue
		}
		col := ident(d.Name) + "_" + oid
		cols = append(cols, column{name: col, typ: "VARCHAR(64)",
			constraint: "NOT NULL REFERENCES " + dimTable + "(" + oid + ")"})
		pk = append(pk, col)
	}
	// Surrogate key: needed when many-to-many bridges exist; also keeps
	// degenerate dimensions queryable.
	cols = append([]column{{name: "fact_id", typ: "BIGINT", constraint: "PRIMARY KEY"}}, cols...)
	for _, a := range f.Atts {
		if a.IsDerived {
			continue // computed, not stored
		}
		typ := sqlType(a.Type)
		if a.IsOID {
			typ = "VARCHAR(64)" // degenerate dimension column
		}
		cols = append(cols, column{name: ident(a.Name), typ: typ})
	}
	g.emit(table, cols)
	for _, emitBridge := range bridges {
		emitBridge()
	}
	_ = pk
	return nil
}

// ---- data load (DML) ----

// GenerateDML renders INSERT statements loading an olap.Dataset into a
// snowflake schema previously produced by Generate. (The star style would
// require flattening joins; the snowflake load is the faithful one and is
// what the tests and examples exercise.)
func GenerateDML(ds *olap.Dataset, e *Export) ([]string, error) {
	if e.Style != Snowflake {
		return nil, fmt.Errorf("star: DML generation requires the snowflake style")
	}
	m := ds.Model()
	var out []string
	for _, d := range m.Dims {
		stmts, err := dimDML(ds, e, d)
		if err != nil {
			return nil, err
		}
		out = append(out, stmts...)
	}
	for _, f := range m.Facts {
		stmts, err := factDML(ds, e, f, m)
		if err != nil {
			return nil, err
		}
		out = append(out, stmts...)
	}
	return out, nil
}

func sqlQuote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

func dimDML(ds *olap.Dataset, e *Export, d *core.DimClass) ([]string, error) {
	dd := ds.Dim(d.Name)
	var out []string
	// Levels top-down so FK targets exist.
	order, err := topoLevels(d)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(order); i++ { // top-first: parents inserted before children reference them
		lid := order[i]
		var atts []*core.DimAtt
		var assocs []*core.Association
		var table, levelName string
		if lid == "" {
			atts, assocs = d.Atts, d.Associations
			table = e.Tables["dim:"+d.Name]
			levelName = ""
		} else {
			l := d.Level(lid)
			atts, assocs = l.Atts, l.Associations
			table = e.Tables["level:"+d.Name+":"+l.Name]
			levelName = l.Name
		}
		members := dd.Members(levelName)
		sort.Slice(members, func(a, b int) bool { return members[a].Key < members[b].Key })
		for _, mem := range members {
			cols := make([]string, 0, len(atts))
			vals := make([]string, 0, len(atts))
			for _, a := range atts {
				cols = append(cols, ident(a.Name))
				switch {
				case a.IsOID:
					vals = append(vals, sqlQuote(mem.Key))
				case a.IsD:
					vals = append(vals, sqlQuote(mem.Name))
				default:
					vals = append(vals, sqlQuote(mem.Attrs[a.Name]))
				}
			}
			var bridgeRows []string
			ownerName := levelName
			if ownerName == "" {
				ownerName = d.Name
			}
			for _, assoc := range assocs {
				child := d.Level(assoc.Child)
				parents := mem.ParentsAt(assoc.Child)
				if assoc.NonStrict() {
					bridge := e.Tables["bridge:"+d.Name+":"+ownerName+":"+child.Name]
					selfOID := oidCol(atts)
					for _, p := range parents {
						bridgeRows = append(bridgeRows, fmt.Sprintf(
							"INSERT INTO %s (%s_%s, %s_%s) VALUES (%s, %s);",
							bridge, ident(ownerName), selfOID, ident(child.Name), oidCol(child.Atts),
							sqlQuote(mem.Key), sqlQuote(p.Key)))
					}
					continue
				}
				cols = append(cols, ident(child.Name)+"_"+oidCol(child.Atts))
				if len(parents) == 0 {
					vals = append(vals, "NULL")
				} else {
					vals = append(vals, sqlQuote(parents[0].Key))
				}
			}
			out = append(out, fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s);",
				table, strings.Join(cols, ", "), strings.Join(vals, ", ")))
			out = append(out, bridgeRows...)
		}
	}
	return out, nil
}

func factDML(ds *olap.Dataset, e *Export, f *core.FactClass, m *core.Model) ([]string, error) {
	fd := ds.Fact(f.Name)
	table := e.Tables["fact:"+f.Name]
	var out []string
	for i, row := range fd.Rows() {
		cols := []string{"fact_id"}
		vals := []string{fmt.Sprint(i + 1)}
		var bridgeStmts []string
		for _, agg := range f.SharedAggs {
			d := m.Dim(agg.DimClass)
			oid := oidCol(d.Atts)
			keys := row.Coords[d.Name]
			if agg.ManyToMany() {
				bridge := e.Tables["bridge:"+f.Name+":"+d.Name]
				for _, k := range keys {
					bridgeStmts = append(bridgeStmts, fmt.Sprintf(
						"INSERT INTO %s (fact_id, %s_%s) VALUES (%d, %s);",
						bridge, ident(d.Name), oid, i+1, sqlQuote(k)))
				}
				continue
			}
			cols = append(cols, ident(d.Name)+"_"+oid)
			vals = append(vals, sqlQuote(keys[0]))
		}
		for _, a := range f.Atts {
			if a.IsDerived {
				continue
			}
			if a.IsOID {
				cols = append(cols, ident(a.Name))
				vals = append(vals, sqlQuote(row.Degenerate[a.Name]))
				continue
			}
			cols = append(cols, ident(a.Name))
			vals = append(vals, fmt.Sprint(row.Measures[a.Name]))
		}
		out = append(out, fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s);",
			table, strings.Join(cols, ", "), strings.Join(vals, ", ")))
		out = append(out, bridgeStmts...)
	}
	return out, nil
}
