package xpath_test

import (
	"flag"
	"os"
	"strings"
	"testing"

	"goldweb/internal/xpath"
)

var updatePlans = flag.Bool("update", false, "rewrite the golden plan file")

// planExprs are representative expressions from the builtin single- and
// multi-page stylesheets plus the planner's decision corners: indexed
// descendant scans, positional constants, position-free predicates,
// constant folding and type inference.
var planExprs = []string{
	// From the builtin stylesheets.
	"goldmodel/dimclasses/dimclass",
	"//dimclass[@id = current()/@dimclass]",
	"dimatts/dimatt",
	"key('dim-by-id', @dimclass)",
	"count(dimclasses/dimclass)",
	"@name",
	"concat($base, '-', position(), '.html')",
	"not(@virtual = 'yes')",
	// Planner decision corners.
	"//dimclass",
	"descendant::dimatt",
	"/goldmodel",
	"dimclass[1]",
	"dimclass[last()]",
	"dimclass[@id]",
	"dimclass[position() = 2]",
	"*[2 + 3]",
	"true() and @x",
	"@x or false()",
	"1 + 2 * 3",
	"string-length(@name) > 0",
	"a | b | c",
	"../following-sibling::*[1]",
	"self::node()[not(@hidden)]",
}

const planGolden = "testdata/plans.want"

// TestPlanGolden pins the planner's chosen plan (stringified IR) for the
// corpus above. Regenerate with: go test ./internal/xpath -run PlanGolden -update
func TestPlanGolden(t *testing.T) {
	var b strings.Builder
	for _, src := range planExprs {
		c, err := xpath.Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		b.WriteString("=== " + src + "\n")
		b.WriteString(c.Plan())
		b.WriteString("\n")
	}
	got := b.String()
	if *updatePlans {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(planGolden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(planGolden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test -run PlanGolden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("planned IR changed (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
}
