package xpath

// Static type inference: the second stage of the compilation pipeline.
// XPath 1.0 has exactly four value types, so the lattice is flat —
// TUnknown above the four concrete types — and inference is a single
// bottom-up pass over the normalized AST. The planner uses the result
// to pick unboxed evaluation entry points (EvalBool and friends) and to
// recognize numeric predicates; consumers can query it via
// Compiled.Type.

// StaticType is the statically inferred result type of an expression.
type StaticType uint8

const (
	// TUnknown means the type depends on runtime values (variables,
	// extension functions).
	TUnknown StaticType = iota
	TNodeSet
	TBool
	TNumber
	TString
)

func (t StaticType) String() string {
	switch t {
	case TNodeSet:
		return "node-set"
	case TBool:
		return "boolean"
	case TNumber:
		return "number"
	case TString:
		return "string"
	}
	return "unknown"
}

// callResultTypes maps function names to their result types. It covers
// the core library plus the XSLT engine functions registered through
// Context.Funcs (key, current, document, ...), mirroring the whitelist
// stance of staticallyNonNumeric: a name is taken to mean the standard
// function.
var callResultTypes = map[string]StaticType{
	// node-set producing
	"id": TNodeSet, "key": TNodeSet, "current": TNodeSet, "document": TNodeSet,
	// numbers
	"last": TNumber, "position": TNumber, "count": TNumber,
	"string-length": TNumber, "number": TNumber, "sum": TNumber,
	"floor": TNumber, "ceiling": TNumber, "round": TNumber,
	// strings
	"string": TString, "concat": TString, "substring-before": TString,
	"substring-after": TString, "substring": TString, "normalize-space": TString,
	"translate": TString, "local-name": TString, "namespace-uri": TString,
	"name": TString, "generate-id": TString, "format-number": TString,
	"system-property": TString, "unparsed-entity-uri": TString,
	// booleans
	"boolean": TBool, "not": TBool, "true": TBool, "false": TBool,
	"lang": TBool, "starts-with": TBool, "contains": TBool,
	"element-available": TBool, "function-available": TBool,
}

// inferType computes the static result type of a normalized expression.
func inferType(e Expr) StaticType {
	switch v := e.(type) {
	case *pathExpr, *unionExpr, *filterExpr:
		return TNodeSet
	case literalExpr:
		return TString
	case numberExpr:
		return TNumber
	case boolExpr:
		return TBool
	case varExpr:
		return TUnknown
	case *negExpr:
		return TNumber
	case *binaryExpr:
		switch v.op {
		case tokAnd, tokOr, tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
			return TBool
		}
		return TNumber
	case *callExpr:
		if t, ok := callResultTypes[v.name]; ok {
			return t
		}
		return TUnknown
	}
	return TUnknown
}
