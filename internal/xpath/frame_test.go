package xpath

import (
	"reflect"
	"strings"
	"testing"

	"goldweb/internal/xmldom"
)

// TestEvalOnMatchesEval pins the shared-frame entry points to the pooled
// ones across value kinds, including re-entrant evaluation on one frame.
func TestEvalOnMatchesEval(t *testing.T) {
	doc := xmldom.MustParseString(`<r><a id="1">x</a><a id="2">y</a><b>z</b></r>`)
	f := GetFrame()
	defer PutFrame(f)
	for _, src := range []string{
		"//a",
		"count(//a) + 1",
		"concat(name(/*), '-', string(//b))",
		"//a[@id='2']",
		"boolean(//missing)",
		"(//a | //b)[last()]",
	} {
		c := MustCompile(src)
		ctx := &Context{Node: doc, Position: 1, Size: 1}
		want, err1 := c.Eval(ctx)
		got, err2 := c.EvalOn(ctx, f)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: error divergence: %v vs %v", src, err1, err2)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: Eval=%v EvalOn=%v", src, want, got)
		}
		if b1, _ := c.EvalBool(ctx); true {
			if b2, _ := c.EvalBoolOn(ctx, f); b1 != b2 {
				t.Errorf("%s: EvalBool=%v EvalBoolOn=%v", src, b1, b2)
			}
		}
		if s1, _ := c.EvalString(ctx); true {
			if s2, _ := c.EvalStringOn(ctx, f); s1 != s2 {
				t.Errorf("%s: EvalString=%q EvalStringOn=%q", src, s1, s2)
			}
		}
		if n1, err := c.EvalNumber(ctx); err == nil {
			n2, _ := c.EvalNumberOn(ctx, f)
			if n1 != n2 && !(n1 != n1 && n2 != n2) { // NaN-tolerant
				t.Errorf("%s: EvalNumber=%v EvalNumberOn=%v", src, n1, n2)
			}
		}
	}
	if len(f.ops.stack) != 0 {
		t.Fatalf("operand stack not restored: %d residual slots", len(f.ops.stack))
	}
}

func TestFrameCtlStack(t *testing.T) {
	f := GetFrame()
	n := xmldom.MustParseString(`<x/>`)
	f.PushCtl(CtlFrame{Kind: 1, Node: n, Vars: map[string]Value{"v": Number(1)}})
	f.PushCtl(CtlFrame{Kind: 2, Ret: 7})
	if f.Depth() != 2 || f.TopCtl().Kind != 2 {
		t.Fatalf("unexpected ctl stack state: depth=%d", f.Depth())
	}
	f.PopCtl()
	if f.TopCtl().Kind != 1 {
		t.Fatalf("pop did not expose outer frame")
	}
	PutFrame(f)
	g := GetFrame()
	defer PutFrame(g)
	if g.Depth() != 0 {
		t.Fatalf("pooled frame not cleared: depth=%d", g.Depth())
	}
	// The backing array must have been scrubbed on Put.
	for i := range g.Ctl[:cap(g.Ctl)] {
		if cf := &g.Ctl[:cap(g.Ctl)][i]; cf.Node != nil || cf.Vars != nil {
			t.Fatalf("pooled ctl slot %d retains references", i)
		}
	}
}

// TestDisasm pins the flat pc-addressed rendering for a program that
// exercises constants, jumps, calls, paths and predicates.
func TestDisasm(t *testing.T) {
	c := MustCompile("count(//a[@id]) > 2 and $go")
	got := c.Disasm()
	for _, want := range []string{
		"0000 ", "call count/1", "const 2", "gt", "jmp-false",
		"step descendant::a [name-index] [forward]", "pred [pos-free]",
		"var $go",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Disasm missing %q in:\n%s", want, got)
		}
	}
	// Every line is either pc-addressed or an indented sub-structure line.
	for _, line := range strings.Split(strings.TrimRight(got, "\n"), "\n") {
		trimmed := strings.TrimLeft(line, " ")
		if trimmed == "" {
			t.Errorf("blank disasm line in:\n%s", got)
		}
	}
}
