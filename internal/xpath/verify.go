package xpath

import "fmt"

// IR verification: an independent abstract interpretation over the
// planned instruction program that proves, before an expression ever
// runs, that
//
//   - every operand index (consts, names, calls, paths, filters) is in
//     bounds,
//   - every jump lands inside the program (or exactly at its end, the
//     short-circuit exit),
//   - the operand stack never underflows, every join point is reached
//     with one consistent height, and the program leaves exactly one
//     result value,
//   - the planner's precomputed maxStack is a true upper bound for the
//     program including every predicate sub-program that runs on the
//     same frame during opPath/opFilter.
//
// The walk re-derives stack effects from opcode semantics alone — it
// shares no code with the emitter in plan.go, so a bookkeeping bug
// there cannot hide itself here.

// VerifyIR statically checks the compiled program and every nested
// predicate program. It returns nil when all invariants hold.
func (c *Compiled) VerifyIR() error {
	if c.prog == nil {
		return fmt.Errorf("xpath: %q: no compiled program", c.src)
	}
	if err := verifyIRProgram(c.prog); err != nil {
		return fmt.Errorf("xpath: %q: %w", c.src, err)
	}
	return nil
}

// verifyIRProgram checks one program body; predicate sub-programs are
// verified recursively with their own maxStack bounds.
func verifyIRProgram(p *program) error {
	n := len(p.code)
	if n == 0 {
		return fmt.Errorf("empty program")
	}
	// expect[pc] is the stack height every jump into pc arrives with;
	// -1 = no jump targets this pc. Index n is the program end (the
	// short-circuit exit jumps there).
	expect := make([]int, n+1)
	for i := range expect {
		expect[i] = -1
	}
	h := 0
	maxSeen := 0
	for pc := 0; pc < n; pc++ {
		if expect[pc] >= 0 && expect[pc] != h {
			return fmt.Errorf("pc %d: join height mismatch: fall-through %d, jump %d", pc, h, expect[pc])
		}
		in := p.code[pc]
		switch in.op {
		case opConst:
			if int(in.a) < 0 || int(in.a) >= len(p.consts) {
				return fmt.Errorf("pc %d: const index %d out of range [0,%d)", pc, in.a, len(p.consts))
			}
			h++
		case opVar:
			if int(in.a) < 0 || int(in.a) >= len(p.names) {
				return fmt.Errorf("pc %d: var index %d out of range [0,%d)", pc, in.a, len(p.names))
			}
			h++
		case opPath:
			if int(in.a) < 0 || int(in.a) >= len(p.paths) {
				return fmt.Errorf("pc %d: path index %d out of range [0,%d)", pc, in.a, len(p.paths))
			}
			pl := p.paths[in.a]
			extra := 0
			for _, st := range pl.steps {
				if err := verifyPreds(st.preds); err != nil {
					return fmt.Errorf("pc %d: path step predicate: %w", pc, err)
				}
				if ps := predsStack(st.preds); ps > extra {
					extra = ps
				}
			}
			if h+extra > p.maxStack {
				return fmt.Errorf("pc %d: path predicates need stack %d, maxStack is %d", pc, h+extra, p.maxStack)
			}
			if pl.hasInput {
				if h < 1 {
					return fmt.Errorf("pc %d: path needs an input node-set on an empty stack", pc)
				}
			} else {
				h++
			}
		case opFilter:
			if int(in.a) < 0 || int(in.a) >= len(p.filters) {
				return fmt.Errorf("pc %d: filter index %d out of range [0,%d)", pc, in.a, len(p.filters))
			}
			if err := verifyPreds(p.filters[in.a]); err != nil {
				return fmt.Errorf("pc %d: filter predicate: %w", pc, err)
			}
			if h < 1 {
				return fmt.Errorf("pc %d: filter on an empty stack", pc)
			}
			if ps := predsStack(p.filters[in.a]); h+ps > p.maxStack {
				return fmt.Errorf("pc %d: filter predicates need stack %d, maxStack is %d", pc, h+ps, p.maxStack)
			}
		case opUnion:
			k := int(in.a)
			if k < 1 {
				return fmt.Errorf("pc %d: union of %d parts", pc, k)
			}
			if h < k {
				return fmt.Errorf("pc %d: union of %d parts with stack height %d", pc, k, h)
			}
			h -= k - 1
		case opNeg, opToBool, opID:
			if h < 1 {
				return fmt.Errorf("pc %d: %s on an empty stack", pc, opcodeNames[in.op])
			}
		case opAdd, opSub, opMul, opDiv, opMod,
			opEq, opNeq, opLt, opLe, opGt, opGe:
			if h < 2 {
				return fmt.Errorf("pc %d: %s with stack height %d", pc, opcodeNames[in.op], h)
			}
			h--
		case opJmpFalse, opJmpTrue:
			if h < 1 {
				return fmt.Errorf("pc %d: %s on an empty stack", pc, opcodeNames[in.op])
			}
			t := int(in.a)
			if t <= pc || t > n {
				return fmt.Errorf("pc %d: jump target %d outside (%d,%d]", pc, t, pc, n)
			}
			// Taken path: pop then push the short-circuit constant — the
			// target sees the same height. Fall-through: the operand is
			// consumed.
			if expect[t] >= 0 && expect[t] != h {
				return fmt.Errorf("pc %d: jump target %d height mismatch: %d vs %d", pc, t, h, expect[t])
			}
			expect[t] = h
			h--
		case opCall:
			if int(in.a) < 0 || int(in.a) >= len(p.calls) {
				return fmt.Errorf("pc %d: call index %d out of range [0,%d)", pc, in.a, len(p.calls))
			}
			argc := p.calls[in.a].argc
			if h < argc {
				return fmt.Errorf("pc %d: call %s/%d with stack height %d", pc, p.calls[in.a].name, argc, h)
			}
			h -= argc - 1
		default:
			return fmt.Errorf("pc %d: unknown opcode %d", pc, in.op)
		}
		if h > maxSeen {
			maxSeen = h
		}
		if h < 0 {
			return fmt.Errorf("pc %d: stack underflow", pc)
		}
	}
	if expect[n] >= 0 && expect[n] != h {
		return fmt.Errorf("end: join height mismatch: fall-through %d, jump %d", h, expect[n])
	}
	if h != 1 {
		return fmt.Errorf("end: final stack height %d, want 1", h)
	}
	if maxSeen > p.maxStack {
		return fmt.Errorf("stack reaches %d, planner claimed maxStack %d", maxSeen, p.maxStack)
	}
	return nil
}

// verifyPreds checks every compiled predicate sub-program of one step or
// filter.
func verifyPreds(preds []*predPlan) error {
	for _, pr := range preds {
		if pr.prog == nil {
			continue // constant [k] selection: nothing executes
		}
		if err := verifyIRProgram(pr.prog); err != nil {
			return err
		}
	}
	return nil
}
