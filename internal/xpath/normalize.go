package xpath

// Normalization: the first stage of the compilation pipeline. The parse
// AST is rewritten into an equivalent, canonical form that the planner
// can pattern-match without re-deriving facts per evaluation:
//
//   - constant folding (arithmetic, comparisons, boolean operators and
//     the constant core functions true()/false()/not()/boolean()/concat())
//   - axis canonicalization: `//` pairs
//     (descendant-or-self::node()/child::T[preds]) fuse into a single
//     descendant::T[preds] step when the predicates are provably
//     position-independent, and redundant self::node() steps are dropped
//   - predicate simplification: [position() = N] becomes the bare
//     numeric predicate [N], which the planner turns into a direct k-th
//     selection
//
// The original AST is never mutated — EvalReference keeps evaluating it
// — so normalization always builds fresh nodes when a rewrite applies.
// Folding of function calls assumes the core-library meaning of the
// function name, the same stance fuse.go historically took for its
// non-numeric whitelist: evaluation contexts may in principle shadow
// core functions via Context.Funcs, but no consumer in this repository
// does, and the differential test pins the two evaluators under the
// real function sets.

// boolExpr is a folded boolean constant. The parser never produces it;
// it only appears in normalized ASTs.
type boolExpr bool

func (e boolExpr) String() string {
	if e {
		return "true()"
	}
	return "false()"
}

func (e boolExpr) Eval(ctx *Context) (Value, error) { return Boolean(e), nil }

// normalizeExpr rewrites e bottom-up into its canonical form.
func normalizeExpr(e Expr) Expr {
	switch v := e.(type) {
	case *pathExpr:
		return normalizePath(v)
	case *filterExpr:
		nf := &filterExpr{primary: normalizeExpr(v.primary), preds: normalizePreds(v.preds)}
		return nf
	case *unionExpr:
		parts := make([]Expr, len(v.parts))
		for i, p := range v.parts {
			parts[i] = normalizeExpr(p)
		}
		return &unionExpr{parts: parts}
	case *negExpr:
		inner := normalizeExpr(v.e)
		if n, ok := inner.(numberExpr); ok {
			return numberExpr(-float64(n))
		}
		return &negExpr{e: inner}
	case *binaryExpr:
		return normalizeBinary(v)
	case *callExpr:
		return normalizeCall(v)
	default:
		// Leaves: literals, numbers, variables, and already-normalized
		// boolean constants.
		return e
	}
}

func normalizePath(p *pathExpr) *pathExpr {
	np := &pathExpr{absolute: p.absolute}
	if p.input != nil {
		np.input = normalizeExpr(p.input)
	}
	steps := make([]*step, 0, len(p.steps))
	for _, s := range p.steps {
		steps = append(steps, &step{axis: s.axis, test: s.test, preds: normalizePreds(s.preds)})
	}
	steps = dropSelfSteps(steps)
	np.steps = fuseSteps(steps)
	return np
}

// dropSelfSteps removes predicate-free self::node() steps from
// multi-step paths: a/./b selects exactly what a/b does. A path that is
// only "." keeps its single step.
func dropSelfSteps(steps []*step) []*step {
	if len(steps) < 2 {
		return steps
	}
	out := steps[:0:0]
	for _, s := range steps {
		if s.axis == axisSelf && s.test.kind == testNode && len(s.preds) == 0 {
			continue
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		// Path was entirely self steps (e.g. "./."): keep one.
		return steps[:1]
	}
	return out
}

// normalizePreds normalizes each predicate expression and then applies
// the predicate-position rewrites that are only valid at a predicate
// boundary (a predicate whose value is a number N means position()=N).
func normalizePreds(preds []Expr) []Expr {
	if len(preds) == 0 {
		return nil
	}
	out := make([]Expr, 0, len(preds))
	for _, p := range preds {
		np := normalizePred(normalizeExpr(p))
		if b, ok := np.(boolExpr); ok && bool(b) {
			// [true()] keeps every node; drop the predicate. [false()]
			// is kept — an always-empty predicate still needs to empty
			// the node list.
			continue
		}
		out = append(out, np)
	}
	return out
}

// normalizePred rewrites position() = N (and N = position()) into the
// bare numeric predicate N, which the planner lowers to a direct k-th
// selection. Only exact top-level equality is rewritten.
func normalizePred(p Expr) Expr {
	b, ok := p.(*binaryExpr)
	if !ok || b.op != tokEq {
		return p
	}
	if isPositionCall(b.l) {
		if n, ok := b.r.(numberExpr); ok {
			return n
		}
	}
	if isPositionCall(b.r) {
		if n, ok := b.l.(numberExpr); ok {
			return n
		}
	}
	return p
}

func isPositionCall(e Expr) bool {
	c, ok := e.(*callExpr)
	return ok && c.name == "position" && len(c.args) == 0
}

func normalizeBinary(v *binaryExpr) Expr {
	l := normalizeExpr(v.l)
	r := normalizeExpr(v.r)
	switch v.op {
	case tokAnd, tokOr:
		// Only a determining left operand folds: the right operand is
		// then never evaluated, exactly as at runtime, so errors and
		// side conditions in r are skipped by both evaluators.
		if lb, known := constBool(l); known {
			if v.op == tokAnd && !lb {
				return boolExpr(false)
			}
			if v.op == tokOr && lb {
				return boolExpr(true)
			}
			if rb, rknown := constBool(r); rknown {
				return boolExpr(rb)
			}
		}
	case tokPlus, tokMinus, tokMultiply, tokDiv, tokMod:
		if ln, ok := l.(numberExpr); ok {
			if rn, ok := r.(numberExpr); ok {
				res, _ := (&binaryExpr{op: v.op, l: ln, r: rn}).Eval(nil)
				return numberExpr(res.(Number))
			}
		}
	case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		if lv, ok := constScalar(l); ok {
			if rv, ok := constScalar(r); ok {
				return boolExpr(compareAtomic(v.op, lv, rv))
			}
		}
	}
	return &binaryExpr{op: v.op, l: l, r: r}
}

// constBool reports the truth value of a constant scalar expression.
func constBool(e Expr) (val, known bool) {
	if v, ok := constScalar(e); ok {
		return ToBool(v), true
	}
	return false, false
}

// constScalar returns the Value of a constant scalar AST node.
func constScalar(e Expr) (Value, bool) {
	switch v := e.(type) {
	case literalExpr:
		return String(v), true
	case numberExpr:
		return Number(v), true
	case boolExpr:
		return Boolean(v), true
	}
	return nil, false
}

func normalizeCall(v *callExpr) Expr {
	args := make([]Expr, len(v.args))
	allConst := true
	for i, a := range v.args {
		args[i] = normalizeExpr(a)
		if _, ok := constScalar(args[i]); !ok {
			allConst = false
		}
	}
	switch v.name {
	case "true":
		if len(args) == 0 {
			return boolExpr(true)
		}
	case "false":
		if len(args) == 0 {
			return boolExpr(false)
		}
	case "not":
		if len(args) == 1 {
			if b, known := constBool(args[0]); known {
				return boolExpr(!b)
			}
		}
	case "boolean":
		if len(args) == 1 {
			if b, known := constBool(args[0]); known {
				return boolExpr(b)
			}
		}
	case "concat":
		if len(args) >= 2 && allConst {
			var s string
			for _, a := range args {
				v, _ := constScalar(a)
				s += ToString(v)
			}
			return literalExpr(s)
		}
	}
	return &callExpr{name: v.name, args: args}
}

// ---- position-safety analysis (moved from the former fuse.go) ----

// fuseSteps rewrites descendant-or-self::node()/child::T[preds] into
// descendant::T[preds] wherever the predicates are position-independent.
// The parser expands `//` into descendant-or-self::node() followed by
// the next step, which makes `//name` enumerate every node of the
// subtree and then that node's children — quadratic work that
// SortDocOrder has to dedup afterwards. The fused descendant step is
// also what the planner answers straight from a frozen document's name
// index.
func fuseSteps(steps []*step) []*step {
	out := steps[:0:0]
	for i := 0; i < len(steps); i++ {
		s := steps[i]
		if i+1 < len(steps) && isDescOrSelfNode(s) && canFuseInto(steps[i+1]) {
			nxt := steps[i+1]
			out = append(out, &step{axis: axisDescendant, test: nxt.test, preds: nxt.preds})
			i++
			continue
		}
		out = append(out, s)
	}
	return out
}

func isDescOrSelfNode(s *step) bool {
	return s.axis == axisDescendantOrSelf && s.test.kind == testNode && len(s.preds) == 0
}

// canFuseInto reports whether a child step can absorb a preceding
// descendant-or-self::node(). Fusion changes the context position and
// size seen by the step's predicates (siblings vs. all descendants), so
// every predicate must be provably position-independent: it must
// statically evaluate to a non-number (a numeric predicate is an implicit
// position() = N test) and must not call position() or last().
func canFuseInto(s *step) bool {
	if s.axis != axisChild {
		return false
	}
	for _, p := range s.preds {
		if !staticallyNonNumeric(p) || usesPosition(p) {
			return false
		}
	}
	return true
}

// staticallyNonNumeric reports whether e can be proven to never yield an
// XPath number. Unknown constructs (variables, unknown functions) return
// false, keeping the analysis conservative.
func staticallyNonNumeric(e Expr) bool {
	switch v := e.(type) {
	case *pathExpr, *unionExpr, *filterExpr, literalExpr, boolExpr:
		return true
	case *binaryExpr:
		switch v.op {
		case tokAnd, tokOr, tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
			return true
		}
		return false
	case *callExpr:
		switch v.name {
		case "boolean", "not", "true", "false", "lang", "contains", "starts-with",
			"string", "concat", "substring", "substring-before", "substring-after",
			"normalize-space", "translate", "name", "local-name", "namespace-uri",
			"id", "key", "current":
			return true
		}
		return false
	}
	return false
}

// usesPosition reports whether e contains a position() or last() call
// anywhere. This is deliberately over-broad: a call inside a nested
// path's predicate refers to that inner context and would actually be
// safe, but rejecting it only costs the optimization, never correctness.
func usesPosition(e Expr) bool {
	switch v := e.(type) {
	case *callExpr:
		if v.name == "position" || v.name == "last" {
			return true
		}
		for _, a := range v.args {
			if usesPosition(a) {
				return true
			}
		}
	case *binaryExpr:
		return usesPosition(v.l) || usesPosition(v.r)
	case *negExpr:
		return usesPosition(v.e)
	case *unionExpr:
		for _, p := range v.parts {
			if usesPosition(p) {
				return true
			}
		}
	case *filterExpr:
		if usesPosition(v.primary) {
			return true
		}
		for _, p := range v.preds {
			if usesPosition(p) {
				return true
			}
		}
	case *pathExpr:
		if v.input != nil && usesPosition(v.input) {
			return true
		}
		for _, s := range v.steps {
			for _, p := range s.preds {
				if usesPosition(p) {
					return true
				}
			}
		}
	}
	return false
}
