package xpath

// Read-only AST introspection for static analysis. The compiled Expr and
// Pattern types stay opaque; these views let tools such as
// internal/analysis walk location paths, calls and pattern alternatives
// without being able to mutate the compiled form.

// Axis identifies a location-path axis in an introspected step.
type Axis uint8

// Introspected axes, mirroring the XPath 1.0 axis set.
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisParent
	AxisAncestor
	AxisFollowingSibling
	AxisPrecedingSibling
	AxisFollowing
	AxisPreceding
	AxisAttribute
	AxisSelf
	AxisDescendantOrSelf
	AxisAncestorOrSelf
)

// String returns the XPath spelling of the axis.
func (a Axis) String() string { return axisType(a).String() }

// NodeTestKind identifies the node test of an introspected step.
type NodeTestKind uint8

// Introspected node tests.
const (
	TestName       NodeTestKind = iota // name or prefix:name
	TestAnyName                        // *
	TestNSWildcard                     // prefix:*
	TestText                           // text()
	TestComment                        // comment()
	TestPI                             // processing-instruction()
	TestNode                           // node()
)

// StepInfo is the read-only view of one location step.
type StepInfo struct {
	Axis     Axis
	Test     NodeTestKind
	Prefix   string // namespace prefix of TestName / TestNSWildcard
	Name     string // local name for TestName
	PITarget string // literal target for TestPI, if any
	Preds    []Expr
}

// String renders the step in XPath syntax.
func (s StepInfo) String() string {
	t := nodeTest{kind: testKind(s.Test), prefix: s.Prefix, name: s.Name, piTarget: s.PITarget}
	st := step{axis: axisType(s.Axis), test: t}
	return st.String()
}

func stepInfo(s *step) StepInfo {
	return StepInfo{
		Axis:     Axis(s.axis),
		Test:     NodeTestKind(s.test.kind),
		Prefix:   s.test.prefix,
		Name:     s.test.name,
		PITarget: s.test.piTarget,
		Preds:    s.preds,
	}
}

// unwrap exposes the normalized AST behind a fully compiled expression,
// so analysis tools see the same canonical form the planner consumed
// (fused descendant steps, folded constants) rather than the raw parse.
func unwrap(e Expr) Expr {
	if c, ok := e.(*Compiled); ok {
		return c.norm
	}
	return e
}

// PathInfo reports whether e is a location path and, if so, returns its
// optional input expression (the filter a relative path hangs off, e.g.
// id('x')/a), whether it is absolute, and its steps.
func PathInfo(e Expr) (input Expr, absolute bool, steps []StepInfo, ok bool) {
	p, isPath := unwrap(e).(*pathExpr)
	if !isPath {
		return nil, false, nil, false
	}
	out := make([]StepInfo, len(p.steps))
	for i, s := range p.steps {
		out[i] = stepInfo(s)
	}
	return p.input, p.absolute, out, true
}

// FilterInfo reports whether e is a predicated primary expression
// (PrimaryExpr Predicate+) and returns its parts.
func FilterInfo(e Expr) (primary Expr, preds []Expr, ok bool) {
	f, isFilter := unwrap(e).(*filterExpr)
	if !isFilter {
		return nil, nil, false
	}
	return f.primary, f.preds, true
}

// CallInfo reports whether e is a function call and returns its name and
// argument expressions.
func CallInfo(e Expr) (name string, args []Expr, ok bool) {
	c, isCall := unwrap(e).(*callExpr)
	if !isCall {
		return "", nil, false
	}
	return c.name, c.args, true
}

// VarName reports whether e is a variable reference and returns its name.
func VarName(e Expr) (string, bool) {
	v, isVar := unwrap(e).(varExpr)
	if !isVar {
		return "", false
	}
	return string(v), true
}

// LiteralValue reports whether e is a string literal and returns it.
func LiteralValue(e Expr) (string, bool) {
	l, isLit := unwrap(e).(literalExpr)
	if !isLit {
		return "", false
	}
	return string(l), true
}

// Subexprs returns the direct sub-expressions of e that are not exposed
// through PathInfo/FilterInfo/CallInfo: union branches, binary operands
// and the operand of unary minus. It returns nil for leaves and for the
// kinds covered by the dedicated accessors.
func Subexprs(e Expr) []Expr {
	switch v := unwrap(e).(type) {
	case *unionExpr:
		return v.parts
	case *binaryExpr:
		return []Expr{v.l, v.r}
	case *negExpr:
		return []Expr{v.e}
	}
	return nil
}

// PatternStepInfo is the read-only view of one match-pattern step.
type PatternStepInfo struct {
	Attr     bool // attribute axis
	Test     NodeTestKind
	Prefix   string
	Name     string
	PITarget string
	// Anc is true when the step is separated from the previous
	// (ancestor-side) step by '//' rather than '/'.
	Anc   bool
	Preds []Expr
}

// PatternAltInfo is the read-only view of one pattern alternative.
type PatternAltInfo struct {
	Absolute bool
	RootOnly bool   // the pattern "/"
	ID       string // non-empty for id('...')-rooted patterns
	IDPath   bool   // id('...')/further/steps
	Priority float64
	Steps    []PatternStepInfo
	// Class is the compile-time node classification of this alternative,
	// shared by template dispatch and the static analyzer.
	Class MatchClass
}

// Info returns the read-only alternatives of a compiled pattern.
func (p *Pattern) Info() []PatternAltInfo {
	out := make([]PatternAltInfo, len(p.alts))
	for i, a := range p.alts {
		ai := PatternAltInfo{
			Absolute: a.absolute,
			RootOnly: a.rootOnly,
			ID:       a.idValue,
			IDPath:   a.idHasPath,
			Priority: a.priority,
			Class:    a.cls,
		}
		for _, s := range a.steps {
			ai.Steps = append(ai.Steps, PatternStepInfo{
				Attr:     s.attr,
				Test:     NodeTestKind(s.test.kind),
				Prefix:   s.test.prefix,
				Name:     s.test.name,
				PITarget: s.test.piTarget,
				Anc:      s.anc,
				Preds:    s.preds,
			})
		}
		out[i] = ai
	}
	return out
}
