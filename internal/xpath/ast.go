package xpath

import (
	"fmt"
	"strings"

	"goldweb/internal/xmldom"
)

// Expr is a compiled XPath expression.
type Expr interface {
	// Eval evaluates the expression in the given context.
	Eval(ctx *Context) (Value, error)
	// String returns a parseable rendering of the expression.
	String() string
}

// Function is an extension or core function implementation. Arguments are
// already evaluated.
type Function func(ctx *Context, args []Value) (Value, error)

// Context carries the evaluation state of an expression: the context node,
// position and size, variable bindings, namespace bindings for prefixes
// appearing inside the expression, and extension functions.
type Context struct {
	Node     *xmldom.Node
	Position int
	Size     int
	Vars     map[string]Value
	Funcs    map[string]Function
	NS       map[string]string
	// Current is the XSLT current node (for the current() function);
	// nil outside XSLT.
	Current *xmldom.Node
}

// NewContext returns a context positioned at node 1 of 1.
func NewContext(node *xmldom.Node) *Context {
	return &Context{Node: node, Position: 1, Size: 1}
}

// sub returns a copy of ctx focused on a different node/position/size,
// sharing variable and function bindings.
func (ctx *Context) sub(node *xmldom.Node, pos, size int) *Context {
	c := *ctx
	c.Node = node
	c.Position = pos
	c.Size = size
	return &c
}

// lookupVar resolves a variable reference.
func (ctx *Context) lookupVar(name string) (Value, error) {
	if ctx.Vars != nil {
		if v, ok := ctx.Vars[name]; ok {
			return v, nil
		}
	}
	return nil, fmt.Errorf("xpath: variable $%s not bound", name)
}

// resolvePrefix maps an expression prefix to a namespace URI.
func (ctx *Context) resolvePrefix(prefix string) (string, error) {
	if prefix == "" {
		return "", nil
	}
	if prefix == "xml" {
		return xmldom.XMLNamespace, nil
	}
	if ctx.NS != nil {
		if uri, ok := ctx.NS[prefix]; ok {
			return uri, nil
		}
	}
	return "", fmt.Errorf("xpath: undeclared prefix %q in expression", prefix)
}

// ---- AST node kinds ----

type axisType uint8

const (
	axisChild axisType = iota
	axisDescendant
	axisParent
	axisAncestor
	axisFollowingSibling
	axisPrecedingSibling
	axisFollowing
	axisPreceding
	axisAttribute
	axisSelf
	axisDescendantOrSelf
	axisAncestorOrSelf
)

var axisNames = map[string]axisType{
	"child":              axisChild,
	"descendant":         axisDescendant,
	"parent":             axisParent,
	"ancestor":           axisAncestor,
	"following-sibling":  axisFollowingSibling,
	"preceding-sibling":  axisPrecedingSibling,
	"following":          axisFollowing,
	"preceding":          axisPreceding,
	"attribute":          axisAttribute,
	"self":               axisSelf,
	"descendant-or-self": axisDescendantOrSelf,
	"ancestor-or-self":   axisAncestorOrSelf,
}

func (a axisType) String() string {
	for name, ax := range axisNames {
		if ax == a {
			return name
		}
	}
	return "?"
}

type testKind uint8

const (
	testName       testKind = iota // name or prefix:name
	testAnyName                    // *
	testNSWildcard                 // prefix:*
	testText
	testComment
	testPI
	testNode
)

type nodeTest struct {
	kind     testKind
	prefix   string
	name     string
	piTarget string
}

func (t nodeTest) String() string {
	switch t.kind {
	case testName:
		if t.prefix != "" {
			return t.prefix + ":" + t.name
		}
		return t.name
	case testAnyName:
		return "*"
	case testNSWildcard:
		return t.prefix + ":*"
	case testText:
		return "text()"
	case testComment:
		return "comment()"
	case testPI:
		if t.piTarget != "" {
			return fmt.Sprintf("processing-instruction(%q)", t.piTarget)
		}
		return "processing-instruction()"
	case testNode:
		return "node()"
	}
	return "?"
}

type step struct {
	axis  axisType
	test  nodeTest
	preds []Expr
}

func (s *step) String() string {
	var b strings.Builder
	switch {
	case s.axis == axisAttribute:
		b.WriteString("@")
	case s.axis == axisChild:
		// default axis, no prefix
	default:
		b.WriteString(s.axis.String())
		b.WriteString("::")
	}
	b.WriteString(s.test.String())
	for _, p := range s.preds {
		fmt.Fprintf(&b, "[%s]", p)
	}
	return b.String()
}

// pathExpr is a location path, optionally rooted at a filter expression
// (e.g. id('x')/child::a) or at the document root (absolute).
type pathExpr struct {
	input    Expr // nil means: start from the context node (or root when absolute)
	absolute bool
	steps    []*step
}

func (p *pathExpr) String() string {
	var b strings.Builder
	if p.input != nil {
		b.WriteString(p.input.String())
		if len(p.steps) > 0 {
			b.WriteString("/")
		}
	} else if p.absolute {
		b.WriteString("/")
	}
	for i, s := range p.steps {
		if i > 0 {
			b.WriteString("/")
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// filterExpr is PrimaryExpr Predicate+.
type filterExpr struct {
	primary Expr
	preds   []Expr
}

func (f *filterExpr) String() string {
	var b strings.Builder
	b.WriteString(f.primary.String())
	for _, p := range f.preds {
		fmt.Fprintf(&b, "[%s]", p)
	}
	return b.String()
}

type binaryExpr struct {
	op   tokKind
	l, r Expr
}

var opNames = map[tokKind]string{
	tokOr: "or", tokAnd: "and", tokEq: "=", tokNeq: "!=",
	tokLt: "<", tokLe: "<=", tokGt: ">", tokGe: ">=",
	tokPlus: "+", tokMinus: "-", tokMultiply: "*", tokDiv: "div", tokMod: "mod",
}

func (e *binaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.l, opNames[e.op], e.r)
}

type negExpr struct{ e Expr }

func (e *negExpr) String() string { return "-" + e.e.String() }

type unionExpr struct{ parts []Expr }

func (e *unionExpr) String() string {
	strs := make([]string, len(e.parts))
	for i, p := range e.parts {
		strs[i] = p.String()
	}
	return strings.Join(strs, " | ")
}

type literalExpr string

func (e literalExpr) String() string { return fmt.Sprintf("%q", string(e)) }

type numberExpr float64

func (e numberExpr) String() string { return FormatNumber(float64(e)) }

type varExpr string

func (e varExpr) String() string { return "$" + string(e) }

type callExpr struct {
	name string
	args []Expr
}

func (e *callExpr) String() string {
	strs := make([]string, len(e.args))
	for i, a := range e.args {
		strs[i] = a.String()
	}
	return e.name + "(" + strings.Join(strs, ", ") + ")"
}
