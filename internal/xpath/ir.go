package xpath

import (
	"fmt"
	"strings"
)

// The instruction IR: the final stage of the compilation pipeline. A
// normalized expression lowers to a flat program for a small stack
// evaluator (vm.go) whose operands are unboxed tagged values, so scalar
// arithmetic, comparisons and boolean logic never allocate Value
// interfaces. Location paths stay structured — a pathPlan per path, with
// the access strategy (name index, forward-axis ordering, direct k-th
// selection) chosen here at compile time instead of being re-detected
// on every evaluation as the legacy interpreter did.

type opcode uint8

const (
	opConst  opcode = iota // push consts[a]
	opVar                  // push value of variable names[a]
	opPath                 // execute paths[a] (pops input node-set when the plan has one)
	opFilter               // apply predicate set filters[a] to the node-set on top
	opUnion                // pop a node-sets, push their document-order merge
	opNeg                  // arithmetic negation
	opAdd
	opSub
	opMul
	opDiv
	opMod
	opEq
	opNeq
	opLt
	opLe
	opGt
	opGe
	opJmpFalse // pop; if false push false and jump to a (short-circuit and)
	opJmpTrue  // pop; if true push true and jump to a (short-circuit or)
	opToBool   // coerce top of stack to boolean
	opCall     // call calls[a], popping its arguments
	opID       // id() with one evaluated argument on the stack (id-map lookup)
)

var opcodeNames = [...]string{
	opConst: "const", opVar: "var", opPath: "path", opFilter: "filter",
	opUnion: "union", opNeg: "neg", opAdd: "add", opSub: "sub", opMul: "mul",
	opDiv: "div", opMod: "mod", opEq: "eq", opNeq: "neq", opLt: "lt",
	opLe: "le", opGt: "gt", opGe: "ge", opJmpFalse: "jmp-false",
	opJmpTrue: "jmp-true", opToBool: "to-bool", opCall: "call", opID: "id-lookup",
}

type instr struct {
	op opcode
	a  int32
}

// callSite is a function call resolved at runtime through the context's
// function bindings first, then the core library — the same order the
// reference interpreter uses.
type callSite struct {
	name string
	argc int
}

// program is one compiled expression body. Predicates compile to nested
// programs executed on the shared operand stack.
type program struct {
	code    []instr
	consts  []irval
	names   []string
	calls   []callSite
	paths   []*pathPlan
	filters [][]*predPlan
	// maxStack is the operand-stack depth the program needs, including
	// the predicate sub-programs that run on the same frame. Computed by
	// the emitter; lets the evaluator run small programs (the common
	// case) on an inline stack without touching the frame pool.
	maxStack int
}

// pathPlan is the planned form of a location path.
type pathPlan struct {
	hasInput bool // pops its start node-set from the stack
	absolute bool
	steps    []*planStep
}

// planStep is one location step with its access strategy fixed at
// compile time.
type planStep struct {
	axis axisType
	test nodeTest
	// indexed marks descendant/descendant-or-self steps with an
	// unprefixed name test: on frozen documents the evaluator answers
	// them from the per-document name index (with a residual URI
	// filter), falling back to the walking path on unfrozen trees.
	indexed bool
	// forward marks axes whose step results for a single context node
	// are already in document order and duplicate-free, so the merge
	// sort is skipped.
	forward bool
	preds   []*predPlan
}

// predPlan is one compiled predicate.
type predPlan struct {
	prog *program
	// posConst, when > 0, is a constant integer predicate [k]: the
	// evaluator selects the k-th matched node directly instead of
	// evaluating anything per node.
	posConst int
	// posFree records that the predicate can never observe the context
	// position (no position()/last(), statically non-numeric). Such
	// predicates are what step fusion relies on; the evaluator also
	// skips the numeric-result position test for them.
	posFree bool
}

// Compiled is a fully compiled XPath expression: the original parse
// tree (the reference interpreter's input), its normalized form (what
// introspection exposes), the planned instruction program, and the
// statically inferred result type.
type Compiled struct {
	src  string
	ref  Expr
	norm Expr
	prog *program
	typ  StaticType
}

// String returns the original expression source, which is parseable.
func (c *Compiled) String() string { return c.src }

// Type returns the statically inferred result type of the expression.
func (c *Compiled) Type() StaticType { return c.typ }

// EvalReference evaluates the expression with the legacy AST
// interpreter over the unnormalized parse tree. It is the semantic
// oracle the IR evaluator is differentially tested against; production
// paths use Eval.
func (c *Compiled) EvalReference(ctx *Context) (Value, error) {
	return c.ref.Eval(ctx)
}

// finishCompile runs the post-parse pipeline stages on an AST.
func finishCompile(src string, ast Expr) *Compiled {
	norm := normalizeExpr(ast)
	return &Compiled{
		src:  src,
		ref:  ast,
		norm: norm,
		prog: compileProgram(norm),
		typ:  inferType(norm),
	}
}

// Plan returns a deterministic, human-readable rendering of the
// compiled program — the planner's chosen strategies included — used by
// the golden plan tests and for debugging.
func (c *Compiled) Plan() string {
	var b strings.Builder
	fmt.Fprintf(&b, "type %s\n", c.typ)
	writeProgram(&b, c.prog, 0)
	return b.String()
}

func indentln(b *strings.Builder, depth int, format string, args ...interface{}) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, format, args...)
	b.WriteByte('\n')
}

func writeProgram(b *strings.Builder, p *program, depth int) {
	for pc, in := range p.code {
		switch in.op {
		case opConst:
			indentln(b, depth, "const %s", p.consts[in.a].planString())
		case opVar:
			indentln(b, depth, "var $%s", p.names[in.a])
		case opCall:
			cs := p.calls[in.a]
			indentln(b, depth, "call %s/%d", cs.name, cs.argc)
		case opID:
			indentln(b, depth, "id-lookup [id-map]")
		case opUnion:
			indentln(b, depth, "union %d", in.a)
		case opJmpFalse:
			indentln(b, depth, "jmp-false → %d", in.a)
		case opJmpTrue:
			indentln(b, depth, "jmp-true → %d", in.a)
		case opPath:
			writePathPlan(b, p.paths[in.a], depth)
		case opFilter:
			indentln(b, depth, "filter")
			writePreds(b, p.filters[in.a], depth+1)
		default:
			indentln(b, depth, "%s", opcodeNames[in.op])
		}
		_ = pc
	}
}

func writePathPlan(b *strings.Builder, pl *pathPlan, depth int) {
	head := "path"
	switch {
	case pl.hasInput:
		head += " from-input"
	case pl.absolute:
		head += " abs"
	}
	indentln(b, depth, "%s", head)
	for _, st := range pl.steps {
		flags := ""
		if st.indexed {
			flags += " [name-index]"
		}
		if st.forward {
			flags += " [forward]"
		}
		indentln(b, depth+1, "step %s::%s%s", st.axis, st.test, flags)
		writePreds(b, st.preds, depth+2)
	}
}

func writePreds(b *strings.Builder, preds []*predPlan, depth int) {
	for _, pr := range preds {
		switch {
		case pr.posConst > 0:
			indentln(b, depth, "pred [select #%d]", pr.posConst)
		case pr.posFree:
			indentln(b, depth, "pred [pos-free]")
		default:
			indentln(b, depth, "pred")
		}
		if pr.prog != nil {
			writeProgram(b, pr.prog, depth+1)
		}
	}
}

// planString renders a constant operand for Plan output.
func (v irval) planString() string {
	switch v.kind {
	case vBool:
		if v.b {
			return "true"
		}
		return "false"
	case vNum:
		return FormatNumber(v.num)
	case vStr:
		return fmt.Sprintf("%q", v.str)
	}
	return fmt.Sprintf("node-set(%d)", len(v.nodes))
}

// Interface checks: Compiled is a drop-in Expr, and the AST nodes the
// reference interpreter evaluates all satisfy Expr too.
var (
	_ Expr = (*Compiled)(nil)
	_ Expr = boolExpr(false)
)
