package xpath

import (
	"testing"

	"goldweb/internal/xmldom"
)

// indexDoc is shaped to exercise the frozen fast paths: repeated element
// names at several depths, namespaced homonyms, id attributes and text.
const indexDoc = `<r xmlns:x="urn:x">
  <a id="a1"><b id="b1"/><b/><x:b/></a>
  <a id="a2"><c><b id="b2"/></c></a>
  <c><a><b/></a></c>
</r>`

// queryBoth evaluates src against an unfrozen and a frozen copy of the
// same document and fails unless the two results select the same nodes
// (compared by path) in the same order.
func queryBoth(t *testing.T, src string) (NodeSet, NodeSet) {
	t.Helper()
	plain := xmldom.MustParseString(indexDoc)
	frozen := xmldom.MustParseString(indexDoc)
	xmldom.Freeze(frozen)
	pv, err := Query(plain, src)
	if err != nil {
		t.Fatalf("%s (unfrozen): %v", src, err)
	}
	fv, err := Query(frozen, src)
	if err != nil {
		t.Fatalf("%s (frozen): %v", src, err)
	}
	pns, ok := pv.(NodeSet)
	if !ok {
		if ToString(pv) != ToString(fv) {
			t.Fatalf("%s: unfrozen %v, frozen %v", src, pv, fv)
		}
		return nil, nil
	}
	fns := fv.(NodeSet)
	if len(pns) != len(fns) {
		t.Fatalf("%s: unfrozen %d nodes, frozen %d", src, len(pns), len(fns))
	}
	for i := range pns {
		if pns[i].Path() != fns[i].Path() {
			t.Fatalf("%s: node %d differs: %s vs %s", src, i, pns[i].Path(), fns[i].Path())
		}
	}
	return pns, fns
}

// TestFrozenMatchesUnfrozen: the index fast paths (descendant name test,
// step fusion, id()) must be invisible — same nodes, same order.
func TestFrozenMatchesUnfrozen(t *testing.T) {
	exprs := []string{
		"//b", "//a", "//a//b", "//c/b", "/r//b", "//a/b | //c",
		"//b[../@id]", "//a[@id='a2']//b", "descendant::b",
		"//b[1]", "//a[last()]", "//a[2]/c//b", "count(//b) = 5",
		"id('a1')", "id('b2')", "id('a1 b2')", "id('nope')",
		"//*",
	}
	for _, src := range exprs {
		queryBoth(t, src)
	}
}

// TestFrozenNodeSetInvariant: frozen evaluation upholds the NodeSet
// contract — document order, duplicate-free — for unions and paths.
func TestFrozenNodeSetInvariant(t *testing.T) {
	for _, src := range []string{
		"//b", "//a | //b", "//b | //a//b | //c", "//b/ancestor::*", "//a//b",
	} {
		_, fns := queryBoth(t, src)
		for i := 1; i < len(fns); i++ {
			if fns[i-1] == fns[i] {
				t.Errorf("%s: duplicate at %d", src, i)
			}
			if xmldom.CompareOrder(fns[i-1], fns[i]) >= 0 {
				t.Errorf("%s: out of document order at %d", src, i)
			}
		}
	}
}

// TestFusionPositionalSafety: //name[pred] with positional predicates
// must NOT be fused into descendant::name[pred] — //b[1] selects the
// first b child of each parent, not the first b in the document.
func TestFusionPositionalSafety(t *testing.T) {
	doc := xmldom.MustParseString(`<r><a><b v="1"/><b v="2"/></a><a><b v="3"/></a></r>`)
	xmldom.Freeze(doc)
	ns, err := QueryNodes(doc, "//b[1]")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 {
		t.Fatalf("//b[1] selected %d nodes, want 2 (one per parent)", len(ns))
	}
	if got := ns[0].AttrValue("v") + ns[1].AttrValue("v"); got != "13" {
		t.Errorf("//b[1] selected v=%q, want first b of each parent", got)
	}
	// descendant::b[1] is the genuinely fused form: first among all.
	ns, err = QueryNodes(doc, "/r/descendant::b[1]")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0].AttrValue("v") != "1" {
		t.Errorf("descendant::b[1] = %d nodes", len(ns))
	}
}
