package xpath

import (
	"testing"

	"goldweb/internal/xmldom"
)

const patternDoc = `<goldmodel id="m1">
  <factclasses>
    <factclass id="f1"><factatts><factatt id="a1"/><factatt id="a2"/></factatts></factclass>
  </factclasses>
  <dimclasses>
    <dimclass id="d1"><dimatt id="da1"/></dimclass>
  </dimclasses>
</goldmodel>`

func patDoc(t *testing.T) *xmldom.Node {
	t.Helper()
	d, err := xmldom.ParseString(patternDoc)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func matchNode(t *testing.T, pat string, n *xmldom.Node) bool {
	t.Helper()
	p, err := CompilePattern(pat)
	if err != nil {
		t.Fatalf("compile pattern %q: %v", pat, err)
	}
	ok, err := p.Matches(NewContext(n), n)
	if err != nil {
		t.Fatalf("match %q: %v", pat, err)
	}
	return ok
}

func TestPatternBasicMatching(t *testing.T) {
	d := patDoc(t)
	root := d.DocumentElement()
	fc := d.DescendantElements("factclass")[0]
	fa1 := d.DescendantElements("factatt")[0]
	fa2 := d.DescendantElements("factatt")[1]
	id := fc.GetAttr("id")

	cases := []struct {
		pat  string
		node *xmldom.Node
		want bool
	}{
		{"factclass", fc, true},
		{"dimclass", fc, false},
		{"*", fc, true},
		{"*", d, false},
		{"/", d, true},
		{"/", root, false},
		{"/goldmodel", root, true},
		{"/factclass", fc, false}, // not a child of the root
		{"factclasses/factclass", fc, true},
		{"dimclasses/factclass", fc, false},
		{"goldmodel//factatt", fa1, true},
		{"//factatt", fa2, true},
		{"/goldmodel/factclasses/factclass/factatts/factatt", fa1, true},
		{"@id", id, true},
		{"@name", id, false},
		{"@*", id, true},
		{"factclass/@id", id, true},
		{"dimclass/@id", id, false},
		{"factatt[1]", fa1, true},
		{"factatt[1]", fa2, false},
		{"factatt[2]", fa2, true},
		{"factatt[last()]", fa2, true},
		{"factatt[@id='a1']", fa1, true},
		{"factatt[@id='a1']", fa2, false},
		{"node()", fc, true},
	}
	for _, tc := range cases {
		if got := matchNode(t, tc.pat, tc.node); got != tc.want {
			t.Errorf("pattern %q vs %s: got %v, want %v", tc.pat, tc.node.Path(), got, tc.want)
		}
	}
}

func TestPatternUnion(t *testing.T) {
	d := patDoc(t)
	fc := d.DescendantElements("factclass")[0]
	dc := d.DescendantElements("dimclass")[0]
	p := MustCompilePattern("factclass|dimclass")
	for _, n := range []*xmldom.Node{fc, dc} {
		ok, err := p.Matches(NewContext(n), n)
		if err != nil || !ok {
			t.Errorf("union should match %s: %v", n.Name, err)
		}
	}
	if len(p.Alternatives()) != 2 {
		t.Errorf("alternatives = %d", len(p.Alternatives()))
	}
}

func TestPatternDescendantGap(t *testing.T) {
	d := xmldom.MustParseString(`<a><b><c><d/></c></b><x><d/></x></a>`)
	dInB := d.DescendantElements("d")[0]
	dInX := d.DescendantElements("d")[1]
	if !matchNode(t, "b//d", dInB) {
		t.Error("b//d should match d under b")
	}
	if matchNode(t, "b//d", dInX) {
		t.Error("b//d should not match d under x")
	}
	if !matchNode(t, "a//c/d", dInB) {
		t.Error("a//c/d should match")
	}
	if !matchNode(t, "/a//d", dInX) {
		t.Error("/a//d should match both")
	}
}

func TestPatternIDRooted(t *testing.T) {
	d := patDoc(t)
	fc := d.DescendantElements("factclass")[0]
	fa := d.DescendantElements("factatt")[0]
	if !matchNode(t, "id('f1')", fc) {
		t.Error("id('f1') should match the factclass")
	}
	if matchNode(t, "id('x9')", fc) {
		t.Error("id('x9') should not match")
	}
	if !matchNode(t, "id('f1')//factatt", fa) {
		t.Error("id('f1')//factatt should match")
	}
}

func TestPatternDefaultPriorities(t *testing.T) {
	cases := []struct {
		pat  string
		want float64
	}{
		{"factclass", 0},
		{"*", -0.5},
		{"node()", -0.5},
		{"text()", -0.5},
		{"@id", 0},
		{"@*", -0.5},
		{"factclass[@id]", 0.5},
		{"factclasses/factclass", 0.5},
		{"/", 0.5},
		{"processing-instruction('x')", 0},
		{"processing-instruction()", -0.5},
	}
	for _, tc := range cases {
		p := MustCompilePattern(tc.pat)
		if got := p.DefaultPriority(); got != tc.want {
			t.Errorf("priority(%q) = %v, want %v", tc.pat, got, tc.want)
		}
	}
}

func TestPatternRejectsFullExpressions(t *testing.T) {
	bad := []string{
		"ancestor::a",
		"a/following-sibling::b",
		"1 + 1",
		"$var",
		"..",
		"a/..",
		"id(@ref)", // non-literal id()
	}
	for _, pat := range bad {
		if _, err := CompilePattern(pat); err == nil {
			t.Errorf("pattern %q should be rejected", pat)
		}
	}
}

func TestPatternTextAndComment(t *testing.T) {
	d := xmldom.MustParseString(`<a>hi<!--c--></a>`)
	a := d.DocumentElement()
	text := a.Children[0]
	comment := a.Children[1]
	if !matchNode(t, "text()", text) {
		t.Error("text() should match text node")
	}
	if matchNode(t, "text()", comment) {
		t.Error("text() should not match comment")
	}
	if !matchNode(t, "comment()", comment) {
		t.Error("comment() should match")
	}
	if !matchNode(t, "a/text()", text) {
		t.Error("a/text() should match")
	}
}
