package xpath

import (
	"fmt"
	"strings"

	"goldweb/internal/xmldom"
)

// Pattern is a compiled XSLT match pattern: one or more alternatives
// separated by '|'. Patterns use the restricted XPath grammar of XSLT 1.0
// §5.2 — only the child and attribute axes plus the '//' abbreviation.
type Pattern struct {
	src  string
	alts []*patternAlt
}

// patternAlt is a single location-path pattern.
type patternAlt struct {
	absolute  bool // leading '/'
	rootOnly  bool // the pattern "/" (matches the document node)
	steps     []*patStep
	priority  float64
	idValue   string // non-empty for id('...') patterns
	idHasPath bool
	cls       MatchClass // computed once at compile time
}

// patStep is one step; sep describes how it connects to the previous
// (ancestor-side) step: '/' for parent, '#' (descendant) for '//'.
type patStep struct {
	attr  bool // attribute axis
	test  nodeTest
	preds []Expr
	anc   bool // true when separated from the previous step by '//'
}

// CompilePattern compiles an XSLT match pattern.
func CompilePattern(src string) (*Pattern, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &exprParser{src: src, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s in pattern", p.peek())
	}
	pat := &Pattern{src: src}
	var exprs []Expr
	if u, ok := e.(*unionExpr); ok {
		exprs = u.parts
	} else {
		exprs = []Expr{e}
	}
	for _, ex := range exprs {
		alt, err := exprToPatternAlt(src, ex)
		if err != nil {
			return nil, err
		}
		alt.cls = alt.class()
		pat.alts = append(pat.alts, alt)
	}
	return pat, nil
}

// compiledPreds runs pattern predicates through the full compilation
// pipeline so that matching evaluates planned IR, not raw AST.
func compiledPreds(preds []Expr) []Expr {
	if len(preds) == 0 {
		return nil
	}
	out := make([]Expr, len(preds))
	for i, p := range preds {
		out[i] = finishCompile(p.String(), p)
	}
	return out
}

// MustCompilePattern is CompilePattern but panics on error.
func MustCompilePattern(src string) *Pattern {
	p, err := CompilePattern(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Pattern) String() string { return p.src }

// exprToPatternAlt converts a parsed path expression to a pattern
// alternative, enforcing the pattern grammar restrictions.
func exprToPatternAlt(src string, e Expr) (*patternAlt, error) {
	if call, ok := e.(*callExpr); ok {
		// A bare id('...') pattern.
		if call.name == "id" && len(call.args) == 1 {
			if lit, ok := call.args[0].(literalExpr); ok {
				return &patternAlt{idValue: string(lit), priority: 0.5}, nil
			}
		}
		return nil, fmt.Errorf("xpath: %q is not a valid match pattern", src)
	}
	pe, ok := e.(*pathExpr)
	if !ok {
		return nil, fmt.Errorf("xpath: %q is not a valid match pattern", src)
	}
	alt := &patternAlt{absolute: pe.absolute}
	if pe.input != nil {
		// id('x') or key(...) rooted patterns: support id with a literal.
		call, ok := pe.input.(*callExpr)
		if !ok || call.name != "id" || len(call.args) != 1 {
			return nil, fmt.Errorf("xpath: pattern %q may only be rooted at id()", src)
		}
		lit, ok := call.args[0].(literalExpr)
		if !ok {
			return nil, fmt.Errorf("xpath: id() in pattern %q requires a literal", src)
		}
		alt.idValue = string(lit)
		alt.idHasPath = len(pe.steps) > 0
	}
	if pe.absolute && len(pe.steps) == 0 {
		alt.rootOnly = true
		alt.priority = 0.5
		return alt, nil
	}
	nextAnc := false
	for _, s := range pe.steps {
		switch s.axis {
		case axisDescendantOrSelf:
			if s.test.kind != testNode || len(s.preds) != 0 {
				return nil, fmt.Errorf("xpath: descendant-or-self in pattern %q must be '//'", src)
			}
			nextAnc = true
			continue
		case axisDescendant:
			// A pre-fused descendant::name step (the normalize pass fuses
			// '//name' pairs); in the pattern grammar that is a child step
			// behind a '//' gap. The raw parse AST used here keeps the
			// descendant-or-self pairs, so this branch only fires for
			// explicitly spelled descendant axes.
			alt.steps = append(alt.steps, &patStep{test: s.test, preds: compiledPreds(s.preds), anc: true})
			nextAnc = false
		case axisChild, axisAttribute:
			ps := &patStep{attr: s.axis == axisAttribute, test: s.test, preds: compiledPreds(s.preds), anc: nextAnc}
			nextAnc = false
			alt.steps = append(alt.steps, ps)
		default:
			return nil, fmt.Errorf("xpath: axis %s not allowed in pattern %q", s.axis, src)
		}
	}
	if nextAnc || len(alt.steps) == 0 {
		return nil, fmt.Errorf("xpath: malformed pattern %q", src)
	}
	alt.priority = defaultPriority(alt)
	return alt, nil
}

// defaultPriority implements XSLT 1.0 §5.5.
func defaultPriority(alt *patternAlt) float64 {
	if len(alt.steps) > 1 || alt.absolute || alt.idValue != "" {
		return 0.5
	}
	s := alt.steps[0]
	if len(s.preds) > 0 {
		return 0.5
	}
	switch s.test.kind {
	case testName:
		return 0
	case testPI:
		if s.test.piTarget != "" {
			return 0
		}
		return -0.5
	case testNSWildcard:
		return -0.25
	default: // *, node(), text(), comment()
		return -0.5
	}
}

// Alternatives returns per-alternative (sub)patterns with their default
// priorities, for building separate template rules as the XSLT spec
// requires for union patterns.
func (p *Pattern) Alternatives() []*Pattern {
	out := make([]*Pattern, len(p.alts))
	for i, a := range p.alts {
		out[i] = &Pattern{src: p.src, alts: []*patternAlt{a}}
	}
	return out
}

// DefaultPriority returns the default priority of a single-alternative
// pattern (XSLT 1.0 §5.5). For union patterns it returns the maximum.
func (p *Pattern) DefaultPriority() float64 {
	best := -2.0
	for _, a := range p.alts {
		if a.priority > best {
			best = a.priority
		}
	}
	return best
}

// Matches reports whether node matches the pattern. The context supplies
// variable bindings, extension functions and namespace bindings for
// predicates.
func (p *Pattern) Matches(ctx *Context, node *xmldom.Node) (bool, error) {
	for _, alt := range p.alts {
		ok, err := alt.matches(ctx, node)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func (alt *patternAlt) matches(ctx *Context, node *xmldom.Node) (bool, error) {
	if alt.rootOnly {
		return node.Type == xmldom.DocumentNode, nil
	}
	if alt.idValue != "" && !alt.idHasPath {
		return node.Type == xmldom.ElementNode &&
			node.HasAttr("id") && idContains(alt.idValue, node.AttrValue("id")), nil
	}
	cur := node
	for i := len(alt.steps) - 1; i >= 0; i-- {
		s := alt.steps[i]
		ok, err := s.matchesNode(ctx, cur)
		if err != nil {
			return false, err
		}
		if !ok {
			// For a '//' separated step the *descendant* side is fixed:
			// only the ancestor side may float, which is handled below
			// when stepping upwards. The node itself must match the last
			// step exactly.
			return false, nil
		}
		parent := cur.Parent
		if i == 0 {
			// Leftmost step: check anchoring.
			if alt.idValue != "" {
				return ancestorWithID(parent, alt.idValue, s.anc), nil
			}
			if alt.absolute {
				if s.anc {
					// '//step...' — any document ancestry is fine, but the
					// node must be in a tree rooted at a document node.
					return cur.Root().Type == xmldom.DocumentNode, nil
				}
				return parent != nil && parent.Type == xmldom.DocumentNode, nil
			}
			return true, nil
		}
		// Move to the ancestor side for the previous step.
		if parent == nil {
			return false, nil
		}
		if !alt.steps[i].anc {
			cur = parent
			continue
		}
		// '//' gap: try every ancestor for the remaining pattern prefix.
		prefix := &patternAlt{absolute: alt.absolute, steps: alt.steps[:i],
			idValue: alt.idValue, idHasPath: alt.idHasPath}
		// The prefix's last step keeps its own anc flag; we must append a
		// virtual "match here" by testing each ancestor directly.
		for a := parent; a != nil; a = a.Parent {
			ok, err := prefix.matchesSuffixAt(ctx, a)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
	return true, nil
}

// matchesSuffixAt reports whether the pattern (treated as ending at its
// final step) matches the given node.
func (alt *patternAlt) matchesSuffixAt(ctx *Context, node *xmldom.Node) (bool, error) {
	return alt.matches(ctx, node)
}

func idContains(idList, id string) bool {
	if id == "" {
		return false
	}
	for _, tok := range strings.Fields(idList) {
		if tok == id {
			return true
		}
	}
	return false
}

func ancestorWithID(start *xmldom.Node, idList string, anyDepth bool) bool {
	if start == nil {
		return false
	}
	if !anyDepth {
		return start.Type == xmldom.ElementNode && idContains(idList, start.AttrValue("id"))
	}
	for a := start; a != nil; a = a.Parent {
		if a.Type == xmldom.ElementNode && idContains(idList, a.AttrValue("id")) {
			return true
		}
	}
	return false
}

// matchesNode checks the node test and predicates of a single step against
// a candidate node.
func (s *patStep) matchesNode(ctx *Context, n *xmldom.Node) (bool, error) {
	axis := axisChild
	if s.attr {
		axis = axisAttribute
	}
	if s.attr != (n.Type == xmldom.AttrNode) {
		return false, nil
	}
	ok, err := matchTest(ctx, n, axis, s.test)
	if err != nil || !ok {
		return ok, err
	}
	if len(s.preds) == 0 {
		return true, nil
	}
	// Predicate context: the candidate's position among its matching
	// siblings along the step's axis (from the parent).
	parent := n.Parent
	var siblings []*xmldom.Node
	if parent != nil {
		for _, c := range axisNodes(parent, axis) {
			match, err := matchTest(ctx, c, axis, s.test)
			if err != nil {
				return false, err
			}
			if match {
				siblings = append(siblings, c)
			}
		}
	} else {
		siblings = []*xmldom.Node{n}
	}
	for _, pred := range s.preds {
		var err error
		siblings, err = applyPredicate(ctx, siblings, pred)
		if err != nil {
			return false, err
		}
	}
	for _, c := range siblings {
		if c == n {
			return true, nil
		}
	}
	return false, nil
}

// MatchClass describes the node categories a pattern could possibly match,
// derived from its terminal steps. It is a conservative prefilter for
// template dispatch: a node outside every listed category can never match,
// while listed categories still require a full Matches check.
type MatchClass struct {
	Elements bool
	// ElemName, when non-empty, means only elements with this local name
	// can match (namespace URIs are still checked by Matches). Empty with
	// Elements=true means any element name. AttrName is the same for
	// attributes.
	ElemName string
	Attrs    bool
	AttrName string
	Text     bool
	Comment  bool
	PI       bool
	Document bool
}

// Class merges the classification of every alternative of p. The
// per-alternative classes are computed once at compile time.
func (p *Pattern) Class() MatchClass {
	var c MatchClass
	for _, alt := range p.alts {
		ac := alt.cls
		if ac.Elements {
			if !c.Elements {
				c.Elements, c.ElemName = true, ac.ElemName
			} else if c.ElemName != ac.ElemName {
				c.ElemName = ""
			}
		}
		if ac.Attrs {
			if !c.Attrs {
				c.Attrs, c.AttrName = true, ac.AttrName
			} else if c.AttrName != ac.AttrName {
				c.AttrName = ""
			}
		}
		c.Text = c.Text || ac.Text
		c.Comment = c.Comment || ac.Comment
		c.PI = c.PI || ac.PI
		c.Document = c.Document || ac.Document
	}
	return c
}

func (alt *patternAlt) class() MatchClass {
	if alt.rootOnly {
		return MatchClass{Document: true}
	}
	if len(alt.steps) == 0 {
		// Bare id('...'): matches elements carrying an id attribute.
		return MatchClass{Elements: true}
	}
	s := alt.steps[len(alt.steps)-1]
	if s.attr {
		switch s.test.kind {
		case testName:
			return MatchClass{Attrs: true, AttrName: s.test.name}
		case testAnyName, testNSWildcard, testNode:
			return MatchClass{Attrs: true}
		default:
			// text()/comment()/pi() on the attribute axis match nothing.
			return MatchClass{}
		}
	}
	switch s.test.kind {
	case testName:
		return MatchClass{Elements: true, ElemName: s.test.name}
	case testAnyName, testNSWildcard:
		return MatchClass{Elements: true}
	case testText:
		return MatchClass{Text: true}
	case testComment:
		return MatchClass{Comment: true}
	case testPI:
		return MatchClass{PI: true}
	case testNode:
		// node() matches every principal-axis candidate, including the
		// document node in this implementation's matcher.
		return MatchClass{Elements: true, Text: true, Comment: true, PI: true, Document: true}
	}
	// Unknown test kind: be maximally conservative.
	return MatchClass{Elements: true, Attrs: true, Text: true, Comment: true, PI: true, Document: true}
}
