package xpath

import (
	"fmt"
	"math"
	"sync"

	"goldweb/internal/xmldom"
)

// The IR evaluator: a small stack machine over unboxed tagged values.
// One pooled frame per top-level evaluation; nested programs
// (predicates) run on the same frame with a saved base, like call
// frames. Nested Compiled evaluations triggered from extension
// functions (key(), document()) acquire their own frame from the pool,
// so re-entrancy is safe.

// vkind tags an irval with one of the four XPath 1.0 value types.
type vkind uint8

const (
	vNodes vkind = iota
	vBool
	vNum
	vStr
)

// irval is an unboxed XPath value: scalars live inline, so arithmetic,
// comparisons and boolean logic never allocate.
type irval struct {
	kind  vkind
	b     bool
	num   float64
	str   string
	nodes NodeSet
}

func boolVal(b bool) irval             { return irval{kind: vBool, b: b} }
func numVal(f float64) irval           { return irval{kind: vNum, num: f} }
func strVal(s string) irval            { return irval{kind: vStr, str: s} }
func nodesVal(ns []*xmldom.Node) irval { return irval{kind: vNodes, nodes: ns} }

// fromValue unboxes a Value. A nil Value (which no conforming function
// should return) maps to the empty node-set.
func fromValue(v Value) irval {
	switch t := v.(type) {
	case NodeSet:
		return nodesVal(t)
	case Boolean:
		return boolVal(bool(t))
	case Number:
		return numVal(float64(t))
	case String:
		return strVal(string(t))
	}
	return nodesVal(nil)
}

// boxed converts back to the interface Value form.
func (v irval) boxed() Value {
	switch v.kind {
	case vBool:
		return Boolean(v.b)
	case vNum:
		return Number(v.num)
	case vStr:
		return String(v.str)
	}
	return v.nodes
}

func (v irval) truthy() bool {
	switch v.kind {
	case vBool:
		return v.b
	case vNum:
		return v.num != 0 && !math.IsNaN(v.num)
	case vStr:
		return len(v.str) > 0
	}
	return len(v.nodes) > 0
}

func (v irval) toStr() string {
	switch v.kind {
	case vBool:
		if v.b {
			return "true"
		}
		return "false"
	case vNum:
		return FormatNumber(v.num)
	case vStr:
		return v.str
	}
	if len(v.nodes) == 0 {
		return ""
	}
	return v.nodes[0].StringValue()
}

func (v irval) toNum() float64 {
	switch v.kind {
	case vBool:
		if v.b {
			return 1
		}
		return 0
	case vNum:
		return v.num
	case vStr:
		return stringToNumber(v.str)
	}
	return stringToNumber(v.toStr())
}

// contextPool recycles evaluation contexts for callers that set up a
// fresh Context per evaluation on a hot path (the xslt engine, the xsd
// identity-constraint validator). GetContext/PutContext is the one
// variable-binding plumbing both share, so poolcheck covers them
// together.
var contextPool = sync.Pool{New: func() interface{} { return new(Context) }}

// GetContext returns a zeroed Context from the pool. Release it with
// PutContext when the evaluation is done.
func GetContext() *Context { return contextPool.Get().(*Context) }

// PutContext returns a Context to the pool, dropping every binding so
// the pooled value never pins documents, variables or function tables.
func PutContext(c *Context) {
	*c = Context{}
	contextPool.Put(c)
}

// frame is the pooled operand stack of one top-level IR evaluation.
type frame struct {
	stack []irval
}

var framePool = sync.Pool{New: func() interface{} { return &frame{stack: make([]irval, 0, 16)} }}

// getFrame returns a pooled frame with room for need operand slots, so
// deep programs never grow the stack mid-evaluation.
func getFrame(need int) *frame {
	f := framePool.Get().(*frame)
	if cap(f.stack) < need {
		f.stack = make([]irval, 0, need)
	}
	return f
}

func putFrame(f *frame) {
	f.truncate(0)
	framePool.Put(f)
}

func (f *frame) push(v irval) { f.stack = append(f.stack, v) }

func (f *frame) pop() irval {
	i := len(f.stack) - 1
	v := f.stack[i]
	f.stack[i] = irval{} // do not retain node-sets in the pooled array
	f.stack = f.stack[:i]
	return v
}

// truncate drops down to base, clearing the abandoned slots so the
// pooled array never pins node-sets.
func (f *frame) truncate(base int) {
	for i := base; i < len(f.stack); i++ {
		f.stack[i] = irval{}
	}
	f.stack = f.stack[:base]
}

// run executes the compiled program on a pooled frame. (An inline
// stack-allocated frame was tried and lost: exec leaks its frame
// parameter through the path-evaluation call chain, so the backing
// array is heap-moved on every run — the pool amortizes that.)
func (c *Compiled) run(ctx *Context) (irval, error) {
	f := getFrame(c.prog.maxStack)
	v, err := exec(c.prog, ctx, f)
	putFrame(f)
	return v, err
}

// Eval evaluates the expression via the planned IR. Compiled satisfies
// the Expr interface, so existing call sites keep working unchanged.
func (c *Compiled) Eval(ctx *Context) (Value, error) {
	v, err := c.run(ctx)
	if err != nil {
		return nil, err
	}
	return v.boxed(), nil
}

// EvalBool evaluates the expression and coerces the result to a boolean
// without boxing intermediate values.
func (c *Compiled) EvalBool(ctx *Context) (bool, error) {
	v, err := c.run(ctx)
	if err != nil {
		return false, err
	}
	return v.truthy(), nil
}

// EvalString evaluates the expression and coerces the result to its
// XPath string value without boxing.
func (c *Compiled) EvalString(ctx *Context) (string, error) {
	v, err := c.run(ctx)
	if err != nil {
		return "", err
	}
	return v.toStr(), nil
}

// EvalNumber evaluates the expression and coerces the result to a
// number without boxing.
func (c *Compiled) EvalNumber(ctx *Context) (float64, error) {
	v, err := c.run(ctx)
	if err != nil {
		return 0, err
	}
	return v.toNum(), nil
}

// EvalNodes evaluates the expression and returns the resulting node-set
// in document order; it is an error if the expression yields a scalar.
func (c *Compiled) EvalNodes(ctx *Context) (NodeSet, error) {
	v, err := c.run(ctx)
	if err != nil {
		return nil, err
	}
	if v.kind != vNodes {
		return nil, fmt.Errorf("xpath: %s does not evaluate to a node-set", c.src)
	}
	return v.nodes, nil
}

// exec runs one program on the frame, returning the single result
// value. The frame is restored to its entry depth on every path.
func exec(p *program, ctx *Context, f *frame) (irval, error) {
	base := len(f.stack)
	code := p.code
	var rerr error
loop:
	for pc := 0; pc < len(code); pc++ {
		in := code[pc]
		switch in.op {
		case opConst:
			f.push(p.consts[in.a])
		case opVar:
			v, err := ctx.lookupVar(p.names[in.a])
			if err != nil {
				rerr = err
				break loop
			}
			f.push(fromValue(v))
		case opNeg:
			v := f.pop()
			f.push(numVal(-v.toNum()))
		case opAdd, opSub, opMul, opDiv, opMod:
			r := f.pop()
			l := f.pop()
			a, b := l.toNum(), r.toNum()
			var res float64
			switch in.op {
			case opAdd:
				res = a + b
			case opSub:
				res = a - b
			case opMul:
				res = a * b
			case opDiv:
				res = a / b
			case opMod:
				res = math.Mod(a, b)
			}
			f.push(numVal(res))
		case opEq, opNeq, opLt, opLe, opGt, opGe:
			r := f.pop()
			l := f.pop()
			f.push(boolVal(compareIR(in.op, l, r)))
		case opJmpFalse:
			v := f.pop()
			if !v.truthy() {
				f.push(boolVal(false))
				pc = int(in.a) - 1
			}
		case opJmpTrue:
			v := f.pop()
			if v.truthy() {
				f.push(boolVal(true))
				pc = int(in.a) - 1
			}
		case opToBool:
			v := f.pop()
			f.push(boolVal(v.truthy()))
		case opUnion:
			n := int(in.a)
			var all []*xmldom.Node
			parts := f.stack[len(f.stack)-n:]
			for i := range parts {
				if parts[i].kind != vNodes {
					rerr = fmt.Errorf("xpath: operand of | is not a node-set")
					break loop
				}
				all = append(all, parts[i].nodes...)
			}
			f.truncate(len(f.stack) - n)
			f.push(nodesVal(xmldom.SortDocOrder(all)))
		case opCall:
			cs := p.calls[in.a]
			var fn Function
			if ctx.Funcs != nil {
				fn = ctx.Funcs[cs.name]
			}
			if fn == nil {
				fn = coreFunctions[cs.name]
			}
			if fn == nil {
				rerr = fmt.Errorf("xpath: unknown function %s()", cs.name)
				break loop
			}
			var args []Value
			if cs.argc > 0 {
				args = make([]Value, cs.argc)
				for i := cs.argc - 1; i >= 0; i-- {
					args[i] = f.pop().boxed()
				}
			}
			v, err := fn(ctx, args)
			if err != nil {
				rerr = err
				break loop
			}
			f.push(fromValue(v))
		case opID:
			arg := f.pop()
			var fn Function
			if ctx.Funcs != nil {
				fn = ctx.Funcs["id"]
			}
			if fn != nil {
				// The context shadows the core id(); defer to it.
				v, err := fn(ctx, []Value{arg.boxed()})
				if err != nil {
					rerr = err
					break loop
				}
				f.push(fromValue(v))
				continue
			}
			f.push(nodesVal(idLookup(ctx, arg.boxed())))
		case opPath:
			ns, err := evalPathPlan(p.paths[in.a], ctx, f)
			if err != nil {
				rerr = err
				break loop
			}
			f.push(nodesVal(ns))
		case opFilter:
			v := f.pop()
			if v.kind != vNodes {
				rerr = fmt.Errorf("xpath: predicate applied to non-node-set")
				break loop
			}
			nodes := []*xmldom.Node(v.nodes)
			for _, pr := range p.filters[in.a] {
				var err error
				nodes, err = applyPredPlan(ctx, nodes, pr, f)
				if err != nil {
					rerr = err
					break loop
				}
			}
			f.push(nodesVal(nodes))
		}
	}
	if rerr != nil {
		f.truncate(base)
		return irval{}, rerr
	}
	res := f.pop()
	return res, nil
}

// tokForOp maps comparison opcodes back to token kinds for the
// node-set comparison fallback.
func tokForOp(op opcode) tokKind {
	switch op {
	case opEq:
		return tokEq
	case opNeq:
		return tokNeq
	case opLt:
		return tokLt
	case opLe:
		return tokLe
	case opGt:
		return tokGt
	}
	return tokGe
}

// compareIR implements XPath comparison over unboxed operands. The
// scalar-scalar case (the hot one) mirrors compareAtomic without
// boxing; node-set operands fall back to the shared existential logic.
func compareIR(op opcode, l, r irval) bool {
	if l.kind == vNodes || r.kind == vNodes {
		return compare(tokForOp(op), l.boxed(), r.boxed())
	}
	if op == opEq || op == opNeq {
		var eq bool
		switch {
		case l.kind == vBool || r.kind == vBool:
			eq = l.truthy() == r.truthy()
		case l.kind == vNum || r.kind == vNum:
			eq = l.toNum() == r.toNum()
		default:
			eq = l.str == r.str
		}
		if op == opNeq {
			return !eq
		}
		return eq
	}
	a, b := l.toNum(), r.toNum()
	switch op {
	case opLt:
		return a < b
	case opLe:
		return a <= b
	case opGt:
		return a > b
	}
	return a >= b
}

// evalPathPlan walks a planned location path.
func evalPathPlan(pl *pathPlan, ctx *Context, f *frame) ([]*xmldom.Node, error) {
	var cur []*xmldom.Node
	switch {
	case pl.hasInput:
		in := f.pop()
		if in.kind != vNodes {
			return nil, fmt.Errorf("xpath: path applied to non-node-set")
		}
		cur = in.nodes
	case pl.absolute:
		if ctx.Node == nil {
			return nil, fmt.Errorf("xpath: no context node for absolute path")
		}
		cur = []*xmldom.Node{ctx.Node.Root()}
	default:
		if ctx.Node == nil {
			return nil, fmt.Errorf("xpath: no context node for path")
		}
		cur = []*xmldom.Node{ctx.Node}
	}
	for _, st := range pl.steps {
		if len(cur) == 1 && st.forward {
			// Single context node on a planned forward axis: the step
			// already yields document order with no duplicates, so the
			// merge sort (and its per-node order keys on unfrozen trees)
			// is skipped. The result may alias a frozen document's name
			// index, which is safe because node-set values are read-only.
			sel, err := evalPlanStep(ctx, cur[0], st, f)
			if err != nil {
				return nil, err
			}
			cur = sel
			continue
		}
		var next []*xmldom.Node
		for _, n := range cur {
			sel, err := evalPlanStep(ctx, n, st, f)
			if err != nil {
				return nil, err
			}
			next = append(next, sel...)
		}
		cur = xmldom.SortDocOrder(next)
	}
	return cur, nil
}

// evalPlanStep selects along one planned step from a single context
// node and applies its predicates in axis order.
func evalPlanStep(ctx *Context, n *xmldom.Node, st *planStep, f *frame) ([]*xmldom.Node, error) {
	var matched []*xmldom.Node
	fast := false
	if st.indexed {
		matched, fast = indexedDescendants(n, st)
	}
	if !fast {
		candidates := axisNodes(n, st.axis)
		matched = candidates[:0:0]
		for _, c := range candidates {
			ok, err := matchTest(ctx, c, st.axis, st.test)
			if err != nil {
				return nil, err
			}
			if ok {
				matched = append(matched, c)
			}
		}
	}
	var err error
	for _, pr := range st.preds {
		matched, err = applyPredPlan(ctx, matched, pr, f)
		if err != nil {
			return nil, err
		}
	}
	return matched, nil
}

// indexedDescendants answers a planned descendant name test straight
// from a frozen document's name index (ok=false → take the walking
// path). The index matches by local name alone, so a residual filter
// drops elements in a namespace. The result slice may alias the index,
// which is safe because every caller treats step results as read-only.
func indexedDescendants(n *xmldom.Node, st *planStep) ([]*xmldom.Node, bool) {
	list, ok := n.IndexedDescendants(st.test.name, st.axis == axisDescendantOrSelf)
	if !ok {
		return nil, false
	}
	for i, c := range list {
		if c.URI != "" {
			out := make([]*xmldom.Node, i, len(list))
			copy(out, list[:i])
			for _, d := range list[i:] {
				if d.URI == "" {
					out = append(out, d)
				}
			}
			return out, true
		}
	}
	return list, true
}

// applyPredPlan filters nodes (in axis order) by a planned predicate.
func applyPredPlan(ctx *Context, nodes []*xmldom.Node, pr *predPlan, f *frame) ([]*xmldom.Node, error) {
	if pr.posConst > 0 {
		// Constant integer predicate: direct k-th selection, nothing to
		// evaluate per node.
		if pr.posConst <= len(nodes) {
			return nodes[pr.posConst-1 : pr.posConst], nil
		}
		return nil, nil
	}
	var out []*xmldom.Node
	// One reusable pooled sub-context for the whole scan; predicate
	// programs never retain the context they are given. (A plain local
	// would be heap-moved every call: exec leaks its context parameter
	// into the dynamically resolved function table.)
	sub := GetContext()
	defer PutContext(sub)
	*sub = *ctx
	sub.Size = len(nodes)
	for i, n := range nodes {
		sub.Node = n
		sub.Position = i + 1
		v, err := exec(pr.prog, sub, f)
		if err != nil {
			return nil, err
		}
		keep := false
		if !pr.posFree && v.kind == vNum {
			// A numeric predicate is an implicit position() = N test.
			keep = v.num == float64(i+1)
		} else {
			keep = v.truthy()
		}
		if keep {
			out = append(out, n)
		}
	}
	return out, nil
}
