package xpath_test

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"goldweb/internal/core"
	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// The IR evaluator must agree with the legacy AST interpreter
// (EvalReference) on every expression the builtin stylesheets use and on
// a hand-written corpus covering the rest of the grammar, across every
// example model document — both as a plain tree and frozen under the
// document index, so the planner's indexed fast paths are exercised.

// harvestExprs pulls every XPath expression out of a stylesheet source:
// whole-attribute expressions (select, test, use, count, value) and the
// {expr} parts of attribute value templates.
func harvestExprs(t *testing.T, src string) []string {
	t.Helper()
	doc, err := xmldom.ParseString(src)
	if err != nil {
		t.Fatalf("parse stylesheet: %v", err)
	}
	const xslNS = "http://www.w3.org/1999/XSL/Transform"
	exprAttrs := map[string]bool{"select": true, "test": true, "use": true, "count": true, "value": true}
	var out []string
	var walk func(n *xmldom.Node)
	walk = func(n *xmldom.Node) {
		for _, a := range n.Attr {
			if n.URI == xslNS && exprAttrs[a.Name] {
				out = append(out, a.Data)
				continue
			}
			// AVT parts in literal result attributes.
			v := a.Data
			for {
				i := strings.IndexByte(v, '{')
				if i < 0 || i+1 < len(v) && v[i+1] == '{' {
					break
				}
				j := strings.IndexByte(v[i:], '}')
				if j < 0 {
					break
				}
				out = append(out, v[i+1:i+j])
				v = v[i+j+1:]
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(doc)
	return out
}

// handExprs covers grammar corners the stylesheets do not reach.
var handExprs = []string{
	"1 + 2 * 3", "10 mod 3", "10 div 4", "-count(*)", "2 > 1", "2 >= 2",
	"1 < 2 or 3 < 2", "1 = 1 and 2 = 3", "'a' = 'a'", "'a' != 'b'",
	". = ..", "@* | *", "* | text()", "(*)[1]", "(* | @*)[last()]",
	"*[position() = 2]", "*[2]", "*[last()]", "*[position() != last()]",
	"*[not(position() = 1)]", "*[name() != 'x']", "*[@id]", "*[.//text()]",
	"child::node()", "self::node()", "ancestor::*", "ancestor-or-self::*",
	"following-sibling::*", "preceding-sibling::*[1]", "descendant::*[3]",
	"descendant-or-self::*", "parent::*", "..//*", ".//*", "//*[@id][1]",
	"//*", "/", "/*", "/*/*", "string(.)", "string(@id)", "string-length(name())",
	"normalize-space(' a  b ')", "translate(name(), 'abc', 'ABC')",
	"concat(name(), '-', count(*))", "substring(name(), 2)", "substring(name(), 2, 3)",
	"substring-before('a-b', '-')", "substring-after('a-b', '-')",
	"starts-with(name(), 'g')", "contains(name(), 'o')",
	"count(//*)", "sum(//*[false()])", "number('12.5')", "number('x')",
	"floor(1.5)", "ceiling(1.5)", "round(2.5)", "round(-2.5)",
	"boolean(*)", "not(*)", "true()", "false()", "lang('en')",
	"local-name()", "local-name(..)", "name(@*)", "namespace-uri()",
	"id('nosuch')", "id(@id)", "id('a b')", "position() + last()",
	"$v", "$v + 1", "concat($v, 'x')", "*[$v]", "string($v)",
	"current()", "generate-id()", "generate-id(.) = generate-id(current())",
	"key('nosuch', 'x')", "document('')", "system-property('xsl:version')",
	"element-available('xsl:comment')", "function-available('count')",
	"format-number(42, '#')", "unknown-fn()", "count()", "*[1.5]", "*[0]",
	"*[-1]", "'abc' + 1", "(//*)[2]", "(.)", "((*))[1]", "@id", "@nosuch",
	"text()", "comment()", "processing-instruction()", "node()",
}

// stubFuncs supplies deterministic implementations of the XSLT extension
// functions so harvested expressions evaluate identically under both
// evaluators.
func stubFuncs() map[string]xpath.Function {
	return map[string]xpath.Function{
		"current": func(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
			n := ctx.Current
			if n == nil {
				n = ctx.Node
			}
			return xpath.NodeSet{n}, nil
		},
		"key": func(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
			return xpath.NodeSet{}, nil
		},
		"document": func(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
			return xpath.NodeSet{}, nil
		},
		"generate-id": func(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
			if len(args) == 1 {
				if ns, ok := args[0].(xpath.NodeSet); ok && len(ns) > 0 {
					return xpath.String(ns[0].Name), nil
				}
				return xpath.String(""), nil
			}
			return xpath.String(ctx.Node.Name), nil
		},
		"format-number": func(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
			if len(args) < 1 {
				return xpath.String(""), nil
			}
			return xpath.String(xpath.ToString(args[0])), nil
		},
		"system-property": func(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
			return xpath.String("1.0"), nil
		},
		"element-available": func(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
			return xpath.Boolean(false), nil
		},
		"function-available": func(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
			return xpath.Boolean(true), nil
		},
		"unparsed-entity-uri": func(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
			return xpath.String(""), nil
		},
	}
}

var varRef = regexp.MustCompile(`\$([A-Za-z_][A-Za-z0-9_.-]*)`)

// bindVars gives every variable an expression references a fixed value.
func bindVars(src string, vars map[string]xpath.Value) {
	for _, m := range varRef.FindAllStringSubmatch(src, -1) {
		if _, ok := vars[m[1]]; !ok {
			vars[m[1]] = xpath.String("3")
		}
	}
}

// sampleNodes picks the document root plus a bounded sample of elements,
// attributes and text nodes.
func sampleNodes(doc *xmldom.Node) []*xmldom.Node {
	nodes := []*xmldom.Node{doc}
	var walk func(n *xmldom.Node)
	count := 0
	var walkAttrs bool = true
	walk = func(n *xmldom.Node) {
		if count >= 40 {
			return
		}
		count++
		nodes = append(nodes, n)
		if walkAttrs && len(n.Attr) > 0 {
			nodes = append(nodes, n.Attr[0])
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, c := range doc.Children {
		walk(c)
	}
	return nodes
}

// sameValue compares results, treating NaN as equal to NaN and an empty
// node-set as equal to a nil one.
func sameValue(a, b xpath.Value) bool {
	an, aok := a.(xpath.Number)
	bn, bok := b.(xpath.Number)
	if aok && bok && math.IsNaN(float64(an)) && math.IsNaN(float64(bn)) {
		return true
	}
	as, aok := a.(xpath.NodeSet)
	bs, bok := b.(xpath.NodeSet)
	if aok && bok && len(as) == 0 && len(bs) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func TestIRMatchesReference(t *testing.T) {
	exprs := append([]string{}, handExprs...)
	exprs = append(exprs, harvestExprs(t, core.SingleXSL)...)
	exprs = append(exprs, harvestExprs(t, core.MultiXSL)...)

	models, err := filepath.Glob("../../examples/models/*.xml")
	if err != nil || len(models) == 0 {
		t.Fatalf("no example models found: %v", err)
	}

	type docCase struct {
		name string
		doc  *xmldom.Node
	}
	var docs []docCase
	for _, path := range models {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := xmldom.Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		frozen, err := xmldom.Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		frozen.Freeze()
		base := filepath.Base(path)
		docs = append(docs, docCase{base, plain}, docCase{base + "/frozen", frozen})
	}

	funcs := stubFuncs()
	for _, src := range exprs {
		c, err := xpath.Compile(src)
		if err != nil {
			// Deliberately invalid corpus entries fail at compile time for
			// both evaluators by construction.
			continue
		}
		vars := map[string]xpath.Value{}
		bindVars(src, vars)
		for _, dc := range docs {
			for _, n := range sampleNodes(dc.doc) {
				for _, pos := range [][2]int{{1, 1}, {2, 3}} {
					ctx := &xpath.Context{Node: n, Position: pos[0], Size: pos[1], Vars: vars, Funcs: funcs, Current: n}
					got, gotErr := c.Eval(ctx)
					ref := &xpath.Context{Node: n, Position: pos[0], Size: pos[1], Vars: vars, Funcs: funcs, Current: n}
					want, wantErr := c.EvalReference(ref)
					if (gotErr != nil) != (wantErr != nil) {
						t.Fatalf("%q on %s node %s: IR err=%v, reference err=%v", src, dc.name, n.Name, gotErr, wantErr)
					}
					if gotErr == nil && !sameValue(got, want) {
						t.Fatalf("%q on %s node %s pos=%d/%d:\n  IR:        %#v\n  reference: %#v\n  plan:\n%s",
							src, dc.name, n.Name, pos[0], pos[1], got, want, c.Plan())
					}
				}
			}
		}
	}
}
