package xpath

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"goldweb/internal/xmldom"
)

// TestNumberFormatRoundTrip: FormatNumber output re-parses to the same
// value via the XPath string→number rules for all finite doubles.
func TestNumberFormatRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		s := FormatNumber(x)
		back := stringToNumber(s)
		return back == x || (x == 0 && back == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestComparisonMatchesGo: XPath numeric comparisons agree with Go's for
// finite operands.
func TestComparisonMatchesGo(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		doc := xmldom.MustParseString("<r/>")
		for _, tc := range []struct {
			op   string
			want bool
		}{
			{"<", a < b}, {"<=", a <= b}, {">", a > b}, {">=", a >= b},
			{"=", a == b}, {"!=", a != b},
		} {
			expr := fmt.Sprintf("%s %s %s", FormatNumber(a), tc.op, FormatNumber(b))
			v, err := Query(doc, expr)
			if err != nil {
				return false
			}
			if ToBool(v) != tc.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestUnionProperties: union is commutative and idempotent on node-sets.
func TestUnionProperties(t *testing.T) {
	doc := xmldom.MustParseString(`<r><a/><b/><a/><c><a/><b/></c></r>`)
	pairs := [][2]string{
		{"//a", "//b"},
		{"//a", "//a"},
		{"/r/*", "//c/*"},
		{"//a", "/nothing"},
	}
	for _, p := range pairs {
		ab, err := Query(doc, p[0]+" | "+p[1])
		if err != nil {
			t.Fatal(err)
		}
		ba, err := Query(doc, p[1]+" | "+p[0])
		if err != nil {
			t.Fatal(err)
		}
		nsAB, nsBA := ab.(NodeSet), ba.(NodeSet)
		if len(nsAB) != len(nsBA) {
			t.Errorf("%v: |%d| != |%d|", p, len(nsAB), len(nsBA))
			continue
		}
		for i := range nsAB {
			if nsAB[i] != nsBA[i] {
				t.Errorf("%v: order differs at %d", p, i)
				break
			}
		}
	}
}

// TestNodeSetAlwaysDocOrder: any path expression yields nodes in document
// order without duplicates.
func TestNodeSetAlwaysDocOrder(t *testing.T) {
	doc := xmldom.MustParseString(`<r><a><b/><b/></a><a><b/></a><c><a><b/></a></c></r>`)
	exprs := []string{
		"//b", "//a//b", "//a | //b", "//b/ancestor::*",
		"//b/preceding::*", "//b/following::*", "/r/*/*",
		"//a[2]/b | //a[1]/b",
	}
	for _, src := range exprs {
		v, err := Query(doc, src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		ns := v.(NodeSet)
		for i := 1; i < len(ns); i++ {
			if ns[i-1] == ns[i] {
				t.Errorf("%s: duplicate at %d", src, i)
			}
			if xmldom.CompareOrder(ns[i-1], ns[i]) >= 0 {
				t.Errorf("%s: out of document order at %d", src, i)
			}
		}
	}
}

// TestPositionIndexing: //i[k] selects exactly the kth child for any k.
func TestPositionIndexing(t *testing.T) {
	const n = 20
	var b strings.Builder
	b.WriteString("<r>")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "<i v='%d'/>", i)
	}
	b.WriteString("</r>")
	doc := xmldom.MustParseString(b.String())
	for k := 1; k <= n; k++ {
		got, err := QueryString(doc, fmt.Sprintf("string(/r/i[%d]/@v)", k))
		if err != nil {
			t.Fatal(err)
		}
		if got != fmt.Sprint(k) {
			t.Errorf("i[%d] = %q", k, got)
		}
	}
	// Out of range selects nothing.
	v, _ := Query(doc, fmt.Sprintf("/r/i[%d]", n+1))
	if len(v.(NodeSet)) != 0 {
		t.Error("out-of-range index matched")
	}
}

// TestStringFunctionProperties: concat length, substring containment,
// translate idempotence on disjoint maps.
func TestStringFunctionProperties(t *testing.T) {
	doc := xmldom.MustParseString("<r/>")
	f := func(a, b string) bool {
		// Avoid quote chars that would break the literal syntax.
		clean := func(s string) string {
			s = strings.ReplaceAll(s, `'`, "")
			s = strings.ReplaceAll(s, `"`, "")
			return s
		}
		a, b = clean(a), clean(b)
		v, err := Query(doc, fmt.Sprintf("string-length(concat('%s','%s'))", a, b))
		if err != nil {
			return false
		}
		return int(ToNumber(v)) == len([]rune(a))+len([]rune(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBooleanAlgebra: and/or/not behave like Go booleans.
func TestBooleanAlgebra(t *testing.T) {
	doc := xmldom.MustParseString("<r/>")
	lit := func(b bool) string {
		if b {
			return "true()"
		}
		return "false()"
	}
	f := func(a, b bool) bool {
		for _, tc := range []struct {
			expr string
			want bool
		}{
			{lit(a) + " and " + lit(b), a && b},
			{lit(a) + " or " + lit(b), a || b},
			{"not(" + lit(a) + ")", !a},
			{"not(" + lit(a) + " and " + lit(b) + ") = (not(" + lit(a) + ") or not(" + lit(b) + "))", true},
		} {
			v, err := Query(doc, tc.expr)
			if err != nil || ToBool(v) != tc.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestArithmeticProperties: div/mod relation a = (a div b)*b + remainder
// structure for integers (XPath mod follows the dividend's sign).
func TestArithmeticProperties(t *testing.T) {
	doc := xmldom.MustParseString("<r/>")
	f := func(a int16, b int16) bool {
		if b == 0 {
			return true
		}
		expr := fmt.Sprintf("(%d mod %d) = (%d - (floor(%d div %d) * %d))",
			a, b, a, a, b, b)
		// floor(div) only matches truncation when signs agree; restrict.
		if (a < 0) != (b < 0) {
			return true
		}
		v, err := Query(doc, expr)
		return err == nil && ToBool(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
