package xpath

import (
	"fmt"
	"math"
	"strings"

	"goldweb/internal/xmldom"
)

// coreFunctions is the XPath 1.0 core function library.
var coreFunctions map[string]Function

func init() {
	coreFunctions = map[string]Function{
		// node-set functions
		"last":          fnLast,
		"position":      fnPosition,
		"count":         fnCount,
		"id":            fnID,
		"local-name":    fnLocalName,
		"namespace-uri": fnNamespaceURI,
		"name":          fnName,
		// string functions
		"string":           fnString,
		"concat":           fnConcat,
		"starts-with":      fnStartsWith,
		"contains":         fnContains,
		"substring-before": fnSubstringBefore,
		"substring-after":  fnSubstringAfter,
		"substring":        fnSubstring,
		"string-length":    fnStringLength,
		"normalize-space":  fnNormalizeSpace,
		"translate":        fnTranslate,
		// boolean functions
		"boolean": fnBoolean,
		"not":     fnNot,
		"true":    fnTrue,
		"false":   fnFalse,
		"lang":    fnLang,
		// number functions
		"number":  fnNumber,
		"sum":     fnSum,
		"floor":   fnFloor,
		"ceiling": fnCeiling,
		"round":   fnRound,
	}
}

func argc(name string, args []Value, lo, hi int) error {
	if len(args) < lo || (hi >= 0 && len(args) > hi) {
		return fmt.Errorf("xpath: wrong number of arguments to %s(): %d", name, len(args))
	}
	return nil
}

// argOrContext returns the single optional argument, or the context node as
// a node-set when absent.
func argOrContext(ctx *Context, args []Value) Value {
	if len(args) > 0 {
		return args[0]
	}
	return NodeSet{ctx.Node}
}

func fnLast(ctx *Context, args []Value) (Value, error) {
	if err := argc("last", args, 0, 0); err != nil {
		return nil, err
	}
	return Number(ctx.Size), nil
}

func fnPosition(ctx *Context, args []Value) (Value, error) {
	if err := argc("position", args, 0, 0); err != nil {
		return nil, err
	}
	return Number(ctx.Position), nil
}

func fnCount(ctx *Context, args []Value) (Value, error) {
	if err := argc("count", args, 1, 1); err != nil {
		return nil, err
	}
	ns, ok := args[0].(NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: count() requires a node-set")
	}
	return Number(len(ns)), nil
}

// fnID implements id(). Without DTD information, an attribute named "id"
// is treated as the element's ID, matching the convention of the paper's
// schema (every class carries an xsd:ID attribute called id).
func fnID(ctx *Context, args []Value) (Value, error) {
	if err := argc("id", args, 1, 1); err != nil {
		return nil, err
	}
	return idLookup(ctx, args[0]), nil
}

// idLookup is the body of id() after arity checking, shared with the IR
// evaluator's dedicated id-map opcode.
func idLookup(ctx *Context, arg Value) NodeSet {
	var ids []string
	switch v := arg.(type) {
	case NodeSet:
		for _, n := range v {
			ids = append(ids, strings.Fields(n.StringValue())...)
		}
	default:
		ids = strings.Fields(ToString(v))
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	var out []*xmldom.Node
	if ctx.Node == nil {
		return NodeSet(nil)
	}
	root := ctx.Node.Root()
	if ix := root.Index(); ix != nil {
		// Frozen document: answer from the ID map. (On documents with
		// duplicate ids — invalid XML — this returns the first bearer
		// where the walking path returns all of them.)
		for _, id := range ids {
			if e := ix.ByID(id); e != nil {
				out = append(out, e)
			}
		}
		return NodeSet(xmldom.SortDocOrder(out))
	}
	for _, e := range root.DescendantElements("") {
		if want[e.AttrValue("id")] && e.HasAttr("id") {
			out = append(out, e)
		}
	}
	return NodeSet(xmldom.SortDocOrder(out))
}

func singleNode(ctx *Context, args []Value) (*xmldom.Node, error) {
	if len(args) == 0 {
		return ctx.Node, nil
	}
	ns, ok := args[0].(NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: argument must be a node-set")
	}
	if len(ns) == 0 {
		return nil, nil
	}
	return ns[0], nil
}

func fnLocalName(ctx *Context, args []Value) (Value, error) {
	if err := argc("local-name", args, 0, 1); err != nil {
		return nil, err
	}
	n, err := singleNode(ctx, args)
	if err != nil || n == nil {
		return String(""), err
	}
	switch n.Type {
	case xmldom.ElementNode, xmldom.AttrNode, xmldom.PINode:
		return String(n.Name), nil
	}
	return String(""), nil
}

func fnNamespaceURI(ctx *Context, args []Value) (Value, error) {
	if err := argc("namespace-uri", args, 0, 1); err != nil {
		return nil, err
	}
	n, err := singleNode(ctx, args)
	if err != nil || n == nil {
		return String(""), err
	}
	return String(n.URI), nil
}

func fnName(ctx *Context, args []Value) (Value, error) {
	if err := argc("name", args, 0, 1); err != nil {
		return nil, err
	}
	n, err := singleNode(ctx, args)
	if err != nil || n == nil {
		return String(""), err
	}
	switch n.Type {
	case xmldom.ElementNode, xmldom.AttrNode:
		return String(n.FullName()), nil
	case xmldom.PINode:
		return String(n.Name), nil
	}
	return String(""), nil
}

func fnString(ctx *Context, args []Value) (Value, error) {
	if err := argc("string", args, 0, 1); err != nil {
		return nil, err
	}
	return String(ToString(argOrContext(ctx, args))), nil
}

func fnConcat(ctx *Context, args []Value) (Value, error) {
	if err := argc("concat", args, 2, -1); err != nil {
		return nil, err
	}
	var b strings.Builder
	for _, a := range args {
		b.WriteString(ToString(a))
	}
	return String(b.String()), nil
}

func fnStartsWith(ctx *Context, args []Value) (Value, error) {
	if err := argc("starts-with", args, 2, 2); err != nil {
		return nil, err
	}
	return Boolean(strings.HasPrefix(ToString(args[0]), ToString(args[1]))), nil
}

func fnContains(ctx *Context, args []Value) (Value, error) {
	if err := argc("contains", args, 2, 2); err != nil {
		return nil, err
	}
	return Boolean(strings.Contains(ToString(args[0]), ToString(args[1]))), nil
}

func fnSubstringBefore(ctx *Context, args []Value) (Value, error) {
	if err := argc("substring-before", args, 2, 2); err != nil {
		return nil, err
	}
	s, sep := ToString(args[0]), ToString(args[1])
	if i := strings.Index(s, sep); i >= 0 {
		return String(s[:i]), nil
	}
	return String(""), nil
}

func fnSubstringAfter(ctx *Context, args []Value) (Value, error) {
	if err := argc("substring-after", args, 2, 2); err != nil {
		return nil, err
	}
	s, sep := ToString(args[0]), ToString(args[1])
	if i := strings.Index(s, sep); i >= 0 {
		return String(s[i+len(sep):]), nil
	}
	return String(""), nil
}

// fnSubstring implements the XPath substring() with its rounding and
// boundary semantics (positions are 1-based, counted in runes).
func fnSubstring(ctx *Context, args []Value) (Value, error) {
	if err := argc("substring", args, 2, 3); err != nil {
		return nil, err
	}
	runes := []rune(ToString(args[0]))
	start := xpathRound(ToNumber(args[1]))
	var end float64
	if len(args) == 3 {
		end = start + xpathRound(ToNumber(args[2]))
	} else {
		end = math.Inf(1)
	}
	if math.IsNaN(start) || math.IsNaN(end) {
		return String(""), nil
	}
	var b strings.Builder
	for i, r := range runes {
		pos := float64(i + 1)
		if pos >= start && pos < end {
			b.WriteRune(r)
		}
	}
	return String(b.String()), nil
}

func fnStringLength(ctx *Context, args []Value) (Value, error) {
	if err := argc("string-length", args, 0, 1); err != nil {
		return nil, err
	}
	return Number(len([]rune(ToString(argOrContext(ctx, args))))), nil
}

func fnNormalizeSpace(ctx *Context, args []Value) (Value, error) {
	if err := argc("normalize-space", args, 0, 1); err != nil {
		return nil, err
	}
	return String(strings.Join(strings.Fields(ToString(argOrContext(ctx, args))), " ")), nil
}

func fnTranslate(ctx *Context, args []Value) (Value, error) {
	if err := argc("translate", args, 3, 3); err != nil {
		return nil, err
	}
	src := ToString(args[0])
	from := []rune(ToString(args[1]))
	to := []rune(ToString(args[2]))
	mapping := make(map[rune]rune, len(from))
	remove := make(map[rune]bool)
	for i, r := range from {
		if _, seen := mapping[r]; seen || remove[r] {
			continue
		}
		if i < len(to) {
			mapping[r] = to[i]
		} else {
			remove[r] = true
		}
	}
	var b strings.Builder
	for _, r := range src {
		if remove[r] {
			continue
		}
		if m, ok := mapping[r]; ok {
			b.WriteRune(m)
		} else {
			b.WriteRune(r)
		}
	}
	return String(b.String()), nil
}

func fnBoolean(ctx *Context, args []Value) (Value, error) {
	if err := argc("boolean", args, 1, 1); err != nil {
		return nil, err
	}
	return Boolean(ToBool(args[0])), nil
}

func fnNot(ctx *Context, args []Value) (Value, error) {
	if err := argc("not", args, 1, 1); err != nil {
		return nil, err
	}
	return Boolean(!ToBool(args[0])), nil
}

func fnTrue(ctx *Context, args []Value) (Value, error) {
	if err := argc("true", args, 0, 0); err != nil {
		return nil, err
	}
	return Boolean(true), nil
}

func fnFalse(ctx *Context, args []Value) (Value, error) {
	if err := argc("false", args, 0, 0); err != nil {
		return nil, err
	}
	return Boolean(false), nil
}

func fnLang(ctx *Context, args []Value) (Value, error) {
	if err := argc("lang", args, 1, 1); err != nil {
		return nil, err
	}
	want := strings.ToLower(ToString(args[0]))
	for n := ctx.Node; n != nil; n = n.Parent {
		if n.Type != xmldom.ElementNode {
			continue
		}
		if a := n.GetAttrNS(xmldom.XMLNamespace, "lang"); a != nil {
			have := strings.ToLower(a.Data)
			return Boolean(have == want || strings.HasPrefix(have, want+"-")), nil
		}
	}
	return Boolean(false), nil
}

func fnNumber(ctx *Context, args []Value) (Value, error) {
	if err := argc("number", args, 0, 1); err != nil {
		return nil, err
	}
	return Number(ToNumber(argOrContext(ctx, args))), nil
}

func fnSum(ctx *Context, args []Value) (Value, error) {
	if err := argc("sum", args, 1, 1); err != nil {
		return nil, err
	}
	ns, ok := args[0].(NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: sum() requires a node-set")
	}
	total := 0.0
	for _, n := range ns {
		total += stringToNumber(n.StringValue())
	}
	return Number(total), nil
}

func fnFloor(ctx *Context, args []Value) (Value, error) {
	if err := argc("floor", args, 1, 1); err != nil {
		return nil, err
	}
	return Number(math.Floor(ToNumber(args[0]))), nil
}

func fnCeiling(ctx *Context, args []Value) (Value, error) {
	if err := argc("ceiling", args, 1, 1); err != nil {
		return nil, err
	}
	return Number(math.Ceil(ToNumber(args[0]))), nil
}

func fnRound(ctx *Context, args []Value) (Value, error) {
	if err := argc("round", args, 1, 1); err != nil {
		return nil, err
	}
	return Number(xpathRound(ToNumber(args[0]))), nil
}

// xpathRound rounds half towards positive infinity, as XPath requires
// (round(-0.5) is -0, not -1).
func xpathRound(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return f
	}
	return math.Floor(f + 0.5)
}
