package xpath

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokNumber
	tokLiteral // quoted string
	tokName    // NCName, QName, or name ending in ":*"
	tokVar     // $qname
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokDot
	tokDotDot
	tokAt
	tokComma
	tokAxis // name followed by '::' (value is axis name)
	tokSlash
	tokSlashSlash
	tokPipe
	tokPlus
	tokMinus
	tokEq
	tokNeq
	tokLt
	tokLe
	tokGt
	tokGe
	tokStar     // wildcard *
	tokMultiply // operator *
	tokAnd
	tokOr
	tokMod
	tokDiv
)

type token struct {
	kind tokKind
	val  string
	num  float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of expression"
	case tokNumber:
		return fmt.Sprintf("number %v", t.num)
	case tokLiteral:
		return fmt.Sprintf("literal %q", t.val)
	case tokName:
		return fmt.Sprintf("name %q", t.val)
	case tokVar:
		return "$" + t.val
	case tokAxis:
		return t.val + "::"
	}
	if t.val != "" {
		return fmt.Sprintf("%q", t.val)
	}
	return fmt.Sprintf("token(%d)", t.kind)
}

// SyntaxError reports a lexical or grammatical error in an expression.
type SyntaxError struct {
	Expr string
	Pos  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xpath: %s at offset %d in %q", e.Msg, e.Pos, e.Expr)
}

// lex tokenizes an XPath 1.0 expression, applying the spec's
// disambiguation rules for '*' and the operator names and/or/mod/div.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	errAt := func(pos int, format string, args ...interface{}) error {
		return &SyntaxError{Expr: src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
	// operatorContext reports whether, per XPath 1.0 §3.7, a following '*'
	// or name must be interpreted as an operator: true when the preceding
	// token exists and is not '@', '::', '(', '[', ',' or an operator.
	operatorContext := func() bool {
		if len(toks) == 0 {
			return false
		}
		switch toks[len(toks)-1].kind {
		case tokAt, tokAxis, tokLParen, tokLBracket, tokComma,
			tokAnd, tokOr, tokMod, tokDiv, tokMultiply, tokSlash, tokSlashSlash,
			tokPipe, tokPlus, tokMinus, tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
			return false
		}
		return true
	}
	push := func(kind tokKind, val string, pos int) {
		toks = append(toks, token{kind: kind, val: val, pos: pos})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			push(tokLParen, "(", i)
			i++
		case c == ')':
			push(tokRParen, ")", i)
			i++
		case c == '[':
			push(tokLBracket, "[", i)
			i++
		case c == ']':
			push(tokRBracket, "]", i)
			i++
		case c == ',':
			push(tokComma, ",", i)
			i++
		case c == '@':
			push(tokAt, "@", i)
			i++
		case c == '|':
			push(tokPipe, "|", i)
			i++
		case c == '+':
			push(tokPlus, "+", i)
			i++
		case c == '-':
			push(tokMinus, "-", i)
			i++
		case c == '=':
			push(tokEq, "=", i)
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				push(tokNeq, "!=", i)
				i += 2
			} else {
				return nil, errAt(i, "unexpected '!'")
			}
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				push(tokLe, "<=", i)
				i += 2
			} else {
				push(tokLt, "<", i)
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				push(tokGe, ">=", i)
				i += 2
			} else {
				push(tokGt, ">", i)
				i++
			}
		case c == '/':
			if i+1 < len(src) && src[i+1] == '/' {
				push(tokSlashSlash, "//", i)
				i += 2
			} else {
				push(tokSlash, "/", i)
				i++
			}
		case c == '.':
			if i+1 < len(src) && src[i+1] == '.' {
				push(tokDotDot, "..", i)
				i += 2
			} else if i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9' {
				start := i
				i++
				for i < len(src) && src[i] >= '0' && src[i] <= '9' {
					i++
				}
				n := mustParseNum(src[start:i])
				toks = append(toks, token{kind: tokNumber, num: n, pos: start})
			} else {
				push(tokDot, ".", i)
				i++
			}
		case c == '*':
			if operatorContext() {
				push(tokMultiply, "*", i)
			} else {
				push(tokStar, "*", i)
			}
			i++
		case c == '"' || c == '\'':
			q := c
			start := i
			i++
			j := strings.IndexByte(src[i:], q)
			if j < 0 {
				return nil, errAt(start, "unterminated string literal")
			}
			push(tokLiteral, src[i:i+j], start)
			i += j + 1
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			if i < len(src) && src[i] == '.' {
				i++
				for i < len(src) && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			toks = append(toks, token{kind: tokNumber, num: mustParseNum(src[start:i]), pos: start})
		case c == '$':
			i++
			name, n, err := lexName(src[i:])
			if err != nil {
				return nil, errAt(i, "invalid variable name")
			}
			push(tokVar, name, i-1)
			i += n
		case isNCNameStartByte(c):
			start := i
			name, n, err := lexName(src[i:])
			if err != nil {
				return nil, errAt(i, "invalid name")
			}
			i += n
			// Operator-name disambiguation.
			if operatorContext() {
				switch name {
				case "and":
					push(tokAnd, name, start)
					continue
				case "or":
					push(tokOr, name, start)
					continue
				case "mod":
					push(tokMod, name, start)
					continue
				case "div":
					push(tokDiv, name, start)
					continue
				}
			}
			// name '::' → axis specifier
			j := i
			for j < len(src) && (src[j] == ' ' || src[j] == '\t' || src[j] == '\n' || src[j] == '\r') {
				j++
			}
			if j+1 < len(src) && src[j] == ':' && src[j+1] == ':' {
				push(tokAxis, name, start)
				i = j + 2
				continue
			}
			// QName with wildcard local part: prefix ':*'
			if !strings.Contains(name, ":") && i+1 < len(src) && src[i] == ':' && src[i+1] == '*' {
				name += ":*"
				i += 2
			}
			push(tokName, name, start)
		default:
			return nil, errAt(i, "unexpected character %q", string(rune(c)))
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}

func mustParseNum(s string) float64 {
	var f float64
	_, err := fmt.Sscanf(s, "%g", &f)
	if err != nil {
		return 0
	}
	return f
}

func isNCNameStartByte(c byte) bool {
	return c == '_' || (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c >= 0x80
}

// lexName consumes an NCName or QName (prefix:local) from the front of s
// and returns it along with the number of bytes consumed.
func lexName(s string) (string, int, error) {
	i := 0
	consumeNC := func() bool {
		start := i
		for i < len(s) {
			r, size := utf8.DecodeRuneInString(s[i:])
			if i == start {
				if !(r == '_' || unicode.IsLetter(r)) {
					break
				}
			} else if !(r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)) {
				break
			}
			i += size
		}
		return i > start
	}
	if !consumeNC() {
		return "", 0, fmt.Errorf("expected name")
	}
	// Possible QName: single colon followed directly by an NCName start
	// (a following "::" is an axis and is handled by the caller).
	if i+1 < len(s) && s[i] == ':' && s[i+1] != ':' && s[i+1] != '*' {
		save := i
		i++
		if !consumeNC() {
			i = save
		}
	}
	return s[:i], i, nil
}
