package xpath

import (
	"fmt"
	"math"

	"goldweb/internal/xmldom"
)

// Query compiles and evaluates src with node as the context node.
// Convenience for one-shot queries; hot paths should Compile once.
func Query(node *xmldom.Node, src string) (Value, error) {
	e, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return e.Eval(NewContext(node))
}

// QueryNodes evaluates src against node and returns the resulting node-set
// in document order. It is an error if the expression does not yield a
// node-set.
func QueryNodes(node *xmldom.Node, src string) ([]*xmldom.Node, error) {
	v, err := Query(node, src)
	if err != nil {
		return nil, err
	}
	ns, ok := v.(NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: %s does not evaluate to a node-set", src)
	}
	return ns, nil
}

// QueryString evaluates src against node and returns the string value of
// the result.
func QueryString(node *xmldom.Node, src string) (string, error) {
	v, err := Query(node, src)
	if err != nil {
		return "", err
	}
	return ToString(v), nil
}

// ---- expression evaluation ----

func (e literalExpr) Eval(ctx *Context) (Value, error) { return String(e), nil }
func (e numberExpr) Eval(ctx *Context) (Value, error)  { return Number(e), nil }

func (e varExpr) Eval(ctx *Context) (Value, error) { return ctx.lookupVar(string(e)) }

func (e *negExpr) Eval(ctx *Context) (Value, error) {
	v, err := e.e.Eval(ctx)
	if err != nil {
		return nil, err
	}
	return Number(-ToNumber(v)), nil
}

func (e *unionExpr) Eval(ctx *Context) (Value, error) {
	var all []*xmldom.Node
	for _, part := range e.parts {
		v, err := part.Eval(ctx)
		if err != nil {
			return nil, err
		}
		ns, ok := v.(NodeSet)
		if !ok {
			return nil, fmt.Errorf("xpath: operand of | is not a node-set in %s", e)
		}
		all = append(all, ns...)
	}
	return NodeSet(xmldom.SortDocOrder(all)), nil
}

func (e *binaryExpr) Eval(ctx *Context) (Value, error) {
	// Short-circuit boolean operators.
	switch e.op {
	case tokAnd, tokOr:
		lv, err := e.l.Eval(ctx)
		if err != nil {
			return nil, err
		}
		lb := ToBool(lv)
		if e.op == tokAnd && !lb {
			return Boolean(false), nil
		}
		if e.op == tokOr && lb {
			return Boolean(true), nil
		}
		rv, err := e.r.Eval(ctx)
		if err != nil {
			return nil, err
		}
		return Boolean(ToBool(rv)), nil
	}
	lv, err := e.l.Eval(ctx)
	if err != nil {
		return nil, err
	}
	rv, err := e.r.Eval(ctx)
	if err != nil {
		return nil, err
	}
	switch e.op {
	case tokPlus, tokMinus, tokMultiply, tokDiv, tokMod:
		a, b := ToNumber(lv), ToNumber(rv)
		switch e.op {
		case tokPlus:
			return Number(a + b), nil
		case tokMinus:
			return Number(a - b), nil
		case tokMultiply:
			return Number(a * b), nil
		case tokDiv:
			return Number(a / b), nil
		case tokMod:
			return Number(math.Mod(a, b)), nil
		}
	case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		return Boolean(compare(e.op, lv, rv)), nil
	}
	return nil, fmt.Errorf("xpath: unsupported operator in %s", e)
}

// compare implements the XPath 1.0 comparison semantics, including the
// existential rules for node-set operands.
func compare(op tokKind, l, r Value) bool {
	ln, lIsNS := l.(NodeSet)
	rn, rIsNS := r.(NodeSet)
	// A node-set compared with a boolean compares boolean(node-set),
	// not each node existentially.
	if _, ok := l.(Boolean); ok && rIsNS {
		return compareAtomic(op, l, Boolean(ToBool(r)))
	}
	if _, ok := r.(Boolean); ok && lIsNS {
		return compareAtomic(op, Boolean(ToBool(l)), r)
	}
	switch {
	case lIsNS && rIsNS:
		for _, a := range ln {
			sa := a.StringValue()
			for _, b := range rn {
				if compareAtomic(op, String(sa), String(b.StringValue())) {
					return true
				}
			}
		}
		return false
	case lIsNS:
		for _, a := range ln {
			if compareAtomic(op, nodeAtom(a, r), r) {
				return true
			}
		}
		return false
	case rIsNS:
		for _, b := range rn {
			if compareAtomic(op, l, nodeAtom(b, l)) {
				return true
			}
		}
		return false
	}
	return compareAtomic(op, l, r)
}

// nodeAtom converts a node to the atomic type dictated by the other
// comparison operand.
func nodeAtom(n *xmldom.Node, other Value) Value {
	switch other.(type) {
	case Number:
		return Number(stringToNumber(n.StringValue()))
	case Boolean:
		return Boolean(true) // a node in a node-set: boolean of non-empty set handled by caller semantics
	default:
		return String(n.StringValue())
	}
}

func compareAtomic(op tokKind, l, r Value) bool {
	if op == tokEq || op == tokNeq {
		_, lb := l.(Boolean)
		_, rb := r.(Boolean)
		var eq bool
		switch {
		case lb || rb:
			eq = ToBool(l) == ToBool(r)
		default:
			_, lnum := l.(Number)
			_, rnum := r.(Number)
			if lnum || rnum {
				eq = ToNumber(l) == ToNumber(r)
			} else {
				eq = ToString(l) == ToString(r)
			}
		}
		if op == tokEq {
			return eq
		}
		return !eq
	}
	a, b := ToNumber(l), ToNumber(r)
	switch op {
	case tokLt:
		return a < b
	case tokLe:
		return a <= b
	case tokGt:
		return a > b
	case tokGe:
		return a >= b
	}
	return false
}

func (e *callExpr) Eval(ctx *Context) (Value, error) {
	var fn Function
	if ctx.Funcs != nil {
		fn = ctx.Funcs[e.name]
	}
	if fn == nil {
		fn = coreFunctions[e.name]
	}
	if fn == nil {
		return nil, fmt.Errorf("xpath: unknown function %s()", e.name)
	}
	args := make([]Value, len(e.args))
	for i, a := range e.args {
		v, err := a.Eval(ctx)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return fn(ctx, args)
}

func (f *filterExpr) Eval(ctx *Context) (Value, error) {
	v, err := f.primary.Eval(ctx)
	if err != nil {
		return nil, err
	}
	ns, ok := v.(NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: predicate applied to non-node-set in %s", f)
	}
	nodes := []*xmldom.Node(ns)
	for _, pred := range f.preds {
		nodes, err = applyPredicate(ctx, nodes, pred)
		if err != nil {
			return nil, err
		}
	}
	return NodeSet(nodes), nil
}

// applyPredicate filters nodes (already in forward order) by pred.
func applyPredicate(ctx *Context, nodes []*xmldom.Node, pred Expr) ([]*xmldom.Node, error) {
	var out []*xmldom.Node
	size := len(nodes)
	// One reusable sub-context for the whole scan instead of a copy per
	// node: predicate evaluation never retains the context it is given.
	sub := *ctx
	sub.Size = size
	for i, n := range nodes {
		sub.Node = n
		sub.Position = i + 1
		v, err := pred.Eval(&sub)
		if err != nil {
			return nil, err
		}
		keep := false
		if num, isNum := v.(Number); isNum {
			keep = float64(num) == float64(i+1)
		} else {
			keep = ToBool(v)
		}
		if keep {
			out = append(out, n)
		}
	}
	return out, nil
}

func (p *pathExpr) Eval(ctx *Context) (Value, error) {
	var start []*xmldom.Node
	switch {
	case p.input != nil:
		v, err := p.input.Eval(ctx)
		if err != nil {
			return nil, err
		}
		ns, ok := v.(NodeSet)
		if !ok {
			return nil, fmt.Errorf("xpath: path applied to non-node-set in %s", p)
		}
		start = ns
	case p.absolute:
		if ctx.Node == nil {
			return nil, fmt.Errorf("xpath: no context node for absolute path %s", p)
		}
		start = []*xmldom.Node{ctx.Node.Root()}
	default:
		if ctx.Node == nil {
			return nil, fmt.Errorf("xpath: no context node for path %s", p)
		}
		start = []*xmldom.Node{ctx.Node}
	}
	// No per-eval strategy detection here: the reference interpreter
	// always gathers and sorts. The compiled IR (vm.go) carries the
	// planner's precomputed forward-axis and name-index decisions.
	cur := start
	for _, s := range p.steps {
		var next []*xmldom.Node
		for _, n := range cur {
			sel, err := evalStep(ctx, n, s)
			if err != nil {
				return nil, err
			}
			next = append(next, sel...)
		}
		cur = xmldom.SortDocOrder(next)
	}
	return NodeSet(cur), nil
}

// forwardAxis reports whether evalStep results along this axis come back in
// document order and duplicate-free for a single context node.
func forwardAxis(a axisType) bool {
	switch a {
	case axisAncestor, axisAncestorOrSelf, axisPreceding, axisPrecedingSibling:
		return false
	}
	return true
}

// evalStep selects along one step from a single context node, applying the
// step's predicates with proximity positions in axis order.
func evalStep(ctx *Context, n *xmldom.Node, s *step) ([]*xmldom.Node, error) {
	candidates := axisNodes(n, s.axis)
	// Filter by node test first.
	matched := candidates[:0:0]
	for _, c := range candidates {
		ok, err := matchTest(ctx, c, s.axis, s.test)
		if err != nil {
			return nil, err
		}
		if ok {
			matched = append(matched, c)
		}
	}
	var err error
	for _, pred := range s.preds {
		matched, err = applyPredicate(ctx, matched, pred)
		if err != nil {
			return nil, err
		}
	}
	return matched, nil
}

// axisNodes returns the nodes on the given axis from n, in axis order
// (reverse document order for reverse axes, which is what predicate
// position semantics require).
func axisNodes(n *xmldom.Node, axis axisType) []*xmldom.Node {
	switch axis {
	case axisChild:
		// Callers never mutate axis results, so the child and attribute
		// slices are returned without copying.
		return n.Children
	case axisDescendant:
		return n.Descendants()
	case axisDescendantOrSelf:
		return append([]*xmldom.Node{n}, n.Descendants()...)
	case axisParent:
		if p := parentOf(n); p != nil {
			return []*xmldom.Node{p}
		}
		return nil
	case axisAncestor:
		var out []*xmldom.Node
		for p := parentOf(n); p != nil; p = parentOf(p) {
			out = append(out, p)
		}
		return out
	case axisAncestorOrSelf:
		out := []*xmldom.Node{n}
		for p := parentOf(n); p != nil; p = parentOf(p) {
			out = append(out, p)
		}
		return out
	case axisSelf:
		return []*xmldom.Node{n}
	case axisAttribute:
		if n.Type != xmldom.ElementNode {
			return nil
		}
		return n.Attr
	case axisFollowingSibling:
		p := n.Parent
		if p == nil || n.Type == xmldom.AttrNode {
			return nil
		}
		var out []*xmldom.Node
		seen := false
		for _, c := range p.Children {
			if seen {
				out = append(out, c)
			}
			if c == n {
				seen = true
			}
		}
		return out
	case axisPrecedingSibling:
		p := n.Parent
		if p == nil || n.Type == xmldom.AttrNode {
			return nil
		}
		var out []*xmldom.Node
		for _, c := range p.Children {
			if c == n {
				break
			}
			out = append(out, c)
		}
		// reverse order for the reverse axis
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		return out
	case axisFollowing:
		var out []*xmldom.Node
		cur := n
		if n.Type == xmldom.AttrNode {
			cur = n.Parent
			if cur == nil {
				return nil
			}
			out = append(out, cur.Descendants()...)
		}
		for cur != nil {
			for _, sib := range axisNodes(cur, axisFollowingSibling) {
				out = append(out, sib)
				out = append(out, sib.Descendants()...)
			}
			cur = parentOf(cur)
		}
		return out
	case axisPreceding:
		var out []*xmldom.Node
		cur := n
		if n.Type == xmldom.AttrNode {
			cur = n.Parent
			if cur == nil {
				return nil
			}
		}
		for cur != nil {
			for _, sib := range axisNodes(cur, axisPrecedingSibling) {
				// sibling's subtree in reverse document order
				desc := sib.Descendants()
				for i := len(desc) - 1; i >= 0; i-- {
					out = append(out, desc[i])
				}
				out = append(out, sib)
			}
			cur = parentOf(cur)
		}
		return out
	}
	return nil
}

// parentOf returns the XPath parent of n (for attributes, the owning
// element).
func parentOf(n *xmldom.Node) *xmldom.Node { return n.Parent }

// matchTest applies a node test to a candidate node. The principal node
// type is attribute for the attribute axis and element otherwise.
func matchTest(ctx *Context, n *xmldom.Node, axis axisType, t nodeTest) (bool, error) {
	principal := xmldom.ElementNode
	if axis == axisAttribute {
		principal = xmldom.AttrNode
	}
	switch t.kind {
	case testNode:
		return true, nil
	case testText:
		return n.Type == xmldom.TextNode, nil
	case testComment:
		return n.Type == xmldom.CommentNode, nil
	case testPI:
		return n.Type == xmldom.PINode && (t.piTarget == "" || n.Name == t.piTarget), nil
	case testAnyName:
		return n.Type == principal, nil
	case testNSWildcard:
		if n.Type != principal {
			return false, nil
		}
		uri, err := ctx.resolvePrefix(t.prefix)
		if err != nil {
			return false, err
		}
		return n.URI == uri, nil
	case testName:
		if n.Type != principal || n.Name != t.name {
			return false, nil
		}
		uri, err := ctx.resolvePrefix(t.prefix)
		if err != nil {
			return false, err
		}
		return n.URI == uri, nil
	}
	return false, nil
}
