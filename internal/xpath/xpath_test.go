package xpath

import (
	"math"
	"strings"
	"testing"

	"goldweb/internal/xmldom"
)

// testDoc is a small multidimensional-model-shaped document used across
// the expression tests.
const testDoc = `<goldmodel id="m1" name="Sales DW">
  <factclasses>
    <factclass id="f1" name="Sales">
      <factatts>
        <factatt id="fa1" name="qty"/>
        <factatt id="fa2" name="inventory" derivationrule="a+b"/>
      </factatts>
      <sharedaggs>
        <sharedagg dimclass="d1" rolea="M" roleb="1"/>
        <sharedagg dimclass="d2" rolea="M" roleb="M"/>
      </sharedaggs>
    </factclass>
    <factclass id="f2" name="Inventory"/>
  </factclasses>
  <dimclasses>
    <dimclass id="d1" name="Time" istime="true">
      <num>10</num><num>20</num><num>12</num>
    </dimclass>
    <dimclass id="d2" name="Product"/>
  </dimclasses>
</goldmodel>`

func doc(t *testing.T) *xmldom.Node {
	t.Helper()
	d, err := xmldom.ParseString(testDoc)
	if err != nil {
		t.Fatalf("parse test doc: %v", err)
	}
	return d
}

func evalOn(t *testing.T, n *xmldom.Node, expr string) Value {
	t.Helper()
	v, err := Query(n, expr)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return v
}

func TestAbsolutePaths(t *testing.T) {
	d := doc(t)
	cases := []struct {
		expr string
		n    int
	}{
		{"/goldmodel", 1},
		{"/goldmodel/factclasses/factclass", 2},
		{"/goldmodel/dimclasses/dimclass", 2},
		{"//factatt", 2},
		{"//sharedagg", 2},
		{"/goldmodel/*", 2},
		{"//*", 16},
		{"/nosuch", 0},
	}
	for _, tc := range cases {
		ns, ok := evalOn(t, d, tc.expr).(NodeSet)
		if !ok {
			t.Fatalf("%s: not a node-set", tc.expr)
		}
		if len(ns) != tc.n {
			t.Errorf("%s: got %d nodes, want %d", tc.expr, len(ns), tc.n)
		}
	}
}

func TestRelativePathsAndContext(t *testing.T) {
	d := doc(t)
	fc := d.DescendantElements("factclass")[0]
	ns, _ := evalOn(t, fc, "factatts/factatt").(NodeSet)
	if len(ns) != 2 {
		t.Fatalf("relative path found %d", len(ns))
	}
	v := evalOn(t, fc, "@name")
	if ToString(v) != "Sales" {
		t.Errorf("@name = %q", ToString(v))
	}
	v = evalOn(t, fc, "..")
	if ns := v.(NodeSet); len(ns) != 1 || ns[0].Name != "factclasses" {
		t.Errorf(".. = %v", ns)
	}
	v = evalOn(t, fc, ".")
	if ns := v.(NodeSet); len(ns) != 1 || ns[0] != fc {
		t.Errorf(". should be self")
	}
}

func TestPredicates(t *testing.T) {
	d := doc(t)
	cases := []struct {
		expr, want string
	}{
		{"//factclass[1]/@name", "Sales"},
		{"//factclass[2]/@name", "Inventory"},
		{"//factclass[last()]/@name", "Inventory"},
		{"//factclass[@id='f2']/@name", "Inventory"},
		{"//factatt[@derivationrule]/@name", "inventory"},
		{"//dimclass[@istime='true']/@name", "Time"},
		{"//factclass[factatts]/@name", "Sales"},
		{"//sharedagg[@rolea='M' and @roleb='M']/@dimclass", "d2"},
		{"//factclass[position()=2]/@id", "f2"},
	}
	for _, tc := range cases {
		got := ToString(evalOn(t, d, tc.expr))
		if got != tc.want {
			t.Errorf("%s = %q, want %q", tc.expr, got, tc.want)
		}
	}
}

func TestNestedPredicates(t *testing.T) {
	d := doc(t)
	got := ToString(evalOn(t, d, "//factclass[sharedaggs/sharedagg[@roleb='M']]/@name"))
	if got != "Sales" {
		t.Errorf("nested predicate = %q", got)
	}
}

func TestAxes(t *testing.T) {
	d := doc(t)
	fa2 := d.DescendantElements("factatt")[1]
	cases := []struct {
		expr string
		n    int
	}{
		{"ancestor::*", 4},
		{"ancestor-or-self::*", 5},
		{"ancestor::factclass", 1},
		{"preceding-sibling::factatt", 1},
		{"following-sibling::factatt", 0},
		{"self::factatt", 1},
		{"self::other", 0},
		{"descendant-or-self::node()", 1},
		{"following::sharedagg", 2},
		{"preceding::factatt", 1},
		{"parent::factatts", 1},
	}
	for _, tc := range cases {
		ns := evalOn(t, fa2, tc.expr).(NodeSet)
		if len(ns) != tc.n {
			t.Errorf("%s: got %d, want %d", tc.expr, len(ns), tc.n)
		}
	}
}

func TestReverseAxisPosition(t *testing.T) {
	d := doc(t)
	nums := d.DescendantElements("num")
	last := nums[2]
	// preceding-sibling::num[1] is the nearest preceding num (20).
	got := ToString(evalOn(t, last, "preceding-sibling::num[1]"))
	if got != "20" {
		t.Errorf("preceding-sibling::num[1] = %q, want 20", got)
	}
	got = ToString(evalOn(t, last, "preceding-sibling::num[2]"))
	if got != "10" {
		t.Errorf("preceding-sibling::num[2] = %q, want 10", got)
	}
	// ancestor::*[1] is the immediate parent.
	got = ToString(evalOn(t, last, "name(ancestor::*[1])"))
	if got != "dimclass" {
		t.Errorf("ancestor::*[1] = %q", got)
	}
}

func TestAttributeAxis(t *testing.T) {
	d := doc(t)
	ns := evalOn(t, d, "//factclass[1]/@*").(NodeSet)
	if len(ns) != 2 {
		t.Fatalf("@* found %d", len(ns))
	}
	// Attributes are not children.
	ns = evalOn(t, d, "//factclass[1]/node()").(NodeSet)
	for _, n := range ns {
		if n.Type == xmldom.AttrNode {
			t.Error("attribute returned from child axis")
		}
	}
}

func TestUnion(t *testing.T) {
	d := doc(t)
	ns := evalOn(t, d, "//factclass | //dimclass").(NodeSet)
	if len(ns) != 4 {
		t.Fatalf("union size = %d", len(ns))
	}
	// Document order: factclasses before dimclasses.
	if ns[0].AttrValue("id") != "f1" || ns[3].AttrValue("id") != "d2" {
		t.Errorf("union order wrong: %s..%s", ns[0].AttrValue("id"), ns[3].AttrValue("id"))
	}
	// Duplicates are removed.
	ns = evalOn(t, d, "//factclass | //factclass[1]").(NodeSet)
	if len(ns) != 2 {
		t.Errorf("dedup failed: %d", len(ns))
	}
}

func TestArithmetic(t *testing.T) {
	d := doc(t)
	cases := []struct {
		expr string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 div 4", 2.5},
		{"10 mod 3", 1},
		{"-3 + 1", -2},
		{"2 - 1 - 1", 0},
		{"count(//factclass) + count(//dimclass)", 4},
		{"sum(//num)", 42},
		{"floor(2.7)", 2},
		{"ceiling(2.1)", 3},
		{"round(2.5)", 3},
		{"round(-2.5)", -2},
	}
	for _, tc := range cases {
		got := ToNumber(evalOn(t, d, tc.expr))
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.expr, got, tc.want)
		}
	}
	if !math.IsNaN(ToNumber(evalOn(t, d, "number('abc')"))) {
		t.Error("number('abc') should be NaN")
	}
	if got := ToNumber(evalOn(t, d, "1 div 0")); !math.IsInf(got, 1) {
		t.Errorf("1 div 0 = %v", got)
	}
}

func TestComparisons(t *testing.T) {
	d := doc(t)
	boolCases := []struct {
		expr string
		want bool
	}{
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 4", false},
		{"'a' = 'a'", true},
		{"'a' != 'b'", true},
		{"1 = '1'", true},
		{"true() = 1", true},
		{"//num = 20", true},         // existential
		{"//num = 99", false},        // none match
		{"//num > 15", true},         // some > 15
		{"//num < 5", false},         // none < 5
		{"//nosuch = //num", false},  // empty node-set
		{"not(//nosuch)", true},      // empty is false
		{"//nosuch = false()", true}, // ns vs boolean
		{"count(//num[. > 11]) = 2", true},
	}
	for _, tc := range boolCases {
		got := ToBool(evalOn(t, d, tc.expr))
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestStringFunctions(t *testing.T) {
	d := doc(t)
	cases := []struct {
		expr, want string
	}{
		{"concat('a', 'b', 'c')", "abc"},
		{"substring('12345', 2, 3)", "234"},
		{"substring('12345', 2)", "2345"},
		{"substring('12345', 1.5, 2.6)", "234"}, // spec example
		{"substring('12345', 0)", "12345"},
		{"substring-before('1999/04/01', '/')", "1999"},
		{"substring-after('1999/04/01', '/')", "04/01"},
		{"normalize-space('  a   b ')", "a b"},
		{"translate('bar', 'abc', 'ABC')", "BAr"},
		{"translate('--aaa--', 'abc-', 'ABC')", "AAA"},
		{"string(12)", "12"},
		{"string(12.5)", "12.5"},
		{"string(//factclass[1]/@name)", "Sales"},
		{"string(true())", "true"},
	}
	for _, tc := range cases {
		got := ToString(evalOn(t, d, tc.expr))
		if got != tc.want {
			t.Errorf("%s = %q, want %q", tc.expr, got, tc.want)
		}
	}
	if !ToBool(evalOn(t, d, "starts-with('goldmodel', 'gold')")) {
		t.Error("starts-with failed")
	}
	if !ToBool(evalOn(t, d, "contains('goldmodel', 'dmo')")) {
		t.Error("contains failed")
	}
	if got := ToNumber(evalOn(t, d, "string-length('héllo')")); got != 5 {
		t.Errorf("string-length rune counting = %v", got)
	}
}

func TestNameFunctions(t *testing.T) {
	d := doc(t)
	cases := []struct {
		expr, want string
	}{
		{"name(/goldmodel)", "goldmodel"},
		{"local-name(//factclass[1]/@id)", "id"},
		{"name(//nosuch)", ""},
	}
	for _, tc := range cases {
		if got := ToString(evalOn(t, d, tc.expr)); got != tc.want {
			t.Errorf("%s = %q, want %q", tc.expr, got, tc.want)
		}
	}
}

func TestIDFunction(t *testing.T) {
	d := doc(t)
	ns := evalOn(t, d, "id('d1')").(NodeSet)
	if len(ns) != 1 || ns[0].AttrValue("name") != "Time" {
		t.Fatalf("id('d1') = %v", ns)
	}
	ns = evalOn(t, d, "id('d1 f2')").(NodeSet)
	if len(ns) != 2 {
		t.Errorf("multi-id = %d nodes", len(ns))
	}
	// id() via a referencing attribute (like keyref resolution).
	got := ToString(evalOn(t, d, "id(//sharedagg[1]/@dimclass)/@name"))
	if got != "Time" {
		t.Errorf("id(@dimclass) = %q", got)
	}
}

func TestVariables(t *testing.T) {
	d := doc(t)
	e := MustCompile("//factclass[@id=$want]/@name")
	ctx := NewContext(d)
	ctx.Vars = map[string]Value{"want": String("f2")}
	v, err := e.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ToString(v) != "Inventory" {
		t.Errorf("var result = %q", ToString(v))
	}
	ctx.Vars = nil
	if _, err := e.Eval(ctx); err == nil {
		t.Error("unbound variable should error")
	}
}

func TestFilterExprWithPath(t *testing.T) {
	d := doc(t)
	got := ToString(evalOn(t, d, "(//factclass)[2]/@name"))
	if got != "Inventory" {
		t.Errorf("(//factclass)[2] = %q", got)
	}
	got = ToString(evalOn(t, d, "id('f1')/factatts/factatt[1]/@name"))
	if got != "qty" {
		t.Errorf("filter path = %q", got)
	}
}

func TestNodeTypeTests(t *testing.T) {
	d := xmldom.MustParseString(`<r>text<!--c--><?pi data?><e/>more</r>`)
	if n := len(evalOn(t, d, "/r/text()").(NodeSet)); n != 2 {
		t.Errorf("text() = %d", n)
	}
	if n := len(evalOn(t, d, "/r/comment()").(NodeSet)); n != 1 {
		t.Errorf("comment() = %d", n)
	}
	if n := len(evalOn(t, d, "/r/processing-instruction()").(NodeSet)); n != 1 {
		t.Errorf("pi() = %d", n)
	}
	if n := len(evalOn(t, d, "/r/processing-instruction('pi')").(NodeSet)); n != 1 {
		t.Errorf("pi('pi') = %d", n)
	}
	if n := len(evalOn(t, d, "/r/processing-instruction('other')").(NodeSet)); n != 0 {
		t.Errorf("pi('other') = %d", n)
	}
	if n := len(evalOn(t, d, "/r/node()").(NodeSet)); n != 5 {
		t.Errorf("node() = %d", n)
	}
}

func TestNamespaceTests(t *testing.T) {
	d := xmldom.MustParseString(`<r xmlns:a="urn:a"><a:x/><x/><a:y/></r>`)
	e := MustCompile("//p:*")
	ctx := NewContext(d)
	ctx.NS = map[string]string{"p": "urn:a"}
	v, err := e.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.(NodeSet)) != 2 {
		t.Errorf("ns wildcard = %d", len(v.(NodeSet)))
	}
	e = MustCompile("//p:x")
	v, err = e.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.(NodeSet)) != 1 {
		t.Errorf("prefixed name = %d", len(v.(NodeSet)))
	}
	// Unprefixed tests match only the null namespace.
	if n := len(evalOn(t, d, "//x").(NodeSet)); n != 1 {
		t.Errorf("unprefixed matched %d", n)
	}
	// Undeclared prefix errors.
	e = MustCompile("//q:x")
	if _, err := e.Eval(NewContext(d)); err == nil {
		t.Error("undeclared prefix should error")
	}
}

func TestNumberFormatting(t *testing.T) {
	cases := []struct {
		f    float64
		want string
	}{
		{1, "1"},
		{-1, "-1"},
		{0, "0"},
		{1.5, "1.5"},
		{0.1, "0.1"},
		{100000, "100000"},
		{math.NaN(), "NaN"},
		{math.Inf(1), "Infinity"},
		{math.Inf(-1), "-Infinity"},
		{-0.0, "0"},
	}
	for _, tc := range cases {
		if got := FormatNumber(tc.f); got != tc.want {
			t.Errorf("FormatNumber(%v) = %q, want %q", tc.f, got, tc.want)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"", "//", "foo[", "foo]", "1 +", "@", "foo::bar", "$", "'unterminated",
		"foo(", "a b", "..[1", "child::", "!", "1 ! 2",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	d := doc(t)
	bad := []string{
		"nosuchfn()",
		"count('notanodeset')",
		"sum(1)",
		"1 | 2",
	}
	for _, src := range bad {
		if _, err := Query(d, src); err == nil {
			t.Errorf("Query(%q) should fail at runtime", src)
		}
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	exprs := []string{
		"/goldmodel/factclasses/factclass",
		"//factclass[@id='f1']/@name",
		"count(//dimclass) > 1",
		"concat(@a, 'x', $v)",
		"a | b | c",
		"ancestor-or-self::node()",
		"-1 + 2 * 3",
	}
	d := doc(t)
	for _, src := range exprs {
		e1 := MustCompile(src)
		e2, err := Compile(e1.String())
		if err != nil {
			t.Errorf("reparse of %q → %q failed: %v", src, e1.String(), err)
			continue
		}
		ctx := NewContext(d)
		ctx.Vars = map[string]Value{"v": String("z")}
		v1, err1 := e1.Eval(ctx)
		v2, err2 := e2.Eval(ctx)
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("%q: eval divergence", src)
			continue
		}
		if err1 == nil && ToString(v1) != ToString(v2) {
			t.Errorf("%q: %q != %q", src, ToString(v1), ToString(v2))
		}
	}
}

func TestOperatorNameDisambiguation(t *testing.T) {
	d := xmldom.MustParseString(`<r><div>5</div><mod>3</mod><and>1</and></r>`)
	// Element names that collide with operator names still parse as names
	// in node-test position.
	if got := ToString(evalOn(t, d, "string(/r/div)")); got != "5" {
		t.Errorf("div element = %q", got)
	}
	if got := ToNumber(evalOn(t, d, "/r/div div /r/mod")); math.Abs(got-5.0/3.0) > 1e-9 {
		t.Errorf("div operator = %v", got)
	}
	if got := ToNumber(evalOn(t, d, "/r/div * 2")); got != 10 {
		t.Errorf("multiply = %v", got)
	}
	if !ToBool(evalOn(t, d, "/r/and and true()")) {
		t.Error("and disambiguation failed")
	}
}

func TestDescendantShorthandSemantics(t *testing.T) {
	d := xmldom.MustParseString(`<a><b><c>1</c></b><b><c>2</c><c>3</c></b></a>`)
	// //c[1] selects the first c of each parent (2 nodes), not the first
	// c in the document.
	ns := evalOn(t, d, "//c[1]").(NodeSet)
	if len(ns) != 2 {
		t.Fatalf("//c[1] = %d nodes, want 2", len(ns))
	}
	// (//c)[1] selects exactly the first in document order.
	ns = evalOn(t, d, "(//c)[1]").(NodeSet)
	if len(ns) != 1 || ns[0].StringValue() != "1" {
		t.Errorf("(//c)[1] wrong: %v", ns)
	}
}

func TestLangFunction(t *testing.T) {
	d := xmldom.MustParseString(`<r xml:lang="en-US"><child/></r>`)
	child := d.DocumentElement().Elements()[0]
	if !ToBool(evalOn(t, child, "lang('en')")) {
		t.Error("lang('en') should match en-US via inheritance")
	}
	if ToBool(evalOn(t, child, "lang('es')")) {
		t.Error("lang('es') should not match")
	}
}

func TestQueryHelpers(t *testing.T) {
	d := doc(t)
	nodes, err := QueryNodes(d, "//factclass")
	if err != nil || len(nodes) != 2 {
		t.Fatalf("QueryNodes: %v, %d", err, len(nodes))
	}
	if _, err := QueryNodes(d, "1+1"); err == nil {
		t.Error("QueryNodes on number should error")
	}
	s, err := QueryString(d, "//dimclass[1]/@name")
	if err != nil || s != "Time" {
		t.Errorf("QueryString = %q, %v", s, err)
	}
}

func TestWhitespaceTolerantParsing(t *testing.T) {
	d := doc(t)
	exprs := []string{
		" //factclass [ @id = 'f1' ] / @name ",
		"//factclass\n[@id='f1']/@name",
	}
	for _, src := range exprs {
		if got := ToString(evalOn(t, d, src)); got != "Sales" {
			t.Errorf("%q = %q", src, got)
		}
	}
}

func TestLargeDocPositionSemantics(t *testing.T) {
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < 100; i++ {
		b.WriteString("<item/>")
	}
	b.WriteString("</root>")
	d := xmldom.MustParseString(b.String())
	if got := ToNumber(evalOn(t, d, "count(/root/item)")); got != 100 {
		t.Fatalf("count = %v", got)
	}
	if got := ToNumber(evalOn(t, d, "count(/root/item[position() > 50])")); got != 50 {
		t.Errorf("position filter = %v", got)
	}
	if got := ToNumber(evalOn(t, d, "count(/root/item[position() mod 2 = 0])")); got != 50 {
		t.Errorf("mod filter = %v", got)
	}
}

func TestRemainingFunctionCoverage(t *testing.T) {
	d := xmldom.MustParseString(`<r xmlns:p="urn:x"><p:e/></r>`)
	cases := []struct{ expr, want string }{
		{"namespace-uri(/r/*)", "urn:x"},
		{"namespace-uri(/r)", ""},
		{"string(boolean('x'))", "true"},
		{"string(boolean(''))", "false"},
	}
	for _, tc := range cases {
		got := ToString(evalOn(t, d, tc.expr))
		if got != tc.want {
			t.Errorf("%s = %q, want %q", tc.expr, got, tc.want)
		}
	}
}

func TestValueConversionsDirect(t *testing.T) {
	if ToNumber(Boolean(true)) != 1 || ToNumber(Boolean(false)) != 0 {
		t.Error("bool → number")
	}
	d := xmldom.MustParseString(`<r>41</r>`)
	if ToNumber(NodeSet{d}) != 41 {
		t.Error("node-set → number")
	}
	if !math.IsNaN(ToNumber(nil)) || ToString(nil) != "" || ToBool(nil) {
		t.Error("nil conversions")
	}
	if ToNumber(String(" 7 ")) != 7 {
		t.Error("whitespace-trimmed string → number")
	}
	if !math.IsNaN(ToNumber(String("1e3"))) {
		t.Error("exponent notation must be NaN in XPath 1.0")
	}
}

func TestErrorStringsAndPatternString(t *testing.T) {
	_, err := Compile("1 +")
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("syntax error rendering: %v", err)
	}
	p := MustCompilePattern("a/b | c")
	if p.String() != "a/b | c" {
		t.Errorf("pattern String = %q", p.String())
	}
}
