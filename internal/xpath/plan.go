package xpath

import "math"

// Planning: lowers a normalized AST into a flat program (ir.go). All
// strategy decisions the legacy interpreter made per evaluation are
// made once here:
//
//   - descendant steps with an unprefixed name test are marked for the
//     frozen-document name index
//   - the forward-axis flag (single-context steps skip the doc-order
//     merge sort) is precomputed per step
//   - constant integer predicates become direct k-th selections
//   - position-free predicates are flagged so the evaluator skips the
//     numeric-position test
//   - id() calls lower to a dedicated id-map lookup opcode
//
// Boolean operators compile to conditional jumps so short-circuiting
// matches the reference interpreter exactly, including which errors are
// never observed.

type emitter struct {
	p *program
	// cur tracks the operand-stack depth at the current pc so the
	// program records its maximum need (maxStack) at compile time; the
	// evaluator uses it to run small programs on an inline stack.
	cur int
}

func compileProgram(e Expr) *program {
	em := &emitter{p: &program{}}
	em.compile(e)
	return em.p
}

// shift applies an instruction's net stack effect.
func (em *emitter) shift(delta int) {
	em.cur += delta
	if em.cur > em.p.maxStack {
		em.p.maxStack = em.cur
	}
}

// note records transient depth above the current one: the operand
// stacks of predicate sub-programs, which run on the same frame during
// opPath/opFilter.
func (em *emitter) note(extra int) {
	if d := em.cur + extra; d > em.p.maxStack {
		em.p.maxStack = d
	}
}

// emit appends an instruction and returns its pc for backpatching.
func (em *emitter) emit(op opcode, a int) int {
	em.p.code = append(em.p.code, instr{op: op, a: int32(a)})
	return len(em.p.code) - 1
}

func (em *emitter) patch(pc int) {
	em.p.code[pc].a = int32(len(em.p.code))
}

func (em *emitter) constant(v irval) {
	em.p.consts = append(em.p.consts, v)
	em.emit(opConst, len(em.p.consts)-1)
	em.shift(1)
}

func (em *emitter) compile(e Expr) {
	switch v := e.(type) {
	case literalExpr:
		em.constant(strVal(string(v)))
	case numberExpr:
		em.constant(numVal(float64(v)))
	case boolExpr:
		em.constant(boolVal(bool(v)))
	case varExpr:
		em.p.names = append(em.p.names, string(v))
		em.emit(opVar, len(em.p.names)-1)
		em.shift(1)
	case *negExpr:
		em.compile(v.e)
		em.emit(opNeg, 0)
	case *binaryExpr:
		em.compileBinary(v)
	case *unionExpr:
		for _, part := range v.parts {
			em.compile(part)
		}
		em.emit(opUnion, len(v.parts))
		em.shift(1 - len(v.parts))
	case *callExpr:
		em.compileCall(v)
	case *filterExpr:
		em.compile(v.primary)
		preds := planPreds(v.preds)
		em.p.filters = append(em.p.filters, preds)
		em.note(predsStack(preds))
		em.emit(opFilter, len(em.p.filters)-1)
	case *pathExpr:
		if v.input != nil {
			em.compile(v.input)
		}
		pl := planPath(v)
		em.p.paths = append(em.p.paths, pl)
		extra := 0
		for _, st := range pl.steps {
			if n := predsStack(st.preds); n > extra {
				extra = n
			}
		}
		em.note(extra)
		em.emit(opPath, len(em.p.paths)-1)
		if v.input == nil {
			em.shift(1)
		}
	default:
		// The normalizer only produces the kinds above; reaching here
		// is a compiler bug, surfaced loudly rather than miscompiled.
		panic("xpath: unplannable expression kind")
	}
}

// predsStack returns the operand-stack room the predicate sub-programs
// of one step (or filter) need on the shared frame.
func predsStack(preds []*predPlan) int {
	max := 0
	for _, pr := range preds {
		if pr.prog != nil && pr.prog.maxStack > max {
			max = pr.prog.maxStack
		}
	}
	return max
}

var binaryOps = map[tokKind]opcode{
	tokPlus: opAdd, tokMinus: opSub, tokMultiply: opMul, tokDiv: opDiv,
	tokMod: opMod, tokEq: opEq, tokNeq: opNeq, tokLt: opLt, tokLe: opLe,
	tokGt: opGt, tokGe: opGe,
}

func (em *emitter) compileBinary(v *binaryExpr) {
	switch v.op {
	case tokAnd:
		em.compile(v.l)
		j := em.emit(opJmpFalse, 0)
		em.shift(-1) // fall-through depth; the jump path re-pushes at the target
		em.compile(v.r)
		em.emit(opToBool, 0)
		em.patch(j)
	case tokOr:
		em.compile(v.l)
		j := em.emit(opJmpTrue, 0)
		em.shift(-1)
		em.compile(v.r)
		em.emit(opToBool, 0)
		em.patch(j)
	default:
		em.compile(v.l)
		em.compile(v.r)
		em.emit(binaryOps[v.op], 0)
		em.shift(-1)
	}
}

func (em *emitter) compileCall(v *callExpr) {
	if v.name == "id" && len(v.args) == 1 {
		em.compile(v.args[0])
		em.emit(opID, 0)
		return
	}
	for _, a := range v.args {
		em.compile(a)
	}
	em.p.calls = append(em.p.calls, callSite{name: v.name, argc: len(v.args)})
	em.emit(opCall, len(em.p.calls)-1)
	em.shift(1 - len(v.args))
}

func planPath(p *pathExpr) *pathPlan {
	pl := &pathPlan{hasInput: p.input != nil, absolute: p.absolute}
	pl.steps = make([]*planStep, len(p.steps))
	for i, s := range p.steps {
		st := &planStep{
			axis:    s.axis,
			test:    s.test,
			forward: forwardAxis(s.axis),
			indexed: indexableStep(s),
			preds:   planPreds(s.preds),
		}
		pl.steps[i] = st
	}
	return pl
}

// indexableStep reports whether a step can be answered from a frozen
// document's descendant name index. Only the unprefixed name form is
// eligible: an unprefixed test selects no-namespace elements, which the
// evaluator's residual URI filter enforces since the index matches by
// local name alone.
func indexableStep(s *step) bool {
	if s.axis != axisDescendant && s.axis != axisDescendantOrSelf {
		return false
	}
	return s.test.kind == testName && s.test.prefix == ""
}

func planPreds(preds []Expr) []*predPlan {
	if len(preds) == 0 {
		return nil
	}
	out := make([]*predPlan, len(preds))
	for i, p := range preds {
		out[i] = planPred(p)
	}
	return out
}

func planPred(e Expr) *predPlan {
	if n, ok := e.(numberExpr); ok {
		k := float64(n)
		if k == math.Trunc(k) && k >= 1 && k <= 1<<31 {
			return &predPlan{posConst: int(k)}
		}
	}
	return &predPlan{
		prog:    compileProgram(e),
		posFree: staticallyNonNumeric(e) && !usesPosition(e),
	}
}
