package xpath

import (
	"fmt"
	"strings"
	"sync"

	"goldweb/internal/xmldom"
)

// The shared VM frame: one pooled evaluation stack per transformation,
// carrying both the XPath operand stack and the control frames of a
// stylesheet bytecode program. Embedded expressions evaluate with the
// EvalXxxOn entry points on the caller's frame, so a transform performs
// exactly one frame-pool round trip instead of one per expression.

// CtlFrame is one control frame of a stylesheet program running on the
// shared stack: an apply-templates loop, a template call, a for-each
// loop, a variable scope, or an output-capture redirect. The xslt
// bytecode VM defines the Kind values and owns the field semantics; the
// frame lives here so both VMs share one pooled allocation.
type CtlFrame struct {
	Kind uint8
	Ret  int32 // return / loop-head pc
	Site int32 // side-table index of the instruction that pushed the frame
	Idx  int32 // loop iteration cursor
	Prec int   // saved import precedence
	Pos  int   // saved context position
	Size int   // saved context size
	Node *xmldom.Node
	List []*xmldom.Node
	Mode string // saved mode (apply frames)
	Str  string // pending computed name (capture frames)
	Vars map[string]Value
	// Passed holds evaluated with-param values for the template about to
	// be entered.
	Passed map[string]Value
	// Out is the saved output sink of a capture/redirect frame (typed by
	// the xslt VM; opaque here to avoid a dependency cycle).
	Out any
}

// Frame is the pooled per-transformation evaluation state shared by the
// XPath expression VM and the XSLT bytecode VM: the unboxed operand
// stack expressions run on, plus the control-frame stack of the
// stylesheet program. Frames are not safe for concurrent use; obtain one
// with GetFrame and return it with PutFrame.
type Frame struct {
	ops frame
	Ctl []CtlFrame
}

var vmFramePool = sync.Pool{New: func() any {
	return &Frame{ops: frame{stack: make([]irval, 0, 64)}, Ctl: make([]CtlFrame, 0, 32)}
}}

// GetFrame returns an empty shared VM frame from the pool. Release it
// with PutFrame when the evaluation or transformation is done.
func GetFrame() *Frame {
	return vmFramePool.Get().(*Frame)
}

// PutFrame clears a frame (dropping every node, variable and sink
// reference so the pooled value pins nothing) and returns it to the
// pool.
func PutFrame(f *Frame) {
	f.ops.truncate(0)
	clear(f.Ctl[:cap(f.Ctl)])
	f.Ctl = f.Ctl[:0]
	vmFramePool.Put(f)
}

// PushCtl appends a control frame and returns a pointer to it, valid
// until the next push.
func (f *Frame) PushCtl(cf CtlFrame) *CtlFrame {
	f.Ctl = append(f.Ctl, cf)
	return &f.Ctl[len(f.Ctl)-1]
}

// TopCtl returns the innermost control frame, or nil when none is
// active.
func (f *Frame) TopCtl() *CtlFrame {
	if len(f.Ctl) == 0 {
		return nil
	}
	return &f.Ctl[len(f.Ctl)-1]
}

// PopCtl removes the innermost control frame, clearing it so the backing
// array retains no references.
func (f *Frame) PopCtl() {
	n := len(f.Ctl) - 1
	f.Ctl[n] = CtlFrame{}
	f.Ctl = f.Ctl[:n]
}

// Depth returns the number of active control frames.
func (f *Frame) Depth() int { return len(f.Ctl) }

// reserve grows the operand stack capacity so the next program runs
// without reallocating mid-evaluation.
func (f *Frame) reserve(need int) {
	if free := cap(f.ops.stack) - len(f.ops.stack); free < need {
		grown := make([]irval, len(f.ops.stack), len(f.ops.stack)+need)
		copy(grown, f.ops.stack)
		f.ops.stack = grown
	}
}

// runOn executes the compiled program on the caller's shared frame
// instead of a pooled per-evaluation one.
func (c *Compiled) runOn(ctx *Context, f *Frame) (irval, error) {
	f.reserve(c.prog.maxStack)
	return exec(c.prog, ctx, &f.ops)
}

// EvalOn is Eval on a caller-owned shared frame.
func (c *Compiled) EvalOn(ctx *Context, f *Frame) (Value, error) {
	v, err := c.runOn(ctx, f)
	if err != nil {
		return nil, err
	}
	return v.boxed(), nil
}

// EvalBoolOn is EvalBool on a caller-owned shared frame.
func (c *Compiled) EvalBoolOn(ctx *Context, f *Frame) (bool, error) {
	v, err := c.runOn(ctx, f)
	if err != nil {
		return false, err
	}
	return v.truthy(), nil
}

// EvalStringOn is EvalString on a caller-owned shared frame.
func (c *Compiled) EvalStringOn(ctx *Context, f *Frame) (string, error) {
	v, err := c.runOn(ctx, f)
	if err != nil {
		return "", err
	}
	return v.toStr(), nil
}

// EvalNumberOn is EvalNumber on a caller-owned shared frame.
func (c *Compiled) EvalNumberOn(ctx *Context, f *Frame) (float64, error) {
	v, err := c.runOn(ctx, f)
	if err != nil {
		return 0, err
	}
	return v.toNum(), nil
}

// EvalNodesOn is EvalNodes on a caller-owned shared frame.
func (c *Compiled) EvalNodesOn(ctx *Context, f *Frame) (NodeSet, error) {
	v, err := c.runOn(ctx, f)
	if err != nil {
		return nil, err
	}
	if v.kind != vNodes {
		return nil, fmt.Errorf("xpath: %s does not evaluate to a node-set", c.src)
	}
	return v.nodes, nil
}

// Disasm renders the compiled program as a flat, pc-addressed
// instruction listing (Plan renders the same program nested). Path and
// filter operands print their sub-structure indented under the owning
// instruction without consuming pc numbers, mirroring how the evaluator
// treats them as single opcodes.
func (c *Compiled) Disasm() string {
	var b strings.Builder
	disasmProgram(&b, c.prog, "")
	return b.String()
}

func disasmProgram(b *strings.Builder, p *program, indent string) {
	for pc, in := range p.code {
		fmt.Fprintf(b, "%s%04d ", indent, pc)
		switch in.op {
		case opConst:
			fmt.Fprintf(b, "const %s\n", p.consts[in.a].planString())
		case opVar:
			fmt.Fprintf(b, "var $%s\n", p.names[in.a])
		case opCall:
			cs := p.calls[in.a]
			fmt.Fprintf(b, "call %s/%d\n", cs.name, cs.argc)
		case opID:
			b.WriteString("id-lookup\n")
		case opUnion:
			fmt.Fprintf(b, "union %d\n", in.a)
		case opJmpFalse:
			fmt.Fprintf(b, "jmp-false %04d\n", in.a)
		case opJmpTrue:
			fmt.Fprintf(b, "jmp-true %04d\n", in.a)
		case opPath:
			pl := p.paths[in.a]
			head := "path"
			switch {
			case pl.hasInput:
				head += " from-input"
			case pl.absolute:
				head += " abs"
			}
			fmt.Fprintf(b, "%s\n", head)
			for _, st := range pl.steps {
				flags := ""
				if st.indexed {
					flags += " [name-index]"
				}
				if st.forward {
					flags += " [forward]"
				}
				fmt.Fprintf(b, "%s     . step %s::%s%s\n", indent, st.axis, st.test, flags)
				disasmPreds(b, st.preds, indent+"     ")
			}
		case opFilter:
			b.WriteString("filter\n")
			disasmPreds(b, p.filters[in.a], indent+"     ")
		default:
			fmt.Fprintf(b, "%s\n", opcodeNames[in.op])
		}
	}
}

func disasmPreds(b *strings.Builder, preds []*predPlan, indent string) {
	for _, pr := range preds {
		switch {
		case pr.posConst > 0:
			fmt.Fprintf(b, "%s. pred [select #%d]\n", indent, pr.posConst)
		case pr.posFree:
			fmt.Fprintf(b, "%s. pred [pos-free]\n", indent)
		default:
			fmt.Fprintf(b, "%s. pred\n", indent)
		}
		if pr.prog != nil {
			disasmProgram(b, pr.prog, indent+"  ")
		}
	}
}
