package xpath

// Step fusion: the parser expands `//` into descendant-or-self::node()
// followed by the next step, which makes `//name` enumerate every node of
// the subtree and then that node's children — quadratic work that
// SortDocOrder has to dedup afterwards. When the following step is a
// child step whose predicates cannot observe position, the pair is
// equivalent to a single descendant step, which the evaluator can in
// turn answer straight from a frozen document's name index.

// newPath builds a pathExpr with fused steps.
func newPath(input Expr, absolute bool, steps []*step) *pathExpr {
	return &pathExpr{input: input, absolute: absolute, steps: fuseSteps(steps)}
}

// fuseSteps rewrites descendant-or-self::node()/child::T[preds] into
// descendant::T[preds] wherever the predicates are position-independent.
func fuseSteps(steps []*step) []*step {
	out := steps[:0:0]
	for i := 0; i < len(steps); i++ {
		s := steps[i]
		if i+1 < len(steps) && isDescOrSelfNode(s) && canFuseInto(steps[i+1]) {
			nxt := steps[i+1]
			out = append(out, &step{axis: axisDescendant, test: nxt.test, preds: nxt.preds})
			i++
			continue
		}
		out = append(out, s)
	}
	return out
}

func isDescOrSelfNode(s *step) bool {
	return s.axis == axisDescendantOrSelf && s.test.kind == testNode && len(s.preds) == 0
}

// canFuseInto reports whether a child step can absorb a preceding
// descendant-or-self::node(). Fusion changes the context position and
// size seen by the step's predicates (siblings vs. all descendants), so
// every predicate must be provably position-independent: it must
// statically evaluate to a non-number (a numeric predicate is an implicit
// position() = N test) and must not call position() or last().
func canFuseInto(s *step) bool {
	if s.axis != axisChild {
		return false
	}
	for _, p := range s.preds {
		if !staticallyNonNumeric(p) || usesPosition(p) {
			return false
		}
	}
	return true
}

// staticallyNonNumeric reports whether e can be proven to never yield an
// XPath number. Unknown constructs (variables, unknown functions) return
// false, keeping the analysis conservative.
func staticallyNonNumeric(e Expr) bool {
	switch v := e.(type) {
	case *pathExpr, *unionExpr, *filterExpr, literalExpr:
		return true
	case *binaryExpr:
		switch v.op {
		case tokAnd, tokOr, tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
			return true
		}
		return false
	case *callExpr:
		switch v.name {
		case "boolean", "not", "true", "false", "lang", "contains", "starts-with",
			"string", "concat", "substring", "substring-before", "substring-after",
			"normalize-space", "translate", "name", "local-name", "namespace-uri",
			"id", "key", "current":
			return true
		}
		return false
	}
	return false
}

// usesPosition reports whether e contains a position() or last() call
// anywhere. This is deliberately over-broad: a call inside a nested
// path's predicate refers to that inner context and would actually be
// safe, but rejecting it only costs the optimization, never correctness.
func usesPosition(e Expr) bool {
	switch v := e.(type) {
	case *callExpr:
		if v.name == "position" || v.name == "last" {
			return true
		}
		for _, a := range v.args {
			if usesPosition(a) {
				return true
			}
		}
	case *binaryExpr:
		return usesPosition(v.l) || usesPosition(v.r)
	case *negExpr:
		return usesPosition(v.e)
	case *unionExpr:
		for _, p := range v.parts {
			if usesPosition(p) {
				return true
			}
		}
	case *filterExpr:
		if usesPosition(v.primary) {
			return true
		}
		for _, p := range v.preds {
			if usesPosition(p) {
				return true
			}
		}
	case *pathExpr:
		if v.input != nil && usesPosition(v.input) {
			return true
		}
		for _, s := range v.steps {
			for _, p := range s.preds {
				if usesPosition(p) {
					return true
				}
			}
		}
	}
	return false
}
