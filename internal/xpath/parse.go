package xpath

import (
	"fmt"
	"strings"
)

// Compile runs the full compilation pipeline on an XPath 1.0
// expression: parse, normalize, infer the static result type, and plan
// an instruction program for the IR evaluator. The returned Compiled
// satisfies Expr, so it drops into every place the raw AST used to go.
func Compile(src string) (*Compiled, error) {
	ast, err := parse(src)
	if err != nil {
		return nil, err
	}
	return finishCompile(src, ast), nil
}

// parse produces the raw AST, which doubles as the reference
// interpreter's input.
func parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &exprParser{src: src, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s", p.peek())
	}
	return e, nil
}

// MustCompile is Compile but panics on error; for expressions known at
// build time.
func MustCompile(src string) *Compiled {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

// maxExprDepth bounds expression nesting so hostile inputs fail with a
// syntax error instead of exhausting the goroutine stack.
const maxExprDepth = 200

type exprParser struct {
	src   string
	toks  []token
	pos   int
	depth int
}

// newPath builds a path expression verbatim. Axis canonicalization
// (fusing the `//` step pairs) happens in the normalize pass, not at
// parse time, so the reference AST mirrors the source exactly.
func newPath(input Expr, absolute bool, steps []*step) Expr {
	return &pathExpr{input: input, absolute: absolute, steps: steps}
}

func (p *exprParser) peek() token  { return p.toks[p.pos] }
func (p *exprParser) peek2() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *exprParser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *exprParser) errf(format string, args ...interface{}) error {
	return &SyntaxError{Expr: p.src, Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *exprParser) expect(kind tokKind, what string) (token, error) {
	if p.peek().kind != kind {
		return token{}, p.errf("expected %s, found %s", what, p.peek())
	}
	return p.next(), nil
}

// parseExpr := OrExpr
func (p *exprParser) parseExpr() (Expr, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxExprDepth {
		return nil, p.errf("expression too deeply nested")
	}
	return p.parseOr()
}

func (p *exprParser) parseBinaryChain(sub func() (Expr, error), ops ...tokKind) (Expr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		matched := false
		for _, op := range ops {
			if k == op {
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
		p.next()
		r, err := sub()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{op: k, l: l, r: r}
	}
}

func (p *exprParser) parseOr() (Expr, error) {
	return p.parseBinaryChain(p.parseAnd, tokOr)
}

func (p *exprParser) parseAnd() (Expr, error) {
	return p.parseBinaryChain(p.parseEquality, tokAnd)
}

func (p *exprParser) parseEquality() (Expr, error) {
	return p.parseBinaryChain(p.parseRelational, tokEq, tokNeq)
}

func (p *exprParser) parseRelational() (Expr, error) {
	return p.parseBinaryChain(p.parseAdditive, tokLt, tokLe, tokGt, tokGe)
}

func (p *exprParser) parseAdditive() (Expr, error) {
	return p.parseBinaryChain(p.parseMultiplicative, tokPlus, tokMinus)
}

func (p *exprParser) parseMultiplicative() (Expr, error) {
	return p.parseBinaryChain(p.parseUnary, tokMultiply, tokDiv, tokMod)
}

func (p *exprParser) parseUnary() (Expr, error) {
	negs := 0
	for p.peek().kind == tokMinus {
		p.next()
		negs++
	}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	for ; negs > 0; negs-- {
		e = &negExpr{e}
	}
	return e, nil
}

func (p *exprParser) parseUnion() (Expr, error) {
	first, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokPipe {
		return first, nil
	}
	parts := []Expr{first}
	for p.peek().kind == tokPipe {
		p.next()
		e, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
	}
	return &unionExpr{parts: parts}, nil
}

// nodeTypeNames are the four XPath node-type tests, which look like
// function calls but are node tests.
var nodeTypeNames = map[string]bool{
	"comment": true, "text": true, "processing-instruction": true, "node": true,
}

// startsPrimary reports whether the upcoming tokens begin a FilterExpr
// (primary expression) rather than a location path.
func (p *exprParser) startsPrimary() bool {
	t := p.peek()
	switch t.kind {
	case tokVar, tokLParen, tokLiteral, tokNumber:
		return true
	case tokName:
		// FunctionCall: name '(' where name is not a node-type.
		return p.peek2().kind == tokLParen && !nodeTypeNames[t.val]
	}
	return false
}

// parsePath := LocationPath | FilterExpr (('/'|'//') RelativeLocationPath)?
func (p *exprParser) parsePath() (Expr, error) {
	if p.startsPrimary() {
		primary, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		var preds []Expr
		for p.peek().kind == tokLBracket {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			preds = append(preds, pred)
		}
		var fe Expr = primary
		if len(preds) > 0 {
			fe = &filterExpr{primary: primary, preds: preds}
		}
		switch p.peek().kind {
		case tokSlash:
			p.next()
			steps, err := p.parseRelativeSteps()
			if err != nil {
				return nil, err
			}
			return newPath(fe, false, steps), nil
		case tokSlashSlash:
			p.next()
			steps, err := p.parseRelativeSteps()
			if err != nil {
				return nil, err
			}
			steps = append([]*step{descOrSelfStep()}, steps...)
			return newPath(fe, false, steps), nil
		}
		return fe, nil
	}
	return p.parseLocationPath()
}

func descOrSelfStep() *step {
	return &step{axis: axisDescendantOrSelf, test: nodeTest{kind: testNode}}
}

func (p *exprParser) parseLocationPath() (Expr, error) {
	switch p.peek().kind {
	case tokSlash:
		p.next()
		if p.startsStep() {
			steps, err := p.parseRelativeSteps()
			if err != nil {
				return nil, err
			}
			return newPath(nil, true, steps), nil
		}
		return &pathExpr{absolute: true}, nil
	case tokSlashSlash:
		p.next()
		steps, err := p.parseRelativeSteps()
		if err != nil {
			return nil, err
		}
		steps = append([]*step{descOrSelfStep()}, steps...)
		return newPath(nil, true, steps), nil
	}
	steps, err := p.parseRelativeSteps()
	if err != nil {
		return nil, err
	}
	return newPath(nil, false, steps), nil
}

func (p *exprParser) startsStep() bool {
	switch p.peek().kind {
	case tokName, tokStar, tokAt, tokAxis, tokDot, tokDotDot:
		return true
	}
	return false
}

func (p *exprParser) parseRelativeSteps() ([]*step, error) {
	var steps []*step
	s, err := p.parseStep()
	if err != nil {
		return nil, err
	}
	steps = append(steps, s)
	for {
		switch p.peek().kind {
		case tokSlash:
			p.next()
		case tokSlashSlash:
			p.next()
			steps = append(steps, descOrSelfStep())
		default:
			return steps, nil
		}
		s, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		steps = append(steps, s)
	}
}

func (p *exprParser) parseStep() (*step, error) {
	switch p.peek().kind {
	case tokDot:
		p.next()
		return &step{axis: axisSelf, test: nodeTest{kind: testNode}}, nil
	case tokDotDot:
		p.next()
		return &step{axis: axisParent, test: nodeTest{kind: testNode}}, nil
	}
	s := &step{axis: axisChild}
	switch p.peek().kind {
	case tokAt:
		p.next()
		s.axis = axisAttribute
	case tokAxis:
		name := p.next().val
		ax, ok := axisNames[name]
		if !ok {
			return nil, p.errf("unknown axis %q", name)
		}
		s.axis = ax
	}
	test, err := p.parseNodeTest()
	if err != nil {
		return nil, err
	}
	s.test = test
	for p.peek().kind == tokLBracket {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		s.preds = append(s.preds, pred)
	}
	return s, nil
}

func (p *exprParser) parseNodeTest() (nodeTest, error) {
	switch p.peek().kind {
	case tokStar:
		p.next()
		return nodeTest{kind: testAnyName}, nil
	case tokName:
		name := p.next().val
		if nodeTypeNames[name] && p.peek().kind == tokLParen {
			p.next()
			nt := nodeTest{}
			switch name {
			case "comment":
				nt.kind = testComment
			case "text":
				nt.kind = testText
			case "node":
				nt.kind = testNode
			case "processing-instruction":
				nt.kind = testPI
				if p.peek().kind == tokLiteral {
					nt.piTarget = p.next().val
				}
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nodeTest{}, err
			}
			return nt, nil
		}
		if strings.HasSuffix(name, ":*") {
			return nodeTest{kind: testNSWildcard, prefix: strings.TrimSuffix(name, ":*")}, nil
		}
		nt := nodeTest{kind: testName}
		if i := strings.IndexByte(name, ':'); i >= 0 {
			nt.prefix, nt.name = name[:i], name[i+1:]
		} else {
			nt.name = name
		}
		return nt, nil
	}
	return nodeTest{}, p.errf("expected node test, found %s", p.peek())
}

func (p *exprParser) parsePredicate() (Expr, error) {
	if _, err := p.expect(tokLBracket, "'['"); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBracket, "']'"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *exprParser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.next()
		return varExpr(t.val), nil
	case tokLiteral:
		p.next()
		return literalExpr(t.val), nil
	case tokNumber:
		p.next()
		return numberExpr(t.num), nil
	case tokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokName:
		// function call
		name := p.next().val
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		var args []Expr
		if p.peek().kind != tokRParen {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.peek().kind != tokComma {
					break
				}
				p.next()
			}
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return &callExpr{name: name, args: args}, nil
	}
	return nil, p.errf("expected expression, found %s", t)
}
