package xpath_test

import (
	"testing"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

var fuzzSeeds = []string{
	"a/b/c", "//dimclass[@id='d1']", "*[position() = last()]",
	"count(//*) + 1", "concat('a', 'b', $v)", "@* | node()",
	"self::node()/..", "(//*)[2]", "id('k')/child::*",
	"string-length(normalize-space(.))", "1 div 0", "-(-1)",
	"a[b[c[d]]]", "x | y | z", "not(true()) or false()",
	"10 mod 3 = 1", "substring('hello', 2, 3)", "ancestor-or-self::*[1]",
	"'unterminated", "a[", "1 +", "((((", "$", "a::b", "/@/",
}

// FuzzParse checks the compiler front end never panics, reports
// syntax errors with offsets inside the expression, and produces a
// printable plan for everything it accepts.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := xpath.Compile(src)
		if err != nil {
			if se, ok := err.(*xpath.SyntaxError); ok {
				if se.Pos < 0 || se.Pos > len(src) {
					t.Fatalf("syntax error offset %d outside %q", se.Pos, src)
				}
			}
			return
		}
		if c.Plan() == "" {
			t.Fatalf("compiled %q has an empty plan", src)
		}
		if c.String() != src {
			t.Fatalf("String() = %q, want %q", c.String(), src)
		}
	})
}

const fuzzDoc = `<root id="r"><a id="a1"><b>one</b><b>two</b></a><a id="a2"><c>three</c></a><d/></root>`

// FuzzIRvsReference cross-checks the IR evaluator against the legacy AST
// interpreter on arbitrary expressions over a small fixed document.
func FuzzIRvsReference(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	doc := xmldom.MustParseString(fuzzDoc)
	vars := map[string]xpath.Value{"v": xpath.String("3")}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 512 {
			return
		}
		c, err := xpath.Compile(src)
		if err != nil {
			return
		}
		for _, n := range []*xmldom.Node{doc, doc.Children[0]} {
			ctx := &xpath.Context{Node: n, Position: 1, Size: 1, Vars: vars, Current: n}
			got, gotErr := c.Eval(ctx)
			ref := &xpath.Context{Node: n, Position: 1, Size: 1, Vars: vars, Current: n}
			want, wantErr := c.EvalReference(ref)
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("%q: IR err=%v, reference err=%v", src, gotErr, wantErr)
			}
			if gotErr == nil && !sameValue(got, want) {
				t.Fatalf("%q:\n  IR:        %#v\n  reference: %#v\n  plan:\n%s", src, got, want, c.Plan())
			}
		}
	})
}
