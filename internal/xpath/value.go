// Package xpath implements an XPath 1.0 expression engine over the xmldom
// tree model: lexer, parser, and evaluator with the core function library.
//
// It is the query substrate shared by the xslt engine (select/match/test
// expressions) and the xsd validator (key/keyref selector and field paths),
// in the same way MSXML's and Xerces' XPath engines underpinned the
// original system.
package xpath

import (
	"math"
	"strconv"
	"strings"

	"goldweb/internal/xmldom"
)

// Value is the result of evaluating an expression. It is one of the four
// XPath 1.0 types: NodeSet, Boolean, Number or String.
type Value interface {
	xpathValue()
}

// NodeSet is a collection of nodes in document order, without duplicates.
// Every evaluation result upholds this invariant (unions and multi-step
// paths merge through xmldom.SortDocOrder).
type NodeSet []*xmldom.Node

// Boolean is the XPath boolean type.
type Boolean bool

// Number is the XPath number type (IEEE 754 double).
type Number float64

// String is the XPath string type.
type String string

func (NodeSet) xpathValue() {}
func (Boolean) xpathValue() {}
func (Number) xpathValue()  {}
func (String) xpathValue()  {}

// ToString converts any Value to its XPath string() form.
func ToString(v Value) string {
	switch x := v.(type) {
	case nil:
		return ""
	case String:
		return string(x)
	case Number:
		return FormatNumber(float64(x))
	case Boolean:
		if x {
			return "true"
		}
		return "false"
	case NodeSet:
		if len(x) == 0 {
			return ""
		}
		return x[0].StringValue()
	}
	return ""
}

// ToNumber converts any Value to its XPath number() form.
func ToNumber(v Value) float64 {
	switch x := v.(type) {
	case nil:
		return math.NaN()
	case Number:
		return float64(x)
	case Boolean:
		if x {
			return 1
		}
		return 0
	case String:
		return stringToNumber(string(x))
	case NodeSet:
		return stringToNumber(ToString(x))
	}
	return math.NaN()
}

// ToBool converts any Value to its XPath boolean() form.
func ToBool(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case Boolean:
		return bool(x)
	case Number:
		f := float64(x)
		return f != 0 && !math.IsNaN(f)
	case String:
		return len(x) > 0
	case NodeSet:
		return len(x) > 0
	}
	return false
}

// stringToNumber implements the XPath string-to-number rules: optional
// whitespace, optional minus sign, decimal representation; anything else
// yields NaN.
func stringToNumber(s string) float64 {
	s = strings.TrimSpace(s)
	if s == "" {
		return math.NaN()
	}
	neg := false
	if s[0] == '-' {
		neg = true
		s = s[1:]
	}
	// XPath numbers have no exponent notation and no leading '+'.
	if s == "" || strings.ContainsAny(s, "eE+") {
		return math.NaN()
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	if neg {
		return -f
	}
	return f
}

// FormatNumber renders a float64 using the XPath number-to-string rules:
// "NaN", "Infinity", "-Infinity", integers without a decimal point, and
// otherwise the shortest decimal form without an exponent.
func FormatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == 0:
		return "0" // normalizes -0
	case f == math.Trunc(f) && math.Abs(f) < 1e18:
		return strconv.FormatInt(int64(f), 10)
	default:
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
}
