package workload

import (
	"testing"

	"goldweb/internal/core"
	"goldweb/internal/xmldom"
)

// TestDefaultParseLimitsAcceptRealModels pins the contract between the
// parser's DoS limits and the documents this system actually produces:
// the paper's sample models and the evaluation sweep sizes must all
// parse under xmldom.DefaultLimits.
func TestDefaultParseLimitsAcceptRealModels(t *testing.T) {
	docs := map[string]string{
		"sales":    core.SampleSales().XMLString(),
		"hospital": core.SampleHospital().XMLString(),
	}
	for _, spec := range []ModelSpec{
		{Facts: 1, Dims: 1, Depth: 0},
		{Facts: 3, Dims: 4, Depth: 2, Cubes: true},
		{Facts: 10, Dims: 20, Depth: 8},
		{Facts: 25, Dims: 30, Depth: 10, Cubes: true},
	} {
		docs[spec.String()] = GenModel(spec).XMLString()
	}
	for name, src := range docs {
		if _, err := xmldom.ParseString(src); err != nil {
			t.Errorf("%s (%d bytes) rejected by default limits: %v", name, len(src), err)
		}
	}
}
