package workload

import (
	"context"
	"math/bits"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// LoadSpec shapes a sustained in-process load run: N concurrent
// clients hammering an http.Handler with a realistic request mix.
type LoadSpec struct {
	// Clients is the number of concurrent synthetic clients (≥ 1).
	Clients int
	// Duration is how long the run lasts (≥ 1ms).
	Duration time.Duration
	// GzipFrac is the fraction of requests sent with
	// "Accept-Encoding: gzip" (a modern browser mix is ~1.0; 0.9
	// leaves room for curl-style identity clients).
	GzipFrac float64
	// CondFrac is the fraction of requests that revalidate with
	// If-None-Match using the ETag the client learned for that path —
	// the browser-cache behavior that turns repeat views into 304s.
	CondFrac float64
	// Seed makes the mix deterministic.
	Seed int64
}

// LoadReport aggregates a finished run.
type LoadReport struct {
	Clients     int     `json:"clients"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int64   `json:"requests"`
	RPS         float64 `json:"rps"`
	P50Micros   int64   `json:"p50_us"`
	P99Micros   int64   `json:"p99_us"`
	Hits304     int64   `json:"hits_304"`
	Ratio304    float64 `json:"ratio_304"`
	BytesOnWire int64   `json:"bytes_on_wire"`
	Errors      int64   `json:"errors"`
}

// latHist is a log-linear latency histogram (power-of-two ranges, 8
// linear sub-buckets each): constant memory, ~9% worst-case relative
// quantile error, mergeable across clients without coordination.
type latHist struct {
	counts [64 * 8]int64
	total  int64
}

func (h *latHist) record(d time.Duration) {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	exp := bits.Len64(uint64(us)) - 1
	sub := 0
	if exp > 3 {
		sub = int((us >> (exp - 3)) & 7)
	} else {
		sub = int(us & 7)
	}
	h.counts[exp*8+sub]++
	h.total++
}

func (h *latHist) merge(o *latHist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.total += o.total
}

// quantile reconstructs the value at q (0..1) from bucket midpoints.
func (h *latHist) quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	rank := int64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			exp, sub := i/8, int64(i%8)
			if exp <= 3 {
				return sub
			}
			base := int64(1) << exp
			step := base / 8
			return base + sub*step + step/2
		}
	}
	return 0
}

// respSink is the measurement-side http.ResponseWriter: it discards
// body bytes while counting them, and keeps the headers so the client
// can learn ETags. One sink is reused per client across requests.
type respSink struct {
	header http.Header
	status int
	bytes  int64
}

func (s *respSink) Header() http.Header { return s.header }

func (s *respSink) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
}

func (s *respSink) Write(p []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	s.bytes += int64(len(p))
	return len(p), nil
}

func (s *respSink) reset() {
	for k := range s.header {
		delete(s.header, k)
	}
	s.status = 0
}

// RunLoad drives h with spec.Clients concurrent clients for
// spec.Duration, each cycling through paths with an independent
// deterministic mix of gzip/identity and conditional/unconditional
// requests. Calling the handler directly (no sockets) measures the
// serving path itself — header negotiation, conditional evaluation,
// the single body write — rather than kernel TCP behavior.
func RunLoad(ctx context.Context, h http.Handler, paths []string, spec LoadSpec) (*LoadReport, error) {
	if spec.Clients < 1 {
		spec.Clients = 1
	}
	if spec.Duration < time.Millisecond {
		spec.Duration = time.Millisecond
	}
	urls := make([]*url.URL, len(paths))
	for i, p := range paths {
		u, err := url.Parse(p)
		if err != nil {
			return nil, err
		}
		urls[i] = u
	}

	type clientStats struct {
		hist        latHist
		requests    int64
		hits304     int64
		errors      int64
		bytesOnWire int64
	}
	stats := make([]clientStats, spec.Clients)

	// The run ends by flag, not by context: requests carry the caller's
	// ctx untouched, so the final in-flight requests are not failed by
	// an expiring deadline and the error count reflects the handler,
	// not the harness shutting down.
	var stop atomic.Bool
	timer := time.AfterFunc(spec.Duration, func() { stop.Store(true) })
	defer timer.Stop()

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < spec.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			rng := rand.New(rand.NewSource(spec.Seed + int64(c)*7919))
			etags := make(map[string]string, len(urls))
			sink := &respSink{header: make(http.Header, 8)}
			req := (&http.Request{
				Method: http.MethodGet,
				Proto:  "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
				Header:     make(http.Header, 2),
				Host:       "load.local",
				RemoteAddr: "127.0.0.1:0",
			}).WithContext(ctx)
			for !stop.Load() && ctx.Err() == nil {
				u := urls[rng.Intn(len(urls))]
				req.URL = u
				req.RequestURI = u.RequestURI()
				delete(req.Header, "Accept-Encoding")
				delete(req.Header, "If-None-Match")
				if rng.Float64() < spec.GzipFrac {
					req.Header["Accept-Encoding"] = []string{"gzip"}
				}
				if et, ok := etags[u.Path]; ok && rng.Float64() < spec.CondFrac {
					req.Header["If-None-Match"] = []string{et}
				}
				sink.reset()
				before := sink.bytes
				t0 := time.Now()
				h.ServeHTTP(sink, req)
				st.hist.record(time.Since(t0))
				st.requests++
				st.bytesOnWire += sink.bytes - before
				switch {
				case sink.status == http.StatusNotModified:
					st.hits304++
				case sink.status >= 400:
					st.errors++
				default:
					if et := sink.header.Get("Etag"); et != "" {
						etags[u.Path] = et
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var merged latHist
	rep := &LoadReport{Clients: spec.Clients, DurationSec: elapsed.Seconds()}
	for i := range stats {
		merged.merge(&stats[i].hist)
		rep.Requests += stats[i].requests
		rep.Hits304 += stats[i].hits304
		rep.Errors += stats[i].errors
		rep.BytesOnWire += stats[i].bytesOnWire
	}
	if rep.Requests > 0 {
		rep.RPS = float64(rep.Requests) / elapsed.Seconds()
		rep.Ratio304 = float64(rep.Hits304) / float64(rep.Requests)
	}
	rep.P50Micros = merged.quantile(0.50)
	rep.P99Micros = merged.quantile(0.99)
	return rep, nil
}
