package workload

import (
	"testing"
	"testing/quick"

	"goldweb/internal/core"
	"goldweb/internal/htmlgen"
)

// TestSweepInvariant is the repository's broadest property: every model
// the generator can produce (a) passes semantic validation, (b) passes
// canonical-schema validation of its XML form, (c) round-trips through
// XML, and (d) publishes a link-closed multi-page site whose page count
// follows the structural formula.
func TestSweepInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	f := func(fRaw, dRaw, hRaw uint8, seed int16) bool {
		spec := ModelSpec{
			Facts: 1 + int(fRaw%3),
			Dims:  1 + int(dRaw%4),
			Depth: int(hRaw % 3),
			Cubes: seed%2 == 0,
			Seed:  int64(seed),
		}
		m := GenModel(spec)
		if errs := m.Validate(); len(errs) != 0 {
			t.Logf("%s: semantic: %v", spec, errs)
			return false
		}
		if errs := core.ValidateModel(m); len(errs) != 0 {
			t.Logf("%s: schema: %v", spec, errs)
			return false
		}
		back, err := core.ModelFromXMLString(m.XMLString())
		if err != nil || len(back.Facts) != spec.Facts || len(back.Dims) != spec.Dims {
			t.Logf("%s: round trip: %v", spec, err)
			return false
		}
		site, err := htmlgen.Publish(m, htmlgen.Options{Mode: htmlgen.MultiPage})
		if err != nil {
			t.Logf("%s: publish: %v", spec, err)
			return false
		}
		if errs := htmlgen.CheckLinks(site); len(errs) != 0 {
			t.Logf("%s: links: %v", spec, errs)
			return false
		}
		// Page count: index + facts + dims + levels + cubes + additivity
		// pages (one per measure carrying rules).
		levels, addPages := 0, 0
		for _, d := range m.Dims {
			levels += len(d.Levels)
		}
		for _, fc := range m.Facts {
			for _, a := range fc.Atts {
				if len(a.Additivity) > 0 {
					addPages++
				}
			}
		}
		want := 1 + len(m.Facts) + len(m.Dims) + levels + len(m.Cubes) + addPages
		if got := len(site.HTMLPages()); got != want {
			t.Logf("%s: pages=%d want %d", spec, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
