package workload

import (
	"testing"

	"goldweb/internal/core"
	"goldweb/internal/olap"
)

func TestGenModelSizes(t *testing.T) {
	specs := []ModelSpec{
		{Facts: 1, Dims: 1, Depth: 0},
		{Facts: 2, Dims: 4, Depth: 2, Cubes: true},
		{Facts: 4, Dims: 8, Depth: 3},
	}
	for _, spec := range specs {
		m := GenModel(spec)
		if len(m.Facts) != spec.Facts || len(m.Dims) != spec.Dims {
			t.Errorf("%s: facts=%d dims=%d", spec, len(m.Facts), len(m.Dims))
		}
		for _, d := range m.Dims {
			if len(d.Levels) != spec.Depth {
				t.Errorf("%s: dim %s levels=%d", spec, d.Name, len(d.Levels))
			}
		}
		if errs := m.Validate(); len(errs) != 0 {
			t.Errorf("%s: invalid: %v", spec, errs)
		}
		if errs := core.ValidateModel(m); len(errs) != 0 {
			t.Errorf("%s: schema-invalid: %v", spec, errs)
		}
		if spec.Cubes && len(m.Cubes) != spec.Facts {
			t.Errorf("%s: cubes=%d", spec, len(m.Cubes))
		}
	}
}

func TestGenModelDeterministic(t *testing.T) {
	a := GenModel(ModelSpec{Facts: 2, Dims: 3, Depth: 2, Seed: 7})
	b := GenModel(ModelSpec{Facts: 2, Dims: 3, Depth: 2, Seed: 7})
	if a.XMLString() != b.XMLString() {
		t.Error("same seed produced different models")
	}
	c := GenModel(ModelSpec{Facts: 2, Dims: 3, Depth: 2, Seed: 8})
	if a.XMLString() == c.XMLString() {
		t.Error("different seeds produced identical models")
	}
}

func TestGenDataLoadsAndQueries(t *testing.T) {
	m := GenModel(ModelSpec{Facts: 2, Dims: 3, Depth: 2, Cubes: true, Seed: 1})
	ds := GenData(m, DataSpec{LeavesPerDim: 12, RowsPerFact: 50, Seed: 1})
	if got := ds.Fact("Fact01").Len(); got != 50 {
		t.Fatalf("rows = %d", got)
	}
	if got := ds.Dim("Dim01").Size(""); got != 12 {
		t.Fatalf("leaves = %d", got)
	}
	// Queries run against the generated data, grouping at a level.
	res, err := ds.Execute(olap.Query{
		Fact:    "Fact01",
		Aggs:    []olap.Agg{{Measure: "fact01_m1", Op: "SUM"}, {Measure: "fact01_m1", Op: "COUNT"}},
		GroupBy: []olap.GroupBy{{Dim: "Dim01", Level: "Dim01L1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	totalCount := 0.0
	for _, row := range res.Rows {
		totalCount += row.Values[1]
	}
	if totalCount != 50 {
		t.Errorf("counts sum to %v, want 50 (every row lands in exactly one group)", totalCount)
	}
	// Cube classes execute too.
	if _, err := ds.ExecuteCube("Cube01"); err != nil {
		t.Errorf("cube: %v", err)
	}
	// Completeness check passes on generated data (all links present).
	for _, d := range m.Dims {
		if errs := ds.Dim(d.Name).CheckComplete(); len(errs) != 0 {
			t.Errorf("%s: %v", d.Name, errs)
		}
	}
}

func TestGeneratedModelsPublishAndValidate(t *testing.T) {
	m := GenModel(ModelSpec{Facts: 3, Dims: 4, Depth: 2, Cubes: true, Seed: 3})
	doc := m.ToXML()
	if errs := core.ValidateDocument(doc); len(errs) != 0 {
		t.Fatalf("generated doc invalid: %v", errs)
	}
	back, err := core.ModelFromXML(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Facts) != 3 || len(back.Dims) != 4 {
		t.Error("round trip lost classes")
	}
}
