// Package workload generates synthetic conceptual models and instance
// data of controlled size for benchmarks: the parameter sweeps of the
// evaluation reproduce how validation and transformation cost, and the
// number of generated pages, scale with the number of fact classes,
// dimension classes and hierarchy depth.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"goldweb/internal/core"
	"goldweb/internal/olap"
)

// ModelSpec sizes a synthetic model.
type ModelSpec struct {
	Facts int // number of fact classes (≥ 1)
	Dims  int // number of dimension classes (≥ 1)
	Depth int // hierarchy levels per dimension (≥ 0)
	// MeasuresPerFact counts non-degenerate measures (default 3).
	MeasuresPerFact int
	// AttsPerLevel counts extra (non-OID, non-D) attributes (default 1).
	AttsPerLevel int
	// Cubes adds one cube class per fact when true.
	Cubes bool
	Seed  int64
}

func (s ModelSpec) String() string {
	return fmt.Sprintf("f%dd%dh%d", s.Facts, s.Dims, s.Depth)
}

// GenModel builds a deterministic synthetic model: every fact class
// aggregates every dimension; each dimension carries a linear hierarchy
// of Depth levels; some measures get additivity rules so the model
// exercises the full schema.
func GenModel(spec ModelSpec) *core.Model {
	if spec.Facts < 1 {
		spec.Facts = 1
	}
	if spec.Dims < 1 {
		spec.Dims = 1
	}
	if spec.MeasuresPerFact == 0 {
		spec.MeasuresPerFact = 3
	}
	if spec.AttsPerLevel == 0 {
		spec.AttsPerLevel = 1
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	b := core.NewModel(fmt.Sprintf("Synthetic %s", spec)).
		Describe(fmt.Sprintf("Synthetic model with %d facts, %d dims, depth %d.",
			spec.Facts, spec.Dims, spec.Depth))

	dimNames := make([]string, spec.Dims)
	for d := 0; d < spec.Dims; d++ {
		name := fmt.Sprintf("Dim%02d", d+1)
		dimNames[d] = name
		db := b.Dimension(name).
			Key(fmt.Sprintf("%s_id", strings.ToLower(name)), "OID").
			Descriptor(fmt.Sprintf("%s_name", strings.ToLower(name)), "String")
		for a := 0; a < spec.AttsPerLevel; a++ {
			db.Attr(fmt.Sprintf("%s_att%d", strings.ToLower(name), a+1), "String")
		}
		prevLevel := ""
		for lv := 0; lv < spec.Depth; lv++ {
			lname := fmt.Sprintf("%sL%d", name, lv+1)
			lb := db.Level(lname).
				Key(fmt.Sprintf("%s_id", strings.ToLower(lname)), "OID").
				Descriptor(fmt.Sprintf("%s_name", strings.ToLower(lname)), "String")
			for a := 0; a < spec.AttsPerLevel; a++ {
				lb.Attr(fmt.Sprintf("%s_att%d", strings.ToLower(lname), a+1), "String")
			}
			if prevLevel == "" {
				db.Rollup(lname)
			} else {
				db.LevelRef(prevLevel).Rollup(lname)
			}
			prevLevel = lname
		}
	}

	for f := 0; f < spec.Facts; f++ {
		fname := fmt.Sprintf("Fact%02d", f+1)
		fb := b.Fact(fname).Describe("Synthetic fact class " + fname)
		for _, dn := range dimNames {
			fb.Aggregates(dn)
		}
		var measureNames []string
		for mi := 0; mi < spec.MeasuresPerFact; mi++ {
			mname := fmt.Sprintf("%s_m%d", strings.ToLower(fname), mi+1)
			measureNames = append(measureNames, mname)
			mb := fb.Measure(mname, "Integer")
			// Roughly a third of the measures carry additivity rules.
			if rng.Intn(3) == 0 && len(dimNames) > 0 {
				dn := dimNames[rng.Intn(len(dimNames))]
				if rng.Intn(2) == 0 {
					mb.NotAdditive(dn)
				} else {
					mb.Additive(dn, "MAX", "MIN", "AVG")
				}
			}
		}
		fb.Measure(fmt.Sprintf("%s_ticket", strings.ToLower(fname)), "Integer").OID()
		if len(measureNames) >= 2 {
			fb.Measure(fmt.Sprintf("%s_derived", strings.ToLower(fname)), "Integer").
				Derived(measureNames[0] + " + " + measureNames[1])
		}
		if spec.Cubes {
			cb := b.Cube(fmt.Sprintf("Cube%02d", f+1), fname).Measures(measureNames[0])
			if spec.Depth > 0 {
				cb.Dice(dimNames[0], fmt.Sprintf("%sL%d", dimNames[0], 1))
			} else {
				cb.Dice(dimNames[0], "")
			}
		}
	}
	return b.MustBuild()
}

// DataSpec sizes the instance data for a synthetic model.
type DataSpec struct {
	// LeavesPerDim counts terminal members per dimension (default 20).
	LeavesPerDim int
	// RowsPerFact counts fact rows per fact class (default 100).
	RowsPerFact int
	Seed        int64
}

// GenData loads a deterministic dataset for a model produced by GenModel.
// Level member counts shrink geometrically with height.
func GenData(m *core.Model, spec DataSpec) *olap.Dataset {
	if spec.LeavesPerDim == 0 {
		spec.LeavesPerDim = 20
	}
	if spec.RowsPerFact == 0 {
		spec.RowsPerFact = 100
	}
	rng := rand.New(rand.NewSource(spec.Seed + 1))
	ds := olap.NewDataset(m)
	for _, d := range m.Dims {
		dd := ds.Dim(d.Name)
		// Build the linear level chain leaf → L1 → ... → Ldepth.
		var chain []string // level names bottom-up
		cur := d.Roots()
		for len(cur) > 0 {
			l := d.Level(cur[0])
			chain = append(chain, l.Name)
			cur = nil
			for _, e := range l.Associations {
				cur = append(cur, e.Child)
			}
		}
		counts := make([]int, len(chain))
		n := spec.LeavesPerDim
		for i := range chain {
			n = max(1, n/3)
			counts[i] = n
		}
		for i := len(chain) - 1; i >= 0; i-- {
			for k := 0; k < counts[i]; k++ {
				key := fmt.Sprintf("%s_%s_%d", strings.ToLower(d.Name), strings.ToLower(chain[i]), k)
				dd.AddMember(chain[i], key, fmt.Sprintf("%s %d", chain[i], k))
				if i < len(chain)-1 {
					parent := fmt.Sprintf("%s_%s_%d", strings.ToLower(d.Name), strings.ToLower(chain[i+1]), k%counts[i+1])
					dd.MustLink(chain[i], key, chain[i+1], parent)
				}
			}
		}
		for k := 0; k < spec.LeavesPerDim; k++ {
			key := fmt.Sprintf("%s_%d", strings.ToLower(d.Name), k)
			mem := dd.AddMember("", key, fmt.Sprintf("%s member %d", d.Name, k))
			for _, a := range d.Atts {
				if !a.IsOID && !a.IsD {
					mem.Set(a.Name, fmt.Sprintf("v%d", k%7))
				}
			}
			if len(chain) > 0 {
				parent := fmt.Sprintf("%s_%s_%d", strings.ToLower(d.Name), strings.ToLower(chain[0]), k%counts[0])
				dd.MustLink("", key, chain[0], parent)
			}
		}
	}
	for _, f := range m.Facts {
		fd := ds.Fact(f.Name)
		for r := 0; r < spec.RowsPerFact; r++ {
			row := olap.Row{
				Coords:     map[string][]string{},
				Measures:   map[string]float64{},
				Degenerate: map[string]string{},
			}
			for _, agg := range f.SharedAggs {
				d := m.Dim(agg.DimClass)
				key := fmt.Sprintf("%s_%d", strings.ToLower(d.Name), rng.Intn(spec.LeavesPerDim))
				row.Coords[d.Name] = []string{key}
			}
			for _, a := range f.Atts {
				switch {
				case a.IsDerived:
				case a.IsOID:
					row.Degenerate[a.Name] = fmt.Sprintf("T%d", r)
				default:
					row.Measures[a.Name] = float64(rng.Intn(100))
				}
			}
			fd.MustAdd(row)
		}
	}
	return ds
}
