package workload

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// staticHandler serves a fixed body with an ETag and honors
// If-None-Match — enough surface to exercise the client mix.
func staticHandler(body string, etag string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Etag", etag)
		if r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Write([]byte(body))
	})
}

func TestRunLoadCountsAndRevalidates(t *testing.T) {
	h := staticHandler("hello world, this is a page body", `"abc123"`)
	rep, err := RunLoad(context.Background(), h, []string{"/a", "/b"}, LoadSpec{
		Clients:  4,
		Duration: 150 * time.Millisecond,
		GzipFrac: 0.5,
		CondFrac: 0.9,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests recorded")
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors against an always-200 handler", rep.Errors)
	}
	// With CondFrac=0.9 and an immediately-learned ETag, most repeats
	// revalidate: the 304 ratio must be substantial and the wire bytes
	// well under requests × body size.
	if rep.Ratio304 < 0.5 {
		t.Errorf("304 ratio %.2f, want ≥ 0.5 under CondFrac 0.9", rep.Ratio304)
	}
	if full := rep.Requests * int64(len("hello world, this is a page body")); rep.BytesOnWire >= full {
		t.Errorf("bytes on wire %d not reduced below full-body %d", rep.BytesOnWire, full)
	}
	if rep.RPS <= 0 || rep.P50Micros <= 0 || rep.P99Micros < rep.P50Micros {
		t.Errorf("implausible latency stats: rps=%.0f p50=%dus p99=%dus", rep.RPS, rep.P50Micros, rep.P99Micros)
	}
	if rep.Hits304+rep.Errors > rep.Requests {
		t.Errorf("counts inconsistent: %+v", rep)
	}
}

func TestRunLoadCountsErrors(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	})
	rep, err := RunLoad(context.Background(), h, []string{"/missing"}, LoadSpec{
		Clients: 2, Duration: 50 * time.Millisecond, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != rep.Requests || rep.Requests == 0 {
		t.Errorf("errors %d of %d requests, want all", rep.Errors, rep.Requests)
	}
}

func TestRunLoadDeterministicMix(t *testing.T) {
	// Same seed → same per-client request decisions. Durations differ,
	// so only spot-check that the mix parameters were honored at all:
	// CondFrac=0 must never produce a 304.
	h := staticHandler("body bytes body bytes", `"zz"`)
	rep, err := RunLoad(context.Background(), h, []string{"/x"}, LoadSpec{
		Clients: 2, Duration: 50 * time.Millisecond, CondFrac: 0, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hits304 != 0 {
		t.Errorf("%d hits with CondFrac=0", rep.Hits304)
	}
}

func TestLatHistQuantiles(t *testing.T) {
	var h latHist
	for i := 1; i <= 1000; i++ {
		h.record(time.Duration(i) * time.Microsecond)
	}
	p50 := h.quantile(0.50)
	p99 := h.quantile(0.99)
	// Log-linear buckets bound relative error to ~12.5%.
	if p50 < 400 || p50 > 625 {
		t.Errorf("p50 %dus, want ≈500us", p50)
	}
	if p99 < 850 || p99 > 1200 {
		t.Errorf("p99 %dus, want ≈990us", p99)
	}
	if h.quantile(0) > h.quantile(1) {
		t.Error("quantile not monotone at extremes")
	}
}
