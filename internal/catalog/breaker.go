package catalog

import (
	"sync"
	"time"
)

// BreakerState is the circuit state of one model's publish pipeline.
type BreakerState int

const (
	// BreakerClosed: publishes flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: K consecutive publish failures tripped the circuit;
	// attempts are rejected until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and exactly one probe
	// attempt is in flight; its outcome closes or re-opens the circuit.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a consecutive-failure circuit breaker guarding one
// model's publish pipeline. A model whose every republish fails must
// not burn a full parse+validate+lint+transform on each retry tick —
// after threshold consecutive failures the circuit opens and attempts
// are rejected outright until cooldown passes, when a single half-open
// probe is admitted.
type breaker struct {
	threshold int // <= 0 disables the breaker (always closed)
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	consec   int
	openedAt time.Time
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a publish attempt may proceed. An open circuit
// admits nothing until the cooldown elapses, then transitions to
// half-open and admits exactly one probe; further callers are rejected
// until that probe settles via Success or Failure.
func (b *breaker) Allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // BreakerHalfOpen: the probe slot is taken
		return false
	}
}

// Success records a successful publish: the circuit closes and the
// consecutive-failure count resets.
func (b *breaker) Success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.state = BreakerClosed
	b.consec = 0
	b.mu.Unlock()
}

// Failure records a failed publish. A half-open probe failure re-opens
// immediately; in the closed state the circuit opens once the
// consecutive count reaches the threshold.
func (b *breaker) Failure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.consec++
	if b.state == BreakerHalfOpen || b.consec >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
	b.mu.Unlock()
}

// State returns the current circuit state (resolving an elapsed open
// cooldown to half-open for reporting is deliberately not done here:
// the transition happens on Allow, so State reflects what attempts
// actually experienced).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// wait returns how long until an attempt could be admitted (0 when
// Allow would pass right now).
func (b *breaker) wait() time.Duration {
	if b.threshold <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	rem := b.cooldown - b.now().Sub(b.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}
