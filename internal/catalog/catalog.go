// Package catalog manages a registry of named multidimensional models,
// each served by its own internal/server instance, with resilient hot
// swaps: every model transition runs a staged pipeline (parse →
// xsd-validate → lint gate → shadow publish → atomic generation bump)
// and any stage failure rolls back to the last-good snapshot. A
// background reloader retries failed loads with exponential backoff and
// seeded jitter under a per-model circuit breaker, so one corrupt model
// file degrades exactly one model — which keeps serving its last-good
// site, marked stale — and never takes the catalog down.
package catalog

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"goldweb/internal/analysis"
	"goldweb/internal/core"
	"goldweb/internal/server"
	"goldweb/internal/xmldom"
	"goldweb/internal/xsd"
)

// Sentinel errors callers can test with errors.Is.
var (
	// ErrUnknownModel: the name is not registered in the catalog.
	ErrUnknownModel = errors.New("unknown model")
	// ErrBreakerOpen: the model's circuit breaker is rejecting publish
	// attempts; retry after the cooldown.
	ErrBreakerOpen = errors.New("circuit breaker open")
)

// LoadFunc fetches the raw XML source for a named model. The catalog
// calls it on Add, Reload, and from the background retry loop.
type LoadFunc func(ctx context.Context, name string) ([]byte, error)

// DirLoader returns a LoadFunc reading <dir>/<name>.xml.
func DirLoader(dir string) LoadFunc {
	return func(_ context.Context, name string) ([]byte, error) {
		return os.ReadFile(filepath.Join(dir, name+".xml"))
	}
}

// DirModels lists the model names (*.xml basenames) under dir, sorted.
func DirModels(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".xml") {
			continue
		}
		names = append(names, strings.TrimSuffix(ent.Name(), ".xml"))
	}
	sort.Strings(names)
	return names, nil
}

// LintPolicy controls the lint gate stage of a staged swap.
type LintPolicy string

const (
	// LintStrict (the default): error-severity lint findings fail the
	// swap and roll back — a model that lints dirty never goes live.
	LintStrict LintPolicy = "strict"
	// LintWarn: findings are reported via the event hook but don't gate.
	LintWarn LintPolicy = "warn"
	// LintOff: the lint stage is skipped entirely.
	LintOff LintPolicy = "off"
)

// EventType classifies catalog lifecycle events.
type EventType int

const (
	// EventSwapCommitted: a staged swap went live (Gen is the new generation).
	EventSwapCommitted EventType = iota
	// EventStageFailed: a pipeline stage failed and the swap rolled back
	// (Stage names the stage, Err the cause).
	EventStageFailed
	// EventRetryScheduled: the background reloader scheduled the next
	// attempt (Attempt counts failures so far, Delay the backoff chosen).
	EventRetryScheduled
	// EventBreakerOpened: the model's circuit breaker tripped open.
	EventBreakerOpened
	// EventBreakerClosed: a successful publish closed the breaker again.
	EventBreakerClosed
	// EventLintFindings: the lint stage produced findings under LintWarn
	// (Err carries a summary; the swap proceeds).
	EventLintFindings
)

func (t EventType) String() string {
	switch t {
	case EventSwapCommitted:
		return "swap-committed"
	case EventStageFailed:
		return "stage-failed"
	case EventRetryScheduled:
		return "retry-scheduled"
	case EventBreakerOpened:
		return "breaker-opened"
	case EventBreakerClosed:
		return "breaker-closed"
	case EventLintFindings:
		return "lint-findings"
	}
	return "unknown"
}

// Event is one catalog lifecycle observation, delivered synchronously
// to Options.OnEvent. Handlers must be fast and must not call back into
// the catalog for the same model (the entry lock is held).
type Event struct {
	Model   string
	Type    EventType
	Stage   string // pipeline stage for failures: load, parse, validate, lint, publish, commit
	Gen     uint64
	Err     error
	Attempt int
	Delay   time.Duration
}

// Options configures a Catalog. The zero value works for a loader-less
// catalog fed via Set.
type Options struct {
	// Loader fetches model source by name; required for Add/Reload and
	// the background retry loop.
	Loader LoadFunc
	// Publish overrides each model server's publication pipeline (the
	// fault-injection hook). Nil means the real htmlgen pipeline.
	Publish server.PublishFunc
	// Lint is the lint-gate policy (default LintStrict).
	Lint LintPolicy
	// Schema is the XML Schema models validate and lint against. Nil
	// means the embedded GOLD schema; set it (e.g. via xsd.LoadSchemaFile)
	// to serve models of any vocabulary.
	Schema *xsd.Schema

	// BreakerThreshold is K: consecutive publish failures before the
	// model's circuit opens. 0 means the default; negative disables the
	// breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects attempts
	// before admitting a half-open probe.
	BreakerCooldown time.Duration

	// DisableRetry turns the background reloader off: failed loads are
	// reported but only retried on explicit Reload.
	DisableRetry bool
	// RetryBase and RetryMax bound the exponential backoff between
	// automatic retries of a failing model.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed makes retry jitter (and nothing else) deterministic.
	Seed int64

	// StageTimeout bounds one staged swap end to end, so a hung publish
	// rolls back instead of wedging the model's swap lock.
	StageTimeout time.Duration

	// RequestTimeout, MaxInflight and CacheSize are passed through to
	// each model's server (zero means that server default).
	RequestTimeout time.Duration
	MaxInflight    int
	CacheSize      int
	// CacheBytes bounds each model server's presentation cache by
	// summed artifact bytes (zero means the server default; negative
	// disables the byte budget). All model servers intern into the
	// shared content store, so byte-identical pages across models or
	// generations are stored once and keep stable ETags.
	CacheBytes int64
	// NoCompress disables precompressed gzip variants: every response
	// is served as identity regardless of Accept-Encoding.
	NoCompress bool

	// OnEvent observes catalog lifecycle events (may be nil).
	OnEvent func(Event)
	// Now is the clock used by circuit breakers (tests inject one).
	Now func() time.Time
	// ParseLimits bounds model XML parsing (zero value: xmldom defaults).
	ParseLimits xmldom.Limits
}

// Catalog-level defaults.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
	DefaultRetryBase        = 100 * time.Millisecond
	DefaultRetryMax         = 30 * time.Second
	DefaultStageTimeout     = 30 * time.Second
)

// entry is one registered model: its dedicated server plus the
// resilience state around it.
type entry struct {
	name    string
	srv     *server.Server
	app     http.Handler // the server's app mux, mounted under /m/<name>/
	breaker *breaker

	// swapMu serializes staged swaps and retry bookkeeping for this
	// model: a capacity-1 token channel rather than a sync.Mutex so
	// acquisition can observe context cancellation. Swaps hold the lock
	// for a full pipeline run (up to StageTimeout), so a caller whose
	// context dies while queued must unblock with an error instead of
	// joining an unbounded convoy. The serving path never takes it.
	swapMu   chan struct{}
	hasGood  bool   // a last-good snapshot is live
	gen      uint64 // generation of the last committed swap
	srcSum   string // sha256 (truncated) of the last committed source
	consec   int    // consecutive failed attempts since last success
	lastErr  error
	lastAt   time.Time
	retrying bool // a retry loop goroutine is active
}

// lock acquires the swap lock unconditionally. Hold times are bounded
// by the stage timeout, so unconditional acquisition is safe where no
// caller context exists (status reporting, retry bookkeeping).
func (e *entry) lock() { <-e.swapMu }

// lockCtx acquires the swap lock or gives up when ctx ends, so a
// canceled caller never queues behind a slow pipeline run.
func (e *entry) lockCtx(ctx context.Context) error {
	select {
	case <-e.swapMu:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *entry) unlock() { e.swapMu <- struct{}{} }

// Catalog is a resilient registry of named models.
type Catalog struct {
	opts   Options
	schema *xsd.Schema

	mu      sync.RWMutex
	entries map[string]*entry

	// ctx parents retry loops; cancel fires in Close.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New creates a catalog. Close releases its background work.
func New(opts Options) *Catalog {
	if opts.Lint == "" {
		opts.Lint = LintStrict
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = DefaultBreakerThreshold
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = DefaultBreakerCooldown
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = DefaultRetryBase
	}
	if opts.RetryMax < opts.RetryBase {
		opts.RetryMax = DefaultRetryMax
	}
	if opts.StageTimeout <= 0 {
		opts.StageTimeout = DefaultStageTimeout
	}
	if opts.ParseLimits == (xmldom.Limits{}) {
		opts.ParseLimits = xmldom.DefaultLimits
	}
	// Zero means the server default; negative disables the knob.
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = server.DefaultRequestTimeout
	} else if opts.RequestTimeout < 0 {
		opts.RequestTimeout = 0
	}
	if opts.MaxInflight == 0 {
		opts.MaxInflight = server.DefaultMaxInflight
	} else if opts.MaxInflight < 0 {
		opts.MaxInflight = 0
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = server.DefaultCacheSize
	}
	schema := opts.Schema
	if schema == nil {
		schema = core.MustSchema()
	}
	c := &Catalog{
		opts:    opts,
		schema:  schema,
		entries: make(map[string]*entry),
		rng:     rand.New(rand.NewSource(opts.Seed)),
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	return c
}

// Close stops the background reloader, waits for retry loops to exit,
// and closes every model server (canceling in-flight publications).
func (c *Catalog) Close() {
	c.cancel()
	c.wg.Wait()
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, e := range c.entries {
		e.srv.Close()
	}
}

// serverOptions builds the per-model server configuration.
func (c *Catalog) serverOptions() []server.Option {
	// The catalog's shared middleware applies the timeout and limiter
	// once for all models; per-model servers only need the pipeline
	// hook, cache sizing, and the publish deadline (the server derives
	// publish contexts from its requestTimeout).
	opts := []server.Option{
		server.WithMaxInflight(0),
		server.WithRequestTimeout(c.opts.RequestTimeout),
	}
	if c.opts.CacheSize > 0 {
		opts = append(opts, server.WithCacheSize(c.opts.CacheSize))
	}
	if c.opts.CacheBytes != 0 {
		opts = append(opts, server.WithCacheBytes(c.opts.CacheBytes))
	}
	if c.opts.NoCompress {
		opts = append(opts, server.WithCompression(false))
	}
	if c.opts.Publish != nil {
		opts = append(opts, server.WithPublishFunc(c.opts.Publish))
	}
	return opts
}

// ensure returns the entry for name, registering it if new.
func (c *Catalog) ensure(name string) *entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[name]; ok {
		return e
	}
	e := &entry{
		name:    name,
		srv:     server.NewEmpty(c.serverOptions()...),
		breaker: newBreaker(c.opts.BreakerThreshold, c.opts.BreakerCooldown, c.opts.Now),
		swapMu:  make(chan struct{}, 1),
	}
	e.swapMu <- struct{}{} // the unlocked token
	e.app = http.StripPrefix("/m/"+name, e.srv.AppHandler())
	c.entries[name] = e
	return e
}

// get returns the entry for name, or nil.
func (c *Catalog) get(name string) *entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.entries[name]
}

// Names returns the registered model names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	names := make([]string, 0, len(c.entries))
	for name := range c.entries {
		names = append(names, name)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Server returns the underlying server for name (nil if unknown) —
// mainly for tests and diagnostics.
func (c *Catalog) Server(name string) *server.Server {
	if e := c.get(name); e != nil {
		return e.srv
	}
	return nil
}

// Add registers name and attempts its first load through the staged
// pipeline. On failure the model stays registered (serving 503 until a
// retry succeeds) and the background reloader takes over; the error
// describes the failed stage.
func (c *Catalog) Add(ctx context.Context, name string) error {
	if c.opts.Loader == nil {
		return errors.New("catalog: Add requires a Loader")
	}
	return c.attempt(ctx, c.ensure(name), nil)
}

// Set stages data as the source of model name (registering it if new)
// through the full pipeline. On any stage failure the model keeps
// serving its last-good snapshot (marked stale) and the error reports
// the stage that failed.
func (c *Catalog) Set(ctx context.Context, name string, data []byte) error {
	return c.attempt(ctx, c.ensure(name), data)
}

// Reload re-fetches name through the Loader and stages the result.
// Returns ErrUnknownModel for unregistered names and ErrBreakerOpen
// while the model's circuit is rejecting attempts.
func (c *Catalog) Reload(ctx context.Context, name string) error {
	e := c.get(name)
	if e == nil {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if c.opts.Loader == nil {
		return errors.New("catalog: Reload requires a Loader")
	}
	return c.attempt(ctx, e, nil)
}

// attempt runs one breaker-gated load+stage attempt for e. data == nil
// means "fetch via the Loader". The swap lock serializes swaps; a
// caller whose context ends while queued fails without touching the
// breaker — like a breaker rejection, nothing was attempted.
func (c *Catalog) attempt(ctx context.Context, e *entry, data []byte) error {
	if err := e.lockCtx(ctx); err != nil {
		return fmt.Errorf("swap wait: model %q: %w", e.name, err)
	}
	defer e.unlock()
	return c.attemptLocked(ctx, e, data)
}

func (c *Catalog) attemptLocked(ctx context.Context, e *entry, data []byte) (err error) {
	if !e.breaker.Allow() {
		return fmt.Errorf("%w: model %q (cooling down %v)", ErrBreakerOpen, e.name, e.breaker.wait().Round(time.Millisecond))
	}
	stage := "load"
	defer func() {
		// A panicking loader or publish pipeline must roll back like any
		// other stage failure, not crash the catalog. The panic value is
		// preserved as an error so fault classification (errors.Is on
		// faultinject.ErrInjected) still works through the recovery.
		if rec := recover(); rec != nil {
			if rerr, ok := rec.(error); ok {
				err = fmt.Errorf("%s: panic: %w", stage, rerr)
			} else {
				err = fmt.Errorf("%s: panic: %v", stage, rec)
			}
		}
		if err != nil {
			c.noteFailureLocked(e, stage, err)
		} else {
			c.noteSuccessLocked(e)
		}
	}()

	sctx, cancel := context.WithTimeout(ctx, c.opts.StageTimeout)
	defer cancel()

	if data == nil {
		data, err = c.opts.Loader(sctx, e.name)
		if err != nil {
			return fmt.Errorf("load: %w", err)
		}
	}

	// Stage 1: parse (bounded, cancelable).
	stage = "parse"
	doc, perr := xmldom.ParseContext(sctx, data, c.opts.ParseLimits)
	if perr != nil {
		return fmt.Errorf("parse: %w", perr)
	}

	// Stage 2: structural XSD validation — grammar and types, applying
	// schema defaults in place — plus model construction. Referential
	// integrity (key/keyref) is deliberately left to the lint gate,
	// which reports violations with the governing key named; the shadow
	// publish re-runs full validation as a backstop when the gate is off.
	stage = "validate"
	verrs := c.schema.Validate(doc, xsd.ValidateOptions{
		ApplyDefaults:           true,
		SkipIdentityConstraints: true,
	})
	if len(verrs) > 0 {
		return fmt.Errorf("validate: %v (%d problems)", verrs[0], len(verrs))
	}
	m, merr := core.ModelFromXML(doc)
	if merr != nil {
		return fmt.Errorf("validate: %w", merr)
	}

	// Stage 3: lint gate.
	stage = "lint"
	if c.opts.Lint != LintOff {
		diags := analysis.LintModel(e.name+".xml", doc, c.schema)
		if analysis.HasErrors(diags) {
			summary := fmt.Errorf("lint: %d findings, first: %s", len(diags), diags[0])
			if c.opts.Lint == LintStrict {
				return summary
			}
			c.emit(Event{Model: e.name, Type: EventLintFindings, Err: summary})
		}
	}

	// Stage 4: shadow publish. The server validates the snapshot again
	// and runs the full publication pipeline against it without touching
	// the live snapshot — a failure here leaves last-good untouched.
	stage = "publish"
	staged, serr := e.srv.Stage(sctx, m)
	if serr != nil {
		return fmt.Errorf("publish: %w", serr)
	}

	// Stage 5: atomic generation bump.
	stage = "commit"
	e.gen = staged.Commit()
	sum := sha256.Sum256(data)
	e.srcSum = hex.EncodeToString(sum[:8])
	return nil
}

// noteFailureLocked records a failed attempt: breaker accounting, stale
// marking (the last-good site keeps serving), events, and — when a
// Loader is configured — scheduling the background retry.
func (c *Catalog) noteFailureLocked(e *entry, stage string, err error) {
	wasOpen := e.breaker.State() == BreakerOpen
	e.breaker.Failure()
	e.consec++
	e.lastErr = err
	e.lastAt = time.Now()
	if e.hasGood {
		e.srv.MarkStale(fmt.Sprintf("republish failing at stage %s", stage))
	}
	c.emit(Event{Model: e.name, Type: EventStageFailed, Stage: stage, Err: err, Attempt: e.consec})
	if !wasOpen && e.breaker.State() == BreakerOpen {
		c.emit(Event{Model: e.name, Type: EventBreakerOpened, Err: err, Attempt: e.consec})
	}
	c.scheduleRetryLocked(e)
}

// noteSuccessLocked records a committed swap: the breaker closes, the
// stale flag clears, and the model is last-good at e.gen.
func (c *Catalog) noteSuccessLocked(e *entry) {
	wasBroken := e.breaker.State() != BreakerClosed
	e.breaker.Success()
	e.consec = 0
	e.lastErr = nil
	e.hasGood = true
	e.srv.ClearStale()
	c.emit(Event{Model: e.name, Type: EventSwapCommitted, Gen: e.gen})
	if wasBroken {
		c.emit(Event{Model: e.name, Type: EventBreakerClosed, Gen: e.gen})
	}
}

func (c *Catalog) emit(ev Event) {
	if c.opts.OnEvent != nil {
		c.opts.OnEvent(ev)
	}
}

// scheduleRetryLocked starts the per-model retry loop unless retries
// are disabled, no loader exists, or a loop is already running.
func (c *Catalog) scheduleRetryLocked(e *entry) {
	if c.opts.DisableRetry || c.opts.Loader == nil || e.retrying {
		return
	}
	if c.ctx.Err() != nil {
		return
	}
	e.retrying = true
	c.wg.Add(1)
	go c.retryLoop(e)
}

// retryLoop re-attempts a failing model with exponential backoff and
// seeded jitter until it recovers, the catalog closes, or the entry is
// removed. When the circuit is open the sleep stretches to at least the
// remaining cooldown so the wakeup lands on an admissible half-open probe.
func (c *Catalog) retryLoop(e *entry) {
	defer c.wg.Done()
	for {
		e.lock()
		attempt := e.consec
		e.unlock()
		delay := c.backoff(attempt)
		if bw := e.breaker.wait(); bw > delay {
			delay = bw
		}
		c.emit(Event{Model: e.name, Type: EventRetryScheduled, Attempt: attempt, Delay: delay})
		select {
		case <-c.ctx.Done():
			e.lock()
			e.retrying = false
			e.unlock()
			return
		case <-time.After(delay):
		}
		if c.get(e.name) != e {
			// The entry was removed (or replaced) while we slept.
			e.lock()
			e.retrying = false
			e.unlock()
			return
		}
		// ErrBreakerOpen is not a new failure: the attempt was rejected
		// before doing work, so consec (and hence the backoff) is
		// unchanged and the next sleep is dominated by breaker.wait.
		c.attempt(c.ctx, e, nil)
		e.lock()
		if e.consec == 0 {
			// Recovered — or a concurrent Set/Reload succeeded while we
			// were sleeping. Checking under the swap lock closes the
			// race against a failure slipping in between our attempt and
			// this decision: any such failure bumps consec first.
			e.retrying = false
			e.unlock()
			return
		}
		e.unlock()
	}
}

// backoff returns RetryBase·2^(attempt-1) capped at RetryMax, with
// equal jitter (half fixed, half uniformly random) from the seeded
// generator so tests replay identical schedules.
func (c *Catalog) backoff(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := c.opts.RetryBase
	for i := 1; i < attempt && d < c.opts.RetryMax; i++ {
		d *= 2
	}
	if d > c.opts.RetryMax {
		d = c.opts.RetryMax
	}
	half := d / 2
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(half) + 1))
	c.rngMu.Unlock()
	return half + j
}

// Remove evicts name from the catalog and closes its server. The
// background retry loop (if any) exits on its next wakeup.
func (c *Catalog) Remove(name string) error {
	c.mu.Lock()
	e, ok := c.entries[name]
	if ok {
		delete(c.entries, name)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	e.srv.Close()
	return nil
}

// ModelStatus is one model's health snapshot as reported by Status and
// the /readyz endpoint.
type ModelStatus struct {
	Name       string `json:"name"`
	Ready      bool   `json:"ready"`
	Stale      bool   `json:"stale"`
	StaleWhy   string `json:"stale_reason,omitempty"`
	Generation uint64 `json:"generation"`
	Breaker    string `json:"breaker"`
	Failures   int    `json:"consecutive_failures,omitempty"`
	LastError  string `json:"last_error,omitempty"`
	SourceSum  string `json:"source_sum,omitempty"`
}

// Status reports every model's health, sorted by name.
func (c *Catalog) Status() []ModelStatus {
	c.mu.RLock()
	entries := make([]*entry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	out := make([]ModelStatus, 0, len(entries))
	for _, e := range entries {
		e.lock()
		st := ModelStatus{
			Name:       e.name,
			Ready:      e.hasGood,
			Generation: e.gen,
			Breaker:    e.breaker.State().String(),
			Failures:   e.consec,
			SourceSum:  e.srcSum,
		}
		if e.lastErr != nil {
			st.LastError = e.lastErr.Error()
		}
		e.unlock()
		st.Stale, st.StaleWhy = e.srv.Stale()
		out = append(out, st)
	}
	return out
}

// Ready reports whether every registered model has a live last-good
// snapshot (an empty catalog is ready).
func (c *Catalog) Ready() bool {
	for _, st := range c.Status() {
		if !st.Ready {
			return false
		}
	}
	return true
}
