package catalog

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable clock for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerOpensAfterThresholdConsecutiveFailures(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, time.Minute, clk.now)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("attempt %d rejected below threshold", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	b.Allow()
	b.Failure() // third consecutive failure trips the circuit
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open circuit admitted an attempt before the cooldown")
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, time.Minute, clk.now)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed (success resets the count)", b.State())
	}
}

func TestBreakerHalfOpenAdmitsExactlyOneProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(1, time.Minute, clk.now)
	b.Failure()
	if b.Allow() {
		t.Fatal("open circuit admitted an attempt")
	}
	clk.advance(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("elapsed cooldown did not admit the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second attempt admitted while the probe is in flight")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the circuit")
	}
}

func TestBreakerHalfOpenFailureReopensImmediately(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(5, time.Minute, clk.now)
	for i := 0; i < 5; i++ {
		b.Failure()
	}
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	b.Failure() // one probe failure, not five, re-opens
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open after failed probe", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened circuit admitted an attempt")
	}
	if w := b.wait(); w != time.Minute {
		t.Fatalf("wait = %v, want a full fresh cooldown", w)
	}
}

func TestBreakerDisabledAlwaysAllows(t *testing.T) {
	b := newBreaker(-1, time.Minute, nil)
	for i := 0; i < 100; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatal("disabled breaker rejected an attempt")
		}
	}
	if b.State() != BreakerClosed {
		t.Fatalf("disabled breaker state = %v, want closed", b.State())
	}
}
