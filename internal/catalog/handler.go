package catalog

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"goldweb/internal/server"
)

// Handler returns the catalog's HTTP surface:
//
//	GET /                → redirect to /catalog
//	GET /catalog         → JSON index of registered models
//	GET /healthz         → liveness (200 while the process serves)
//	GET /readyz          → readiness: per-model JSON status; 503 until
//	                       every model has a live last-good snapshot
//	GET /m/{name}/...    → that model's site (the same routes a
//	                       single-model server exposes at /)
//
// Model routes share one recovery/methods/limiter/timeout stack;
// health endpoints sit outside the limiter and timeout so orchestrators
// can probe a saturated catalog. A model whose republish pipeline is
// failing keeps serving its last-good site with Warning and
// X-Goldweb-Stale headers; a model that never loaded answers 503.
//
// Every model's pages are served as content-addressed artifacts from
// the shared store: hash-keyed ETags answer If-None-Match with 304s,
// gzip-capable clients get the precompressed variant, and pages that
// are byte-identical across models or across hot-swap generations are
// interned once with stable ETags (see internal/artifact).
func (c *Catalog) Handler() http.Handler {
	root := http.NewServeMux()
	root.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	root.HandleFunc("/readyz", c.handleReadyz)
	root.HandleFunc("/catalog", c.handleIndex)
	root.Handle("/m/", server.HardenApp(c.opts.MaxInflight, c.opts.RequestTimeout, http.HandlerFunc(c.serveModel)))
	root.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, "/catalog", http.StatusFound)
	})
	return server.HardenOuter(root)
}

// serveModel routes /m/{name}/... to the model's server. The bare
// /m/{name} (with or without trailing slash) redirects to the model's
// index page with an absolute path: a relative redirect would be
// resolved by the inner mux against the prefix-stripped URL and escape
// the /m/{name} namespace.
func (c *Catalog) serveModel(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/m/")
	name, sub, _ := strings.Cut(rest, "/")
	if name == "" {
		server.RespondError(w, r, http.StatusNotFound, "model name missing: use /m/{name}/...", "")
		return
	}
	e := c.get(name)
	if e == nil {
		server.RespondError(w, r, http.StatusNotFound, fmt.Sprintf("unknown model %q", name), "")
		return
	}
	if sub == "" {
		http.Redirect(w, r, "/m/"+name+"/site/index.html", http.StatusFound)
		return
	}
	e.app.ServeHTTP(w, r)
}

// readyzBody is the /readyz JSON document.
type readyzBody struct {
	Ready  bool          `json:"ready"`
	Models []ModelStatus `json:"models"`
}

func (c *Catalog) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body := readyzBody{Ready: true, Models: c.Status()}
	for _, st := range body.Models {
		if !st.Ready {
			body.Ready = false
			break
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if !body.Ready {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

// Serve runs the catalog's HTTP surface on addr until ctx ends, then
// shuts down gracefully: stop accepting, drain in-flight handlers, and
// finally Close the catalog (stopping retry loops and closing every
// model server, which cancels their in-flight publications).
func (c *Catalog) Serve(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return c.ServeListener(ctx, ln)
}

// ServeListener is Serve on an existing listener (tests use it to bind
// port 0).
func (c *Catalog) ServeListener(ctx context.Context, ln net.Listener) error {
	writeTimeout := 2 * c.opts.RequestTimeout
	if writeTimeout <= 0 {
		writeTimeout = 2 * server.DefaultRequestTimeout
	}
	hs := &http.Server{
		Handler:           c.Handler(),
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		c.Close()
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), server.DefaultShutdownGrace)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			hs.Close()
			c.Close()
			return err
		}
		<-errc // always http.ErrServerClosed after Shutdown
		c.Close()
		return nil
	}
}

func (c *Catalog) handleIndex(w http.ResponseWriter, r *http.Request) {
	type item struct {
		Name       string `json:"name"`
		URL        string `json:"url"`
		Ready      bool   `json:"ready"`
		Stale      bool   `json:"stale"`
		Generation uint64 `json:"generation"`
	}
	items := []item{}
	for _, st := range c.Status() {
		items = append(items, item{
			Name:       st.Name,
			URL:        "/m/" + st.Name + "/site/index.html",
			Ready:      st.Ready,
			Stale:      st.Stale,
			Generation: st.Generation,
		})
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Models []item `json:"models"`
	}{items})
}
