package catalog

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"goldweb/internal/core"
	"goldweb/internal/faultinject"
	"goldweb/internal/htmlgen"
	"goldweb/internal/server"
	"goldweb/internal/xmldom"
)

// The chaos soak hammers a multi-model catalog with concurrent readers
// while hot swaps race injected faults — failing, hanging, panicking
// and torn-input loads plus failing/hanging/panicking publishes — and
// asserts the catalog's availability contract:
//
//  1. zero non-injected 5xx: faults are injected only into the swap
//     pipeline, so after warm-up no client may ever see a 5xx;
//  2. no torn content: every served page byte-equals one canonically
//     published version;
//  3. no generation regression: per client per model, the
//     X-Goldweb-Generation header never decreases;
//  4. full recovery: once faults stop, every model converges to the
//     latest source version, unmarked, with a closed breaker.
//
// GOLDWEB_SOAK_DURATION stretches the fault window (CI: 30s);
// GOLDWEB_SOAK_REPORT names a JSON file for the soak summary.

const (
	soakModels   = 10
	soakVersions = 3 // versions 1..soakVersions-1 cycle; soakVersions is final
	soakClients  = 10
	soakSeed     = 42
)

// soakSource builds version v of soak model i. The version is baked
// into served content (measure name and description) so a page's bytes
// identify exactly which committed version produced it.
func soakSource(t *testing.T, i, v int) []byte {
	t.Helper()
	b := core.NewModel(fmt.Sprintf("Soak DW %02d", i)).
		Describe(fmt.Sprintf("chaos soak model %d at version %d", i, v))
	d := b.Dimension("Region").Key("region_id", "OID").Descriptor("region_name", "String")
	d.Level("City").Key("city_id", "OID").Descriptor("city_name", "String")
	d.Rollup("City")
	f := b.Fact("Facts").Aggregates("Region")
	f.Measure(fmt.Sprintf("qty_v%d", v), "Integer")
	m, err := b.Build()
	if err != nil {
		t.Fatalf("building soak model %d v%d: %v", i, v, err)
	}
	return []byte(xmldom.SerializeToString(m.ToXML(), xmldom.WriteOptions{}))
}

// soakStore is the mutable "web source" the loader reads from.
type soakStore struct {
	mu  sync.Mutex
	src map[string][]byte
	ver map[string]int
}

func (s *soakStore) set(name string, v int, src []byte) {
	s.mu.Lock()
	s.src[name], s.ver[name] = src, v
	s.mu.Unlock()
}

func (s *soakStore) get(name string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src[name]
}

// soakViolations collects contract violations without unbounded growth.
type soakViolations struct {
	mu    sync.Mutex
	count int
	msgs  []string
}

func (v *soakViolations) add(format string, args ...any) {
	v.mu.Lock()
	v.count++
	if len(v.msgs) < 20 {
		v.msgs = append(v.msgs, fmt.Sprintf(format, args...))
	}
	v.mu.Unlock()
}

func (v *soakViolations) report() (int, []string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.count, v.msgs
}

func soakDuration() time.Duration {
	if s := os.Getenv("GOLDWEB_SOAK_DURATION"); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			return d
		}
	}
	return 2 * time.Second
}

func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	ctx := context.Background()
	names := make([]string, soakModels)
	for i := range names {
		names[i] = fmt.Sprintf("soak-%02d", i)
	}

	// Canonical pages: publish every (model, version) through a quiet
	// catalog and record the exact bytes a correct swap serves. During
	// the storm, any served body outside this set is torn or phantom.
	canonIndex := make([]map[string]int, soakModels) // body -> version
	canonModel := make([]map[string]int, soakModels)
	{
		quiet := New(Options{DisableRetry: true})
		for i := range names {
			canonIndex[i] = map[string]int{}
			canonModel[i] = map[string]int{}
			h := quiet.Handler()
			for v := 1; v <= soakVersions; v++ {
				if err := quiet.Set(ctx, "canon", soakSource(t, i, v)); err != nil {
					t.Fatalf("canonical publish %d v%d: %v", i, v, err)
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/m/canon/site/index.html", nil))
				if rec.Code != 200 {
					t.Fatalf("canonical index %d v%d: %d", i, v, rec.Code)
				}
				canonIndex[i][rec.Body.String()] = v
				rec = httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/m/canon/model.xml", nil))
				if rec.Code != 200 {
					t.Fatalf("canonical model.xml %d v%d: %d", i, v, rec.Code)
				}
				canonModel[i][rec.Body.String()] = v
			}
		}
		quiet.Close()
	}

	store := &soakStore{src: map[string][]byte{}, ver: map[string]int{}}
	for i, name := range names {
		store.set(name, 1, soakSource(t, i, 1))
	}

	inj := faultinject.New(soakSeed)
	inj.Stop() // quiet warm-up; the storm arms it
	loader := func(ctx context.Context, name string) ([]byte, error) {
		return inj.Apply(ctx, "load:"+name, store.get(name))
	}
	publish := func(ctx context.Context, m *core.Model, opts htmlgen.Options) (*htmlgen.Site, error) {
		// Only swap-time publishes (the shadow probe is always the
		// MultiPage/no-focus publication, cache-seeded on commit) get
		// faults; the request path stays clean so every client-visible
		// 5xx is by definition non-injected.
		if opts.Mode == htmlgen.MultiPage && opts.Focus == "" {
			if err := inj.Step(ctx, "publish"); err != nil {
				return nil, err
			}
		}
		return htmlgen.PublishContext(ctx, m, opts)
	}

	log := &eventLog{}
	c := New(Options{
		Loader:           loader,
		Publish:          publish,
		Seed:             soakSeed,
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
		RetryBase:        10 * time.Millisecond,
		RetryMax:         100 * time.Millisecond,
		StageTimeout:     250 * time.Millisecond,
		OnEvent:          log.add,
	})
	defer c.Close()

	// Warm-up: every model must be last-good before any fault fires, so
	// the storm can never excuse a 5xx as "not loaded yet".
	for _, name := range names {
		if err := c.Add(ctx, name); err != nil {
			t.Fatalf("warm-up Add %s: %v", name, err)
		}
	}
	if !c.Ready() {
		t.Fatal("catalog not ready after warm-up")
	}

	// Arm the storm: chaos on every loader and the publish hook, plus a
	// scripted consecutive-failure burst on model 0 to guarantee at
	// least one breaker open/recover cycle per run.
	for _, name := range names {
		inj.Chaos("load:"+name, 0.35, faultinject.Fail, faultinject.Hang, faultinject.Torn, faultinject.Panic)
	}
	inj.Chaos("publish", 0.25, faultinject.Fail, faultinject.Hang, faultinject.Panic)
	inj.Script("load:"+names[0], faultinject.FailN(5))
	inj.Resume()

	h := c.Handler()
	viol := &soakViolations{}
	var requests atomic.Int64
	stopClients := make(chan struct{})
	var clientWG sync.WaitGroup

	for cl := 0; cl < soakClients; cl++ {
		clientWG.Add(1)
		go func(id int) {
			defer clientWG.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			lastGen := map[string]uint64{}
			for {
				select {
				case <-stopClients:
					return
				default:
				}
				i := rng.Intn(soakModels)
				name := names[i]
				var path string
				checkBody := (map[string]int)(nil)
				switch d := rng.Intn(10); {
				case d < 6:
					path, checkBody = "/m/"+name+"/site/index.html", canonIndex[i]
				case d < 8:
					path, checkBody = "/m/"+name+"/model.xml", canonModel[i]
				case d < 9:
					path = "/m/" + name + "/single"
				default:
					path = "/readyz"
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				requests.Add(1)
				if rec.Code >= 500 && path != "/readyz" {
					viol.add("non-injected %d at %s: %.120s", rec.Code, path, rec.Body.String())
					continue
				}
				if rec.Code != 200 {
					continue
				}
				if gh := rec.Header().Get(server.GenerationHeader); gh != "" {
					gen, err := strconv.ParseUint(gh, 10, 64)
					if err != nil {
						viol.add("unparseable generation header %q at %s", gh, path)
					} else {
						if gen < lastGen[name] {
							viol.add("generation regressed on %s: %d after %d", name, gen, lastGen[name])
						}
						lastGen[name] = gen
					}
				}
				if checkBody != nil {
					if _, ok := checkBody[rec.Body.String()]; !ok {
						viol.add("torn/non-canonical body on %s (%d bytes)", path, rec.Body.Len())
					}
				}
			}
		}(cl)
	}

	// Swappers: hot-swap model sources through the faulty loader for the
	// whole fault window, cycling among the non-final versions.
	stormCtx, stopStorm := context.WithTimeout(ctx, soakDuration())
	defer stopStorm()
	var swapWG sync.WaitGroup
	for sw := 0; sw < 2; sw++ {
		swapWG.Add(1)
		go func(id int) {
			defer swapWG.Done()
			rng := rand.New(rand.NewSource(int64(1000 + id)))
			for {
				select {
				case <-stormCtx.Done():
					return
				case <-time.After(time.Duration(2+rng.Intn(8)) * time.Millisecond):
				}
				i := rng.Intn(soakModels)
				v := 1 + rng.Intn(soakVersions-1)
				store.set(names[i], v, soakSource(t, i, v))
				// Reload errors are the storm working as intended —
				// rejected by the breaker or failed by an injected fault.
				_ = c.Reload(stormCtx, names[i])
			}
		}(sw)
	}
	swapWG.Wait()

	// Quiet-down: faults off, final sources in place; every model must
	// converge to the final version with a clean bill of health while
	// clients keep hammering.
	inj.Stop()
	for i, name := range names {
		store.set(name, soakVersions, soakSource(t, i, soakVersions))
	}
	recovered := map[string]bool{}
	deadline := time.Now().Add(30 * time.Second)
	for len(recovered) < soakModels && time.Now().Before(deadline) {
		for i, name := range names {
			if recovered[name] {
				continue
			}
			// Nudge; breaker-open rejections resolve via cooldown and the
			// background retry loop.
			_ = c.Reload(ctx, name)
			st := statusOf(t, c, name)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/m/"+name+"/site/index.html", nil))
			if st.Ready && !st.Stale && st.Breaker == "closed" &&
				rec.Code == 200 && canonIndex[i][rec.Body.String()] == soakVersions {
				recovered[name] = true
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stopClients)
	clientWG.Wait()

	// The verdict.
	counts := inj.Counts()
	if n, msgs := viol.report(); n > 0 {
		t.Errorf("%d contract violations, first %d:", n, len(msgs))
		for _, m := range msgs {
			t.Errorf("  %s", m)
		}
	}
	if len(recovered) < soakModels {
		missing := []string{}
		for _, name := range names {
			if !recovered[name] {
				missing = append(missing, fmt.Sprintf("%s=%+v", name, statusOf(t, c, name)))
			}
		}
		t.Errorf("models never recovered after faults stopped: %v", missing)
	}
	if counts.Total() == 0 {
		t.Error("the storm injected zero faults — the soak tested nothing")
	}
	if log.count(EventBreakerOpened) == 0 {
		t.Error("scripted failure burst never opened a breaker")
	}
	t.Logf("soak: %d requests, %d swaps committed, %d stage failures, faults %v",
		requests.Load(), log.count(EventSwapCommitted), log.count(EventStageFailed), counts)

	if path := os.Getenv("GOLDWEB_SOAK_REPORT"); path != "" {
		nviol, msgs := viol.report()
		report := map[string]any{
			"fault_window":    soakDuration().String(),
			"models":          soakModels,
			"clients":         soakClients,
			"requests":        requests.Load(),
			"swaps_committed": log.count(EventSwapCommitted),
			"stage_failures":  log.count(EventStageFailed),
			"breaker_opened":  log.count(EventBreakerOpened),
			"breaker_closed":  log.count(EventBreakerClosed),
			"retries":         log.count(EventRetryScheduled),
			"injected_faults": map[string]int64{
				"fail":  counts[faultinject.Fail],
				"panic": counts[faultinject.Panic],
				"hang":  counts[faultinject.Hang],
				"torn":  counts[faultinject.Torn],
			},
			"violations":     nviol,
			"violation_msgs": msgs,
			"recovered":      len(recovered),
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(path, data, 0o644)
		}
		if err != nil {
			t.Logf("writing soak report: %v", err)
		}
	}
}
