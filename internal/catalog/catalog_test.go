package catalog

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"goldweb/internal/core"
	"goldweb/internal/htmlgen"
	"goldweb/internal/server"
	"goldweb/internal/xmldom"
)

// modelSource builds a small valid model named name and returns its
// serialized XML, the raw material every pipeline test corrupts in its
// own way.
func modelSource(t *testing.T, name string) []byte {
	t.Helper()
	b := core.NewModel(name)
	d := b.Dimension("Region").Key("region_id", "OID").Descriptor("region_name", "String")
	d.Level("City").Key("city_id", "OID").Descriptor("city_name", "String")
	d.Rollup("City")
	f := b.Fact("Facts").Aggregates("Region")
	f.Measure("qty", "Integer")
	m, err := b.Build()
	if err != nil {
		t.Fatalf("building test model: %v", err)
	}
	return []byte(xmldom.SerializeToString(m.ToXML(), xmldom.WriteOptions{}))
}

// Corruptions hitting distinct pipeline stages.
func tornSource(src []byte) []byte {
	return src[:len(src)/2]
}

func structuralBad(src []byte) []byte {
	return bytes.Replace(src, []byte("</goldmodel>"), []byte("<bogus/></goldmodel>"), 1)
}

// keyrefBroken retargets the dimension's rollup association at a
// dimension attribute instead of a level. The value is still a valid
// ID in the document, so structural validation (IDREF) passes; only
// the levelKey keyref — the lint gate's territory — is violated.
func keyrefBroken(src []byte) []byte {
	return bytes.Replace(src, []byte(`child="l1"`), []byte(`child="da1"`), 1)
}

// eventLog collects catalog events concurrently.
type eventLog struct {
	mu  sync.Mutex
	evs []Event
}

func (l *eventLog) add(ev Event) {
	l.mu.Lock()
	l.evs = append(l.evs, ev)
	l.mu.Unlock()
}

func (l *eventLog) count(t EventType) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.evs {
		if ev.Type == t {
			n++
		}
	}
	return n
}

func statusOf(t *testing.T, c *Catalog, name string) ModelStatus {
	t.Helper()
	for _, st := range c.Status() {
		if st.Name == name {
			return st
		}
	}
	t.Fatalf("model %q not in status", name)
	return ModelStatus{}
}

func TestSetCommitsAndServes(t *testing.T) {
	c := New(Options{DisableRetry: true})
	defer c.Close()
	if err := c.Set(context.Background(), "sales", modelSource(t, "Sales DW")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	st := statusOf(t, c, "sales")
	if !st.Ready || st.Generation != 1 || st.Stale || st.Breaker != "closed" {
		t.Fatalf("status after first commit = %+v", st)
	}

	h := c.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/m/sales/site/index.html", nil))
	if rec.Code != 200 {
		t.Fatalf("GET model index: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(server.GenerationHeader); got != "1" {
		t.Fatalf("generation header = %q, want 1", got)
	}
	if rec.Header().Get(server.StaleHeader) != "" {
		t.Fatal("fresh content carries a stale header")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"ready": true`) {
		t.Fatalf("readyz = %d %s", rec.Code, rec.Body.String())
	}
}

func TestStageFailuresRollBackToLastGood(t *testing.T) {
	good := modelSource(t, "Sales DW")
	cases := []struct {
		name  string
		bad   []byte
		stage string
	}{
		{"torn input fails parse", tornSource(good), "parse"},
		{"unknown element fails structural validation", structuralBad(good), "validate"},
		{"broken keyref fails the lint gate", keyrefBroken(good), "lint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			log := &eventLog{}
			c := New(Options{DisableRetry: true, OnEvent: log.add})
			defer c.Close()
			ctx := context.Background()
			if err := c.Set(ctx, "m", good); err != nil {
				t.Fatalf("good Set: %v", err)
			}
			h := c.Handler()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/m/m/site/index.html", nil))
			before := rec.Body.String()

			err := c.Set(ctx, "m", tc.bad)
			if err == nil {
				t.Fatal("corrupt Set succeeded")
			}
			if !strings.HasPrefix(err.Error(), tc.stage+":") {
				t.Fatalf("error %q does not name stage %q", err, tc.stage)
			}

			// Rollback: the last-good site keeps serving, same bytes, same
			// generation, now marked stale.
			st := statusOf(t, c, "m")
			if !st.Ready || st.Generation != 1 || !st.Stale {
				t.Fatalf("status after rollback = %+v", st)
			}
			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/m/m/site/index.html", nil))
			if rec.Code != 200 || rec.Body.String() != before {
				t.Fatalf("rolled-back model serves different content (code %d)", rec.Code)
			}
			if rec.Header().Get(server.StaleHeader) == "" || rec.Header().Get("Warning") == "" {
				t.Fatal("stale snapshot served without Warning/X-Goldweb-Stale headers")
			}
			if got := rec.Header().Get(server.GenerationHeader); got != "1" {
				t.Fatalf("generation after rollback = %q, want 1", got)
			}

			// Recovery: a good republish bumps the generation and clears
			// the stale marking.
			if err := c.Set(ctx, "m", good); err != nil {
				t.Fatalf("recovery Set: %v", err)
			}
			st = statusOf(t, c, "m")
			if !st.Ready || st.Generation != 2 || st.Stale {
				t.Fatalf("status after recovery = %+v", st)
			}
			if log.count(EventStageFailed) != 1 || log.count(EventSwapCommitted) != 2 {
				t.Fatalf("events: %d failures, %d commits", log.count(EventStageFailed), log.count(EventSwapCommitted))
			}
		})
	}
}

func TestLintPolicies(t *testing.T) {
	good := modelSource(t, "Sales DW")
	bad := keyrefBroken(good)
	ctx := context.Background()

	// Strict (default): the gate itself rejects.
	c := New(Options{DisableRetry: true})
	err := c.Set(ctx, "m", bad)
	c.Close()
	if err == nil || !strings.HasPrefix(err.Error(), "lint:") {
		t.Fatalf("strict: err = %v, want lint-stage failure", err)
	}

	// Warn: findings are surfaced as an event but don't gate; the shadow
	// publish's full validation is the backstop that still rejects.
	log := &eventLog{}
	c = New(Options{DisableRetry: true, Lint: LintWarn, OnEvent: log.add})
	err = c.Set(ctx, "m", bad)
	c.Close()
	if err == nil || !strings.HasPrefix(err.Error(), "publish:") {
		t.Fatalf("warn: err = %v, want publish-stage failure", err)
	}
	if log.count(EventLintFindings) != 1 {
		t.Fatalf("warn: %d lint-findings events, want 1", log.count(EventLintFindings))
	}

	// Off: no gate, no findings event; the backstop still holds.
	log = &eventLog{}
	c = New(Options{DisableRetry: true, Lint: LintOff, OnEvent: log.add})
	err = c.Set(ctx, "m", bad)
	c.Close()
	if err == nil || !strings.HasPrefix(err.Error(), "publish:") {
		t.Fatalf("off: err = %v, want publish-stage failure", err)
	}
	if log.count(EventLintFindings) != 0 {
		t.Fatal("off: lint event emitted with the stage disabled")
	}
}

func TestBreakerGatesPublishAndRecovers(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	var fail atomic.Bool
	fail.Store(true)
	publish := func(ctx context.Context, m *core.Model, opts htmlgen.Options) (*htmlgen.Site, error) {
		if fail.Load() {
			return nil, errors.New("pipeline down")
		}
		return htmlgen.PublishContext(ctx, m, opts)
	}
	log := &eventLog{}
	c := New(Options{
		DisableRetry:     true,
		Publish:          publish,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
		Now:              clk.now,
		OnEvent:          log.add,
	})
	defer c.Close()
	ctx := context.Background()
	src := modelSource(t, "Sales DW")

	for i := 0; i < 3; i++ {
		if err := c.Set(ctx, "m", src); err == nil {
			t.Fatalf("Set %d succeeded with a failing pipeline", i)
		}
	}
	st := statusOf(t, c, "m")
	if st.Breaker != "open" || st.Failures != 3 {
		t.Fatalf("status after threshold = %+v", st)
	}
	if log.count(EventBreakerOpened) != 1 {
		t.Fatalf("breaker-opened events = %d, want 1", log.count(EventBreakerOpened))
	}

	// While open, attempts are rejected without reaching the pipeline.
	if err := c.Set(ctx, "m", src); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-circuit Set err = %v, want ErrBreakerOpen", err)
	}

	// A failed half-open probe re-opens for a fresh cooldown.
	clk.advance(2 * time.Hour)
	if err := c.Set(ctx, "m", src); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("half-open probe err = %v, want a pipeline failure", err)
	}
	if err := c.Set(ctx, "m", src); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Set after failed probe err = %v, want ErrBreakerOpen", err)
	}

	// A successful probe closes the circuit and publishes.
	clk.advance(2 * time.Hour)
	fail.Store(false)
	if err := c.Set(ctx, "m", src); err != nil {
		t.Fatalf("recovery Set: %v", err)
	}
	st = statusOf(t, c, "m")
	if st.Breaker != "closed" || !st.Ready || st.Stale || st.Generation != 1 {
		t.Fatalf("status after recovery = %+v", st)
	}
	if log.count(EventBreakerClosed) != 1 {
		t.Fatalf("breaker-closed events = %d, want 1", log.count(EventBreakerClosed))
	}
}

func TestReloaderRecoversAfterTransientLoadFailures(t *testing.T) {
	good := modelSource(t, "Sales DW")
	var calls atomic.Int32
	loader := func(ctx context.Context, name string) ([]byte, error) {
		if n := calls.Add(1); n <= 3 {
			return nil, fmt.Errorf("transient io error %d", n)
		}
		return good, nil
	}
	log := &eventLog{}
	c := New(Options{
		Loader:           loader,
		RetryBase:        2 * time.Millisecond,
		RetryMax:         10 * time.Millisecond,
		BreakerThreshold: 100, // keep the circuit out of this test's way
		Seed:             1,
		OnEvent:          log.add,
	})
	defer c.Close()

	if err := c.Add(context.Background(), "m"); err == nil {
		t.Fatal("first Add succeeded despite the failing loader")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := statusOf(t, c, "m"); st.Ready && !st.Stale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("model never recovered; status %+v, loader calls %d", statusOf(t, c, "m"), calls.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := calls.Load(); n < 4 {
		t.Fatalf("loader called %d times, want >= 4", n)
	}
	if log.count(EventRetryScheduled) < 3 {
		t.Fatalf("retry-scheduled events = %d, want >= 3", log.count(EventRetryScheduled))
	}
	if st := statusOf(t, c, "m"); st.Generation != 1 {
		t.Fatalf("recovered generation = %d, want 1", st.Generation)
	}
}

func TestBackoffIsDeterministicPerSeedAndCapped(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		c := New(Options{Seed: seed, RetryBase: 10 * time.Millisecond, RetryMax: 80 * time.Millisecond, DisableRetry: true})
		defer c.Close()
		var out []time.Duration
		for a := 1; a <= 8; a++ {
			out = append(out, c.backoff(a))
		}
		return out
	}
	a, b := delays(7), delays(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	for i, d := range a {
		if d > 80*time.Millisecond {
			t.Fatalf("attempt %d backoff %v exceeds the cap", i+1, d)
		}
		if d < 5*time.Millisecond {
			t.Fatalf("attempt %d backoff %v below half the base", i+1, d)
		}
	}
}

func TestHandlerRoutingAndErrors(t *testing.T) {
	c := New(Options{DisableRetry: true})
	defer c.Close()
	if err := c.Set(context.Background(), "sales", modelSource(t, "Sales DW")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	h := c.Handler()

	// Bare model path redirects inside the /m/{name} namespace.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/m/sales", nil))
	if rec.Code != http.StatusFound || rec.Header().Get("Location") != "/m/sales/site/index.html" {
		t.Fatalf("bare model path: %d -> %q", rec.Code, rec.Header().Get("Location"))
	}

	// Unknown model: 404, JSON when asked for.
	req := httptest.NewRequest("GET", "/m/nope/site/index.html", nil)
	req.Header.Set("Accept", "application/json")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 404 || !strings.Contains(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("unknown model: %d, Content-Type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	if !strings.Contains(rec.Body.String(), `"status":404`) {
		t.Fatalf("unknown model JSON body: %s", rec.Body.String())
	}

	// The catalog is read-only, like the single-model server.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/m/sales/site/index.html", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST = %d, want 405", rec.Code)
	}

	// Root redirects to the index document.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusFound || rec.Header().Get("Location") != "/catalog" {
		t.Fatalf("root: %d -> %q", rec.Code, rec.Header().Get("Location"))
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/catalog", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"/m/sales/site/index.html"`) {
		t.Fatalf("catalog index: %d %s", rec.Code, rec.Body.String())
	}
}

func TestReadyzReportsPerModelHealth(t *testing.T) {
	c := New(Options{DisableRetry: true})
	defer c.Close()
	ctx := context.Background()
	if err := c.Set(ctx, "good", modelSource(t, "Sales DW")); err != nil {
		t.Fatalf("Set good: %v", err)
	}
	if err := c.Set(ctx, "broken", []byte("<not-xml")); err == nil {
		t.Fatal("broken Set succeeded")
	}
	h := c.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with a never-loaded model = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("not-ready readyz lacks Retry-After")
	}
	body := rec.Body.String()
	for _, want := range []string{`"name": "broken"`, `"ready": false`, `"name": "good"`, `"last_error"`, `"breaker"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("readyz body missing %q:\n%s", want, body)
		}
	}

	// The never-loaded model's endpoints answer 503, not a torn page.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/m/broken/site/index.html", nil))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("never-loaded model page = %d, want 503 + Retry-After", rec.Code)
	}
}

func TestDirLoaderAndRemove(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/sales.xml", modelSource(t, "Sales DW"))
	writeFile(t, dir+"/stores.xml", modelSource(t, "Stores DW"))
	names, err := DirModels(dir)
	if err != nil {
		t.Fatalf("DirModels: %v", err)
	}
	if len(names) != 2 || names[0] != "sales" || names[1] != "stores" {
		t.Fatalf("DirModels = %v", names)
	}
	c := New(Options{Loader: DirLoader(dir), DisableRetry: true})
	defer c.Close()
	ctx := context.Background()
	for _, name := range names {
		if err := c.Add(ctx, name); err != nil {
			t.Fatalf("Add %s: %v", name, err)
		}
	}
	if !c.Ready() {
		t.Fatal("catalog not ready after loading both models")
	}
	if err := c.Remove("stores"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if got := c.Names(); len(got) != 1 || got[0] != "sales" {
		t.Fatalf("Names after Remove = %v", got)
	}
	if err := c.Remove("stores"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("double Remove err = %v, want ErrUnknownModel", err)
	}
}

func TestPanickingPipelineRollsBack(t *testing.T) {
	var boom atomic.Bool
	publish := func(ctx context.Context, m *core.Model, opts htmlgen.Options) (*htmlgen.Site, error) {
		if boom.Load() {
			panic(errors.New("pipeline exploded"))
		}
		return htmlgen.PublishContext(ctx, m, opts)
	}
	c := New(Options{DisableRetry: true, Publish: publish})
	defer c.Close()
	ctx := context.Background()
	src := modelSource(t, "Sales DW")
	if err := c.Set(ctx, "m", src); err != nil {
		t.Fatalf("good Set: %v", err)
	}
	boom.Store(true)
	err := c.Set(ctx, "m", src)
	if err == nil || !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "pipeline exploded") {
		t.Fatalf("panicking publish err = %v", err)
	}
	st := statusOf(t, c, "m")
	if !st.Ready || !st.Stale || st.Generation != 1 {
		t.Fatalf("status after panic rollback = %+v", st)
	}
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
}
