package cwm

import (
	"strings"
	"testing"

	"goldweb/internal/core"
	"goldweb/internal/xmldom"
)

func TestExportStructure(t *testing.T) {
	m := core.SampleSales()
	out := ExportString(m)
	for _, want := range []string{
		`<XMI xmi.version="1.1"`,
		`xmlns:CWMOLAP="org.omg.CWM.OLAP"`,
		`<XMI.exporter>goldweb</XMI.exporter>`,
		`<CWMOLAP:Schema xmi.id="m1" name="Sales DW">`,
		`<CWMOLAP:Cube xmi.id="f1" name="Sales"`,
		`<CWMOLAP:Dimension xmi.id="d1" name="Time" isTime="true"`,
		`<CWMOLAP:Level`,
		`<CWMOLAP:Measure`,
		`<CWMOLAP:LevelBasedHierarchy`,
		`<CWMOLAP:HierarchyLevelAssociation`,
		`<CWMOLAP:CubeDimensionAssociation`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}
	// The export is well-formed XML.
	if _, err := xmldom.ParseString(out); err != nil {
		t.Fatalf("export not well-formed: %v", err)
	}
}

func TestExportCarriesExtensionsAsTaggedValues(t *testing.T) {
	out := ExportString(core.SampleSales())
	for _, want := range []string{
		// degenerate dimensions
		`tag="degenerateDimension" value="true"`,
		// derived measure rule
		`tag="derivationRule" value="qty * price"`,
		// additivity rules keyed by dimension id
		`tag="additivity.d1" value="MAX MIN AVG"`,
		`tag="additivity.d1" value="NONE"`,
		// {OID}/{D} markings
		`tag="uniqueKey" value="true"`,
		`tag="descriptor" value="true"`,
		// completeness on hierarchy associations
		`tag="complete" value="true"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tagged value missing: %q", want)
		}
	}
}

func TestExportHospitalFlags(t *testing.T) {
	out := ExportString(core.SampleHospital())
	if !strings.Contains(out, `tag="manyToMany" value="true"`) {
		t.Error("many-to-many association not tagged")
	}
	if !strings.Contains(out, `tag="nonStrict" value="true"`) {
		t.Error("non-strict hierarchy not tagged")
	}
}

func TestInterchangeRoundTrip(t *testing.T) {
	for _, m := range []*core.Model{core.SampleSales(), core.SampleHospital()} {
		inv, err := ReadString(ExportString(m))
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if inv.SchemaName != m.Name {
			t.Errorf("schema name %q", inv.SchemaName)
		}
		if len(inv.Cubes) != len(m.Facts) {
			t.Errorf("%s: cubes %d want %d", m.Name, len(inv.Cubes), len(m.Facts))
		}
		if len(inv.Dimensions) != len(m.Dims) {
			t.Errorf("%s: dims %d want %d", m.Name, len(inv.Dimensions), len(m.Dims))
		}
		wantLevels := 0
		for _, d := range m.Dims {
			wantLevels += len(d.Levels) + len(d.CatLevels)
		}
		if inv.Levels != wantLevels {
			t.Errorf("%s: levels %d want %d", m.Name, inv.Levels, wantLevels)
		}
		wantMeasures := 0
		for _, f := range m.Facts {
			wantMeasures += len(f.Atts)
		}
		if inv.Measures != wantMeasures {
			t.Errorf("%s: measures %d want %d", m.Name, inv.Measures, wantMeasures)
		}
		if inv.Tagged == 0 {
			t.Errorf("%s: no tagged values survived", m.Name)
		}
	}
}

func TestHierarchyOrderFollowsDAG(t *testing.T) {
	m := core.SampleSales()
	doc := Export(m)
	// Time hierarchy: roots (Month, Week) get lower ordinals than Year.
	var assocs []*xmldom.Node
	for _, e := range doc.DescendantElements("HierarchyLevelAssociation") {
		if strings.HasPrefix(e.AttrValue("xmi.id"), m.DimByName("Time").ID+"-") {
			assocs = append(assocs, e)
		}
	}
	if len(assocs) != 3 {
		t.Fatalf("time hierarchy associations = %d", len(assocs))
	}
	timeDim := m.DimByName("Time")
	year := timeDim.LevelByName("Year")
	yearOrdinal := -1
	maxRoot := -1
	for _, a := range assocs {
		ord := a.AttrValue("ordinal")
		if a.AttrValue("currentLevel") == year.ID {
			yearOrdinal = atoi(ord)
		} else if atoi(ord) > maxRoot {
			maxRoot = atoi(ord)
		}
	}
	if yearOrdinal <= maxRoot {
		t.Errorf("Year ordinal %d not after roots (%d)", yearOrdinal, maxRoot)
	}
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}

func TestReadRejectsNonXMI(t *testing.T) {
	if _, err := ReadString("<notxmi/>"); err == nil {
		t.Error("non-XMI accepted")
	}
	if _, err := ReadString(`<XMI><XMI.content/></XMI>`); err == nil {
		t.Error("schemaless XMI accepted")
	}
	if _, err := ReadString("not xml at all"); err == nil {
		t.Error("malformed input accepted")
	}
}
