// Package cwm implements the first future-work line of the paper's §6:
// using the OMG Common Warehouse Metamodel "as a common framework to
// easily interchange warehouse metadata between distributed heterogenous
// environments". It exports a conceptual model as a CWM OLAP XMI
// document (the CWM 1.0 OLAP package: Schema, Cube, CubeDimension-
// Association, Dimension, Hierarchy, Level, Measure) and reads such
// documents back into a structural inventory.
//
// As the paper notes, CWM "lacks the complete set of information an
// existing tool would need to fully operate": additivity rules, derived
// measures, {OID}/{D} markings and completeness constraints have no CWM
// OLAP counterpart. The export therefore carries them in CWM TaggedValue
// extensions (the mechanism CWM itself prescribes for tool-specific
// definitions), which is exactly the extension the paper proposes as its
// "another future research line".
package cwm

import (
	"fmt"
	"strconv"

	"goldweb/internal/core"
	"goldweb/internal/xmldom"
)

// Namespaces of the XMI rendering.
const (
	NSCWM     = "org.omg.CWM"
	NSCWMOLAP = "org.omg.CWM.OLAP"
)

// Export renders the model as a CWM OLAP XMI document.
func Export(m *core.Model) *xmldom.Node {
	doc := xmldom.NewDocument()
	xmi := doc.AddElement("XMI")
	xmi.SetAttr("xmi.version", "1.1")
	xmi.SetAttrNS("xmlns", xmldom.XMLNSNamespace, "CWM", NSCWM)
	xmi.SetAttrNS("xmlns", xmldom.XMLNSNamespace, "CWMOLAP", NSCWMOLAP)

	header := xmi.AddElement("XMI.header")
	docum := header.AddElement("XMI.documentation")
	docum.AddElement("XMI.exporter").AddText("goldweb")
	docum.AddElement("XMI.exporterVersion").AddText("1.0")
	if !m.LastModified.IsZero() {
		header.AddElement("XMI.timestamp").AddText(m.LastModified.Format("2006-01-02"))
	}

	content := xmi.AddElement("XMI.content")
	schema := mkOLAP(content, "Schema", m.ID, m.Name)
	if m.Description != "" {
		tag(schema, "description", m.Description)
	}

	for _, d := range m.Dims {
		dim := mkOLAP(schema, "Dimension", d.ID, d.Name)
		dim.SetAttr("isTime", strconv.FormatBool(d.IsTime))
		dim.SetAttr("isMeasure", "false")
		for _, a := range d.Atts {
			attr := mkCWM(dim, "Attribute", a.ID, a.Name)
			attr.SetAttr("type", a.Type)
			markAtt(attr, a)
		}
		// One Hierarchy per root association path entry; the level set is
		// shared (CWM separates Level from LevelBasedHierarchy).
		for _, l := range d.Levels {
			lvl := mkOLAP(dim, "Level", l.ID, l.Name)
			for _, a := range l.Atts {
				attr := mkCWM(lvl, "Attribute", a.ID, a.Name)
				attr.SetAttr("type", a.Type)
				markAtt(attr, a)
			}
		}
		if len(d.Associations) > 0 {
			hier := mkOLAP(dim, "LevelBasedHierarchy", d.ID+"-h", d.Name+" hierarchy")
			order := 0
			emitPath(hier, d, d.Associations, &order, map[string]bool{})
		}
		for _, cl := range d.CatLevels {
			cat := mkOLAP(dim, "Level", cl.ID, cl.Name)
			tag(cat, "categorization", "true")
		}
	}

	for _, f := range m.Facts {
		cube := mkOLAP(schema, "Cube", f.ID, f.Name)
		cube.SetAttr("isVirtual", "false")
		for _, a := range f.Atts {
			meas := mkOLAP(cube, "Measure", a.ID, a.Name)
			meas.SetAttr("type", a.Type)
			if a.IsOID {
				tag(meas, "degenerateDimension", "true")
			}
			if a.IsDerived {
				tag(meas, "derivationRule", a.DerivationRule)
			}
			for _, r := range a.Additivity {
				ops := ""
				if r.IsNot {
					ops = "NONE"
				} else {
					for _, op := range []struct {
						flag bool
						name string
					}{{r.IsSUM, "SUM"}, {r.IsMAX, "MAX"}, {r.IsMIN, "MIN"}, {r.IsAVG, "AVG"}, {r.IsCOUNT, "COUNT"}} {
						if op.flag {
							if ops != "" {
								ops += " "
							}
							ops += op.name
						}
					}
				}
				tag(meas, "additivity."+r.DimClass, ops)
			}
		}
		for _, agg := range f.SharedAggs {
			assoc := mkOLAP(cube, "CubeDimensionAssociation", f.ID+"-"+agg.DimClass, "")
			assoc.RemoveAttr("name")
			assoc.SetAttr("cube", f.ID)
			assoc.SetAttr("dimension", agg.DimClass)
			if agg.ManyToMany() {
				tag(assoc, "manyToMany", "true")
			}
		}
	}

	for _, c := range m.Cubes {
		cc := mkOLAP(schema, "CubeRegion", c.ID, c.Name)
		cc.SetAttr("isReadOnly", "true")
		cc.SetAttr("cube", c.Fact)
		for _, mid := range c.Measures {
			tag(cc, "measure", mid)
		}
		for _, s := range c.Slices {
			tag(cc, "slice", s.Att+" "+string(s.Operator)+" "+s.Value)
		}
		for _, dd := range c.Dices {
			v := dd.DimClass
			if dd.Level != "" {
				v += "/" + dd.Level
			}
			tag(cc, "dice", v)
		}
	}
	return doc
}

// ExportString is Export serialized with an XML declaration.
func ExportString(m *core.Model) string {
	return xmldom.SerializeToString(Export(m), xmldom.WriteOptions{})
}

func mkOLAP(parent *xmldom.Node, kind, id, name string) *xmldom.Node {
	e := &xmldom.Node{Type: xmldom.ElementNode, Prefix: "CWMOLAP", Name: kind, URI: NSCWMOLAP}
	parent.AppendChild(e)
	e.SetAttr("xmi.id", id)
	e.SetAttr("name", name)
	return e
}

func mkCWM(parent *xmldom.Node, kind, id, name string) *xmldom.Node {
	e := &xmldom.Node{Type: xmldom.ElementNode, Prefix: "CWM", Name: kind, URI: NSCWM}
	parent.AppendChild(e)
	e.SetAttr("xmi.id", id)
	e.SetAttr("name", name)
	return e
}

// tag attaches a CWM TaggedValue extension.
func tag(parent *xmldom.Node, tagName, value string) {
	e := &xmldom.Node{Type: xmldom.ElementNode, Prefix: "CWM", Name: "TaggedValue", URI: NSCWM}
	parent.AppendChild(e)
	e.SetAttr("tag", tagName)
	e.SetAttr("value", value)
}

func markAtt(attr *xmldom.Node, a *core.DimAtt) {
	if a.IsOID {
		tag(attr, "uniqueKey", "true")
	}
	if a.IsD {
		tag(attr, "descriptor", "true")
	}
}

// emitPath writes HierarchyLevelAssociations for every level reachable
// from the given edges, in BFS order (CWM orders levels within a
// hierarchy; alternative paths surface as additional associations).
func emitPath(hier *xmldom.Node, d *core.DimClass, edges []*core.Association, order *int, seen map[string]bool) {
	var next []*core.Association
	for _, e := range edges {
		if seen[e.Child] {
			continue
		}
		seen[e.Child] = true
		assoc := &xmldom.Node{Type: xmldom.ElementNode, Prefix: "CWMOLAP",
			Name: "HierarchyLevelAssociation", URI: NSCWMOLAP}
		hier.AppendChild(assoc)
		assoc.SetAttr("xmi.id", fmt.Sprintf("%s-hla%d", d.ID, *order))
		assoc.SetAttr("currentLevel", e.Child)
		assoc.SetAttr("ordinal", strconv.Itoa(*order))
		if e.NonStrict() {
			tag(assoc, "nonStrict", "true")
		}
		if e.Completeness {
			tag(assoc, "complete", "true")
		}
		*order++
		if l := d.Level(e.Child); l != nil {
			next = append(next, l.Associations...)
		}
	}
	if len(next) > 0 {
		emitPath(hier, d, next, order, seen)
	}
}

// Inventory summarizes a CWM OLAP document structurally.
type Inventory struct {
	SchemaName string
	Cubes      []string
	Dimensions []string
	Levels     int
	Measures   int
	Hierarchy  int // HierarchyLevelAssociation count
	Tagged     int // TaggedValue extension count
}

// Read parses a CWM OLAP XMI document produced by Export (or a compatible
// tool) into a structural inventory — the interchange consumer side.
func Read(doc *xmldom.Node) (*Inventory, error) {
	root := doc.DocumentElement()
	if root == nil || root.Name != "XMI" {
		return nil, fmt.Errorf("cwm: not an XMI document")
	}
	inv := &Inventory{}
	for _, e := range root.DescendantElements("") {
		if e.URI != NSCWMOLAP && e.URI != NSCWM {
			continue
		}
		switch e.Name {
		case "Schema":
			inv.SchemaName = e.AttrValue("name")
		case "Cube":
			inv.Cubes = append(inv.Cubes, e.AttrValue("name"))
		case "Dimension":
			inv.Dimensions = append(inv.Dimensions, e.AttrValue("name"))
		case "Level":
			inv.Levels++
		case "Measure":
			inv.Measures++
		case "HierarchyLevelAssociation":
			inv.Hierarchy++
		case "TaggedValue":
			inv.Tagged++
		}
	}
	if inv.SchemaName == "" {
		return nil, fmt.Errorf("cwm: document contains no CWMOLAP:Schema")
	}
	return inv, nil
}

// ReadString is Read over XML text.
func ReadString(src string) (*Inventory, error) {
	doc, err := xmldom.ParseString(src)
	if err != nil {
		return nil, err
	}
	return Read(doc)
}
