package dtd

import (
	"strings"
	"testing"

	"goldweb/internal/core"
	"goldweb/internal/xsd"
)

func TestParseGoldmodelDTD(t *testing.T) {
	d, err := Parse(core.SchemaDTD)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"goldmodel", "factclass", "dimclass",
		"asoclevel", "sharedagg", "additivity", "cubeclass", "slice"} {
		if d.Elements[name] == nil {
			t.Errorf("element %s not declared", name)
		}
	}
	if got := len(d.Attlists["goldmodel"]); got != 8 {
		t.Errorf("goldmodel attlist = %d", got)
	}
	agg := d.Elements["sharedagg"]
	if agg.Kind != ContentEmpty {
		t.Errorf("sharedagg kind = %v", agg.Kind)
	}
	gm := d.Elements["goldmodel"]
	if gm.Kind != ContentChildren || len(gm.Content.Children) != 3 {
		t.Errorf("goldmodel content: %+v", gm.Content)
	}
}

func TestDTDAcceptsSampleDocuments(t *testing.T) {
	d := MustParse(core.SchemaDTD)
	for _, m := range []interface{ XMLString() string }{core.SampleSales(), core.SampleHospital()} {
		if errs := d.ValidateString(m.XMLString()); len(errs) != 0 {
			t.Errorf("%v", errs)
		}
	}
}

func TestDTDStructuralRejections(t *testing.T) {
	d := MustParse(core.SchemaDTD)
	base := core.SampleSales().XMLString()
	cases := []struct{ name, from, to string }{
		{"missing required id", ` id="m1"`, ``},
		{"undeclared element", `<factclasses>`, `<factclasses><rogue/>`},
		{"undeclared attribute", `<goldmodel id="m1"`, `<goldmodel hax="1" id="m1"`},
		{"bad enum multiplicity", `rolea="M"`, `rolea="many"`},
		{"dangling IDREF", `dimclass="d1"`, `dimclass="zz"`},
		{"wrong order", `<factclasses>`, `<cubeclasses/><factclasses>`},
	}
	for _, tc := range cases {
		doc := strings.Replace(base, tc.from, tc.to, 1)
		if doc == base {
			t.Fatalf("%s: mutation did not apply", tc.name)
		}
		if errs := d.ValidateString(doc); len(errs) == 0 {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestDTDVsSchemaAblation is the executable form of §3.1: the DTD (the
// paper's previous proposal) accepts two classes of documents the XML
// Schema rejects — wrong data types (DTDs have no date/boolean/decimal)
// and semantically wrong references (IDREF is not selective).
func TestDTDVsSchemaAblation(t *testing.T) {
	d := MustParse(core.SchemaDTD)
	s := core.MustSchema()
	base := core.SampleSales().XMLString()

	t.Run("data types", func(t *testing.T) {
		doc := strings.Replace(base, `creationdate="2002-03-24"`, `creationdate="not a date"`, 1)
		if errs := d.ValidateString(doc); len(errs) != 0 {
			t.Errorf("DTD should accept (CDATA): %v", errs)
		}
		if errs := s.ValidateString(doc, xsd.ValidateOptions{}); len(errs) == 0 {
			t.Error("Schema should reject the bad date")
		}
	})
	t.Run("selective references", func(t *testing.T) {
		// Point @dimclass at a fact class id: any ID satisfies IDREF, but
		// the schema's keyref pins it to dimension classes.
		doc := strings.Replace(base, `<additivity dimclass="d1"`, `<additivity dimclass="f1"`, 1)
		if errs := d.ValidateString(doc); len(errs) != 0 {
			t.Errorf("DTD should accept (IDREF is not selective): %v", errs)
		}
		if errs := s.ValidateString(doc, xsd.ValidateOptions{}); len(errs) == 0 {
			t.Error("Schema should reject the cross-kind reference")
		}
	})
}

func TestContentModels(t *testing.T) {
	d := MustParse(`
		<!ELEMENT r ((a, b?)+, c*)>
		<!ELEMENT a EMPTY>
		<!ELEMENT b EMPTY>
		<!ELEMENT c EMPTY>
	`)
	ok := []string{
		"<r><a/></r>",
		"<r><a/><b/></r>",
		"<r><a/><b/><a/><c/><c/></r>",
		"<r><a/><a/><a/></r>",
	}
	for _, doc := range ok {
		if errs := d.ValidateString(doc); len(errs) != 0 {
			t.Errorf("%s: %v", doc, errs)
		}
	}
	bad := []string{
		"<r/>",
		"<r><b/></r>",
		"<r><c/><a/></r>",
		"<r><a/><b/><b/></r>",
	}
	for _, doc := range bad {
		if errs := d.ValidateString(doc); len(errs) == 0 {
			t.Errorf("%s accepted", doc)
		}
	}
}

func TestMixedContent(t *testing.T) {
	d := MustParse(`
		<!ELEMENT p (#PCDATA | b | i)*>
		<!ELEMENT b EMPTY>
		<!ELEMENT i EMPTY>
		<!ELEMENT x EMPTY>
	`)
	if errs := d.ValidateString("<p>text <b/> more <i/></p>"); len(errs) != 0 {
		t.Errorf("mixed: %v", errs)
	}
	if errs := d.ValidateString("<p><x/></p>"); len(errs) == 0 {
		t.Error("foreign element in mixed content accepted")
	}
}

func TestEmptyAndAny(t *testing.T) {
	d := MustParse(`
		<!ELEMENT e EMPTY>
		<!ELEMENT any ANY>
		<!ELEMENT r (e, any)>
	`)
	if errs := d.ValidateString("<r><e/><any><e/>text</any></r>"); len(errs) != 0 {
		t.Errorf("any: %v", errs)
	}
	if errs := d.ValidateString("<r><e>text</e><any/></r>"); len(errs) == 0 {
		t.Error("EMPTY with text accepted")
	}
}

func TestAttributeChecks(t *testing.T) {
	d := MustParse(`
		<!ELEMENT e EMPTY>
		<!ATTLIST e
			id ID #REQUIRED
			kind (x|y) "x"
			tag NMTOKEN #IMPLIED
			lock CDATA #FIXED "on">
		<!ELEMENT r (e+)>
		<!ATTLIST r ref IDREF #IMPLIED refs IDREFS #IMPLIED>
	`)
	if errs := d.ValidateString(`<r><e id="a" kind="y" tag="t1" lock="on"/></r>`); len(errs) != 0 {
		t.Errorf("valid: %v", errs)
	}
	for _, tc := range []struct{ name, doc string }{
		{"missing required", `<r><e/></r>`},
		{"bad enum", `<r><e id="a" kind="z"/></r>`},
		{"bad nmtoken", `<r><e id="a" tag="two words"/></r>`},
		{"fixed mismatch", `<r><e id="a" lock="off"/></r>`},
		{"duplicate id", `<r><e id="a"/><e id="a"/></r>`},
		{"dangling ref", `<r ref="nope"><e id="a"/></r>`},
		{"dangling in refs list", `<r refs="a nope"><e id="a"/></r>`},
	} {
		if errs := d.ValidateString(tc.doc); len(errs) == 0 {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<!ELEMENT>`,
		`<!ELEMENT r (a`,
		`<!ELEMENT r (a,b|c)>`, // mixed separators
		`<!ATTLIST e a BOGUS #IMPLIED>`,
		`<!ELEMENT r EMPTY> <!ELEMENT r EMPTY>`,
		`<!ENTITY x "y">`,
		`random garbage`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
	// Comments are fine anywhere.
	if _, err := Parse("<!-- c --> <!ELEMENT e EMPTY> <!-- d -->"); err != nil {
		t.Errorf("comments: %v", err)
	}
}
