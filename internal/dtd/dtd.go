// Package dtd implements a Document Type Definition validator — the
// paper's *previous* proposal ([16], "From Object-Oriented Conceptual
// Multidimensional Modeling into XML") which §3.1 declares superseded:
// "we notably improve our previous proposal by defining an XML Schema
// instead of the DTD", because DTDs have "limited data type capability"
// and their "references are not selective and can be applied to any
// element, although not being semantically correct".
//
// Having the DTD side executable makes that comparison a running
// experiment: the goldmodel DTD (embedded as core.SchemaDTD)
// accepts documents with wrong data types and cross-kind references that
// the XML Schema rejects.
//
// Supported: ELEMENT declarations with EMPTY/ANY/mixed/children content
// models (sequence, choice, ?, *, +), ATTLIST declarations with CDATA,
// ID, IDREF, IDREFS, NMTOKEN, NMTOKENS and enumerated types, and the
// #REQUIRED/#IMPLIED/#FIXED/default specifiers, plus document-wide
// ID/IDREF integrity. Parameter entities and notations are out of scope.
package dtd

import (
	"fmt"
	"strings"

	"goldweb/internal/xmldom"
)

// DTD is a parsed document type definition.
type DTD struct {
	Elements map[string]*ElementDecl
	Attlists map[string][]*AttDef
}

// ContentKind distinguishes content specifications.
type ContentKind uint8

// Content specification kinds.
const (
	ContentEmpty ContentKind = iota + 1
	ContentAny
	ContentMixed    // (#PCDATA | a | b)*
	ContentChildren // element content model
)

// ElementDecl is one <!ELEMENT ...> declaration.
type ElementDecl struct {
	Name    string
	Kind    ContentKind
	Mixed   []string // allowed child names for mixed content
	Content *CP      // for ContentChildren
}

// Occurs is a content-particle occurrence indicator.
type Occurs uint8

// Occurrence indicators.
const (
	One  Occurs = iota
	Opt         // ?
	Star        // *
	Plus        // +
)

// CPKind distinguishes content particles.
type CPKind uint8

// Content particle kinds.
const (
	CPName CPKind = iota + 1
	CPSeq
	CPChoice
)

// CP is a content particle of an element content model.
type CP struct {
	Kind     CPKind
	Name     string
	Children []*CP
	Occurs   Occurs
}

// AttType is a DTD attribute type.
type AttType uint8

// Attribute types.
const (
	AttCDATA AttType = iota + 1
	AttID
	AttIDREF
	AttIDREFS
	AttNMTOKEN
	AttNMTOKENS
	AttEnum
)

// AttDefault is an attribute default specifier.
type AttDefault uint8

// Default specifiers.
const (
	DefImplied AttDefault = iota + 1
	DefRequired
	DefFixed
	DefValue
)

// AttDef is one attribute definition of an ATTLIST.
type AttDef struct {
	Name    string
	Type    AttType
	Enum    []string
	Default AttDefault
	Value   string // for DefFixed / DefValue
}

// ParseError reports a syntax error in the DTD text.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("dtd: offset %d: %s", e.Pos, e.Msg) }

// Parse reads a standalone DTD (external subset syntax).
func Parse(src string) (*DTD, error) {
	d := &DTD{Elements: map[string]*ElementDecl{}, Attlists: map[string][]*AttDef{}}
	p := &parser{src: src}
	for {
		p.skipSpaceAndComments()
		if p.pos >= len(p.src) {
			return d, nil
		}
		switch {
		case p.has("<!ELEMENT"):
			decl, err := p.parseElement()
			if err != nil {
				return nil, err
			}
			if _, dup := d.Elements[decl.Name]; dup {
				return nil, &ParseError{p.pos, "duplicate element declaration " + decl.Name}
			}
			d.Elements[decl.Name] = decl
		case p.has("<!ATTLIST"):
			name, defs, err := p.parseAttlist()
			if err != nil {
				return nil, err
			}
			d.Attlists[name] = append(d.Attlists[name], defs...)
		case p.has("<!ENTITY"), p.has("<!NOTATION"):
			return nil, &ParseError{p.pos, "entity and notation declarations are not supported"}
		default:
			return nil, &ParseError{p.pos, "expected a markup declaration"}
		}
	}
}

// MustParse is Parse for embedded, known-good DTDs.
func MustParse(src string) *DTD {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

type parser struct {
	src string
	pos int
}

func (p *parser) has(s string) bool {
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' ||
		p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) skipSpaceAndComments() {
	for {
		p.skipSpace()
		if p.has("<!--") {
			end := strings.Index(p.src[p.pos+4:], "-->")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += 4 + end + 3
			continue
		}
		return
	}
}

func (p *parser) name() (string, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
			c == '(' || c == ')' || c == '|' || c == ',' || c == '>' ||
			c == '?' || c == '*' || c == '+' || c == '#' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", &ParseError{p.pos, "expected a name"}
	}
	return p.src[start:p.pos], nil
}

func (p *parser) expect(s string) error {
	if !p.has(s) {
		return &ParseError{p.pos, fmt.Sprintf("expected %q", s)}
	}
	p.pos += len(s)
	return nil
}

func (p *parser) parseElement() (*ElementDecl, error) {
	p.pos += len("<!ELEMENT")
	p.skipSpace()
	name, err := p.name()
	if err != nil {
		return nil, err
	}
	decl := &ElementDecl{Name: name}
	p.skipSpace()
	switch {
	case p.has("EMPTY"):
		p.pos += len("EMPTY")
		decl.Kind = ContentEmpty
	case p.has("ANY"):
		p.pos += len("ANY")
		decl.Kind = ContentAny
	case p.has("("):
		save := p.pos
		p.pos++
		p.skipSpace()
		if p.has("#PCDATA") {
			p.pos += len("#PCDATA")
			decl.Kind = ContentMixed
			for {
				p.skipSpace()
				if p.has(")") {
					p.pos++
					if p.has("*") {
						p.pos++
					} else if len(decl.Mixed) > 0 {
						return nil, &ParseError{p.pos, "mixed content with elements requires ')*'"}
					}
					break
				}
				if err := p.expect("|"); err != nil {
					return nil, err
				}
				p.skipSpace()
				n, err := p.name()
				if err != nil {
					return nil, err
				}
				decl.Mixed = append(decl.Mixed, n)
			}
		} else {
			p.pos = save
			cp, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			decl.Kind = ContentChildren
			decl.Content = cp
		}
	default:
		return nil, &ParseError{p.pos, "expected a content specification"}
	}
	p.skipSpace()
	if err := p.expect(">"); err != nil {
		return nil, err
	}
	return decl, nil
}

// parseGroup parses '(' cp (sep cp)* ')' occurs?.
func (p *parser) parseGroup() (*CP, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var parts []*CP
	sep := byte(0)
	for {
		p.skipSpace()
		cp, err := p.parseCP()
		if err != nil {
			return nil, err
		}
		parts = append(parts, cp)
		p.skipSpace()
		if p.has(")") {
			p.pos++
			break
		}
		if p.pos >= len(p.src) {
			return nil, &ParseError{p.pos, "unterminated content group"}
		}
		c := p.src[p.pos]
		if c != '|' && c != ',' {
			return nil, &ParseError{p.pos, "expected '|', ',' or ')'"}
		}
		if sep == 0 {
			sep = c
		} else if sep != c {
			return nil, &ParseError{p.pos, "cannot mix ',' and '|' in one group"}
		}
		p.pos++
	}
	group := &CP{Kind: CPSeq, Children: parts}
	if sep == '|' {
		group.Kind = CPChoice
	}
	if len(parts) == 1 && sep == 0 {
		// A single particle in parentheses keeps group semantics for the
		// occurrence indicator.
		group.Kind = CPSeq
	}
	group.Occurs = p.occurs()
	return group, nil
}

func (p *parser) parseCP() (*CP, error) {
	if p.has("(") {
		return p.parseGroup()
	}
	n, err := p.name()
	if err != nil {
		return nil, err
	}
	return &CP{Kind: CPName, Name: n, Occurs: p.occurs()}, nil
}

func (p *parser) occurs() Occurs {
	if p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '?':
			p.pos++
			return Opt
		case '*':
			p.pos++
			return Star
		case '+':
			p.pos++
			return Plus
		}
	}
	return One
}

func (p *parser) parseAttlist() (string, []*AttDef, error) {
	p.pos += len("<!ATTLIST")
	p.skipSpace()
	elemName, err := p.name()
	if err != nil {
		return "", nil, err
	}
	var defs []*AttDef
	for {
		p.skipSpaceAndComments()
		if p.has(">") {
			p.pos++
			return elemName, defs, nil
		}
		def := &AttDef{}
		if def.Name, err = p.name(); err != nil {
			return "", nil, err
		}
		p.skipSpace()
		switch {
		case p.has("CDATA"):
			p.pos += len("CDATA")
			def.Type = AttCDATA
		case p.has("IDREFS"):
			p.pos += len("IDREFS")
			def.Type = AttIDREFS
		case p.has("IDREF"):
			p.pos += len("IDREF")
			def.Type = AttIDREF
		case p.has("ID"):
			p.pos += len("ID")
			def.Type = AttID
		case p.has("NMTOKENS"):
			p.pos += len("NMTOKENS")
			def.Type = AttNMTOKENS
		case p.has("NMTOKEN"):
			p.pos += len("NMTOKEN")
			def.Type = AttNMTOKEN
		case p.has("("):
			def.Type = AttEnum
			p.pos++
			for {
				p.skipSpace()
				v, err := p.name()
				if err != nil {
					return "", nil, err
				}
				def.Enum = append(def.Enum, v)
				p.skipSpace()
				if p.has(")") {
					p.pos++
					break
				}
				if err := p.expect("|"); err != nil {
					return "", nil, err
				}
			}
		default:
			return "", nil, &ParseError{p.pos, "unsupported attribute type"}
		}
		p.skipSpace()
		switch {
		case p.has("#REQUIRED"):
			p.pos += len("#REQUIRED")
			def.Default = DefRequired
		case p.has("#IMPLIED"):
			p.pos += len("#IMPLIED")
			def.Default = DefImplied
		case p.has("#FIXED"):
			p.pos += len("#FIXED")
			p.skipSpace()
			v, err := p.quoted()
			if err != nil {
				return "", nil, err
			}
			def.Default = DefFixed
			def.Value = v
		default:
			v, err := p.quoted()
			if err != nil {
				return "", nil, err
			}
			def.Default = DefValue
			def.Value = v
		}
		defs = append(defs, def)
	}
}

func (p *parser) quoted() (string, error) {
	if p.pos >= len(p.src) || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", &ParseError{p.pos, "expected a quoted value"}
	}
	q := p.src[p.pos]
	p.pos++
	end := strings.IndexByte(p.src[p.pos:], q)
	if end < 0 {
		return "", &ParseError{p.pos, "unterminated quoted value"}
	}
	v := p.src[p.pos : p.pos+end]
	p.pos += end + 1
	return v, nil
}

// ---- validation ----

// ValidationError is one DTD violation.
type ValidationError struct {
	Path string
	Msg  string
}

func (e ValidationError) Error() string { return e.Path + ": " + e.Msg }

// Validate checks a document against the DTD (structure, attributes, and
// ID/IDREF integrity). This is the validation a year-2002 browser could
// perform (the paper's Fig. 4 commentary: IE "brings the possibility to
// validate an XML document against a DTD, but not against an XML
// Schema").
func (d *DTD) Validate(doc *xmldom.Node) []ValidationError {
	v := &validator{d: d, ids: map[string]bool{}}
	root := doc.DocumentElement()
	if root == nil {
		return []ValidationError{{Path: "/", Msg: "no root element"}}
	}
	if _, ok := d.Elements[root.Name]; !ok {
		return []ValidationError{{Path: root.Path(), Msg: "element " + root.Name + " is not declared"}}
	}
	v.element(root)
	for _, ref := range v.idrefs {
		if !v.ids[ref.value] {
			v.errs = append(v.errs, ValidationError{Path: ref.path,
				Msg: fmt.Sprintf("IDREF %q does not match any ID", ref.value)})
		}
	}
	return v.errs
}

// ValidateString parses and validates XML text.
func (d *DTD) ValidateString(src string) []ValidationError {
	doc, err := xmldom.ParseString(src)
	if err != nil {
		return []ValidationError{{Path: "/", Msg: err.Error()}}
	}
	return d.Validate(doc)
}

type pendingRef struct {
	path, value string
}

type validator struct {
	d      *DTD
	errs   []ValidationError
	ids    map[string]bool
	idrefs []pendingRef
}

func (v *validator) errf(n *xmldom.Node, format string, args ...interface{}) {
	v.errs = append(v.errs, ValidationError{Path: n.Path(), Msg: fmt.Sprintf(format, args...)})
}

func (v *validator) element(e *xmldom.Node) {
	decl := v.d.Elements[e.Name]
	if decl == nil {
		v.errf(e, "element %s is not declared", e.Name)
		return
	}
	v.attributes(e)
	kids := e.Elements()
	switch decl.Kind {
	case ContentEmpty:
		if len(e.Children) > 0 && strings.TrimSpace(e.StringValue()) != "" || len(kids) > 0 {
			v.errf(e, "element %s is declared EMPTY", e.Name)
		}
	case ContentAny:
		// anything goes, but children still validate
	case ContentMixed:
		allowed := map[string]bool{}
		for _, n := range decl.Mixed {
			allowed[n] = true
		}
		for _, k := range kids {
			if !allowed[k.Name] {
				v.errf(k, "element %s is not allowed in mixed content of %s", k.Name, e.Name)
			}
		}
	case ContentChildren:
		for _, c := range e.Children {
			if c.Type == xmldom.TextNode && strings.TrimSpace(c.Data) != "" {
				v.errf(e, "element %s does not allow character data", e.Name)
				break
			}
		}
		m := &matcher{kids: kids}
		end := m.reach(decl.Content, map[int]bool{0: true})
		if !end[len(kids)] {
			v.errf(e, "content of %s does not match its declared model", e.Name)
		}
	}
	for _, k := range kids {
		v.element(k)
	}
}

func (v *validator) attributes(e *xmldom.Node) {
	defs := v.d.Attlists[e.Name]
	byName := map[string]*AttDef{}
	for _, def := range defs {
		byName[def.Name] = def
	}
	for _, a := range e.Attr {
		if a.URI == xmldom.XMLNSNamespace || a.URI == xmldom.XMLNamespace {
			continue
		}
		def := byName[a.Name]
		if def == nil {
			v.errf(e, "attribute %s is not declared on %s", a.Name, e.Name)
			continue
		}
		v.attValue(e, def, a.Data)
	}
	for _, def := range defs {
		if e.GetAttr(def.Name) != nil {
			continue
		}
		switch def.Default {
		case DefRequired:
			v.errf(e, "element %s is missing required attribute %s", e.Name, def.Name)
		}
	}
}

func (v *validator) attValue(e *xmldom.Node, def *AttDef, value string) {
	switch def.Type {
	case AttID:
		if v.ids[value] {
			v.errf(e, "duplicate ID %q", value)
		}
		v.ids[value] = true
	case AttIDREF:
		v.idrefs = append(v.idrefs, pendingRef{e.Path(), value})
	case AttIDREFS:
		for _, tok := range strings.Fields(value) {
			v.idrefs = append(v.idrefs, pendingRef{e.Path(), tok})
		}
	case AttEnum:
		ok := false
		for _, ev := range def.Enum {
			if value == ev {
				ok = true
				break
			}
		}
		if !ok {
			v.errf(e, "attribute %s value %q is not in (%s)", def.Name, value, strings.Join(def.Enum, "|"))
		}
	case AttNMTOKEN:
		if strings.ContainsAny(value, " \t\n\r") || value == "" {
			v.errf(e, "attribute %s value %q is not an NMTOKEN", def.Name, value)
		}
	}
	if def.Default == DefFixed && value != def.Value {
		v.errf(e, "attribute %s must have the fixed value %q", def.Name, def.Value)
	}
}

// matcher implements position-set reachability over a DTD content model,
// the same technique the xsd package uses.
type matcher struct {
	kids []*xmldom.Node
}

func (m *matcher) reach(cp *CP, starts map[int]bool) map[int]bool {
	switch cp.Occurs {
	case One:
		return m.reachOnce(cp, starts)
	case Opt:
		out := m.reachOnce(cp, starts)
		for pos := range starts {
			out[pos] = true
		}
		return out
	case Star, Plus:
		out := map[int]bool{}
		cur := starts
		if cp.Occurs == Star {
			for pos := range starts {
				out[pos] = true
			}
		}
		for i := 0; i <= len(m.kids)+1; i++ {
			next := m.reachOnce(cp, cur)
			grew := false
			for pos := range next {
				if !out[pos] {
					out[pos] = true
					grew = true
				}
			}
			if !grew || len(next) == 0 {
				break
			}
			cur = next
		}
		return out
	}
	return nil
}

func (m *matcher) reachOnce(cp *CP, starts map[int]bool) map[int]bool {
	switch cp.Kind {
	case CPName:
		out := map[int]bool{}
		for pos := range starts {
			if pos < len(m.kids) && m.kids[pos].Name == cp.Name {
				out[pos+1] = true
			}
		}
		return out
	case CPSeq:
		cur := starts
		for _, c := range cp.Children {
			cur = m.reach(c, cur)
			if len(cur) == 0 {
				return cur
			}
		}
		return cur
	case CPChoice:
		out := map[int]bool{}
		for _, c := range cp.Children {
			for pos := range m.reach(c, starts) {
				out[pos] = true
			}
		}
		return out
	}
	return nil
}
