package xslt

import (
	"strings"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// The bytecode VM: executes a lowered Program on the frame stack shared
// with the XPath expression VM. Control flow (template dispatch,
// apply-templates iteration, for-each loops, call-template) runs as VM
// loops and pc jumps on pooled CtlFrames — no per-node Go recursion —
// and every embedded expression evaluates on the same shared operand
// stack via the EvalXxxOn entry points, so one transformation performs a
// single frame-pool round trip.
//
// Cold constructs (result-tree-fragment variable bodies, with-param
// bodies, attribute sets, sort keys, xsl:number counting) delegate to
// the tree engine's helpers: they produce values, not output events, so
// sharing the implementation keeps the two engines byte-identical by
// construction exactly where divergence would be hardest to test.

// Control frame kinds on the shared xpath.Frame stack.
const (
	cfApply uint8 = iota + 1 // apply-templates node loop
	cfCall                   // call-template / apply-imports invocation
	cfFor                    // for-each loop
	cfScope                  // copy-on-write variable scope
	cfCap                    // output capture (attribute/comment/PI/message)
	cfDoc                    // xsl:document output redirect
)

// maxCtlDepth bounds the control stack so circular templates fail
// cleanly. The tree engine counts body nesting (maxDepth); one level of
// template recursion costs at most a few control frames, so the VM's
// limit is proportionally higher and the two engines fail on the same
// stylesheets.
const maxCtlDepth = 4 * maxDepth

// vmRun is the mutable state of one program execution.
type vmRun struct {
	e   *engine
	p   *Program
	f   *xpath.Frame
	ctx xctx
	out xmldom.Emitter
	// xc is the persistent expression-evaluation context; refreshed from
	// ctx before each evaluation instead of boxing a new one.
	xc xpath.Context
	// mc is the persistent pattern-match context used by dispatch.
	mc xpath.Context
}

// execute runs the program against ctx (the root context prepared by
// engine.run), writing the principal output to out.
func (p *Program) execute(e *engine, ctx *xctx, out xmldom.Emitter) error {
	f := xpath.GetFrame()
	defer xpath.PutFrame(f)
	r := &vmRun{e: e, p: p, f: f, ctx: *ctx, out: out}
	r.xc.Funcs = e.funcs
	r.xc.NS = e.sheet.exprNS
	r.mc.Funcs = e.funcs
	r.mc.NS = e.sheet.exprNS
	return r.loop()
}

// ectx refreshes and returns the shared expression context, mirroring
// engine.getCtx.
func (r *vmRun) ectx() *xpath.Context {
	r.xc.Node = r.ctx.node
	r.xc.Position = r.ctx.pos
	r.xc.Size = r.ctx.size
	r.xc.Vars = r.ctx.vars
	r.xc.Current = r.ctx.node
	return &r.xc
}

// evalAVT evaluates an attribute value template on the shared frame,
// mirroring avt.eval.
func (r *vmRun) evalAVT(a *avt) (string, error) {
	if len(a.parts) == 1 {
		if p := a.parts[0]; p.expr == nil {
			return p.lit, nil
		}
		return a.parts[0].expr.EvalStringOn(r.ectx(), r.f)
	}
	var b strings.Builder
	for _, p := range a.parts {
		if p.expr == nil {
			b.WriteString(p.lit)
			continue
		}
		s, err := p.expr.EvalStringOn(r.ectx(), r.f)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	return b.String(), nil
}

// push appends a control frame, guarding against runaway recursion with
// the same failure mode as the tree engine.
func (r *vmRun) push(cf xpath.CtlFrame) error {
	if r.f.Depth() >= maxCtlDepth {
		return &TransformError{Msg: "maximum instruction depth exceeded (circular templates?)"}
	}
	r.f.PushCtl(cf)
	return nil
}

// dispatch finds the first template whose pattern matches node in the
// dispatch index, scanning only the node's match-class bucket. The match
// context carries the *caller's* position, size, variables and current
// node — the jump-table equivalent of engine.findTemplate.
func (r *vmRun) dispatch(ix *templateIndex, node *xmldom.Node, vars map[string]xpath.Value,
	cur *xmldom.Node, pos, size, maxPrec int) (*Template, error) {
	if ix == nil {
		return nil, nil
	}
	list := ix.candidates(node)
	if len(list) == 0 {
		return nil, nil
	}
	mc := &r.mc
	mc.Node = node
	mc.Position = pos
	mc.Size = size
	mc.Vars = vars
	mc.Current = cur
	for _, t := range list {
		if t.importPrec >= maxPrec {
			continue
		}
		ok, err := t.Match.Matches(mc, node)
		if err != nil {
			return nil, err
		}
		if ok {
			return t, nil
		}
	}
	return nil, nil
}

func splitQName(name string) (prefix, local string) {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "", name
}

// loop is the interpreter: one flat pc loop over the whole stylesheet.
func (r *vmRun) loop() error {
	p := r.p
	e := r.e
	f := r.f
	code := p.code
	for pc := 0; ; {
		in := &code[pc]
		switch in.Op {
		case OpHalt:
			return nil

		case OpJmp:
			pc = int(in.A)
			continue

		case OpTest:
			ok, err := p.exprs[in.A].EvalBoolOn(r.ectx(), f)
			if err != nil {
				return err
			}
			if !ok {
				pc = int(in.B)
				continue
			}

		case OpSeg:
			if be, ok := r.out.(*xmldom.ByteEmitter); ok {
				be.AppendSegment(p.segs[in.A])
			} else {
				p.segs[in.A].Replay(r.out)
			}

		case OpText:
			r.out.Text(p.strs[in.A], in.B != 0)

		case OpValueOf:
			s, err := p.exprs[in.A].EvalStringOn(r.ectx(), f)
			if err != nil {
				return err
			}
			if s != "" {
				r.out.Text(s, in.B != 0)
			}

		case OpLitBegin:
			ln := &p.litNames[in.A]
			r.out.BeginElement(ln.prefix, ln.uri, ln.name)

		case OpAttrSets:
			if err := e.applyAttrSets(p.nameLists[in.A], &r.ctx, r.out, nil); err != nil {
				return err
			}

		case OpLitAttr:
			la := &p.litAttrs[in.A]
			r.out.Attr(la.prefix, la.uri, la.name, la.value)

		case OpAVTAttr:
			aa := &p.avtAttrs[in.A]
			v, err := r.evalAVT(aa.value)
			if err != nil {
				return err
			}
			r.out.Attr(aa.prefix, aa.uri, aa.name, v)

		case OpEndElem:
			r.out.EndElement()

		case OpApply:
			site := p.applySites[in.A]
			var list []*xmldom.Node
			switch {
			case site.self:
				list = []*xmldom.Node{r.ctx.node}
			case site.sel != nil:
				ns, err := site.sel.EvalNodesOn(r.ectx(), f)
				if err != nil {
					return err
				}
				list = ns
			default:
				list = r.ctx.node.Children
			}
			var err error
			if len(site.sorts) > 0 {
				list, err = e.sortNodes(list, site.sorts, &r.ctx)
				if err != nil {
					return err
				}
			}
			passed, err := e.evalWithParams(site.params, &r.ctx)
			if err != nil {
				return err
			}
			if err := r.push(xpath.CtlFrame{
				Kind: cfApply, Ret: int32(pc + 1), Site: in.A,
				Node: r.ctx.node, Pos: r.ctx.pos, Size: r.ctx.size,
				Vars: r.ctx.vars, Mode: r.ctx.mode, Prec: r.ctx.curPrec,
				List: list, Passed: passed,
			}); err != nil {
				return err
			}

		case OpIterate:
			fr := f.TopCtl()
			site := p.applySites[in.A]
			entered := false
			for int(fr.Idx) < len(fr.List) {
				i := int(fr.Idx)
				fr.Idx++
				n := fr.List[i]
				t, err := r.dispatch(site.disp, n, fr.Vars, fr.Node, fr.Pos, fr.Size, maxInt)
				if err != nil {
					return err
				}
				if t == nil {
					continue // no rule at all (should not happen: built-ins exist)
				}
				r.ctx.node = n
				r.ctx.pos = i + 1
				r.ctx.size = len(fr.List)
				r.ctx.vars = fr.Vars
				r.ctx.mode = site.mode
				pc = int(t.entryPC)
				entered = true
				break
			}
			if entered {
				continue
			}
			// List exhausted: restore the caller's context and leave the loop.
			r.ctx.node, r.ctx.pos, r.ctx.size = fr.Node, fr.Pos, fr.Size
			r.ctx.vars, r.ctx.mode, r.ctx.curPrec = fr.Vars, fr.Mode, fr.Prec
			f.PopCtl()
			pc = int(in.B)
			continue

		case OpEnter:
			t := p.tmpls[in.A].t
			fr := f.TopCtl()
			passed := fr.Passed
			if len(t.params) > 0 || len(passed) > 0 {
				nv := copyVars(r.ctx.vars)
				for _, prm := range t.params {
					if v, ok := passed[prm.name]; ok {
						nv[prm.name] = v
						continue
					}
					// Defaults evaluate in the caller's variable scope:
					// r.ctx.vars still holds the pre-copy map here.
					v, err := e.evalVarValue(prm.sel, prm.body, &r.ctx)
					if err != nil {
						return err
					}
					nv[prm.name] = v
				}
				r.ctx.vars = nv
			}
			r.ctx.curPrec = t.importPrec

		case OpRet:
			fr := f.TopCtl()
			if fr.Kind == cfApply {
				// Back into the apply loop; the frame stays for the next node.
				pc = int(fr.Ret)
				continue
			}
			// Call frame: restore scope and precedence, pop, return.
			r.ctx.vars = fr.Vars
			r.ctx.curPrec = fr.Prec
			pc = int(fr.Ret)
			f.PopCtl()
			continue

		case OpCall:
			cs := p.callSites[in.A]
			if cs.t == nil {
				return &TransformError{Msg: "call-template: no template named " + cs.name}
			}
			passed, err := e.evalWithParams(cs.params, &r.ctx)
			if err != nil {
				return err
			}
			if err := r.push(xpath.CtlFrame{
				Kind: cfCall, Ret: int32(pc + 1),
				Vars: r.ctx.vars, Prec: r.ctx.curPrec, Passed: passed,
			}); err != nil {
				return err
			}
			pc = int(cs.t.entryPC)
			continue

		case OpApplyImports:
			t, err := r.dispatch(e.sheet.index[r.ctx.mode], r.ctx.node, r.ctx.vars,
				r.ctx.node, r.ctx.pos, r.ctx.size, r.ctx.curPrec)
			if err != nil {
				return err
			}
			if t == nil {
				break // no lower-precedence rule: no output
			}
			if err := r.push(xpath.CtlFrame{
				Kind: cfCall, Ret: int32(pc + 1),
				Vars: r.ctx.vars, Prec: r.ctx.curPrec,
			}); err != nil {
				return err
			}
			pc = int(t.entryPC)
			continue

		case OpForEach:
			site := p.forSites[in.A]
			ns, err := site.sel.EvalNodesOn(r.ectx(), f)
			if err != nil {
				return err
			}
			list := []*xmldom.Node(ns)
			if len(site.sorts) > 0 {
				list, err = e.sortNodes(list, site.sorts, &r.ctx)
				if err != nil {
					return err
				}
			}
			if err := r.push(xpath.CtlFrame{
				Kind: cfFor, Node: r.ctx.node, Pos: r.ctx.pos, Size: r.ctx.size,
				List: list,
			}); err != nil {
				return err
			}

		case OpForNext:
			fr := f.TopCtl()
			if int(fr.Idx) < len(fr.List) {
				r.ctx.node = fr.List[fr.Idx]
				r.ctx.pos = int(fr.Idx) + 1
				r.ctx.size = len(fr.List)
				fr.Idx++
			} else {
				r.ctx.node, r.ctx.pos, r.ctx.size = fr.Node, fr.Pos, fr.Size
				f.PopCtl()
				pc = int(in.B)
				continue
			}

		case OpForEnd:
			pc = int(in.A)
			continue

		case OpScopeBegin:
			if err := r.push(xpath.CtlFrame{Kind: cfScope, Vars: r.ctx.vars}); err != nil {
				return err
			}
			r.ctx.vars = copyVars(r.ctx.vars)

		case OpScopeEnd:
			fr := f.TopCtl()
			r.ctx.vars = fr.Vars
			f.PopCtl()

		case OpVarDecl:
			d := p.varDecls[in.A]
			var v xpath.Value
			var err error
			if d.sel != nil {
				v, err = d.sel.EvalOn(r.ectx(), f)
			} else {
				v, err = e.evalVarValue(nil, d.body, &r.ctx)
			}
			if err != nil {
				return err
			}
			r.ctx.vars[d.name] = v

		case OpElemBegin:
			es := p.elemSites[in.A]
			name, err := r.evalAVT(es.name)
			if err != nil {
				return err
			}
			prefix, local := splitQName(name)
			uri := ""
			if prefix != "" {
				uri = e.sheet.exprNS[prefix]
			}
			r.out.BeginElement(prefix, uri, local)
			if err := e.applyAttrSets(es.useSets, &r.ctx, r.out, nil); err != nil {
				return err
			}

		case OpAttrBegin:
			if !r.out.OpenElement() {
				return &TransformError{Msg: "xsl:attribute outside an element"}
			}
			name, err := r.evalAVT(p.avts[in.A])
			if err != nil {
				return err
			}
			if err := r.push(xpath.CtlFrame{Kind: cfCap, Str: name, Out: r.out}); err != nil {
				return err
			}
			r.out = &textSink{}

		case OpAttrEnd:
			fr := f.TopCtl()
			sv := r.out.(*textSink).b.String()
			r.out = fr.Out.(xmldom.Emitter)
			name := fr.Str
			f.PopCtl()
			prefix, local := splitQName(name)
			uri := ""
			if prefix != "" {
				uri = e.sheet.exprNS[prefix]
			}
			if !r.out.Attr(prefix, uri, local, sv) {
				return &TransformError{Msg: "xsl:attribute outside an element"}
			}

		case OpCommentBegin:
			if err := r.push(xpath.CtlFrame{Kind: cfCap, Out: r.out}); err != nil {
				return err
			}
			r.out = &textSink{}

		case OpCommentEnd:
			fr := f.TopCtl()
			sv := r.out.(*textSink).b.String()
			r.out = fr.Out.(xmldom.Emitter)
			f.PopCtl()
			r.out.Comment(sv)

		case OpPIBegin:
			name, err := r.evalAVT(p.avts[in.A])
			if err != nil {
				return err
			}
			if err := r.push(xpath.CtlFrame{Kind: cfCap, Str: name, Out: r.out}); err != nil {
				return err
			}
			r.out = &textSink{}

		case OpPIEnd:
			fr := f.TopCtl()
			sv := r.out.(*textSink).b.String()
			r.out = fr.Out.(xmldom.Emitter)
			name := fr.Str
			f.PopCtl()
			r.out.PI(name, sv)

		case OpMsgBegin:
			if err := r.push(xpath.CtlFrame{Kind: cfCap, Out: r.out}); err != nil {
				return err
			}
			r.out = &textSink{}

		case OpMsgEnd:
			fr := f.TopCtl()
			msg := r.out.(*textSink).b.String()
			r.out = fr.Out.(xmldom.Emitter)
			f.PopCtl()
			e.messages = append(e.messages, msg)
			if in.A != 0 {
				return &TransformError{Msg: "terminated by xsl:message: " + msg}
			}

		case OpDocBegin:
			href, err := r.evalAVT(p.avts[in.A])
			if err != nil {
				return err
			}
			if err := r.push(xpath.CtlFrame{Kind: cfDoc, Out: r.out}); err != nil {
				return err
			}
			r.out = e.documentOut(href)

		case OpDocEnd:
			fr := f.TopCtl()
			r.out = fr.Out.(xmldom.Emitter)
			f.PopCtl()

		case OpCopyBegin:
			n := r.ctx.node
			switch n.Type {
			case xmldom.ElementNode:
				r.out.BeginElement(n.Prefix, n.URI, n.Name)
				if err := e.applyAttrSets(p.copySites[in.A], &r.ctx, r.out, nil); err != nil {
					return err
				}
			case xmldom.DocumentNode:
				// content only
			case xmldom.TextNode:
				r.out.Text(n.Data, false)
				pc = int(in.B)
				continue
			case xmldom.AttrNode:
				r.out.Attr(n.Prefix, n.URI, n.Name, n.Data) // ignored outside an element
				pc = int(in.B)
				continue
			case xmldom.CommentNode:
				r.out.Comment(n.Data)
				pc = int(in.B)
				continue
			case xmldom.PINode:
				r.out.PI(n.Name, n.Data)
				pc = int(in.B)
				continue
			}

		case OpCopyEnd:
			if r.ctx.node.Type == xmldom.ElementNode {
				r.out.EndElement()
			}

		case OpCopyOf:
			v, err := p.exprs[in.A].EvalOn(r.ectx(), f)
			if err != nil {
				return err
			}
			ns, ok := v.(xpath.NodeSet)
			if !ok {
				r.out.Text(xpath.ToString(v), false)
				break
			}
			for _, n := range ns {
				switch n.Type {
				case xmldom.DocumentNode:
					for _, c := range n.Children {
						r.out.CopyTree(c)
					}
				case xmldom.AttrNode:
					r.out.Attr(n.Prefix, n.URI, n.Name, n.Data) // ignored outside an element
				default:
					r.out.CopyTree(n)
				}
			}

		case OpNumber:
			// Cold instruction: the tree implementation already targets any
			// emitter, so delegate for guaranteed equivalence.
			if err := p.numSites[in.A].exec(e, &r.ctx, r.out); err != nil {
				return err
			}

		default:
			return &TransformError{Msg: "internal: bad opcode"}
		}
		pc++
	}
}
