package xslt

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// The dispatch index is an optimisation over the linear template scan; it
// must be invisible. This file drives randomized stylesheets (wildcards,
// attribute rules, unions, predicates, //, explicit priorities, modes and
// imports) against randomized documents and checks that the indexed
// findTemplate picks exactly the template the linear reference scan picks,
// for every node, every mode and every import-precedence ceiling.

var dispatchElems = []string{"a", "b", "c", "d", "zig", "zag"}
var dispatchAttrs = []string{"id", "x", "y"}

// randPattern returns a random match pattern over the shared name pool.
func randPattern(rng *rand.Rand) string {
	e := func() string { return dispatchElems[rng.Intn(len(dispatchElems))] }
	a := func() string { return dispatchAttrs[rng.Intn(len(dispatchAttrs))] }
	switch rng.Intn(14) {
	case 0:
		return e()
	case 1:
		return "*"
	case 2:
		return "@" + a()
	case 3:
		return "@*"
	case 4:
		return "text()"
	case 5:
		return "comment()"
	case 6:
		return "node()"
	case 7:
		return "/"
	case 8:
		return e() + "/" + e()
	case 9:
		return "//" + e()
	case 10:
		return fmt.Sprintf("%s[%d]", e(), 1+rng.Intn(3))
	case 11:
		return e() + "[@" + a() + "]"
	case 12:
		return "processing-instruction()"
	default:
		return e() + "|@" + a() + "|text()"
	}
}

// randStylesheet builds a stylesheet with n random template rules. Roughly
// half the rules get an explicit priority so ties and overrides both occur.
func randStylesheet(rng *rand.Rand, n int, importHref string) string {
	var b strings.Builder
	b.WriteString(`<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">` + "\n")
	if importHref != "" {
		fmt.Fprintf(&b, "<xsl:import href=%q/>\n", importHref)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<xsl:template match=%q", randPattern(rng))
		if m := rng.Intn(3); m > 0 {
			fmt.Fprintf(&b, " mode=\"m%d\"", m)
		}
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " priority=\"%d\"", rng.Intn(7)-3)
		}
		fmt.Fprintf(&b, "><t n=\"%d\"/></xsl:template>\n", i)
	}
	b.WriteString("</xsl:stylesheet>")
	return b.String()
}

// randDoc builds a random document over the name pool plus names outside
// it (exercising the any-name fallback buckets), with attributes, text,
// comments and processing instructions mixed in.
func randDoc(rng *rand.Rand) *xmldom.Node {
	names := append(append([]string{}, dispatchElems...), "other", "q")
	var build func(parent *xmldom.Node, depth int)
	build = func(parent *xmldom.Node, depth int) {
		kids := 1 + rng.Intn(4)
		for i := 0; i < kids; i++ {
			switch rng.Intn(6) {
			case 0:
				parent.AddText("t" + names[rng.Intn(len(names))])
			case 1:
				parent.AppendChild(&xmldom.Node{Type: xmldom.CommentNode, Data: "c"})
			case 2:
				parent.AppendChild(&xmldom.Node{Type: xmldom.PINode, Name: "pi", Data: "d"})
			default:
				el := parent.AppendChild(&xmldom.Node{Type: xmldom.ElementNode, Name: names[rng.Intn(len(names))]})
				for _, at := range dispatchAttrs {
					if rng.Intn(3) == 0 {
						el.SetAttr(at, "v")
					}
				}
				if depth < 3 {
					build(el, depth+1)
				}
			}
		}
	}
	doc := xmldom.NewDocument()
	root := doc.AppendChild(&xmldom.Node{Type: xmldom.ElementNode, Name: "a"})
	build(root, 0)
	xmldom.Freeze(doc)
	return doc
}

// allNodes collects the document and every descendant node including
// attributes.
func allNodes(n *xmldom.Node, out []*xmldom.Node) []*xmldom.Node {
	out = append(out, n)
	out = append(out, n.Attr...)
	for _, c := range n.Children {
		out = allNodes(c, out)
	}
	return out
}

func TestDispatchIndexMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 60; round++ {
		imported := randStylesheet(rng, 3+rng.Intn(6), "")
		loader := func(href string) (*xmldom.Node, error) { return xmldom.ParseString(imported) }
		src := randStylesheet(rng, 5+rng.Intn(12), "imp.xsl")
		doc, err := xmldom.ParseString(src)
		if err != nil {
			t.Fatalf("round %d: bad stylesheet XML: %v\n%s", round, err, src)
		}
		sheet, err := Compile(doc, CompileOptions{Loader: loader})
		if err != nil {
			t.Fatalf("round %d: compile: %v\n%s", round, err, src)
		}
		source := randDoc(rng)
		e := newEngine(sheet, false)
		ctx := &xctx{node: source, pos: 1, size: 1, vars: map[string]xpath.Value{}}
		for _, n := range allNodes(source, nil) {
			for _, mode := range []string{"", "m1", "m2"} {
				for _, maxPrec := range []int{maxInt, 2, 1} {
					want, errL := e.findTemplateLinear(n, mode, ctx, maxPrec)
					got, errI := e.findTemplate(n, mode, ctx, maxPrec)
					if (errL == nil) != (errI == nil) {
						t.Fatalf("round %d: error mismatch linear=%v indexed=%v", round, errL, errI)
					}
					if want != got {
						t.Fatalf("round %d: node %v(%s) mode=%q maxPrec=%d: linear picked %v, index picked %v\nstylesheet:\n%s",
							round, n.Type, n.Name, mode, maxPrec, tmplID(want), tmplID(got), src)
					}
				}
			}
		}
	}
}

func tmplID(t *Template) string {
	if t == nil {
		return "<nil>"
	}
	return fmt.Sprintf("{match=%v mode=%q prec=%d order=%d}", t.Match, t.Mode, t.importPrec, t.order)
}
