package xslt_test

import (
	"flag"
	"os"
	"strings"
	"testing"

	"goldweb/internal/xslt"
)

var updatePrograms = flag.Bool("update", false, "rewrite the golden program listing")

// programCorpus holds representative stylesheets whose lowered bytecode
// is pinned in testdata/programs.want: every opcode the compiler can
// emit appears at least once, including the static-run segment collapse,
// the jump-table prologue and the capture/redirect pairs.
var programCorpus = []struct {
	name string
	src  string
}{
	{"minimal", `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="/"><out><xsl:value-of select="name(*)"/></out></xsl:template>
</xsl:stylesheet>`},

	{"static-segments", `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="/">
  <html><head><title>Fixed</title></head>
  <body class="page"><hr/>tail<xsl:apply-templates select="*"/></body></html>
</xsl:template>
<xsl:template match="*"><p>static text run</p><p>another</p></xsl:template>
</xsl:stylesheet>`},

	{"control-flow", `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="/">
  <xsl:choose>
    <xsl:when test="count(*) &gt; 1"><many/></xsl:when>
    <xsl:when test="*"><one/></xsl:when>
    <xsl:otherwise><none/></xsl:otherwise>
  </xsl:choose>
  <xsl:if test="@id"><id/></xsl:if>
  <xsl:for-each select="*"><xsl:sort select="name()"/><i p="{position()}"/></xsl:for-each>
</xsl:template>
</xsl:stylesheet>`},

	{"calls-and-modes", `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="/"><xsl:apply-templates select="*" mode="toc"/><xsl:call-template name="f"><xsl:with-param name="x" select="1"/></xsl:call-template></xsl:template>
<xsl:template match="*" mode="toc"><t><xsl:apply-imports/></t></xsl:template>
<xsl:template name="f"><xsl:param name="x" select="0"/><v><xsl:value-of select="$x"/></v></xsl:template>
</xsl:stylesheet>`},

	{"constructors", `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:attribute-set name="common"><xsl:attribute name="k">v</xsl:attribute></xsl:attribute-set>
<xsl:template match="/">
  <xsl:variable name="n" select="name(*)"/>
  <e a="{$n}" xsl:use-attribute-sets="common">
    <xsl:attribute name="dyn"><xsl:value-of select="$n"/></xsl:attribute>
    <xsl:element name="el-{$n}">x</xsl:element>
    <xsl:comment>c</xsl:comment>
    <xsl:processing-instruction name="pi">d</xsl:processing-instruction>
    <xsl:copy><xsl:copy-of select="@*"/></xsl:copy>
    <xsl:number format="01"/>
    <xsl:text disable-output-escaping="yes">&amp;raw;</xsl:text>
  </e>
  <xsl:message>done</xsl:message>
  <xsl:document href="{$n}.html"><sub/></xsl:document>
</xsl:template>
</xsl:stylesheet>`},
}

const programGolden = "testdata/programs.want"

// TestProgramGolden pins the lowered bytecode (disassembled) for the
// corpus above. Regenerate with:
//
//	go test ./internal/xslt -run ProgramGolden -update
func TestProgramGolden(t *testing.T) {
	var b strings.Builder
	for _, c := range programCorpus {
		s, err := xslt.CompileStylesheetString(c.src, xslt.CompileOptions{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		b.WriteString("=== " + c.name + "\n")
		b.WriteString(s.Program().Disasm())
		b.WriteString("\n")
	}
	got := b.String()
	if *updatePrograms {
		if err := os.WriteFile(programGolden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(programGolden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("lowered programs drifted from %s; run with -update if intentional\n--- got ---\n%s", programGolden, got)
	}
}
