package xslt

import (
	"fmt"
	"strings"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// instruction is a compiled XSLT instruction or literal result node.
// Output goes to an xmldom.Emitter, so the same compiled body can build a
// result tree or stream straight to bytes.
type instruction interface {
	exec(e *engine, ctx *xctx, out xmldom.Emitter) error
}

// avt is a compiled attribute value template: literal text interleaved
// with {expr} parts.
type avt struct {
	parts []avtPart
}

type avtPart struct {
	lit  string
	expr *xpath.Compiled
}

// avtError wraps an expression error from inside an attribute value
// template with the absolute byte offset of the failure in the
// attribute value, so compile-time diagnostics can point at the exact
// column of the broken {expr} part.
type avtError struct {
	Off int
	Err error
}

func (e *avtError) Error() string { return e.Err.Error() }

// compileAVT parses an attribute value template. "{{" and "}}" escape the
// braces.
func compileAVT(src string) (*avt, error) {
	a := &avt{}
	var lit strings.Builder
	for i := 0; i < len(src); {
		c := src[i]
		switch c {
		case '{':
			if i+1 < len(src) && src[i+1] == '{' {
				lit.WriteByte('{')
				i += 2
				continue
			}
			end := strings.IndexByte(src[i+1:], '}')
			if end < 0 {
				return nil, &avtError{Off: i, Err: fmt.Errorf("unterminated { in attribute value template %s", src)}
			}
			exprSrc := src[i+1 : i+1+end]
			e, err := xpath.Compile(exprSrc)
			if err != nil {
				off := i + 1
				if se, ok := err.(*xpath.SyntaxError); ok {
					off += se.Pos
				}
				return nil, &avtError{Off: off, Err: err}
			}
			if lit.Len() > 0 {
				a.parts = append(a.parts, avtPart{lit: lit.String()})
				lit.Reset()
			}
			a.parts = append(a.parts, avtPart{expr: e})
			i += end + 2
		case '}':
			if i+1 < len(src) && src[i+1] == '}' {
				lit.WriteByte('}')
				i += 2
				continue
			}
			return nil, &avtError{Off: i, Err: fmt.Errorf("unmatched } in attribute value template %s", src)}
		default:
			lit.WriteByte(c)
			i++
		}
	}
	if lit.Len() > 0 {
		a.parts = append(a.parts, avtPart{lit: lit.String()})
	}
	return a, nil
}

func (a *avt) eval(e *engine, ctx *xctx) (string, error) {
	if len(a.parts) == 1 {
		if p := a.parts[0]; p.expr == nil {
			return p.lit, nil
		} else {
			return e.evalString(p.expr, ctx)
		}
	}
	var b strings.Builder
	for _, p := range a.parts {
		if p.expr == nil {
			b.WriteString(p.lit)
			continue
		}
		s, err := e.evalString(p.expr, ctx)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	return b.String(), nil
}

// sortKey is a compiled xsl:sort.
type sortKey struct {
	sel      *xpath.Compiled
	dataType *avt // "text" (default) or "number"
	order    *avt // "ascending" (default) or "descending"
}

// withParam is a compiled xsl:with-param.
type withParam struct {
	name string
	sel  *xpath.Compiled
	body []instruction
}

// compiledVar is a compiled xsl:variable/xsl:param.
type compiledVar struct {
	name    string
	sel     *xpath.Compiled
	body    []instruction
	isParam bool
}

// ---- concrete instructions ----

type iLiteralText struct{ data string }

type iLiteralElement struct {
	name, prefix, uri string
	attrs             []literalAttr
	useSets           []string // xsl:use-attribute-sets
	body              []instruction
}

type literalAttr struct {
	name, prefix, uri string
	value             *avt
}

type iApplyTemplates struct {
	sel    *xpath.Compiled // nil → child::node()
	mode   string
	sorts  []sortKey
	params []withParam
}

type iCallTemplate struct {
	name   string
	params []withParam
	src    *xmldom.Node
}

type iForEach struct {
	sel   *xpath.Compiled
	sorts []sortKey
	body  []instruction
}

type iValueOf struct {
	sel        *xpath.Compiled
	disableEsc bool
}

type iText struct {
	data       string
	disableEsc bool
}

type iElement struct {
	name    *avt
	useSets []string
	body    []instruction
}

type iAttribute struct {
	name *avt
	body []instruction
}

type iComment struct{ body []instruction }

type iPI struct {
	name *avt
	body []instruction
}

type iCopy struct {
	useSets []string
	body    []instruction
}

type iCopyOf struct{ sel *xpath.Compiled }

type iIf struct {
	test *xpath.Compiled
	body []instruction
}

type iChoose struct {
	whens     []chooseWhen
	otherwise []instruction
}

type chooseWhen struct {
	test *xpath.Compiled
	body []instruction
}

type iVariable struct{ decl *compiledVar }

type iMessage struct {
	body      []instruction
	terminate bool
}

type iDocument struct {
	href *avt
	body []instruction
}

type iApplyImports struct{}

type iNumber struct {
	value  *xpath.Compiled // nil → count position
	format string
}
