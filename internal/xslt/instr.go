package xslt

import (
	"strings"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// instruction is a compiled XSLT instruction or literal result node.
// Output goes to an xmldom.Emitter, so the same compiled body can build a
// result tree or stream straight to bytes.
type instruction interface {
	exec(e *engine, ctx *xctx, out xmldom.Emitter) error
}

// avt is a compiled attribute value template: literal text interleaved
// with {expr} parts.
type avt struct {
	parts []avtPart
}

type avtPart struct {
	lit  string
	expr xpath.Expr
}

// compileAVT parses an attribute value template. "{{" and "}}" escape the
// braces.
func compileAVT(src string) (*avt, error) {
	a := &avt{}
	var lit strings.Builder
	for i := 0; i < len(src); {
		c := src[i]
		switch c {
		case '{':
			if i+1 < len(src) && src[i+1] == '{' {
				lit.WriteByte('{')
				i += 2
				continue
			}
			end := strings.IndexByte(src[i+1:], '}')
			if end < 0 {
				return nil, &CompileError{Msg: "unterminated { in attribute value template " + src}
			}
			exprSrc := src[i+1 : i+1+end]
			e, err := xpath.Compile(exprSrc)
			if err != nil {
				return nil, err
			}
			if lit.Len() > 0 {
				a.parts = append(a.parts, avtPart{lit: lit.String()})
				lit.Reset()
			}
			a.parts = append(a.parts, avtPart{expr: e})
			i += end + 2
		case '}':
			if i+1 < len(src) && src[i+1] == '}' {
				lit.WriteByte('}')
				i += 2
				continue
			}
			return nil, &CompileError{Msg: "unmatched } in attribute value template " + src}
		default:
			lit.WriteByte(c)
			i++
		}
	}
	if lit.Len() > 0 {
		a.parts = append(a.parts, avtPart{lit: lit.String()})
	}
	return a, nil
}

func (a *avt) eval(e *engine, ctx *xctx) (string, error) {
	if len(a.parts) == 1 {
		if p := a.parts[0]; p.expr == nil {
			return p.lit, nil
		} else {
			v, err := e.eval(p.expr, ctx)
			if err != nil {
				return "", err
			}
			return xpath.ToString(v), nil
		}
	}
	var b strings.Builder
	for _, p := range a.parts {
		if p.expr == nil {
			b.WriteString(p.lit)
			continue
		}
		v, err := e.eval(p.expr, ctx)
		if err != nil {
			return "", err
		}
		b.WriteString(xpath.ToString(v))
	}
	return b.String(), nil
}

// sortKey is a compiled xsl:sort.
type sortKey struct {
	sel      xpath.Expr
	dataType *avt // "text" (default) or "number"
	order    *avt // "ascending" (default) or "descending"
}

// withParam is a compiled xsl:with-param.
type withParam struct {
	name string
	sel  xpath.Expr
	body []instruction
}

// compiledVar is a compiled xsl:variable/xsl:param.
type compiledVar struct {
	name    string
	sel     xpath.Expr
	body    []instruction
	isParam bool
}

// ---- concrete instructions ----

type iLiteralText struct{ data string }

type iLiteralElement struct {
	name, prefix, uri string
	attrs             []literalAttr
	useSets           []string // xsl:use-attribute-sets
	body              []instruction
}

type literalAttr struct {
	name, prefix, uri string
	value             *avt
}

type iApplyTemplates struct {
	sel    xpath.Expr // nil → child::node()
	mode   string
	sorts  []sortKey
	params []withParam
}

type iCallTemplate struct {
	name   string
	params []withParam
	src    *xmldom.Node
}

type iForEach struct {
	sel   xpath.Expr
	sorts []sortKey
	body  []instruction
}

type iValueOf struct {
	sel        xpath.Expr
	disableEsc bool
}

type iText struct {
	data       string
	disableEsc bool
}

type iElement struct {
	name    *avt
	useSets []string
	body    []instruction
}

type iAttribute struct {
	name *avt
	body []instruction
}

type iComment struct{ body []instruction }

type iPI struct {
	name *avt
	body []instruction
}

type iCopy struct {
	useSets []string
	body    []instruction
}

type iCopyOf struct{ sel xpath.Expr }

type iIf struct {
	test xpath.Expr
	body []instruction
}

type iChoose struct {
	whens     []chooseWhen
	otherwise []instruction
}

type chooseWhen struct {
	test xpath.Expr
	body []instruction
}

type iVariable struct{ decl *compiledVar }

type iMessage struct {
	body      []instruction
	terminate bool
}

type iDocument struct {
	href *avt
	body []instruction
}

type iApplyImports struct{}

type iNumber struct {
	value  xpath.Expr // nil → count position
	format string
}
