package xslt

import (
	"fmt"
	"strings"
	"testing"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// wrap builds a one-template stylesheet matching the document root.
func wrap(body string) string {
	return `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">` +
		`<xsl:output omit-xml-declaration="yes"/>` +
		`<xsl:template match="/">` + body + `</xsl:template></xsl:stylesheet>`
}

// run compiles sheetSrc, transforms docSrc and returns the serialized main
// output.
func run(t *testing.T, sheetSrc, docSrc string) string {
	t.Helper()
	sheet, err := CompileString(sheetSrc, CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	doc, err := xmldom.ParseString(docSrc)
	if err != nil {
		t.Fatalf("parse source: %v", err)
	}
	out, err := sheet.TransformToBytes(doc, nil)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	return string(out)
}

func TestLiteralResultElement(t *testing.T) {
	got := run(t, wrap(`<html><body>hi</body></html>`), `<x/>`)
	if got != `<html><body>hi</body></html>` {
		t.Errorf("got %s", got)
	}
}

func TestValueOf(t *testing.T) {
	got := run(t, wrap(`<p><xsl:value-of select="/m/@name"/></p>`), `<m name="Sales"/>`)
	if got != `<p>Sales</p>` {
		t.Errorf("got %s", got)
	}
}

func TestValueOfEscapes(t *testing.T) {
	got := run(t, wrap(`<p><xsl:value-of select="/m"/></p>`), `<m>a &lt; b</m>`)
	if got != `<p>a &lt; b</p>` {
		t.Errorf("got %s", got)
	}
}

func TestDisableOutputEscaping(t *testing.T) {
	got := run(t, wrap(`<p><xsl:value-of select="/m" disable-output-escaping="yes"/></p>`), `<m>&lt;raw/&gt;</m>`)
	if got != `<p><raw/></p>` {
		t.Errorf("got %s", got)
	}
}

func TestForEach(t *testing.T) {
	got := run(t, wrap(`<ul><xsl:for-each select="//item"><li><xsl:value-of select="."/></li></xsl:for-each></ul>`),
		`<r><item>a</item><item>b</item></r>`)
	if got != `<ul><li>a</li><li>b</li></ul>` {
		t.Errorf("got %s", got)
	}
}

func TestForEachSort(t *testing.T) {
	src := `<r><i v="b"/><i v="a"/><i v="c"/></r>`
	got := run(t, wrap(`<xsl:for-each select="//i"><xsl:sort select="@v"/><xsl:value-of select="@v"/></xsl:for-each>`), src)
	if got != "abc" {
		t.Errorf("ascending sort = %s", got)
	}
	got = run(t, wrap(`<xsl:for-each select="//i"><xsl:sort select="@v" order="descending"/><xsl:value-of select="@v"/></xsl:for-each>`), src)
	if got != "cba" {
		t.Errorf("descending sort = %s", got)
	}
}

func TestNumericSort(t *testing.T) {
	src := `<r><i>10</i><i>9</i><i>100</i></r>`
	got := run(t, wrap(`<xsl:for-each select="//i"><xsl:sort select="." data-type="number"/><xsl:value-of select="."/>,</xsl:for-each>`), src)
	if got != "9,10,100," {
		t.Errorf("numeric sort = %s", got)
	}
	got = run(t, wrap(`<xsl:for-each select="//i"><xsl:sort select="."/><xsl:value-of select="."/>,</xsl:for-each>`), src)
	if got != "10,100,9," {
		t.Errorf("text sort = %s", got)
	}
}

func TestMultiKeySort(t *testing.T) {
	src := `<r><p g="2" n="a"/><p g="1" n="b"/><p g="1" n="a"/></r>`
	got := run(t, wrap(`<xsl:for-each select="//p"><xsl:sort select="@g"/><xsl:sort select="@n"/>`+
		`<xsl:value-of select="@g"/><xsl:value-of select="@n"/><xsl:text> </xsl:text></xsl:for-each>`), src)
	if strings.TrimSpace(got) != "1a 1b 2a" {
		t.Errorf("multi-key sort = %q", got)
	}
}

func TestIfAndChoose(t *testing.T) {
	sheet := wrap(`<xsl:for-each select="//i">
		<xsl:if test="@x"><xsl:text>X</xsl:text></xsl:if>
		<xsl:choose>
			<xsl:when test=". > 5">big</xsl:when>
			<xsl:when test=". = 5">five</xsl:when>
			<xsl:otherwise>small</xsl:otherwise>
		</xsl:choose>
	</xsl:for-each>`)
	got := run(t, sheet, `<r><i>3</i><i x="1">5</i><i>9</i></r>`)
	if got != "smallXfivebig" {
		t.Errorf("got %q", got)
	}
}

func TestTemplateMatchingAndApply(t *testing.T) {
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/"><doc><xsl:apply-templates/></doc></xsl:template>
	<xsl:template match="a"><A><xsl:apply-templates/></A></xsl:template>
	<xsl:template match="b"><B/></xsl:template>
	<xsl:template match="text()"/>
	</xsl:stylesheet>`
	got := run(t, sheet, `<a>one<b>two</b></a>`)
	if got != `<doc><A><B/></A></doc>` {
		t.Errorf("got %s", got)
	}
}

func TestBuiltinRules(t *testing.T) {
	// With no user templates, built-ins walk the tree and copy text.
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/></xsl:stylesheet>`
	got := run(t, sheet, `<a>one<b>two</b>three<!--no--><?pi no?></a>`)
	if got != "onetwothree" {
		t.Errorf("built-in rules output = %q", got)
	}
}

func TestTemplatePriority(t *testing.T) {
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="*">star</xsl:template>
	<xsl:template match="a">name</xsl:template>
	<xsl:template match="a[@x]">pred</xsl:template>
	</xsl:stylesheet>`
	if got := run(t, sheet, `<a/>`); got != "name" {
		t.Errorf("name test should beat *: %q", got)
	}
	if got := run(t, sheet, `<a x="1"/>`); got != "pred" {
		t.Errorf("predicate pattern should win: %q", got)
	}
	if got := run(t, sheet, `<z/>`); got != "star" {
		t.Errorf("* should match: %q", got)
	}
}

func TestExplicitPriorityAndTieBreak(t *testing.T) {
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="a" priority="2">low</xsl:template>
	<xsl:template match="a" priority="3">high</xsl:template>
	</xsl:stylesheet>`
	if got := run(t, sheet, `<a/>`); got != "high" {
		t.Errorf("explicit priority: %q", got)
	}
	sheet2 := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="a">first</xsl:template>
	<xsl:template match="a">last</xsl:template>
	</xsl:stylesheet>`
	if got := run(t, sheet2, `<a/>`); got != "last" {
		t.Errorf("later rule should win ties: %q", got)
	}
}

func TestModes(t *testing.T) {
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/"><xsl:apply-templates select="//a"/>|<xsl:apply-templates select="//a" mode="toc"/></xsl:template>
	<xsl:template match="a">full</xsl:template>
	<xsl:template match="a" mode="toc">toc</xsl:template>
	</xsl:stylesheet>`
	if got := run(t, sheet, `<a/>`); got != "full|toc" {
		t.Errorf("modes: %q", got)
	}
}

func TestModeBuiltinFallthrough(t *testing.T) {
	// In a mode with no rule for an element, the built-in rule recurses
	// in the same mode.
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/"><xsl:apply-templates mode="m"/></xsl:template>
	<xsl:template match="b" mode="m">B</xsl:template>
	</xsl:stylesheet>`
	if got := run(t, sheet, `<a><b/><c><b/></c></a>`); got != "BB" {
		t.Errorf("mode fallthrough: %q", got)
	}
}

func TestNamedTemplatesAndParams(t *testing.T) {
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/">
		<xsl:call-template name="greet"/>
		<xsl:call-template name="greet"><xsl:with-param name="who">world</xsl:with-param></xsl:call-template>
		<xsl:call-template name="greet"><xsl:with-param name="who" select="'select'"/></xsl:call-template>
	</xsl:template>
	<xsl:template name="greet"><xsl:param name="who" select="'default'"/>[<xsl:value-of select="$who"/>]</xsl:template>
	</xsl:stylesheet>`
	if got := run(t, sheet, `<x/>`); got != "[default][world][select]" {
		t.Errorf("params: %q", got)
	}
}

func TestApplyTemplatesWithParam(t *testing.T) {
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/"><xsl:apply-templates select="//a"><xsl:with-param name="p" select="42"/></xsl:apply-templates></xsl:template>
	<xsl:template match="a"><xsl:param name="p" select="0"/><xsl:value-of select="$p"/></xsl:template>
	</xsl:stylesheet>`
	if got := run(t, sheet, `<a/>`); got != "42" {
		t.Errorf("apply with-param: %q", got)
	}
}

func TestVariablesAndScoping(t *testing.T) {
	sheet := wrap(`<xsl:variable name="v" select="'outer'"/>
	<xsl:for-each select="//i">
		<xsl:variable name="v" select="'inner'"/>
		<xsl:value-of select="$v"/>
	</xsl:for-each>|<xsl:value-of select="$v"/>`)
	if got := run(t, sheet, `<r><i/></r>`); got != "inner|outer" {
		t.Errorf("scoping: %q", got)
	}
}

func TestVariableRTF(t *testing.T) {
	sheet := wrap(`<xsl:variable name="frag"><x>one</x><y>two</y></xsl:variable>` +
		`<xsl:value-of select="$frag"/>|<xsl:copy-of select="$frag"/>`)
	if got := run(t, sheet, `<r/>`); got != `onetwo|<x>one</x><y>two</y>` {
		t.Errorf("RTF: %q", got)
	}
}

func TestGlobalVariablesAndStylesheetParams(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:param name="title" select="'default title'"/>
	<xsl:variable name="n" select="count(//i)"/>
	<xsl:template match="/"><xsl:value-of select="$title"/>:<xsl:value-of select="$n"/></xsl:template>
	</xsl:stylesheet>`
	sheet, err := CompileString(sheetSrc, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc := xmldom.MustParseString(`<r><i/><i/></r>`)
	out, err := sheet.TransformToBytes(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "default title:2" {
		t.Errorf("defaults: %q", out)
	}
	out, err = sheet.TransformToBytes(doc, map[string]xpath.Value{"title": xpath.String("custom")})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "custom:2" {
		t.Errorf("override: %q", out)
	}
}

func TestAttributeValueTemplates(t *testing.T) {
	got := run(t, wrap(`<a href="{/m/@id}.html" lit="x{{y}}z">link</a>`), `<m id="f1"/>`)
	if got != `<a href="f1.html" lit="x{y}z">link</a>` {
		t.Errorf("AVT: %q", got)
	}
}

func TestElementAndAttributeInstructions(t *testing.T) {
	got := run(t, wrap(`<xsl:element name="e{/m/@n}"><xsl:attribute name="k">v<xsl:value-of select="/m/@n"/></xsl:attribute>body</xsl:element>`), `<m n="1"/>`)
	if got != `<e1 k="v1">body</e1>` {
		t.Errorf("element/attribute: %q", got)
	}
}

func TestCopyAndCopyOf(t *testing.T) {
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/|@*|node()"><xsl:copy><xsl:apply-templates select="@*|node()"/></xsl:copy></xsl:template>
	</xsl:stylesheet>`
	src := `<a x="1"><b>t<!--c--></b><?p d?></a>`
	if got := run(t, sheet, src); got != src {
		t.Errorf("identity transform: %q != %q", got, src)
	}
	got := run(t, wrap(`<xsl:copy-of select="/a/b"/>`), `<a><b x="1">t</b><b>u</b></a>`)
	if got != `<b x="1">t</b><b>u</b>` {
		t.Errorf("copy-of: %q", got)
	}
}

func TestCommentAndPIOutput(t *testing.T) {
	got := run(t, wrap(`<xsl:comment>hello <xsl:value-of select="name(/*)"/></xsl:comment><xsl:processing-instruction name="target">data</xsl:processing-instruction>`), `<root/>`)
	if got != `<!--hello root--><?target data?>` {
		t.Errorf("comment/pi: %q", got)
	}
}

func TestTextInstructionPreservesSpace(t *testing.T) {
	// Whitespace-only literal text is stripped, xsl:text keeps it.
	got := run(t, wrap(`<xsl:value-of select="'a'"/> <xsl:value-of select="'b'"/>`), `<r/>`)
	if got != "ab" {
		t.Errorf("bare space should be stripped: %q", got)
	}
	got = run(t, wrap(`<xsl:value-of select="'a'"/><xsl:text> </xsl:text><xsl:value-of select="'b'"/>`), `<r/>`)
	if got != "a b" {
		t.Errorf("xsl:text space: %q", got)
	}
}

func TestCurrentFunction(t *testing.T) {
	sheet := wrap(`<xsl:for-each select="//b"><xsl:value-of select="//a[@ref=current()/@id]/@name"/></xsl:for-each>`)
	got := run(t, sheet, `<r><a ref="1" name="one"/><a ref="2" name="two"/><b id="2"/></r>`)
	if got != "two" {
		t.Errorf("current(): %q", got)
	}
}

func TestGenerateID(t *testing.T) {
	sheet := wrap(`<xsl:variable name="i1"><xsl:value-of select="generate-id(//a)"/></xsl:variable>` +
		`<xsl:variable name="i2"><xsl:value-of select="generate-id(//a)"/></xsl:variable>` +
		`<xsl:variable name="i3"><xsl:value-of select="generate-id(//b)"/></xsl:variable>` +
		`<xsl:if test="$i1 = $i2">same</xsl:if><xsl:if test="$i1 != $i3">diff</xsl:if>`)
	got := run(t, sheet, `<r><a/><b/></r>`)
	if got != "samediff" {
		t.Errorf("generate-id: %q", got)
	}
}

func TestKeys(t *testing.T) {
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:key name="byid" match="item" use="@id"/>
	<xsl:template match="/"><xsl:value-of select="key('byid', 'b')/@name"/></xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheet, `<r><item id="a" name="Alpha"/><item id="b" name="Beta"/></r>`)
	if got != "Beta" {
		t.Errorf("key(): %q", got)
	}
}

func TestXslDocumentMultiOutput(t *testing.T) {
	// The paper's XSLT 1.1 mode: one output page per fact class, named by
	// its id, plus links in the main page.
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.1">
	<xsl:output method="html"/>
	<xsl:template match="/">
		<html><body>
		<xsl:for-each select="//factclass">
			<xsl:variable name="url" select="@id"/>
			<a href="{$url}.html"><xsl:value-of select="@name"/></a>
			<xsl:document href="{$url}.html">
				<html><head><title>Fact class: <xsl:value-of select="@name"/></title></head>
				<body><xsl:value-of select="@name"/></body></html>
			</xsl:document>
		</xsl:for-each>
		</body></html>
	</xsl:template>
	</xsl:stylesheet>`
	sheet, err := CompileString(sheetSrc, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc := xmldom.MustParseString(`<m><factclass id="f1" name="Sales"/><factclass id="f2" name="Inventory"/></m>`)
	res, err := sheet.Transform(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	main := string(res.MainBytes())
	if !strings.Contains(main, `<a href="f1.html">Sales</a>`) ||
		!strings.Contains(main, `<a href="f2.html">Inventory</a>`) {
		t.Errorf("main page: %s", main)
	}
	if len(res.Documents) != 2 {
		t.Fatalf("documents: %d", len(res.Documents))
	}
	f1 := string(res.DocBytes("f1.html"))
	if !strings.Contains(f1, "<title>Fact class: Sales</title>") {
		t.Errorf("f1.html: %s", f1)
	}
	if res.DocumentOrder[0] != "f1.html" || res.DocumentOrder[1] != "f2.html" {
		t.Errorf("order: %v", res.DocumentOrder)
	}
	// Multi-page content must not leak into the main document.
	if strings.Contains(main, "Fact class:") {
		t.Error("xsl:document content leaked into main output")
	}
}

func TestHTMLOutputMethod(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output method="html" doctype-public="-//W3C//DTD HTML 4.01//EN"/>
	<xsl:template match="/"><html><body><br/><img src="x.png"/></body></html></xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheetSrc, `<x/>`)
	if !strings.HasPrefix(got, `<!DOCTYPE html PUBLIC "-//W3C//DTD HTML 4.01//EN">`) {
		t.Errorf("doctype: %s", got)
	}
	if strings.Contains(got, "<br/>") || strings.Contains(got, "</br>") {
		t.Errorf("void element: %s", got)
	}
	if strings.Contains(got, "<?xml") {
		t.Errorf("declaration in html: %s", got)
	}
}

func TestHTMLAutoDetection(t *testing.T) {
	// No explicit method + <html> root → html output rules.
	got := run(t, wrap(`<html><body><br/></body></html>`), `<x/>`)
	if strings.Contains(got, "<br/>") {
		t.Errorf("auto html method not applied: %s", got)
	}
	// Non-html root stays xml.
	got = run(t, wrap(`<data><br/></data>`), `<x/>`)
	if !strings.Contains(got, "<br/>") {
		t.Errorf("xml method lost: %s", got)
	}
}

func TestTextOutputMethod(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output method="text"/>
	<xsl:template match="/">value: <xsl:value-of select="//v"/></xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheetSrc, `<r><v>42</v></r>`)
	if got != "value: 42" {
		t.Errorf("text method: %q", got)
	}
}

func TestMessages(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:template match="/"><xsl:message>note <xsl:value-of select="name(/*)"/></xsl:message><ok/></xsl:template>
	</xsl:stylesheet>`
	sheet, _ := CompileString(sheetSrc, CompileOptions{})
	res, err := sheet.Transform(xmldom.MustParseString(`<root/>`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Messages) != 1 || res.Messages[0] != "note root" {
		t.Errorf("messages: %v", res.Messages)
	}
	// terminate="yes" aborts.
	sheetSrc = strings.Replace(sheetSrc, "<xsl:message>", `<xsl:message terminate="yes">`, 1)
	sheet, _ = CompileString(sheetSrc, CompileOptions{})
	if _, err := sheet.Transform(xmldom.MustParseString(`<root/>`), nil); err == nil {
		t.Error("terminate should abort the transform")
	}
}

func TestIncludeViaLoader(t *testing.T) {
	lib := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:template name="lib">from-lib</xsl:template></xsl:stylesheet>`
	main := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:include href="lib.xsl"/>
	<xsl:template match="/"><xsl:call-template name="lib"/></xsl:template>
	</xsl:stylesheet>`
	loader := func(href string) (*xmldom.Node, error) {
		if href == "lib.xsl" {
			return xmldom.ParseString(lib)
		}
		return nil, fmt.Errorf("not found: %s", href)
	}
	sheet, err := CompileString(main, CompileOptions{Loader: loader})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sheet.TransformToBytes(xmldom.MustParseString(`<x/>`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "from-lib" {
		t.Errorf("include: %q", out)
	}
}

func TestImportPrecedence(t *testing.T) {
	imported := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:template match="a">imported</xsl:template></xsl:stylesheet>`
	main := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:import href="base.xsl"/>
	<xsl:template match="a">main</xsl:template>
	</xsl:stylesheet>`
	loader := func(href string) (*xmldom.Node, error) { return xmldom.ParseString(imported) }
	sheet, err := CompileString(main, CompileOptions{Loader: loader})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := sheet.TransformToBytes(xmldom.MustParseString(`<a/>`), nil)
	if string(out) != "main" {
		t.Errorf("import precedence: %q", out)
	}
}

func TestDocumentFunction(t *testing.T) {
	other := `<lookup><entry key="k">resolved</entry></lookup>`
	loader := func(href string) (*xmldom.Node, error) {
		if href == "other.xml" {
			return xmldom.ParseString(other)
		}
		return nil, fmt.Errorf("not found")
	}
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/"><xsl:value-of select="document('other.xml')//entry[@key='k']"/></xsl:template>
	</xsl:stylesheet>`
	sheet, err := CompileString(sheetSrc, CompileOptions{Loader: loader})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sheet.TransformToBytes(xmldom.MustParseString(`<x/>`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "resolved" {
		t.Errorf("document(): %q", out)
	}
}

func TestStripSpace(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:strip-space elements="*"/>
	<xsl:preserve-space elements="keep"/>
	<xsl:template match="/"><xsl:copy-of select="/"/></xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheetSrc, "<r>\n  <a>x</a>\n  <keep> </keep>\n</r>")
	if got != `<r><a>x</a><keep> </keep></r>` {
		t.Errorf("strip-space: %q", got)
	}
}

func TestXslNumber(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/"><xsl:for-each select="//i"><xsl:number/>:<xsl:number format="a"/>:<xsl:number format="I"/><xsl:text> </xsl:text></xsl:for-each></xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheetSrc, `<r><i/><i/><i/></r>`)
	if strings.TrimSpace(got) != "1:a:I 2:b:II 3:c:III" {
		t.Errorf("xsl:number: %q", got)
	}
}

func TestFormatNumber(t *testing.T) {
	cases := []struct {
		expr, want string
	}{
		{"format-number(1234.567, '#,##0.00')", "1,234.57"},
		{"format-number(0.5, '0%')", "50%"},
		{"format-number(42, '000')", "042"},
		{"format-number(-3.2, '0.0')", "-3.2"},
		{"format-number(1234, '#,###')", "1,234"},
		{"format-number(0.129, '0.##')", "0.13"},
	}
	for _, tc := range cases {
		got := run(t, wrap(`<xsl:value-of select="`+tc.expr+`"/>`), `<x/>`)
		if got != tc.want {
			t.Errorf("%s = %q, want %q", tc.expr, got, tc.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		`<notxsl/>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template>nomatch</xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template match="a"><xsl:value-of/></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template match="a"><xsl:value-of select="(("/></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template match="a"><xsl:frobnicate/></xsl:template></xsl:stylesheet>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:template match="ancestor::a"/></xsl:stylesheet>`,
		`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"><xsl:namespace-alias stylesheet-prefix="a" result-prefix="b"/></xsl:stylesheet>`,
	}
	for i, src := range bad {
		if _, err := CompileString(src, CompileOptions{}); err == nil {
			t.Errorf("case %d: compile should fail", i)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	// Unknown named template.
	sheet := wrap(`<xsl:call-template name="ghost"/>`)
	s, err := CompileString(sheet, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Transform(xmldom.MustParseString(`<x/>`), nil); err == nil {
		t.Error("missing template should error at runtime")
	}
	// Infinite recursion is caught.
	rec := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:template match="/"><xsl:call-template name="loop"/></xsl:template>
	<xsl:template name="loop"><xsl:call-template name="loop"/></xsl:template>
	</xsl:stylesheet>`
	s, err = CompileString(rec, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Transform(xmldom.MustParseString(`<x/>`), nil); err == nil {
		t.Error("infinite recursion should be caught")
	}
}

func TestTransformElementSource(t *testing.T) {
	// Transforming a bare element wraps it in a document.
	sheet, _ := CompileString(wrap(`<xsl:value-of select="name(/*)"/>`), CompileOptions{})
	elem := xmldom.NewElement("standalone")
	out, err := sheet.TransformToBytes(elem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "standalone" {
		t.Errorf("element source: %q", out)
	}
}

func TestReuseAcrossTransforms(t *testing.T) {
	sheet, _ := CompileString(wrap(`<xsl:value-of select="count(//i)"/>`), CompileOptions{})
	for i := 1; i <= 3; i++ {
		src := "<r>" + strings.Repeat("<i/>", i) + "</r>"
		out, err := sheet.TransformToBytes(xmldom.MustParseString(src), nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != fmt.Sprint(i) {
			t.Errorf("run %d: %q", i, out)
		}
	}
}
