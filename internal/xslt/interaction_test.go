package xslt

import (
	"strings"
	"testing"

	"goldweb/internal/xmldom"
)

// Interaction tests: features that are individually covered elsewhere but
// can break each other when combined.

func TestImportPrecedenceWithModes(t *testing.T) {
	imported := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:template match="a" mode="m">imported-m</xsl:template>
	<xsl:template match="b" mode="m">imported-b</xsl:template>
	</xsl:stylesheet>`
	main := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:import href="base.xsl"/>
	<xsl:template match="/"><xsl:apply-templates select="//a|//b" mode="m"/></xsl:template>
	<xsl:template match="a" mode="m">main-m</xsl:template>
	</xsl:stylesheet>`
	loader := func(href string) (*xmldom.Node, error) { return xmldom.ParseString(imported) }
	sheet, err := CompileString(main, CompileOptions{Loader: loader})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sheet.TransformToBytes(xmldom.MustParseString(`<r><a/><b/></r>`), nil)
	if err != nil {
		t.Fatal(err)
	}
	// a: main wins (higher import precedence); b: only imported rule exists.
	if string(out) != "main-mimported-b" {
		t.Errorf("precedence × modes: %q", out)
	}
}

func TestPriorityBeatsOrderAcrossUnionAlternatives(t *testing.T) {
	// A union pattern splits into alternatives with their own default
	// priorities; the name-test alternative must lose to a later
	// predicate rule but beat an earlier wildcard.
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="*">wild</xsl:template>
	<xsl:template match="a|b[@x]">union</xsl:template>
	<xsl:template match="b[@x='1']">pred</xsl:template>
	</xsl:stylesheet>`
	cases := map[string]string{
		`<a/>`:       "union", // name test (0) beats * (-0.5)
		`<b x="1"/>`: "pred",  // both 0.5; later rule wins
		`<c/>`:       "wild",
	}
	for doc, want := range cases {
		if got := run(t, sheet, doc); got != want {
			t.Errorf("%s → %q, want %q", doc, got, want)
		}
	}
}

func TestVariablesInsideDocumentInstruction(t *testing.T) {
	// Variables declared inside xsl:document bodies stay scoped to them.
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.1">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:variable name="v" select="'outer'"/>
	<xsl:template match="/">
		<xsl:document href="sub.xml">
			<xsl:variable name="v" select="'inner'"/>
			<sub><xsl:value-of select="$v"/></sub>
		</xsl:document>
		<main><xsl:value-of select="$v"/></main>
	</xsl:template>
	</xsl:stylesheet>`
	sheet, err := CompileString(sheetSrc, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sheet.Transform(xmldom.MustParseString(`<x/>`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(res.MainBytes()); got != "<main>outer</main>" {
		t.Errorf("main: %q", got)
	}
	if got := string(res.DocBytes("sub.xml")); got != "<sub>inner</sub>" {
		t.Errorf("sub: %q", got)
	}
}

func TestSortInsideFocusedForEachWithKeys(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:key name="byGroup" match="item" use="@g"/>
	<xsl:template match="/">
		<xsl:for-each select="key('byGroup', 'x')">
			<xsl:sort select="@n" data-type="number" order="descending"/>
			[<xsl:value-of select="@n"/>]
		</xsl:for-each>
	</xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheetSrc,
		`<r><item g="x" n="1"/><item g="y" n="9"/><item g="x" n="3"/><item g="x" n="2"/></r>`)
	// Literal text containing '[' is not whitespace-only, so the layout
	// newlines around it survive; compare ignoring all whitespace.
	got = strings.Join(strings.Fields(got), "")
	if got != "[3][2][1]" {
		t.Errorf("key+sort: %q", got)
	}
}

func TestIDPatternTemplate(t *testing.T) {
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="id('special')">!<xsl:value-of select="@id"/>!</xsl:template>
	<xsl:template match="text()"/>
	</xsl:stylesheet>`
	got := run(t, sheet, `<r><e id="plain"/><e id="special"/></r>`)
	if got != "!special!" {
		t.Errorf("id pattern: %q", got)
	}
}

func TestRecursiveRTFAccumulation(t *testing.T) {
	// A recursive template building a result-tree fragment through
	// with-param — the classic "join" idiom.
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes" method="text"/>
	<xsl:template match="/">
		<xsl:call-template name="join">
			<xsl:with-param name="nodes" select="//i"/>
		</xsl:call-template>
	</xsl:template>
	<xsl:template name="join">
		<xsl:param name="nodes"/>
		<xsl:for-each select="$nodes">
			<xsl:value-of select="."/>
			<xsl:if test="position() != last()">, </xsl:if>
		</xsl:for-each>
	</xsl:template>
	</xsl:stylesheet>`
	if got := run(t, sheetSrc, `<r><i>a</i><i>b</i><i>c</i></r>`); got != "a, b, c" {
		t.Errorf("join: %q", got)
	}
}

func TestCurrentInsideKeyUse(t *testing.T) {
	// current() inside a predicate refers to the template's current node
	// even within nested paths.
	sheetSrc := wrap(`<xsl:for-each select="//order">` +
		`<xsl:value-of select="@id"/>=<xsl:value-of select="count(//line[@order = current()/@id])"/>;` +
		`</xsl:for-each>`)
	got := run(t, sheetSrc, `<r><order id="o1"/><order id="o2"/>
		<line order="o1"/><line order="o1"/><line order="o2"/></r>`)
	if got != "o1=2;o2=1;" {
		t.Errorf("current() join: %q", got)
	}
}

func TestWhitespaceControlInGeneratedTables(t *testing.T) {
	// The pattern the embedded stylesheets rely on: whitespace-only
	// literal text between table cells is stripped, so html output has no
	// stray text nodes between <td>s.
	got := run(t, wrap(`<table>
		<tr>
			<td>a</td>
			<td>b</td>
		</tr>
	</table>`), `<x/>`)
	if got != "<table><tr><td>a</td><td>b</td></tr></table>" {
		t.Errorf("table whitespace: %q", got)
	}
}

func TestDisableOutputEscapingInHTMLMethod(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output method="html"/>
	<xsl:template match="/"><html><body>
		<xsl:value-of select="//raw" disable-output-escaping="yes"/>
	</body></html></xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheetSrc, `<r><raw>&lt;hr&gt;</raw></r>`)
	if !strings.Contains(got, "<hr>") {
		t.Errorf("d-o-e in html: %q", got)
	}
}

func TestAttributeSets(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:attribute-set name="base">
		<xsl:attribute name="class">cell</xsl:attribute>
		<xsl:attribute name="role">data</xsl:attribute>
	</xsl:attribute-set>
	<xsl:attribute-set name="hot" use-attribute-sets="base">
		<xsl:attribute name="class">hot</xsl:attribute>
	</xsl:attribute-set>
	<xsl:template match="/">
		<a xsl:use-attribute-sets="base"/>
		<b xsl:use-attribute-sets="hot"/>
		<c xsl:use-attribute-sets="base" class="explicit"/>
		<xsl:element name="d" use-attribute-sets="base"/>
	</xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheetSrc, `<x/>`)
	for _, want := range []string{
		`<a class="cell" role="data"/>`,
		`<b class="hot" role="data"/>`,      // own attribute beats merged set
		`<c class="explicit" role="data"/>`, // literal attribute beats set
		`<d class="cell" role="data"/>`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %s in %s", want, got)
		}
	}
}

func TestAttributeSetOnCopy(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:attribute-set name="mark"><xsl:attribute name="seen">yes</xsl:attribute></xsl:attribute-set>
	<xsl:template match="/|node()"><xsl:copy use-attribute-sets="mark"><xsl:apply-templates/></xsl:copy></xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheetSrc, `<r><c/></r>`)
	if !strings.Contains(got, `<r seen="yes">`) || !strings.Contains(got, `<c seen="yes"/>`) {
		t.Errorf("copy attribute set: %s", got)
	}
}

func TestAttributeSetErrors(t *testing.T) {
	// Unknown set name fails at runtime.
	sheet, err := CompileString(wrap(`<e xsl:use-attribute-sets="ghost"/>`), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sheet.Transform(xmldom.MustParseString(`<x/>`), nil); err == nil {
		t.Error("unknown attribute set accepted")
	}
	// Circular references are caught.
	circ := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:attribute-set name="a" use-attribute-sets="b"><xsl:attribute name="x">1</xsl:attribute></xsl:attribute-set>
	<xsl:attribute-set name="b" use-attribute-sets="a"><xsl:attribute name="y">2</xsl:attribute></xsl:attribute-set>
	<xsl:template match="/"><e xsl:use-attribute-sets="a"/></xsl:template>
	</xsl:stylesheet>`
	sheet, err = CompileString(circ, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sheet.Transform(xmldom.MustParseString(`<x/>`), nil); err == nil ||
		!strings.Contains(err.Error(), "circular") {
		t.Errorf("circular sets: %v", err)
	}
	// Non-attribute content is rejected at compile time.
	bad := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:attribute-set name="a"><xsl:text>nope</xsl:text></xsl:attribute-set>
	</xsl:stylesheet>`
	if _, err := CompileString(bad, CompileOptions{}); err == nil {
		t.Error("attribute-set with text child accepted")
	}
}

func TestApplyImports(t *testing.T) {
	imported := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:template match="para">[base: <xsl:apply-templates/>]</xsl:template>
	</xsl:stylesheet>`
	main := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:import href="base.xsl"/>
	<xsl:template match="/"><xsl:apply-templates/></xsl:template>
	<xsl:template match="para"><b><xsl:apply-imports/></b></xsl:template>
	</xsl:stylesheet>`
	loader := func(href string) (*xmldom.Node, error) { return xmldom.ParseString(imported) }
	sheet, err := CompileString(main, CompileOptions{Loader: loader})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sheet.TransformToBytes(xmldom.MustParseString(`<para>text</para>`), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The classic wrap-and-delegate pattern: the importing rule adds <b>,
	// the imported rule supplies the brackets.
	if string(out) != "<b>[base: text]</b>" {
		t.Errorf("apply-imports: %q", out)
	}
}

func TestApplyImportsWithoutLowerRule(t *testing.T) {
	// No imported rule: apply-imports falls through to the built-in rule
	// (which, for an element, applies templates to children) or produces
	// nothing below the built-ins; it must not recurse into itself.
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/"><xsl:apply-templates/></xsl:template>
	<xsl:template match="e">(<xsl:apply-imports/>)</xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheetSrc, `<e>inner</e>`)
	if got != "(inner)" {
		t.Errorf("fallthrough to built-in: %q", got)
	}
}
