package xslt

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// Verification hooks: the read-only bytecode introspection surface the
// static verifier (internal/analysis/verify) decodes Programs through,
// plus the registration point that lets CompileStylesheet self-check
// every program it lowers when debug verification is enabled. The
// verifier lives outside this package on purpose — it re-derives the
// VM's invariants (frame balance, side-table bounds, jump validity)
// independently instead of trusting the compiler's own bookkeeping.

// String returns the disassembly mnemonic of the opcode.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) && opcodeNames[o] != "" {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumOpcodes is one past the largest valid Opcode value; operands of an
// Instr whose Op is >= NumOpcodes are meaningless.
const NumOpcodes = int(OpNumber) + 1

// Code returns a copy of the program's instruction stream. The copy is
// the verifier's working image: corruption injected into it (negative
// tests, fuzzing) never reaches the live program.
func (p *Program) Code() []Instr {
	out := make([]Instr, len(p.code))
	copy(out, p.code)
	return out
}

// TableSizes reports the length of every side table of a Program, so a
// decoder can bounds-check operands without access to the tables
// themselves.
type TableSizes struct {
	Segs, Strs, Exprs, AVTs         int
	LitNames, LitAttrs, AVTAttrs    int
	NameLists, VarDecls             int
	ApplySites, ForSites, CallSites int
	ElemSites, CopySites, NumSites  int
	Templates                       int
}

// Tables returns the program's side-table sizes.
func (p *Program) Tables() TableSizes {
	return TableSizes{
		Segs: len(p.segs), Strs: len(p.strs), Exprs: len(p.exprs),
		AVTs: len(p.avts), LitNames: len(p.litNames), LitAttrs: len(p.litAttrs),
		AVTAttrs: len(p.avtAttrs), NameLists: len(p.nameLists),
		VarDecls: len(p.varDecls), ApplySites: len(p.applySites),
		ForSites: len(p.forSites), CallSites: len(p.callSites),
		ElemSites: len(p.elemSites), CopySites: len(p.copySites),
		NumSites: len(p.numSites), Templates: len(p.tmpls),
	}
}

// Templates returns every lowered template with its entry pc, in entry
// (layout) order: the root prologue occupies [0, Templates()[0].Entry).
func (p *Program) Templates() []DispatchRule {
	out := make([]DispatchRule, 0, len(p.tmpls))
	for _, pt := range p.tmpls {
		t := pt.t
		out = append(out, DispatchRule{
			TemplateRule: TemplateRule{
				Match:      t.Match,
				Name:       t.Name,
				Mode:       t.Mode,
				Priority:   t.Priority,
				ImportPrec: t.importPrec,
				Builtin:    t.src == nil,
				Src:        t.src,
			},
			Entry: int(pt.entry),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entry < out[j].Entry })
	return out
}

// Rule renders the rule's identity in the format CompileError.Rule uses
// (`template match="fact" mode="toc"`), or "" for the built-in rules.
func (r TemplateRule) Rule() string {
	if r.Builtin {
		return ""
	}
	e := &CompileError{TemplateName: r.Name, TemplateMode: r.Mode}
	if r.Match != nil {
		e.TemplateMatch = r.Match.String()
	}
	return e.Rule()
}

// CallTarget returns the resolved entry pc of call site i, or ok=false
// when the named template does not exist (a deferred runtime error, not
// a verification failure).
func (p *Program) CallTarget(i int) (entry int, ok bool) {
	cs := p.callSites[i]
	if cs.t == nil {
		return 0, false
	}
	return int(cs.t.entryPC), true
}

// Output returns the owning stylesheet's xsl:output specification, which
// the result-shape analysis needs to decide whether the HTML content
// model applies.
func (p *Program) Output() OutputSpec { return p.sheet.output }

// Seg returns segment i for event-level decoding (Segment.Replay).
func (p *Program) Seg(i int) *xmldom.Segment { return p.segs[i] }

// StrAt returns string-table entry i.
func (p *Program) StrAt(i int) string { return p.strs[i] }

// LitNameAt returns the (prefix, uri, name) of literal-element name i.
func (p *Program) LitNameAt(i int) (prefix, uri, name string) {
	ln := p.litNames[i]
	return ln.prefix, ln.uri, ln.name
}

// LitAttrAt returns the (prefix, uri, name, value) of static literal
// attribute i.
func (p *Program) LitAttrAt(i int) (prefix, uri, name, value string) {
	la := p.litAttrs[i]
	return la.prefix, la.uri, la.name, la.value
}

// AVTAttrAt returns the (prefix, uri, name) of computed literal
// attribute i; its value is dynamic.
func (p *Program) AVTAttrAt(i int) (prefix, uri, name string) {
	aa := p.avtAttrs[i]
	return aa.prefix, aa.uri, aa.name
}

// AVTStatic returns the constant value of AVT-table entry i when it is
// expression-free (ok=false for computed templates). Used to recover the
// static names of xsl:attribute / xsl:processing-instruction sites.
func (p *Program) AVTStatic(i int) (string, bool) { return staticAVT(p.avts[i]) }

// ElemSiteStatic returns the constant name of xsl:element site i when
// its name AVT is expression-free.
func (p *Program) ElemSiteStatic(i int) (string, bool) {
	return staticAVT(p.elemSites[i].name)
}

// Exprs returns every compiled XPath expression the program can
// evaluate at run time: the expression side table plus the selects,
// sort keys, AVT parts and parameter/variable bodies buried in site
// payloads, attribute sets and global declarations. The IR verifier
// proves each one's operand-stack plan sound.
func (p *Program) Exprs() []*xpath.Compiled {
	c := &exprCollector{seen: map[*xpath.Compiled]bool{}}
	for _, x := range p.exprs {
		c.add(x)
	}
	for _, a := range p.avts {
		c.avt(a)
	}
	for _, aa := range p.avtAttrs {
		c.avt(aa.value)
	}
	for _, es := range p.elemSites {
		c.avt(es.name)
	}
	for _, d := range p.varDecls {
		c.varDecl(d)
	}
	for _, site := range p.applySites {
		c.add(site.sel)
		c.sorts(site.sorts)
		c.params(site.params)
	}
	for _, site := range p.forSites {
		c.add(site.sel)
		c.sorts(site.sorts)
	}
	for _, cs := range p.callSites {
		c.params(cs.params)
	}
	for _, ns := range p.numSites {
		c.add(ns.value)
	}
	for _, t := range p.tmpls {
		for _, prm := range t.t.params {
			c.varDecl(prm)
		}
	}
	for _, as := range p.sheet.attrSets {
		c.body(as.body)
	}
	for _, g := range p.sheet.globals {
		c.varDecl(g)
	}
	for _, k := range p.sheet.keys {
		c.add(k.use)
	}
	return c.out
}

// exprCollector accumulates distinct compiled expressions from the
// program's side tables and nested instruction bodies.
type exprCollector struct {
	seen map[*xpath.Compiled]bool
	out  []*xpath.Compiled
}

func (c *exprCollector) add(x *xpath.Compiled) {
	if x == nil || c.seen[x] {
		return
	}
	c.seen[x] = true
	c.out = append(c.out, x)
}

func (c *exprCollector) avt(a *avt) {
	if a == nil {
		return
	}
	for _, p := range a.parts {
		c.add(p.expr)
	}
}

func (c *exprCollector) sorts(keys []sortKey) {
	for _, k := range keys {
		c.add(k.sel)
		c.avt(k.dataType)
		c.avt(k.order)
	}
}

func (c *exprCollector) params(ps []withParam) {
	for _, p := range ps {
		c.add(p.sel)
		c.body(p.body)
	}
}

func (c *exprCollector) varDecl(d *compiledVar) {
	if d == nil {
		return
	}
	c.add(d.sel)
	c.body(d.body)
}

func (c *exprCollector) body(body []instruction) {
	for _, ins := range body {
		switch t := ins.(type) {
		case *iValueOf:
			c.add(t.sel)
		case *iLiteralElement:
			for _, at := range t.attrs {
				c.avt(at.value)
			}
			c.body(t.body)
		case *iApplyTemplates:
			c.add(t.sel)
			c.sorts(t.sorts)
			c.params(t.params)
		case *iCallTemplate:
			c.params(t.params)
		case *iForEach:
			c.add(t.sel)
			c.sorts(t.sorts)
			c.body(t.body)
		case *iElement:
			c.avt(t.name)
			c.body(t.body)
		case *iAttribute:
			c.avt(t.name)
			c.body(t.body)
		case *iComment:
			c.body(t.body)
		case *iPI:
			c.avt(t.name)
			c.body(t.body)
		case *iCopy:
			c.body(t.body)
		case *iCopyOf:
			c.add(t.sel)
		case *iIf:
			c.add(t.test)
			c.body(t.body)
		case *iChoose:
			for _, w := range t.whens {
				c.add(w.test)
				c.body(w.body)
			}
			c.body(t.otherwise)
		case *iVariable:
			c.varDecl(t.decl)
		case *iMessage:
			c.body(t.body)
		case *iDocument:
			c.avt(t.href)
			c.body(t.body)
		case *iNumber:
			c.add(t.value)
		}
	}
}

// ---- compile-time verification hook ----

// progVerifier is the registered whole-program verifier. The verifier
// package installs itself here from an init function, so any binary that
// links internal/analysis/verify (the CLI, the analysis linter, their
// tests) can self-check at CompileStylesheet time.
var progVerifier atomic.Pointer[func(*Program) error]

// compileVerify gates the CompileStylesheet-time self-check. It defaults
// to the GOLDWEB_VERIFY environment variable so any run of any binary
// can be hardened without a rebuild.
var compileVerify atomic.Bool

func init() {
	if os.Getenv("GOLDWEB_VERIFY") == "1" {
		compileVerify.Store(true)
	}
}

// RegisterProgramVerifier installs the static verifier CompileStylesheet
// runs when debug verification is enabled.
func RegisterProgramVerifier(f func(*Program) error) {
	progVerifier.Store(&f)
}

// EnableCompileVerify toggles verification of every program at
// CompileStylesheet time (also enabled by GOLDWEB_VERIFY=1). It returns
// the previous setting so tests can restore it.
func EnableCompileVerify(on bool) (prev bool) {
	return compileVerify.Swap(on)
}

// verifyLowered runs the registered verifier against a freshly lowered
// program when debug verification is on.
func verifyLowered(p *Program) error {
	if !compileVerify.Load() {
		return nil
	}
	f := progVerifier.Load()
	if f == nil {
		return nil
	}
	if err := (*f)(p); err != nil {
		return &CompileError{Msg: "program verifier: " + err.Error()}
	}
	return nil
}
