package xslt

import (
	"strings"
	"testing"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

func TestApplyTemplatesWithSort(t *testing.T) {
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/"><xsl:apply-templates select="//i"><xsl:sort select="@k"/></xsl:apply-templates></xsl:template>
	<xsl:template match="i">[<xsl:value-of select="@k"/>]</xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheet, `<r><i k="c"/><i k="a"/><i k="b"/></r>`)
	if got != "[a][b][c]" {
		t.Errorf("sorted apply: %q", got)
	}
}

func TestPositionAndLastInTemplates(t *testing.T) {
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/"><xsl:apply-templates select="//i"/></xsl:template>
	<xsl:template match="i"><xsl:value-of select="position()"/>/<xsl:value-of select="last()"/><xsl:text> </xsl:text></xsl:template>
	</xsl:stylesheet>`
	got := strings.TrimSpace(run(t, sheet, `<r><i/><i/><i/></r>`))
	if got != "1/3 2/3 3/3" {
		t.Errorf("position/last: %q", got)
	}
}

func TestPositionAfterSortReflectsSortedOrder(t *testing.T) {
	sheet := wrap(`<xsl:for-each select="//i"><xsl:sort select="." data-type="number" order="descending"/>` +
		`<xsl:value-of select="position()"/>:<xsl:value-of select="."/><xsl:text> </xsl:text></xsl:for-each>`)
	got := strings.TrimSpace(run(t, sheet, `<r><i>1</i><i>3</i><i>2</i></r>`))
	if got != "1:3 2:2 3:1" {
		t.Errorf("sorted positions: %q", got)
	}
}

func TestNestedDocumentInstructions(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.1">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/">
		<main/>
		<xsl:document href="outer.xml">
			<outer/>
			<xsl:document href="inner.xml"><inner/></xsl:document>
		</xsl:document>
	</xsl:template>
	</xsl:stylesheet>`
	sheet, err := CompileString(sheetSrc, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sheet.Transform(xmldom.MustParseString(`<x/>`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.MainBytes()) != "<main/>" {
		t.Errorf("main: %s", res.MainBytes())
	}
	if got := string(res.DocBytes("outer.xml")); got != "<outer/>" {
		t.Errorf("outer: %q (inner content must not leak)", got)
	}
	if got := string(res.DocBytes("inner.xml")); got != "<inner/>" {
		t.Errorf("inner: %q", got)
	}
}

func TestSameHrefAppends(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.1">
	<xsl:template match="/">
		<xsl:for-each select="//i"><xsl:document href="all.xml"><i/></xsl:document></xsl:for-each>
	</xsl:template></xsl:stylesheet>`
	sheet, _ := CompileString(sheetSrc, CompileOptions{})
	res, err := sheet.Transform(xmldom.MustParseString(`<r><i/><i/></r>`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Documents["all.xml"].Children) != 2 {
		t.Errorf("append semantics: %s", res.DocBytes("all.xml"))
	}
	if len(res.DocumentOrder) != 1 {
		t.Errorf("order has duplicates: %v", res.DocumentOrder)
	}
}

func TestVariableShadowingGlobal(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:variable name="v" select="'global'"/>
	<xsl:template match="/">
		<xsl:variable name="v" select="'local'"/>
		<xsl:value-of select="$v"/>|<xsl:call-template name="peek"/>
	</xsl:template>
	<xsl:template name="peek"><xsl:value-of select="$v"/></xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheetSrc, `<x/>`)
	// The called template sees the caller's bindings in this processor
	// (dynamic scoping of the variable frame) — but at minimum the local
	// shadow must be in effect inside the declaring template.
	if !strings.HasPrefix(got, "local|") {
		t.Errorf("shadowing: %q", got)
	}
}

func TestGlobalVariableChain(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:variable name="a" select="2"/>
	<xsl:variable name="b" select="$a * 3"/>
	<xsl:template match="/"><xsl:value-of select="$b"/></xsl:template>
	</xsl:stylesheet>`
	if got := run(t, sheetSrc, `<x/>`); got != "6" {
		t.Errorf("chained globals: %q", got)
	}
}

func TestRTFUsedAsNodeSet(t *testing.T) {
	// This processor allows result tree fragments where node-sets are
	// expected (the exsl:node-set extension folded in).
	sheet := wrap(`<xsl:variable name="frag"><x v="1"/><x v="2"/></xsl:variable>` +
		`<xsl:value-of select="count($frag/x)"/>:<xsl:value-of select="sum($frag/x/@v)"/>`)
	if got := run(t, sheet, `<r/>`); got != "2:3" {
		t.Errorf("RTF as node-set: %q", got)
	}
}

func TestAttributeOverwritesLiteral(t *testing.T) {
	got := run(t, wrap(`<e a="lit"><xsl:attribute name="a">dyn</xsl:attribute></e>`), `<r/>`)
	if got != `<e a="dyn"/>` {
		t.Errorf("attribute overwrite: %q", got)
	}
}

func TestCommentsAndPIsFromSourceIgnoredByDefault(t *testing.T) {
	got := run(t, wrap(`<xsl:apply-templates/>`), `<r>text<!--c--><?pi d?></r>`)
	if got != "text" {
		t.Errorf("builtin comment/pi rule: %q", got)
	}
	// An explicit rule can surface them.
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/"><xsl:apply-templates select="//comment()"/></xsl:template>
	<xsl:template match="comment()">[<xsl:value-of select="."/>]</xsl:template>
	</xsl:stylesheet>`
	if got := run(t, sheet, `<r><!--hello--></r>`); got != "[hello]" {
		t.Errorf("comment template: %q", got)
	}
}

func TestChooseFirstMatchWins(t *testing.T) {
	sheet := wrap(`<xsl:choose>
		<xsl:when test="1">first</xsl:when>
		<xsl:when test="1">second</xsl:when>
	</xsl:choose>`)
	if got := run(t, sheet, `<x/>`); got != "first" {
		t.Errorf("choose: %q", got)
	}
}

func TestEmptyChooseOtherwise(t *testing.T) {
	sheet := wrap(`<xsl:choose><xsl:when test="0">no</xsl:when><xsl:otherwise/></xsl:choose>ok`)
	if got := run(t, sheet, `<x/>`); got != "ok" {
		t.Errorf("empty otherwise: %q", got)
	}
}

func TestCountFunctionOverKeyedNodes(t *testing.T) {
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:key name="byType" match="item" use="@type"/>
	<xsl:template match="/"><xsl:value-of select="count(key('byType','x'))"/></xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheet, `<r><item type="x"/><item type="y"/><item type="x"/></r>`)
	if got != "2" {
		t.Errorf("key count: %q", got)
	}
}

func TestElementAvailableAndFunctionAvailable(t *testing.T) {
	sheet := wrap(
		`<xsl:if test="element-available('xsl:document')">doc</xsl:if>` +
			`<xsl:if test="not(element-available('xsl:frobnicate'))">nofrob</xsl:if>` +
			`<xsl:if test="function-available('key')">key</xsl:if>` +
			`<xsl:if test="function-available('concat')">concat</xsl:if>` +
			`<xsl:if test="not(function-available('exslt:fancy'))">noext</xsl:if>`)
	got := run(t, sheet, `<x/>`)
	if got != "docnofrobkeyconcatnoext" {
		t.Errorf("availability: %q", got)
	}
}

func TestSystemProperty(t *testing.T) {
	got := run(t, wrap(`<xsl:value-of select="system-property('xsl:version')"/>`), `<x/>`)
	if got != "1.1" {
		t.Errorf("xsl:version = %q", got)
	}
}

func TestOutputIndent(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output indent="yes" omit-xml-declaration="yes"/>
	<xsl:template match="/"><a><b><c/></b></a></xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheetSrc, `<x/>`)
	if !strings.Contains(got, "\n  <b>") {
		t.Errorf("indent: %q", got)
	}
}

func TestLiteralNamespacedResultElement(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform"
		xmlns:svg="http://www.w3.org/2000/svg" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/"><svg:rect xmlns:svg="http://www.w3.org/2000/svg" width="5"/></xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheetSrc, `<x/>`)
	if !strings.Contains(got, `<svg:rect`) || !strings.Contains(got, `width="5"`) {
		t.Errorf("namespaced literal: %q", got)
	}
	if !strings.Contains(got, `xmlns:svg=`) {
		t.Errorf("namespace declaration dropped: %q", got)
	}
}

func TestParamVisibleToNestedTemplates(t *testing.T) {
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:param name="p" select="'fallback'"/>
	<xsl:template match="/"><xsl:apply-templates select="//leaf"/></xsl:template>
	<xsl:template match="leaf"><xsl:value-of select="$p"/></xsl:template>
	</xsl:stylesheet>`
	sheet, err := CompileString(sheetSrc, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sheet.TransformToBytes(xmldom.MustParseString(`<r><leaf/></r>`),
		map[string]xpath.Value{"p": xpath.String("given")})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "given" {
		t.Errorf("global param: %q", out)
	}
}

func TestWhitespaceOnlySourceTextPreservedByDefault(t *testing.T) {
	// Without xsl:strip-space, source whitespace flows through value-of
	// of the root.
	got := run(t, wrap(`[<xsl:value-of select="normalize-space(/)"/>]`), "<r>  a  <b/>  c  </r>")
	if got != "[a c]" {
		t.Errorf("normalize: %q", got)
	}
	got = run(t, wrap(`<xsl:copy-of select="/r"/>`), "<r> <a/> </r>")
	if got != "<r> <a/> </r>" {
		t.Errorf("whitespace preserved: %q", got)
	}
}

func TestModeSelectExpression(t *testing.T) {
	// select with a complex path + mode together.
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/">
		<xsl:apply-templates select="//b[@keep='1']" mode="list"/>
	</xsl:template>
	<xsl:template match="b" mode="list">(<xsl:value-of select="@id"/>)</xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheet, `<r><b id="1" keep="1"/><b id="2"/><b id="3" keep="1"/></r>`)
	if got != "(1)(3)" {
		t.Errorf("select+mode: %q", got)
	}
}

func TestDeepRecursionTemplates(t *testing.T) {
	// A recursive named template that counts down — classic XSLT loop.
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes" method="text"/>
	<xsl:template match="/"><xsl:call-template name="count"><xsl:with-param name="n" select="5"/></xsl:call-template></xsl:template>
	<xsl:template name="count">
		<xsl:param name="n"/>
		<xsl:if test="$n > 0">
			<xsl:value-of select="$n"/>
			<xsl:call-template name="count"><xsl:with-param name="n" select="$n - 1"/></xsl:call-template>
		</xsl:if>
	</xsl:template>
	</xsl:stylesheet>`
	if got := run(t, sheet, `<x/>`); got != "54321" {
		t.Errorf("recursion: %q", got)
	}
}

func TestResultDeterminism(t *testing.T) {
	sheetSrc := wrap(`<out><xsl:for-each select="//i"><xsl:sort select="@k"/><v k="{@k}"/></xsl:for-each></out>`)
	sheet, _ := CompileString(sheetSrc, CompileOptions{})
	doc := xmldom.MustParseString(`<r><i k="z"/><i k="a"/><i k="m"/></r>`)
	first, err := sheet.TransformToBytes(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := sheet.TransformToBytes(doc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("nondeterministic output: %s vs %s", first, again)
		}
	}
}

func TestMatchOnAttributeTemplates(t *testing.T) {
	sheet := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/"><xsl:apply-templates select="//@*"/></xsl:template>
	<xsl:template match="@id">[id=<xsl:value-of select="."/>]</xsl:template>
	<xsl:template match="@*">[other]</xsl:template>
	</xsl:stylesheet>`
	got := run(t, sheet, `<r id="7" x="1"/>`)
	if got != "[id=7][other]" {
		t.Errorf("attribute templates: %q", got)
	}
}

func TestNumberValueAttribute(t *testing.T) {
	got := run(t, wrap(`<xsl:number value="count(//i) * 2" format="I"/>`), `<r><i/><i/><i/></r>`)
	if got != "VI" {
		t.Errorf("number value: %q", got)
	}
}

func TestFormatCounterHelpers(t *testing.T) {
	cases := []struct {
		n      int
		format string
		want   string
	}{
		{1, "1", "1"}, {7, "01", "07"}, {26, "a", "z"}, {27, "a", "aa"},
		{28, "A", "AB"}, {4, "i", "iv"}, {1999, "I", "MCMXCIX"}, {0, "a", "0"},
	}
	for _, tc := range cases {
		if got := formatCounter(tc.n, tc.format); got != tc.want {
			t.Errorf("formatCounter(%d, %q) = %q, want %q", tc.n, tc.format, got, tc.want)
		}
	}
}

func TestFormatDecimalEdgeCases(t *testing.T) {
	cases := []struct {
		f       float64
		pattern string
		want    string
	}{
		{0, "0.00", "0.00"},
		{-0.5, "0.0;(0.0)", "(0.5)"},
		{1234567, "#,##0", "1,234,567"},
		{0.005, "0.##", "0.01"},
		{12, "'#'#", "'12"}, // literal prefix passthrough (no quote handling)
	}
	for _, tc := range cases {
		if got := formatDecimal(tc.f, tc.pattern); got != tc.want {
			t.Errorf("formatDecimal(%v, %q) = %q, want %q", tc.f, tc.pattern, got, tc.want)
		}
	}
}

func TestMoreSystemProperties(t *testing.T) {
	got := run(t, wrap(
		`<xsl:value-of select="system-property('xsl:vendor')"/>|`+
			`<xsl:value-of select="string-length(system-property('xsl:vendor-url')) > 0"/>|`+
			`<xsl:value-of select="system-property('xsl:nonsense')"/>|`+
			`<xsl:value-of select="unparsed-entity-uri('pic')"/>`), `<x/>`)
	if got != "goldweb|true||" {
		t.Errorf("system properties: %q", got)
	}
}

func TestCurrentAtTopLevelAndMustCompile(t *testing.T) {
	sheet := MustCompileString(wrap(`<xsl:value-of select="count(current())"/>`))
	if sheet.Output().OmitDecl != true {
		t.Error("Output() accessor")
	}
	out, err := sheet.TransformToBytes(xmldom.MustParseString(`<x/>`), nil)
	if err != nil || string(out) != "1" {
		t.Errorf("current() at top: %q %v", out, err)
	}
}

func TestDocumentFunctionWithNodeSetArg(t *testing.T) {
	loader := func(href string) (*xmldom.Node, error) {
		return xmldom.ParseString(`<doc name="` + href + `"/>`)
	}
	sheetSrc := `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
	<xsl:output omit-xml-declaration="yes"/>
	<xsl:template match="/">
		<xsl:for-each select="document(//ref)"><xsl:value-of select="/doc/@name"/>;</xsl:for-each>
	</xsl:template></xsl:stylesheet>`
	sheet, err := CompileString(sheetSrc, CompileOptions{Loader: loader})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sheet.TransformToBytes(xmldom.MustParseString(`<r><ref>a.xml</ref><ref>b.xml</ref></r>`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "a.xml;b.xml;" {
		t.Errorf("document(node-set): %q", out)
	}
	// Missing loader errors cleanly.
	sheet2, _ := CompileString(sheetSrc, CompileOptions{})
	if _, err := sheet2.Transform(xmldom.MustParseString(`<r><ref>a.xml</ref></r>`), nil); err == nil {
		t.Error("document() without loader accepted")
	}
}

func TestCompileErrorRendering(t *testing.T) {
	_, err := CompileString(`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
	<xsl:template match="a"><xsl:value-of/></xsl:template></xsl:stylesheet>`, CompileOptions{})
	if err == nil || !strings.Contains(err.Error(), "line") {
		t.Errorf("compile error rendering: %v", err)
	}
}
