package xslt

import (
	"sort"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// Read-only views of the compiled stylesheet IR for static analysis
// (internal/analysis). They expose what the dispatch and execution
// layers already computed — precedence-sorted rule lists, key and
// global declarations, referenced modes — without allowing mutation.

// TemplateRule is the read-only view of one compiled template rule.
type TemplateRule struct {
	Match    *xpath.Pattern // single-alternative pattern; nil for named-only templates
	Name     string
	Mode     string
	Priority float64
	// ImportPrec is the rule's import precedence; built-in rules sit far
	// below every user rule.
	ImportPrec int
	// Builtin marks the implicit rules of XSLT 1.0 §5.8.
	Builtin bool
	// Src is the declaring xsl:template element (nil for built-ins).
	Src *xmldom.Node
}

// ModeRules returns the compiled match rules of one mode in dispatch
// order: the first rule whose pattern matches a node wins.
func (s *Stylesheet) ModeRules(mode string) []TemplateRule {
	ts := s.templates[mode]
	out := make([]TemplateRule, 0, len(ts))
	for _, t := range ts {
		out = append(out, TemplateRule{
			Match:      t.Match,
			Name:       t.Name,
			Mode:       t.Mode,
			Priority:   t.Priority,
			ImportPrec: t.importPrec,
			Builtin:    t.src == nil,
			Src:        t.src,
		})
	}
	return out
}

// Modes returns every mode that has template rules, sorted; the default
// mode is the empty string.
func (s *Stylesheet) Modes() []string {
	out := make([]string, 0, len(s.templates))
	for mode := range s.templates {
		out = append(out, mode)
	}
	sort.Strings(out)
	return out
}

// ReferencedModes returns every mode named by an xsl:apply-templates in
// the stylesheet, sorted.
func (s *Stylesheet) ReferencedModes() []string {
	out := make([]string, 0, len(s.referencedModes))
	for mode := range s.referencedModes {
		out = append(out, mode)
	}
	sort.Strings(out)
	return out
}

// NamedTemplate is the read-only view of an xsl:template with a name.
type NamedTemplate struct {
	Name string
	Src  *xmldom.Node
}

// NamedTemplates returns the stylesheet's named templates sorted by name.
func (s *Stylesheet) NamedTemplates() []NamedTemplate {
	out := make([]NamedTemplate, 0, len(s.named))
	for name, t := range s.named {
		out = append(out, NamedTemplate{Name: name, Src: t.src})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// KeyDecl is the read-only view of an xsl:key declaration.
type KeyDecl struct {
	Name  string
	Match *xpath.Pattern
	Use   xpath.Expr
	Src   *xmldom.Node
}

// KeyDecls returns the stylesheet's key declarations sorted by name.
func (s *Stylesheet) KeyDecls() []KeyDecl {
	out := make([]KeyDecl, 0, len(s.keys))
	for _, k := range s.keys {
		out = append(out, KeyDecl{Name: k.name, Match: k.match, Use: k.use, Src: k.src})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// GlobalDecl is the read-only view of a top-level xsl:variable or
// xsl:param declaration.
type GlobalDecl struct {
	Name    string
	IsParam bool
	Select  xpath.Expr // nil when the declaration has a content body
}

// Globals returns the top-level variable and parameter declarations in
// declaration (evaluation) order.
func (s *Stylesheet) Globals() []GlobalDecl {
	out := make([]GlobalDecl, 0, len(s.globals))
	for _, d := range s.globals {
		g := GlobalDecl{Name: d.name, IsParam: d.isParam}
		if d.sel != nil {
			// Assign only non-nil selects: a typed-nil *Compiled inside the
			// interface would defeat callers' == nil checks.
			g.Select = d.sel
		}
		out = append(out, g)
	}
	return out
}

// AttrSetNames returns the declared xsl:attribute-set names, sorted.
func (s *Stylesheet) AttrSetNames() []string {
	out := make([]string, 0, len(s.attrSets))
	for name := range s.attrSets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ExprNamespaces returns the prefix bindings visible to expressions.
// The returned map is shared; callers must not mutate it.
func (s *Stylesheet) ExprNamespaces() map[string]string { return s.exprNS }
