package xslt_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"goldweb/internal/core"
	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
	"goldweb/internal/xslt"
)

// The bytecode VM must be invisible: for every model × stylesheet ×
// engine-mode combination, the lowered program and the tree-walking
// reference must produce byte-identical output — principal document,
// xsl:document outputs, document order and messages alike.

// diffSheets are the stylesheets the differential suite runs: the two
// embedded presentations plus hand-written sheets covering constructs
// the builtins do not reach (apply-imports, attribute sets, copy,
// xsl:number, messages, captures, parameter defaults).
func diffSheets(t *testing.T) map[string]*xslt.Stylesheet {
	t.Helper()
	srcs := map[string]string{
		"single": core.SingleXSL,
		"multi":  core.MultiXSL,
		"constructs": `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:attribute-set name="base"><xsl:attribute name="data-k">v-<xsl:value-of select="name()"/></xsl:attribute></xsl:attribute-set>
<xsl:template match="/">
  <root>
    <xsl:comment>head</xsl:comment>
    <xsl:processing-instruction name="pi">payload</xsl:processing-instruction>
    <xsl:apply-templates select="*"/>
    <xsl:call-template name="named"><xsl:with-param name="p" select="'passed'"/></xsl:call-template>
    <xsl:call-template name="named"/>
  </root>
</xsl:template>
<xsl:template match="*">
  <xsl:variable name="depth" select="count(ancestor::*)"/>
  <item d="{$depth}" xsl:use-attribute-sets="base">
    <xsl:attribute name="n"><xsl:value-of select="name()"/>-<xsl:number format="01"/></xsl:attribute>
    <xsl:if test="@id"><id><xsl:value-of select="@id"/></id></xsl:if>
    <xsl:choose>
      <xsl:when test="count(*) &gt; 2"><big/></xsl:when>
      <xsl:when test="count(*) = 0"><leaf><xsl:copy-of select="@*"/></leaf></xsl:when>
      <xsl:otherwise><mid/></xsl:otherwise>
    </xsl:choose>
    <xsl:for-each select="*">
      <xsl:sort select="name()" order="descending"/>
      <xsl:element name="s-{position()}"><xsl:value-of select="name()"/></xsl:element>
    </xsl:for-each>
    <xsl:copy><xsl:apply-templates select="*" mode="copy"/></xsl:copy>
    <xsl:apply-templates select="*"/>
  </item>
</xsl:template>
<xsl:template match="*" mode="copy"><xsl:copy/></xsl:template>
<xsl:template name="named">
  <xsl:param name="p" select="'default'"/>
  <xsl:message>saw <xsl:value-of select="$p"/></xsl:message>
  <named p="{$p}"/>
</xsl:template>
</xsl:stylesheet>`,
	}
	out := map[string]*xslt.Stylesheet{}
	for name, src := range srcs {
		s, err := xslt.CompileStylesheetString(src, xslt.CompileOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Program() == nil {
			t.Fatalf("%s: CompileStylesheetString produced no program", name)
		}
		out[name] = s
	}

	// Import precedence + xsl:apply-imports, which need a loader.
	imported := `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="*"><base n="{name()}"><xsl:apply-templates select="*"/></base></xsl:template>
</xsl:stylesheet>`
	main := `<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:import href="base.xsl"/>
<xsl:template match="/"><doc><xsl:apply-templates select="*"/></doc></xsl:template>
<xsl:template match="*[@id]"><wrap id="{@id}"><xsl:apply-imports/></wrap></xsl:template>
</xsl:stylesheet>`
	loader := func(href string) (*xmldom.Node, error) { return xmldom.ParseString(imported) }
	s, err := xslt.CompileStylesheetString(main, xslt.CompileOptions{Loader: loader})
	if err != nil {
		t.Fatalf("imports: %v", err)
	}
	out["imports"] = s
	return out
}

// diffDocs loads every example model, frozen and unfrozen.
func diffDocs(t *testing.T) map[string]*xmldom.Node {
	t.Helper()
	models, err := filepath.Glob("../../examples/models/*.xml")
	if err != nil || len(models) == 0 {
		t.Fatalf("no example models found: %v", err)
	}
	docs := map[string]*xmldom.Node{}
	for _, path := range models {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := xmldom.Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		frozen, err := xmldom.Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		frozen.Freeze()
		base := filepath.Base(path)
		docs[base] = plain
		docs[base+"/frozen"] = frozen
	}
	return docs
}

func TestBytecodeVsTreeBuffers(t *testing.T) {
	params := map[string]xpath.Value{"base": xpath.String("page")}
	for sheetName, sheet := range diffSheets(t) {
		for docName, doc := range diffDocs(t) {
			got, gotErr := sheet.TransformToBuffers(doc, params)
			want, wantErr := sheet.TransformToBuffersReference(doc, params)
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("%s × %s: VM err=%v, tree err=%v", sheetName, docName, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if !bytes.Equal(got.Main, want.Main) {
				t.Fatalf("%s × %s: main output diverges\n--- vm ---\n%s\n--- tree ---\n%s",
					sheetName, docName, got.Main, want.Main)
			}
			if !reflect.DeepEqual(got.DocumentOrder, want.DocumentOrder) {
				t.Fatalf("%s × %s: document order %v vs %v", sheetName, docName, got.DocumentOrder, want.DocumentOrder)
			}
			for href := range want.Documents {
				if !bytes.Equal(got.Documents[href], want.Documents[href]) {
					t.Fatalf("%s × %s: document %q diverges", sheetName, docName, href)
				}
			}
			if len(got.Documents) != len(want.Documents) {
				t.Fatalf("%s × %s: %d documents vs %d", sheetName, docName, len(got.Documents), len(want.Documents))
			}
			if !reflect.DeepEqual(got.Messages, want.Messages) {
				t.Fatalf("%s × %s: messages %v vs %v", sheetName, docName, got.Messages, want.Messages)
			}
		}
	}
}

func TestBytecodeVsTreeDOM(t *testing.T) {
	params := map[string]xpath.Value{"base": xpath.String("page")}
	for sheetName, sheet := range diffSheets(t) {
		for docName, doc := range diffDocs(t) {
			got, gotErr := sheet.Transform(doc, params)
			want, wantErr := sheet.TransformReference(doc, params)
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("%s × %s: VM err=%v, tree err=%v", sheetName, docName, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if !bytes.Equal(got.MainBytes(), want.MainBytes()) {
				t.Fatalf("%s × %s: main DOM output diverges", sheetName, docName)
			}
			if !reflect.DeepEqual(got.DocumentOrder, want.DocumentOrder) {
				t.Fatalf("%s × %s: document order %v vs %v", sheetName, docName, got.DocumentOrder, want.DocumentOrder)
			}
			for href := range want.Documents {
				if !bytes.Equal(got.DocBytes(href), want.DocBytes(href)) {
					t.Fatalf("%s × %s: document %q diverges", sheetName, docName, href)
				}
			}
			if !reflect.DeepEqual(got.Messages, want.Messages) {
				t.Fatalf("%s × %s: messages %v vs %v", sheetName, docName, got.Messages, want.Messages)
			}
		}
	}
}

// TestBufferMatchesDOM closes the triangle: the streamed VM rendering must
// equal the serialized VM result tree.
func TestBufferMatchesDOM(t *testing.T) {
	params := map[string]xpath.Value{"base": xpath.String("page")}
	for sheetName, sheet := range diffSheets(t) {
		for docName, doc := range diffDocs(t) {
			buf, err := sheet.TransformToBuffers(doc, params)
			if err != nil {
				t.Fatalf("%s × %s: %v", sheetName, docName, err)
			}
			dom, err := sheet.Transform(doc, params)
			if err != nil {
				t.Fatalf("%s × %s: %v", sheetName, docName, err)
			}
			if !bytes.Equal(buf.Main, dom.MainBytes()) {
				t.Fatalf("%s × %s: streamed and DOM rendering diverge", sheetName, docName)
			}
		}
	}
}
