package xslt_test

import (
	"testing"

	"goldweb/internal/analysis/verify"
	"goldweb/internal/xslt"
)

// TestProgramCorpusVerifies proves every program in the golden
// disassembly corpus — the set covering every opcode the compiler can
// emit — passes the static verifier clean: structure, frame balance,
// jump tables and the IR of every reachable expression.
func TestProgramCorpusVerifies(t *testing.T) {
	for _, c := range programCorpus {
		s, err := xslt.CompileStylesheetString(c.src, xslt.CompileOptions{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if fs := verify.Program(s.Program()); len(fs) != 0 {
			t.Errorf("%s: verifier findings on healthy program:", c.name)
			for _, f := range fs {
				t.Errorf("  %s", f)
			}
		}
	}
}

// TestProgramCorpusIRBounds spot-checks that every compiled expression
// the corpus programs reach verifies individually — the same walk
// verify.Program batches, kept separate so an IR regression names the
// failing expression directly.
func TestProgramCorpusIRBounds(t *testing.T) {
	for _, c := range programCorpus {
		s, err := xslt.CompileStylesheetString(c.src, xslt.CompileOptions{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, x := range s.Program().Exprs() {
			if err := x.VerifyIR(); err != nil {
				t.Errorf("%s: %v", c.name, err)
			}
		}
	}
}
