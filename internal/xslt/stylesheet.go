// Package xslt implements an XSLT 1.0 processor subset, extended with the
// xsl:document instruction from the XSLT 1.1 working draft that the paper
// uses to emit one HTML page per fact class and dimension class.
//
// Supported top-level elements: xsl:template (match/name/mode/priority),
// xsl:output, xsl:variable, xsl:param, xsl:key, xsl:include, xsl:import,
// xsl:strip-space, xsl:preserve-space, xsl:attribute-set. Supported
// instructions: apply-templates,
// call-template, apply-imports, for-each, value-of, text, element,
// attribute, copy, copy-of, if, choose/when/otherwise, variable, param,
// with-param, sort, number (basic), message, comment,
// processing-instruction, fallback, and document (XSLT 1.1). Unsupported
// constructs produce a compile-time error rather than being silently
// ignored.
package xslt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// Namespace is the XSLT namespace URI.
const Namespace = "http://www.w3.org/1999/XSL/Transform"

// Loader resolves hrefs for xsl:include, xsl:import and the document()
// function. Implementations typically serve embedded assets or files.
type Loader func(href string) (*xmldom.Node, error)

// CompileError reports a problem in a stylesheet.
type CompileError struct {
	Element *xmldom.Node
	// Line and Col locate the problem in the stylesheet source (1-based).
	// When zero they are derived from Element, so diagnostics and lint
	// findings share one file:line:col position format.
	Line, Col int
	Msg       string
	// TemplateName, TemplateMatch and TemplateMode identify the template
	// whose body the error occurred in, when known, so a diagnostic in a
	// large stylesheet names its owning rule.
	TemplateName  string
	TemplateMatch string
	TemplateMode  string
}

// Rule renders the owning template's identity (e.g. `template
// match="fact" mode="toc"` or `template name="header"`), or "" when the
// error is not inside a template.
func (e *CompileError) Rule() string {
	var b strings.Builder
	if e.TemplateName != "" {
		fmt.Fprintf(&b, `template name=%q`, e.TemplateName)
	}
	if e.TemplateMatch != "" {
		if b.Len() == 0 {
			b.WriteString("template")
		}
		fmt.Fprintf(&b, ` match=%q`, e.TemplateMatch)
	}
	if b.Len() == 0 {
		return ""
	}
	if e.TemplateMode != "" {
		fmt.Fprintf(&b, ` mode=%q`, e.TemplateMode)
	}
	return b.String()
}

// Position returns the 1-based source position of the error, falling
// back to the offending element's recorded position.
func (e *CompileError) Position() (line, col int) {
	if e.Line > 0 {
		return e.Line, e.Col
	}
	if e.Element != nil {
		return e.Element.Line, e.Element.Col
	}
	return 0, 0
}

func (e *CompileError) Error() string {
	line, col := e.Position()
	msg := e.Msg
	if rule := e.Rule(); rule != "" {
		msg += " (in " + rule + ")"
	}
	if e.Element != nil {
		return fmt.Sprintf("xslt: %s (at %s, line %d, col %d)", msg, e.Element.Path(), line, col)
	}
	if line > 0 {
		return fmt.Sprintf("xslt: %s (line %d, col %d)", msg, line, col)
	}
	return "xslt: " + msg
}

// OutputSpec mirrors xsl:output.
type OutputSpec struct {
	// Method is "xml" (default), "html" or "text".
	Method string
	// MethodExplicit records whether the stylesheet declared the method;
	// when false and the result root element is html, serialization
	// switches to the html method per XSLT 1.0 §16.
	MethodExplicit bool
	Indent         bool
	OmitDecl       bool
	DoctypePublic  string
	DoctypeSystem  string
	MediaType      string
}

// Template is a compiled template rule.
type Template struct {
	Match      *xpath.Pattern // nil for named-only templates
	Name       string
	Mode       string
	Priority   float64
	params     []*compiledVar
	body       []instruction
	importPrec int
	order      int
	src        *xmldom.Node // declaring xsl:template element; nil for built-in rules
	// entryPC is the pc of the template's body in the lowered bytecode
	// program (the jump-table target); set by Stylesheet.lower.
	entryPC int32
}

type keyDecl struct {
	name  string
	match *xpath.Pattern
	use   *xpath.Compiled
	src   *xmldom.Node // declaring xsl:key element
}

// Stylesheet is a compiled XSLT stylesheet. Once compiled it is
// read-only: all per-run state lives in the transformation engine, so a
// single Stylesheet is safe for concurrent Transform calls (the source
// document must likewise be shareable — frozen, or never mutated).
type Stylesheet struct {
	templates map[string][]*Template // per mode, sorted best-first
	// index buckets each mode's sorted rules by the node categories their
	// match patterns can reach, so findTemplate scans only candidates.
	index     map[string]*templateIndex
	named     map[string]*Template
	globals   []*compiledVar
	keys      map[string]*keyDecl
	output    OutputSpec
	strip     []stripSpec
	preserve  []stripSpec
	loader    Loader
	nextOrder int

	// exprNS maps prefixes used inside expressions to namespace URIs.
	// Bindings are collected from xmlns declarations on stylesheet
	// elements (root and literal result elements).
	exprNS map[string]string
	// referencedModes records every mode named by an xsl:apply-templates
	// so built-in rules can be registered for it.
	referencedModes map[string]bool
	// attrSets holds compiled xsl:attribute-set declarations by name.
	attrSets map[string]*attrSet
	// prog is the lowered bytecode program when the stylesheet was
	// compiled with CompileStylesheet; nil for tree-engine-only compiles.
	prog *Program
}

// attrSet is a compiled xsl:attribute-set: the attribute instructions it
// declares plus the names of the sets it merges in.
type attrSet struct {
	uses []string
	body []instruction
}

type stripSpec struct {
	any  bool
	name string
}

// CompileOptions configure stylesheet compilation.
type CompileOptions struct {
	// Loader resolves xsl:include / xsl:import / document() hrefs.
	// When nil, any use of those features fails.
	Loader Loader
}

// Compile compiles a stylesheet document. The document tree is retained
// and must not be mutated afterwards.
func Compile(doc *xmldom.Node, opts CompileOptions) (*Stylesheet, error) {
	root := doc.DocumentElement()
	if root == nil {
		return nil, &CompileError{Msg: "empty stylesheet document"}
	}
	if root.URI != Namespace || (root.Name != "stylesheet" && root.Name != "transform") {
		return nil, &CompileError{Element: root, Msg: "root element must be xsl:stylesheet or xsl:transform"}
	}
	s := &Stylesheet{
		templates:       map[string][]*Template{},
		named:           map[string]*Template{},
		keys:            map[string]*keyDecl{},
		output:          OutputSpec{Method: "xml"},
		loader:          opts.Loader,
		exprNS:          map[string]string{},
		referencedModes: map[string]bool{},
		attrSets:        map[string]*attrSet{},
	}
	s.collectNS(root)
	stripStylesheetSpace(root)
	if err := s.compileTopLevel(root, 0); err != nil {
		return nil, err
	}
	if err := s.addBuiltinRules(); err != nil {
		return nil, err
	}
	for mode := range s.templates {
		ts := s.templates[mode]
		sort.SliceStable(ts, func(i, j int) bool {
			if ts[i].importPrec != ts[j].importPrec {
				return ts[i].importPrec > ts[j].importPrec
			}
			if ts[i].Priority != ts[j].Priority {
				return ts[i].Priority > ts[j].Priority
			}
			// Later rules win ties.
			return ts[i].order > ts[j].order
		})
	}
	s.index = make(map[string]*templateIndex, len(s.templates))
	for mode, ts := range s.templates {
		s.index[mode] = buildTemplateIndex(ts)
	}
	return s, nil
}

// templateIndex is the per-mode dispatch index. Each bucket holds, in full
// precedence order, every template whose pattern could match a node of
// that category; elemByName/attrByName buckets merge the name-specific
// rules with the any-name ("wildcard") rules, so a single bucket scan is a
// complete search.
type templateIndex struct {
	elemByName map[xmldom.Sym][]*Template
	elemAny    []*Template // element rules with no single-name restriction
	attrByName map[xmldom.Sym][]*Template
	attrAny    []*Template
	text       []*Template
	comment    []*Template
	pi         []*Template
	doc        []*Template
}

// candidates returns the complete precedence-ordered rule list that could
// match n. Interning at index build time guarantees that a name missing
// from the symbol table has no name-specific bucket, so falling back to
// the any-name list is complete.
func (ix *templateIndex) candidates(n *xmldom.Node) []*Template {
	switch n.Type {
	case xmldom.ElementNode:
		if len(ix.elemByName) > 0 {
			if s := n.Sym(); s != 0 {
				if l, ok := ix.elemByName[s]; ok {
					return l
				}
			}
		}
		return ix.elemAny
	case xmldom.AttrNode:
		if len(ix.attrByName) > 0 {
			if s := n.Sym(); s != 0 {
				if l, ok := ix.attrByName[s]; ok {
					return l
				}
			}
		}
		return ix.attrAny
	case xmldom.TextNode:
		return ix.text
	case xmldom.CommentNode:
		return ix.comment
	case xmldom.PINode:
		return ix.pi
	case xmldom.DocumentNode:
		return ix.doc
	}
	return nil
}

// buildTemplateIndex buckets a precedence-sorted rule list by match class.
func buildTemplateIndex(list []*Template) *templateIndex {
	ix := &templateIndex{}
	var elemNamed, attrNamed map[xmldom.Sym][]*Template
	pos := make(map[*Template]int, len(list))
	for i, t := range list {
		pos[t] = i
		c := t.Match.Class()
		if c.Document {
			ix.doc = append(ix.doc, t)
		}
		if c.Text {
			ix.text = append(ix.text, t)
		}
		if c.Comment {
			ix.comment = append(ix.comment, t)
		}
		if c.PI {
			ix.pi = append(ix.pi, t)
		}
		if c.Elements {
			if c.ElemName != "" {
				if elemNamed == nil {
					elemNamed = map[xmldom.Sym][]*Template{}
				}
				sym := xmldom.Intern(c.ElemName)
				elemNamed[sym] = append(elemNamed[sym], t)
			} else {
				ix.elemAny = append(ix.elemAny, t)
			}
		}
		if c.Attrs {
			if c.AttrName != "" {
				if attrNamed == nil {
					attrNamed = map[xmldom.Sym][]*Template{}
				}
				sym := xmldom.Intern(c.AttrName)
				attrNamed[sym] = append(attrNamed[sym], t)
			} else {
				ix.attrAny = append(ix.attrAny, t)
			}
		}
	}
	if elemNamed != nil {
		ix.elemByName = make(map[xmldom.Sym][]*Template, len(elemNamed))
		for sym, own := range elemNamed {
			ix.elemByName[sym] = mergeByPos(own, ix.elemAny, pos)
		}
	}
	if attrNamed != nil {
		ix.attrByName = make(map[xmldom.Sym][]*Template, len(attrNamed))
		for sym, own := range attrNamed {
			ix.attrByName[sym] = mergeByPos(own, ix.attrAny, pos)
		}
	}
	return ix
}

// mergeByPos merges two lists that are each ordered by original position
// into one list in overall position (i.e. precedence) order.
func mergeByPos(a, b []*Template, pos map[*Template]int) []*Template {
	if len(b) == 0 {
		return a
	}
	out := make([]*Template, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if pos[a[i]] < pos[b[j]] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// CompileString parses and compiles a stylesheet from XML text.
func CompileString(src string, opts CompileOptions) (*Stylesheet, error) {
	doc, err := xmldom.ParseString(src)
	if err != nil {
		return nil, err
	}
	return Compile(doc, opts)
}

// MustCompileString compiles an embedded, known-good stylesheet.
func MustCompileString(src string) *Stylesheet {
	s, err := CompileString(src, CompileOptions{})
	if err != nil {
		panic(err)
	}
	return s
}

// Output returns the stylesheet's xsl:output specification.
func (s *Stylesheet) Output() OutputSpec { return s.output }

// collectNS records namespace bindings declared on an element for use by
// prefixed names inside expressions.
func (s *Stylesheet) collectNS(elem *xmldom.Node) {
	for _, a := range elem.Attr {
		if a.URI != xmldom.XMLNSNamespace || a.Data == Namespace {
			continue
		}
		if a.Prefix == "xmlns" {
			s.exprNS[a.Name] = a.Data
		}
	}
}

// isXSL reports whether n is an element in the XSLT namespace with the
// given local name.
func isXSL(n *xmldom.Node, name string) bool {
	return n.Type == xmldom.ElementNode && n.URI == Namespace && n.Name == name
}

// stripStylesheetSpace removes whitespace-only text nodes from the
// stylesheet tree, except inside xsl:text and xml:space="preserve" scopes.
func stripStylesheetSpace(n *xmldom.Node) {
	if isXSL(n, "text") {
		return
	}
	if a := n.GetAttrNS(xmldom.XMLNamespace, "space"); a != nil && a.Data == "preserve" {
		return
	}
	kept := n.Children[:0]
	for _, c := range n.Children {
		if c.Type == xmldom.TextNode && strings.TrimSpace(c.Data) == "" {
			continue
		}
		if c.Type == xmldom.ElementNode {
			stripStylesheetSpace(c)
		}
		kept = append(kept, c)
	}
	n.Children = kept
}

func (s *Stylesheet) compileTopLevel(root *xmldom.Node, importPrec int) error {
	// Imports first (lower precedence).
	for _, c := range root.Elements() {
		if isXSL(c, "import") {
			if err := s.loadSub(c, importPrec-1); err != nil {
				return err
			}
		}
	}
	for _, c := range root.Elements() {
		if c.URI != Namespace {
			continue // top-level non-XSLT elements are ignored (data islands)
		}
		switch c.Name {
		case "import":
			// handled above
		case "include":
			if err := s.loadSub(c, importPrec); err != nil {
				return err
			}
		case "template":
			if err := s.compileTemplate(c, importPrec); err != nil {
				return err
			}
		case "output":
			s.compileOutput(c)
		case "variable", "param":
			d, err := s.compileVarDecl(c)
			if err != nil {
				return err
			}
			s.globals = append(s.globals, d)
		case "key":
			if err := s.compileKey(c); err != nil {
				return err
			}
		case "strip-space":
			s.strip = append(s.strip, parseSpaceList(c.AttrValue("elements"))...)
		case "preserve-space":
			s.preserve = append(s.preserve, parseSpaceList(c.AttrValue("elements"))...)
		case "attribute-set":
			if err := s.compileAttrSet(c); err != nil {
				return err
			}
		case "namespace-alias", "decimal-format":
			return &CompileError{Element: c, Msg: "xsl:" + c.Name + " is not supported by this processor"}
		default:
			return &CompileError{Element: c, Msg: "unknown top-level element xsl:" + c.Name}
		}
	}
	return nil
}

func (s *Stylesheet) loadSub(c *xmldom.Node, prec int) error {
	href := c.AttrValue("href")
	if href == "" {
		return &CompileError{Element: c, Msg: "missing href"}
	}
	if s.loader == nil {
		return &CompileError{Element: c, Msg: "no loader configured for " + href}
	}
	doc, err := s.loader(href)
	if err != nil {
		return &CompileError{Element: c, Msg: "cannot load " + href + ": " + err.Error()}
	}
	sub := doc.DocumentElement()
	if sub == nil || sub.URI != Namespace {
		return &CompileError{Element: c, Msg: href + " is not a stylesheet"}
	}
	s.collectNS(sub)
	stripStylesheetSpace(sub)
	return s.compileTopLevel(sub, prec)
}

func parseSpaceList(list string) []stripSpec {
	var out []stripSpec
	for _, tok := range strings.Fields(list) {
		if tok == "*" {
			out = append(out, stripSpec{any: true})
		} else {
			out = append(out, stripSpec{name: tok})
		}
	}
	return out
}

func (s *Stylesheet) compileOutput(c *xmldom.Node) {
	if v := c.AttrValue("method"); v != "" {
		s.output.Method = v
		s.output.MethodExplicit = true
	}
	if v := c.AttrValue("indent"); v != "" {
		s.output.Indent = v == "yes"
	}
	if v := c.AttrValue("omit-xml-declaration"); v != "" {
		s.output.OmitDecl = v == "yes"
	}
	if v := c.AttrValue("doctype-public"); v != "" {
		s.output.DoctypePublic = v
	}
	if v := c.AttrValue("doctype-system"); v != "" {
		s.output.DoctypeSystem = v
	}
	if v := c.AttrValue("media-type"); v != "" {
		s.output.MediaType = v
	}
}

// compileAttrSet parses an xsl:attribute-set declaration. Same-named
// declarations merge (later attributes win at execution time, since they
// are applied in order and SetAttr overwrites).
func (s *Stylesheet) compileAttrSet(c *xmldom.Node) error {
	name := c.AttrValue("name")
	if name == "" {
		return &CompileError{Element: c, Msg: "xsl:attribute-set requires a name"}
	}
	set := s.attrSets[name]
	if set == nil {
		set = &attrSet{}
		s.attrSets[name] = set
	}
	set.uses = append(set.uses, splitNames(c.AttrValue("use-attribute-sets"))...)
	for _, child := range c.Elements() {
		if !isXSL(child, "attribute") {
			return &CompileError{Element: child, Msg: "xsl:attribute-set may only contain xsl:attribute"}
		}
		ins, err := s.compileElement(child)
		if err != nil {
			return err
		}
		set.body = append(set.body, ins)
	}
	return nil
}

func splitNames(list string) []string {
	return strings.Fields(list)
}

func (s *Stylesheet) compileKey(c *xmldom.Node) error {
	name := c.AttrValue("name")
	match := c.AttrValue("match")
	use := c.AttrValue("use")
	if name == "" || match == "" || use == "" {
		return &CompileError{Element: c, Msg: "xsl:key requires name, match and use"}
	}
	pat, err := xpath.CompilePattern(match)
	if err != nil {
		return exprError(c, "match", err)
	}
	useExpr, err := xpath.Compile(use)
	if err != nil {
		return exprError(c, "use", err)
	}
	s.keys[name] = &keyDecl{name: name, match: pat, use: useExpr, src: c}
	return nil
}

func (s *Stylesheet) compileTemplate(c *xmldom.Node, importPrec int) error {
	s.collectNS(c)
	name := c.AttrValue("name")
	match := c.AttrValue("match")
	if name == "" && match == "" {
		return &CompileError{Element: c, Msg: "xsl:template requires match or name"}
	}
	mode := c.AttrValue("mode")
	var params []*compiledVar
	rest := c.Children
	for len(rest) > 0 && isXSL(rest[0], "param") {
		d, err := s.compileVarDecl(rest[0])
		if err != nil {
			return tagTemplateError(err, name, match, mode)
		}
		params = append(params, d)
		rest = rest[1:]
	}
	body, err := s.compileBody(rest)
	if err != nil {
		return tagTemplateError(err, name, match, mode)
	}
	base := &Template{Name: name, Mode: mode, params: params, body: body, importPrec: importPrec, src: c}
	if name != "" {
		if _, dup := s.named[name]; dup {
			return &CompileError{Element: c, Msg: "duplicate template name " + name}
		}
		s.named[name] = base
	}
	if match == "" {
		return nil
	}
	pat, err := xpath.CompilePattern(match)
	if err != nil {
		return exprError(c, "match", err)
	}
	explicitPrio := c.AttrValue("priority")
	// A union pattern behaves as separate rules, one per alternative, each
	// with its own default priority.
	for _, alt := range pat.Alternatives() {
		t := *base
		t.Match = alt
		if explicitPrio != "" {
			p, err := strconv.ParseFloat(explicitPrio, 64)
			if err != nil {
				return &CompileError{Element: c, Msg: "bad priority " + explicitPrio}
			}
			t.Priority = p
		} else {
			t.Priority = alt.DefaultPriority()
		}
		s.nextOrder++
		t.order = s.nextOrder
		s.templates[mode] = append(s.templates[mode], &t)
	}
	return nil
}

// tagTemplateError stamps a body compile error with the owning
// template's identity, unless an inner declaration already claimed it.
func tagTemplateError(err error, name, match, mode string) error {
	if ce, ok := err.(*CompileError); ok && ce.TemplateName == "" && ce.TemplateMatch == "" {
		ce.TemplateName = name
		ce.TemplateMatch = match
		ce.TemplateMode = mode
	}
	return err
}

// builtinDoc supplies the implicit template rules of XSLT 1.0 §5.8.
const builtinDoc = `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
<xsl:template match="*|/"><xsl:apply-templates/></xsl:template>
<xsl:template match="text()|@*"><xsl:value-of select="."/></xsl:template>
<xsl:template match="processing-instruction()|comment()"/>
</xsl:stylesheet>`

func (s *Stylesheet) addBuiltinRules() error {
	doc := xmldom.MustParseString(builtinDoc)
	root := doc.DocumentElement()
	stripStylesheetSpace(root)
	modes := map[string]bool{"": true}
	for mode := range s.templates {
		modes[mode] = true
	}
	for mode := range s.referencedModes {
		modes[mode] = true
	}
	for mode := range modes {
		for _, c := range root.Elements() {
			body, err := s.compileBody(c.Children)
			if err != nil {
				return err
			}
			// The built-in element rule must propagate the current mode.
			if len(body) == 1 {
				if at, ok := body[0].(*iApplyTemplates); ok {
					at.mode = mode
				}
			}
			pat := xpath.MustCompilePattern(c.AttrValue("match"))
			for _, alt := range pat.Alternatives() {
				s.nextOrder++
				s.templates[mode] = append(s.templates[mode], &Template{
					Match:      alt,
					Mode:       mode,
					Priority:   alt.DefaultPriority(),
					body:       body,
					importPrec: -1 << 30, // below any user rule
					order:      -s.nextOrder,
				})
			}
		}
	}
	return nil
}

// shouldStrip decides whether whitespace-only text under the named source
// element is stripped, per xsl:strip-space / xsl:preserve-space.
func (s *Stylesheet) shouldStrip(elemName string) bool {
	explicit := func(specs []stripSpec) bool {
		for _, sp := range specs {
			if !sp.any && sp.name == elemName {
				return true
			}
		}
		return false
	}
	wildcard := func(specs []stripSpec) bool {
		for _, sp := range specs {
			if sp.any {
				return true
			}
		}
		return false
	}
	if explicit(s.preserve) {
		return false
	}
	if explicit(s.strip) {
		return true
	}
	if wildcard(s.preserve) {
		return false
	}
	return wildcard(s.strip)
}
