package xslt

import (
	"fmt"
	"sort"
	"strings"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// Result holds the outcome of a transformation: the principal result
// document, any additional documents created with xsl:document, and the
// messages emitted with xsl:message.
type Result struct {
	Main *xmldom.Node
	// Documents maps xsl:document hrefs to their result trees, in
	// DocumentOrder.
	Documents     map[string]*xmldom.Node
	DocumentOrder []string
	Output        OutputSpec
	Messages      []string
}

// MainBytes serializes the principal result document per the stylesheet's
// output specification.
func (r *Result) MainBytes() []byte { return SerializeResult(r.Main, r.Output) }

// DocBytes serializes one xsl:document output.
func (r *Result) DocBytes(href string) []byte {
	doc := r.Documents[href]
	if doc == nil {
		return nil
	}
	return SerializeResult(doc, r.Output)
}

// SerializeResult renders a result tree according to an output spec,
// applying the XSLT 1.0 §16 html-method auto-detection when the method was
// not declared explicitly.
func SerializeResult(doc *xmldom.Node, spec OutputSpec) []byte {
	method := spec.Method
	if !spec.MethodExplicit {
		if root := doc.DocumentElement(); root != nil &&
			strings.EqualFold(root.Name, "html") && root.URI == "" {
			method = "html"
		}
	}
	opts := xmldom.WriteOptions{
		Method:        method,
		OmitDecl:      spec.OmitDecl || method != "xml",
		DoctypePublic: spec.DoctypePublic,
		DoctypeSystem: spec.DoctypeSystem,
	}
	if spec.Indent {
		opts.Indent = "  "
	}
	return []byte(xmldom.SerializeToString(doc, opts))
}

// TransformError reports a runtime transformation failure.
type TransformError struct {
	Msg string
}

func (e *TransformError) Error() string { return "xslt: " + e.Msg }

// maxDepth bounds template recursion to fail cleanly on runaway
// stylesheets.
const maxDepth = 800

// xctx is the execution context of the transformation.
type xctx struct {
	node      *xmldom.Node
	pos, size int
	vars      map[string]xpath.Value
	mode      string
	// curPrec is the import precedence of the template rule whose body is
	// executing; xsl:apply-imports searches strictly below it.
	curPrec int
}

type engine struct {
	sheet  *Stylesheet
	result *Result
	genIDs map[*xmldom.Node]string
	genSeq int
	// docNums numbers frozen documents in first-seen order so that
	// generate-id() on frozen nodes is a pure function of (document,
	// stamp) — deterministic across runs, no per-node map growth.
	docNums  map[*xmldom.DocIndex]int
	keyIdx   map[*xmldom.Node]map[string]map[string][]*xmldom.Node
	funcs    map[string]xpath.Function
	docCache map[string]*xmldom.Node
	depth    int
}

// Transform applies the stylesheet to a source document. params provides
// values for global xsl:param declarations. The source tree is not
// modified (whitespace stripping, when requested by the stylesheet,
// operates on a clone), so a frozen (xmldom.Freeze) source document and
// a compiled Stylesheet may be shared by concurrent Transform calls —
// all per-run state lives in the engine.
func (s *Stylesheet) Transform(source *xmldom.Node, params map[string]xpath.Value) (*Result, error) {
	if source.Type != xmldom.DocumentNode {
		root := xmldom.NewDocument()
		root.AppendChild(source.Clone())
		xmldom.Freeze(root) // engine-owned wrapper: index it for stamp ordering
		source = root
	} else if len(s.strip) > 0 {
		source = source.Clone()
		s.stripSourceSpace(source)
		xmldom.Freeze(source) // engine-owned clone, read-only from here on
	}
	e := &engine{
		sheet: s,
		result: &Result{
			Main:      xmldom.NewDocument(),
			Documents: map[string]*xmldom.Node{},
			Output:    s.output,
		},
		genIDs:   map[*xmldom.Node]string{},
		docNums:  map[*xmldom.DocIndex]int{},
		keyIdx:   map[*xmldom.Node]map[string]map[string][]*xmldom.Node{},
		docCache: map[string]*xmldom.Node{},
	}
	e.installFunctions()

	// Evaluate global variables and parameters in declaration order.
	globals := map[string]xpath.Value{}
	gctx := &xctx{node: source, pos: 1, size: 1, vars: globals}
	for _, d := range s.globals {
		if d.isParam {
			if v, ok := params[d.name]; ok {
				globals[d.name] = v
				continue
			}
		}
		v, err := e.evalVarValue(d.sel, d.body, gctx)
		if err != nil {
			return nil, err
		}
		globals[d.name] = v
	}
	// Unknown caller params for which no xsl:param exists are still made
	// visible, which is convenient for parameterized presentations.
	for name, v := range params {
		if _, ok := globals[name]; !ok {
			globals[name] = v
		}
	}

	ctx := &xctx{node: source, pos: 1, size: 1, vars: globals}
	if err := e.applyTemplates([]*xmldom.Node{source}, ctx, "", nil, nil, e.result.Main); err != nil {
		return nil, err
	}
	return e.result, nil
}

// TransformToBytes is Transform followed by MainBytes.
func (s *Stylesheet) TransformToBytes(source *xmldom.Node, params map[string]xpath.Value) ([]byte, error) {
	r, err := s.Transform(source, params)
	if err != nil {
		return nil, err
	}
	return r.MainBytes(), nil
}

// stripSourceSpace removes whitespace-only text nodes under elements
// selected by xsl:strip-space.
func (s *Stylesheet) stripSourceSpace(n *xmldom.Node) {
	if n.Type == xmldom.ElementNode || n.Type == xmldom.DocumentNode {
		strip := n.Type == xmldom.ElementNode && s.shouldStrip(n.Name)
		if n.Type == xmldom.ElementNode {
			if a := n.GetAttrNS(xmldom.XMLNamespace, "space"); a != nil && a.Data == "preserve" {
				strip = false
			}
		}
		kept := n.Children[:0]
		for _, c := range n.Children {
			if strip && c.Type == xmldom.TextNode && strings.TrimSpace(c.Data) == "" {
				continue
			}
			s.stripSourceSpace(c)
			kept = append(kept, c)
		}
		n.Children = kept
	}
}

// xpathCtx builds an XPath evaluation context mirroring the execution
// context.
func (e *engine) xpathCtx(ctx *xctx) *xpath.Context {
	return &xpath.Context{
		Node:     ctx.node,
		Position: ctx.pos,
		Size:     ctx.size,
		Vars:     ctx.vars,
		Funcs:    e.funcs,
		NS:       e.sheet.exprNS,
		Current:  ctx.node,
	}
}

// evalVarValue computes the value of a variable/param: either its select
// expression or its body as a result tree fragment (represented as a
// node-set containing a synthetic document node, which this processor
// also allows to be used where node-sets are expected, like the common
// exsl:node-set extension).
func (e *engine) evalVarValue(sel xpath.Expr, body []instruction, ctx *xctx) (xpath.Value, error) {
	if sel != nil {
		return sel.Eval(e.xpathCtx(ctx))
	}
	if len(body) == 0 {
		return xpath.String(""), nil
	}
	frag := xmldom.NewDocument()
	if err := e.executeBody(body, ctx, frag); err != nil {
		return nil, err
	}
	return xpath.NodeSet{frag}, nil
}

// executeBody runs a compiled instruction sequence. Variable declarations
// create a copy-on-write scope so bindings are visible only to following
// siblings and their descendants.
func (e *engine) executeBody(body []instruction, ctx *xctx, out *xmldom.Node) error {
	e.depth++
	defer func() { e.depth-- }()
	if e.depth > maxDepth {
		return &TransformError{Msg: "maximum instruction depth exceeded (circular templates?)"}
	}
	local := ctx
	for _, ins := range body {
		if v, ok := ins.(*iVariable); ok {
			if local == ctx {
				cp := *ctx
				cp.vars = copyVars(ctx.vars)
				local = &cp
			}
			if _, exists := local.vars[v.decl.name]; exists {
				// Shadowing within one scope level is an XSLT error; we
				// allow shadowing across scopes (new map already copied).
			}
			val, err := e.evalVarValue(v.decl.sel, v.decl.body, local)
			if err != nil {
				return err
			}
			local.vars[v.decl.name] = val
			continue
		}
		if err := ins.exec(e, local, out); err != nil {
			return err
		}
	}
	return nil
}

func copyVars(m map[string]xpath.Value) map[string]xpath.Value {
	cp := make(map[string]xpath.Value, len(m)+4)
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// findTemplate returns the highest-precedence template matching node in
// the given mode whose import precedence is strictly below maxPrec
// (pass maxInt for an unrestricted search).
func (e *engine) findTemplate(node *xmldom.Node, mode string, ctx *xctx, maxPrec int) (*Template, error) {
	list := e.sheet.templates[mode]
	pctx := e.xpathCtx(ctx)
	pctx.Node = node
	for _, t := range list {
		if t.importPrec >= maxPrec {
			continue
		}
		ok, err := t.Match.Matches(pctx, node)
		if err != nil {
			return nil, err
		}
		if ok {
			return t, nil
		}
	}
	return nil, nil
}

// applyTemplates processes each node of list with its best-matching
// template. sorts reorder the list; params become template parameters.
func (e *engine) applyTemplates(list []*xmldom.Node, ctx *xctx, mode string,
	sorts []sortKey, params []withParam, out *xmldom.Node) error {
	var err error
	if len(sorts) > 0 {
		list, err = e.sortNodes(list, sorts, ctx)
		if err != nil {
			return err
		}
	}
	passed, err := e.evalWithParams(params, ctx)
	if err != nil {
		return err
	}
	size := len(list)
	for i, n := range list {
		t, err := e.findTemplate(n, mode, ctx, maxInt)
		if err != nil {
			return err
		}
		if t == nil {
			continue // no rule at all (should not happen: built-ins exist)
		}
		sub := &xctx{node: n, pos: i + 1, size: size, vars: ctx.vars, mode: mode}
		if err := e.invokeTemplate(t, sub, passed, out); err != nil {
			return err
		}
	}
	return nil
}

const maxInt = int(^uint(0) >> 1)

// invokeTemplate binds parameters and runs a template body, recording the
// template's import precedence for xsl:apply-imports.
func (e *engine) invokeTemplate(t *Template, ctx *xctx, passed map[string]xpath.Value, out *xmldom.Node) error {
	cp := *ctx
	cp.curPrec = t.importPrec
	if len(t.params) > 0 || len(passed) > 0 {
		cp.vars = copyVars(ctx.vars)
		for _, p := range t.params {
			if v, ok := passed[p.name]; ok {
				cp.vars[p.name] = v
				continue
			}
			v, err := e.evalVarValue(p.sel, p.body, ctx)
			if err != nil {
				return err
			}
			cp.vars[p.name] = v
		}
	}
	return e.executeBody(t.body, &cp, out)
}

func (ins *iApplyImports) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	t, err := e.findTemplate(ctx.node, ctx.mode, ctx, ctx.curPrec)
	if err != nil {
		return err
	}
	if t == nil {
		return nil // no lower-precedence rule: no output (built-ins exist below user rules)
	}
	return e.invokeTemplate(t, ctx, nil, out)
}

func (e *engine) evalWithParams(params []withParam, ctx *xctx) (map[string]xpath.Value, error) {
	if len(params) == 0 {
		return nil, nil
	}
	out := make(map[string]xpath.Value, len(params))
	for _, p := range params {
		v, err := e.evalVarValue(p.sel, p.body, ctx)
		if err != nil {
			return nil, err
		}
		out[p.name] = v
	}
	return out, nil
}

// applyAttrSets executes the named xsl:attribute-sets onto elem, merged
// sets first so directly-declared attributes win. seen guards against
// circular use-attribute-sets references.
func (e *engine) applyAttrSets(names []string, ctx *xctx, elem *xmldom.Node, seen map[string]bool) error {
	if len(names) == 0 {
		return nil
	}
	if seen == nil {
		seen = map[string]bool{}
	}
	for _, name := range names {
		set := e.sheet.attrSets[name]
		if set == nil {
			return &TransformError{Msg: "no xsl:attribute-set named " + name}
		}
		if seen[name] {
			return &TransformError{Msg: "circular use-attribute-sets through " + name}
		}
		seen[name] = true
		if err := e.applyAttrSets(set.uses, ctx, elem, seen); err != nil {
			return err
		}
		if err := e.executeBody(set.body, ctx, elem); err != nil {
			return err
		}
		seen[name] = false
	}
	return nil
}

// sortNodes orders a node list by the given sort keys.
func (e *engine) sortNodes(list []*xmldom.Node, sorts []sortKey, ctx *xctx) ([]*xmldom.Node, error) {
	type entry struct {
		n    *xmldom.Node
		keys []string
		nums []float64
	}
	numeric := make([]bool, len(sorts))
	descending := make([]bool, len(sorts))
	for i, k := range sorts {
		if k.dataType != nil {
			v, err := k.dataType.eval(e, ctx)
			if err != nil {
				return nil, err
			}
			numeric[i] = v == "number"
		}
		if k.order != nil {
			v, err := k.order.eval(e, ctx)
			if err != nil {
				return nil, err
			}
			descending[i] = v == "descending"
		}
	}
	entries := make([]entry, len(list))
	size := len(list)
	for i, n := range list {
		ent := entry{n: n}
		sub := &xctx{node: n, pos: i + 1, size: size, vars: ctx.vars, mode: ctx.mode}
		for j, k := range sorts {
			v, err := k.sel.Eval(e.xpathCtx(sub))
			if err != nil {
				return nil, err
			}
			if numeric[j] {
				ent.nums = append(ent.nums, xpath.ToNumber(v))
				ent.keys = append(ent.keys, "")
			} else {
				ent.keys = append(ent.keys, xpath.ToString(v))
				ent.nums = append(ent.nums, 0)
			}
		}
		entries[i] = ent
	}
	sort.SliceStable(entries, func(a, b int) bool {
		for j := range sorts {
			var cmp int
			if numeric[j] {
				x, y := entries[a].nums[j], entries[b].nums[j]
				switch {
				case x < y:
					cmp = -1
				case x > y:
					cmp = 1
				}
			} else {
				cmp = strings.Compare(entries[a].keys[j], entries[b].keys[j])
			}
			if cmp == 0 {
				continue
			}
			if descending[j] {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	out := make([]*xmldom.Node, len(entries))
	for i, ent := range entries {
		out[i] = ent.n
	}
	return out, nil
}

// ---- instruction implementations ----

func (ins *iLiteralText) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	out.AddText(ins.data)
	return nil
}

func (ins *iText) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	t := out.AddText(ins.data)
	t.Raw = ins.disableEsc
	return nil
}

func (ins *iLiteralElement) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	elem := &xmldom.Node{Type: xmldom.ElementNode, Name: ins.name, Prefix: ins.prefix, URI: ins.uri}
	out.AppendChild(elem)
	if err := e.applyAttrSets(ins.useSets, ctx, elem, nil); err != nil {
		return err
	}
	for _, a := range ins.attrs {
		v, err := a.value.eval(e, ctx)
		if err != nil {
			return err
		}
		elem.SetAttrNS(a.prefix, a.uri, a.name, v)
	}
	return e.executeBody(ins.body, ctx, elem)
}

func (ins *iValueOf) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	v, err := ins.sel.Eval(e.xpathCtx(ctx))
	if err != nil {
		return err
	}
	s := xpath.ToString(v)
	if s == "" {
		return nil
	}
	t := out.AddText(s)
	t.Raw = ins.disableEsc
	return nil
}

func (ins *iApplyTemplates) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	var list []*xmldom.Node
	if ins.sel != nil {
		v, err := ins.sel.Eval(e.xpathCtx(ctx))
		if err != nil {
			return err
		}
		ns, ok := v.(xpath.NodeSet)
		if !ok {
			return &TransformError{Msg: "apply-templates select does not yield a node-set"}
		}
		list = ns
	} else {
		list = append(list, ctx.node.Children...)
	}
	return e.applyTemplates(list, ctx, ins.mode, ins.sorts, ins.params, out)
}

func (ins *iCallTemplate) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	t := e.sheet.named[ins.name]
	if t == nil {
		return &TransformError{Msg: "call-template: no template named " + ins.name}
	}
	passed, err := e.evalWithParams(ins.params, ctx)
	if err != nil {
		return err
	}
	return e.invokeTemplate(t, ctx, passed, out)
}

func (ins *iForEach) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	v, err := ins.sel.Eval(e.xpathCtx(ctx))
	if err != nil {
		return err
	}
	ns, ok := v.(xpath.NodeSet)
	if !ok {
		return &TransformError{Msg: "for-each select does not yield a node-set"}
	}
	list := []*xmldom.Node(ns)
	if len(ins.sorts) > 0 {
		list, err = e.sortNodes(list, ins.sorts, ctx)
		if err != nil {
			return err
		}
	}
	size := len(list)
	for i, n := range list {
		sub := &xctx{node: n, pos: i + 1, size: size, vars: ctx.vars, mode: ctx.mode}
		if err := e.executeBody(ins.body, sub, out); err != nil {
			return err
		}
	}
	return nil
}

func (ins *iElement) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	name, err := ins.name.eval(e, ctx)
	if err != nil {
		return err
	}
	prefix, local := "", name
	if i := strings.IndexByte(name, ':'); i >= 0 {
		prefix, local = name[:i], name[i+1:]
	}
	uri := ""
	if prefix != "" {
		uri = e.sheet.exprNS[prefix]
	}
	elem := &xmldom.Node{Type: xmldom.ElementNode, Name: local, Prefix: prefix, URI: uri}
	out.AppendChild(elem)
	if err := e.applyAttrSets(ins.useSets, ctx, elem, nil); err != nil {
		return err
	}
	return e.executeBody(ins.body, ctx, elem)
}

func (ins *iAttribute) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	if out.Type != xmldom.ElementNode {
		return &TransformError{Msg: "xsl:attribute outside an element"}
	}
	name, err := ins.name.eval(e, ctx)
	if err != nil {
		return err
	}
	frag := xmldom.NewDocument()
	if err := e.executeBody(ins.body, ctx, frag); err != nil {
		return err
	}
	prefix, local := "", name
	if i := strings.IndexByte(name, ':'); i >= 0 {
		prefix, local = name[:i], name[i+1:]
	}
	uri := ""
	if prefix != "" {
		uri = e.sheet.exprNS[prefix]
	}
	out.SetAttrNS(prefix, uri, local, frag.StringValue())
	return nil
}

func (ins *iComment) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	frag := xmldom.NewDocument()
	if err := e.executeBody(ins.body, ctx, frag); err != nil {
		return err
	}
	out.AppendChild(&xmldom.Node{Type: xmldom.CommentNode, Data: frag.StringValue()})
	return nil
}

func (ins *iPI) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	name, err := ins.name.eval(e, ctx)
	if err != nil {
		return err
	}
	frag := xmldom.NewDocument()
	if err := e.executeBody(ins.body, ctx, frag); err != nil {
		return err
	}
	out.AppendChild(&xmldom.Node{Type: xmldom.PINode, Name: name, Data: frag.StringValue()})
	return nil
}

func (ins *iCopy) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	n := ctx.node
	switch n.Type {
	case xmldom.ElementNode:
		elem := &xmldom.Node{Type: xmldom.ElementNode, Name: n.Name, Prefix: n.Prefix, URI: n.URI}
		out.AppendChild(elem)
		if err := e.applyAttrSets(ins.useSets, ctx, elem, nil); err != nil {
			return err
		}
		return e.executeBody(ins.body, ctx, elem)
	case xmldom.TextNode:
		out.AddText(n.Data)
	case xmldom.AttrNode:
		if out.Type == xmldom.ElementNode {
			out.SetAttrNS(n.Prefix, n.URI, n.Name, n.Data)
		}
	case xmldom.CommentNode, xmldom.PINode:
		out.AppendChild(n.Clone())
	case xmldom.DocumentNode:
		return e.executeBody(ins.body, ctx, out)
	}
	return nil
}

func (ins *iCopyOf) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	v, err := ins.sel.Eval(e.xpathCtx(ctx))
	if err != nil {
		return err
	}
	ns, ok := v.(xpath.NodeSet)
	if !ok {
		out.AddText(xpath.ToString(v))
		return nil
	}
	for _, n := range ns {
		switch n.Type {
		case xmldom.DocumentNode:
			for _, c := range n.Children {
				out.AppendChild(c.Clone())
			}
		case xmldom.AttrNode:
			if out.Type == xmldom.ElementNode {
				out.SetAttrNS(n.Prefix, n.URI, n.Name, n.Data)
			}
		default:
			out.AppendChild(n.Clone())
		}
	}
	return nil
}

func (ins *iIf) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	v, err := ins.test.Eval(e.xpathCtx(ctx))
	if err != nil {
		return err
	}
	if xpath.ToBool(v) {
		return e.executeBody(ins.body, ctx, out)
	}
	return nil
}

func (ins *iChoose) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	for _, w := range ins.whens {
		v, err := w.test.Eval(e.xpathCtx(ctx))
		if err != nil {
			return err
		}
		if xpath.ToBool(v) {
			return e.executeBody(w.body, ctx, out)
		}
	}
	if ins.otherwise != nil {
		return e.executeBody(ins.otherwise, ctx, out)
	}
	return nil
}

func (ins *iVariable) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	// Handled inline by executeBody; reaching here is a bug.
	return &TransformError{Msg: "internal: variable executed outside a body"}
}

func (ins *iMessage) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	frag := xmldom.NewDocument()
	if err := e.executeBody(ins.body, ctx, frag); err != nil {
		return err
	}
	msg := frag.StringValue()
	e.result.Messages = append(e.result.Messages, msg)
	if ins.terminate {
		return &TransformError{Msg: "terminated by xsl:message: " + msg}
	}
	return nil
}

func (ins *iDocument) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	href, err := ins.href.eval(e, ctx)
	if err != nil {
		return err
	}
	doc, exists := e.result.Documents[href]
	if !exists {
		doc = xmldom.NewDocument()
		e.result.Documents[href] = doc
		e.result.DocumentOrder = append(e.result.DocumentOrder, href)
	}
	return e.executeBody(ins.body, ctx, doc)
}

func (ins *iNumber) exec(e *engine, ctx *xctx, out *xmldom.Node) error {
	var n int
	if ins.value != nil {
		v, err := ins.value.Eval(e.xpathCtx(ctx))
		if err != nil {
			return err
		}
		n = int(xpath.ToNumber(v))
	} else {
		// level="single" with default count: position among
		// preceding siblings of the same name, 1-based.
		n = 1
		cur := ctx.node
		if cur.Parent != nil {
			for _, sib := range cur.Parent.Children {
				if sib == cur {
					break
				}
				if sib.Type == cur.Type && sib.Name == cur.Name {
					n++
				}
			}
		}
	}
	out.AddText(formatCounter(n, ins.format))
	return nil
}

// formatCounter renders n using an xsl:number format token: 1, 01, a, A,
// i, I.
func formatCounter(n int, format string) string {
	switch format {
	case "a", "A":
		if n <= 0 {
			return fmt.Sprintf("%d", n)
		}
		var b []byte
		for n > 0 {
			n--
			b = append([]byte{byte('a' + n%26)}, b...)
			n /= 26
		}
		s := string(b)
		if format == "A" {
			s = strings.ToUpper(s)
		}
		return s
	case "i", "I":
		s := toRoman(n)
		if format == "I" {
			return strings.ToUpper(s)
		}
		return s
	default:
		// Zero-padded decimal formats such as "01".
		if len(format) > 1 && strings.Trim(format, "0123456789") == "" {
			return fmt.Sprintf("%0*d", len(format), n)
		}
		return fmt.Sprintf("%d", n)
	}
}

func toRoman(n int) string {
	if n <= 0 || n >= 5000 {
		return fmt.Sprintf("%d", n)
	}
	vals := []struct {
		v int
		s string
	}{{1000, "m"}, {900, "cm"}, {500, "d"}, {400, "cd"}, {100, "c"}, {90, "xc"},
		{50, "l"}, {40, "xl"}, {10, "x"}, {9, "ix"}, {5, "v"}, {4, "iv"}, {1, "i"}}
	var b strings.Builder
	for _, kv := range vals {
		for n >= kv.v {
			b.WriteString(kv.s)
			n -= kv.v
		}
	}
	return b.String()
}
