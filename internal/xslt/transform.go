package xslt

import (
	"fmt"
	"sort"
	"strings"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// Result holds the outcome of a transformation: the principal result
// document, any additional documents created with xsl:document, and the
// messages emitted with xsl:message.
type Result struct {
	Main *xmldom.Node
	// Documents maps xsl:document hrefs to their result trees, in
	// DocumentOrder.
	Documents     map[string]*xmldom.Node
	DocumentOrder []string
	Output        OutputSpec
	Messages      []string
}

// MainBytes serializes the principal result document per the stylesheet's
// output specification.
func (r *Result) MainBytes() []byte { return SerializeResult(r.Main, r.Output) }

// DocBytes serializes one xsl:document output.
func (r *Result) DocBytes(href string) []byte {
	doc := r.Documents[href]
	if doc == nil {
		return nil
	}
	return SerializeResult(doc, r.Output)
}

// BufferResult is the streamed counterpart of Result: every output document
// rendered straight to bytes by the event-tape emitter, with no
// intermediate result DOM. The rendering is byte-identical to serializing
// the Result trees with MainBytes/DocBytes.
type BufferResult struct {
	Main          []byte
	Documents     map[string][]byte
	DocumentOrder []string
	Output        OutputSpec
	Messages      []string
}

// SerializeResult renders a result tree according to an output spec,
// applying the XSLT 1.0 §16 html-method auto-detection when the method was
// not declared explicitly.
func SerializeResult(doc *xmldom.Node, spec OutputSpec) []byte {
	method := spec.Method
	if !spec.MethodExplicit {
		if root := doc.DocumentElement(); root != nil &&
			strings.EqualFold(root.Name, "html") && root.URI == "" {
			method = "html"
		}
	}
	return []byte(xmldom.SerializeToString(doc, spec.writeOptions(method)))
}

// writeOptions maps an output spec (with the method already resolved) to
// serializer options; shared by the DOM and streamed paths.
func (spec OutputSpec) writeOptions(method string) xmldom.WriteOptions {
	opts := xmldom.WriteOptions{
		Method:        method,
		OmitDecl:      spec.OmitDecl || method != "xml",
		DoctypePublic: spec.DoctypePublic,
		DoctypeSystem: spec.DoctypeSystem,
	}
	if spec.Indent {
		opts.Indent = "  "
	}
	return opts
}

// serializeEmitter renders a finished event tape per the output spec,
// mirroring SerializeResult including method auto-detection.
func serializeEmitter(be *xmldom.ByteEmitter, spec OutputSpec) []byte {
	method := spec.Method
	if !spec.MethodExplicit {
		if name, uri, ok := be.RootElement(); ok &&
			strings.EqualFold(name, "html") && uri == "" {
			method = "html"
		}
	}
	return be.Serialize(spec.writeOptions(method))
}

// TransformError reports a runtime transformation failure.
type TransformError struct {
	Msg string
}

func (e *TransformError) Error() string { return "xslt: " + e.Msg }

// maxDepth bounds template recursion to fail cleanly on runaway
// stylesheets.
const maxDepth = 800

// xctx is the execution context of the transformation.
type xctx struct {
	node      *xmldom.Node
	pos, size int
	vars      map[string]xpath.Value
	mode      string
	// curPrec is the import precedence of the template rule whose body is
	// executing; xsl:apply-imports searches strictly below it.
	curPrec int
}

type engine struct {
	sheet  *Stylesheet
	stream bool // xsl:document sinks are ByteEmitters instead of trees
	genIDs map[*xmldom.Node]string
	genSeq int
	// docNums numbers frozen documents in first-seen order so that
	// generate-id() on frozen nodes is a pure function of (document,
	// stamp) — deterministic across runs, no per-node map growth.
	docNums  map[*xmldom.DocIndex]int
	keyIdx   map[*xmldom.Node]map[string]map[string][]*xmldom.Node
	funcs    map[string]xpath.Function
	docCache map[string]*xmldom.Node
	depth    int
	messages []string
	// xsl:document sinks, created on first use per href.
	docEms   map[string]xmldom.Emitter
	docTrees map[string]*xmldom.Node        // DOM mode
	docBufs  map[string]*xmldom.ByteEmitter // streaming mode
	docOrder []string
	// refTree forces the tree-walking engine even when the stylesheet has
	// a lowered bytecode program — the differential oracle path.
	refTree bool
}

func newEngine(s *Stylesheet, stream bool) *engine {
	e := &engine{
		sheet:    s,
		stream:   stream,
		genIDs:   map[*xmldom.Node]string{},
		docNums:  map[*xmldom.DocIndex]int{},
		keyIdx:   map[*xmldom.Node]map[string]map[string][]*xmldom.Node{},
		docCache: map[string]*xmldom.Node{},
	}
	e.installFunctions()
	return e
}

// prepSource wraps a non-document source in an engine-owned document and
// applies xsl:strip-space (on a clone) when the stylesheet requests it.
func (s *Stylesheet) prepSource(source *xmldom.Node) *xmldom.Node {
	if source.Type != xmldom.DocumentNode {
		root := xmldom.NewDocument()
		root.AppendChild(source.Clone())
		xmldom.Freeze(root) // engine-owned wrapper: index it for stamp ordering
		return root
	}
	if len(s.strip) > 0 {
		source = source.Clone()
		s.stripSourceSpace(source)
		xmldom.Freeze(source) // engine-owned clone, read-only from here on
	}
	return source
}

// run evaluates globals and applies the root template rule, writing the
// principal output to out.
func (e *engine) run(source *xmldom.Node, params map[string]xpath.Value, out xmldom.Emitter) error {
	s := e.sheet
	// Evaluate global variables and parameters in declaration order.
	globals := map[string]xpath.Value{}
	gctx := &xctx{node: source, pos: 1, size: 1, vars: globals}
	for _, d := range s.globals {
		if d.isParam {
			if v, ok := params[d.name]; ok {
				globals[d.name] = v
				continue
			}
		}
		v, err := e.evalVarValue(d.sel, d.body, gctx)
		if err != nil {
			return err
		}
		globals[d.name] = v
	}
	// Unknown caller params for which no xsl:param exists are still made
	// visible, which is convenient for parameterized presentations.
	for name, v := range params {
		if _, ok := globals[name]; !ok {
			globals[name] = v
		}
	}

	ctx := &xctx{node: source, pos: 1, size: 1, vars: globals}
	if p := s.prog; p != nil && !e.refTree {
		return p.execute(e, ctx, out)
	}
	return e.applyTemplates([]*xmldom.Node{source}, ctx, "", nil, nil, out)
}

// Transform applies the stylesheet to a source document. params provides
// values for global xsl:param declarations. The source tree is not
// modified (whitespace stripping, when requested by the stylesheet,
// operates on a clone), so a frozen (xmldom.Freeze) source document and
// a compiled Stylesheet may be shared by concurrent Transform calls —
// all per-run state lives in the engine.
func (s *Stylesheet) Transform(source *xmldom.Node, params map[string]xpath.Value) (*Result, error) {
	return s.transformDOM(source, params, false)
}

// TransformReference is Transform forced onto the tree-walking engine,
// bypassing a lowered bytecode program: the oracle the differential
// tests compare the VM against.
func (s *Stylesheet) TransformReference(source *xmldom.Node, params map[string]xpath.Value) (*Result, error) {
	return s.transformDOM(source, params, true)
}

func (s *Stylesheet) transformDOM(source *xmldom.Node, params map[string]xpath.Value, refTree bool) (*Result, error) {
	source = s.prepSource(source)
	e := newEngine(s, false)
	e.refTree = refTree
	main := xmldom.NewDocument()
	if err := e.run(source, params, xmldom.NewTreeEmitter(main)); err != nil {
		return nil, err
	}
	res := &Result{
		Main:          main,
		Documents:     e.docTrees,
		DocumentOrder: e.docOrder,
		Output:        s.output,
		Messages:      e.messages,
	}
	if res.Documents == nil {
		res.Documents = map[string]*xmldom.Node{}
	}
	return res, nil
}

// TransformToBuffers applies the stylesheet with the streaming emitter:
// every output document (principal and xsl:document) is rendered directly
// to bytes from the instruction stream, with no intermediate result DOM.
func (s *Stylesheet) TransformToBuffers(source *xmldom.Node, params map[string]xpath.Value) (*BufferResult, error) {
	return s.transformBuffers(source, params, false)
}

// TransformToBuffersReference is TransformToBuffers on the tree-walking
// engine (see TransformReference).
func (s *Stylesheet) TransformToBuffersReference(source *xmldom.Node, params map[string]xpath.Value) (*BufferResult, error) {
	return s.transformBuffers(source, params, true)
}

func (s *Stylesheet) transformBuffers(source *xmldom.Node, params map[string]xpath.Value, refTree bool) (*BufferResult, error) {
	source = s.prepSource(source)
	e := newEngine(s, true)
	e.refTree = refTree
	be := xmldom.NewByteEmitter()
	defer be.Release()
	err := e.run(source, params, be)
	if err != nil {
		for _, b := range e.docBufs {
			b.Release()
		}
		return nil, err
	}
	res := &BufferResult{
		Main:          serializeEmitter(be, s.output),
		DocumentOrder: e.docOrder,
		Output:        s.output,
		Messages:      e.messages,
	}
	if len(e.docBufs) > 0 {
		res.Documents = make(map[string][]byte, len(e.docBufs))
		for href, b := range e.docBufs {
			res.Documents[href] = serializeEmitter(b, s.output)
			b.Release()
		}
	}
	return res, nil
}

// TransformToBytes renders the principal output document to bytes via the
// streaming path.
func (s *Stylesheet) TransformToBytes(source *xmldom.Node, params map[string]xpath.Value) ([]byte, error) {
	r, err := s.TransformToBuffers(source, params)
	if err != nil {
		return nil, err
	}
	return r.Main, nil
}

// documentOut returns the output sink for an xsl:document href, creating
// it on first use (repeated hrefs append to the same document).
func (e *engine) documentOut(href string) xmldom.Emitter {
	if em, ok := e.docEms[href]; ok {
		return em
	}
	var em xmldom.Emitter
	if e.stream {
		be := xmldom.NewByteEmitter()
		if e.docBufs == nil {
			e.docBufs = map[string]*xmldom.ByteEmitter{}
		}
		e.docBufs[href] = be
		em = be
	} else {
		doc := xmldom.NewDocument()
		if e.docTrees == nil {
			e.docTrees = map[string]*xmldom.Node{}
		}
		e.docTrees[href] = doc
		em = xmldom.NewTreeEmitter(doc)
	}
	if e.docEms == nil {
		e.docEms = map[string]xmldom.Emitter{}
	}
	e.docEms[href] = em
	e.docOrder = append(e.docOrder, href)
	return em
}

// stripSourceSpace removes whitespace-only text nodes under elements
// selected by xsl:strip-space.
func (s *Stylesheet) stripSourceSpace(n *xmldom.Node) {
	if n.Type == xmldom.ElementNode || n.Type == xmldom.DocumentNode {
		strip := n.Type == xmldom.ElementNode && s.shouldStrip(n.Name)
		if n.Type == xmldom.ElementNode {
			if a := n.GetAttrNS(xmldom.XMLNamespace, "space"); a != nil && a.Data == "preserve" {
				strip = false
			}
		}
		kept := n.Children[:0]
		for _, c := range n.Children {
			if strip && c.Type == xmldom.TextNode && strings.TrimSpace(c.Data) == "" {
				continue
			}
			s.stripSourceSpace(c)
			kept = append(kept, c)
		}
		n.Children = kept
	}
}

// getCtx borrows a pooled xpath context (shared with the xsd validator
// through xpath.GetContext, so one frame type carries all variable
// binding plumbing), initialized to mirror the execution context.
func (e *engine) getCtx(ctx *xctx) *xpath.Context {
	c := xpath.GetContext()
	*c = xpath.Context{
		Node:     ctx.node,
		Position: ctx.pos,
		Size:     ctx.size,
		Vars:     ctx.vars,
		Funcs:    e.funcs,
		NS:       e.sheet.exprNS,
		Current:  ctx.node,
	}
	return c
}

func (e *engine) putCtx(c *xpath.Context) { xpath.PutContext(c) }

// eval evaluates an xpath expression in the execution context using a
// pooled context. Nothing retains the context past Eval (engine extension
// functions copy it), so returning it to the pool is safe.
func (e *engine) eval(x xpath.Expr, ctx *xctx) (xpath.Value, error) {
	c := e.getCtx(ctx)
	v, err := x.Eval(c)
	e.putCtx(c)
	return v, err
}

// The typed helpers below use the compiled expression's unboxed entry
// points: scalar results (test conditions, value-of strings, sort keys)
// never round-trip through an xpath.Value interface.

func (e *engine) evalBool(x *xpath.Compiled, ctx *xctx) (bool, error) {
	c := e.getCtx(ctx)
	v, err := x.EvalBool(c)
	e.putCtx(c)
	return v, err
}

func (e *engine) evalString(x *xpath.Compiled, ctx *xctx) (string, error) {
	c := e.getCtx(ctx)
	v, err := x.EvalString(c)
	e.putCtx(c)
	return v, err
}

func (e *engine) evalNumber(x *xpath.Compiled, ctx *xctx) (float64, error) {
	c := e.getCtx(ctx)
	v, err := x.EvalNumber(c)
	e.putCtx(c)
	return v, err
}

func (e *engine) evalNodes(x *xpath.Compiled, ctx *xctx) (xpath.NodeSet, error) {
	c := e.getCtx(ctx)
	v, err := x.EvalNodes(c)
	e.putCtx(c)
	return v, err
}

// textSink collects the string value of a result-tree fragment without
// materializing it: concatenated text event data, with comments, PIs and
// attribute values excluded — exactly Node.StringValue of the equivalent
// fragment document.
type textSink struct {
	b     strings.Builder
	depth int
}

func (t *textSink) BeginElement(prefix, uri, name string) { t.depth++ }
func (t *textSink) Attr(prefix, uri, name, value string) bool {
	return t.depth > 0
}
func (t *textSink) EndElement() {
	if t.depth > 0 {
		t.depth--
	}
}
func (t *textSink) Text(data string, raw bool) { t.b.WriteString(data) }
func (t *textSink) Comment(data string)        {}
func (t *textSink) PI(name, data string)       {}
func (t *textSink) CopyTree(n *xmldom.Node) {
	switch n.Type {
	case xmldom.TextNode:
		t.b.WriteString(n.Data)
	case xmldom.ElementNode, xmldom.DocumentNode:
		for _, c := range n.Children {
			t.CopyTree(c)
		}
	}
}
func (t *textSink) OpenElement() bool { return t.depth > 0 }

// fragString executes a body and returns the string value of the produced
// fragment (used by xsl:attribute/comment/processing-instruction/message).
func (e *engine) fragString(body []instruction, ctx *xctx) (string, error) {
	var ts textSink
	if err := e.executeBody(body, ctx, &ts); err != nil {
		return "", err
	}
	return ts.b.String(), nil
}

// evalVarValue computes the value of a variable/param: either its select
// expression or its body as a result tree fragment (represented as a
// node-set containing a synthetic document node, which this processor
// also allows to be used where node-sets are expected, like the common
// exsl:node-set extension).
func (e *engine) evalVarValue(sel *xpath.Compiled, body []instruction, ctx *xctx) (xpath.Value, error) {
	if sel != nil {
		return e.eval(sel, ctx)
	}
	if len(body) == 0 {
		return xpath.String(""), nil
	}
	frag := xmldom.NewDocument()
	if err := e.executeBody(body, ctx, xmldom.NewTreeEmitter(frag)); err != nil {
		return nil, err
	}
	return xpath.NodeSet{frag}, nil
}

// executeBody runs a compiled instruction sequence. Variable declarations
// create a copy-on-write scope so bindings are visible only to following
// siblings and their descendants.
func (e *engine) executeBody(body []instruction, ctx *xctx, out xmldom.Emitter) error {
	e.depth++
	defer func() { e.depth-- }()
	if e.depth > maxDepth {
		return &TransformError{Msg: "maximum instruction depth exceeded (circular templates?)"}
	}
	local := ctx
	for _, ins := range body {
		if v, ok := ins.(*iVariable); ok {
			if local == ctx {
				cp := *ctx
				cp.vars = copyVars(ctx.vars)
				local = &cp
			}
			if _, exists := local.vars[v.decl.name]; exists {
				// Shadowing within one scope level is an XSLT error; we
				// allow shadowing across scopes (new map already copied).
			}
			val, err := e.evalVarValue(v.decl.sel, v.decl.body, local)
			if err != nil {
				return err
			}
			local.vars[v.decl.name] = val
			continue
		}
		if err := ins.exec(e, local, out); err != nil {
			return err
		}
	}
	return nil
}

func copyVars(m map[string]xpath.Value) map[string]xpath.Value {
	cp := make(map[string]xpath.Value, len(m)+4)
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// findTemplate returns the highest-precedence template matching node in
// the given mode whose import precedence is strictly below maxPrec
// (pass maxInt for an unrestricted search). The dispatch index narrows the
// scan to templates whose match class covers the node's kind and name; the
// candidate lists preserve the full precedence order.
func (e *engine) findTemplate(node *xmldom.Node, mode string, ctx *xctx, maxPrec int) (*Template, error) {
	ix := e.sheet.index[mode]
	if ix == nil {
		return nil, nil
	}
	return e.matchFirst(ix.candidates(node), node, ctx, maxPrec)
}

// findTemplateLinear is the reference implementation scanning every rule
// of the mode; the dispatch index must agree with it (see the equivalence
// property test).
func (e *engine) findTemplateLinear(node *xmldom.Node, mode string, ctx *xctx, maxPrec int) (*Template, error) {
	return e.matchFirst(e.sheet.templates[mode], node, ctx, maxPrec)
}

func (e *engine) matchFirst(list []*Template, node *xmldom.Node, ctx *xctx, maxPrec int) (*Template, error) {
	if len(list) == 0 {
		return nil, nil
	}
	pctx := e.getCtx(ctx)
	pctx.Node = node
	for _, t := range list {
		if t.importPrec >= maxPrec {
			continue
		}
		ok, err := t.Match.Matches(pctx, node)
		if err != nil {
			e.putCtx(pctx)
			return nil, err
		}
		if ok {
			e.putCtx(pctx)
			return t, nil
		}
	}
	e.putCtx(pctx)
	return nil, nil
}

// applyTemplates processes each node of list with its best-matching
// template. sorts reorder the list; params become template parameters.
func (e *engine) applyTemplates(list []*xmldom.Node, ctx *xctx, mode string,
	sorts []sortKey, params []withParam, out xmldom.Emitter) error {
	var err error
	if len(sorts) > 0 {
		list, err = e.sortNodes(list, sorts, ctx)
		if err != nil {
			return err
		}
	}
	passed, err := e.evalWithParams(params, ctx)
	if err != nil {
		return err
	}
	// One reusable sub-context for the scan; invokeTemplate copies it
	// before the body runs, so per-iteration mutation is safe.
	sub := xctx{size: len(list), vars: ctx.vars, mode: mode}
	for i, n := range list {
		t, err := e.findTemplate(n, mode, ctx, maxInt)
		if err != nil {
			return err
		}
		if t == nil {
			continue // no rule at all (should not happen: built-ins exist)
		}
		sub.node = n
		sub.pos = i + 1
		if err := e.invokeTemplate(t, &sub, passed, out); err != nil {
			return err
		}
	}
	return nil
}

const maxInt = int(^uint(0) >> 1)

// invokeTemplate binds parameters and runs a template body, recording the
// template's import precedence for xsl:apply-imports.
func (e *engine) invokeTemplate(t *Template, ctx *xctx, passed map[string]xpath.Value, out xmldom.Emitter) error {
	cp := *ctx
	cp.curPrec = t.importPrec
	if len(t.params) > 0 || len(passed) > 0 {
		cp.vars = copyVars(ctx.vars)
		for _, p := range t.params {
			if v, ok := passed[p.name]; ok {
				cp.vars[p.name] = v
				continue
			}
			v, err := e.evalVarValue(p.sel, p.body, ctx)
			if err != nil {
				return err
			}
			cp.vars[p.name] = v
		}
	}
	return e.executeBody(t.body, &cp, out)
}

func (ins *iApplyImports) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	t, err := e.findTemplate(ctx.node, ctx.mode, ctx, ctx.curPrec)
	if err != nil {
		return err
	}
	if t == nil {
		return nil // no lower-precedence rule: no output (built-ins exist below user rules)
	}
	return e.invokeTemplate(t, ctx, nil, out)
}

func (e *engine) evalWithParams(params []withParam, ctx *xctx) (map[string]xpath.Value, error) {
	if len(params) == 0 {
		return nil, nil
	}
	out := make(map[string]xpath.Value, len(params))
	for _, p := range params {
		v, err := e.evalVarValue(p.sel, p.body, ctx)
		if err != nil {
			return nil, err
		}
		out[p.name] = v
	}
	return out, nil
}

// applyAttrSets executes the named xsl:attribute-sets onto the open
// element of out, merged sets first so directly-declared attributes win.
// seen guards against circular use-attribute-sets references.
func (e *engine) applyAttrSets(names []string, ctx *xctx, out xmldom.Emitter, seen map[string]bool) error {
	if len(names) == 0 {
		return nil
	}
	if seen == nil {
		seen = map[string]bool{}
	}
	for _, name := range names {
		set := e.sheet.attrSets[name]
		if set == nil {
			return &TransformError{Msg: "no xsl:attribute-set named " + name}
		}
		if seen[name] {
			return &TransformError{Msg: "circular use-attribute-sets through " + name}
		}
		seen[name] = true
		if err := e.applyAttrSets(set.uses, ctx, out, seen); err != nil {
			return err
		}
		if err := e.executeBody(set.body, ctx, out); err != nil {
			return err
		}
		seen[name] = false
	}
	return nil
}

// sortNodes orders a node list by the given sort keys.
func (e *engine) sortNodes(list []*xmldom.Node, sorts []sortKey, ctx *xctx) ([]*xmldom.Node, error) {
	nk := len(sorts)
	numeric := make([]bool, nk)
	descending := make([]bool, nk)
	for i, k := range sorts {
		if k.dataType != nil {
			v, err := k.dataType.eval(e, ctx)
			if err != nil {
				return nil, err
			}
			numeric[i] = v == "number"
		}
		if k.order != nil {
			v, err := k.order.eval(e, ctx)
			if err != nil {
				return nil, err
			}
			descending[i] = v == "descending"
		}
	}
	// Flat backing arrays: keys/nums for node i, key j live at i*nk+j.
	keys := make([]string, len(list)*nk)
	nums := make([]float64, len(list)*nk)
	order := make([]int, len(list))
	sub := xctx{size: len(list), vars: ctx.vars, mode: ctx.mode}
	for i, n := range list {
		order[i] = i
		sub.node = n
		sub.pos = i + 1
		for j, k := range sorts {
			if numeric[j] {
				f, err := e.evalNumber(k.sel, &sub)
				if err != nil {
					return nil, err
				}
				nums[i*nk+j] = f
			} else {
				s, err := e.evalString(k.sel, &sub)
				if err != nil {
					return nil, err
				}
				keys[i*nk+j] = s
			}
		}
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, b := order[x], order[y]
		for j := 0; j < nk; j++ {
			var cmp int
			if numeric[j] {
				u, w := nums[a*nk+j], nums[b*nk+j]
				switch {
				case u < w:
					cmp = -1
				case u > w:
					cmp = 1
				}
			} else {
				cmp = strings.Compare(keys[a*nk+j], keys[b*nk+j])
			}
			if cmp == 0 {
				continue
			}
			if descending[j] {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	out := make([]*xmldom.Node, len(list))
	for i, idx := range order {
		out[i] = list[idx]
	}
	return out, nil
}

// ---- instruction implementations ----

func (ins *iLiteralText) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	out.Text(ins.data, false)
	return nil
}

func (ins *iText) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	out.Text(ins.data, ins.disableEsc)
	return nil
}

func (ins *iLiteralElement) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	out.BeginElement(ins.prefix, ins.uri, ins.name)
	if err := e.applyAttrSets(ins.useSets, ctx, out, nil); err != nil {
		return err
	}
	for _, a := range ins.attrs {
		v, err := a.value.eval(e, ctx)
		if err != nil {
			return err
		}
		out.Attr(a.prefix, a.uri, a.name, v)
	}
	err := e.executeBody(ins.body, ctx, out)
	out.EndElement()
	return err
}

func (ins *iValueOf) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	s, err := e.evalString(ins.sel, ctx)
	if err != nil {
		return err
	}
	if s == "" {
		return nil
	}
	out.Text(s, ins.disableEsc)
	return nil
}

func (ins *iApplyTemplates) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	var list []*xmldom.Node
	if ins.sel != nil {
		ns, err := e.evalNodes(ins.sel, ctx)
		if err != nil {
			return err
		}
		list = ns
	} else {
		list = ctx.node.Children
	}
	return e.applyTemplates(list, ctx, ins.mode, ins.sorts, ins.params, out)
}

func (ins *iCallTemplate) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	t := e.sheet.named[ins.name]
	if t == nil {
		return &TransformError{Msg: "call-template: no template named " + ins.name}
	}
	passed, err := e.evalWithParams(ins.params, ctx)
	if err != nil {
		return err
	}
	return e.invokeTemplate(t, ctx, passed, out)
}

func (ins *iForEach) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	ns, err := e.evalNodes(ins.sel, ctx)
	if err != nil {
		return err
	}
	list := []*xmldom.Node(ns)
	if len(ins.sorts) > 0 {
		list, err = e.sortNodes(list, ins.sorts, ctx)
		if err != nil {
			return err
		}
	}
	// Reusable sub-context: executeBody copies it before binding variables,
	// and instructions only read it during their own execution.
	sub := xctx{size: len(list), vars: ctx.vars, mode: ctx.mode}
	for i, n := range list {
		sub.node = n
		sub.pos = i + 1
		if err := e.executeBody(ins.body, &sub, out); err != nil {
			return err
		}
	}
	return nil
}

func (ins *iElement) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	name, err := ins.name.eval(e, ctx)
	if err != nil {
		return err
	}
	prefix, local := "", name
	if i := strings.IndexByte(name, ':'); i >= 0 {
		prefix, local = name[:i], name[i+1:]
	}
	uri := ""
	if prefix != "" {
		uri = e.sheet.exprNS[prefix]
	}
	out.BeginElement(prefix, uri, local)
	if err := e.applyAttrSets(ins.useSets, ctx, out, nil); err != nil {
		return err
	}
	err = e.executeBody(ins.body, ctx, out)
	out.EndElement()
	return err
}

func (ins *iAttribute) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	if !out.OpenElement() {
		return &TransformError{Msg: "xsl:attribute outside an element"}
	}
	name, err := ins.name.eval(e, ctx)
	if err != nil {
		return err
	}
	sv, err := e.fragString(ins.body, ctx)
	if err != nil {
		return err
	}
	prefix, local := "", name
	if i := strings.IndexByte(name, ':'); i >= 0 {
		prefix, local = name[:i], name[i+1:]
	}
	uri := ""
	if prefix != "" {
		uri = e.sheet.exprNS[prefix]
	}
	if !out.Attr(prefix, uri, local, sv) {
		return &TransformError{Msg: "xsl:attribute outside an element"}
	}
	return nil
}

func (ins *iComment) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	sv, err := e.fragString(ins.body, ctx)
	if err != nil {
		return err
	}
	out.Comment(sv)
	return nil
}

func (ins *iPI) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	name, err := ins.name.eval(e, ctx)
	if err != nil {
		return err
	}
	sv, err := e.fragString(ins.body, ctx)
	if err != nil {
		return err
	}
	out.PI(name, sv)
	return nil
}

func (ins *iCopy) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	n := ctx.node
	switch n.Type {
	case xmldom.ElementNode:
		out.BeginElement(n.Prefix, n.URI, n.Name)
		if err := e.applyAttrSets(ins.useSets, ctx, out, nil); err != nil {
			return err
		}
		err := e.executeBody(ins.body, ctx, out)
		out.EndElement()
		return err
	case xmldom.TextNode:
		out.Text(n.Data, false)
	case xmldom.AttrNode:
		out.Attr(n.Prefix, n.URI, n.Name, n.Data) // ignored outside an element
	case xmldom.CommentNode:
		out.Comment(n.Data)
	case xmldom.PINode:
		out.PI(n.Name, n.Data)
	case xmldom.DocumentNode:
		return e.executeBody(ins.body, ctx, out)
	}
	return nil
}

func (ins *iCopyOf) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	v, err := e.eval(ins.sel, ctx)
	if err != nil {
		return err
	}
	ns, ok := v.(xpath.NodeSet)
	if !ok {
		out.Text(xpath.ToString(v), false)
		return nil
	}
	for _, n := range ns {
		switch n.Type {
		case xmldom.DocumentNode:
			for _, c := range n.Children {
				out.CopyTree(c)
			}
		case xmldom.AttrNode:
			out.Attr(n.Prefix, n.URI, n.Name, n.Data) // ignored outside an element
		default:
			out.CopyTree(n)
		}
	}
	return nil
}

func (ins *iIf) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	ok, err := e.evalBool(ins.test, ctx)
	if err != nil {
		return err
	}
	if ok {
		return e.executeBody(ins.body, ctx, out)
	}
	return nil
}

func (ins *iChoose) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	for _, w := range ins.whens {
		ok, err := e.evalBool(w.test, ctx)
		if err != nil {
			return err
		}
		if ok {
			return e.executeBody(w.body, ctx, out)
		}
	}
	if ins.otherwise != nil {
		return e.executeBody(ins.otherwise, ctx, out)
	}
	return nil
}

func (ins *iVariable) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	// Handled inline by executeBody; reaching here is a bug.
	return &TransformError{Msg: "internal: variable executed outside a body"}
}

func (ins *iMessage) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	msg, err := e.fragString(ins.body, ctx)
	if err != nil {
		return err
	}
	e.messages = append(e.messages, msg)
	if ins.terminate {
		return &TransformError{Msg: "terminated by xsl:message: " + msg}
	}
	return nil
}

func (ins *iDocument) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	href, err := ins.href.eval(e, ctx)
	if err != nil {
		return err
	}
	return e.executeBody(ins.body, ctx, e.documentOut(href))
}

func (ins *iNumber) exec(e *engine, ctx *xctx, out xmldom.Emitter) error {
	var n int
	if ins.value != nil {
		f, err := e.evalNumber(ins.value, ctx)
		if err != nil {
			return err
		}
		n = int(f)
	} else {
		// level="single" with default count: position among
		// preceding siblings of the same name, 1-based.
		n = 1
		cur := ctx.node
		if cur.Parent != nil {
			for _, sib := range cur.Parent.Children {
				if sib == cur {
					break
				}
				if sib.Type == cur.Type && sib.Name == cur.Name {
					n++
				}
			}
		}
	}
	out.Text(formatCounter(n, ins.format), false)
	return nil
}

// formatCounter renders n using an xsl:number format token: 1, 01, a, A,
// i, I.
func formatCounter(n int, format string) string {
	switch format {
	case "a", "A":
		if n <= 0 {
			return fmt.Sprintf("%d", n)
		}
		var b []byte
		for n > 0 {
			n--
			b = append([]byte{byte('a' + n%26)}, b...)
			n /= 26
		}
		s := string(b)
		if format == "A" {
			s = strings.ToUpper(s)
		}
		return s
	case "i", "I":
		s := toRoman(n)
		if format == "I" {
			return strings.ToUpper(s)
		}
		return s
	default:
		// Zero-padded decimal formats such as "01".
		if len(format) > 1 && strings.Trim(format, "0123456789") == "" {
			return fmt.Sprintf("%0*d", len(format), n)
		}
		return fmt.Sprintf("%d", n)
	}
}

func toRoman(n int) string {
	if n <= 0 || n >= 5000 {
		return fmt.Sprintf("%d", n)
	}
	vals := []struct {
		v int
		s string
	}{{1000, "m"}, {900, "cm"}, {500, "d"}, {400, "cd"}, {100, "c"}, {90, "xc"},
		{50, "l"}, {40, "xl"}, {10, "x"}, {9, "ix"}, {5, "v"}, {4, "iv"}, {1, "i"}}
	var b strings.Builder
	for _, kv := range vals {
		for n >= kv.v {
			b.WriteString(kv.s)
			n -= kv.v
		}
	}
	return b.String()
}
