package xslt

import (
	"strings"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// compileBody turns a sequence of stylesheet DOM nodes into compiled
// instructions. Expressions and attribute value templates are compiled
// once here, so repeated transforms pay no parsing cost.
func (s *Stylesheet) compileBody(nodes []*xmldom.Node) ([]instruction, error) {
	var out []instruction
	for _, n := range nodes {
		switch n.Type {
		case xmldom.TextNode:
			out = append(out, &iLiteralText{data: n.Data})
		case xmldom.CommentNode, xmldom.PINode:
			// Stylesheet comments and PIs are not copied to the result.
		case xmldom.ElementNode:
			ins, err := s.compileElement(n)
			if err != nil {
				return nil, err
			}
			if ins != nil {
				out = append(out, ins)
			}
		}
	}
	return out, nil
}

func (s *Stylesheet) compileElement(n *xmldom.Node) (instruction, error) {
	if n.URI != Namespace {
		return s.compileLiteral(n)
	}
	switch n.Name {
	case "apply-templates":
		return s.compileApplyTemplates(n)
	case "call-template":
		return s.compileCallTemplate(n)
	case "for-each":
		return s.compileForEach(n)
	case "value-of":
		sel, err := s.requiredExpr(n, "select")
		if err != nil {
			return nil, err
		}
		return &iValueOf{sel: sel, disableEsc: n.AttrValue("disable-output-escaping") == "yes"}, nil
	case "text":
		var b strings.Builder
		for _, c := range n.Children {
			if c.Type != xmldom.TextNode {
				return nil, &CompileError{Element: n, Msg: "xsl:text may only contain text"}
			}
			b.WriteString(c.Data)
		}
		return &iText{data: b.String(), disableEsc: n.AttrValue("disable-output-escaping") == "yes"}, nil
	case "element":
		name, err := s.requiredAVT(n, "name")
		if err != nil {
			return nil, err
		}
		body, err := s.compileBody(n.Children)
		if err != nil {
			return nil, err
		}
		return &iElement{name: name, useSets: splitNames(n.AttrValue("use-attribute-sets")), body: body}, nil
	case "attribute":
		name, err := s.requiredAVT(n, "name")
		if err != nil {
			return nil, err
		}
		body, err := s.compileBody(n.Children)
		if err != nil {
			return nil, err
		}
		return &iAttribute{name: name, body: body}, nil
	case "comment":
		body, err := s.compileBody(n.Children)
		if err != nil {
			return nil, err
		}
		return &iComment{body: body}, nil
	case "processing-instruction":
		name, err := s.requiredAVT(n, "name")
		if err != nil {
			return nil, err
		}
		body, err := s.compileBody(n.Children)
		if err != nil {
			return nil, err
		}
		return &iPI{name: name, body: body}, nil
	case "copy":
		body, err := s.compileBody(n.Children)
		if err != nil {
			return nil, err
		}
		return &iCopy{useSets: splitNames(n.AttrValue("use-attribute-sets")), body: body}, nil
	case "copy-of":
		sel, err := s.requiredExpr(n, "select")
		if err != nil {
			return nil, err
		}
		return &iCopyOf{sel: sel}, nil
	case "if":
		test, err := s.requiredExpr(n, "test")
		if err != nil {
			return nil, err
		}
		body, err := s.compileBody(n.Children)
		if err != nil {
			return nil, err
		}
		return &iIf{test: test, body: body}, nil
	case "choose":
		return s.compileChoose(n)
	case "variable":
		decl, err := s.compileVarDecl(n)
		if err != nil {
			return nil, err
		}
		return &iVariable{decl: decl}, nil
	case "param":
		return nil, &CompileError{Element: n, Msg: "xsl:param is only allowed at the start of a template"}
	case "message":
		body, err := s.compileBody(n.Children)
		if err != nil {
			return nil, err
		}
		return &iMessage{body: body, terminate: n.AttrValue("terminate") == "yes"}, nil
	case "document":
		// XSLT 1.1 working draft: create an additional output document.
		href, err := s.requiredAVT(n, "href")
		if err != nil {
			return nil, err
		}
		body, err := s.compileBody(n.Children)
		if err != nil {
			return nil, err
		}
		return &iDocument{href: href, body: body}, nil
	case "number":
		ins := &iNumber{format: n.AttrValue("format")}
		if ins.format == "" {
			ins.format = "1"
		}
		if v := n.AttrValue("value"); v != "" {
			e, err := xpath.Compile(v)
			if err != nil {
				return nil, exprError(n, "value", err)
			}
			ins.value = e
		}
		return ins, nil
	case "fallback":
		// We execute everything we compile, so fallbacks never trigger.
		return nil, nil
	case "sort", "with-param":
		return nil, &CompileError{Element: n, Msg: "xsl:" + n.Name + " is not allowed here"}
	case "apply-imports":
		return &iApplyImports{}, nil
	}
	return nil, &CompileError{Element: n, Msg: "unknown instruction xsl:" + n.Name}
}

// attrValuePos maps a byte offset inside an attribute's value to an
// absolute line/col position in the stylesheet source. The value starts
// right after `name="`; offsets past embedded newlines advance the line.
// Entity references in the raw source can shift true columns slightly;
// the mapping is exact for the plain attribute values stylesheets use.
func attrValuePos(a *xmldom.Node, off int) (line, col int) {
	if a == nil || a.Line == 0 {
		return 0, 0
	}
	qlen := len(a.Name)
	if a.Prefix != "" {
		qlen += len(a.Prefix) + 1
	}
	line, col = a.Line, a.Col+qlen+2
	if off > len(a.Data) {
		off = len(a.Data)
	}
	for i := 0; i < off; i++ {
		if a.Data[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// findAttr locates the attribute node holding the expression, so the
// error can point into its value.
func findAttr(n *xmldom.Node, attr string) *xmldom.Node {
	for _, a := range n.Attr {
		if a.Name == attr && a.URI == "" {
			return a
		}
	}
	return nil
}

// exprError converts an expression or AVT compile failure into a
// CompileError positioned at the failing offset inside the attribute
// value, instead of merely at the owning element.
func exprError(n *xmldom.Node, attr string, err error) *CompileError {
	return exprErrorAt(n, findAttr(n, attr), err)
}

// exprErrorAt is exprError for callers that already hold the attribute
// node (literal result element AVTs, where names can be prefixed).
func exprErrorAt(n, a *xmldom.Node, err error) *CompileError {
	off := 0
	switch t := err.(type) {
	case *xpath.SyntaxError:
		off = t.Pos
	case *avtError:
		off = t.Off
		err = t.Err
	}
	line, col := attrValuePos(a, off)
	return &CompileError{Element: n, Line: line, Col: col, Msg: err.Error()}
}

func (s *Stylesheet) requiredExpr(n *xmldom.Node, attr string) (*xpath.Compiled, error) {
	src := n.AttrValue(attr)
	if src == "" {
		return nil, &CompileError{Element: n, Msg: "xsl:" + n.Name + " requires " + attr}
	}
	e, err := xpath.Compile(src)
	if err != nil {
		return nil, exprError(n, attr, err)
	}
	return e, nil
}

func (s *Stylesheet) requiredAVT(n *xmldom.Node, attr string) (*avt, error) {
	src := n.AttrValue(attr)
	if src == "" {
		return nil, &CompileError{Element: n, Msg: "xsl:" + n.Name + " requires " + attr}
	}
	a, err := compileAVT(src)
	if err != nil {
		return nil, exprError(n, attr, err)
	}
	return a, nil
}

func (s *Stylesheet) compileLiteral(n *xmldom.Node) (instruction, error) {
	lit := &iLiteralElement{name: n.Name, prefix: n.Prefix, uri: n.URI}
	for _, a := range n.Attr {
		if a.URI == Namespace && a.Name == "use-attribute-sets" {
			lit.useSets = splitNames(a.Data)
			continue
		}
		if a.URI == xmldom.XMLNSNamespace {
			// Record the binding for expression prefixes; re-emit only
			// declarations that do not refer to the XSLT namespace.
			if a.Data == Namespace {
				continue
			}
			prefix := a.Name
			if a.Prefix == "" {
				prefix = "" // default namespace: xmlns="..."
			}
			if prefix != "" {
				s.exprNS[prefix] = a.Data
			}
		}
		if a.URI == Namespace {
			// xsl:* attributes on literal elements (version, etc.) are
			// not copied.
			continue
		}
		val, err := compileAVT(a.Data)
		if err != nil {
			return nil, exprErrorAt(n, a, err)
		}
		lit.attrs = append(lit.attrs, literalAttr{name: a.Name, prefix: a.Prefix, uri: a.URI, value: val})
	}
	body, err := s.compileBody(n.Children)
	if err != nil {
		return nil, err
	}
	lit.body = body
	return lit, nil
}

func (s *Stylesheet) compileApplyTemplates(n *xmldom.Node) (instruction, error) {
	ins := &iApplyTemplates{mode: n.AttrValue("mode")}
	s.referencedModes[ins.mode] = true
	if sel := n.AttrValue("select"); sel != "" {
		e, err := xpath.Compile(sel)
		if err != nil {
			return nil, exprError(n, "select", err)
		}
		ins.sel = e
	}
	for _, c := range n.Elements() {
		switch {
		case isXSL(c, "sort"):
			k, err := s.compileSort(c)
			if err != nil {
				return nil, err
			}
			ins.sorts = append(ins.sorts, k)
		case isXSL(c, "with-param"):
			p, err := s.compileWithParam(c)
			if err != nil {
				return nil, err
			}
			ins.params = append(ins.params, p)
		default:
			return nil, &CompileError{Element: c, Msg: "only xsl:sort and xsl:with-param are allowed in xsl:apply-templates"}
		}
	}
	return ins, nil
}

func (s *Stylesheet) compileCallTemplate(n *xmldom.Node) (instruction, error) {
	name := n.AttrValue("name")
	if name == "" {
		return nil, &CompileError{Element: n, Msg: "xsl:call-template requires a name"}
	}
	ins := &iCallTemplate{name: name, src: n}
	for _, c := range n.Elements() {
		if !isXSL(c, "with-param") {
			return nil, &CompileError{Element: c, Msg: "only xsl:with-param is allowed in xsl:call-template"}
		}
		p, err := s.compileWithParam(c)
		if err != nil {
			return nil, err
		}
		ins.params = append(ins.params, p)
	}
	return ins, nil
}

func (s *Stylesheet) compileForEach(n *xmldom.Node) (instruction, error) {
	sel, err := s.requiredExpr(n, "select")
	if err != nil {
		return nil, err
	}
	ins := &iForEach{sel: sel}
	rest := n.Children
	for len(rest) > 0 && isXSL(rest[0], "sort") {
		k, err := s.compileSort(rest[0])
		if err != nil {
			return nil, err
		}
		ins.sorts = append(ins.sorts, k)
		rest = rest[1:]
	}
	body, err := s.compileBody(rest)
	if err != nil {
		return nil, err
	}
	ins.body = body
	return ins, nil
}

func (s *Stylesheet) compileSort(n *xmldom.Node) (sortKey, error) {
	k := sortKey{}
	sel := n.AttrValue("select")
	if sel == "" {
		sel = "."
	}
	e, err := xpath.Compile(sel)
	if err != nil {
		return k, exprError(n, "select", err)
	}
	k.sel = e
	if v := n.AttrValue("data-type"); v != "" {
		k.dataType, err = compileAVT(v)
		if err != nil {
			return k, exprError(n, "data-type", err)
		}
	}
	if v := n.AttrValue("order"); v != "" {
		k.order, err = compileAVT(v)
		if err != nil {
			return k, exprError(n, "order", err)
		}
	}
	return k, nil
}

func (s *Stylesheet) compileWithParam(n *xmldom.Node) (withParam, error) {
	p := withParam{name: n.AttrValue("name")}
	if p.name == "" {
		return p, &CompileError{Element: n, Msg: "xsl:with-param requires a name"}
	}
	if sel := n.AttrValue("select"); sel != "" {
		e, err := xpath.Compile(sel)
		if err != nil {
			return p, exprError(n, "select", err)
		}
		p.sel = e
		return p, nil
	}
	body, err := s.compileBody(n.Children)
	if err != nil {
		return p, err
	}
	p.body = body
	return p, nil
}

func (s *Stylesheet) compileChoose(n *xmldom.Node) (instruction, error) {
	ins := &iChoose{}
	for _, c := range n.Elements() {
		switch {
		case isXSL(c, "when"):
			if ins.otherwise != nil {
				return nil, &CompileError{Element: c, Msg: "xsl:when after xsl:otherwise"}
			}
			test, err := s.requiredExpr(c, "test")
			if err != nil {
				return nil, err
			}
			body, err := s.compileBody(c.Children)
			if err != nil {
				return nil, err
			}
			ins.whens = append(ins.whens, chooseWhen{test: test, body: body})
		case isXSL(c, "otherwise"):
			if ins.otherwise != nil {
				return nil, &CompileError{Element: c, Msg: "duplicate xsl:otherwise"}
			}
			body, err := s.compileBody(c.Children)
			if err != nil {
				return nil, err
			}
			if body == nil {
				body = []instruction{}
			}
			ins.otherwise = body
		default:
			return nil, &CompileError{Element: c, Msg: "only xsl:when and xsl:otherwise are allowed in xsl:choose"}
		}
	}
	if len(ins.whens) == 0 {
		return nil, &CompileError{Element: n, Msg: "xsl:choose requires at least one xsl:when"}
	}
	return ins, nil
}

// compileVarDecl compiles an xsl:variable or xsl:param element.
func (s *Stylesheet) compileVarDecl(c *xmldom.Node) (*compiledVar, error) {
	d := &compiledVar{name: c.AttrValue("name"), isParam: c.Name == "param"}
	if d.name == "" {
		return nil, &CompileError{Element: c, Msg: "xsl:" + c.Name + " requires a name"}
	}
	if sel := c.AttrValue("select"); sel != "" {
		if len(c.Children) > 0 {
			return nil, &CompileError{Element: c, Msg: "xsl:" + c.Name + " cannot have both select and content"}
		}
		e, err := xpath.Compile(sel)
		if err != nil {
			return nil, exprError(c, "select", err)
		}
		d.sel = e
		return d, nil
	}
	body, err := s.compileBody(c.Children)
	if err != nil {
		return nil, err
	}
	d.body = body
	return d, nil
}
