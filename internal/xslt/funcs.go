package xslt

import (
	"fmt"
	"math"
	"strings"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// installFunctions registers the XSLT additional function library
// (XSLT 1.0 §12) on the engine.
func (e *engine) installFunctions() {
	e.funcs = map[string]xpath.Function{
		"current":             e.fnCurrent,
		"generate-id":         e.fnGenerateID,
		"key":                 e.fnKey,
		"document":            e.fnDocument,
		"system-property":     fnSystemProperty,
		"format-number":       fnFormatNumber,
		"element-available":   e.fnElementAvailable,
		"function-available":  e.fnFunctionAvailable,
		"unparsed-entity-uri": fnUnparsedEntityURI,
	}
}

func (e *engine) fnCurrent(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
	if len(args) != 0 {
		return nil, fmt.Errorf("xslt: current() takes no arguments")
	}
	if ctx.Current == nil {
		return xpath.NodeSet(nil), nil
	}
	return xpath.NodeSet{ctx.Current}, nil
}

func (e *engine) fnGenerateID(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
	var n *xmldom.Node
	switch len(args) {
	case 0:
		n = ctx.Node
	case 1:
		ns, ok := args[0].(xpath.NodeSet)
		if !ok {
			return nil, fmt.Errorf("xslt: generate-id() requires a node-set")
		}
		if len(ns) == 0 {
			return xpath.String(""), nil
		}
		n = ns[0]
	default:
		return nil, fmt.Errorf("xslt: generate-id() takes at most one argument")
	}
	// Frozen nodes get a pure (document, stamp) id: "d<doc>n<ord>".
	// Documents are numbered per engine in first-seen order, so output is
	// deterministic across runs and nothing is stored per node. Unfrozen
	// nodes keep the per-engine sequence ("idn<seq>"); the two prefixes
	// cannot collide.
	if ix := n.Index(); ix != nil {
		num, ok := e.docNums[ix]
		if !ok {
			num = len(e.docNums) + 1
			e.docNums[ix] = num
		}
		return xpath.String(fmt.Sprintf("d%dn%d", num, n.DocOrder())), nil
	}
	if id, ok := e.genIDs[n]; ok {
		return xpath.String(id), nil
	}
	e.genSeq++
	id := fmt.Sprintf("idn%d", e.genSeq)
	e.genIDs[n] = id
	return xpath.String(id), nil
}

func (e *engine) fnKey(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("xslt: key() requires two arguments")
	}
	name := xpath.ToString(args[0])
	decl := e.sheet.keys[name]
	if decl == nil {
		return nil, fmt.Errorf("xslt: no xsl:key named %q", name)
	}
	if ctx.Node == nil {
		return xpath.NodeSet(nil), nil
	}
	root := ctx.Node.Root()
	idx, err := e.keyIndex(root, decl, ctx)
	if err != nil {
		return nil, err
	}
	var out []*xmldom.Node
	add := func(val string) {
		out = append(out, idx[val]...)
	}
	if ns, ok := args[1].(xpath.NodeSet); ok {
		for _, n := range ns {
			add(n.StringValue())
		}
	} else {
		add(xpath.ToString(args[1]))
	}
	return xpath.NodeSet(xmldom.SortDocOrder(out)), nil
}

// keyIndex builds (once per document root) the value→nodes index for a key
// declaration.
func (e *engine) keyIndex(root *xmldom.Node, decl *keyDecl, ctx *xpath.Context) (map[string][]*xmldom.Node, error) {
	perRoot := e.keyIdx[root]
	if perRoot == nil {
		perRoot = map[string]map[string][]*xmldom.Node{}
		e.keyIdx[root] = perRoot
	}
	if idx, ok := perRoot[decl.name]; ok {
		return idx, nil
	}
	idx := map[string][]*xmldom.Node{}
	var walk func(n *xmldom.Node) error
	index := func(n *xmldom.Node) error {
		mctx := *ctx
		mctx.Node = n
		mctx.Current = n
		ok, err := decl.match.Matches(&mctx, n)
		if err != nil || !ok {
			return err
		}
		v, err := decl.use.Eval(&mctx)
		if err != nil {
			return err
		}
		if ns, isNS := v.(xpath.NodeSet); isNS {
			for _, kn := range ns {
				key := kn.StringValue()
				idx[key] = append(idx[key], n)
			}
		} else {
			key := xpath.ToString(v)
			idx[key] = append(idx[key], n)
		}
		return nil
	}
	walk = func(n *xmldom.Node) error {
		if err := index(n); err != nil {
			return err
		}
		for _, a := range n.Attr {
			if err := index(a); err != nil {
				return err
			}
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	perRoot[decl.name] = idx
	return idx, nil
}

func (e *engine) fnDocument(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
	if len(args) < 1 || len(args) > 2 {
		return nil, fmt.Errorf("xslt: document() requires one or two arguments")
	}
	load := func(href string) (*xmldom.Node, error) {
		if doc, ok := e.docCache[href]; ok {
			return doc, nil
		}
		if e.sheet.loader == nil {
			return nil, fmt.Errorf("xslt: document(%q): no loader configured", href)
		}
		doc, err := e.sheet.loader(href)
		if err != nil {
			return nil, fmt.Errorf("xslt: document(%q): %v", href, err)
		}
		e.docCache[href] = doc
		return doc, nil
	}
	var out []*xmldom.Node
	if ns, ok := args[0].(xpath.NodeSet); ok {
		for _, n := range ns {
			doc, err := load(n.StringValue())
			if err != nil {
				return nil, err
			}
			out = append(out, doc)
		}
	} else {
		doc, err := load(xpath.ToString(args[0]))
		if err != nil {
			return nil, err
		}
		out = append(out, doc)
	}
	return xpath.NodeSet(out), nil
}

func fnSystemProperty(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("xslt: system-property() requires one argument")
	}
	switch xpath.ToString(args[0]) {
	case "xsl:version":
		// 1.1 because xsl:document is implemented.
		return xpath.String("1.1"), nil
	case "xsl:vendor":
		return xpath.String("goldweb"), nil
	case "xsl:vendor-url":
		return xpath.String("https://github.com/goldweb/goldweb"), nil
	}
	return xpath.String(""), nil
}

func fnUnparsedEntityURI(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
	// DTD entities are not retained by the parser.
	return xpath.String(""), nil
}

// supportedInstructions lists the instruction elements this processor
// executes, for element-available().
var supportedInstructions = map[string]bool{
	"apply-templates": true, "call-template": true, "for-each": true,
	"value-of": true, "text": true, "element": true, "attribute": true,
	"comment": true, "processing-instruction": true, "copy": true,
	"copy-of": true, "if": true, "choose": true, "variable": true,
	"message": true, "document": true, "number": true, "fallback": true,
}

func (e *engine) fnElementAvailable(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("xslt: element-available() requires one argument")
	}
	name := xpath.ToString(args[0])
	if i := strings.IndexByte(name, ':'); i >= 0 {
		prefix := name[:i]
		if e.sheet.exprNS[prefix] != Namespace && prefix != "xsl" {
			return xpath.Boolean(false), nil
		}
		name = name[i+1:]
	}
	return xpath.Boolean(supportedInstructions[name]), nil
}

func (e *engine) fnFunctionAvailable(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("xslt: function-available() requires one argument")
	}
	name := xpath.ToString(args[0])
	if e.funcs[name] != nil {
		return xpath.Boolean(true), nil
	}
	// Probe the core library through a compile of "name()" is overkill;
	// keep an explicit list of XPath core functions.
	core := map[string]bool{"last": true, "position": true, "count": true,
		"id": true, "local-name": true, "namespace-uri": true, "name": true,
		"string": true, "concat": true, "starts-with": true, "contains": true,
		"substring-before": true, "substring-after": true, "substring": true,
		"string-length": true, "normalize-space": true, "translate": true,
		"boolean": true, "not": true, "true": true, "false": true, "lang": true,
		"number": true, "sum": true, "floor": true, "ceiling": true, "round": true}
	return xpath.Boolean(core[name]), nil
}

// fnFormatNumber implements format-number() with the JDK 1.1
// DecimalFormat subset that covers common patterns: '0' required digit,
// '#' optional digit, '.' decimal separator, ',' grouping separator, '%'
// percent, and a negative subpattern after ';'.
func fnFormatNumber(ctx *xpath.Context, args []xpath.Value) (xpath.Value, error) {
	if len(args) < 2 || len(args) > 3 {
		return nil, fmt.Errorf("xslt: format-number() requires two or three arguments")
	}
	f := xpath.ToNumber(args[0])
	pattern := xpath.ToString(args[1])
	return xpath.String(formatDecimal(f, pattern)), nil
}

func formatDecimal(f float64, pattern string) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	pos, neg := pattern, ""
	if i := strings.IndexByte(pattern, ';'); i >= 0 {
		pos, neg = pattern[:i], pattern[i+1:]
	}
	p := pos
	negative := f < 0 || math.Signbit(f)
	if negative {
		f = -f
		if neg != "" {
			p = neg
			negative = false // sign already encoded in the subpattern
		}
	}
	if strings.ContainsRune(p, '%') {
		f *= 100
	}
	// Split prefix, numeric core, suffix.
	first := strings.IndexAny(p, "0#")
	if first < 0 {
		// No digits in pattern; emit the number plainly.
		return p + xpath.FormatNumber(f)
	}
	last := strings.LastIndexAny(p, "0#.,")
	prefix, core, suffix := p[:first], p[first:last+1], p[last+1:]

	intPat, fracPat := core, ""
	if i := strings.IndexByte(core, '.'); i >= 0 {
		intPat, fracPat = core[:i], core[i+1:]
	}
	minInt := strings.Count(intPat, "0")
	minFrac := strings.Count(fracPat, "0")
	maxFrac := minFrac + strings.Count(fracPat, "#")
	group := 0
	if i := strings.LastIndexByte(intPat, ','); i >= 0 {
		group = len(intPat) - 1 - i
		group -= strings.Count(intPat[i+1:], ",") // nested commas
	}

	s := fmt.Sprintf("%.*f", maxFrac, f)
	intPart, fracPart := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart, fracPart = s[:i], s[i+1:]
	}
	// Trim optional fraction digits.
	for len(fracPart) > minFrac && strings.HasSuffix(fracPart, "0") {
		fracPart = fracPart[:len(fracPart)-1]
	}
	for len(intPart) < minInt {
		intPart = "0" + intPart
	}
	if group > 0 {
		var parts []string
		for len(intPart) > group {
			parts = append([]string{intPart[len(intPart)-group:]}, parts...)
			intPart = intPart[:len(intPart)-group]
		}
		parts = append([]string{intPart}, parts...)
		intPart = strings.Join(parts, ",")
	}
	var b strings.Builder
	if negative {
		b.WriteByte('-')
	}
	b.WriteString(prefix)
	b.WriteString(intPart)
	if fracPart != "" {
		b.WriteByte('.')
		b.WriteString(fracPart)
	}
	b.WriteString(suffix)
	return b.String()
}
