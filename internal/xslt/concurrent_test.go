package xslt

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// TestConcurrentTransformSharedSheet: one compiled stylesheet and one
// frozen source document, many concurrent Transforms — results must be
// identical and the race detector must stay quiet.
func TestConcurrentTransformSharedSheet(t *testing.T) {
	sheet, err := CompileString(`<?xml version="1.0"?>
<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:key name="byclass" match="item" use="@class"/>
  <xsl:template match="/">
    <out>
      <xsl:for-each select="//item">
        <xsl:sort select="@class"/>
        <i id="{generate-id()}" v="{@v}"/>
      </xsl:for-each>
      <k><xsl:value-of select="count(key('byclass','a'))"/></k>
      <id><xsl:value-of select="name(id('x1'))"/></id>
    </out>
  </xsl:template>
</xsl:stylesheet>`, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var src bytes.Buffer
	src.WriteString(`<root id="x1">`)
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&src, `<item class="%c" v="%d"/>`, 'a'+byte(i%3), i)
	}
	src.WriteString(`</root>`)
	doc := xmldom.MustParseString(src.String())
	xmldom.Freeze(doc)

	var want []byte
	{
		r, err := sheet.Transform(doc, nil)
		if err != nil {
			t.Fatal(err)
		}
		want = r.MainBytes()
	}
	const workers = 8
	var wg sync.WaitGroup
	got := make([][]byte, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				r, err := sheet.Transform(doc, map[string]xpath.Value{})
				if err != nil {
					errs[w] = err
					return
				}
				got[w] = r.MainBytes()
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !bytes.Equal(got[w], want) {
			t.Errorf("worker %d: output differs from sequential result", w)
		}
	}
}

// TestGenerateIDFrozenDeterministic: generate-id() on frozen nodes is a
// pure function of document and stamp — identical across engines.
func TestGenerateIDFrozenDeterministic(t *testing.T) {
	sheet, err := CompileString(`<?xml version="1.0"?>
<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="/">
    <xsl:for-each select="//b"><xsl:value-of select="generate-id()"/>;</xsl:for-each>
  </xsl:template>
</xsl:stylesheet>`, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc := xmldom.MustParseString(`<a><b/><b/><c><b/></c></a>`)
	xmldom.Freeze(doc)
	first, err := sheet.TransformToBytes(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sheet.TransformToBytes(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("generate-id() unstable across engines: %q vs %q", first, second)
	}
	// Distinct nodes must still get distinct ids.
	parts := bytes.Split(bytes.TrimSuffix(first, []byte(";")), []byte(";"))
	seen := map[string]bool{}
	for _, p := range parts {
		if seen[string(p)] {
			t.Errorf("duplicate generate-id %q", p)
		}
		seen[string(p)] = true
	}
}
