package xslt

import (
	"fmt"
	"sort"
	"strings"

	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
)

// The stylesheet bytecode: CompileStylesheet lowers the compiled
// instruction tree into one flat program per stylesheet, executed by the
// VM in vm.go on the frame stack shared with the XPath expression VM
// (xpath.Frame). Three properties distinguish it from the retained
// tree-walking engine:
//
//   - template dispatch is a jump table: the per-mode match-class index
//     (precedence-resolved at compile time) narrows the candidate rules,
//     and the winning rule's body is entered by pc, not by Go call;
//   - maximal static literal runs (literal text and literal elements
//     whose attributes carry no expressions) collapse into single
//     pre-serialized segments (xmldom.Segment) appended to the
//     ByteEmitter tape with one bulk copy;
//   - apply-templates / for-each / call-template are VM loops and calls
//     on one pooled control stack — no per-node Go recursion and no
//     boxed per-evaluation contexts.
//
// Compile (without lowering) remains the reference engine; the
// differential and fuzz tests in bytecode_test.go pin the two to
// byte-identical output.

// Opcode is a stylesheet bytecode opcode.
type Opcode uint8

const (
	OpHalt         Opcode = iota
	OpRet                 // return from a template body (apply iteration or call)
	OpJmp                 // a: target pc
	OpTest                // a: expr; b: target pc when the test is false
	OpSeg                 // a: segment — bulk-append a pre-serialized literal run
	OpText                // a: string; b: 1 = disable output escaping
	OpValueOf             // a: expr; b: 1 = disable output escaping
	OpLitBegin            // a: literal element name
	OpAttrSets            // a: name list — apply xsl:use-attribute-sets
	OpLitAttr             // a: literal attribute with a static value
	OpAVTAttr             // a: literal attribute with an AVT value
	OpEndElem             // close the open element (literal, xsl:element)
	OpApply               // a: apply site — push the loop frame (falls into OpIterate)
	OpIterate             // a: apply site; b: exit pc — dispatch next node or exit
	OpForEach             // a: for-each site — push the loop frame
	OpForNext             // b: exit pc — advance the iteration or exit
	OpForEnd              // a: loop-head pc (its OpForNext)
	OpCall                // a: call site — push a call frame, jump to the template
	OpApplyImports        // dispatch below the current precedence, call frame
	OpEnter               // a: template — bind parameters, set import precedence
	OpScopeBegin          // copy-on-write variable scope for a body with xsl:variable
	OpScopeEnd
	OpVarDecl      // a: variable declaration — evaluate and bind
	OpElemBegin    // a: element site — computed name + attribute sets
	OpAttrBegin    // a: name AVT — begin capturing an attribute value
	OpAttrEnd      //
	OpCommentBegin // begin capturing a comment body
	OpCommentEnd   //
	OpPIBegin      // a: name AVT — begin capturing a PI body
	OpPIEnd        //
	OpMsgBegin     // begin capturing an xsl:message body
	OpMsgEnd       // a: 1 = terminate
	OpDocBegin     // a: href AVT — redirect output to an xsl:document sink
	OpDocEnd       //
	OpCopyBegin    // a: copy site; b: pc after OpCopyEnd (leaf-node skip)
	OpCopyEnd      //
	OpCopyOf       // a: expr
	OpNumber       // a: number site
)

var opcodeNames = [...]string{
	OpHalt: "halt", OpRet: "ret", OpJmp: "jmp", OpTest: "test", OpSeg: "seg",
	OpText: "text", OpValueOf: "value-of", OpLitBegin: "elem",
	OpAttrSets: "attr-sets", OpLitAttr: "attr", OpAVTAttr: "attr-avt",
	OpEndElem: "end-elem", OpApply: "apply", OpIterate: "iterate",
	OpForEach: "for-each", OpForNext: "for-next", OpForEnd: "for-end",
	OpCall: "call", OpApplyImports: "apply-imports", OpEnter: "enter",
	OpScopeBegin: "scope-begin", OpScopeEnd: "scope-end", OpVarDecl: "var",
	OpElemBegin: "elem-avt", OpAttrBegin: "attr-begin", OpAttrEnd: "attr-end",
	OpCommentBegin: "comment-begin", OpCommentEnd: "comment-end",
	OpPIBegin: "pi-begin", OpPIEnd: "pi-end", OpMsgBegin: "msg-begin",
	OpMsgEnd: "msg-end", OpDocBegin: "doc-begin", OpDocEnd: "doc-end",
	OpCopyBegin: "copy", OpCopyEnd: "copy-end", OpCopyOf: "copy-of",
	OpNumber: "number",
}

// Instr is one bytecode instruction: an opcode plus two operands
// (side-table indexes or jump targets).
type Instr struct {
	Op   Opcode
	A, B int32
}

// applySite is the compile-time payload of one xsl:apply-templates.
type applySite struct {
	sel  *xpath.Compiled // nil → child nodes (or the context node when self)
	self bool            // root invocation: the list is [context node]
	mode string
	// disp is the mode's dispatch index, resolved at compile time so the
	// iterate loop never consults the mode map.
	disp   *templateIndex
	sorts  []sortKey
	params []withParam
}

// forSite is the payload of one xsl:for-each.
type forSite struct {
	sel   *xpath.Compiled
	sorts []sortKey
}

// bcCallSite is the payload of one xsl:call-template, with the callee
// resolved at compile time (nil when the stylesheet names a missing
// template: the runtime error is deferred to match the tree engine).
type bcCallSite struct {
	name   string
	t      *Template
	params []withParam
}

// elemSite is the payload of one xsl:element.
type elemSite struct {
	name    *avt
	useSets []string
}

// litName is a literal result element name.
type litName struct {
	prefix, uri, name string
}

// litAttrOp is a literal attribute whose value template is static.
type litAttrOp struct {
	prefix, uri, name, value string
}

// avtAttrOp is a literal attribute with a computed value template.
type avtAttrOp struct {
	prefix, uri, name string
	value             *avt
}

// progTemplate records one lowered template and its entry pc.
type progTemplate struct {
	t     *Template
	entry int32
}

// Program is a compiled stylesheet lowered to flat bytecode with its
// side tables. Programs are immutable after lowering and safe for
// concurrent execution; all run state lives on the shared xpath.Frame
// and in the per-run engine.
type Program struct {
	sheet      *Stylesheet
	code       []Instr
	segs       []*xmldom.Segment
	strs       []string
	exprs      []*xpath.Compiled
	avts       []*avt
	litNames   []litName
	litAttrs   []litAttrOp
	avtAttrs   []avtAttrOp
	nameLists  [][]string
	varDecls   []*compiledVar
	applySites []*applySite
	forSites   []*forSite
	callSites  []*bcCallSite
	elemSites  []*elemSite
	copySites  [][]string
	numSites   []*iNumber
	tmpls      []*progTemplate
}

// CompileStylesheet compiles a stylesheet document and lowers it to
// bytecode: Transform and TransformToBuffers then execute the flat
// program on the shared XPath VM. Compile retains the tree-walking
// engine (the differential oracle) and is what lint-only callers use.
func CompileStylesheet(doc *xmldom.Node, opts CompileOptions) (*Stylesheet, error) {
	s, err := Compile(doc, opts)
	if err != nil {
		return nil, err
	}
	s.prog = s.lower()
	if err := verifyLowered(s.prog); err != nil {
		return nil, err
	}
	return s, nil
}

// CompileStylesheetString parses, compiles and lowers a stylesheet from
// XML text.
func CompileStylesheetString(src string, opts CompileOptions) (*Stylesheet, error) {
	doc, err := xmldom.ParseString(src)
	if err != nil {
		return nil, err
	}
	return CompileStylesheet(doc, opts)
}

// MustCompileStylesheetString compiles an embedded, known-good
// stylesheet to bytecode.
func MustCompileStylesheetString(src string) *Stylesheet {
	s, err := CompileStylesheetString(src, CompileOptions{})
	if err != nil {
		panic(err)
	}
	return s
}

// Program returns the lowered bytecode, or nil when the stylesheet was
// compiled with Compile (tree engine only).
func (s *Stylesheet) Program() *Program { return s.prog }

// ---- lowering ----

// asm accumulates the flat program.
type asm struct {
	s *Stylesheet
	p *Program
}

func (a *asm) emit(op Opcode, opa, opb int32) int {
	a.p.code = append(a.p.code, Instr{Op: op, A: opa, B: opb})
	return len(a.p.code) - 1
}

func (a *asm) patchA(pc int, target int32) { a.p.code[pc].A = target }
func (a *asm) patchB(pc int, target int32) { a.p.code[pc].B = target }
func (a *asm) here() int32                 { return int32(len(a.p.code)) }

// lower flattens every template of the stylesheet into one program.
// Template bodies are laid out after the root prologue in deterministic
// order (sorted modes, precedence order within a mode, then named-only
// templates sorted by name), so disassembly is stable.
func (s *Stylesheet) lower() *Program {
	p := &Program{sheet: s}
	a := &asm{s: s, p: p}

	// Root prologue: apply the built-in root rule semantics — one
	// apply-templates pass over [source] in the default mode — then halt.
	root := &applySite{self: true, disp: s.index[""]}
	p.applySites = append(p.applySites, root)
	a.emit(OpApply, 0, 0)
	it := a.emit(OpIterate, 0, 0)
	a.patchB(it, a.here())
	a.emit(OpHalt, 0, 0)

	seen := map[*Template]bool{}
	lowerT := func(t *Template) {
		if seen[t] {
			return
		}
		seen[t] = true
		a.lowerTemplate(t)
	}
	modes := make([]string, 0, len(s.templates))
	for mode := range s.templates {
		modes = append(modes, mode)
	}
	sort.Strings(modes)
	for _, mode := range modes {
		for _, t := range s.templates[mode] {
			lowerT(t)
		}
	}
	names := make([]string, 0, len(s.named))
	for name := range s.named {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		lowerT(s.named[name])
	}
	return p
}

func (a *asm) lowerTemplate(t *Template) {
	t.entryPC = a.here()
	ti := int32(len(a.p.tmpls))
	a.p.tmpls = append(a.p.tmpls, &progTemplate{t: t, entry: t.entryPC})
	a.emit(OpEnter, ti, 0)
	a.lowerBody(t.body)
	a.emit(OpRet, 0, 0)
}

// lowerBody flattens one instruction sequence. A body that declares
// variables gets an eager scope frame — observationally identical to the
// tree engine's lazy copy-on-first-variable, since nothing can tell the
// two maps apart before the first binding.
func (a *asm) lowerBody(body []instruction) {
	scope := false
	for _, ins := range body {
		if _, ok := ins.(*iVariable); ok {
			scope = true
			break
		}
	}
	if scope {
		a.emit(OpScopeBegin, 0, 0)
	}
	for i := 0; i < len(body); {
		if n := a.staticRun(body[i:]); n > 0 {
			a.emitSegment(body[i : i+n])
			i += n
			continue
		}
		a.lowerInstr(body[i])
		i++
	}
	if scope {
		a.emit(OpScopeEnd, 0, 0)
	}
}

// staticRun returns the length of the maximal static prefix of body when
// collapsing it into a segment pays off (it contains an element, or at
// least two instructions); single text nodes emit cheaper as OpText.
func (a *asm) staticRun(body []instruction) int {
	n := 0
	hasElem := false
	for _, ins := range body {
		if !staticInstr(ins) {
			break
		}
		if _, ok := ins.(*iLiteralElement); ok {
			hasElem = true
		}
		n++
	}
	if hasElem || n >= 2 {
		return n
	}
	return 0
}

// staticInstr reports whether an instruction produces identical events
// on every execution: literal text, xsl:text, and literal elements whose
// attribute value templates are expression-free (transitively).
func staticInstr(ins instruction) bool {
	switch t := ins.(type) {
	case *iLiteralText:
		return true
	case *iText:
		return true
	case *iLiteralElement:
		if len(t.useSets) > 0 {
			return false
		}
		for _, at := range t.attrs {
			if _, ok := staticAVT(at.value); !ok {
				return false
			}
		}
		for _, c := range t.body {
			if !staticInstr(c) {
				return false
			}
		}
		return true
	}
	return false
}

// staticAVT returns the constant value of an expression-free attribute
// value template.
func staticAVT(a *avt) (string, bool) {
	var b strings.Builder
	for _, p := range a.parts {
		if p.expr != nil {
			return "", false
		}
		b.WriteString(p.lit)
	}
	return b.String(), true
}

// emitSegment records a static run once and emits a single bulk-copy
// opcode for it.
func (a *asm) emitSegment(run []instruction) {
	seg := xmldom.RecordSegment(func(em xmldom.Emitter) {
		for _, ins := range run {
			emitStatic(ins, em)
		}
	})
	idx := int32(len(a.p.segs))
	a.p.segs = append(a.p.segs, seg)
	a.emit(OpSeg, idx, 0)
}

// emitStatic replays one static instruction's events into the segment
// recorder, in exactly the order the tree engine would emit them.
func emitStatic(ins instruction, em xmldom.Emitter) {
	switch t := ins.(type) {
	case *iLiteralText:
		em.Text(t.data, false)
	case *iText:
		em.Text(t.data, t.disableEsc)
	case *iLiteralElement:
		em.BeginElement(t.prefix, t.uri, t.name)
		for _, at := range t.attrs {
			v, _ := staticAVT(at.value)
			em.Attr(at.prefix, at.uri, at.name, v)
		}
		for _, c := range t.body {
			emitStatic(c, em)
		}
		em.EndElement()
	}
}

// side-table adders

func (a *asm) addStr(s string) int32 {
	a.p.strs = append(a.p.strs, s)
	return int32(len(a.p.strs) - 1)
}

func (a *asm) addExpr(x *xpath.Compiled) int32 {
	a.p.exprs = append(a.p.exprs, x)
	return int32(len(a.p.exprs) - 1)
}

func (a *asm) addAVT(v *avt) int32 {
	a.p.avts = append(a.p.avts, v)
	return int32(len(a.p.avts) - 1)
}

func (a *asm) addNameList(names []string) int32 {
	a.p.nameLists = append(a.p.nameLists, names)
	return int32(len(a.p.nameLists) - 1)
}

func boolOperand(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

func (a *asm) lowerInstr(ins instruction) {
	p := a.p
	switch t := ins.(type) {
	case *iLiteralText:
		a.emit(OpText, a.addStr(t.data), 0)
	case *iText:
		a.emit(OpText, a.addStr(t.data), boolOperand(t.disableEsc))
	case *iValueOf:
		a.emit(OpValueOf, a.addExpr(t.sel), boolOperand(t.disableEsc))
	case *iLiteralElement:
		p.litNames = append(p.litNames, litName{prefix: t.prefix, uri: t.uri, name: t.name})
		a.emit(OpLitBegin, int32(len(p.litNames)-1), 0)
		if len(t.useSets) > 0 {
			a.emit(OpAttrSets, a.addNameList(t.useSets), 0)
		}
		for _, at := range t.attrs {
			if v, ok := staticAVT(at.value); ok {
				p.litAttrs = append(p.litAttrs, litAttrOp{prefix: at.prefix, uri: at.uri, name: at.name, value: v})
				a.emit(OpLitAttr, int32(len(p.litAttrs)-1), 0)
			} else {
				p.avtAttrs = append(p.avtAttrs, avtAttrOp{prefix: at.prefix, uri: at.uri, name: at.name, value: at.value})
				a.emit(OpAVTAttr, int32(len(p.avtAttrs)-1), 0)
			}
		}
		a.lowerBody(t.body)
		a.emit(OpEndElem, 0, 0)
	case *iApplyTemplates:
		site := &applySite{sel: t.sel, mode: t.mode, disp: a.s.index[t.mode], sorts: t.sorts, params: t.params}
		p.applySites = append(p.applySites, site)
		si := int32(len(p.applySites) - 1)
		a.emit(OpApply, si, 0)
		it := a.emit(OpIterate, si, 0)
		a.patchB(it, a.here())
	case *iForEach:
		p.forSites = append(p.forSites, &forSite{sel: t.sel, sorts: t.sorts})
		a.emit(OpForEach, int32(len(p.forSites)-1), 0)
		next := a.emit(OpForNext, 0, 0)
		a.lowerBody(t.body)
		a.emit(OpForEnd, int32(next), 0)
		a.patchB(next, a.here())
	case *iCallTemplate:
		p.callSites = append(p.callSites, &bcCallSite{name: t.name, t: a.s.named[t.name], params: t.params})
		a.emit(OpCall, int32(len(p.callSites)-1), 0)
	case *iApplyImports:
		a.emit(OpApplyImports, 0, 0)
	case *iElement:
		p.elemSites = append(p.elemSites, &elemSite{name: t.name, useSets: t.useSets})
		a.emit(OpElemBegin, int32(len(p.elemSites)-1), 0)
		a.lowerBody(t.body)
		a.emit(OpEndElem, 0, 0)
	case *iAttribute:
		a.emit(OpAttrBegin, a.addAVT(t.name), 0)
		a.lowerBody(t.body)
		a.emit(OpAttrEnd, 0, 0)
	case *iComment:
		a.emit(OpCommentBegin, 0, 0)
		a.lowerBody(t.body)
		a.emit(OpCommentEnd, 0, 0)
	case *iPI:
		a.emit(OpPIBegin, a.addAVT(t.name), 0)
		a.lowerBody(t.body)
		a.emit(OpPIEnd, 0, 0)
	case *iMessage:
		a.emit(OpMsgBegin, 0, 0)
		a.lowerBody(t.body)
		a.emit(OpMsgEnd, boolOperand(t.terminate), 0)
	case *iDocument:
		a.emit(OpDocBegin, a.addAVT(t.href), 0)
		a.lowerBody(t.body)
		a.emit(OpDocEnd, 0, 0)
	case *iCopy:
		p.copySites = append(p.copySites, t.useSets)
		cb := a.emit(OpCopyBegin, int32(len(p.copySites)-1), 0)
		a.lowerBody(t.body)
		a.emit(OpCopyEnd, 0, 0)
		a.patchB(cb, a.here())
	case *iCopyOf:
		a.emit(OpCopyOf, a.addExpr(t.sel), 0)
	case *iIf:
		tp := a.emit(OpTest, a.addExpr(t.test), 0)
		a.lowerBody(t.body)
		a.patchB(tp, a.here())
	case *iChoose:
		var ends []int
		for _, w := range t.whens {
			tp := a.emit(OpTest, a.addExpr(w.test), 0)
			a.lowerBody(w.body)
			ends = append(ends, a.emit(OpJmp, 0, 0))
			a.patchB(tp, a.here())
		}
		if t.otherwise != nil {
			a.lowerBody(t.otherwise)
		}
		for _, e := range ends {
			a.patchA(e, a.here())
		}
	case *iVariable:
		p.varDecls = append(p.varDecls, t.decl)
		a.emit(OpVarDecl, int32(len(p.varDecls)-1), 0)
	case *iNumber:
		p.numSites = append(p.numSites, t)
		a.emit(OpNumber, int32(len(p.numSites)-1), 0)
	default:
		// Every instruction the compiler produces is handled above; a new
		// instruction type must be lowered here before it can ship.
		panic(fmt.Sprintf("xslt: no lowering for %T", ins))
	}
}

// ---- introspection ----

// DispatchRule is one entry of a compiled program's per-mode jump table:
// the template rule plus the pc its body is entered at. Entries are in
// dispatch (precedence) order — the first matching rule wins.
type DispatchRule struct {
	TemplateRule
	Entry int
}

// Modes returns every mode with jump-table entries, sorted.
func (p *Program) Modes() []string { return p.sheet.Modes() }

// ModeEntries returns one mode's jump table. The static analyzer's
// shadowed-template check (GW201) reads dispatch order from here, so it
// reasons about exactly what the VM executes.
func (p *Program) ModeEntries(mode string) []DispatchRule {
	ts := p.sheet.templates[mode]
	out := make([]DispatchRule, 0, len(ts))
	for _, t := range ts {
		out = append(out, DispatchRule{
			TemplateRule: TemplateRule{
				Match:      t.Match,
				Name:       t.Name,
				Mode:       t.Mode,
				Priority:   t.Priority,
				ImportPrec: t.importPrec,
				Builtin:    t.src == nil,
				Src:        t.src,
			},
			Entry: int(t.entryPC),
		})
	}
	return out
}

// ---- disassembly ----

// avtSource reconstructs the {expr}-interleaved source of an attribute
// value template for disassembly.
func avtSource(a *avt) string {
	var b strings.Builder
	for _, p := range a.parts {
		if p.expr == nil {
			b.WriteString(p.lit)
		} else {
			b.WriteByte('{')
			b.WriteString(p.expr.String())
			b.WriteByte('}')
		}
	}
	return b.String()
}

// templateLabel renders a template's identity for disassembly headers.
func templateLabel(t *Template) string {
	var parts []string
	if t.Name != "" {
		parts = append(parts, fmt.Sprintf("name=%q", t.Name))
	}
	if t.Match != nil {
		parts = append(parts, fmt.Sprintf("match=%q", t.Match.String()))
	}
	if t.Mode != "" {
		parts = append(parts, fmt.Sprintf("mode=%q", t.Mode))
	}
	if t.src == nil && t.Match != nil {
		parts = append(parts, "builtin")
	}
	return strings.Join(parts, " ")
}

func qname(prefix, name string) string {
	if prefix != "" {
		return prefix + ":" + name
	}
	return name
}

// Disasm renders the program as a deterministic pc-addressed listing
// with a header line per template body — the golden corpus format of
// testdata/programs.want.
func (p *Program) Disasm() string {
	heads := make(map[int32]*progTemplate, len(p.tmpls))
	for _, pt := range p.tmpls {
		heads[pt.entry] = pt
	}
	var b strings.Builder
	for pc, in := range p.code {
		if pt, ok := heads[int32(pc)]; ok {
			fmt.Fprintf(&b, "\n;; template %s\n", templateLabel(pt.t))
		}
		fmt.Fprintf(&b, "%04d %s", pc, opcodeNames[in.Op])
		switch in.Op {
		case OpJmp:
			fmt.Fprintf(&b, " %04d", in.A)
		case OpTest:
			fmt.Fprintf(&b, " %s false→%04d", p.exprs[in.A].String(), in.B)
		case OpSeg:
			fmt.Fprintf(&b, " #%d %s", in.A, p.segs[in.A].Summary())
		case OpText:
			fmt.Fprintf(&b, " %q", p.strs[in.A])
			if in.B != 0 {
				b.WriteString(" raw")
			}
		case OpValueOf:
			fmt.Fprintf(&b, " %s", p.exprs[in.A].String())
			if in.B != 0 {
				b.WriteString(" raw")
			}
		case OpLitBegin:
			ln := p.litNames[in.A]
			fmt.Fprintf(&b, " <%s>", qname(ln.prefix, ln.name))
		case OpAttrSets:
			fmt.Fprintf(&b, " [%s]", strings.Join(p.nameLists[in.A], " "))
		case OpLitAttr:
			la := p.litAttrs[in.A]
			fmt.Fprintf(&b, " %s=%q", qname(la.prefix, la.name), la.value)
		case OpAVTAttr:
			aa := p.avtAttrs[in.A]
			fmt.Fprintf(&b, " %s=%q", qname(aa.prefix, aa.name), avtSource(aa.value))
		case OpApply:
			site := p.applySites[in.A]
			if site.self {
				b.WriteString(" self")
			} else if site.sel != nil {
				fmt.Fprintf(&b, " select=%s", site.sel.String())
			} else {
				b.WriteString(" children")
			}
			if site.mode != "" {
				fmt.Fprintf(&b, " mode=%q", site.mode)
			}
			if len(site.sorts) > 0 {
				fmt.Fprintf(&b, " sorts=%d", len(site.sorts))
			}
			if len(site.params) > 0 {
				fmt.Fprintf(&b, " params=%d", len(site.params))
			}
		case OpIterate:
			fmt.Fprintf(&b, " exit→%04d", in.B)
		case OpForEach:
			site := p.forSites[in.A]
			fmt.Fprintf(&b, " select=%s", site.sel.String())
			if len(site.sorts) > 0 {
				fmt.Fprintf(&b, " sorts=%d", len(site.sorts))
			}
		case OpForNext:
			fmt.Fprintf(&b, " exit→%04d", in.B)
		case OpForEnd:
			fmt.Fprintf(&b, " loop→%04d", in.A)
		case OpCall:
			cs := p.callSites[in.A]
			fmt.Fprintf(&b, " %q", cs.name)
			if cs.t != nil {
				fmt.Fprintf(&b, " entry→%04d", cs.t.entryPC)
			} else {
				b.WriteString(" unresolved")
			}
			if len(cs.params) > 0 {
				fmt.Fprintf(&b, " params=%d", len(cs.params))
			}
		case OpEnter:
			fmt.Fprintf(&b, " %s", templateLabel(p.tmpls[in.A].t))
			if n := len(p.tmpls[in.A].t.params); n > 0 {
				fmt.Fprintf(&b, " params=%d", n)
			}
		case OpVarDecl:
			d := p.varDecls[in.A]
			if d.sel != nil {
				fmt.Fprintf(&b, " $%s select=%s", d.name, d.sel.String())
			} else {
				fmt.Fprintf(&b, " $%s [body]", d.name)
			}
		case OpElemBegin:
			es := p.elemSites[in.A]
			fmt.Fprintf(&b, " name=%q", avtSource(es.name))
			if len(es.useSets) > 0 {
				fmt.Fprintf(&b, " [%s]", strings.Join(es.useSets, " "))
			}
		case OpAttrBegin, OpPIBegin, OpDocBegin:
			fmt.Fprintf(&b, " %q", avtSource(p.avts[in.A]))
		case OpMsgEnd:
			if in.A != 0 {
				b.WriteString(" terminate")
			}
		case OpCopyBegin:
			if sets := p.copySites[in.A]; len(sets) > 0 {
				fmt.Fprintf(&b, " [%s]", strings.Join(sets, " "))
			}
			fmt.Fprintf(&b, " leaf→%04d", in.B)
		case OpCopyOf:
			fmt.Fprintf(&b, " %s", p.exprs[in.A].String())
		case OpNumber:
			ns := p.numSites[in.A]
			if ns.value != nil {
				fmt.Fprintf(&b, " value=%s", ns.value.String())
			}
			fmt.Fprintf(&b, " format=%q", ns.format)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
