package xslt_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"goldweb/internal/xmldom"
	"goldweb/internal/xslt"
)

// FuzzBytecodeVsTree generates random (always well-formed) stylesheets
// and documents from a pair of seeds and cross-checks the bytecode VM
// against the tree-walking engine: identical bytes, identical messages,
// and matching error outcomes. Runs in CI as a 10s smoke.

// genStylesheet derives a random stylesheet from rng. Bodies are built
// from the full instruction vocabulary; recursion terminates because
// apply-templates only ever selects children and named templates never
// call templates.
func genStylesheet(rng *rand.Rand) string {
	names := []string{"a", "b", "c", "d"}
	name := func() string { return names[rng.Intn(len(names))] }
	var body func(depth int) string
	body = func(depth int) string {
		var b strings.Builder
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			if depth > 2 {
				b.WriteString("deep")
				continue
			}
			switch rng.Intn(16) {
			case 0:
				b.WriteString("lit-" + name())
			case 1:
				el := name()
				fmt.Fprintf(&b, `<%s q="s-{name()}">%s</%s>`, el, body(depth+1), el)
			case 2:
				fmt.Fprintf(&b, `<xsl:value-of select="name()"/>`)
			case 3:
				fmt.Fprintf(&b, `<xsl:if test="count(*) &gt; %d">%s</xsl:if>`, rng.Intn(3), body(depth+1))
			case 4:
				fmt.Fprintf(&b, `<xsl:choose><xsl:when test="@id">%s</xsl:when><xsl:otherwise>%s</xsl:otherwise></xsl:choose>`,
					body(depth+1), body(depth+1))
			case 5:
				sort := ""
				if rng.Intn(2) == 0 {
					sort = `<xsl:sort select="name()" order="descending"/>`
				}
				fmt.Fprintf(&b, `<xsl:for-each select="*">%s%s</xsl:for-each>`, sort, body(depth+1))
			case 6:
				fmt.Fprintf(&b, `<xsl:apply-templates select="*"/>`)
			case 7:
				fmt.Fprintf(&b, `<xsl:apply-templates select="*" mode="m%d"/>`, rng.Intn(2))
			case 8:
				fmt.Fprintf(&b, `<xsl:variable name="v%d" select="count(*)"/><xsl:value-of select="$v%d"/>`, depth, depth)
			case 9:
				fmt.Fprintf(&b, `<xsl:element name="e-{count(*)}"><xsl:attribute name="k">%s</xsl:attribute></xsl:element>`, body(depth+1))
			case 10:
				fmt.Fprintf(&b, `<xsl:comment>%s</xsl:comment>`, body(depth+1))
			case 11:
				fmt.Fprintf(&b, `<xsl:processing-instruction name="pi">p</xsl:processing-instruction>`)
			case 12:
				fmt.Fprintf(&b, `<xsl:copy>%s</xsl:copy>`, body(depth+1))
			case 13:
				fmt.Fprintf(&b, `<xsl:copy-of select="@*"/>`)
			case 14:
				fmt.Fprintf(&b, `<n><xsl:number format="%s"/></n>`, []string{"1", "01", "a", "i"}[rng.Intn(4)])
			default:
				fmt.Fprintf(&b, `<xsl:call-template name="leaf"><xsl:with-param name="p" select="'x%d'"/></xsl:call-template>`, rng.Intn(3))
			}
		}
		return b.String()
	}
	var b strings.Builder
	b.WriteString(`<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">` + "\n")
	b.WriteString(`<xsl:template name="leaf"><xsl:param name="p" select="'d'"/><leaf p="{$p}"/></xsl:template>` + "\n")
	fmt.Fprintf(&b, `<xsl:template match="/"><r>%s<xsl:apply-templates select="*"/></r></xsl:template>`+"\n", body(0))
	rules := 1 + rng.Intn(4)
	for i := 0; i < rules; i++ {
		match := []string{"*", name(), name() + "[@id]", "text()"}[rng.Intn(4)]
		mode := ""
		if rng.Intn(3) == 0 {
			mode = fmt.Sprintf(` mode="m%d"`, rng.Intn(2))
		}
		prio := ""
		if rng.Intn(2) == 0 {
			prio = fmt.Sprintf(` priority="%d"`, rng.Intn(5)-2)
		}
		fmt.Fprintf(&b, "<xsl:template match=%q%s%s>%s</xsl:template>\n", match, mode, prio, body(0))
	}
	b.WriteString(`</xsl:stylesheet>`)
	return b.String()
}

// genDoc derives a random source document from rng.
func genDoc(rng *rand.Rand) *xmldom.Node {
	names := []string{"a", "b", "c", "d", "z"}
	doc := xmldom.NewDocument()
	root := doc.AppendChild(&xmldom.Node{Type: xmldom.ElementNode, Name: "a"})
	var build func(p *xmldom.Node, depth int)
	build = func(p *xmldom.Node, depth int) {
		kids := rng.Intn(4)
		for i := 0; i < kids; i++ {
			switch rng.Intn(5) {
			case 0:
				p.AddText("t" + names[rng.Intn(len(names))])
			case 1:
				p.AppendChild(&xmldom.Node{Type: xmldom.CommentNode, Data: "c"})
			default:
				el := p.AppendChild(&xmldom.Node{Type: xmldom.ElementNode, Name: names[rng.Intn(len(names))]})
				if rng.Intn(2) == 0 {
					el.SetAttr("id", fmt.Sprintf("i%d", rng.Intn(9)))
				}
				if depth < 3 {
					build(el, depth+1)
				}
			}
		}
	}
	build(root, 0)
	xmldom.Freeze(doc)
	return doc
}

func FuzzBytecodeVsTree(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed, seed*31+7)
	}
	f.Fuzz(func(t *testing.T, sheetSeed, docSeed int64) {
		src := genStylesheet(rand.New(rand.NewSource(sheetSeed)))
		sheet, err := xslt.CompileStylesheetString(src, xslt.CompileOptions{})
		if err != nil {
			t.Fatalf("generated stylesheet does not compile: %v\n%s", err, src)
		}
		doc := genDoc(rand.New(rand.NewSource(docSeed)))
		got, gotErr := sheet.TransformToBuffers(doc, nil)
		want, wantErr := sheet.TransformToBuffersReference(doc, nil)
		if (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("seed %d/%d: VM err=%v, tree err=%v\n%s", sheetSeed, docSeed, gotErr, wantErr, src)
		}
		if gotErr != nil {
			return // both engines rejected the run (e.g. depth limit)
		}
		if !bytes.Equal(got.Main, want.Main) {
			t.Fatalf("seed %d/%d: output diverges\n--- stylesheet ---\n%s\n--- vm ---\n%s\n--- tree ---\n%s",
				sheetSeed, docSeed, src, got.Main, want.Main)
		}
		if !reflect.DeepEqual(got.Messages, want.Messages) {
			t.Fatalf("seed %d/%d: messages diverge: %v vs %v", sheetSeed, docSeed, got.Messages, want.Messages)
		}
	})
}
