package olap

import (
	"testing"

	"goldweb/internal/core"
)

// TestSumConservation: on strict, single-valued hierarchies, grouping a
// SUM at any level partitions the rows, so the per-group sums add up to
// the ungrouped total.
func TestSumConservation(t *testing.T) {
	ds := salesData(t)
	total, err := ds.Execute(Query{
		Fact: "Sales",
		Aggs: []Agg{{Measure: "qty", Op: "SUM"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := total.Rows[0].Values[0]

	groupings := [][]GroupBy{
		{{Dim: "Product"}},
		{{Dim: "Product", Level: "Family"}},
		{{Dim: "Product", Level: "Group"}},
		{{Dim: "Store", Level: "City"}},
		{{Dim: "Store", Level: "Province"}},
		{{Dim: "Time", Level: "Month"}},
		{{Dim: "Time", Level: "Year"}},
		{{Dim: "Time", Level: "Year"}, {Dim: "Product", Level: "Group"}},
		{{Dim: "Time"}, {Dim: "Product"}, {Dim: "Store"}},
	}
	for _, g := range groupings {
		res, err := ds.Execute(Query{
			Fact:    "Sales",
			Aggs:    []Agg{{Measure: "qty", Op: "SUM"}},
			GroupBy: g,
		})
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		sum := 0.0
		for _, row := range res.Rows {
			sum += row.Values[0]
		}
		if sum != want {
			t.Errorf("grouping %v: sum %v != total %v", g, sum, want)
		}
	}
}

// TestCountConservation: COUNT behaves the same way.
func TestCountConservation(t *testing.T) {
	ds := salesData(t)
	res, err := ds.Execute(Query{
		Fact:    "Sales",
		Aggs:    []Agg{{Measure: "qty", Op: "COUNT"}},
		GroupBy: []GroupBy{{Dim: "Store", Level: "City"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 0.0
	for _, row := range res.Rows {
		n += row.Values[0]
	}
	if n != float64(ds.Fact("Sales").Len()) {
		t.Errorf("counts sum to %v, want %d", n, ds.Fact("Sales").Len())
	}
}

// TestMinMaxBounds: per-group MIN/MAX always bracket the per-group AVG.
func TestMinMaxBounds(t *testing.T) {
	ds := salesData(t)
	res, err := ds.Execute(Query{
		Fact: "Sales",
		Aggs: []Agg{
			{Measure: "qty", Op: "MIN"},
			{Measure: "qty", Op: "AVG"},
			{Measure: "qty", Op: "MAX"},
		},
		GroupBy: []GroupBy{{Dim: "Time", Level: "Month"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		min, avg, max := row.Values[0], row.Values[1], row.Values[2]
		if !(min <= avg && avg <= max) {
			t.Errorf("group %v: min %v avg %v max %v", row.Keys, min, avg, max)
		}
	}
}

// TestRollupMonotonicity: rolling up can only reduce (or keep) the
// number of groups.
func TestRollupMonotonicity(t *testing.T) {
	ds := salesData(t)
	counts := []int{}
	for _, level := range []string{"", "Month", "Year"} {
		res, err := ds.Execute(Query{
			Fact:    "Sales",
			Aggs:    []Agg{{Measure: "qty", Op: "SUM"}},
			GroupBy: []GroupBy{{Dim: "Time", Level: level}},
		})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, len(res.Rows))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Errorf("group count grew on roll-up: %v", counts)
		}
	}
}

// TestExecutionDeterminism: repeated execution returns identical tables.
func TestExecutionDeterminism(t *testing.T) {
	ds := salesData(t)
	q := Query{
		Fact: "Sales",
		Aggs: []Agg{{Measure: "total", Op: "SUM"}, {Measure: "qty", Op: "MAX"}},
		GroupBy: []GroupBy{
			{Dim: "Time", Level: "Month"},
			{Dim: "Store", Level: "City"},
		},
	}
	first, err := ds.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := ds.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("nondeterministic result:\n%s\nvs\n%s", first, again)
		}
	}
}

// TestFiltersComposeAsIntersection: applying two filters together never
// keeps more than either filter alone.
func TestFiltersComposeAsIntersection(t *testing.T) {
	ds := salesData(t)
	count := func(fs ...Filter) float64 {
		res, err := ds.Execute(Query{
			Fact:    "Sales",
			Aggs:    []Agg{{Measure: "qty", Op: "COUNT"}},
			Filters: fs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) == 0 {
			return 0
		}
		return res.Rows[0].Values[0]
	}
	f1 := Filter{Att: "product_name", Op: core.OpEQ, Value: "Milk 1L"}
	f2 := Filter{Att: "qty", Op: core.OpGET, Value: "3"}
	c1, c2, both := count(f1), count(f2), count(f1, f2)
	if both > c1 || both > c2 {
		t.Errorf("intersection larger than parts: %v %v %v", c1, c2, both)
	}
	if c1+c2 < both {
		t.Errorf("impossible counts: %v %v %v", c1, c2, both)
	}
}

// TestAdditivityMatrix: the allowed-operator matrix of the sales model is
// enforced exactly for every (measure, operator) pair when Time collapses.
func TestAdditivityMatrix(t *testing.T) {
	ds := salesData(t)
	cases := map[string]map[string]bool{
		//           SUM    MIN    MAX    AVG    COUNT
		"qty":       {"SUM": true, "MIN": true, "MAX": true, "AVG": true, "COUNT": true},
		"inventory": {"SUM": false, "MIN": true, "MAX": true, "AVG": true, "COUNT": false},
		"price":     {"SUM": false, "MIN": false, "MAX": false, "AVG": false, "COUNT": false},
	}
	for measure, ops := range cases {
		for op, want := range ops {
			_, err := ds.Execute(Query{
				Fact: "Sales",
				Aggs: []Agg{{Measure: measure, Op: op}},
			})
			if (err == nil) != want {
				t.Errorf("%s(%s): allowed=%v, want %v (err=%v)", op, measure, err == nil, want, err)
			}
		}
	}
}
