// Package olap is the execution substrate behind the paper's "export into
// a commercial OLAP tool": an in-memory multidimensional engine that
// instantiates a conceptual model (core.Model) with dimension members and
// fact rows, and executes cube-class queries — measures, slice, dice —
// plus the further-analysis OLAP operations (roll-up, drill-down) over
// the classification-hierarchy DAG, enforcing the model's additivity
// rules.
package olap

import (
	"fmt"
	"strings"

	"goldweb/internal/core"
)

// Dataset holds the instance data of one conceptual model.
type Dataset struct {
	model *core.Model
	dims  map[string]*DimData  // by dimension id
	facts map[string]*FactData // by fact id
}

// NewDataset prepares an empty dataset for the model.
func NewDataset(m *core.Model) *Dataset {
	ds := &Dataset{model: m, dims: map[string]*DimData{}, facts: map[string]*FactData{}}
	for _, d := range m.Dims {
		ds.dims[d.ID] = newDimData(d)
	}
	for _, f := range m.Facts {
		ds.facts[f.ID] = &FactData{fact: f, ds: ds}
	}
	return ds
}

// Model returns the conceptual model the dataset instantiates.
func (ds *Dataset) Model() *core.Model { return ds.model }

// Dim returns the data container of the named dimension.
func (ds *Dataset) Dim(name string) *DimData {
	d := ds.model.DimByName(name)
	if d == nil {
		panic(fmt.Sprintf("olap: unknown dimension %q", name))
	}
	return ds.dims[d.ID]
}

// Fact returns the data container of the named fact class.
func (ds *Dataset) Fact(name string) *FactData {
	f := ds.model.FactByName(name)
	if f == nil {
		panic(fmt.Sprintf("olap: unknown fact class %q", name))
	}
	return ds.facts[f.ID]
}

// TerminalLevel is the pseudo level id of a dimension's terminal (leaf)
// level — the dimension class itself.
const TerminalLevel = ""

// Member is one member of a dimension level.
type Member struct {
	Key   string // value of the level's {OID} attribute
	Name  string // value of the level's {D} attribute
	Level string // level id; TerminalLevel for leaf members
	// Attrs holds further attribute values by attribute name.
	Attrs map[string]string
	// parents maps a target level id to the member's direct parents
	// there; more than one parent on an edge = non-strict hierarchy.
	parents map[string][]*Member
}

// DimData holds the members of one dimension.
type DimData struct {
	dim *core.DimClass
	// members[level][key]
	members map[string]map[string]*Member
}

func newDimData(d *core.DimClass) *DimData {
	return &DimData{dim: d, members: map[string]map[string]*Member{}}
}

// Def returns the dimension's conceptual definition.
func (dd *DimData) Def() *core.DimClass { return dd.dim }

// AddMember adds a member to a hierarchy level (by level name; "" = the
// terminal level) and returns it.
func (dd *DimData) AddMember(levelName, key, name string) *Member {
	levelID := TerminalLevel
	if levelName != "" {
		l := dd.dim.LevelByName(levelName)
		if l == nil {
			panic(fmt.Sprintf("olap: dimension %s has no level %q", dd.dim.Name, levelName))
		}
		levelID = l.ID
	}
	m := &Member{Key: key, Name: name, Level: levelID,
		Attrs: map[string]string{}, parents: map[string][]*Member{}}
	lvl := dd.members[levelID]
	if lvl == nil {
		lvl = map[string]*Member{}
		dd.members[levelID] = lvl
	}
	if _, dup := lvl[key]; dup {
		panic(fmt.Sprintf("olap: duplicate member %q in %s/%s", key, dd.dim.Name, levelName))
	}
	lvl[key] = m
	return m
}

// Set records an additional attribute value on the member.
func (m *Member) Set(att, value string) *Member {
	m.Attrs[att] = value
	return m
}

// Members returns every member of a level ("" = terminal), in load order
// is not guaranteed — callers sort as needed.
func (dd *DimData) Members(levelName string) []*Member {
	levelID := TerminalLevel
	if levelName != "" {
		l := dd.dim.LevelByName(levelName)
		if l == nil {
			return nil
		}
		levelID = l.ID
	}
	out := make([]*Member, 0, len(dd.members[levelID]))
	for _, m := range dd.members[levelID] {
		out = append(out, m)
	}
	return out
}

// ParentsAt returns the member's direct parents on the edge to the given
// level id.
func (m *Member) ParentsAt(levelID string) []*Member {
	return m.parents[levelID]
}

// Member returns a member by level name ("" = terminal) and key, or nil.
func (dd *DimData) Member(levelName, key string) *Member {
	levelID := TerminalLevel
	if levelName != "" {
		l := dd.dim.LevelByName(levelName)
		if l == nil {
			return nil
		}
		levelID = l.ID
	}
	return dd.members[levelID][key]
}

// Size returns the number of members at a level ("" = terminal).
func (dd *DimData) Size(levelName string) int {
	levelID := TerminalLevel
	if levelName != "" {
		if l := dd.dim.LevelByName(levelName); l != nil {
			levelID = l.ID
		} else {
			return 0
		}
	}
	return len(dd.members[levelID])
}

// Link records that the child member rolls up to the parent member. The
// edge must exist in the dimension's DAG; strict associations admit only
// one parent per child on that edge.
func (dd *DimData) Link(childLevel, childKey, parentLevel, parentKey string) error {
	child := dd.Member(childLevel, childKey)
	if child == nil {
		return fmt.Errorf("olap: %s: unknown child member %s/%s", dd.dim.Name, childLevel, childKey)
	}
	parent := dd.Member(parentLevel, parentKey)
	if parent == nil {
		return fmt.Errorf("olap: %s: unknown parent member %s/%s", dd.dim.Name, parentLevel, parentKey)
	}
	assoc := dd.assocBetween(child.Level, parent.Level)
	if assoc == nil {
		return fmt.Errorf("olap: %s: no association from level %q to level %q in the DAG",
			dd.dim.Name, childLevel, parentLevel)
	}
	if !assoc.NonStrict() && len(child.parents[parent.Level]) > 0 {
		return fmt.Errorf("olap: %s: member %q already rolls up to a %s member and the association is strict",
			dd.dim.Name, childKey, parentLevel)
	}
	child.parents[parent.Level] = append(child.parents[parent.Level], parent)
	return nil
}

// MustLink is Link but panics on error; for dataset construction in
// examples and tests.
func (dd *DimData) MustLink(childLevel, childKey, parentLevel, parentKey string) {
	if err := dd.Link(childLevel, childKey, parentLevel, parentKey); err != nil {
		panic(err)
	}
}

// assocBetween finds the DAG edge from a level ("" = dimension root) to a
// target level.
func (dd *DimData) assocBetween(childLevelID, parentLevelID string) *core.Association {
	var edges []*core.Association
	if childLevelID == TerminalLevel {
		edges = dd.dim.Associations
	} else if l := dd.dim.Level(childLevelID); l != nil {
		edges = l.Associations
	}
	for _, e := range edges {
		if e.Child == parentLevelID {
			return e
		}
	}
	return nil
}

// ancestorsAt returns the member's ancestors at the target level,
// following every DAG path (alternative paths and non-strict edges can
// produce several).
func (dd *DimData) ancestorsAt(m *Member, targetLevelID string) []*Member {
	if m.Level == targetLevelID {
		return []*Member{m}
	}
	seen := map[*Member]bool{}
	var out []*Member
	var walk func(cur *Member)
	walk = func(cur *Member) {
		for _, ps := range cur.parents {
			for _, p := range ps {
				if seen[p] {
					continue
				}
				seen[p] = true
				if p.Level == targetLevelID {
					out = append(out, p)
				}
				walk(p)
			}
		}
	}
	walk(m)
	return out
}

// CheckComplete verifies the {completeness} constraints of the dimension
// against the loaded members: on a complete association every child
// member must participate (have at least one parent on that edge).
func (dd *DimData) CheckComplete() []error {
	var errs []error
	check := func(childLevelID string, edges []*core.Association) {
		for _, e := range edges {
			if !e.Completeness {
				continue
			}
			for key, m := range dd.members[childLevelID] {
				if len(m.parents[e.Child]) == 0 {
					lvlName := "terminal level"
					if l := dd.dim.Level(e.Child); l != nil {
						lvlName = l.Name
					}
					errs = append(errs, fmt.Errorf(
						"olap: %s: member %q violates {completeness}: no parent in %s",
						dd.dim.Name, key, lvlName))
				}
			}
		}
	}
	check(TerminalLevel, dd.dim.Associations)
	for _, l := range dd.dim.Levels {
		check(l.ID, l.Associations)
	}
	return errs
}

// ---- fact data ----

// Row is one fact instance: coordinates into every aggregated dimension
// (several keys for many-to-many dimensions), measure values, and the
// values of the degenerate-dimension measures.
type Row struct {
	// Coords maps dimension name → terminal member key(s).
	Coords map[string][]string
	// Measures maps measure name → numeric value.
	Measures map[string]float64
	// Degenerate maps {OID} measure name → value (ticket numbers etc.).
	Degenerate map[string]string
}

// FactData holds the rows of one fact class.
type FactData struct {
	fact *core.FactClass
	ds   *Dataset
	rows []*Row
}

// Def returns the fact class definition.
func (fd *FactData) Def() *core.FactClass { return fd.fact }

// Len returns the number of loaded rows.
func (fd *FactData) Len() int { return len(fd.rows) }

// Rows exposes the loaded rows (read-only by convention).
func (fd *FactData) Rows() []*Row { return fd.rows }

// Add validates and appends a fact row: every aggregated dimension needs
// a coordinate, multiple keys are only allowed on many-to-many
// aggregations, coordinates must reference loaded leaf members, and
// measures must be declared (derived measures are computed, not loaded).
func (fd *FactData) Add(r Row) error {
	for _, agg := range fd.fact.SharedAggs {
		dim := fd.ds.model.Dim(agg.DimClass)
		keys := r.Coords[dim.Name]
		if len(keys) == 0 {
			return fmt.Errorf("olap: fact %s: row is missing a %s coordinate", fd.fact.Name, dim.Name)
		}
		if len(keys) > 1 && !agg.ManyToMany() {
			return fmt.Errorf("olap: fact %s: multiple %s coordinates on a non many-to-many aggregation",
				fd.fact.Name, dim.Name)
		}
		dd := fd.ds.dims[dim.ID]
		for _, k := range keys {
			if dd.Member("", k) == nil {
				return fmt.Errorf("olap: fact %s: unknown %s member %q", fd.fact.Name, dim.Name, k)
			}
		}
	}
	for name := range r.Coords {
		d := fd.ds.model.DimByName(name)
		if d == nil || fd.fact.Agg(d.ID) == nil {
			return fmt.Errorf("olap: fact %s: coordinate for non-aggregated dimension %q", fd.fact.Name, name)
		}
	}
	for name := range r.Measures {
		a := fd.fact.AttByName(name)
		if a == nil {
			return fmt.Errorf("olap: fact %s: unknown measure %q", fd.fact.Name, name)
		}
		if a.IsDerived {
			return fmt.Errorf("olap: fact %s: derived measure %q cannot be loaded", fd.fact.Name, name)
		}
	}
	for name := range r.Degenerate {
		a := fd.fact.AttByName(name)
		if a == nil || !a.IsOID {
			return fmt.Errorf("olap: fact %s: %q is not a degenerate-dimension measure", fd.fact.Name, name)
		}
	}
	row := r
	fd.rows = append(fd.rows, &row)
	return nil
}

// MustAdd is Add but panics on error.
func (fd *FactData) MustAdd(r Row) {
	if err := fd.Add(r); err != nil {
		panic(err)
	}
}

// Coord is a convenience constructor for single-key coordinates.
func Coord(pairs ...string) map[string][]string {
	if len(pairs)%2 != 0 {
		panic("olap: Coord requires name/key pairs")
	}
	out := map[string][]string{}
	for i := 0; i < len(pairs); i += 2 {
		out[pairs[i]] = append(out[pairs[i]], pairs[i+1])
	}
	return out
}

// attLocation describes where an attribute name lives so filters can be
// evaluated.
type attLocation struct {
	dim     *core.DimClass
	levelID string
	att     *core.DimAtt
	measure *core.FactAtt
}

// findAtt locates an attribute by name among the fact's measures and the
// attributes of its aggregated dimensions.
func (fd *FactData) findAtt(name string) (*attLocation, error) {
	var found []*attLocation
	if a := fd.fact.AttByName(name); a != nil {
		found = append(found, &attLocation{measure: a})
	}
	for _, agg := range fd.fact.SharedAggs {
		d := fd.ds.model.Dim(agg.DimClass)
		if d == nil {
			continue
		}
		for _, a := range d.Atts {
			if a.Name == name {
				found = append(found, &attLocation{dim: d, levelID: TerminalLevel, att: a})
			}
		}
		for _, l := range d.Levels {
			for _, a := range l.Atts {
				if a.Name == name {
					found = append(found, &attLocation{dim: d, levelID: l.ID, att: a})
				}
			}
		}
	}
	switch len(found) {
	case 0:
		return nil, fmt.Errorf("olap: fact %s: no attribute %q in scope", fd.fact.Name, name)
	case 1:
		return found[0], nil
	default:
		var places []string
		for _, f := range found {
			if f.measure != nil {
				places = append(places, "measure")
			} else {
				places = append(places, f.dim.Name)
			}
		}
		return nil, fmt.Errorf("olap: fact %s: attribute %q is ambiguous (%s)",
			fd.fact.Name, name, strings.Join(places, ", "))
	}
}
