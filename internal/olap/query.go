package olap

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"goldweb/internal/core"
)

// GroupBy is one dice axis: group by the named level of the named
// dimension ("" = the dimension's terminal level).
type GroupBy struct {
	Dim   string
	Level string
}

// Filter is one slice condition on an attribute reachable from the fact
// class: a measure, a terminal-level dimension attribute, or a hierarchy
// level attribute.
type Filter struct {
	Att   string
	Op    core.Operator
	Value string
}

// Agg requests one aggregated value: an aggregation operator applied to a
// measure. Op is one of SUM, MIN, MAX, AVG, COUNT.
type Agg struct {
	Measure string
	Op      string
}

// Query is a complete cube query — the executable form of a cube class.
type Query struct {
	Fact    string
	Aggs    []Agg
	GroupBy []GroupBy
	Filters []Filter
}

// Result is a tabular query result.
type Result struct {
	// GroupCols names the grouping columns ("Time/Month").
	GroupCols []string
	// ValueCols names the value columns ("SUM(qty)").
	ValueCols []string
	Rows      []ResultRow
}

// ResultRow is one result group.
type ResultRow struct {
	// Keys are the group member keys, one per GroupCol.
	Keys []string
	// Names are the corresponding descriptor values.
	Names []string
	// Values are the aggregated measures, one per ValueCol.
	Values []float64
}

// Cell returns the value for a group identified by keys, with ok=false
// when absent.
func (r *Result) Cell(col int, keys ...string) (float64, bool) {
	for _, row := range r.Rows {
		if len(row.Keys) != len(keys) {
			continue
		}
		match := true
		for i := range keys {
			if row.Keys[i] != keys[i] {
				match = false
				break
			}
		}
		if match {
			return row.Values[col], true
		}
	}
	return 0, false
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	headers := append(append([]string{}, r.GroupCols...), r.ValueCols...)
	widths := make([]int, len(headers))
	rows := make([][]string, 0, len(r.Rows)+1)
	rows = append(rows, headers)
	for _, row := range r.Rows {
		cells := make([]string, 0, len(headers))
		for i := range row.Keys {
			label := row.Names[i]
			if label == "" {
				label = row.Keys[i]
			}
			cells = append(cells, label)
		}
		for _, v := range row.Values {
			cells = append(cells, strconv.FormatFloat(v, 'f', -1, 64))
		}
		rows = append(rows, cells)
	}
	for _, cells := range rows {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, cells := range rows {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
		if ri == 0 {
			for i := range cells {
				b.WriteString(strings.Repeat("-", widths[i]) + "  ")
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// AdditivityError reports an aggregation forbidden by the model's
// additivity rules.
type AdditivityError struct {
	Measure, Op, Dim string
}

func (e *AdditivityError) Error() string {
	return fmt.Sprintf("olap: additivity rules forbid %s(%s) along dimension %s", e.Op, e.Measure, e.Dim)
}

// Execute runs a query against the dataset.
func (ds *Dataset) Execute(q Query) (*Result, error) {
	var fd *FactData
	if f := ds.model.FactByName(q.Fact); f != nil {
		fd = ds.facts[f.ID]
	} else if f := ds.model.Fact(q.Fact); f != nil {
		fd = ds.facts[f.ID]
	} else {
		return nil, fmt.Errorf("olap: unknown fact class %q", q.Fact)
	}
	if len(q.Aggs) == 0 {
		return nil, fmt.Errorf("olap: query requests no aggregated measures")
	}

	// Resolve grouping axes.
	type axis struct {
		dim     *core.DimClass
		dd      *DimData
		levelID string
		label   string
	}
	axes := make([]*axis, len(q.GroupBy))
	grouped := map[string]string{} // dim id → level id
	for i, g := range q.GroupBy {
		d := ds.model.DimByName(g.Dim)
		if d == nil {
			return nil, fmt.Errorf("olap: unknown dimension %q", g.Dim)
		}
		if fd.fact.Agg(d.ID) == nil {
			return nil, fmt.Errorf("olap: fact %s does not aggregate dimension %s", fd.fact.Name, d.Name)
		}
		ax := &axis{dim: d, dd: ds.dims[d.ID], levelID: TerminalLevel, label: d.Name}
		if g.Level != "" {
			l := d.LevelByName(g.Level)
			if l == nil {
				return nil, fmt.Errorf("olap: dimension %s has no level %q", d.Name, g.Level)
			}
			ax.levelID = l.ID
			ax.label = d.Name + "/" + l.Name
		}
		axes[i] = ax
		grouped[d.ID] = ax.levelID
	}

	// Resolve aggregations, compile derivations, and enforce additivity:
	// an operator must be permitted along every dimension the query
	// collapses (not grouped, or grouped above the terminal level).
	type aggExec struct {
		agg    Agg
		att    *core.FactAtt
		derive derivationExpr
		label  string
	}
	aggs := make([]*aggExec, len(q.Aggs))
	for i, a := range q.Aggs {
		att := fd.fact.AttByName(a.Measure)
		if att == nil {
			return nil, fmt.Errorf("olap: fact %s has no measure %q", fd.fact.Name, a.Measure)
		}
		op := a.Op
		if op == "" {
			op = "SUM"
		}
		switch op {
		case "SUM", "MIN", "MAX", "AVG", "COUNT":
		default:
			return nil, fmt.Errorf("olap: unknown aggregation operator %q", a.Op)
		}
		ae := &aggExec{agg: Agg{Measure: a.Measure, Op: op}, att: att,
			label: op + "(" + a.Measure + ")"}
		if att.IsDerived {
			d, err := compileDerivation(att.DerivationRule)
			if err != nil {
				return nil, err
			}
			ae.derive = d
		}
		for _, sharedAgg := range fd.fact.SharedAggs {
			levelID, isGrouped := grouped[sharedAgg.DimClass]
			if isGrouped && levelID == TerminalLevel {
				continue // not collapsed along this dimension
			}
			rule := att.AdditivityFor(sharedAgg.DimClass)
			if rule != nil && !rule.Allows(op) {
				return nil, &AdditivityError{Measure: att.Name, Op: op,
					Dim: ds.model.Dim(sharedAgg.DimClass).Name}
			}
		}
		aggs[i] = ae
	}

	// Resolve filters.
	filters := make([]*filterExec, len(q.Filters))
	for i, f := range q.Filters {
		loc, err := fd.findAtt(f.Att)
		if err != nil {
			return nil, err
		}
		if !f.Op.Valid() {
			return nil, fmt.Errorf("olap: invalid operator %q", string(f.Op))
		}
		filters[i] = &filterExec{f: f, loc: loc}
	}

	// Accumulate.
	type accum struct {
		keys, names   []string
		sum, min, max []float64
		count         []int
	}
	groups := map[string]*accum{}
	var order []string

	for _, row := range fd.rows {
		ok, err := rowPasses(ds, fd, row, filters)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		// Group membership per axis (several members on non-strict or
		// many-to-many paths → the row contributes to each).
		combos := [][]*Member{{}}
		for _, ax := range axes {
			var axisMembers []*Member
			seen := map[*Member]bool{}
			for _, key := range row.Coords[ax.dim.Name] {
				leaf := ax.dd.Member("", key)
				for _, m := range ax.dd.ancestorsAt(leaf, ax.levelID) {
					if !seen[m] {
						seen[m] = true
						axisMembers = append(axisMembers, m)
					}
				}
			}
			if len(axisMembers) == 0 {
				combos = nil // the row reaches no member at this level
				break
			}
			var next [][]*Member
			for _, combo := range combos {
				for _, m := range axisMembers {
					next = append(next, append(append([]*Member{}, combo...), m))
				}
			}
			combos = next
		}
		if combos == nil {
			continue
		}
		// Measure values for this row.
		values := make([]float64, len(aggs))
		for i, ae := range aggs {
			if ae.derive != nil {
				v, err := ae.derive.eval(row.Measures)
				if err != nil {
					return nil, err
				}
				values[i] = v
			} else {
				values[i] = row.Measures[ae.att.Name]
			}
		}
		for _, combo := range combos {
			keyParts := make([]string, len(combo))
			nameParts := make([]string, len(combo))
			for i, m := range combo {
				keyParts[i] = m.Key
				nameParts[i] = m.Name
			}
			gkey := strings.Join(keyParts, "\x1f")
			acc := groups[gkey]
			if acc == nil {
				acc = &accum{keys: keyParts, names: nameParts,
					sum:   make([]float64, len(aggs)),
					min:   make([]float64, len(aggs)),
					max:   make([]float64, len(aggs)),
					count: make([]int, len(aggs))}
				groups[gkey] = acc
				order = append(order, gkey)
			}
			for i := range aggs {
				v := values[i]
				if acc.count[i] == 0 {
					acc.min[i], acc.max[i] = v, v
				} else {
					if v < acc.min[i] {
						acc.min[i] = v
					}
					if v > acc.max[i] {
						acc.max[i] = v
					}
				}
				acc.sum[i] += v
				acc.count[i]++
			}
		}
	}

	res := &Result{}
	for _, ax := range axes {
		res.GroupCols = append(res.GroupCols, ax.label)
	}
	for _, ae := range aggs {
		res.ValueCols = append(res.ValueCols, ae.label)
	}
	sort.Strings(order)
	for _, gkey := range order {
		acc := groups[gkey]
		row := ResultRow{Keys: acc.keys, Names: acc.names, Values: make([]float64, len(aggs))}
		for i, ae := range aggs {
			switch ae.agg.Op {
			case "SUM":
				row.Values[i] = acc.sum[i]
			case "MIN":
				row.Values[i] = acc.min[i]
			case "MAX":
				row.Values[i] = acc.max[i]
			case "AVG":
				row.Values[i] = acc.sum[i] / float64(acc.count[i])
			case "COUNT":
				row.Values[i] = float64(acc.count[i])
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// filterExec pairs a filter with its resolved attribute location.
type filterExec struct {
	f   Filter
	loc *attLocation
}

// rowPasses evaluates every filter against a fact row.
func rowPasses(ds *Dataset, fd *FactData, row *Row, filters []*filterExec) (bool, error) {
	for _, fe := range filters {
		ok, err := filterMatches(ds, fd, row, fe.f, fe.loc)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func filterMatches(ds *Dataset, fd *FactData, row *Row, f Filter, loc *attLocation) (bool, error) {
	if loc.measure != nil {
		var v float64
		if loc.measure.IsDerived {
			d, err := compileDerivation(loc.measure.DerivationRule)
			if err != nil {
				return false, err
			}
			if v, err = d.eval(row.Measures); err != nil {
				return false, err
			}
		} else if loc.measure.IsOID {
			return compareValues(row.Degenerate[loc.measure.Name], f.Op, f.Value), nil
		} else {
			v = row.Measures[loc.measure.Name]
		}
		return compareValues(strconv.FormatFloat(v, 'f', -1, 64), f.Op, f.Value), nil
	}
	// Dimension attribute: existential over the row's coordinates (and,
	// for level attributes, over the ancestors at that level).
	dd := ds.dims[loc.dim.ID]
	for _, key := range row.Coords[loc.dim.Name] {
		leaf := dd.Member("", key)
		if leaf == nil {
			continue
		}
		members := []*Member{leaf}
		if loc.levelID != TerminalLevel {
			members = dd.ancestorsAt(leaf, loc.levelID)
		}
		for _, m := range members {
			if compareValues(memberAttValue(m, loc.att), f.Op, f.Value) {
				return true, nil
			}
		}
	}
	return false, nil
}

// memberAttValue reads an attribute off a member: the {OID} maps to the
// key, the {D} to the name, everything else to the Attrs table.
func memberAttValue(m *Member, att *core.DimAtt) string {
	switch {
	case att.IsOID:
		return m.Key
	case att.IsD:
		return m.Name
	default:
		return m.Attrs[att.Name]
	}
}

// compareValues applies a slice operator. Ordered comparisons go numeric
// when both sides parse as numbers, string otherwise; LIKE supports the
// '%' wildcard; IN takes a comma-separated list.
func compareValues(have string, op core.Operator, want string) bool {
	switch op {
	case core.OpEQ:
		return have == want
	case core.OpNOTEQ:
		return have != want
	case core.OpLT, core.OpGT, core.OpLET, core.OpGET:
		hf, herr := strconv.ParseFloat(have, 64)
		wf, werr := strconv.ParseFloat(want, 64)
		var cmp int
		if herr == nil && werr == nil {
			switch {
			case hf < wf:
				cmp = -1
			case hf > wf:
				cmp = 1
			}
		} else {
			cmp = strings.Compare(have, want)
		}
		switch op {
		case core.OpLT:
			return cmp < 0
		case core.OpGT:
			return cmp > 0
		case core.OpLET:
			return cmp <= 0
		case core.OpGET:
			return cmp >= 0
		}
	case core.OpLIKE:
		return likeMatch(have, want)
	case core.OpNOTLIKE:
		return !likeMatch(have, want)
	case core.OpIN:
		for _, item := range strings.Split(want, ",") {
			if have == strings.TrimSpace(item) {
				return true
			}
		}
		return false
	case core.OpNOTIN:
		for _, item := range strings.Split(want, ",") {
			if have == strings.TrimSpace(item) {
				return false
			}
		}
		return true
	}
	return false
}

// likeMatch implements SQL-ish LIKE with '%' as the only wildcard.
func likeMatch(s, pattern string) bool {
	parts := strings.Split(pattern, "%")
	if len(parts) == 1 {
		return s == pattern
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for i := 1; i < len(parts)-1; i++ {
		idx := strings.Index(s, parts[i])
		if idx < 0 {
			return false
		}
		s = s[idx+len(parts[i]):]
	}
	return strings.HasSuffix(s, parts[len(parts)-1])
}

// ExecuteCube runs a cube class from the model against the dataset. The
// aggregation operator per measure is chosen as the strongest operator
// the additivity rules allow along every collapsed dimension
// (SUM → COUNT → MAX → MIN → AVG).
func (ds *Dataset) ExecuteCube(cubeID string) (*Result, error) {
	cube := ds.model.Cube(cubeID)
	if cube == nil {
		for _, c := range ds.model.Cubes {
			if c.Name == cubeID {
				cube = c
				break
			}
		}
	}
	if cube == nil {
		return nil, fmt.Errorf("olap: unknown cube class %q", cubeID)
	}
	fact := ds.model.Fact(cube.Fact)
	if fact == nil {
		return nil, fmt.Errorf("olap: cube %s references unknown fact %q", cube.Name, cube.Fact)
	}
	q := Query{Fact: fact.Name}
	grouped := map[string]string{}
	for _, d := range cube.Dices {
		dim := ds.model.Dim(d.DimClass)
		if dim == nil {
			return nil, fmt.Errorf("olap: cube %s dices unknown dimension %q", cube.Name, d.DimClass)
		}
		g := GroupBy{Dim: dim.Name}
		levelID := TerminalLevel
		if d.Level != "" {
			l := dim.Level(d.Level)
			if l == nil {
				return nil, fmt.Errorf("olap: cube %s dices unknown level %q", cube.Name, d.Level)
			}
			g.Level = l.Name
			levelID = l.ID
		}
		grouped[dim.ID] = levelID
		q.GroupBy = append(q.GroupBy, g)
	}
	for _, mid := range cube.Measures {
		att := fact.Att(mid)
		if att == nil {
			return nil, fmt.Errorf("olap: cube %s references unknown measure %q", cube.Name, mid)
		}
		op, err := strongestOp(ds, fact, att, grouped)
		if err != nil {
			return nil, err
		}
		q.Aggs = append(q.Aggs, Agg{Measure: att.Name, Op: op})
	}
	for _, s := range cube.Slices {
		att := attNameByID(ds.model, fact, s.Att)
		if att == "" {
			return nil, fmt.Errorf("olap: cube %s slices unknown attribute %q", cube.Name, s.Att)
		}
		q.Filters = append(q.Filters, Filter{Att: att, Op: s.Operator, Value: s.Value})
	}
	return ds.Execute(q)
}

// strongestOp picks the preferred operator permitted along every
// collapsed dimension.
func strongestOp(ds *Dataset, fact *core.FactClass, att *core.FactAtt, grouped map[string]string) (string, error) {
	prefs := []string{"SUM", "COUNT", "MAX", "MIN", "AVG"}
	for _, op := range prefs {
		ok := true
		for _, agg := range fact.SharedAggs {
			levelID, isGrouped := grouped[agg.DimClass]
			if isGrouped && levelID == TerminalLevel {
				continue
			}
			rule := att.AdditivityFor(agg.DimClass)
			if rule != nil && !rule.Allows(op) {
				ok = false
				break
			}
		}
		if ok {
			return op, nil
		}
	}
	return "", fmt.Errorf("olap: no aggregation operator is permitted for measure %s with this grouping", att.Name)
}

// attNameByID resolves an attribute id (dimatt or factatt) reachable from
// the fact to its name.
func attNameByID(m *core.Model, fact *core.FactClass, id string) string {
	if a := fact.Att(id); a != nil {
		return a.Name
	}
	for _, agg := range fact.SharedAggs {
		d := m.Dim(agg.DimClass)
		if d == nil {
			continue
		}
		for _, a := range d.Atts {
			if a.ID == id {
				return a.Name
			}
		}
		for _, l := range d.Levels {
			for _, a := range l.Atts {
				if a.ID == id {
					return a.Name
				}
			}
		}
	}
	return ""
}
