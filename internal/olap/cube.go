package olap

import (
	"fmt"

	"goldweb/internal/core"
)

// Cube is an interactive analysis session over a dataset: it starts from
// a query and supports the basic OLAP operations the paper lists for the
// further data-analysis phase — roll-up, drill-down, slice, dice — each
// producing a refined query that is re-executed on demand.
type Cube struct {
	ds *Dataset
	q  Query
	// history records the previous level per dimension so DrillDown can
	// retrace an ambiguous roll-up path.
	history map[string][]string
}

// NewCube starts an analysis over a fact class with the given measures
// (default operators chosen by additivity as in ExecuteCube).
func (ds *Dataset) NewCube(fact string, measures ...string) (*Cube, error) {
	f := ds.model.FactByName(fact)
	if f == nil {
		return nil, fmt.Errorf("olap: unknown fact class %q", fact)
	}
	c := &Cube{ds: ds, q: Query{Fact: fact}, history: map[string][]string{}}
	for _, m := range measures {
		att := f.AttByName(m)
		if att == nil {
			return nil, fmt.Errorf("olap: fact %s has no measure %q", fact, m)
		}
		op, err := strongestOp(ds, f, att, map[string]string{})
		if err != nil {
			return nil, err
		}
		c.q.Aggs = append(c.q.Aggs, Agg{Measure: m, Op: op})
	}
	return c, nil
}

// Query returns a copy of the cube's current query.
func (c *Cube) Query() Query { return c.q }

// Dice adds (or replaces) a grouping axis.
func (c *Cube) Dice(dim, level string) *Cube {
	for i, g := range c.q.GroupBy {
		if g.Dim == dim {
			c.q.GroupBy[i].Level = level
			return c
		}
	}
	c.q.GroupBy = append(c.q.GroupBy, GroupBy{Dim: dim, Level: level})
	return c
}

// Slice adds a filter condition.
func (c *Cube) Slice(att string, op core.Operator, value string) *Cube {
	c.q.Filters = append(c.q.Filters, Filter{Att: att, Op: op, Value: value})
	return c
}

// RollUp coarsens the grouping of a dimension by one hierarchy step. When
// the DAG offers several upward paths (alternative path hierarchies) the
// step must be disambiguated with RollUpTo.
func (c *Cube) RollUp(dim string) error {
	d := c.ds.model.DimByName(dim)
	if d == nil {
		return fmt.Errorf("olap: unknown dimension %q", dim)
	}
	g := c.groupFor(dim)
	if g == nil {
		return fmt.Errorf("olap: dimension %s is not a grouping axis; Dice first", dim)
	}
	var edges []*core.Association
	if g.Level == "" {
		edges = d.Associations
	} else {
		l := d.LevelByName(g.Level)
		if l == nil {
			return fmt.Errorf("olap: dimension %s has no level %q", dim, g.Level)
		}
		edges = l.Associations
	}
	switch len(edges) {
	case 0:
		return fmt.Errorf("olap: %s/%s is the top of the hierarchy", dim, g.Level)
	case 1:
		return c.RollUpTo(dim, d.Level(edges[0].Child).Name)
	default:
		var names []string
		for _, e := range edges {
			names = append(names, d.Level(e.Child).Name)
		}
		return fmt.Errorf("olap: roll-up from %s/%s is ambiguous (alternative paths: %v); use RollUpTo", dim, g.Level, names)
	}
}

// RollUpTo coarsens the grouping of a dimension to a named level, which
// must be one DAG step above the current grouping level.
func (c *Cube) RollUpTo(dim, level string) error {
	d := c.ds.model.DimByName(dim)
	if d == nil {
		return fmt.Errorf("olap: unknown dimension %q", dim)
	}
	g := c.groupFor(dim)
	if g == nil {
		return fmt.Errorf("olap: dimension %s is not a grouping axis; Dice first", dim)
	}
	target := d.LevelByName(level)
	if target == nil {
		return fmt.Errorf("olap: dimension %s has no level %q", dim, level)
	}
	var edges []*core.Association
	if g.Level == "" {
		edges = d.Associations
	} else if l := d.LevelByName(g.Level); l != nil {
		edges = l.Associations
	}
	for _, e := range edges {
		if e.Child == target.ID {
			c.history[dim] = append(c.history[dim], g.Level)
			g.Level = level
			return nil
		}
	}
	return fmt.Errorf("olap: no association from %s/%s to level %s", dim, g.Level, level)
}

// DrillDown refines the grouping of a dimension by one step, retracing
// the previous roll-up when one happened, and otherwise following a
// unique downward edge.
func (c *Cube) DrillDown(dim string) error {
	d := c.ds.model.DimByName(dim)
	if d == nil {
		return fmt.Errorf("olap: unknown dimension %q", dim)
	}
	g := c.groupFor(dim)
	if g == nil {
		return fmt.Errorf("olap: dimension %s is not a grouping axis", dim)
	}
	if h := c.history[dim]; len(h) > 0 {
		g.Level = h[len(h)-1]
		c.history[dim] = h[:len(h)-1]
		return nil
	}
	if g.Level == "" {
		return fmt.Errorf("olap: %s is already at the terminal level", dim)
	}
	target := d.LevelByName(g.Level)
	// Downward candidates: sources of edges into the current level.
	var sources []string // "" = terminal
	for _, e := range d.Associations {
		if e.Child == target.ID {
			sources = append(sources, "")
		}
	}
	for _, l := range d.Levels {
		for _, e := range l.Associations {
			if e.Child == target.ID {
				sources = append(sources, l.Name)
			}
		}
	}
	switch len(sources) {
	case 0:
		return fmt.Errorf("olap: no downward path from %s/%s", dim, g.Level)
	case 1:
		g.Level = sources[0]
		return nil
	default:
		return fmt.Errorf("olap: drill-down from %s/%s is ambiguous (%v)", dim, g.Level, sources)
	}
}

func (c *Cube) groupFor(dim string) *GroupBy {
	for i := range c.q.GroupBy {
		if c.q.GroupBy[i].Dim == dim {
			return &c.q.GroupBy[i]
		}
	}
	return nil
}

// Result executes the cube's current query.
func (c *Cube) Result() (*Result, error) {
	return c.ds.Execute(c.q)
}
