package olap

import (
	"fmt"
	"strconv"
	"unicode"
)

// derivationExpr is a compiled derivation rule of a derived measure
// (e.g. "qty * price"): arithmetic over the fact's stored measures.
type derivationExpr interface {
	eval(measures map[string]float64) (float64, error)
}

type dNum float64

func (n dNum) eval(map[string]float64) (float64, error) { return float64(n), nil }

type dRef string

func (r dRef) eval(ms map[string]float64) (float64, error) {
	v, ok := ms[string(r)]
	if !ok {
		return 0, fmt.Errorf("olap: derivation references measure %q absent from the row", string(r))
	}
	return v, nil
}

type dBin struct {
	op   byte
	l, r derivationExpr
}

func (b dBin) eval(ms map[string]float64) (float64, error) {
	l, err := b.l.eval(ms)
	if err != nil {
		return 0, err
	}
	r, err := b.r.eval(ms)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("olap: division by zero in derivation rule")
		}
		return l / r, nil
	}
	return 0, fmt.Errorf("olap: bad operator %q", string(b.op))
}

// compileDerivation parses a derivation rule: identifiers (measure
// names), decimal numbers, + - * / and parentheses.
func compileDerivation(rule string) (derivationExpr, error) {
	p := &deriveParser{src: rule}
	e, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("olap: trailing input in derivation rule %q", rule)
	}
	return e, nil
}

type deriveParser struct {
	src string
	pos int
}

func (p *deriveParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *deriveParser) parseSum() (derivationExpr, error) {
	l, err := p.parseProduct()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) || (p.src[p.pos] != '+' && p.src[p.pos] != '-') {
			return l, nil
		}
		op := p.src[p.pos]
		p.pos++
		r, err := p.parseProduct()
		if err != nil {
			return nil, err
		}
		l = dBin{op: op, l: l, r: r}
	}
}

func (p *deriveParser) parseProduct() (derivationExpr, error) {
	l, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) || (p.src[p.pos] != '*' && p.src[p.pos] != '/') {
			return l, nil
		}
		op := p.src[p.pos]
		p.pos++
		r, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		l = dBin{op: op, l: l, r: r}
	}
}

func (p *deriveParser) parseAtom() (derivationExpr, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("olap: unexpected end of derivation rule %q", p.src)
	}
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		e, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("olap: missing ')' in derivation rule %q", p.src)
		}
		p.pos++
		return e, nil
	case c == '-':
		p.pos++
		e, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return dBin{op: '-', l: dNum(0), r: e}, nil
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
			p.pos++
		}
		f, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return nil, fmt.Errorf("olap: bad number in derivation rule %q", p.src)
		}
		return dNum(f), nil
	case c == '_' || unicode.IsLetter(rune(c)):
		start := p.pos
		for p.pos < len(p.src) {
			r := rune(p.src[p.pos])
			if r != '_' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				break
			}
			p.pos++
		}
		return dRef(p.src[start:p.pos]), nil
	}
	return nil, fmt.Errorf("olap: unexpected %q in derivation rule %q", string(rune(c)), p.src)
}
