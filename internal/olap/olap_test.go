package olap

import (
	"math"
	"strings"
	"testing"

	"goldweb/internal/core"
)

// salesData loads a small, hand-checkable dataset for the paper's sales
// model: 2 years, 3 months, 2 products in 2 families, 2 stores in 2
// cities, 6 fact rows.
func salesData(t testing.TB) *Dataset {
	m := core.SampleSales()
	ds := NewDataset(m)

	time := ds.Dim("Time")
	time.AddMember("Year", "2001", "2001")
	time.AddMember("Year", "2002", "2002")
	time.AddMember("Month", "2001-12", "Dec 2001")
	time.AddMember("Month", "2002-01", "Jan 2002")
	time.AddMember("Month", "2002-02", "Feb 2002")
	time.MustLink("Month", "2001-12", "Year", "2001")
	time.MustLink("Month", "2002-01", "Year", "2002")
	time.MustLink("Month", "2002-02", "Year", "2002")
	time.AddMember("Week", "2002-W01", "Week 1/2002")
	time.MustLink("Week", "2002-W01", "Year", "2002")
	days := []struct{ day, month string }{
		{"2001-12-30", "2001-12"},
		{"2002-01-05", "2002-01"},
		{"2002-01-20", "2002-01"},
		{"2002-02-10", "2002-02"},
	}
	for _, d := range days {
		time.AddMember("", d.day, d.day)
		time.MustLink("", d.day, "Month", d.month)
	}
	time.MustLink("", "2002-01-05", "Week", "2002-W01")

	product := ds.Dim("Product")
	product.AddMember("Group", "food", "Food")
	product.AddMember("Group", "tech", "Tech")
	product.AddMember("Family", "dairy", "Dairy")
	product.AddMember("Family", "audio", "Audio")
	product.MustLink("Family", "dairy", "Group", "food")
	product.MustLink("Family", "audio", "Group", "tech")
	product.AddMember("", "p1", "Milk 1L").Set("list_price", "0.90")
	product.AddMember("", "p2", "Headphones").Set("list_price", "25.00")
	product.MustLink("", "p1", "Family", "dairy")
	product.MustLink("", "p2", "Family", "audio")

	store := ds.Dim("Store")
	store.AddMember("Province", "ali", "Alicante")
	store.AddMember("Province", "val", "Valencia")
	store.AddMember("City", "alc", "Alicante City")
	store.AddMember("City", "elx", "Elche")
	store.MustLink("City", "alc", "Province", "ali")
	store.MustLink("City", "elx", "Province", "ali")
	store.AddMember("", "s1", "Downtown").Set("address", "Main St 1")
	store.AddMember("", "s2", "Mall")
	store.MustLink("", "s1", "City", "alc")
	store.MustLink("", "s2", "City", "elx")

	sales := ds.Fact("Sales")
	rows := []struct {
		day, prod, store string
		qty, price, inv  float64
		ticket           string
	}{
		{"2001-12-30", "p1", "s1", 2, 1.0, 50, "T1"},
		{"2002-01-05", "p1", "s1", 3, 1.0, 45, "T2"},
		{"2002-01-05", "p2", "s1", 1, 20.0, 10, "T2"},
		{"2002-01-20", "p1", "s2", 4, 0.9, 40, "T3"},
		{"2002-02-10", "p2", "s2", 2, 22.0, 8, "T4"},
		{"2002-02-10", "p1", "s1", 5, 1.1, 35, "T5"},
	}
	for i, r := range rows {
		sales.MustAdd(Row{
			Coords:     Coord("Time", r.day, "Product", r.prod, "Store", r.store),
			Measures:   map[string]float64{"qty": r.qty, "price": r.price, "inventory": r.inv},
			Degenerate: map[string]string{"num_ticket": r.ticket, "num_line": string(rune('1' + i))},
		})
	}
	return ds
}

func TestBasicAggregation(t *testing.T) {
	ds := salesData(t)
	res, err := ds.Execute(Query{
		Fact:    "Sales",
		Aggs:    []Agg{{Measure: "qty", Op: "SUM"}},
		GroupBy: []GroupBy{{Dim: "Product", Level: "Family"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Cell(0, "dairy"); !ok || v != 14 {
		t.Errorf("dairy qty = %v (%v)", v, res)
	}
	if v, ok := res.Cell(0, "audio"); !ok || v != 3 {
		t.Errorf("audio qty = %v", v)
	}
}

func TestGroupByMultipleDims(t *testing.T) {
	ds := salesData(t)
	res, err := ds.Execute(Query{
		Fact: "Sales",
		Aggs: []Agg{{Measure: "qty", Op: "SUM"}},
		GroupBy: []GroupBy{
			{Dim: "Time", Level: "Year"},
			{Dim: "Product", Level: "Group"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checks := map[[2]string]float64{
		{"2001", "food"}: 2,
		{"2002", "food"}: 12,
		{"2002", "tech"}: 3,
	}
	for k, want := range checks {
		if v, ok := res.Cell(0, k[0], k[1]); !ok || v != want {
			t.Errorf("%v = %v, want %v", k, v, want)
		}
	}
	if _, ok := res.Cell(0, "2001", "tech"); ok {
		t.Error("empty group should be absent")
	}
}

func TestGroupAtTerminalLevel(t *testing.T) {
	ds := salesData(t)
	res, err := ds.Execute(Query{
		Fact:    "Sales",
		Aggs:    []Agg{{Measure: "qty", Op: "SUM"}},
		GroupBy: []GroupBy{{Dim: "Product"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Cell(0, "p1"); v != 14 {
		t.Errorf("p1 = %v", v)
	}
}

func TestAggOperators(t *testing.T) {
	ds := salesData(t)
	res, err := ds.Execute(Query{
		Fact: "Sales",
		Aggs: []Agg{
			{Measure: "qty", Op: "SUM"},
			{Measure: "qty", Op: "MIN"},
			{Measure: "qty", Op: "MAX"},
			{Measure: "qty", Op: "AVG"},
			{Measure: "qty", Op: "COUNT"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	got := res.Rows[0].Values
	want := []float64{17, 1, 5, 17.0 / 6.0, 6}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("col %s = %v, want %v", res.ValueCols[i], got[i], want[i])
		}
	}
}

func TestDerivedMeasure(t *testing.T) {
	ds := salesData(t)
	res, err := ds.Execute(Query{
		Fact:    "Sales",
		Aggs:    []Agg{{Measure: "total", Op: "SUM"}},
		GroupBy: []GroupBy{{Dim: "Time", Level: "Year"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2002: 3*1 + 1*20 + 4*0.9 + 2*22 + 5*1.1 = 76.1
	if v, _ := res.Cell(0, "2002"); math.Abs(v-76.1) > 1e-9 {
		t.Errorf("2002 total = %v", v)
	}
	if v, _ := res.Cell(0, "2001"); v != 2 {
		t.Errorf("2001 total = %v", v)
	}
}

func TestAdditivityEnforcement(t *testing.T) {
	ds := salesData(t)
	// SUM(inventory) collapsing Time is forbidden by the model.
	_, err := ds.Execute(Query{
		Fact:    "Sales",
		Aggs:    []Agg{{Measure: "inventory", Op: "SUM"}},
		GroupBy: []GroupBy{{Dim: "Product", Level: "Family"}},
	})
	var addErr *AdditivityError
	if err == nil {
		t.Fatal("SUM(inventory) along Time accepted")
	}
	if ae, ok := err.(*AdditivityError); ok {
		addErr = ae
	} else {
		t.Fatalf("wrong error type: %v", err)
	}
	if addErr.Dim != "Time" || addErr.Op != "SUM" {
		t.Errorf("error detail: %+v", addErr)
	}
	// MAX(inventory) is allowed along Time.
	if _, err := ds.Execute(Query{
		Fact:    "Sales",
		Aggs:    []Agg{{Measure: "inventory", Op: "MAX"}},
		GroupBy: []GroupBy{{Dim: "Product", Level: "Family"}},
	}); err != nil {
		t.Errorf("MAX(inventory) rejected: %v", err)
	}
	// Grouping Time at the terminal level does not collapse it, so SUM is
	// fine again.
	if _, err := ds.Execute(Query{
		Fact:    "Sales",
		Aggs:    []Agg{{Measure: "inventory", Op: "SUM"}},
		GroupBy: []GroupBy{{Dim: "Time"}, {Dim: "Product"}, {Dim: "Store"}},
	}); err != nil {
		t.Errorf("uncollapsed SUM(inventory) rejected: %v", err)
	}
	// price is flagged not-additive along Time: nothing works when Time
	// collapses.
	if _, err := ds.Execute(Query{
		Fact: "Sales",
		Aggs: []Agg{{Measure: "price", Op: "AVG"}},
	}); err == nil {
		t.Error("AVG(price) collapsing Time accepted despite isnot rule")
	}
}

func TestFilters(t *testing.T) {
	ds := salesData(t)
	run := func(f Filter) float64 {
		t.Helper()
		res, err := ds.Execute(Query{
			Fact:    "Sales",
			Aggs:    []Agg{{Measure: "qty", Op: "SUM"}},
			Filters: []Filter{f},
		})
		if err != nil {
			t.Fatalf("filter %+v: %v", f, err)
		}
		if len(res.Rows) == 0 {
			return 0
		}
		return res.Rows[0].Values[0]
	}
	cases := []struct {
		f    Filter
		want float64
	}{
		{Filter{Att: "product_name", Op: core.OpEQ, Value: "Milk 1L"}, 14},
		{Filter{Att: "product_name", Op: core.OpNOTEQ, Value: "Milk 1L"}, 3},
		{Filter{Att: "family_name", Op: core.OpEQ, Value: "Dairy"}, 14},      // level attribute
		{Filter{Att: "province_name", Op: core.OpEQ, Value: "Alicante"}, 17}, // everything is in Alicante
		{Filter{Att: "qty", Op: core.OpGET, Value: "4"}, 9},
		{Filter{Att: "qty", Op: core.OpLT, Value: "2"}, 1},
		{Filter{Att: "num_ticket", Op: core.OpEQ, Value: "T2"}, 4},
		{Filter{Att: "product_name", Op: core.OpLIKE, Value: "Milk%"}, 14},
		{Filter{Att: "product_name", Op: core.OpLIKE, Value: "%phone%"}, 3},
		{Filter{Att: "product_id", Op: core.OpIN, Value: "p1, p2"}, 17},
		{Filter{Att: "product_id", Op: core.OpNOTIN, Value: "p1"}, 3},
		{Filter{Att: "month_name", Op: core.OpEQ, Value: "Jan 2002"}, 8},
	}
	for _, tc := range cases {
		if got := run(tc.f); got != tc.want {
			t.Errorf("filter %v %s %q: got %v, want %v", tc.f.Att, tc.f.Op, tc.f.Value, got, tc.want)
		}
	}
}

func TestExecuteCubeClass(t *testing.T) {
	ds := salesData(t)
	// The sample cube: qty+total by Family and Month, province Alicante.
	res, err := ds.ExecuteCube("QtyByProductAndMonth")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GroupCols) != 2 || res.GroupCols[0] != "Product/Family" {
		t.Errorf("group cols = %v", res.GroupCols)
	}
	if v, ok := res.Cell(0, "dairy", "2002-01"); !ok || v != 7 {
		t.Errorf("dairy Jan = %v\n%s", v, res)
	}
	// total for tech in Feb: 2 * 22 = 44
	if v, ok := res.Cell(1, "audio", "2002-02"); !ok || v != 44 {
		t.Errorf("audio Feb total = %v", v)
	}
}

func TestCubeRollUpDrillDown(t *testing.T) {
	ds := salesData(t)
	c, err := ds.NewCube("Sales", "qty")
	if err != nil {
		t.Fatal(err)
	}
	c.Dice("Time", "Month")
	res, err := c.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("months = %d", len(res.Rows))
	}
	// Roll up Month → Year.
	if err := c.RollUp("Time"); err != nil {
		t.Fatal(err)
	}
	res, err = c.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("years = %d (%v)", len(res.Rows), res)
	}
	if v, _ := res.Cell(0, "2002"); v != 15 {
		t.Errorf("2002 qty = %v", v)
	}
	// Drill back down to Month.
	if err := c.DrillDown("Time"); err != nil {
		t.Fatal(err)
	}
	res, _ = c.Result()
	if len(res.Rows) != 3 {
		t.Errorf("after drill-down: %d rows", len(res.Rows))
	}
	// Terminal → ambiguous roll-up (Month and Week are alternatives).
	c2, _ := ds.NewCube("Sales", "qty")
	c2.Dice("Time", "")
	if err := c2.RollUp("Time"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous roll-up not detected: %v", err)
	}
	if err := c2.RollUpTo("Time", "Week"); err != nil {
		t.Fatal(err)
	}
	res, err = c2.Result()
	if err != nil {
		t.Fatal(err)
	}
	// Only one day is linked to a week; its rows: qty 3 + 1 = 4.
	if v, ok := res.Cell(0, "2002-W01"); !ok || v != 4 {
		t.Errorf("week qty = %v (%v)", v, res)
	}
}

func TestCubeSlice(t *testing.T) {
	ds := salesData(t)
	c, _ := ds.NewCube("Sales", "qty")
	c.Dice("Store", "City").Slice("year_number", core.OpEQ, "2002")
	res, err := c.Result()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Cell(0, "alc"); v != 9 {
		t.Errorf("alc qty = %v\n%s", v, res)
	}
	if v, _ := res.Cell(0, "elx"); v != 6 {
		t.Errorf("elx qty = %v", v)
	}
}

func TestManyToManyContribution(t *testing.T) {
	m := core.SampleHospital()
	ds := NewDataset(m)
	time := ds.Dim("Time")
	time.AddMember("", "d1", "day 1")
	time.AddMember("Month", "m1", "Jan")
	time.MustLink("", "d1", "Month", "m1")
	patient := ds.Dim("Patient")
	patient.AddMember("", "pat1", "Alice")
	patient.AddMember("RiskGroup", "low", "Low risk")
	patient.AddMember("RiskGroup", "high", "High risk")
	// Non-strict: Alice belongs to both risk groups.
	patient.MustLink("", "pat1", "RiskGroup", "low")
	patient.MustLink("", "pat1", "RiskGroup", "high")
	diag := ds.Dim("Diagnosis")
	diag.AddMember("", "dx1", "Flu")
	diag.AddMember("", "dx2", "Asthma")
	ward := ds.Dim("Ward")
	ward.AddMember("", "w1", "North")

	adm := ds.Fact("Admissions")
	adm.MustAdd(Row{
		Coords: map[string][]string{
			"Time": {"d1"}, "Patient": {"pat1"}, "Ward": {"w1"},
			"Diagnosis": {"dx1", "dx2"}, // many-to-many
		},
		Measures:   map[string]float64{"stay_days": 5, "cost": 1000},
		Degenerate: map[string]string{"admission_id": "A1"},
	})

	// Group by Diagnosis at the terminal level: the admission contributes
	// to both diagnoses.
	res, err := ds.Execute(Query{
		Fact:    "Admissions",
		Aggs:    []Agg{{Measure: "stay_days", Op: "SUM"}},
		GroupBy: []GroupBy{{Dim: "Diagnosis"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("diagnosis groups = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Values[0] != 5 {
			t.Errorf("%v = %v", row.Keys, row.Values[0])
		}
	}
	// Non-strict roll-up: contributes to both risk groups.
	res, err = ds.Execute(Query{
		Fact:    "Admissions",
		Aggs:    []Agg{{Measure: "cost", Op: "SUM"}},
		GroupBy: []GroupBy{{Dim: "Patient", Level: "RiskGroup"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("risk groups = %d", len(res.Rows))
	}
}

func TestStrictLinkRejected(t *testing.T) {
	ds := salesData(t)
	product := ds.Dim("Product")
	// p1 already rolls up to dairy; Product→Family is strict.
	if err := product.Link("", "p1", "Family", "audio"); err == nil {
		t.Error("second parent accepted on a strict association")
	}
	// No DAG edge Store City → Family.
	store := ds.Dim("Store")
	if err := store.Link("City", "alc", "Province", "nope"); err == nil {
		t.Error("link to unknown member accepted")
	}
}

func TestLinkRequiresDAGEdge(t *testing.T) {
	ds := salesData(t)
	time := ds.Dim("Time")
	// There is no association Week → Month.
	if err := time.Link("Week", "2002-W01", "Month", "2002-01"); err == nil {
		t.Error("link along a non-existent DAG edge accepted")
	}
}

func TestCompletenessCheck(t *testing.T) {
	m := core.SampleSales()
	ds := NewDataset(m)
	time := ds.Dim("Time")
	time.AddMember("", "day1", "day 1")
	time.AddMember("Month", "m1", "Jan")
	time.AddMember("Year", "y1", "2002")
	// Terminal → Month is complete, but day1 has no month parent.
	errs := time.CheckComplete()
	if len(errs) == 0 {
		t.Fatal("completeness violation not detected")
	}
	time.MustLink("", "day1", "Month", "m1")
	// Month → Year is complete too.
	if errs := time.CheckComplete(); len(errs) == 0 {
		t.Fatal("m1 without year parent not detected")
	}
	time.MustLink("Month", "m1", "Year", "y1")
	if errs := time.CheckComplete(); len(errs) != 0 {
		t.Fatalf("unexpected: %v", errs)
	}
}

func TestRowValidation(t *testing.T) {
	ds := salesData(t)
	sales := ds.Fact("Sales")
	cases := []struct {
		name string
		row  Row
	}{
		{"missing coordinate", Row{
			Coords:   Coord("Time", "2002-01-05", "Product", "p1"),
			Measures: map[string]float64{"qty": 1},
		}},
		{"unknown member", Row{
			Coords:   Coord("Time", "2099-01-01", "Product", "p1", "Store", "s1"),
			Measures: map[string]float64{"qty": 1},
		}},
		{"multi-key on strict aggregation", Row{
			Coords: map[string][]string{
				"Time": {"2002-01-05"}, "Product": {"p1", "p2"}, "Store": {"s1"}},
			Measures: map[string]float64{"qty": 1},
		}},
		{"unknown measure", Row{
			Coords:   Coord("Time", "2002-01-05", "Product", "p1", "Store", "s1"),
			Measures: map[string]float64{"revenue": 1},
		}},
		{"loading a derived measure", Row{
			Coords:   Coord("Time", "2002-01-05", "Product", "p1", "Store", "s1"),
			Measures: map[string]float64{"total": 1},
		}},
		{"degenerate on non-OID", Row{
			Coords:     Coord("Time", "2002-01-05", "Product", "p1", "Store", "s1"),
			Measures:   map[string]float64{"qty": 1},
			Degenerate: map[string]string{"qty": "x"},
		}},
	}
	for _, tc := range cases {
		if err := sales.Add(tc.row); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	ds := salesData(t)
	cases := []Query{
		{Fact: "Ghost", Aggs: []Agg{{Measure: "qty"}}},
		{Fact: "Sales"},
		{Fact: "Sales", Aggs: []Agg{{Measure: "ghost"}}},
		{Fact: "Sales", Aggs: []Agg{{Measure: "qty", Op: "MEDIAN"}}},
		{Fact: "Sales", Aggs: []Agg{{Measure: "qty"}}, GroupBy: []GroupBy{{Dim: "Ghost"}}},
		{Fact: "Sales", Aggs: []Agg{{Measure: "qty"}}, GroupBy: []GroupBy{{Dim: "Time", Level: "Ghost"}}},
		{Fact: "Sales", Aggs: []Agg{{Measure: "qty"}}, Filters: []Filter{{Att: "ghost", Op: core.OpEQ, Value: "1"}}},
		{Fact: "Sales", Aggs: []Agg{{Measure: "qty"}}, Filters: []Filter{{Att: "qty", Op: "BOGUS", Value: "1"}}},
	}
	for i, q := range cases {
		if _, err := ds.Execute(q); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDerivationParser(t *testing.T) {
	ms := map[string]float64{"a": 6, "b": 3, "c": 2}
	cases := []struct {
		rule string
		want float64
	}{
		{"a * b", 18},
		{"a + b * c", 12},
		{"(a + b) * c", 18},
		{"a / b", 2},
		{"a - b - c", 1},
		{"-a + b", -3},
		{"a * 1.5", 9},
	}
	for _, tc := range cases {
		e, err := compileDerivation(tc.rule)
		if err != nil {
			t.Errorf("%s: %v", tc.rule, err)
			continue
		}
		got, err := e.eval(ms)
		if err != nil || got != tc.want {
			t.Errorf("%s = %v (%v), want %v", tc.rule, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "a +", "(a", "a $ b", "1..2"} {
		if _, err := compileDerivation(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	if e, _ := compileDerivation("a / zero"); e != nil {
		if _, err := e.eval(map[string]float64{"a": 1, "zero": 0}); err == nil {
			t.Error("division by zero not reported")
		}
	}
	if e, _ := compileDerivation("missing + 1"); e != nil {
		if _, err := e.eval(ms); err == nil {
			t.Error("missing measure not reported")
		}
	}
}

func TestResultString(t *testing.T) {
	ds := salesData(t)
	res, err := ds.Execute(Query{
		Fact:    "Sales",
		Aggs:    []Agg{{Measure: "qty", Op: "SUM"}},
		GroupBy: []GroupBy{{Dim: "Time", Level: "Year"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "Time/Year") || !strings.Contains(s, "SUM(qty)") {
		t.Errorf("table header missing:\n%s", s)
	}
	if !strings.Contains(s, "2002") {
		t.Errorf("row missing:\n%s", s)
	}
}
