package olap

import (
	"strings"
	"testing"

	"goldweb/internal/core"
)

func TestCubeErrorPaths(t *testing.T) {
	ds := salesData(t)
	if _, err := ds.NewCube("Ghost", "qty"); err == nil {
		t.Error("unknown fact accepted")
	}
	if _, err := ds.NewCube("Sales", "ghost"); err == nil {
		t.Error("unknown measure accepted")
	}
	c, err := ds.NewCube("Sales", "qty")
	if err != nil {
		t.Fatal(err)
	}
	// Operations on a dimension that is not a grouping axis.
	if err := c.RollUp("Time"); err == nil || !strings.Contains(err.Error(), "Dice first") {
		t.Errorf("rollup without dice: %v", err)
	}
	if err := c.DrillDown("Time"); err == nil {
		t.Error("drill-down without dice accepted")
	}
	if err := c.RollUp("Ghost"); err == nil {
		t.Error("unknown dimension accepted")
	}
	if err := c.RollUpTo("Time", "Ghost"); err == nil {
		t.Error("unknown level accepted")
	}
	// Top of the hierarchy.
	c.Dice("Time", "Year")
	if err := c.RollUp("Time"); err == nil || !strings.Contains(err.Error(), "top of the hierarchy") {
		t.Errorf("rollup at top: %v", err)
	}
	// DrillDown at the terminal level with no history.
	c2, _ := ds.NewCube("Sales", "qty")
	c2.Dice("Product", "")
	if err := c2.DrillDown("Product"); err == nil || !strings.Contains(err.Error(), "terminal") {
		t.Errorf("drill-down at terminal: %v", err)
	}
	// Non-adjacent roll-up.
	c3, _ := ds.NewCube("Sales", "qty")
	c3.Dice("Time", "")
	if err := c3.RollUpTo("Time", "Year"); err == nil {
		t.Error("skipping a level accepted")
	}
}

func TestCubeDrillDownWithoutHistoryUnique(t *testing.T) {
	ds := salesData(t)
	// Store hierarchy is a chain: terminal → City → Province. Drill-down
	// from Province without history follows the unique downward edge.
	c, _ := ds.NewCube("Sales", "qty")
	c.Dice("Store", "Province")
	if err := c.DrillDown("Store"); err != nil {
		t.Fatalf("unique drill-down failed: %v", err)
	}
	if got := c.Query().GroupBy[0].Level; got != "City" {
		t.Errorf("level after drill-down = %q", got)
	}
	// Year has two downward edges (Month, Week): ambiguous without history.
	c2, _ := ds.NewCube("Sales", "qty")
	c2.Dice("Time", "Year")
	if err := c2.DrillDown("Time"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous drill-down: %v", err)
	}
}

func TestCubeDiceReplacesAxis(t *testing.T) {
	ds := salesData(t)
	c, _ := ds.NewCube("Sales", "qty")
	c.Dice("Time", "Month").Dice("Time", "Year")
	if got := len(c.Query().GroupBy); got != 1 {
		t.Fatalf("axes = %d", got)
	}
	if c.Query().GroupBy[0].Level != "Year" {
		t.Errorf("level = %s", c.Query().GroupBy[0].Level)
	}
}

func TestCubeSliceAccumulates(t *testing.T) {
	ds := salesData(t)
	c, _ := ds.NewCube("Sales", "qty")
	c.Slice("product_name", core.OpEQ, "Milk 1L").
		Slice("qty", core.OpGET, "4")
	res, err := c.Result()
	if err != nil {
		t.Fatal(err)
	}
	// Milk rows with qty >= 4: 4 + 5 = 9.
	if res.Rows[0].Values[0] != 9 {
		t.Errorf("sliced qty = %v", res.Rows[0].Values[0])
	}
}

func TestDatasetAccessors(t *testing.T) {
	ds := salesData(t)
	if ds.Model().Name != "Sales DW" {
		t.Error("Model accessor")
	}
	if ds.Dim("Time").Def().Name != "Time" {
		t.Error("Dim Def accessor")
	}
	if ds.Fact("Sales").Def().Name != "Sales" {
		t.Error("Fact Def accessor")
	}
	if got := len(ds.Fact("Sales").Rows()); got != 6 {
		t.Errorf("Rows = %d", got)
	}
	if got := ds.Dim("Time").Size("Month"); got != 3 {
		t.Errorf("Size(Month) = %d", got)
	}
	if got := ds.Dim("Time").Size("Ghost"); got != 0 {
		t.Errorf("Size(Ghost) = %d", got)
	}
	members := ds.Dim("Product").Members("Family")
	if len(members) != 2 {
		t.Errorf("Members = %d", len(members))
	}
	p1 := ds.Dim("Product").Member("", "p1")
	fam := ds.Model().DimByName("Product").LevelByName("Family")
	if got := p1.ParentsAt(fam.ID); len(got) != 1 || got[0].Key != "dairy" {
		t.Errorf("ParentsAt = %v", got)
	}
}

func TestUnknownDimensionPanics(t *testing.T) {
	ds := salesData(t)
	defer func() {
		if recover() == nil {
			t.Error("Dim on unknown name should panic")
		}
	}()
	ds.Dim("Nope")
}
