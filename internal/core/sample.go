package core

import "time"

// SampleSales builds the paper's running example: a Sales data warehouse
// with a sales-ticket fact class (including the ticket and line number
// degenerate dimensions of §2), Time / Product / Store dimensions with
// multiple and alternative path classification hierarchies, additivity
// rules on the inventory measure (Fig. 6.3), and a cube class stating an
// initial user requirement.
func SampleSales() *Model {
	b := NewModel("Sales DW").
		Created(time.Date(2002, 3, 24, 0, 0, 0, 0, time.UTC)).
		Modified(time.Date(2002, 6, 10, 0, 0, 0, 0, time.UTC)).
		Describe("Conceptual MD model of the sales-ticket data warehouse used as the running example of the paper.").
		Responsible("DW team")

	// Time dimension: Day → Month → Year plus the alternative path
	// Day → Week → Year (a multiple/alternative classification hierarchy).
	time := b.TimeDimension("Time").
		Describe("Calendar time at ticket granularity.").
		Key("day_id", "OID").
		Descriptor("day_date", "Date").
		Attr("holiday", "Boolean")
	time.Level("Month").
		Key("month_id", "OID").
		Descriptor("month_name", "String").
		Rollup("Year").Complete()
	time.Level("Week").
		Key("week_id", "OID").
		Descriptor("week_number", "Integer").
		Rollup("Year")
	time.Level("Year").
		Key("year_id", "OID").
		Descriptor("year_number", "Integer")
	time.Rollup("Month").Complete()
	time.Rollup("Week")

	// Product dimension: Product → Family → Group with a categorization
	// of products into subtypes.
	product := b.Dimension("Product").
		Describe("Products on sale.").
		Key("product_id", "OID").
		Descriptor("product_name", "String").
		Attr("list_price", "Currency").
		Categorize("Grocery", "shelf_life").
		Categorize("Electronics", "warranty_months")
	product.Level("Family").
		Key("family_id", "OID").
		Descriptor("family_name", "String").
		Rollup("Group")
	product.Level("Group").
		Key("group_id", "OID").
		Descriptor("group_name", "String")
	product.Rollup("Family").Complete()

	// Store dimension: Store → City → Province (strict, non-complete by
	// default, per the paper).
	store := b.Dimension("Store").
		Describe("Stores issuing the sales tickets.").
		Key("store_id", "OID").
		Descriptor("store_name", "String").
		Attr("address", "String").
		Method("relocate", "relocate(city: String)")
	store.Level("City").
		Key("city_id", "OID").
		Descriptor("city_name", "String").
		Rollup("Province")
	store.Level("Province").
		Key("province_id", "OID").
		Descriptor("province_name", "String")
	store.Rollup("City")

	// Sales fact class: the ticket/line degenerate dimensions, qty and
	// inventory measures, and a derived total.
	sales := b.Fact("Sales").
		Describe("Sales tickets, one fact per ticket line.").
		Aggregates("Time").
		Aggregates("Product").
		Aggregates("Store")
	sales.Measure("num_ticket", "Integer").OID().
		Describe("Ticket number: a degenerate dimension.")
	sales.Measure("num_line", "Integer").OID().
		Describe("Line number within the ticket: a degenerate dimension.")
	sales.Measure("qty", "Integer").
		Describe("Quantity sold.")
	sales.Measure("price", "Currency").
		Describe("Unit sale price.").
		NotAdditive("Time").
		Additive("Product", "MAX", "MIN", "AVG").
		Additive("Store", "MAX", "MIN", "AVG")
	sales.Measure("inventory", "Integer").
		Describe("Stock level snapshot: semi-additive.").
		Additive("Time", "MAX", "MIN", "AVG").
		Additive("Product", "SUM", "MAX", "MIN", "AVG", "COUNT").
		Additive("Store", "SUM", "MAX", "MIN", "AVG", "COUNT")
	sales.Measure("total", "Currency").
		Derived("qty * price").
		Describe("Line total, derived from qty and price.")
	sales.Method("cancelTicket", "cancelTicket(num_ticket: Integer)")

	// Initial user requirement as a cube class.
	b.Cube("QtyByProductAndMonth", "Sales").
		Describe("Quantity sold per product family and month in province Alicante.").
		Measures("qty", "total").
		Slice("province_name", OpEQ, "Alicante").
		Dice("Product", "Family").
		Dice("Time", "Month")

	return b.MustBuild()
}

// SampleHospital builds a second, advanced model: two fact classes
// sharing dimensions (the situation of Fig. 5), a many-to-many
// fact-dimension relationship (patient diagnoses), and a non-strict,
// complete hierarchy.
func SampleHospital() *Model {
	b := NewModel("Hospital DW").
		Created(time.Date(2002, 5, 2, 0, 0, 0, 0, time.UTC)).
		Describe("Admissions and treatments over shared Patient/Time dimensions.").
		Responsible("clinical BI group")

	time := b.TimeDimension("Time").
		Key("day_id", "OID").
		Descriptor("day_date", "Date")
	time.Level("Month").
		Key("month_id", "OID").
		Descriptor("month_name", "String")
	time.Rollup("Month").Complete()

	patient := b.Dimension("Patient").
		Describe("Admitted patients.").
		Key("patient_id", "OID").
		Descriptor("patient_name", "String").
		Attr("birth_date", "Date")
	// A patient belongs to one or more risk groups: non-strict and
	// complete classification.
	patient.Level("RiskGroup").
		Key("risk_id", "OID").
		Descriptor("risk_name", "String")
	patient.Rollup("RiskGroup").NonStrict().Complete()

	diagnosis := b.Dimension("Diagnosis").
		Describe("Diagnoses catalogue (ICD).").
		Key("diagnosis_id", "OID").
		Descriptor("diagnosis_name", "String")
	diagnosis.Level("DiagnosisGroup").
		Key("dgroup_id", "OID").
		Descriptor("dgroup_name", "String")
	diagnosis.Rollup("DiagnosisGroup")

	b.Dimension("Ward").
		Key("ward_id", "OID").
		Descriptor("ward_name", "String")

	adm := b.Fact("Admissions").
		Describe("Hospital admissions; a patient may carry several diagnoses (many-to-many).").
		Aggregates("Time").
		Aggregates("Patient").
		AggregatesMany("Diagnosis").
		Aggregates("Ward")
	adm.Measure("admission_id", "Integer").OID().
		Describe("Admission number: degenerate dimension.")
	adm.Measure("stay_days", "Integer").
		Describe("Length of stay.")
	adm.Measure("cost", "Currency").
		Describe("Total admission cost.")

	treat := b.Fact("Treatments").
		Describe("Treatments administered during admissions.").
		Aggregates("Time").
		Aggregates("Patient").
		Aggregates("Ward")
	treat.Measure("dose_units", "Integer")
	treat.Measure("duration_min", "Integer").
		Additive("Time", "SUM", "AVG", "MAX").
		Additive("Patient", "SUM", "AVG").
		Additive("Ward", "SUM", "AVG")

	b.Cube("StayByRiskGroup", "Admissions").
		Describe("Average stay per risk group and month.").
		Measures("stay_days").
		Dice("Patient", "RiskGroup").
		Dice("Time", "Month")

	return b.MustBuild()
}
