package core

import (
	"fmt"
	"time"
)

// ModelBuilder constructs well-formed models programmatically, playing
// the role of the paper's CASE tool editor. Classes are referenced by
// name while building; Build resolves the names to ids and runs the
// semantic validator.
type ModelBuilder struct {
	m    *Model
	seq  map[string]int
	errs []error

	facts []*factBuild
	dims  []*dimBuild
	cubes []*cubeBuild
}

// NewModel starts a model with the given name.
func NewModel(name string) *ModelBuilder {
	b := &ModelBuilder{
		m:   &Model{Name: name, ShowAtts: true, ShowMethods: true},
		seq: map[string]int{},
	}
	b.m.ID = b.nextID("m")
	return b
}

func (b *ModelBuilder) nextID(prefix string) string {
	b.seq[prefix]++
	return fmt.Sprintf("%s%d", prefix, b.seq[prefix])
}

func (b *ModelBuilder) errf(format string, args ...interface{}) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Created sets the creation date.
func (b *ModelBuilder) Created(t time.Time) *ModelBuilder {
	b.m.CreationDate = t
	return b
}

// Modified sets the last-modified date.
func (b *ModelBuilder) Modified(t time.Time) *ModelBuilder {
	b.m.LastModified = t
	return b
}

// Describe sets the model description.
func (b *ModelBuilder) Describe(s string) *ModelBuilder {
	b.m.Description = s
	return b
}

// Responsible sets the person responsible for the model.
func (b *ModelBuilder) Responsible(s string) *ModelBuilder {
	b.m.Responsible = s
	return b
}

// ---- fact classes ----

type factBuild struct {
	f    *FactClass
	aggs []*aggBuild // dimension references by name
}

type aggBuild struct {
	agg     *SharedAgg
	dimName string
}

// FactBuilder builds one fact class.
type FactBuilder struct {
	b  *ModelBuilder
	fb *factBuild
}

// Fact adds a fact class.
func (b *ModelBuilder) Fact(name string) *FactBuilder {
	f := &FactClass{ID: b.nextID("f"), Name: name}
	fb := &factBuild{f: f}
	b.facts = append(b.facts, fb)
	b.m.Facts = append(b.m.Facts, f)
	return &FactBuilder{b: b, fb: fb}
}

// Describe sets the fact class description.
func (fb *FactBuilder) Describe(s string) *FactBuilder {
	fb.fb.f.Description = s
	return fb
}

// Method adds an operation to the fact class.
func (fb *FactBuilder) Method(name, signature string) *FactBuilder {
	fb.fb.f.Methods = append(fb.fb.f.Methods, &Method{
		ID: fb.b.nextID("mt"), Name: name, Signature: signature})
	return fb
}

// Aggregates adds a shared aggregation to the named dimension with the
// default multiplicities (fact side M, dimension side 1).
func (fb *FactBuilder) Aggregates(dimName string) *FactBuilder {
	return fb.AggregatesRoles(dimName, MultM, Mult1)
}

// AggregatesMany adds a many-to-many shared aggregation (both roles M),
// the paper's treatment of many-to-many relationships between facts and a
// particular dimension.
func (fb *FactBuilder) AggregatesMany(dimName string) *FactBuilder {
	return fb.AggregatesRoles(dimName, MultM, MultM)
}

// AggregatesRoles adds a shared aggregation with explicit multiplicities.
func (fb *FactBuilder) AggregatesRoles(dimName string, roleA, roleB Multiplicity) *FactBuilder {
	fb.fb.aggs = append(fb.fb.aggs, &aggBuild{
		agg:     &SharedAgg{RoleA: roleA, RoleB: roleB},
		dimName: dimName,
	})
	return fb
}

// MeasureBuilder refines one measure.
type MeasureBuilder struct {
	fb *FactBuilder
	a  *FactAtt
}

// Measure adds a measure (fact attribute) with a conceptual type.
func (fb *FactBuilder) Measure(name, typ string) *MeasureBuilder {
	a := &FactAtt{ID: fb.b.nextID("fa"), Name: name, Type: typ, IsAtomic: true}
	fb.fb.f.Atts = append(fb.fb.f.Atts, a)
	return &MeasureBuilder{fb: fb, a: a}
}

// OID marks the measure as identifying ({OID}), modeling a degenerate
// dimension.
func (mb *MeasureBuilder) OID() *MeasureBuilder {
	mb.a.IsOID = true
	return mb
}

// Derived marks the measure as derived with the given rule.
func (mb *MeasureBuilder) Derived(rule string) *MeasureBuilder {
	mb.a.IsDerived = true
	mb.a.DerivationRule = rule
	return mb
}

// Describe sets the measure description.
func (mb *MeasureBuilder) Describe(s string) *MeasureBuilder {
	mb.a.Description = s
	return mb
}

// Additive declares the aggregation operators allowed along the named
// dimension (SUM, MAX, MIN, AVG, COUNT).
func (mb *MeasureBuilder) Additive(dimName string, ops ...string) *MeasureBuilder {
	r := &AdditivityRule{DimClass: dimName} // name; resolved at Build
	for _, op := range ops {
		switch op {
		case "SUM":
			r.IsSUM = true
		case "MAX":
			r.IsMAX = true
		case "MIN":
			r.IsMIN = true
		case "AVG":
			r.IsAVG = true
		case "COUNT":
			r.IsCOUNT = true
		default:
			mb.fb.b.errf("measure %s: unknown aggregation operator %q", mb.a.Name, op)
		}
	}
	mb.a.Additivity = append(mb.a.Additivity, r)
	return mb
}

// NotAdditive declares the measure non-additive along the named dimension.
func (mb *MeasureBuilder) NotAdditive(dimName string) *MeasureBuilder {
	mb.a.Additivity = append(mb.a.Additivity, &AdditivityRule{DimClass: dimName, IsNot: true})
	return mb
}

// Fact returns to the fact builder for chaining.
func (mb *MeasureBuilder) Fact() *FactBuilder { return mb.fb }

// ---- dimension classes ----

type dimBuild struct {
	d *DimClass
}

// DimBuilder builds one dimension class.
type DimBuilder struct {
	b  *ModelBuilder
	db *dimBuild
}

// Dimension adds a dimension class.
func (b *ModelBuilder) Dimension(name string) *DimBuilder {
	d := &DimClass{ID: b.nextID("d"), Name: name}
	db := &dimBuild{d: d}
	b.dims = append(b.dims, db)
	b.m.Dims = append(b.m.Dims, d)
	return &DimBuilder{b: b, db: db}
}

// TimeDimension adds a dimension class flagged as the time dimension.
func (b *ModelBuilder) TimeDimension(name string) *DimBuilder {
	db := b.Dimension(name)
	db.db.d.IsTime = true
	return db
}

// Describe sets the dimension description.
func (db *DimBuilder) Describe(s string) *DimBuilder {
	db.db.d.Description = s
	return db
}

// Attr adds a plain attribute to the dimension's terminal level.
func (db *DimBuilder) Attr(name, typ string) *DimBuilder {
	db.db.d.Atts = append(db.db.d.Atts, &DimAtt{ID: db.b.nextID("da"), Name: name, Type: typ})
	return db
}

// Key adds the identifying {OID} attribute of the terminal level.
func (db *DimBuilder) Key(name, typ string) *DimBuilder {
	db.db.d.Atts = append(db.db.d.Atts, &DimAtt{ID: db.b.nextID("da"), Name: name, Type: typ, IsOID: true})
	return db
}

// Descriptor adds the descriptor {D} attribute of the terminal level.
func (db *DimBuilder) Descriptor(name, typ string) *DimBuilder {
	db.db.d.Atts = append(db.db.d.Atts, &DimAtt{ID: db.b.nextID("da"), Name: name, Type: typ, IsD: true})
	return db
}

// Method adds an operation to the dimension class.
func (db *DimBuilder) Method(name, signature string) *DimBuilder {
	db.db.d.Methods = append(db.db.d.Methods, &Method{
		ID: db.b.nextID("mt"), Name: name, Signature: signature})
	return db
}

// Categorize adds a categorization (specialization) level.
func (db *DimBuilder) Categorize(name string, atts ...string) *DimBuilder {
	cl := &CatLevel{ID: db.b.nextID("cl"), Name: name}
	for _, a := range atts {
		cl.Atts = append(cl.Atts, &DimAtt{ID: db.b.nextID("da"), Name: a, Type: "String"})
	}
	db.db.d.CatLevels = append(db.db.d.CatLevels, cl)
	return db
}

// LevelBuilder builds one classification-hierarchy level.
type LevelBuilder struct {
	db *DimBuilder
	l  *Level
}

// Level adds a classification hierarchy level (base class) to the
// dimension.
func (db *DimBuilder) Level(name string) *LevelBuilder {
	l := &Level{ID: db.b.nextID("l"), Name: name}
	db.db.d.Levels = append(db.db.d.Levels, l)
	return &LevelBuilder{db: db, l: l}
}

// LevelRef returns a builder for an already-added level of this
// dimension, so hierarchy edges can be attached later; it panics when the
// level does not exist.
func (db *DimBuilder) LevelRef(name string) *LevelBuilder {
	for _, l := range db.db.d.Levels {
		if l.Name == name {
			return &LevelBuilder{db: db, l: l}
		}
	}
	panic(fmt.Sprintf("core: dimension %s has no level %q", db.db.d.Name, name))
}

// Key adds the level's identifying {OID} attribute.
func (lb *LevelBuilder) Key(name, typ string) *LevelBuilder {
	lb.l.Atts = append(lb.l.Atts, &DimAtt{ID: lb.db.b.nextID("da"), Name: name, Type: typ, IsOID: true})
	return lb
}

// Descriptor adds the level's descriptor {D} attribute.
func (lb *LevelBuilder) Descriptor(name, typ string) *LevelBuilder {
	lb.l.Atts = append(lb.l.Atts, &DimAtt{ID: lb.db.b.nextID("da"), Name: name, Type: typ, IsD: true})
	return lb
}

// Attr adds a plain attribute to the level.
func (lb *LevelBuilder) Attr(name, typ string) *LevelBuilder {
	lb.l.Atts = append(lb.l.Atts, &DimAtt{ID: lb.db.b.nextID("da"), Name: name, Type: typ})
	return lb
}

// Dim returns to the dimension builder for chaining.
func (lb *LevelBuilder) Dim() *DimBuilder { return lb.db }

// AssocBuilder refines one association edge of the hierarchy DAG.
type AssocBuilder struct {
	b *ModelBuilder
	a *Association
}

// Rollup adds an association from the dimension class root to the named
// level (the first classification step above the terminal level).
func (db *DimBuilder) Rollup(childLevel string) *AssocBuilder {
	a := &Association{Child: childLevel, RoleA: Mult1, RoleB: MultM} // name; resolved at Build
	db.db.d.Associations = append(db.db.d.Associations, a)
	return &AssocBuilder{b: db.b, a: a}
}

// Rollup adds an association from this level to the named (higher) level.
func (lb *LevelBuilder) Rollup(childLevel string) *AssocBuilder {
	a := &Association{Child: childLevel, RoleA: Mult1, RoleB: MultM}
	lb.l.Associations = append(lb.l.Associations, a)
	return &AssocBuilder{b: lb.db.b, a: a}
}

// NonStrict marks the association non-strict (a member may roll up to
// several parents).
func (ab *AssocBuilder) NonStrict() *AssocBuilder {
	ab.a.RoleA = MultM
	return ab
}

// Complete marks the association complete ({completeness}).
func (ab *AssocBuilder) Complete() *AssocBuilder {
	ab.a.Completeness = true
	return ab
}

// Named labels the association.
func (ab *AssocBuilder) Named(name string) *AssocBuilder {
	ab.a.Name = name
	return ab
}

// ---- cube classes ----

type cubeBuild struct {
	c        *CubeClass
	factName string
	measures []string // measure names
	slices   []sliceBuild
	dices    []diceBuild
}

type sliceBuild struct {
	att   string
	op    Operator
	value string
}

type diceBuild struct {
	dim   string
	level string
}

// CubeBuilder builds one cube class (initial user requirement).
type CubeBuilder struct {
	b  *ModelBuilder
	cb *cubeBuild
}

// Cube adds a cube class over the named fact class.
func (b *ModelBuilder) Cube(name, factName string) *CubeBuilder {
	c := &CubeClass{ID: b.nextID("c"), Name: name}
	cb := &cubeBuild{c: c, factName: factName}
	b.cubes = append(b.cubes, cb)
	b.m.Cubes = append(b.m.Cubes, c)
	return &CubeBuilder{b: b, cb: cb}
}

// Describe sets the cube class description.
func (cb *CubeBuilder) Describe(s string) *CubeBuilder {
	cb.cb.c.Description = s
	return cb
}

// Measures selects fact measures by name.
func (cb *CubeBuilder) Measures(names ...string) *CubeBuilder {
	cb.cb.measures = append(cb.cb.measures, names...)
	return cb
}

// Slice adds a filter condition on the named attribute.
func (cb *CubeBuilder) Slice(attName string, op Operator, value string) *CubeBuilder {
	cb.cb.slices = append(cb.cb.slices, sliceBuild{att: attName, op: op, value: value})
	return cb
}

// Dice adds a grouping condition: group by the named hierarchy level of
// the named dimension (empty level = the terminal level).
func (cb *CubeBuilder) Dice(dimName, levelName string) *CubeBuilder {
	cb.cb.dices = append(cb.cb.dices, diceBuild{dim: dimName, level: levelName})
	return cb
}

// ---- assembly ----

// Build resolves all by-name references, validates the model semantically
// and returns it.
func (b *ModelBuilder) Build() (*Model, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	dimByName := map[string]*DimClass{}
	for _, db := range b.dims {
		if prev := dimByName[db.d.Name]; prev != nil {
			return nil, fmt.Errorf("core: duplicate dimension name %q", db.d.Name)
		}
		dimByName[db.d.Name] = db.d
	}
	resolveDim := func(name, where string) (string, error) {
		d, ok := dimByName[name]
		if !ok {
			return "", fmt.Errorf("core: %s references unknown dimension %q", where, name)
		}
		return d.ID, nil
	}
	for _, fb := range b.facts {
		for _, ab := range fb.aggs {
			id, err := resolveDim(ab.dimName, "fact "+fb.f.Name)
			if err != nil {
				return nil, err
			}
			ab.agg.DimClass = id
			fb.f.SharedAggs = append(fb.f.SharedAggs, ab.agg)
		}
		for _, a := range fb.f.Atts {
			for _, r := range a.Additivity {
				id, err := resolveDim(r.DimClass, "measure "+a.Name)
				if err != nil {
					return nil, err
				}
				r.DimClass = id
			}
		}
	}
	// Resolve level names within each dimension.
	for _, db := range b.dims {
		levelByName := map[string]*Level{}
		for _, l := range db.d.Levels {
			if prev := levelByName[l.Name]; prev != nil {
				return nil, fmt.Errorf("core: duplicate level name %q in dimension %s", l.Name, db.d.Name)
			}
			levelByName[l.Name] = l
		}
		resolveLevel := func(assocs []*Association) error {
			for _, a := range assocs {
				l, ok := levelByName[a.Child]
				if !ok {
					return fmt.Errorf("core: dimension %s: association references unknown level %q", db.d.Name, a.Child)
				}
				a.Child = l.ID
			}
			return nil
		}
		if err := resolveLevel(db.d.Associations); err != nil {
			return nil, err
		}
		for _, l := range db.d.Levels {
			if err := resolveLevel(l.Associations); err != nil {
				return nil, err
			}
		}
	}
	// Resolve cube references.
	for _, cb := range b.cubes {
		fact := b.m.FactByName(cb.factName)
		if fact == nil {
			return nil, fmt.Errorf("core: cube %s references unknown fact %q", cb.c.Name, cb.factName)
		}
		cb.c.Fact = fact.ID
		for _, mn := range cb.measures {
			a := fact.AttByName(mn)
			if a == nil {
				return nil, fmt.Errorf("core: cube %s: fact %s has no measure %q", cb.c.Name, fact.Name, mn)
			}
			cb.c.Measures = append(cb.c.Measures, a.ID)
		}
		for _, s := range cb.slices {
			id, err := b.resolveAtt(fact, s.att)
			if err != nil {
				return nil, fmt.Errorf("core: cube %s: %v", cb.c.Name, err)
			}
			cb.c.Slices = append(cb.c.Slices, &Slice{Att: id, Operator: s.op, Value: s.value})
		}
		for _, dd := range cb.dices {
			d, ok := dimByName[dd.dim]
			if !ok {
				return nil, fmt.Errorf("core: cube %s references unknown dimension %q", cb.c.Name, dd.dim)
			}
			dice := &Dice{DimClass: d.ID}
			if dd.level != "" {
				l := d.LevelByName(dd.level)
				if l == nil {
					return nil, fmt.Errorf("core: cube %s: dimension %s has no level %q", cb.c.Name, d.Name, dd.level)
				}
				dice.Level = l.ID
			}
			cb.c.Dices = append(cb.c.Dices, dice)
		}
	}
	if errs := b.m.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("core: model is not well-formed: %v (%d problems)", errs[0], len(errs))
	}
	return b.m, nil
}

// resolveAtt finds an attribute by name among the fact's measures and the
// attributes of its aggregated dimensions.
func (b *ModelBuilder) resolveAtt(fact *FactClass, name string) (string, error) {
	var found []string
	if a := fact.AttByName(name); a != nil {
		found = append(found, a.ID)
	}
	for _, agg := range fact.SharedAggs {
		d := b.m.Dim(agg.DimClass)
		if d == nil {
			continue
		}
		for _, a := range d.Atts {
			if a.Name == name {
				found = append(found, a.ID)
			}
		}
		for _, l := range d.Levels {
			for _, a := range l.Atts {
				if a.Name == name {
					found = append(found, a.ID)
				}
			}
		}
	}
	switch len(found) {
	case 0:
		return "", fmt.Errorf("no attribute named %q reachable from fact %s", name, fact.Name)
	case 1:
		return found[0], nil
	default:
		return "", fmt.Errorf("attribute name %q is ambiguous (%d matches)", name, len(found))
	}
}

// MustBuild is Build but panics on error.
func (b *ModelBuilder) MustBuild() *Model {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}
