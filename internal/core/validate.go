package core

import (
	"fmt"
	"strings"
)

// SemanticError is one violation of the metamodel's well-formedness rules
// (the constraints the paper attaches to the UML notation: {dag}, {OID},
// {D}, additivity rules, valid references).
type SemanticError struct {
	Where string // dotted location, e.g. "fact Sales/measure qty"
	Msg   string
}

func (e SemanticError) Error() string { return e.Where + ": " + e.Msg }

// Validate checks the model's semantic constraints and returns every
// violation (nil means the model is well-formed). These checks complement
// XML Schema validation: they cover rules a grammar cannot express, such
// as the {dag} constraint on classification hierarchies.
func (m *Model) Validate() []SemanticError {
	v := &semChecker{ids: map[string]string{}}
	if m.ID == "" {
		v.add("model", "missing id")
	}
	if m.Name == "" {
		v.add("model", "missing name")
	}
	v.trackID(m.ID, "model")
	if !m.CreationDate.IsZero() && !m.LastModified.IsZero() && m.LastModified.Before(m.CreationDate) {
		v.add("model "+m.Name, "lastModified precedes creationDate")
	}
	dimIDs := map[string]*DimClass{}
	for _, d := range m.Dims {
		if d.ID != "" {
			dimIDs[d.ID] = d
		}
	}
	for _, f := range m.Facts {
		v.checkFact(f, dimIDs)
	}
	for _, d := range m.Dims {
		v.checkDim(d)
	}
	for _, c := range m.Cubes {
		v.checkCube(m, c)
	}
	return v.errs
}

// MustValidate panics with a readable message when the model is not
// well-formed; intended for examples and tests building known-good models.
func (m *Model) MustValidate() *Model {
	if errs := m.Validate(); len(errs) != 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		panic("invalid model:\n  " + strings.Join(msgs, "\n  "))
	}
	return m
}

type semChecker struct {
	errs []SemanticError
	ids  map[string]string // id → where first seen
}

func (v *semChecker) add(where, format string, args ...interface{}) {
	v.errs = append(v.errs, SemanticError{Where: where, Msg: fmt.Sprintf(format, args...)})
}

func (v *semChecker) trackID(id, where string) {
	if id == "" {
		v.add(where, "missing id")
		return
	}
	if prev, dup := v.ids[id]; dup {
		v.add(where, "duplicate id %q (also used by %s)", id, prev)
		return
	}
	v.ids[id] = where
}

func (v *semChecker) checkFact(f *FactClass, dims map[string]*DimClass) {
	where := "fact " + nameOrID(f.Name, f.ID)
	v.trackID(f.ID, where)
	if f.Name == "" {
		v.add(where, "missing name")
	}
	aggregated := map[string]bool{}
	for _, agg := range f.SharedAggs {
		aw := where + "/sharedagg → " + agg.DimClass
		if agg.DimClass == "" {
			v.add(aw, "missing dimclass reference")
			continue
		}
		if _, ok := dims[agg.DimClass]; !ok {
			v.add(aw, "references unknown dimension class %q", agg.DimClass)
		}
		if aggregated[agg.DimClass] {
			v.add(aw, "duplicate shared aggregation to dimension %q", agg.DimClass)
		}
		aggregated[agg.DimClass] = true
		if agg.RoleA != "" && !agg.RoleA.Valid() {
			v.add(aw, "invalid roleA multiplicity %q", agg.RoleA)
		}
		if agg.RoleB != "" && !agg.RoleB.Valid() {
			v.add(aw, "invalid roleB multiplicity %q", agg.RoleB)
		}
	}
	for _, a := range f.Atts {
		mw := where + "/measure " + nameOrID(a.Name, a.ID)
		v.trackID(a.ID, mw)
		if a.Name == "" {
			v.add(mw, "missing name")
		}
		if a.IsDerived && a.DerivationRule == "" {
			v.add(mw, "derived measure without a derivation rule")
		}
		if !a.IsDerived && a.DerivationRule != "" {
			v.add(mw, "derivation rule on a non-derived measure")
		}
		seen := map[string]bool{}
		for _, r := range a.Additivity {
			rw := mw + "/additivity → " + r.DimClass
			if r.DimClass == "" {
				v.add(rw, "missing dimclass reference")
				continue
			}
			if !aggregated[r.DimClass] {
				v.add(rw, "additivity rule along %q, which the fact class does not aggregate", r.DimClass)
			}
			if seen[r.DimClass] {
				v.add(rw, "duplicate additivity rule for dimension %q", r.DimClass)
			}
			seen[r.DimClass] = true
			anyOp := r.IsSUM || r.IsMAX || r.IsMIN || r.IsAVG || r.IsCOUNT
			if r.IsNot && anyOp {
				v.add(rw, "isnot excludes the aggregation operators")
			}
			if !r.IsNot && !anyOp {
				v.add(rw, "rule allows no aggregation operator and is not marked isnot")
			}
		}
	}
	for _, meth := range f.Methods {
		v.trackID(meth.ID, where+"/method "+nameOrID(meth.Name, meth.ID))
	}
}

func (v *semChecker) checkDim(d *DimClass) {
	where := "dimension " + nameOrID(d.Name, d.ID)
	v.trackID(d.ID, where)
	if d.Name == "" {
		v.add(where, "missing name")
	}
	levels := map[string]*Level{}
	for _, l := range d.Levels {
		lw := where + "/level " + nameOrID(l.Name, l.ID)
		v.trackID(l.ID, lw)
		if l.ID != "" {
			levels[l.ID] = l
		}
		if l.Name == "" {
			v.add(lw, "missing name")
		}
		v.checkDimAtts(lw, l.Atts, true)
		for _, meth := range l.Methods {
			v.trackID(meth.ID, lw+"/method "+nameOrID(meth.Name, meth.ID))
		}
	}
	v.checkDimAtts(where, d.Atts, false)
	for _, cl := range d.CatLevels {
		cw := where + "/catlevel " + nameOrID(cl.Name, cl.ID)
		v.trackID(cl.ID, cw)
		v.checkDimAtts(cw, cl.Atts, false)
	}
	for _, meth := range d.Methods {
		v.trackID(meth.ID, where+"/method "+nameOrID(meth.Name, meth.ID))
	}

	// {dag}: every association child resolves, every level is reachable
	// from the dimension class, and the graph is acyclic.
	checkEdges := func(from string, edges []*Association) {
		for _, e := range edges {
			ew := where + "/" + from + " → " + e.Child
			if e.Child == "" {
				v.add(ew, "association without a child level")
				continue
			}
			if _, ok := levels[e.Child]; !ok {
				v.add(ew, "association references unknown level %q", e.Child)
			}
			if e.RoleA != "" && !e.RoleA.Valid() {
				v.add(ew, "invalid roleA multiplicity %q", e.RoleA)
			}
			if e.RoleB != "" && !e.RoleB.Valid() {
				v.add(ew, "invalid roleB multiplicity %q", e.RoleB)
			}
		}
	}
	checkEdges("root", d.Associations)
	for _, l := range d.Levels {
		checkEdges("level "+nameOrID(l.Name, l.ID), l.Associations)
	}

	// Reachability and cycle detection over level ids.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(id string, path []string)
	visit = func(id string, path []string) {
		l, ok := levels[id]
		if !ok {
			return
		}
		switch color[id] {
		case grey:
			v.add(where, "{dag} violated: cycle through level %q (path %s)", id, strings.Join(append(path, id), " → "))
			return
		case black:
			return
		}
		color[id] = grey
		for _, e := range l.Associations {
			visit(e.Child, append(path, id))
		}
		color[id] = black
	}
	for _, e := range d.Associations {
		visit(e.Child, []string{"<" + nameOrID(d.Name, d.ID) + ">"})
	}
	for _, l := range d.Levels {
		if l.ID != "" && color[l.ID] == white {
			v.add(where+"/level "+nameOrID(l.Name, l.ID),
				"{dag} violated: level not reachable from the dimension class")
		}
	}
}

// checkDimAtts verifies the {OID}/{D} attribute constraints. Hierarchy
// levels require exactly one of each (needed by the OLAP export, §2);
// other attribute sets only forbid duplicates.
func (v *semChecker) checkDimAtts(where string, atts []*DimAtt, isLevel bool) {
	oids, ds := 0, 0
	for _, a := range atts {
		aw := where + "/att " + nameOrID(a.Name, a.ID)
		v.trackID(a.ID, aw)
		if a.Name == "" {
			v.add(aw, "missing name")
		}
		if a.IsOID {
			oids++
		}
		if a.IsD {
			ds++
		}
		if a.IsOID && a.IsD {
			v.add(aw, "attribute cannot be both {OID} and {D}")
		}
	}
	if isLevel {
		if oids != 1 {
			v.add(where, "hierarchy level must have exactly one {OID} attribute, found %d", oids)
		}
		if ds != 1 {
			v.add(where, "hierarchy level must have exactly one {D} attribute, found %d", ds)
		}
	} else {
		if oids > 1 {
			v.add(where, "more than one {OID} attribute")
		}
		if ds > 1 {
			v.add(where, "more than one {D} attribute")
		}
	}
}

func (v *semChecker) checkCube(m *Model, c *CubeClass) {
	where := "cube " + nameOrID(c.Name, c.ID)
	v.trackID(c.ID, where)
	fact := m.Fact(c.Fact)
	if fact == nil {
		v.add(where, "references unknown fact class %q", c.Fact)
		return
	}
	if len(c.Measures) == 0 {
		v.add(where, "cube class declares no measures")
	}
	for _, mid := range c.Measures {
		if fact.Att(mid) == nil {
			v.add(where, "measure %q is not an attribute of fact class %s", mid, fact.Name)
		}
	}
	// Attribute ids usable in slices: the fact's own attributes plus every
	// dimension attribute of the aggregated dimensions.
	attOK := map[string]bool{}
	for _, a := range fact.Atts {
		attOK[a.ID] = true
	}
	for _, agg := range fact.SharedAggs {
		d := m.Dim(agg.DimClass)
		if d == nil {
			continue
		}
		for _, a := range d.Atts {
			attOK[a.ID] = true
		}
		for _, l := range d.Levels {
			for _, a := range l.Atts {
				attOK[a.ID] = true
			}
		}
	}
	for _, s := range c.Slices {
		sw := where + "/slice " + s.Att
		if !attOK[s.Att] {
			v.add(sw, "slice attribute %q is not reachable from fact class %s", s.Att, fact.Name)
		}
		if !s.Operator.Valid() {
			v.add(sw, "invalid operator %q", string(s.Operator))
		}
	}
	for _, dice := range c.Dices {
		dw := where + "/dice " + dice.DimClass
		if fact.Agg(dice.DimClass) == nil {
			v.add(dw, "dice dimension %q is not aggregated by fact class %s", dice.DimClass, fact.Name)
			continue
		}
		if dice.Level != "" {
			d := m.Dim(dice.DimClass)
			if d != nil && d.Level(dice.Level) == nil {
				v.add(dw, "dice level %q is not a level of dimension %s", dice.Level, d.Name)
			}
		}
	}
}

func nameOrID(name, id string) string {
	if name != "" {
		return name
	}
	if id != "" {
		return id
	}
	return "(unnamed)"
}
