// Package core implements the paper's contribution: the object-oriented
// conceptual multidimensional (MD) metamodel ("GOLD model" of Trujillo et
// al.) together with its XML representation, the canonical XML Schema that
// validates model documents, and the XSLT stylesheets that publish models
// as navigable HTML presentations.
//
// The metamodel covers the structural MD properties of §2 of the paper —
// fact classes with measures, derived measures and degenerate dimensions
// ({OID} measures); shared aggregation relationships with multiplicities
// (many-to-many facts/dimensions); dimension classes whose classification-
// hierarchy levels (base classes) form a DAG rooted in the dimension
// class; strict/non-strict and complete hierarchies; categorization
// (specialization) levels; identifying {OID} and descriptor {D} attributes
// per level — and the dynamic part: cube classes with measures, slice and
// dice sections plus OLAP operations (executed by the olap package).
package core

import (
	"fmt"
	"time"
)

// Multiplicity is a UML role multiplicity as used by the schema's
// Multiplicity simple type.
type Multiplicity string

// The four multiplicities of the paper's XML Schema.
const (
	Mult0  Multiplicity = "0"
	Mult1  Multiplicity = "1"
	MultM  Multiplicity = "M"
	Mult1M Multiplicity = "1..M"
)

// Valid reports whether m is one of the schema's enumerated values.
func (m Multiplicity) Valid() bool {
	switch m {
	case Mult0, Mult1, MultM, Mult1M:
		return true
	}
	return false
}

// Many reports whether the multiplicity admits more than one instance.
func (m Multiplicity) Many() bool { return m == MultM || m == Mult1M }

// Operator is a slice (filter) comparison operator, matching the schema's
// Operator simple type.
type Operator string

// The ten operators of the paper's XML Schema.
const (
	OpEQ      Operator = "EQ"
	OpLT      Operator = "LT"
	OpGT      Operator = "GT"
	OpLET     Operator = "LET"
	OpGET     Operator = "GET"
	OpNOTEQ   Operator = "NOTEQ"
	OpLIKE    Operator = "LIKE"
	OpNOTLIKE Operator = "NOTLIKE"
	OpIN      Operator = "IN"
	OpNOTIN   Operator = "NOTIN"
)

// Valid reports whether o is one of the schema's enumerated operators.
func (o Operator) Valid() bool {
	switch o {
	case OpEQ, OpLT, OpGT, OpLET, OpGET, OpNOTEQ, OpLIKE, OpNOTLIKE, OpIN, OpNOTIN:
		return true
	}
	return false
}

// Model is a complete conceptual multidimensional model: the root
// goldmodel element of the XML representation.
type Model struct {
	ID           string
	Name         string
	ShowAtts     bool // presentation flag: render attribute compartments
	ShowMethods  bool // presentation flag: render method compartments
	CreationDate time.Time
	LastModified time.Time
	Description  string
	Responsible  string

	Facts []*FactClass
	Dims  []*DimClass
	Cubes []*CubeClass
}

// FactClass is a fact class: the composite class of a shared-aggregation
// star, carrying measures (fact attributes) and the aggregation
// relationships to its dimensions.
type FactClass struct {
	ID          string
	Name        string
	Caption     string
	Description string

	Atts       []*FactAtt
	Methods    []*Method
	SharedAggs []*SharedAgg
}

// FactAtt is a measure of a fact class. A fact class may have none
// (fact-less fact tables).
type FactAtt struct {
	ID   string
	Name string
	Type string // conceptual data type, e.g. "Integer", "Currency"
	// IsOID marks an identifying attribute ({OID}); such measures model
	// degenerate dimensions (e.g. ticket and line numbers).
	IsOID bool
	// IsDerived marks a derived measure (prefixed "/" in UML);
	// DerivationRule holds its rule.
	IsDerived      bool
	DerivationRule string
	// IsAtomic distinguishes atomic measures from compound ones.
	IsAtomic    bool
	Description string
	// Additivity holds the per-dimension additivity rules; a measure
	// without rules is fully additive along every dimension (the paper's
	// default).
	Additivity []*AdditivityRule
}

// AdditivityRule states how (or that) a measure may be aggregated along
// one dimension.
type AdditivityRule struct {
	DimClass string // reference to a DimClass.ID
	IsNot    bool   // not additive at all along this dimension
	IsSUM    bool
	IsMAX    bool
	IsMIN    bool
	IsAVG    bool
	IsCOUNT  bool
}

// Allows reports whether the named aggregation operator is permitted by
// the rule.
func (r *AdditivityRule) Allows(op string) bool {
	if r.IsNot {
		return false
	}
	switch op {
	case "SUM":
		return r.IsSUM
	case "MAX":
		return r.IsMAX
	case "MIN":
		return r.IsMIN
	case "AVG":
		return r.IsAVG
	case "COUNT":
		return r.IsCOUNT
	}
	return false
}

// SharedAgg is a shared-aggregation relationship between a fact class and
// a dimension class. RoleA is the fact-side multiplicity and RoleB the
// dimension-side one; RoleA=M with RoleB=M expresses a many-to-many
// relationship between facts and that dimension.
type SharedAgg struct {
	DimClass    string // reference to a DimClass.ID
	Name        string
	Description string
	RoleA       Multiplicity // default M
	RoleB       Multiplicity // default 1
}

// ManyToMany reports whether the aggregation is many-to-many.
func (a *SharedAgg) ManyToMany() bool { return a.RoleA.Many() && a.RoleB.Many() }

// DimClass is a dimension class: the root of a classification-hierarchy
// DAG ({dag} constraint) whose nodes are Levels.
type DimClass struct {
	ID          string
	Name        string
	Caption     string
	Description string
	IsTime      bool // marks the time dimension

	// Atts are the attributes of the dimension's terminal (root) level.
	Atts    []*DimAtt
	Methods []*Method
	// Levels are the classification hierarchy levels (base classes).
	Levels []*Level
	// Associations are the hierarchy edges leaving the dimension class
	// itself (the DAG root); further edges hang off the levels.
	Associations []*Association
	// CatLevels are categorization (generalization/specialization) levels
	// modeling additional features of an entity's subtypes.
	CatLevels []*CatLevel
}

// Level is a classification hierarchy level — a base class in the paper's
// terms. Every level needs an identifying {OID} and a descriptor {D}
// attribute, required by the export into commercial OLAP tools.
type Level struct {
	ID          string
	Name        string
	Caption     string
	Description string

	Atts         []*DimAtt
	Methods      []*Method
	Associations []*Association
}

// OID returns the level's identifying attribute, or nil.
func (l *Level) OID() *DimAtt { return findOID(l.Atts) }

// Descriptor returns the level's descriptor attribute, or nil.
func (l *Level) Descriptor() *DimAtt { return findD(l.Atts) }

func findOID(atts []*DimAtt) *DimAtt {
	for _, a := range atts {
		if a.IsOID {
			return a
		}
	}
	return nil
}

func findD(atts []*DimAtt) *DimAtt {
	for _, a := range atts {
		if a.IsD {
			return a
		}
	}
	return nil
}

// Association is an association relationship between two hierarchy levels
// (or from the dimension class root to a level). RoleB multiplicity M on
// the child role expresses non-strictness; Completeness marks a complete
// classification (hierarchies are non-complete by default).
type Association struct {
	Child        string // reference to a Level.ID
	Name         string
	Description  string
	RoleA        Multiplicity // default 1
	RoleB        Multiplicity // default M
	Completeness bool
}

// NonStrict reports whether the association allows a child member to roll
// up to several parents (both roles many).
func (a *Association) NonStrict() bool { return a.RoleA.Many() }

// DimAtt is a dimension attribute. IsOID marks the identifying attribute
// ({OID}); IsD marks the descriptor ({D}).
type DimAtt struct {
	ID          string
	Name        string
	Type        string
	IsOID       bool
	IsD         bool
	Description string
}

// CatLevel is a categorization (specialization) level of a dimension.
type CatLevel struct {
	ID          string
	Name        string
	Description string
	Atts        []*DimAtt
}

// Method is an operation of a class, kept for completeness of the UML
// notation (the CASE tool displays method compartments).
type Method struct {
	ID          string
	Name        string
	Signature   string
	Description string
}

// CubeClass is the dynamic part of the model: an initial user requirement
// structured into measures, slice and dice sections, later refined with
// OLAP operations.
type CubeClass struct {
	ID          string
	Name        string
	Description string
	Fact        string // reference to a FactClass.ID

	Measures []string // references to FactAtt.IDs of the fact class
	Slices   []*Slice
	Dices    []*Dice
}

// Slice is one filter condition of a cube class.
type Slice struct {
	Att      string // reference to a DimAtt.ID or FactAtt.ID
	Operator Operator
	Value    string
}

// Dice is one grouping condition of a cube class: group by the given
// hierarchy level of a dimension (empty Level = the dimension's terminal
// level).
type Dice struct {
	DimClass string // reference to a DimClass.ID
	Level    string // reference to a Level.ID, optional
}

// ---- lookup helpers ----

// Fact returns the fact class with the given id, or nil.
func (m *Model) Fact(id string) *FactClass {
	for _, f := range m.Facts {
		if f.ID == id {
			return f
		}
	}
	return nil
}

// FactByName returns the fact class with the given name, or nil.
func (m *Model) FactByName(name string) *FactClass {
	for _, f := range m.Facts {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Dim returns the dimension class with the given id, or nil.
func (m *Model) Dim(id string) *DimClass {
	for _, d := range m.Dims {
		if d.ID == id {
			return d
		}
	}
	return nil
}

// DimByName returns the dimension class with the given name, or nil.
func (m *Model) DimByName(name string) *DimClass {
	for _, d := range m.Dims {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// Cube returns the cube class with the given id, or nil.
func (m *Model) Cube(id string) *CubeClass {
	for _, c := range m.Cubes {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// Att returns the measure with the given id, or nil.
func (f *FactClass) Att(id string) *FactAtt {
	for _, a := range f.Atts {
		if a.ID == id {
			return a
		}
	}
	return nil
}

// AttByName returns the measure with the given name, or nil.
func (f *FactClass) AttByName(name string) *FactAtt {
	for _, a := range f.Atts {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Agg returns the shared aggregation pointing at the given dimension id,
// or nil.
func (f *FactClass) Agg(dimID string) *SharedAgg {
	for _, a := range f.SharedAggs {
		if a.DimClass == dimID {
			return a
		}
	}
	return nil
}

// DegenerateDims returns the {OID} measures, which model degenerate
// dimensions.
func (f *FactClass) DegenerateDims() []*FactAtt {
	var out []*FactAtt
	for _, a := range f.Atts {
		if a.IsOID {
			out = append(out, a)
		}
	}
	return out
}

// AdditivityFor returns the measure's additivity rule along the given
// dimension, or nil when the measure is fully additive there.
func (a *FactAtt) AdditivityFor(dimID string) *AdditivityRule {
	for _, r := range a.Additivity {
		if r.DimClass == dimID {
			return r
		}
	}
	return nil
}

// Level returns the hierarchy level with the given id, or nil.
func (d *DimClass) Level(id string) *Level {
	for _, l := range d.Levels {
		if l.ID == id {
			return l
		}
	}
	return nil
}

// LevelByName returns the hierarchy level with the given name, or nil.
func (d *DimClass) LevelByName(name string) *Level {
	for _, l := range d.Levels {
		if l.Name == name {
			return l
		}
	}
	return nil
}

// Roots returns the level ids directly associated with the dimension
// class (the first hierarchy levels above the terminal level).
func (d *DimClass) Roots() []string {
	out := make([]string, 0, len(d.Associations))
	for _, a := range d.Associations {
		out = append(out, a.Child)
	}
	return out
}

// PathsTo returns every association path (as level-id slices) from the
// dimension root to the named level, exposing multiple and alternative
// path classification hierarchies.
func (d *DimClass) PathsTo(levelID string) [][]string {
	var out [][]string
	var walk func(edges []*Association, prefix []string)
	walk = func(edges []*Association, prefix []string) {
		for _, e := range edges {
			next := append(append([]string(nil), prefix...), e.Child)
			if e.Child == levelID {
				out = append(out, next)
			}
			if l := d.Level(e.Child); l != nil && len(prefix) <= len(d.Levels) {
				walk(l.Associations, next)
			}
		}
	}
	walk(d.Associations, nil)
	return out
}

// String implements fmt.Stringer with a compact synopsis.
func (m *Model) String() string {
	return fmt.Sprintf("Model(%s: %d facts, %d dims, %d cubes)", m.Name, len(m.Facts), len(m.Dims), len(m.Cubes))
}
