package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"goldweb/internal/xsd"
)

func TestSampleModelsAreWellFormed(t *testing.T) {
	for _, m := range []*Model{SampleSales(), SampleHospital()} {
		if errs := m.Validate(); len(errs) != 0 {
			t.Errorf("%s: %v", m.Name, errs)
		}
	}
}

func TestEmbeddedSchemaParsesAndChecksClean(t *testing.T) {
	if _, err := Schema(); err != nil {
		t.Fatalf("embedded schema: %v", err)
	}
	issues := xsd.CheckSchemaString(SchemaXSD)
	for _, i := range issues {
		if i.Severity == "error" {
			t.Errorf("schema checker: %s", i)
		}
	}
}

func TestSampleDocumentsValidateAgainstSchema(t *testing.T) {
	for _, m := range []*Model{SampleSales(), SampleHospital()} {
		if errs := ValidateModel(m); len(errs) != 0 {
			t.Errorf("%s: %v", m.Name, errs)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	for _, orig := range []*Model{SampleSales(), SampleHospital()} {
		doc := orig.ToXML()
		back, err := ModelFromXML(doc)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", orig.Name, err)
		}
		if !reflect.DeepEqual(orig, back) {
			t.Errorf("%s: round trip changed the model", orig.Name)
			if orig.String() != back.String() {
				t.Logf("synopsis: %s vs %s", orig, back)
			}
		}
	}
}

func TestXMLRoundTripThroughText(t *testing.T) {
	orig := SampleSales()
	back, err := ModelFromXMLString(orig.XMLString())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Error("text round trip changed the model")
	}
}

func TestSchemaRejectsMutations(t *testing.T) {
	s := MustSchema()
	base := SampleSales().XMLString()
	mutations := []struct {
		name, from, to string
	}{
		{"drop model id", ` id="m1"`, ``},
		{"bad multiplicity", `rolea="M"`, `rolea="many"`},
		{"bad operator", `operator="EQ"`, `operator="EQUALS"`},
		{"bad date", `creationdate="2002-03-24"`, `creationdate="someday"`},
		{"bad boolean", `istime="true"`, `istime="yep"`},
		{"dangling sharedagg", `<sharedagg dimclass="d1"`, `<sharedagg dimclass="zz"`},
		{"unknown element", `<factclasses>`, `<factclasses><rogue/>`},
		{"unknown attribute", `<goldmodel id="m1"`, `<goldmodel hax="1" id="m1"`},
	}
	for _, mu := range mutations {
		doc := strings.Replace(base, mu.from, mu.to, 1)
		if doc == base {
			t.Fatalf("%s: mutation did not apply", mu.name)
		}
		if errs := s.ValidateString(doc, xsd.ValidateOptions{}); len(errs) == 0 {
			t.Errorf("%s: mutated document accepted", mu.name)
		}
	}
}

func TestSchemaKeyrefPinsReferences(t *testing.T) {
	// Point an additivity rule at a fact class id: IDREF-valid but
	// keyref-invalid (the paper's §3.1 improvement over their DTD).
	s := MustSchema()
	base := SampleSales().XMLString()
	doc := strings.Replace(base, `<additivity dimclass="d1"`, `<additivity dimclass="f1"`, 1)
	if doc == base {
		t.Fatal("mutation did not apply")
	}
	errs := s.ValidateString(doc, xsd.ValidateOptions{})
	found := false
	for _, e := range errs {
		if strings.Contains(e.Msg, "additivityDimClassKey") {
			found = true
		}
		if strings.Contains(e.Msg, "IDREF") {
			t.Errorf("IDREF should accept f1: %v", e)
		}
	}
	if !found {
		t.Errorf("keyref violation not reported: %v", errs)
	}
	if errs := s.ValidateString(doc, xsd.ValidateOptions{SkipIdentityConstraints: true}); len(errs) != 0 {
		t.Errorf("DTD-equivalent mode should accept: %v", errs)
	}
}

func TestValidateDocumentAppliesDefaults(t *testing.T) {
	doc := SampleSales().ToXML()
	if errs := ValidateDocument(doc); len(errs) != 0 {
		t.Fatalf("unexpected: %v", errs)
	}
	agg := doc.DescendantElements("sharedagg")[0]
	if agg.AttrValue("rolea") != "M" || agg.AttrValue("roleb") != "1" {
		t.Errorf("defaults not applied: %v", agg.Attr)
	}
}

func TestSemanticValidation(t *testing.T) {
	mk := func(mutate func(m *Model)) []SemanticError {
		m := SampleSales()
		mutate(m)
		return m.Validate()
	}
	contains := func(errs []SemanticError, sub string) bool {
		for _, e := range errs {
			if strings.Contains(e.Error(), sub) {
				return true
			}
		}
		return false
	}

	t.Run("cycle in hierarchy", func(t *testing.T) {
		errs := mk(func(m *Model) {
			d := m.DimByName("Time")
			year := d.LevelByName("Year")
			month := d.LevelByName("Month")
			year.Associations = append(year.Associations, &Association{Child: month.ID})
		})
		if !contains(errs, "{dag} violated: cycle") {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("unreachable level", func(t *testing.T) {
		errs := mk(func(m *Model) {
			d := m.DimByName("Time")
			d.Associations = d.Associations[:1] // drop root → Week edge
		})
		if !contains(errs, "not reachable from the dimension class") {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("level without OID", func(t *testing.T) {
		errs := mk(func(m *Model) {
			l := m.DimByName("Time").LevelByName("Year")
			l.Atts[0].IsOID = false
		})
		if !contains(errs, "exactly one {OID}") {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("level without descriptor", func(t *testing.T) {
		errs := mk(func(m *Model) {
			l := m.DimByName("Time").LevelByName("Year")
			l.Atts[1].IsD = false
		})
		if !contains(errs, "exactly one {D}") {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("additivity along non-aggregated dimension", func(t *testing.T) {
		errs := mk(func(m *Model) {
			f := m.FactByName("Sales")
			f.SharedAggs = f.SharedAggs[:2] // drop Store
		})
		if !contains(errs, "which the fact class does not aggregate") {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("derived without rule", func(t *testing.T) {
		errs := mk(func(m *Model) {
			m.FactByName("Sales").AttByName("total").DerivationRule = ""
		})
		if !contains(errs, "derived measure without a derivation rule") {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("duplicate ids", func(t *testing.T) {
		errs := mk(func(m *Model) {
			m.Dims[1].ID = m.Dims[0].ID
		})
		if !contains(errs, "duplicate id") {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("cube with unknown measure", func(t *testing.T) {
		errs := mk(func(m *Model) {
			m.Cubes[0].Measures = append(m.Cubes[0].Measures, "ghost")
		})
		if !contains(errs, "is not an attribute of fact class") {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("dice on non-aggregated dimension", func(t *testing.T) {
		errs := mk(func(m *Model) {
			m.Cubes[0].Dices[0].DimClass = "zzz"
		})
		if !contains(errs, "is not aggregated by fact class") {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("dates out of order", func(t *testing.T) {
		errs := mk(func(m *Model) {
			m.LastModified = m.CreationDate.AddDate(-1, 0, 0)
		})
		if !contains(errs, "lastModified precedes creationDate") {
			t.Errorf("got %v", errs)
		}
	})
}

func TestBuilderResolutionErrors(t *testing.T) {
	t.Run("unknown dimension", func(t *testing.T) {
		b := NewModel("m")
		b.Dimension("D").Key("k", "OID").Descriptor("d", "D")
		b.Fact("F").Aggregates("Ghost").Measure("x", "Int")
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), `unknown dimension "Ghost"`) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("unknown level", func(t *testing.T) {
		b := NewModel("m")
		d := b.Dimension("D").Key("k", "OID").Descriptor("d", "D")
		d.Rollup("Ghost")
		b.Fact("F").Aggregates("D").Measure("x", "Int")
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), `unknown level "Ghost"`) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("ambiguous slice attribute", func(t *testing.T) {
		b := NewModel("m")
		b.Dimension("D1").Key("code", "OID").Descriptor("name", "D")
		b.Dimension("D2").Key("code", "OID").Descriptor("name2", "D")
		b.Fact("F").Aggregates("D1").Aggregates("D2").Measure("x", "Int")
		b.Cube("C", "F").Measures("x").Slice("code", OpEQ, "1")
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "ambiguous") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("unknown aggregation op", func(t *testing.T) {
		b := NewModel("m")
		b.Dimension("D").Key("k", "OID").Descriptor("d", "D")
		b.Fact("F").Aggregates("D").Measure("x", "Int").Additive("D", "MEDIAN")
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "unknown aggregation operator") {
			t.Errorf("err = %v", err)
		}
	})
}

func TestModelLookups(t *testing.T) {
	m := SampleSales()
	sales := m.FactByName("Sales")
	if sales == nil {
		t.Fatal("Sales not found")
	}
	if got := len(sales.DegenerateDims()); got != 2 {
		t.Errorf("degenerate dims = %d", got)
	}
	timeDim := m.DimByName("Time")
	if !timeDim.IsTime {
		t.Error("Time not flagged istime")
	}
	inv := sales.AttByName("inventory")
	rule := inv.AdditivityFor(timeDim.ID)
	if rule == nil || rule.Allows("SUM") || !rule.Allows("MAX") {
		t.Errorf("inventory additivity along Time wrong: %+v", rule)
	}
	price := sales.AttByName("price")
	if r := price.AdditivityFor(timeDim.ID); r == nil || !r.IsNot || r.Allows("AVG") {
		t.Errorf("price should be non-additive along Time: %+v", r)
	}
	if qty := sales.AttByName("qty"); qty.AdditivityFor(timeDim.ID) != nil {
		t.Error("qty should be fully additive (no rules)")
	}
}

func TestPathsToExposesAlternativePaths(t *testing.T) {
	m := SampleSales()
	timeDim := m.DimByName("Time")
	year := timeDim.LevelByName("Year")
	paths := timeDim.PathsTo(year.ID)
	if len(paths) != 2 {
		t.Fatalf("paths to Year = %d, want 2 (via Month and via Week)", len(paths))
	}
	names := map[string]bool{}
	for _, p := range paths {
		if len(p) != 2 {
			t.Errorf("path length %d", len(p))
			continue
		}
		names[timeDim.Level(p[0]).Name] = true
	}
	if !names["Month"] || !names["Week"] {
		t.Errorf("intermediate levels = %v", names)
	}
}

func TestManyToManyAndNonStrict(t *testing.T) {
	m := SampleHospital()
	adm := m.FactByName("Admissions")
	diag := m.DimByName("Diagnosis")
	agg := adm.Agg(diag.ID)
	if agg == nil || !agg.ManyToMany() {
		t.Errorf("Diagnosis aggregation should be many-to-many: %+v", agg)
	}
	patient := m.DimByName("Patient")
	assoc := patient.Associations[0]
	if !assoc.NonStrict() || !assoc.Completeness {
		t.Errorf("RiskGroup association should be non-strict and complete: %+v", assoc)
	}
}

func TestDatesSurviveRoundTrip(t *testing.T) {
	m := SampleSales()
	back, err := ModelFromXMLString(m.XMLString())
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2002, 3, 24, 0, 0, 0, 0, time.UTC)
	if !back.CreationDate.Equal(want) {
		t.Errorf("creation date = %v", back.CreationDate)
	}
}

func TestPrettyXMLMentionsKeyElements(t *testing.T) {
	out := SampleSales().PrettyXML()
	for _, want := range []string{"<goldmodel", "<factclass", "<dimclass", "<asoclevel",
		"<sharedagg", "<additivity", "<cubeclass", `derivationrule="qty * price"`} {
		if !strings.Contains(out, want) {
			t.Errorf("pretty XML missing %s", want)
		}
	}
}

func TestSemanticValidationCatLevelsAndMultiplicities(t *testing.T) {
	contains := func(errs []SemanticError, sub string) bool {
		for _, e := range errs {
			if strings.Contains(e.Error(), sub) {
				return true
			}
		}
		return false
	}
	t.Run("catlevel attribute both OID and D", func(t *testing.T) {
		m := SampleSales()
		cl := m.DimByName("Product").CatLevels[0]
		cl.Atts[0].IsOID = true
		cl.Atts[0].IsD = true
		if errs := m.Validate(); !contains(errs, "cannot be both {OID} and {D}") {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("invalid sharedagg multiplicity", func(t *testing.T) {
		m := SampleSales()
		m.Facts[0].SharedAggs[0].RoleA = "banana"
		if errs := m.Validate(); !contains(errs, "invalid roleA multiplicity") {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("invalid association multiplicity", func(t *testing.T) {
		m := SampleSales()
		m.DimByName("Time").Associations[0].RoleB = "7"
		if errs := m.Validate(); !contains(errs, "invalid roleB multiplicity") {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("duplicate sharedagg to same dimension", func(t *testing.T) {
		m := SampleSales()
		f := m.Facts[0]
		f.SharedAggs = append(f.SharedAggs, &SharedAgg{DimClass: f.SharedAggs[0].DimClass})
		if errs := m.Validate(); !contains(errs, "duplicate shared aggregation") {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("additivity rule with conflicting flags", func(t *testing.T) {
		m := SampleSales()
		rule := m.Facts[0].AttByName("price").Additivity[0]
		rule.IsNot = true
		rule.IsSUM = true
		if errs := m.Validate(); !contains(errs, "isnot excludes") {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("cube without measures", func(t *testing.T) {
		m := SampleSales()
		m.Cubes[0].Measures = nil
		if errs := m.Validate(); !contains(errs, "declares no measures") {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("slice with invalid operator", func(t *testing.T) {
		m := SampleSales()
		m.Cubes[0].Slices[0].Operator = "ALMOST"
		if errs := m.Validate(); !contains(errs, "invalid operator") {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("slice on unreachable attribute", func(t *testing.T) {
		m := SampleSales()
		m.Cubes[0].Slices[0].Att = "zzz"
		if errs := m.Validate(); !contains(errs, "not reachable from fact class") {
			t.Errorf("got %v", errs)
		}
	})
}

func TestOperatorAndMultiplicityHelpers(t *testing.T) {
	for _, op := range []Operator{OpEQ, OpLT, OpGT, OpLET, OpGET, OpNOTEQ, OpLIKE, OpNOTLIKE, OpIN, OpNOTIN} {
		if !op.Valid() {
			t.Errorf("%s should be valid", op)
		}
	}
	if Operator("XX").Valid() {
		t.Error("XX accepted")
	}
	if !MultM.Many() || !Mult1M.Many() || Mult1.Many() || Mult0.Many() {
		t.Error("Many() wrong")
	}
	if Multiplicity("2").Valid() {
		t.Error("multiplicity 2 accepted")
	}
}

func TestMustValidatePanicsOnBrokenModel(t *testing.T) {
	m := SampleSales()
	m.Facts[0].SharedAggs[0].DimClass = "ghost"
	defer func() {
		if recover() == nil {
			t.Error("MustValidate should panic")
		}
	}()
	m.MustValidate()
}

func TestLevelHelpers(t *testing.T) {
	m := SampleSales()
	month := m.DimByName("Time").LevelByName("Month")
	if month.OID() == nil || month.OID().Name != "month_id" {
		t.Errorf("OID helper: %+v", month.OID())
	}
	if month.Descriptor() == nil || month.Descriptor().Name != "month_name" {
		t.Errorf("Descriptor helper: %+v", month.Descriptor())
	}
	if got := m.DimByName("Time").Roots(); len(got) != 2 {
		t.Errorf("roots = %v", got)
	}
}
