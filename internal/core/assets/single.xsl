<?xml version="1.0" encoding="UTF-8"?>
<!--
  single.xsl : XSLT 1.0 presentation of a goldmodel document as a single
  HTML page with internal links (the paper's §4 first approach, for
  processors without xsl:document).

  Parameters:
    focus - a fact class id; when set, only that fact class and the
            dimensions it aggregates are rendered (Fig. 5).
    css   - href of the stylesheet linked from the page.
-->
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:output method="html" indent="yes"/>
  <xsl:param name="focus" select="''"/>
  <xsl:param name="css" select="'style.css'"/>

  <xsl:template match="/goldmodel">
    <html>
      <head>
        <title>MD model: <xsl:value-of select="@name"/></title>
        <link rel="stylesheet" type="text/css" href="{$css}"/>
      </head>
      <body>
        <h1 id="top">Multidimensional model: <xsl:value-of select="@name"/></h1>
        <table class="meta">
          <tr><th>Name</th><td><xsl:value-of select="@name"/></td></tr>
          <xsl:if test="@creationdate">
            <tr><th>Creation date</th><td><xsl:value-of select="@creationdate"/></td></tr>
          </xsl:if>
          <xsl:if test="@lastmodified">
            <tr><th>Last modified</th><td><xsl:value-of select="@lastmodified"/></td></tr>
          </xsl:if>
          <xsl:if test="@responsible">
            <tr><th>Responsible</th><td><xsl:value-of select="@responsible"/></td></tr>
          </xsl:if>
          <xsl:if test="@description">
            <tr><th>Description</th><td><xsl:value-of select="@description"/></td></tr>
          </xsl:if>
        </table>

        <h2>Contents</h2>
        <ul>
          <xsl:for-each select="factclasses/factclass">
            <xsl:sort select="@name"/>
            <xsl:if test="$focus = '' or @id = $focus">
              <li>Fact class <a href="#{@id}"><xsl:value-of select="@name"/></a></li>
            </xsl:if>
          </xsl:for-each>
          <xsl:for-each select="dimclasses/dimclass">
            <xsl:sort select="@name"/>
            <xsl:if test="$focus = '' or /goldmodel/factclasses/factclass[@id = $focus]/sharedaggs/sharedagg[@dimclass = current()/@id]">
              <li>Dimension class <a href="#{@id}"><xsl:value-of select="@name"/></a></li>
            </xsl:if>
          </xsl:for-each>
          <xsl:for-each select="cubeclasses/cubeclass">
            <xsl:sort select="@name"/>
            <xsl:if test="$focus = '' or @factclass = $focus">
              <li>Cube class <a href="#{@id}"><xsl:value-of select="@name"/></a></li>
            </xsl:if>
          </xsl:for-each>
        </ul>

        <xsl:for-each select="factclasses/factclass">
          <xsl:sort select="@name"/>
          <xsl:if test="$focus = '' or @id = $focus">
            <xsl:apply-templates select="." mode="section"/>
          </xsl:if>
        </xsl:for-each>

        <xsl:for-each select="dimclasses/dimclass">
          <xsl:sort select="@name"/>
          <xsl:if test="$focus = '' or /goldmodel/factclasses/factclass[@id = $focus]/sharedaggs/sharedagg[@dimclass = current()/@id]">
            <xsl:apply-templates select="." mode="section"/>
          </xsl:if>
        </xsl:for-each>

        <xsl:for-each select="cubeclasses/cubeclass">
          <xsl:sort select="@name"/>
          <xsl:if test="$focus = '' or @factclass = $focus">
            <xsl:apply-templates select="." mode="section"/>
          </xsl:if>
        </xsl:for-each>

        <p class="footer">Generated from the conceptual multidimensional
        model <xsl:value-of select="@name"/> by goldweb (single-page
        presentation).</p>
      </body>
    </html>
  </xsl:template>

  <!-- ============ fact class section ============ -->
  <xsl:template match="factclass" mode="section">
    <h2 id="{@id}">Fact class: <xsl:value-of select="@name"/></h2>
    <p class="nav"><a href="#top">&#8593; top</a></p>
    <xsl:if test="@description"><p><xsl:value-of select="@description"/></p></xsl:if>

    <h3>Measures</h3>
    <xsl:choose>
      <xsl:when test="factatts/factatt">
        <table>
          <tr><th>Name</th><th>Type</th><th>OID</th><th>Derived</th><th>Derivation rule</th><th>Additivity</th><th>Description</th></tr>
          <xsl:apply-templates select="factatts/factatt" mode="row"/>
        </table>
        <xsl:for-each select="factatts/factatt[additivity]">
          <div class="additivity" id="{../../@id}-{@id}-add">
            <strong>Additivity of <xsl:value-of select="@name"/>:</strong>
            <ul>
              <xsl:for-each select="additivity">
                <li>
                  <a href="#{@dimclass}"><xsl:value-of select="id(@dimclass)/@name"/></a>
                  <xsl:text>: </xsl:text>
                  <xsl:choose>
                    <xsl:when test="@isnot = 'true'"><span class="warn">not additive</span></xsl:when>
                    <xsl:otherwise>
                      <xsl:if test="@issum = 'true'">SUM </xsl:if>
                      <xsl:if test="@ismax = 'true'">MAX </xsl:if>
                      <xsl:if test="@ismin = 'true'">MIN </xsl:if>
                      <xsl:if test="@isavg = 'true'">AVG </xsl:if>
                      <xsl:if test="@iscount = 'true'">COUNT </xsl:if>
                    </xsl:otherwise>
                  </xsl:choose>
                </li>
              </xsl:for-each>
            </ul>
          </div>
        </xsl:for-each>
      </xsl:when>
      <xsl:otherwise><p>No measures: a fact-less fact class.</p></xsl:otherwise>
    </xsl:choose>

    <h3>Shared aggregations</h3>
    <ul>
      <xsl:for-each select="sharedaggs/sharedagg">
        <li>
          <a href="#{@dimclass}"><xsl:value-of select="id(@dimclass)/@name"/></a>
          <xsl:if test="(@rolea = 'M' or @rolea = '1..M' or not(@rolea)) and (@roleb = 'M' or @roleb = '1..M')">
            <xsl:text> </xsl:text><span class="flag">many-to-many</span>
          </xsl:if>
        </li>
      </xsl:for-each>
    </ul>
  </xsl:template>

  <xsl:template match="factatt" mode="row">
    <tr class="measure">
      <td><xsl:value-of select="@name"/><xsl:if test="@isoid = 'true'"> {OID}</xsl:if></td>
      <td><xsl:value-of select="@type"/></td>
      <td><xsl:if test="@isoid = 'true'">yes</xsl:if></td>
      <td><xsl:if test="@derived = 'true'">/</xsl:if></td>
      <td><xsl:value-of select="@derivationrule"/></td>
      <td>
        <xsl:choose>
          <xsl:when test="additivity"><a href="#{../../@id}-{@id}-add">rules</a></xsl:when>
          <xsl:otherwise>additive</xsl:otherwise>
        </xsl:choose>
      </td>
      <td><xsl:value-of select="@description"/></td>
    </tr>
  </xsl:template>

  <!-- ============ dimension class section ============ -->
  <xsl:template match="dimclass" mode="section">
    <h2 id="{@id}">Dimension class: <xsl:value-of select="@name"/>
      <xsl:if test="@istime = 'true'"><xsl:text> </xsl:text><span class="flag">{time}</span></xsl:if>
    </h2>
    <p class="nav"><a href="#top">&#8593; top</a></p>
    <xsl:if test="@description"><p><xsl:value-of select="@description"/></p></xsl:if>

    <xsl:call-template name="dimatts-inline"/>

    <xsl:if test="asoclevels/asoclevel">
      <h3>Classification hierarchy {dag}</h3>
      <ul>
        <xsl:for-each select="relationasocs/relationasoc">
          <li>
            <xsl:value-of select="../../@name"/>
            <xsl:text> &#8594; </xsl:text>
            <a href="#{@child}"><xsl:value-of select="id(@child)/@name"/></a>
          </li>
        </xsl:for-each>
      </ul>
      <xsl:for-each select="asoclevels/asoclevel">
        <h4 id="{@id}">Level: <xsl:value-of select="@name"/></h4>
        <xsl:call-template name="dimatts-inline"/>
        <xsl:if test="relationasocs/relationasoc">
          <p>Rolls up to:
            <xsl:for-each select="relationasocs/relationasoc">
              <a href="#{@child}"><xsl:value-of select="id(@child)/@name"/></a>
              <xsl:if test="@rolea = 'M' or @rolea = '1..M'">
                <xsl:text> </xsl:text><span class="flag">non-strict</span>
              </xsl:if>
              <xsl:if test="@completeness = 'true'">
                <xsl:text> </xsl:text><span class="flag">{completeness}</span>
              </xsl:if>
              <xsl:text> </xsl:text>
            </xsl:for-each>
          </p>
        </xsl:if>
      </xsl:for-each>
    </xsl:if>

    <xsl:if test="catlevels/catlevel">
      <h3>Categorization levels</h3>
      <ul>
        <xsl:for-each select="catlevels/catlevel">
          <li><xsl:value-of select="@name"/>
            <xsl:if test="dimatts/dimatt">
              <xsl:text> (</xsl:text>
              <xsl:for-each select="dimatts/dimatt">
                <xsl:value-of select="@name"/><xsl:text> </xsl:text>
              </xsl:for-each>
              <xsl:text>)</xsl:text>
            </xsl:if>
          </li>
        </xsl:for-each>
      </ul>
    </xsl:if>
  </xsl:template>

  <xsl:template name="dimatts-inline">
    <xsl:if test="dimatts/dimatt">
      <table>
        <tr><th>Attribute</th><th>Type</th><th>OID</th><th>D</th></tr>
        <xsl:for-each select="dimatts/dimatt">
          <tr>
            <td><xsl:value-of select="@name"/></td>
            <td><xsl:value-of select="@type"/></td>
            <td><xsl:if test="@isoid = 'true'">{OID}</xsl:if></td>
            <td><xsl:if test="@isd = 'true'">{D}</xsl:if></td>
          </tr>
        </xsl:for-each>
      </table>
    </xsl:if>
  </xsl:template>

  <!-- ============ cube class section ============ -->
  <xsl:template match="cubeclass" mode="section">
    <h2 id="{@id}">Cube class: <xsl:value-of select="@name"/></h2>
    <p class="nav"><a href="#top">&#8593; top</a>
      <a href="#{@factclass}">fact class <xsl:value-of select="id(@factclass)/@name"/></a></p>
    <p>Measures:
      <xsl:for-each select="measures/measure">
        <xsl:value-of select="id(@factatt)/@name"/><xsl:text> </xsl:text>
      </xsl:for-each>
    </p>
    <xsl:if test="slices/slice">
      <p>Slice:
        <xsl:for-each select="slices/slice">
          <xsl:value-of select="id(@att)/@name"/>
          <xsl:text> </xsl:text><xsl:value-of select="@operator"/><xsl:text> </xsl:text>
          <xsl:value-of select="@value"/><xsl:text>; </xsl:text>
        </xsl:for-each>
      </p>
    </xsl:if>
    <xsl:if test="dices/dice">
      <p>Dice:
        <xsl:for-each select="dices/dice">
          <a href="#{@dimclass}"><xsl:value-of select="id(@dimclass)/@name"/></a>
          <xsl:if test="@level">
            <xsl:text>/</xsl:text>
            <a href="#{@level}"><xsl:value-of select="id(@level)/@name"/></a>
          </xsl:if>
          <xsl:text>; </xsl:text>
        </xsl:for-each>
      </p>
    </xsl:if>
  </xsl:template>
</xsl:stylesheet>
